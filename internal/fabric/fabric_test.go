package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rispp/internal/explore"
)

// fakeRun is a pure, deterministic stand-in for the simulator: metrics are a
// function of the point alone, so any partition of a sweep across fake
// workers must merge back to the unsharded stream byte-for-byte.
func fakeRun(_ context.Context, p explore.Point) (explore.Metrics, error) {
	if p.Scheduler == "explode" {
		return explore.Metrics{}, errors.New("boom")
	}
	h := int64(p.Hash64() % 1_000_000)
	return explore.Metrics{
		TotalCycles:  1_000_000 + h + int64(p.NumACs)*1000,
		StallCycles:  h % 10_000,
		SWExecutions: int64(p.Frames) * 10,
		HWExecutions: int64(p.Frames) * 90,
	}, nil
}

// referenceStream is the unsharded ground truth: one engine over the whole
// job list, exactly what a single risppserve process would stream.
func referenceStream(t *testing.T, pts []explore.Point) []byte {
	t.Helper()
	var buf bytes.Buffer
	eng := &explore.Engine{Run: fakeRun, Workers: 2}
	if _, err := eng.ExecutePoints(context.Background(), pts, &buf); err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	return buf.Bytes()
}

// workerRequest mirrors the serve-layer ExploreRequest fields the
// coordinator posts.
type workerRequest struct {
	Points []explore.Point `json:"points"`
}

// fakeWorker is an httptest server speaking the worker side of the fabric
// protocol: POST /v1/explore with a point list answers one JSONL record per
// point in posted order.
func fakeWorker(t *testing.T, middle func(call int, w http.ResponseWriter, pts []explore.Point) bool) *httptest.Server {
	t.Helper()
	var calls atomic.Int64
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/explore" {
			http.NotFound(w, r)
			return
		}
		var req workerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		call := int(calls.Add(1))
		if middle != nil && middle(call, w, req.Points) {
			return
		}
		eng := &explore.Engine{Run: fakeRun, Workers: 1}
		eng.ExecutePoints(r.Context(), req.Points, w) //nolint:errcheck // streamed
	}))
}

func testPoints(t *testing.T, n int) []explore.Point {
	t.Helper()
	spec := explore.Spec{
		Schedulers: []string{"HEF", "Molen", "SJF"},
		ACs:        []int{4, 8, 12, 16},
		Frames:     []int{5, 10},
	}
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if n > 0 && n < len(pts) {
		pts = pts[:n]
	}
	return pts
}

func TestOwnerDeterministicAndBalanced(t *testing.T) {
	ids := []string{"w1", "w2", "w3", "w4"}
	pts := testPoints(t, 0)
	counts := map[string]int{}
	for _, p := range pts {
		a := Owner(p.Hash64(), ids)
		b := Owner(p.Hash64(), []string{"w3", "w1", "w4", "w2"})
		if a != b {
			t.Fatalf("owner depends on id order: %q vs %q", a, b)
		}
		counts[a]++
	}
	for _, id := range ids {
		if counts[id] == 0 {
			t.Errorf("worker %s got no points out of %d (distribution %v)", id, len(pts), counts)
		}
	}
}

// TestOwnerMinimalDisruption is the rendezvous-hashing property the fabric
// depends on: removing one worker moves only that worker's points.
func TestOwnerMinimalDisruption(t *testing.T) {
	all := []string{"w1", "w2", "w3", "w4"}
	without := []string{"w1", "w2", "w4"}
	for _, p := range testPoints(t, 0) {
		before := Owner(p.Hash64(), all)
		after := Owner(p.Hash64(), without)
		if before != "w3" && before != after {
			t.Fatalf("point moved from %s to %s although w3 left", before, after)
		}
		if before == "w3" && after == "w3" {
			t.Fatal("point still assigned to removed worker")
		}
	}
}

func TestOwnerEmpty(t *testing.T) {
	if got := Owner(42, nil); got != "" {
		t.Fatalf("Owner with no ids = %q, want empty", got)
	}
}

func newTestCoordinator(t *testing.T, workers ...*httptest.Server) *Coordinator {
	t.Helper()
	c := NewCoordinator()
	c.Logf = t.Logf
	c.ShardTimeout = 5 * time.Second
	for i, ws := range workers {
		if err := c.Register(fmt.Sprintf("w%d", i+1), ws.URL); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func collectSweep(t *testing.T, c *Coordinator, pts []explore.Point) ([]byte, error) {
	t.Helper()
	var buf bytes.Buffer
	err := c.Sweep(context.Background(), pts, SweepOptions{
		Emit: func(line []byte) error {
			buf.Write(line)
			return nil
		},
	})
	return buf.Bytes(), err
}

func TestSweepByteParity(t *testing.T) {
	pts := testPoints(t, 0)
	want := referenceStream(t, pts)

	w1, w2, w3 := fakeWorker(t, nil), fakeWorker(t, nil), fakeWorker(t, nil)
	defer w1.Close()
	defer w2.Close()
	defer w3.Close()
	c := newTestCoordinator(t, w1, w2, w3)

	got, err := collectSweep(t, c, pts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("sharded stream differs from single-process stream:\nsharded: %d bytes\nsingle:  %d bytes", len(got), len(want))
	}
	if retries, failures := c.Stats(); retries != 0 || failures != 0 {
		t.Errorf("healthy sweep recorded retries=%d failures=%d", retries, failures)
	}
}

// TestSweepFailedPointParity: points whose simulation fails produce error
// records, which are real results — they must be forwarded, not retried.
func TestSweepFailedPointParity(t *testing.T) {
	pts := testPoints(t, 6)
	pts = append(pts, explore.Point{Scheduler: "explode", NumACs: 1, Frames: 1}.Normalized())
	want := referenceStream(t, pts)

	w1, w2 := fakeWorker(t, nil), fakeWorker(t, nil)
	defer w1.Close()
	defer w2.Close()
	c := newTestCoordinator(t, w1, w2)

	got, err := collectSweep(t, c, pts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stream with a failing point differs from single-process stream")
	}
}

// TestSweepWorkerKilled kills one worker after it has streamed a single
// record: its remaining points must re-hash to the survivors and the merged
// stream must still match the single process byte-for-byte.
func TestSweepWorkerKilled(t *testing.T) {
	pts := testPoints(t, 0)
	want := referenceStream(t, pts)

	killer := fakeWorker(t, func(call int, w http.ResponseWriter, shard []explore.Point) bool {
		if call > 1 || len(shard) < 2 {
			return false
		}
		// Stream one valid record, then die mid-response.
		eng := &explore.Engine{Run: fakeRun, Workers: 1}
		eng.ExecutePoints(context.Background(), shard[:1], w) //nolint:errcheck // streamed
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	})
	w2, w3 := fakeWorker(t, nil), fakeWorker(t, nil)
	defer killer.Close()
	defer w2.Close()
	defer w3.Close()
	c := newTestCoordinator(t, killer, w2, w3)

	got, err := collectSweep(t, c, pts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stream after worker kill differs from single-process stream")
	}
	retries, failures := c.Stats()
	if failures != 1 {
		t.Errorf("failures = %d, want 1", failures)
	}
	if retries == 0 {
		t.Error("no points recorded as retried after the kill")
	}
	if live := c.LiveWorkers(); live != 2 {
		t.Errorf("live workers = %d, want 2", live)
	}
}

// TestSweepSkippedRequeued: "skipped: ..." records are scheduling outcomes
// (the worker's request deadline hit), not results — the coordinator must
// re-dispatch those points, and a later round that completes them heals the
// sweep without marking the worker dead.
func TestSweepSkippedRequeued(t *testing.T) {
	pts := testPoints(t, 0)
	want := referenceStream(t, pts)

	flaky := fakeWorker(t, func(call int, w http.ResponseWriter, shard []explore.Point) bool {
		if call > 1 {
			return false
		}
		enc := json.NewEncoder(w)
		for _, p := range shard {
			enc.Encode(explore.Record{Point: p, Err: "skipped: context deadline exceeded"}) //nolint:errcheck // test stream
		}
		return true
	})
	w2 := fakeWorker(t, nil)
	defer flaky.Close()
	defer w2.Close()
	c := newTestCoordinator(t, flaky, w2)

	got, err := collectSweep(t, c, pts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stream with requeued skips differs from single-process stream")
	}
	if _, failures := c.Stats(); failures != 0 {
		t.Errorf("skip requeue marked a worker dead (%d failures)", failures)
	}
	if retries, _ := c.Stats(); retries == 0 {
		t.Error("skipped points were not counted as retries")
	}
}

// TestSweepMisbehavingWorker: a worker answering the wrong point must be
// declared dead — its lines can never be merged safely.
func TestSweepMisbehavingWorker(t *testing.T) {
	pts := testPoints(t, 0)
	want := referenceStream(t, pts)

	wrong := explore.Point{Scheduler: "HEF", NumACs: 99, Frames: 1}.Normalized()
	liar := fakeWorker(t, func(call int, w http.ResponseWriter, shard []explore.Point) bool {
		if call > 1 {
			return false
		}
		json.NewEncoder(w).Encode(explore.Record{Point: wrong}) //nolint:errcheck // test stream
		return true
	})
	w2 := fakeWorker(t, nil)
	defer liar.Close()
	defer w2.Close()
	c := newTestCoordinator(t, liar, w2)

	got, err := collectSweep(t, c, pts)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stream after protocol violation differs from single-process stream")
	}
	if _, failures := c.Stats(); failures != 1 {
		t.Errorf("failures = %d, want 1 (misbehaving worker)", failures)
	}
}

func TestSweepNoWorkers(t *testing.T) {
	c := NewCoordinator()
	err := c.Sweep(context.Background(), testPoints(t, 3), SweepOptions{Emit: func([]byte) error { return nil }})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestSweepFleetExhausted(t *testing.T) {
	dead := fakeWorker(t, nil)
	dead.Close() // refuses connections: first shard fails, no survivors
	c := newTestCoordinator(t)
	if err := c.Register("w1", dead.URL); err != nil {
		t.Fatal(err)
	}
	err := c.Sweep(context.Background(), testPoints(t, 3), SweepOptions{Emit: func([]byte) error { return nil }})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
	if live := c.LiveWorkers(); live != 0 {
		t.Errorf("live workers = %d, want 0", live)
	}
}

// TestSweepStalls: a lone worker that skips everything and stays alive
// would loop forever without the stall guard.
func TestSweepStalls(t *testing.T) {
	skipper := fakeWorker(t, func(_ int, w http.ResponseWriter, shard []explore.Point) bool {
		enc := json.NewEncoder(w)
		for _, p := range shard {
			enc.Encode(explore.Record{Point: p, Err: "skipped: context deadline exceeded"}) //nolint:errcheck // test stream
		}
		return true
	})
	defer skipper.Close()
	c := newTestCoordinator(t, skipper)
	err := c.Sweep(context.Background(), testPoints(t, 4), SweepOptions{Emit: func([]byte) error { return nil }})
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want stall", err)
	}
}

func TestSweepEmitErrorAborts(t *testing.T) {
	w1 := fakeWorker(t, nil)
	defer w1.Close()
	c := newTestCoordinator(t, w1)
	emitted := 0
	err := c.Sweep(context.Background(), testPoints(t, 6), SweepOptions{
		Emit: func([]byte) error {
			emitted++
			if emitted >= 2 {
				return errors.New("client went away")
			}
			return nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "client went away") {
		t.Fatalf("err = %v, want emit error", err)
	}
}

func TestSweepContextCanceled(t *testing.T) {
	release := make(chan struct{})
	slow := fakeWorker(t, func(_ int, w http.ResponseWriter, _ []explore.Point) bool {
		<-release
		return true
	})
	defer slow.Close()
	defer close(release)
	c := newTestCoordinator(t, slow)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- c.Sweep(ctx, testPoints(t, 3), SweepOptions{Emit: func([]byte) error { return nil }})
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sweep did not return after cancellation")
	}
	// A canceled sweep is the caller's doing, not the worker's fault.
	if live := c.LiveWorkers(); live != 1 {
		t.Errorf("live workers = %d after cancel, want 1", live)
	}
}

func TestSweepProgress(t *testing.T) {
	pts := testPoints(t, 0)
	w1, w2 := fakeWorker(t, nil), fakeWorker(t, nil)
	defer w1.Close()
	defer w2.Close()
	c := newTestCoordinator(t, w1, w2)

	var mu sync.Mutex
	assigned, done := map[string]int{}, map[string]int{}
	err := c.Sweep(context.Background(), pts, SweepOptions{
		Emit: func([]byte) error { return nil },
		Progress: func(id string, a, d int) {
			mu.Lock()
			assigned[id] += a
			done[id] += d
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	totalA, totalD := 0, 0
	for id := range assigned {
		if assigned[id] != done[id] {
			t.Errorf("worker %s: assigned %d, done %d", id, assigned[id], done[id])
		}
		totalA += assigned[id]
		totalD += done[id]
	}
	if totalA != len(pts) || totalD != len(pts) {
		t.Errorf("progress totals assigned=%d done=%d, want %d", totalA, totalD, len(pts))
	}
}

func TestJobLifecycle(t *testing.T) {
	s := NewJobStore(4)
	canceled := false
	j, err := s.Create(3, func() { canceled = true })
	if err != nil {
		t.Fatal(err)
	}
	if st := j.Status(); st.State != JobRunning || st.Total != 3 || st.Done != 0 {
		t.Fatalf("fresh job status: %+v", st)
	}

	j.Append([]byte("a\n"))
	j.Shard("w1", 3, 0)
	j.Shard("w1", 0, 1)
	lines, state, changed := j.LinesFrom(0)
	if len(lines) != 1 || string(lines[0]) != "a\n" || state != JobRunning {
		t.Fatalf("LinesFrom(0): %d lines, state %s", len(lines), state)
	}

	go func() {
		j.Append([]byte("b\n"))
		j.Finish(nil)
	}()
	<-changed
	for {
		lines, state, changed = j.LinesFrom(1)
		if state.Terminal() {
			break
		}
		<-changed
	}
	if len(lines) != 1 || string(lines[0]) != "b\n" || state != JobDone {
		t.Fatalf("after finish: %d lines, state %s", len(lines), state)
	}
	st := j.Status()
	if st.Done != 2 || st.Bytes != 4 || len(st.Shards) != 1 || st.Shards[0].Assigned != 3 || st.Shards[0].Done != 1 {
		t.Fatalf("final status: %+v", st)
	}

	// Finish is idempotent; a later error must not flip a done job.
	j.Finish(errors.New("late"))
	if got := j.Status().State; got != JobDone {
		t.Fatalf("state after late Finish = %s", got)
	}
	j.Cancel()
	if !canceled {
		t.Fatal("Cancel did not invoke the cancel func")
	}
}

func TestJobFinishStates(t *testing.T) {
	s := NewJobStore(8)
	mk := func() *Job {
		j, err := s.Create(1, func() {})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	j := mk()
	j.Finish(context.Canceled)
	if got := j.Status().State; got != JobCanceled {
		t.Fatalf("canceled job state = %s", got)
	}
	j = mk()
	j.Finish(errors.New("boom"))
	if st := j.Status(); st.State != JobFailed || st.Error != "boom" {
		t.Fatalf("failed job status: %+v", st)
	}
}

func TestJobStoreEviction(t *testing.T) {
	s := NewJobStore(2)
	j1, _ := s.Create(1, func() {})
	j2, _ := s.Create(1, func() {})
	if _, err := s.Create(1, func() {}); err == nil {
		t.Fatal("Create succeeded with the store full of running jobs")
	}
	j1.Finish(nil)
	j3, err := s.Create(1, func() {})
	if err != nil {
		t.Fatalf("Create after a job finished: %v", err)
	}
	if _, ok := s.Get(j1.ID()); ok {
		t.Fatal("terminal job j1 was not evicted")
	}
	if _, ok := s.Get(j2.ID()); !ok {
		t.Fatal("running job j2 was evicted")
	}
	list := s.List()
	if len(list) != 2 || list[0].ID != j2.ID() || list[1].ID != j3.ID() {
		t.Fatalf("List() = %+v", list)
	}
	running, retained := s.Counts()
	if running != 2 || retained != 2 {
		t.Fatalf("Counts() = %d running, %d retained", running, retained)
	}
	s.CancelAll()
}

func TestPeerAndTiered(t *testing.T) {
	remote, err := explore.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hash := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
		if !explore.ValidHash(hash) {
			http.Error(w, "bad hash", http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			if b, ok := remote.GetRaw(hash); ok {
				w.Write(b) //nolint:errcheck // test server
				return
			}
			http.NotFound(w, r)
		case http.MethodPut:
			b, err := json.RawMessage(nil), error(nil)
			if b, err = readAll(r); err != nil || !explore.ValidEntryForHash(hash, b) {
				http.Error(w, "bad entry", http.StatusBadRequest)
				return
			}
			if err := remote.PutRaw(hash, b); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	defer srv.Close()

	local, err := explore.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := &Tiered{Local: local, Peer: NewPeer(srv.URL)}

	p := explore.Point{Scheduler: "HEF", NumACs: 8, Frames: 5}.Normalized()
	m := explore.Metrics{TotalCycles: 123, StallCycles: 4, SWExecutions: 5, HWExecutions: 6}

	if _, ok := tiered.Get(p); ok {
		t.Fatal("empty tiers reported a hit")
	}
	if err := tiered.Put(p, m); err != nil {
		t.Fatal(err)
	}
	if got, ok := remote.Get(p); !ok || got != m {
		t.Fatalf("peer tier after Put: %+v ok=%v", got, ok)
	}

	// A second worker with an empty local tier must hit via the peer and
	// backfill its disk tier.
	local2, err := explore.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered2 := &Tiered{Local: local2, Peer: NewPeer(srv.URL)}
	if got, ok := tiered2.Get(p); !ok || got != m {
		t.Fatalf("peer-backed get: %+v ok=%v", got, ok)
	}
	if got, ok := local2.Get(p); !ok || got != m {
		t.Fatalf("local backfill after peer hit: %+v ok=%v", got, ok)
	}
	hits, misses, errs := tiered2.Peer.Stats()
	if hits != 1 || errs != 0 {
		t.Errorf("peer stats: hits=%d misses=%d errs=%d", hits, misses, errs)
	}

	// A dead peer degrades to local-only operation, never fails the store.
	srv.Close()
	if err := tiered.Put(p, m); err != nil {
		t.Fatalf("Put with dead peer: %v", err)
	}
	if got, ok := tiered.Get(p); !ok || got != m {
		t.Fatalf("Get with dead peer: %+v ok=%v", got, ok)
	}
}

func readAll(r *http.Request) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r.Body)
	return buf.Bytes(), err
}
