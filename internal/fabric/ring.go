// Package fabric is the distributed sweep fabric of the RISPP evaluation
// platform: a coordinator that shards design-space sweeps across a fleet of
// risppserve worker backends, an async job store so huge sweeps survive
// client disconnects, and a cache-peer tier that makes the content-addressed
// result cache fleet-wide.
//
// Sharding uses rendezvous (highest-random-weight) hashing over
// explore.Point.Hash64: every point's owner is the live worker with the
// highest mixed score, so workers joining or leaving move only the points
// they win or lose — there is no ring state to rebalance. The coordinator
// streams each shard's JSONL response back, reassembles the merged stream
// strictly in canonical spec order, and — because every record line is a
// pure function of its point (cache hits and misses serialize identically)
// — the merged stream is byte-identical to a single-process /v1/explore of
// the same spec. Workers that fail or stall mid-shard are marked dead and
// their unfinished points are re-hashed across the survivors.
package fabric

import "hash/fnv"

// Owner returns the id from ids that wins the rendezvous election for a
// point hash: the id with the highest mixed score. Ties (astronomically
// unlikely with 64-bit scores) break toward the lexicographically smaller
// id so every process agrees. An empty ids slice elects no one ("").
func Owner(hash64 uint64, ids []string) string {
	if len(ids) == 0 {
		return ""
	}
	best := ids[0]
	bestScore := score(hash64, ids[0])
	for _, id := range ids[1:] {
		s := score(hash64, id)
		if s > bestScore || (s == bestScore && id < best) {
			best, bestScore = id, s
		}
	}
	return best
}

// score mixes a point hash with a worker id into the rendezvous weight.
// The id is reduced with FNV-1a, then the pair is finalized with a
// splitmix64-style avalanche so near-identical ids and hashes still spread
// uniformly.
func score(hash64 uint64, id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id)) //nolint:errcheck // hash.Hash never errors
	x := hash64 ^ h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
