package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rispp/internal/explore"
)

// ErrNoWorkers is returned by Sweep when every worker of the fleet is dead
// while points remain unassigned. The serving layer uses it to fall back to
// local execution.
var ErrNoWorkers = errors.New("fabric: no live workers")

// Worker is a registry snapshot entry: one risppserve backend of the fleet.
type Worker struct {
	// ID is the rendezvous-hash identity. Shard assignment depends on it,
	// so a worker that re-registers under the same ID reclaims exactly its
	// old hash range.
	ID string `json:"id"`
	// URL is the base URL of the worker's HTTP API.
	URL string `json:"url"`
	// Alive reports whether the coordinator currently dispatches to the
	// worker. A failed or stalled shard marks its worker dead; re-registering
	// revives it.
	Alive bool `json:"alive"`
	// LastErr is the failure that marked the worker dead, if any.
	LastErr string `json:"last_err,omitempty"`
}

// Coordinator shards sweeps across a registry of worker backends. All
// methods are safe for concurrent use; one Coordinator serves any number of
// concurrent sweeps.
type Coordinator struct {
	// Client performs the worker HTTP requests; http.DefaultClient if nil.
	Client *http.Client
	// ShardTimeout is the per-shard inactivity watchdog: a worker that
	// streams no line for this long is declared dead and its unfinished
	// points are re-hashed. 30s if zero.
	ShardTimeout time.Duration
	// Logf, when non-nil, receives coordinator events (worker deaths,
	// retry rounds).
	Logf func(format string, args ...any)

	mu      sync.Mutex
	workers map[string]*Worker

	retries  atomic.Int64 // points re-dispatched after a shard failure
	failures atomic.Int64 // workers declared dead
}

// NewCoordinator returns an empty-fleet coordinator.
func NewCoordinator() *Coordinator {
	return &Coordinator{workers: make(map[string]*Worker)}
}

// Register adds a worker to the fleet, or revives it if it is already known
// (same ID); the URL is updated either way.
func (c *Coordinator) Register(id, url string) error {
	if id == "" || url == "" {
		return errors.New("fabric: register: empty worker id or url")
	}
	url = strings.TrimSuffix(url, "/")
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[id] = &Worker{ID: id, URL: url, Alive: true}
	return nil
}

// Remove deletes a worker from the fleet. Running sweeps finish its
// in-flight shard; future rounds no longer assign to it.
func (c *Coordinator) Remove(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.workers, id)
}

// Workers returns a registry snapshot sorted by ID.
func (c *Coordinator) Workers() []Worker {
	c.mu.Lock()
	out := make([]Worker, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, *w)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LiveWorkers counts the workers currently eligible for dispatch.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if w.Alive {
			n++
		}
	}
	return n
}

// Stats reports lifetime counters: points re-dispatched after shard
// failures, and workers declared dead.
func (c *Coordinator) Stats() (shardRetries, workerFailures int64) {
	return c.retries.Load(), c.failures.Load()
}

func (c *Coordinator) live() (ids []string, urls map[string]string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	urls = make(map[string]string)
	for id, w := range c.workers {
		if w.Alive {
			ids = append(ids, id)
			urls[id] = w.URL
		}
	}
	sort.Strings(ids)
	return ids, urls
}

func (c *Coordinator) markDead(id, reason string) {
	c.failures.Add(1)
	c.mu.Lock()
	if w, ok := c.workers[id]; ok && w.Alive {
		w.Alive = false
		w.LastErr = reason
	}
	c.mu.Unlock()
	c.logf("fabric: worker %s marked dead: %s", id, reason)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// SweepOptions configures one Sweep call.
type SweepOptions struct {
	// Emit receives every record line (including its trailing newline) in
	// canonical spec order. A non-nil error aborts the sweep. Required.
	Emit func(line []byte) error
	// Progress, when non-nil, is invoked as shards advance: once per
	// dispatch with the shard size (done == 0 and assigned > 0), then once
	// per completed line (assigned == 0 and done == 1). Counts accumulate
	// per worker across retry rounds.
	Progress func(workerID string, assigned, done int)
}

// sweepState is the reassembly buffer of one sweep: completed lines are
// held until they are contiguous from the front, then emitted — the same
// contiguous-flush discipline as explore.Engine, so the merged stream is in
// canonical order no matter how shards interleave.
type sweepState struct {
	mu      sync.Mutex
	lines   [][]byte
	done    []bool
	next    int
	emit    func([]byte) error
	emitErr error
	abort   context.CancelFunc
}

func (st *sweepState) finish(i int, line []byte) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.lines[i] = line
	st.done[i] = true
	for st.next < len(st.done) && st.done[st.next] {
		if st.emitErr == nil {
			if err := st.emit(st.lines[st.next]); err != nil {
				st.emitErr = fmt.Errorf("fabric: emit: %w", err)
				st.abort()
			}
		}
		st.lines[st.next] = nil // emitted; free the buffer
		st.next++
	}
}

// Sweep runs the points across the live fleet and emits the merged record
// stream in canonical order. Points must already be expanded and normalized
// (Spec.Expand). Failed or stalled workers are marked dead and their
// unfinished points re-hashed across the survivors; Sweep fails only when
// the fleet is exhausted (ErrNoWorkers), the context ends (the emitted
// prefix then matches a truncated single-process stream), or Emit errors.
func (c *Coordinator) Sweep(ctx context.Context, points []explore.Point, opt SweepOptions) error {
	if opt.Emit == nil {
		return errors.New("fabric: SweepOptions.Emit is required")
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := &sweepState{
		lines: make([][]byte, len(points)),
		done:  make([]bool, len(points)),
		emit:  opt.Emit,
		abort: cancel,
	}

	pending := make([]int, len(points))
	for i := range points {
		pending[i] = i
	}
	for len(pending) > 0 {
		if err := ctx.Err(); err != nil {
			if st.emitErr != nil {
				return st.emitErr
			}
			return err
		}
		ids, urls := c.live()
		if len(ids) == 0 {
			return fmt.Errorf("%w (%d points unfinished)", ErrNoWorkers, len(pending))
		}
		shards := make(map[string][]int)
		for _, i := range pending {
			w := Owner(points[i].Hash64(), ids)
			shards[w] = append(shards[w], i)
		}
		var (
			wg      sync.WaitGroup
			retryMu sync.Mutex
			retry   []int
		)
		for id, idxs := range shards {
			if opt.Progress != nil {
				opt.Progress(id, len(idxs), 0)
			}
			wg.Add(1)
			go func(id, url string, idxs []int) {
				defer wg.Done()
				left := c.runShard(ctx, id, url, points, idxs, st, opt.Progress)
				if len(left) > 0 {
					retryMu.Lock()
					retry = append(retry, left...)
					retryMu.Unlock()
				}
			}(id, urls[id], idxs)
		}
		wg.Wait()
		if st.emitErr != nil {
			return st.emitErr
		}
		if len(retry) > 0 {
			// A round that neither completed a point nor lost a worker would
			// re-dispatch the identical shards forever; bail out instead.
			if len(retry) == len(pending) && c.LiveWorkers() == len(ids) {
				return fmt.Errorf("fabric: sweep stalled: %d points retried with no progress", len(retry))
			}
			c.retries.Add(int64(len(retry)))
			sort.Ints(retry)
			c.logf("fabric: re-dispatching %d points after shard failure", len(retry))
		}
		pending = retry
	}
	if st.emitErr != nil {
		return st.emitErr
	}
	return ctx.Err()
}

// recordProbe is the minimal parse of a worker record line: enough to
// verify which point it answers and whether the worker skipped it.
type recordProbe struct {
	Point explore.Point `json:"point"`
	Err   string        `json:"err"`
}

// runShard posts the shard's points to one worker, verifies and finishes
// each streamed line, and returns the indexes that still need a home:
// points the worker skipped, plus everything unread when the stream broke.
// Any protocol failure (bad status, truncation, out-of-order records,
// inactivity past ShardTimeout) marks the worker dead.
func (c *Coordinator) runShard(ctx context.Context, id, url string, points []explore.Point, idxs []int, st *sweepState, progress func(string, int, int)) []int {
	pts := make([]explore.Point, len(idxs))
	for k, i := range idxs {
		pts[k] = points[i]
	}
	req := struct {
		Points    []explore.Point `json:"points"`
		TimeoutMS int64           `json:"timeout_ms,omitempty"`
	}{Points: pts}
	if d, ok := ctx.Deadline(); ok {
		if ms := time.Until(d).Milliseconds(); ms > 0 {
			req.TimeoutMS = ms
		}
	}
	body, err := json.Marshal(req)
	if err != nil {
		panic(fmt.Sprintf("fabric: marshal shard request: %v", err)) // plain scalars; cannot fail
	}

	shardTimeout := c.ShardTimeout
	if shardTimeout <= 0 {
		shardTimeout = 30 * time.Second
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	watchdog := time.AfterFunc(shardTimeout, cancel)
	defer watchdog.Stop()

	fail := func(k int, reason string) []int {
		// Only the worker is at fault when the parent sweep is still live;
		// a canceled sweep tears down shard requests by design.
		if ctx.Err() == nil {
			c.markDead(id, reason)
		}
		return idxs[k:]
	}

	client := c.Client
	if client == nil {
		client = http.DefaultClient
	}
	hreq, err := http.NewRequestWithContext(sctx, http.MethodPost, url+"/v1/explore", bytes.NewReader(body))
	if err != nil {
		return fail(0, fmt.Sprintf("build request: %v", err))
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return fail(0, fmt.Sprintf("post shard: %v", err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fail(0, fmt.Sprintf("shard rejected: %s: %s", resp.Status, bytes.TrimSpace(msg)))
	}

	// The worker streams exactly one line per posted point, in posted
	// order, so line k answers pts[k]; the stored key check below turns any
	// violation of that contract into a dead worker instead of a corrupt
	// merge.
	var requeue []int
	rd := bufio.NewReader(resp.Body)
	for k, i := range idxs {
		line, err := readLine(rd)
		if err != nil {
			requeue = append(requeue, fail(k, fmt.Sprintf("stream ended after %d/%d records: %v", k, len(idxs), err))...)
			return requeue
		}
		watchdog.Reset(shardTimeout)
		var probe recordProbe
		if err := json.Unmarshal(line, &probe); err != nil || probe.Point.Key() != pts[k].Key() {
			requeue = append(requeue, fail(k, fmt.Sprintf("record %d does not answer its point", k))...)
			return requeue
		}
		if strings.HasPrefix(probe.Err, "skipped: ") {
			// The worker gave up on the point (its request deadline hit)
			// without measuring it; that is a scheduling outcome of this
			// shard, not a property of the point — re-hash it.
			requeue = append(requeue, i)
			continue
		}
		st.finish(i, line)
		if progress != nil {
			progress(id, 0, 1)
		}
	}
	return requeue
}

// readLine reads one newline-terminated line of unbounded length,
// returning it with the newline included. A final unterminated fragment is
// a truncated stream, not a record.
func readLine(rd *bufio.Reader) ([]byte, error) {
	line, err := rd.ReadBytes('\n')
	if err == nil {
		return line, nil
	}
	if err == io.EOF && len(line) > 0 {
		return nil, io.ErrUnexpectedEOF
	}
	return nil, err
}
