package fabric

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"rispp/internal/explore"
)

// Peer is an HTTP client for the cache-peer protocol: GET/PUT
// /v1/cache/{hash} against another fabric node (typically the
// coordinator). Entries travel in the canonical stored form
// (explore.EncodeEntry) and every read is validated against the requesting
// point, so a misbehaving peer degrades to cache misses, never to wrong
// results.
type Peer struct {
	// Client performs the requests; http.DefaultClient if nil.
	Client *http.Client

	base string

	hits, misses, errs atomic.Int64
}

// NewPeer returns a client for the peer at the given base URL.
func NewPeer(baseURL string) *Peer {
	return &Peer{base: strings.TrimSuffix(baseURL, "/")}
}

// URL returns the peer's base URL.
func (p *Peer) URL() string { return p.base }

// Stats reports lifetime counters: validated remote hits, misses (including
// invalid entries), and transport/protocol errors.
func (p *Peer) Stats() (hits, misses, errs int64) {
	return p.hits.Load(), p.misses.Load(), p.errs.Load()
}

func (p *Peer) client() *http.Client {
	if p.Client != nil {
		return p.Client
	}
	return http.DefaultClient
}

// Get fetches the entry for the point from the peer. Any transport error,
// non-200 status, or entry that fails validation against the point is a
// miss.
func (p *Peer) Get(pt explore.Point) (explore.Metrics, bool) {
	resp, err := p.client().Get(p.base + "/v1/cache/" + pt.Hash())
	if err != nil {
		p.errs.Add(1)
		return explore.Metrics{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
		p.misses.Add(1)
		return explore.Metrics{}, false
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		p.errs.Add(1)
		return explore.Metrics{}, false
	}
	m, ok := explore.DecodeEntry(pt, b)
	if !ok {
		p.misses.Add(1)
		return explore.Metrics{}, false
	}
	p.hits.Add(1)
	return m, true
}

// Put uploads the entry for the point to the peer.
func (p *Peer) Put(pt explore.Point, m explore.Metrics) error {
	body := explore.EncodeEntry(pt, m)
	req, err := http.NewRequest(http.MethodPut, p.base+"/v1/cache/"+pt.Hash(), bytes.NewReader(body))
	if err != nil {
		p.errs.Add(1)
		return fmt.Errorf("fabric: cache put: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client().Do(req)
	if err != nil {
		p.errs.Add(1)
		return fmt.Errorf("fabric: cache put: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		p.errs.Add(1)
		return fmt.Errorf("fabric: cache put: peer status %s", resp.Status)
	}
	return nil
}

// Tiered is the fleet-wide result store of a worker: a local
// content-addressed disk cache backed by a remote peer. Gets try the local
// tier first, then the peer (backfilling the local tier on a remote hit);
// Puts write through to both. The peer side is strictly best-effort — a
// dead peer degrades the fabric to per-worker caching, it never fails a
// sweep point.
type Tiered struct {
	// Local is the disk tier; may be nil (peer-only operation).
	Local *explore.Cache
	// Peer is the remote tier; may be nil (equivalent to using Local
	// directly).
	Peer *Peer
}

var _ explore.Store = (*Tiered)(nil)

// Get consults local then peer.
func (t *Tiered) Get(p explore.Point) (explore.Metrics, bool) {
	if t.Local != nil {
		if m, ok := t.Local.Get(p); ok {
			return m, true
		}
	}
	if t.Peer != nil {
		if m, ok := t.Peer.Get(p); ok {
			if t.Local != nil {
				t.Local.Put(p, m) //nolint:errcheck // backfill is best-effort
			}
			return m, true
		}
	}
	return explore.Metrics{}, false
}

// Put writes through to both tiers. Only a local-tier failure is reported
// (it breaks restart warm-starts and is surfaced as a record warning); the
// peer tier is best-effort and its failures show up in Peer.Stats.
func (t *Tiered) Put(p explore.Point, m explore.Metrics) error {
	var err error
	if t.Local != nil {
		err = t.Local.Put(p, m)
	}
	if t.Peer != nil {
		t.Peer.Put(p, m) //nolint:errcheck // best-effort; counted in Stats
	}
	return err
}
