package fabric

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rispp/internal/explore"
)

// benchSpec expands to 24 points — enough for rendezvous hashing to spread
// work across a 4-worker fleet without long tail shards.
var benchSpec = explore.Spec{
	Schedulers: []string{"HEF", "Molen", "SJF"},
	ACs:        []int{2, 4, 6, 8},
	Frames:     []int{4, 8},
}

// benchWorker models one remote fleet worker: each point costs `service`
// of wall-clock on that worker (its simulation time), metrics are the pure
// fakeRun function of the point. The coordinator's win — the thing this
// benchmark measures — is overlapping N workers' service time, so the
// modeled cost must live on the worker, not the coordinator.
func benchWorker(b *testing.B, service time.Duration) *httptest.Server {
	b.Helper()
	run := func(ctx context.Context, p explore.Point) (explore.Metrics, error) {
		if service > 0 {
			select {
			case <-time.After(service):
			case <-ctx.Done():
				return explore.Metrics{}, ctx.Err()
			}
		}
		return fakeRun(ctx, p)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req workerRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		eng := &explore.Engine{Run: run, Workers: 1}
		eng.ExecutePoints(r.Context(), req.Points, w) //nolint:errcheck // streamed
	}))
	b.Cleanup(srv.Close)
	return srv
}

// BenchmarkFabricSweep measures a cold sharded sweep end-to-end — HTTP
// dispatch, worker streams, canonical reassembly — against fleets of 1, 2
// and 4 workers whose per-point service time is 2ms (a stand-in for remote
// simulation capacity; in-process workers on a shared CPU cannot exhibit
// the fleet's wall-clock win). workers=1 is the serialized reference; the
// PR-10 acceptance bar is >= 2x at workers=4.
func BenchmarkFabricSweep(b *testing.B) {
	const service = 2 * time.Millisecond
	pts, err := benchSpec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			coord := NewCoordinator()
			for i := 0; i < workers; i++ {
				ws := benchWorker(b, service)
				if err := coord.Register(fmt.Sprintf("w%d", i+1), ws.URL); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lines := 0
				err := coord.Sweep(context.Background(), pts, SweepOptions{
					Emit: func([]byte) error { lines++; return nil },
				})
				if err != nil {
					b.Fatal(err)
				}
				if lines != len(pts) {
					b.Fatalf("sweep emitted %d of %d records", lines, len(pts))
				}
			}
		})
	}
}

// BenchmarkFabricOverhead is the coordinator tax in isolation: zero-service
// workers, so everything measured is dispatch, JSON decode on the worker,
// record verification and contiguous-flush reassembly. Gated so the fabric
// hot path cannot quietly bloat.
func BenchmarkFabricOverhead(b *testing.B) {
	pts, err := benchSpec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	coord := NewCoordinator()
	for i := 0; i < 4; i++ {
		ws := benchWorker(b, 0)
		if err := coord.Register(fmt.Sprintf("w%d", i+1), ws.URL); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines := 0
		err := coord.Sweep(context.Background(), pts, SweepOptions{
			Emit: func([]byte) error { lines++; return nil },
		})
		if err != nil {
			b.Fatal(err)
		}
		if lines != len(pts) {
			b.Fatalf("sweep emitted %d of %d records", lines, len(pts))
		}
	}
}
