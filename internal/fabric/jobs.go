package fabric

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// JobState is the lifecycle of an async sweep job.
type JobState string

const (
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s != JobRunning }

// ShardProgress is the per-worker progress of a job's sweep.
type ShardProgress struct {
	Worker   string `json:"worker"`
	Assigned int    `json:"assigned"`
	Done     int    `json:"done"`
}

// JobStatus is the poll snapshot of a job (GET /v1/jobs/{id}).
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Total and Done count spec points; Bytes is the size of the record
	// stream so far (the resume offset of a fully-read stream).
	Total int    `json:"total"`
	Done  int    `json:"done"`
	Bytes int64  `json:"bytes"`
	Error string `json:"error,omitempty"`
	// Shards breaks progress down per worker (coordinator-backed jobs
	// only), sorted by worker ID.
	Shards  []ShardProgress `json:"shards,omitempty"`
	Created time.Time       `json:"created"`
	Updated time.Time       `json:"updated"`
}

// Job is one asynchronous sweep: the record lines accumulate in canonical
// order inside the store, so any number of clients can stream, disconnect,
// and resume from a record offset while the sweep keeps running.
type Job struct {
	id     string
	total  int
	cancel context.CancelFunc

	mu      sync.Mutex
	lines   [][]byte
	bytes   int64
	state   JobState
	errMsg  string
	shards  map[string]*ShardProgress
	created time.Time
	updated time.Time
	changed chan struct{} // closed and replaced on every state change
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// Append records the next line of the stream (canonical order). The line
// is retained as given — callers must not reuse the buffer.
func (j *Job) Append(line []byte) {
	j.mu.Lock()
	j.lines = append(j.lines, line)
	j.bytes += int64(len(line))
	j.touch()
	j.mu.Unlock()
}

// Shard updates the per-worker progress counters.
func (j *Job) Shard(worker string, assigned, done int) {
	j.mu.Lock()
	sp := j.shards[worker]
	if sp == nil {
		sp = &ShardProgress{Worker: worker}
		j.shards[worker] = sp
	}
	sp.Assigned += assigned
	sp.Done += done
	j.touch()
	j.mu.Unlock()
}

// Finish moves the job to its terminal state: done on nil error, canceled
// on context.Canceled, failed otherwise. Idempotent after the first call.
func (j *Job) Finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	switch {
	case err == nil:
		j.state = JobDone
	case errors.Is(err, context.Canceled):
		j.state = JobCanceled
		j.errMsg = err.Error()
	default:
		j.state = JobFailed
		j.errMsg = err.Error()
	}
	j.touch()
}

// Cancel stops the job's sweep; Finish then records the terminal state.
func (j *Job) Cancel() { j.cancel() }

// Status returns a poll snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, State: j.state, Total: j.total, Done: len(j.lines),
		Bytes: j.bytes, Error: j.errMsg, Created: j.created, Updated: j.updated,
	}
	for _, sp := range j.shards {
		st.Shards = append(st.Shards, *sp)
	}
	sort.Slice(st.Shards, func(i, k int) bool { return st.Shards[i].Worker < st.Shards[k].Worker })
	return st
}

// touch must run with j.mu held: it stamps the update time and wakes every
// stream waiting for more lines.
func (j *Job) touch() {
	j.updated = time.Now().UTC()
	close(j.changed)
	j.changed = make(chan struct{})
}

// LinesFrom returns the lines at record offsets [from, len), the job state,
// and a channel that closes on the next change — the building blocks of a
// resumable stream: write the batch, and if the state is not yet terminal,
// wait on the channel for more.
func (j *Job) LinesFrom(from int) (lines [][]byte, state JobState, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from < len(j.lines) {
		lines = j.lines[from:len(j.lines):len(j.lines)]
	}
	return lines, j.state, j.changed
}

// JobStore holds the jobs of one serving process. Terminal jobs beyond the
// retention cap are evicted oldest-first; running jobs are never evicted,
// and Create fails when the store is full of them.
type JobStore struct {
	mu   sync.Mutex
	jobs map[string]*Job
	// order tracks creation order for eviction.
	order []string
	max   int
}

// NewJobStore returns a store retaining at most max jobs (64 if <= 0).
func NewJobStore(max int) *JobStore {
	if max <= 0 {
		max = 64
	}
	return &JobStore{jobs: make(map[string]*Job), max: max}
}

// Create registers a new running job over total points whose sweep can be
// stopped via cancel.
func (s *JobStore) Create(total int, cancel context.CancelFunc) (*Job, error) {
	id, err := newJobID()
	if err != nil {
		return nil, err
	}
	now := time.Now().UTC()
	j := &Job{
		id: id, total: total, cancel: cancel, state: JobRunning,
		shards: make(map[string]*ShardProgress), created: now, updated: now,
		changed: make(chan struct{}),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.jobs) >= s.max {
		if !s.evictOldestTerminal() {
			return nil, fmt.Errorf("fabric: job store full: %d jobs running", len(s.jobs))
		}
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	return j, nil
}

// Get returns the job by ID.
func (s *JobStore) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns the status of every retained job in creation order.
func (s *JobStore) List() []JobStatus {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Counts reports the running and total retained jobs (metrics hook).
func (s *JobStore) Counts() (running, retained int) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			running++
		}
		j.mu.Unlock()
	}
	return running, len(jobs)
}

// CancelAll cancels every running job — the serving layer's shutdown hook.
func (s *JobStore) CancelAll() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.Cancel()
	}
}

// evictOldestTerminal runs with s.mu held.
func (s *JobStore) evictOldestTerminal() bool {
	for k, id := range s.order {
		j, ok := s.jobs[id]
		if !ok {
			s.order = append(s.order[:k], s.order[k+1:]...)
			return s.evictOldestTerminal()
		}
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if terminal {
			delete(s.jobs, id)
			s.order = append(s.order[:k], s.order[k+1:]...)
			return true
		}
	}
	return false
}

func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("fabric: job id: %w", err)
	}
	return "j" + hex.EncodeToString(b[:]), nil
}
