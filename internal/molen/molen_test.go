package molen

import (
	"testing"

	"rispp/internal/isa"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

func seeded(t *testing.T, acs int, tr *workload.Trace) *Runtime {
	t.Helper()
	rt := New(Config{ISA: isa.H264(), NumACs: acs})
	rt.SeedFromTrace(tr)
	return rt
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New without ISA did not panic")
		}
	}()
	New(Config{})
}

func TestNoIntermediateUpgrades(t *testing.T) {
	// The defining Molen property: an SI runs either in software or at the
	// full latency of its single implementation — nothing in between.
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 2})
	rt := New(Config{ISA: is, NumACs: 12})
	rt.SeedFromTrace(tr)
	res, err := sim.Run(tr, is, rt, sim.Options{Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	// Each SI may only ever show its software latency or one selected
	// Molecule latency per hot-spot visit; count distinct latencies per SI
	// and verify each equals SW or some Molecule of the SI.
	for _, e := range res.Timeline.Events {
		si := is.SI(isa.SIID(e.SI))
		if e.Latency == si.SWLatency {
			continue
		}
		found := false
		for _, m := range si.Molecules {
			if m.Latency == e.Latency {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("SI %q ran at latency %d: neither software nor a Molecule", si.Name, e.Latency)
		}
	}
}

func TestSIBecomesAvailableOnlyWhenComplete(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	rt := seeded(t, 12, tr)
	rt.EnterHotSpot(isa.HotSpotME, 0)
	// Advance through all but the last chunk of the first unit: latency
	// must stay software.
	sw := is.SI(isa.SISAD).SWLatency
	for i := 0; ; i++ {
		if rt.Latency(isa.SISAD) != sw && rt.Loads == 0 {
			t.Fatal("SAD accelerated before its unit completed")
		}
		if rt.Loads > 0 {
			break
		}
		at, ok := rt.NextEvent()
		if !ok {
			t.Fatal("queue drained without completing a unit")
		}
		rt.Advance(at)
	}
	if rt.Latency(isa.SISAD) == sw {
		t.Fatal("SAD still software after its unit completed")
	}
}

func TestCapacityRespected(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 3})
	for _, acs := range []int{2, 5, 9, 14, 24} {
		rt := seeded(t, acs, tr)
		if _, err := sim.Run(tr, is, rt, sim.Options{}); err != nil {
			t.Fatalf("ACs=%d: %v", acs, err)
		}
		if got := rt.resident(); got > acs {
			t.Fatalf("ACs=%d: resident %d units exceed capacity", acs, got)
		}
	}
}

func TestCompleteUnitsSurviveWhenCapacityAllows(t *testing.T) {
	// With a fabric big enough for everything, frame 2 must not reload
	// anything: reconfigurations happen once.
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 3})
	rt := seeded(t, 100, tr)
	if _, err := sim.Run(tr, is, rt, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if rt.Loads != 9 { // one unit per SI, loaded exactly once
		t.Fatalf("unit loads = %d, want 9 (one per SI)", rt.Loads)
	}
}

func TestRotationForcesReloads(t *testing.T) {
	// With a small fabric the ME→EE→LF rotation must displace units and
	// reload them every frame — the inefficiency RISPP addresses.
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 4})
	rt := seeded(t, 10, tr)
	if _, err := sim.Run(tr, is, rt, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if rt.Loads < 12 {
		t.Fatalf("unit loads = %d; rotation should force reloads", rt.Loads)
	}
}

func TestMolenSlowerThanRISPPNeverFaster(t *testing.T) {
	// Table 2's premise: the Molen-like system is never faster than RISPP
	// with any scheduler, given the same hardware.
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 3})
	for _, acs := range []int{6, 10, 16} {
		rt := seeded(t, acs, tr)
		res, err := sim.Run(tr, is, rt, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sw := tr.SoftwareCycles(is)
		if res.TotalCycles > sw {
			t.Fatalf("ACs=%d: Molen slower than pure software (%d > %d)", acs, res.TotalCycles, sw)
		}
	}
}

func TestSelectAdditiveRespectsBudget(t *testing.T) {
	is := isa.H264()
	for _, acs := range []int{0, 1, 3, 7, 12, 30} {
		rt := New(Config{ISA: is, NumACs: acs})
		tr := workload.H264(workload.H264Config{Frames: 1})
		rt.SeedFromTrace(tr)
		rt.EnterHotSpot(isa.HotSpotEE, 0)
		total := rt.resident()
		if total > acs {
			t.Fatalf("ACs=%d: selection reserved %d containers", acs, total)
		}
	}
}

func TestResetRestoresSeedsAndState(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	rt := seeded(t, 10, tr)
	if _, err := sim.Run(tr, is, rt, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	rt.Reset()
	if rt.Loads != 0 || rt.AtomLoads != 0 || rt.resident() != 0 {
		t.Fatal("Reset incomplete")
	}
	if rt.mon.Expected(isa.HotSpotME, isa.SISAD) == 0 {
		t.Fatal("seeds lost on Reset")
	}
}

func TestAdvanceOnIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance on idle port did not panic")
		}
	}()
	New(Config{ISA: isa.H264(), NumACs: 4}).Advance(0)
}

func TestName(t *testing.T) {
	if New(Config{ISA: isa.H264()}).Name() != "Molen" {
		t.Fatal("Name broken")
	}
}
