// Package molen implements the state-of-the-art baseline the paper compares
// against (Section 5, Table 2): a Molen-like reconfigurable processor
// system with a dynamic instruction set but a single, monolithic
// implementation per Special Instruction.
//
// Differences to RISPP, per the paper's characterization of [19]/[21]:
//
//   - One implementation per SI: an SI is either fully reconfigured (then it
//     runs at its selected Molecule's latency) or it executes in software.
//     There are no intermediate upgrade steps.
//   - The implementations are monolithic custom computing units, so no
//     hardware is shared between SIs: each resident SI occupies containers
//     equal to its implementation size.
//   - The reconfiguration sequence is explicitly predetermined (set/execute
//     instructions emitted at compile time): at every hot-spot entry the
//     required units are loaded in fixed program order.
//
// For a fair comparison the same hardware accelerators are provided: the
// implementations are the very Molecules the RISPP selection would pick,
// loaded through the same reconfiguration-port timing.
package molen

import (
	"rispp/internal/isa"
	"rispp/internal/monitor"
	"rispp/internal/reconfig"
	"rispp/internal/sched"
	"rispp/internal/selection"
	"rispp/internal/workload"
)

// Config assembles the baseline system.
type Config struct {
	ISA          *isa.ISA
	NumACs       int // container capacity, in Atom-sized units
	Timing       reconfig.Timing
	MonitorShift uint
}

// unit is one monolithic SI implementation resident in (or loading into)
// the reconfigurable fabric. The zero unit means "not resident".
type unit struct {
	mol      isa.Molecule
	size     int // containers occupied (reserved at load start)
	loaded   int // atoms of the bitstream already configured
	active   bool
	complete bool
	lastUse  int64
}

// Runtime is the Molen-like baseline; it implements sim.Runtime.
type Runtime struct {
	cfg Config
	mon *monitor.Monitor

	units []unit     // indexed by SIID; active marks resident/loading units
	queue []isa.SIID // SIs waiting for the port, program order
	qhead int        // consumed prefix of queue (keeps the backing array)

	inflight   isa.SIID
	hasInflite bool
	completeAt int64
	portFree   int64

	// Loads counts completed unit reconfigurations (whole SIs).
	Loads int
	// AtomLoads counts individual Atom-sized bitstream loads.
	AtomLoads int

	// Budget-sensitivity accounting for delta-resimulation (see
	// BudgetSensitivity): the container demand of the run so far and
	// whether any budget-dependent filter fired.
	demand      int
	selRejected bool
	evicted     bool

	seeds map[isa.SIID]int64

	// Reusable arenas for the per-hot-spot selection, recycled across calls
	// and Resets so steady-state operation performs no allocations.
	cands     []selection.Candidate
	protected []bool // indexed by SIID: member of the current selection
	selChosen []*isa.Molecule
	selCurLat []int
	selReqs   []sched.Request
	spotSIs   map[isa.HotSpotID][]*isa.SI // per-Runtime cache of ISA.HotSpotSIs
}

// New builds the baseline runtime.
func New(cfg Config) *Runtime {
	if cfg.ISA == nil {
		panic("molen: Config.ISA is required")
	}
	if cfg.Timing == (reconfig.Timing{}) {
		cfg.Timing = reconfig.DefaultTiming()
	}
	r := &Runtime{cfg: cfg, seeds: make(map[isa.SIID]int64)}
	r.Reset()
	return r
}

// Name identifies the baseline.
func (r *Runtime) Name() string { return "Molen" }

// Seed installs a design-time execution-count estimate (Molen's
// reconfiguration decisions are fixed at compile time from profiling).
func (r *Runtime) Seed(si isa.SIID, expected int64) {
	r.seeds[si] = expected
	r.mon.Seed(si, expected)
}

// SeedFromTrace seeds estimates from the first occurrence of each hot spot.
func (r *Runtime) SeedFromTrace(tr *workload.Trace) {
	seen := make(map[isa.HotSpotID]bool)
	for i := range tr.Phases {
		p := &tr.Phases[i]
		if seen[p.HotSpot] {
			continue
		}
		seen[p.HotSpot] = true
		per := make(map[isa.SIID]int64)
		for _, b := range p.Bursts {
			per[b.SI] += int64(b.Count)
		}
		for si, n := range per {
			r.Seed(si, n)
		}
	}
}

// Reset returns the fabric to power-on state. All backing storage (monitor
// tables, unit table, queue, selection arenas) is kept and recycled, so
// Reset followed by a run allocates nothing in the steady state.
func (r *Runtime) Reset() {
	if r.mon == nil {
		r.mon = monitor.New(r.cfg.ISA, r.cfg.MonitorShift)
		r.units = make([]unit, len(r.cfg.ISA.SIs))
		r.protected = make([]bool, len(r.cfg.ISA.SIs))
		r.spotSIs = make(map[isa.HotSpotID][]*isa.SI)
	} else {
		r.mon.Reset()
		for i := range r.units {
			r.units[i] = unit{}
		}
	}
	for si, n := range r.seeds {
		r.mon.Seed(si, n)
	}
	r.queue = r.queue[:0]
	r.qhead = 0
	r.hasInflite = false
	r.completeAt = 0
	r.portFree = 0
	r.Loads = 0
	r.AtomLoads = 0
	r.demand = 0
	r.selRejected = false
	r.evicted = false
}

// hotSpotSIs returns the SIs of hot spot h, cached per Runtime: the ISA is
// immutable but shared across goroutines, so the cache lives here. It
// survives Reset — it is derived purely from the ISA.
func (r *Runtime) hotSpotSIs(h isa.HotSpotID) []*isa.SI {
	sis, ok := r.spotSIs[h]
	if !ok {
		sis = r.cfg.ISA.HotSpotSIs(h)
		r.spotSIs[h] = sis
	}
	return sis
}

// resident returns the containers currently occupied (reserved).
func (r *Runtime) resident() int {
	n := 0
	for i := range r.units {
		if r.units[i].active {
			n += r.units[i].size
		}
	}
	return n
}

// EnterHotSpot selects one implementation per SI of the hot spot (greedy,
// additive cost — monolithic units share nothing) and programs the fixed
// load sequence. Units of other hot spots are evicted LRU as capacity
// demands.
func (r *Runtime) EnterHotSpot(h isa.HotSpotID, now int64) {
	cands := r.cands[:0]
	for _, si := range r.hotSpotSIs(h) {
		cands = append(cands, selection.Candidate{SI: si, Expected: r.mon.Expected(h, si.ID)})
	}
	r.cands = cands
	r.mon.EnterHotSpot(h)
	reqs := r.selectAdditive(cands, r.cfg.NumACs)

	// The hot-spot switch replaces the predetermined load sequence. An
	// in-flight bitstream chunk cannot be aborted: the port stays busy
	// until it finishes, but its unit is abandoned. All incomplete units
	// free their containers.
	if r.hasInflite {
		r.portFree = r.completeAt
		r.hasInflite = false
	}
	r.queue = r.queue[:0]
	r.qhead = 0
	for si := range r.units {
		if u := &r.units[si]; u.active && !u.complete {
			*u = unit{}
		}
	}

	// Keep complete resident units that match the selection; everything
	// needed but absent is (re)loaded in fixed program order (ascending SI
	// id — the order the compiler emitted the set instructions). Units of
	// the current selection are protected from eviction.
	for i := range r.protected {
		r.protected[i] = false
	}
	for _, q := range reqs {
		r.protected[q.SI.ID] = true
	}
	for _, q := range reqs {
		if u := &r.units[q.SI.ID]; u.active {
			if u.mol.Atoms.Equal(q.Selected.Atoms) {
				u.lastUse = now
				continue
			}
			*u = unit{} // different implementation selected
		}
		r.enqueue(q.SI.ID, q.Selected, now)
	}
}

// enqueue reserves capacity (evicting LRU units of other hot spots) and
// queues the unit for the port. Units of the current selection (r.protected)
// are never victims. If capacity cannot be freed the SI stays in software.
func (r *Runtime) enqueue(si isa.SIID, mol isa.Molecule, now int64) {
	size := mol.Determinant()
	if d := r.resident() + size; d > r.demand {
		r.demand = d
	}
	for r.resident()+size > r.cfg.NumACs {
		r.evicted = true
		victim := -1
		var oldest int64
		// Ascending scan with strict <: among the least recently used units
		// the smallest SIID wins, matching the previous map iteration with
		// its explicit tie-break.
		for vsi := range r.units {
			u := &r.units[vsi]
			if !u.active || r.protected[vsi] {
				continue
			}
			if victim < 0 || u.lastUse < oldest {
				victim, oldest = vsi, u.lastUse
			}
		}
		if victim < 0 {
			return // nothing evictable; SI remains in software
		}
		r.units[victim] = unit{}
	}
	r.units[si] = unit{mol: mol, size: size, active: true, lastUse: now}
	r.queue = append(r.queue, si)
	if now > r.portFree {
		r.portFree = now
	}
}

// LeaveHotSpot finalizes monitoring.
func (r *Runtime) LeaveHotSpot(now int64) { r.mon.LeaveHotSpot() }

// Latency: the selected implementation if fully reconfigured, software
// otherwise — Molen systems "cannot upgrade during run time".
func (r *Runtime) Latency(si isa.SIID) int {
	if u := &r.units[si]; u.active && u.complete {
		return u.mol.Latency
	}
	return r.cfg.ISA.SI(si).SWLatency
}

// Record feeds the monitor.
func (r *Runtime) Record(si isa.SIID, n int64, now int64) {
	r.mon.Record(si, n)
	if u := &r.units[si]; u.active {
		u.lastUse = now
	}
}

func (r *Runtime) start() {
	for !r.hasInflite {
		if r.qhead >= len(r.queue) {
			return
		}
		si := r.queue[r.qhead]
		u := &r.units[si]
		if !u.active || u.complete {
			r.qhead++
			continue
		}
		// Load the next atom-sized bitstream chunk of the unit. A
		// monolithic implementation's bitstream is the concatenation of
		// its data paths' bitstreams; we charge the same per-atom times
		// the RISPP fabric pays.
		atom := nthAtom(u.mol, u.loaded)
		dur := r.cfg.Timing.LoadCycles(r.cfg.ISA.Atom(atom).BitstreamBytes)
		r.inflight = si
		r.hasInflite = true
		r.completeAt = r.portFree + dur
		return
	}
}

// nthAtom returns the n-th Atom (in vector order) of a Molecule.
func nthAtom(m isa.Molecule, n int) isa.AtomID {
	for i, c := range m.Atoms {
		if n < c {
			return isa.AtomID(i)
		}
		n -= c
	}
	panic("molen: atom index out of range")
}

// NextEvent returns the next per-atom load completion.
func (r *Runtime) NextEvent() (int64, bool) {
	r.start()
	if !r.hasInflite {
		return 0, false
	}
	return r.completeAt, true
}

// Advance completes the in-flight atom chunk; when the unit's last chunk is
// configured the SI becomes available at full (selected) performance.
func (r *Runtime) Advance(t int64) {
	r.start()
	if !r.hasInflite {
		panic("molen: Advance on idle port")
	}
	r.portFree = r.completeAt
	r.hasInflite = false
	r.AtomLoads++
	si := r.inflight
	if u := &r.units[si]; u.active && !u.complete {
		u.loaded++
		if u.loaded == u.size {
			u.complete = true
			r.Loads++
		}
	}
}

// selectAdditive is the greedy selection with additive container cost: no
// Atom sharing between monolithic units. It runs in the Runtime's arenas;
// the returned requests are only valid until the next call.
func (r *Runtime) selectAdditive(cands []selection.Candidate, numACs int) []sched.Request {
	if cap(r.selChosen) < len(cands) {
		r.selChosen = make([]*isa.Molecule, len(cands))
		r.selCurLat = make([]int, len(cands))
	} else {
		r.selChosen = r.selChosen[:len(cands)]
		r.selCurLat = r.selCurLat[:len(cands)]
		for i := range r.selChosen {
			r.selChosen[i] = nil
		}
	}
	chosen, curLat := r.selChosen, r.selCurLat
	used := 0
	for i, c := range cands {
		curLat[i] = c.SI.SWLatency
	}
	for {
		bestI, bestJ := -1, -1
		var bestNum, bestDen int64
		for i, c := range cands {
			if c.Expected <= 0 {
				continue
			}
			base := 0
			if chosen[i] != nil {
				base = chosen[i].Determinant()
			}
			for j := range c.SI.Molecules {
				m := &c.SI.Molecules[j]
				if m.Latency >= curLat[i] {
					continue
				}
				cost := int64(m.Determinant() - base)
				if cost <= 0 {
					continue // monolithic re-synthesis never shrinks below current
				}
				if used+int(cost) > numACs {
					r.selRejected = true
					continue
				}
				gain := c.Expected * int64(curLat[i]-m.Latency)
				if bestI < 0 || gain*bestDen > bestNum*cost {
					bestI, bestJ, bestNum, bestDen = i, j, gain, cost
				}
			}
		}
		if bestI < 0 {
			break
		}
		prev := 0
		if chosen[bestI] != nil {
			prev = chosen[bestI].Determinant()
		}
		chosen[bestI] = &cands[bestI].SI.Molecules[bestJ]
		curLat[bestI] = chosen[bestI].Latency
		used += chosen[bestI].Determinant() - prev
	}
	if used > r.demand {
		r.demand = used
	}
	reqs := r.selReqs[:0]
	for i, c := range cands {
		if chosen[i] != nil {
			reqs = append(reqs, sched.Request{SI: c.SI, Selected: *chosen[i], Expected: c.Expected})
		}
	}
	r.selReqs = reqs
	return reqs
}

// --- delta-resimulation checkpointing (sim.Checkpointable) ---------------

// State is an opaque checkpoint of the baseline at a phase boundary; see
// core.State for the transfer rules. The unit table is indexed by SIID, so
// it transfers unchanged between budgets.
type State struct {
	mon        monitor.State
	units      []unit
	queue      []isa.SIID // unconsumed suffix
	inflight   isa.SIID
	hasInflite bool
	completeAt int64
	portFree   int64
	loads      int
	atomLoads  int

	demand      int
	selRejected bool
	evicted     bool
}

// ContainerBudget returns the capacity checkpoint transfers are measured
// against.
func (r *Runtime) ContainerBudget() int { return r.cfg.NumACs }

// NewState allocates an empty checkpoint arena for SaveState.
func (r *Runtime) NewState() any { return new(State) }

// SaveState deep-copies the runtime's mutable state into dst (a *State from
// NewState). Must be called at a phase boundary.
func (r *Runtime) SaveState(dst any) {
	s := dst.(*State)
	r.mon.SaveInto(&s.mon)
	s.units = append(s.units[:0], r.units...)
	s.queue = append(s.queue[:0], r.queue[r.qhead:]...)
	s.inflight = r.inflight
	s.hasInflite = r.hasInflite
	s.completeAt = r.completeAt
	s.portFree = r.portFree
	s.loads = r.Loads
	s.atomLoads = r.AtomLoads
	s.demand = r.demand
	s.selRejected = r.selRejected
	s.evicted = r.evicted
}

// RestoreState overwrites the runtime's state with a saved one, replacing
// the Reset a fresh run would perform. The protected marks need no capture:
// they are rewritten before use on every hot-spot entry.
func (r *Runtime) RestoreState(src any) {
	s := src.(*State)
	r.mon.RestoreFrom(&s.mon)
	copy(r.units, s.units)
	r.queue = append(r.queue[:0], s.queue...)
	r.qhead = 0
	r.inflight = s.inflight
	r.hasInflite = s.hasInflite
	r.completeAt = s.completeAt
	r.portFree = s.portFree
	r.Loads = s.loads
	r.AtomLoads = s.atomLoads
	r.demand = s.demand
	r.selRejected = s.selRejected
	r.evicted = s.evicted
}

// BudgetSensitivity reports how the run so far depended on the container
// capacity: demand is the largest capacity any decision required (the
// additive selection's committed cost and the reservation peak at enqueue),
// upOK that no capacity filter fired at all — so the prefix transfers to
// smaller budgets ≥ demand and, when upOK, to larger ones. The argument
// mirrors core.(*Manager).BudgetSensitivity.
func (r *Runtime) BudgetSensitivity() (demand int, upOK bool) {
	return r.demand, !r.selRejected && !r.evicted
}
