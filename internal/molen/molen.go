// Package molen implements the state-of-the-art baseline the paper compares
// against (Section 5, Table 2): a Molen-like reconfigurable processor
// system with a dynamic instruction set but a single, monolithic
// implementation per Special Instruction.
//
// Differences to RISPP, per the paper's characterization of [19]/[21]:
//
//   - One implementation per SI: an SI is either fully reconfigured (then it
//     runs at its selected Molecule's latency) or it executes in software.
//     There are no intermediate upgrade steps.
//   - The implementations are monolithic custom computing units, so no
//     hardware is shared between SIs: each resident SI occupies containers
//     equal to its implementation size.
//   - The reconfiguration sequence is explicitly predetermined (set/execute
//     instructions emitted at compile time): at every hot-spot entry the
//     required units are loaded in fixed program order.
//
// For a fair comparison the same hardware accelerators are provided: the
// implementations are the very Molecules the RISPP selection would pick,
// loaded through the same reconfiguration-port timing.
package molen

import (
	"rispp/internal/isa"
	"rispp/internal/monitor"
	"rispp/internal/reconfig"
	"rispp/internal/sched"
	"rispp/internal/selection"
	"rispp/internal/workload"
)

// Config assembles the baseline system.
type Config struct {
	ISA          *isa.ISA
	NumACs       int // container capacity, in Atom-sized units
	Timing       reconfig.Timing
	MonitorShift uint
}

// unit is one monolithic SI implementation resident in (or loading into)
// the reconfigurable fabric.
type unit struct {
	mol      isa.Molecule
	size     int // containers occupied (reserved at load start)
	loaded   int // atoms of the bitstream already configured
	complete bool
	lastUse  int64
}

// Runtime is the Molen-like baseline; it implements sim.Runtime.
type Runtime struct {
	cfg Config
	mon *monitor.Monitor

	units map[isa.SIID]*unit // resident or loading units
	queue []isa.SIID         // SIs waiting for the port, program order

	inflight   isa.SIID
	hasInflite bool
	completeAt int64
	portFree   int64

	// Loads counts completed unit reconfigurations (whole SIs).
	Loads int
	// AtomLoads counts individual Atom-sized bitstream loads.
	AtomLoads int

	seeds map[isa.SIID]int64
}

// New builds the baseline runtime.
func New(cfg Config) *Runtime {
	if cfg.ISA == nil {
		panic("molen: Config.ISA is required")
	}
	if cfg.Timing == (reconfig.Timing{}) {
		cfg.Timing = reconfig.DefaultTiming()
	}
	r := &Runtime{cfg: cfg, seeds: make(map[isa.SIID]int64)}
	r.Reset()
	return r
}

// Name identifies the baseline.
func (r *Runtime) Name() string { return "Molen" }

// Seed installs a design-time execution-count estimate (Molen's
// reconfiguration decisions are fixed at compile time from profiling).
func (r *Runtime) Seed(si isa.SIID, expected int64) {
	r.seeds[si] = expected
	r.mon.Seed(si, expected)
}

// SeedFromTrace seeds estimates from the first occurrence of each hot spot.
func (r *Runtime) SeedFromTrace(tr *workload.Trace) {
	seen := make(map[isa.HotSpotID]bool)
	for i := range tr.Phases {
		p := &tr.Phases[i]
		if seen[p.HotSpot] {
			continue
		}
		seen[p.HotSpot] = true
		per := make(map[isa.SIID]int64)
		for _, b := range p.Bursts {
			per[b.SI] += int64(b.Count)
		}
		for si, n := range per {
			r.Seed(si, n)
		}
	}
}

// Reset returns the fabric to power-on state.
func (r *Runtime) Reset() {
	r.mon = monitor.New(r.cfg.ISA, r.cfg.MonitorShift)
	for si, n := range r.seeds {
		r.mon.Seed(si, n)
	}
	r.units = make(map[isa.SIID]*unit)
	r.queue = nil
	r.hasInflite = false
	r.portFree = 0
	r.Loads = 0
	r.AtomLoads = 0
}

// resident returns the containers currently occupied (reserved).
func (r *Runtime) resident() int {
	n := 0
	for _, u := range r.units {
		n += u.size
	}
	return n
}

// EnterHotSpot selects one implementation per SI of the hot spot (greedy,
// additive cost — monolithic units share nothing) and programs the fixed
// load sequence. Units of other hot spots are evicted LRU as capacity
// demands.
func (r *Runtime) EnterHotSpot(h isa.HotSpotID, now int64) {
	is := r.cfg.ISA
	var cands []selection.Candidate
	for _, si := range is.HotSpotSIs(h) {
		cands = append(cands, selection.Candidate{SI: si, Expected: r.mon.Expected(h, si.ID)})
	}
	r.mon.EnterHotSpot(h)
	reqs := selectAdditive(cands, r.cfg.NumACs)

	// The hot-spot switch replaces the predetermined load sequence. An
	// in-flight bitstream chunk cannot be aborted: the port stays busy
	// until it finishes, but its unit is abandoned. All incomplete units
	// free their containers.
	if r.hasInflite {
		r.portFree = r.completeAt
		r.hasInflite = false
	}
	r.queue = r.queue[:0]
	for si, u := range r.units {
		if !u.complete {
			delete(r.units, si)
		}
	}

	// Keep complete resident units that match the selection; everything
	// needed but absent is (re)loaded in fixed program order (ascending SI
	// id — the order the compiler emitted the set instructions). Units of
	// the current selection are protected from eviction.
	protected := make(map[isa.SIID]bool, len(reqs))
	for _, q := range reqs {
		protected[q.SI.ID] = true
	}
	for _, q := range reqs {
		if u, ok := r.units[q.SI.ID]; ok {
			if u.mol.Atoms.Equal(q.Selected.Atoms) {
				u.lastUse = now
				continue
			}
			delete(r.units, q.SI.ID) // different implementation selected
		}
		r.enqueue(q.SI.ID, q.Selected, now, protected)
	}
}

// enqueue reserves capacity (evicting LRU units of other hot spots) and
// queues the unit for the port. Units of the current selection are never
// victims. If capacity cannot be freed the SI stays in software.
func (r *Runtime) enqueue(si isa.SIID, mol isa.Molecule, now int64, protected map[isa.SIID]bool) {
	size := mol.Determinant()
	for r.resident()+size > r.cfg.NumACs {
		victim := isa.SIID(-1)
		var oldest int64
		for vsi, u := range r.units {
			if protected[vsi] {
				continue
			}
			if victim < 0 || u.lastUse < oldest || (u.lastUse == oldest && vsi < victim) {
				victim, oldest = vsi, u.lastUse
			}
		}
		if victim < 0 {
			return // nothing evictable; SI remains in software
		}
		delete(r.units, victim)
	}
	r.units[si] = &unit{mol: mol, size: size, lastUse: now}
	r.queue = append(r.queue, si)
	if now > r.portFree {
		r.portFree = now
	}
}

// LeaveHotSpot finalizes monitoring.
func (r *Runtime) LeaveHotSpot(now int64) { r.mon.LeaveHotSpot() }

// Latency: the selected implementation if fully reconfigured, software
// otherwise — Molen systems "cannot upgrade during run time".
func (r *Runtime) Latency(si isa.SIID) int {
	if u, ok := r.units[si]; ok && u.complete {
		return u.mol.Latency
	}
	return r.cfg.ISA.SI(si).SWLatency
}

// Record feeds the monitor.
func (r *Runtime) Record(si isa.SIID, n int64, now int64) {
	r.mon.Record(si, n)
	if u, ok := r.units[si]; ok {
		u.lastUse = now
	}
}

func (r *Runtime) start() {
	for !r.hasInflite {
		if len(r.queue) == 0 {
			return
		}
		si := r.queue[0]
		u, ok := r.units[si]
		if !ok || u.complete {
			r.queue = r.queue[1:]
			continue
		}
		// Load the next atom-sized bitstream chunk of the unit. A
		// monolithic implementation's bitstream is the concatenation of
		// its data paths' bitstreams; we charge the same per-atom times
		// the RISPP fabric pays.
		atom := nthAtom(u.mol, u.loaded)
		dur := r.cfg.Timing.LoadCycles(r.cfg.ISA.Atom(atom).BitstreamBytes)
		r.inflight = si
		r.hasInflite = true
		r.completeAt = r.portFree + dur
		return
	}
}

// nthAtom returns the n-th Atom (in vector order) of a Molecule.
func nthAtom(m isa.Molecule, n int) isa.AtomID {
	for i, c := range m.Atoms {
		if n < c {
			return isa.AtomID(i)
		}
		n -= c
	}
	panic("molen: atom index out of range")
}

// NextEvent returns the next per-atom load completion.
func (r *Runtime) NextEvent() (int64, bool) {
	r.start()
	if !r.hasInflite {
		return 0, false
	}
	return r.completeAt, true
}

// Advance completes the in-flight atom chunk; when the unit's last chunk is
// configured the SI becomes available at full (selected) performance.
func (r *Runtime) Advance(t int64) {
	r.start()
	if !r.hasInflite {
		panic("molen: Advance on idle port")
	}
	r.portFree = r.completeAt
	r.hasInflite = false
	r.AtomLoads++
	si := r.inflight
	if u, ok := r.units[si]; ok && !u.complete {
		u.loaded++
		if u.loaded == u.size {
			u.complete = true
			r.Loads++
		}
	}
}

// selectAdditive is the greedy selection with additive container cost: no
// Atom sharing between monolithic units.
func selectAdditive(cands []selection.Candidate, numACs int) []sched.Request {
	chosen := make([]*isa.Molecule, len(cands))
	curLat := make([]int, len(cands))
	used := 0
	for i, c := range cands {
		curLat[i] = c.SI.SWLatency
	}
	for {
		bestI, bestJ := -1, -1
		var bestNum, bestDen int64
		for i, c := range cands {
			if c.Expected <= 0 {
				continue
			}
			base := 0
			if chosen[i] != nil {
				base = chosen[i].Determinant()
			}
			for j := range c.SI.Molecules {
				m := &c.SI.Molecules[j]
				if m.Latency >= curLat[i] {
					continue
				}
				cost := int64(m.Determinant() - base)
				if cost <= 0 {
					continue // monolithic re-synthesis never shrinks below current
				}
				if used+int(cost) > numACs {
					continue
				}
				gain := c.Expected * int64(curLat[i]-m.Latency)
				if bestI < 0 || gain*bestDen > bestNum*cost {
					bestI, bestJ, bestNum, bestDen = i, j, gain, cost
				}
			}
		}
		if bestI < 0 {
			break
		}
		prev := 0
		if chosen[bestI] != nil {
			prev = chosen[bestI].Determinant()
		}
		chosen[bestI] = &cands[bestI].SI.Molecules[bestJ]
		curLat[bestI] = chosen[bestI].Latency
		used += chosen[bestI].Determinant() - prev
	}
	var reqs []sched.Request
	for i, c := range cands {
		if chosen[i] != nil {
			reqs = append(reqs, sched.Request{SI: c.SI, Selected: *chosen[i], Expected: c.Expected})
		}
	}
	return reqs
}
