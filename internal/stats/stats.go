// Package stats collects and renders the measurement artifacts of the
// paper's evaluation: per-period SI execution histograms (Figures 2 and 8),
// SI latency timelines (Figure 8), speedup tables (Table 2) and simple
// ASCII/CSV renderings for the command-line tools.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts SI executions per fixed-size cycle bucket — the paper
// plots "# of SI executions per 100K cycles".
type Histogram struct {
	BucketCycles int64
	counts       map[int][]int64 // SI → per-bucket counts
	maxBucket    int
}

// NewHistogram creates a histogram with the given bucket width in cycles.
func NewHistogram(bucketCycles int64) *Histogram {
	if bucketCycles <= 0 {
		panic("stats: bucket width must be positive")
	}
	return &Histogram{BucketCycles: bucketCycles, counts: make(map[int][]int64)}
}

// Add records count executions of SI si, the first at cycle start and each
// subsequent one per cycles later. The executions are distributed over the
// buckets they fall into without iterating each execution.
func (h *Histogram) Add(si int, start int64, count int64, per int64) {
	if count <= 0 {
		return
	}
	if per <= 0 {
		panic("stats: per-execution cycles must be positive")
	}
	row := h.counts[si]
	first := int64(0)
	for first < count {
		t := start + first*per
		b := int(t / h.BucketCycles)
		// Last execution index (exclusive) still inside bucket b:
		// start + k*per < (b+1)*BucketCycles.
		end := ((int64(b)+1)*h.BucketCycles - start + per - 1) / per
		if end > count {
			end = count
		}
		for len(row) <= b {
			row = append(row, 0)
		}
		row[b] += end - first
		if b > h.maxBucket {
			h.maxBucket = b
		}
		first = end
	}
	h.counts[si] = row
}

// Reset empties the histogram, keeping the bucket width; the simulator
// reuses histograms across runs into the same Result.
func (h *Histogram) Reset() {
	for si := range h.counts {
		delete(h.counts, si)
	}
	h.maxBucket = 0
}

// Buckets returns the number of buckets covered so far.
func (h *Histogram) Buckets() int {
	if len(h.counts) == 0 {
		return 0
	}
	return h.maxBucket + 1
}

// Counts returns the per-bucket execution counts of SI si, padded to
// Buckets() length.
func (h *Histogram) Counts(si int) []int64 {
	row := append([]int64(nil), h.counts[si]...)
	for len(row) < h.Buckets() {
		row = append(row, 0)
	}
	return row
}

// Total returns all executions recorded for SI si.
func (h *Histogram) Total(si int) int64 {
	var n int64
	for _, c := range h.counts[si] {
		n += c
	}
	return n
}

// SIs returns the SI ids present in the histogram, sorted.
func (h *Histogram) SIs() []int {
	out := make([]int, 0, len(h.counts))
	for si := range h.counts {
		out = append(out, si)
	}
	sort.Ints(out)
	return out
}

// LatencyEvent is one step of an SI latency timeline: from Cycle on, the SI
// executes with Latency cycles (an Atom load completed and upgraded a
// Molecule, or a hot-spot switch evicted Atoms).
type LatencyEvent struct {
	Cycle   int64
	SI      int
	Latency int
}

// Timeline records SI latency steps over a simulation — the "lines" part of
// Figure 8.
type Timeline struct {
	Events []LatencyEvent
}

// Reset empties the timeline, keeping its capacity for reuse.
func (t *Timeline) Reset() { t.Events = t.Events[:0] }

// Record appends a latency step; consecutive duplicates are dropped.
func (t *Timeline) Record(cycle int64, si, latency int) {
	for i := len(t.Events) - 1; i >= 0; i-- {
		if t.Events[i].SI == si {
			if t.Events[i].Latency == latency {
				return
			}
			break
		}
	}
	t.Events = append(t.Events, LatencyEvent{Cycle: cycle, SI: si, Latency: latency})
}

// LatencyAt returns the latency of SI si at the given cycle, or def when no
// event happened yet.
func (t *Timeline) LatencyAt(si int, cycle int64, def int) int {
	lat := def
	for _, e := range t.Events {
		if e.Cycle > cycle {
			break
		}
		if e.SI == si {
			lat = e.Latency
		}
	}
	return lat
}

// PerSI returns the events of one SI in order.
func (t *Timeline) PerSI(si int) []LatencyEvent {
	var out []LatencyEvent
	for _, e := range t.Events {
		if e.SI == si {
			out = append(out, e)
		}
	}
	return out
}

// Table is a simple column-aligned text table used by the bench harness to
// print the paper's tables.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with right-aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, hd := range t.Header {
		width[i] = len(hd)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells are simple
// numbers/identifiers in this repo, no quoting needed).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a unicode sparkline, scaled to the series
// maximum.
func Sparkline(series []int64) string {
	var max int64
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range series {
		if max == 0 {
			b.WriteRune(sparkRunes[0])
			continue
		}
		idx := int(v * int64(len(sparkRunes)-1) / max)
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Chart renders several integer series as rows of labelled sparklines with
// a shared scale annotation.
func Chart(labels []string, series [][]int64) string {
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}
	var b strings.Builder
	for i, s := range series {
		var max int64
		for _, v := range s {
			if v > max {
				max = v
			}
		}
		fmt.Fprintf(&b, "%-*s |%s| max=%d\n", width, labels[i], Sparkline(s), max)
	}
	return b.String()
}

// Speedup formats a speedup ratio the way the paper's Table 2 does (two
// decimals).
func Speedup(baseline, improved int64) string {
	if improved == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2f", float64(baseline)/float64(improved))
}

// SpeedupValue returns the numeric speedup baseline/improved.
func SpeedupValue(baseline, improved int64) float64 {
	if improved == 0 {
		return 0
	}
	return float64(baseline) / float64(improved)
}

// CSV renders the histogram as comma-separated values: one row per bucket,
// one column per SI. name maps SI ids to column headers.
func (h *Histogram) CSV(name func(si int) string) string {
	sis := h.SIs()
	var b strings.Builder
	b.WriteString("bucket")
	for _, si := range sis {
		b.WriteByte(',')
		b.WriteString(name(si))
	}
	b.WriteByte('\n')
	counts := make([][]int64, len(sis))
	for i, si := range sis {
		counts[i] = h.Counts(si)
	}
	for bucket := 0; bucket < h.Buckets(); bucket++ {
		fmt.Fprintf(&b, "%d", bucket)
		for i := range sis {
			fmt.Fprintf(&b, ",%d", counts[i][bucket])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the timeline as comma-separated values: cycle, SI, latency.
func (t *Timeline) CSV(name func(si int) string) string {
	var b strings.Builder
	b.WriteString("cycle,si,latency\n")
	for _, e := range t.Events {
		fmt.Fprintf(&b, "%d,%s,%d\n", e.Cycle, name(e.SI), e.Latency)
	}
	return b.String()
}
