package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramSingleBucket(t *testing.T) {
	h := NewHistogram(100)
	h.Add(0, 10, 5, 10) // executions at 10,20,30,40,50 — all in bucket 0
	if got := h.Counts(0); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Counts = %v", got)
	}
}

func TestHistogramSpansBuckets(t *testing.T) {
	h := NewHistogram(100)
	h.Add(0, 0, 10, 25) // at 0,25,...,225: buckets 0-3 get 4,4,2
	got := h.Counts(0)
	want := []int64{4, 4, 2}
	if len(got) != 3 {
		t.Fatalf("Counts = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", got, want)
		}
	}
	if h.Total(0) != 10 {
		t.Fatalf("Total = %d", h.Total(0))
	}
}

func TestHistogramMatchesNaiveSpread(t *testing.T) {
	// Property: the arithmetic bucket filling equals the per-execution loop.
	err := quick.Check(func(startRaw, countRaw, perRaw uint16) bool {
		start := int64(startRaw)
		count := int64(countRaw%200) + 1
		per := int64(perRaw%500) + 1
		fast := NewHistogram(100)
		fast.Add(0, start, count, per)
		naive := map[int]int64{}
		for k := int64(0); k < count; k++ {
			naive[int((start+k*per)/100)]++
		}
		got := fast.Counts(0)
		var total int64
		for b, n := range naive {
			if b >= len(got) || got[b] != n {
				return false
			}
			total += n
		}
		return total == count
	}, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMultipleSIs(t *testing.T) {
	h := NewHistogram(100)
	h.Add(3, 0, 2, 10)
	h.Add(1, 150, 1, 10)
	sis := h.SIs()
	if len(sis) != 2 || sis[0] != 1 || sis[1] != 3 {
		t.Fatalf("SIs = %v", sis)
	}
	if h.Buckets() != 2 {
		t.Fatalf("Buckets = %d", h.Buckets())
	}
	// Padding to shared bucket count.
	if got := h.Counts(3); len(got) != 2 || got[1] != 0 {
		t.Fatalf("padded counts = %v", got)
	}
}

func TestHistogramZeroCountIgnored(t *testing.T) {
	h := NewHistogram(100)
	h.Add(0, 0, 0, 10)
	if h.Buckets() != 0 {
		t.Fatal("zero count created buckets")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0) },
		func() { NewHistogram(10).Add(0, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTimelineRecordAndQuery(t *testing.T) {
	var tl Timeline
	tl.Record(0, 1, 1090)
	tl.Record(500, 1, 132)
	tl.Record(500, 2, 700)
	tl.Record(800, 1, 132) // duplicate latency, dropped
	if len(tl.Events) != 3 {
		t.Fatalf("events = %v", tl.Events)
	}
	if got := tl.LatencyAt(1, 499, -1); got != 1090 {
		t.Fatalf("LatencyAt(1,499) = %d", got)
	}
	if got := tl.LatencyAt(1, 500, -1); got != 132 {
		t.Fatalf("LatencyAt(1,500) = %d", got)
	}
	if got := tl.LatencyAt(7, 100, -1); got != -1 {
		t.Fatalf("LatencyAt(unknown) = %d", got)
	}
	if got := tl.PerSI(1); len(got) != 2 {
		t.Fatalf("PerSI = %v", got)
	}
}

func TestTimelineDuplicateAfterOtherSI(t *testing.T) {
	var tl Timeline
	tl.Record(0, 1, 100)
	tl.Record(10, 2, 200)
	tl.Record(20, 1, 100) // still SI 1's latest latency — dropped
	if len(tl.Events) != 2 {
		t.Fatalf("events = %v", tl.Events)
	}
	tl.Record(30, 1, 50)
	if len(tl.Events) != 3 {
		t.Fatalf("events = %v", tl.Events)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"#ACs", "HEF"}}
	tb.AddRow("5", "1.09")
	tb.AddRow("24", "2.38")
	s := tb.String()
	if !strings.Contains(s, "#ACs") || !strings.Contains(s, "2.38") {
		t.Fatalf("table rendering broken:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "#ACs,HEF\n") || !strings.Contains(csv, "24,2.38") {
		t.Fatalf("CSV broken:\n%s", csv)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]int64{0, 4, 8})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline = %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[2] != '█' {
		t.Fatalf("sparkline scale wrong: %q", s)
	}
	if Sparkline([]int64{0, 0}) != "▁▁" {
		t.Fatal("all-zero sparkline wrong")
	}
}

func TestChart(t *testing.T) {
	out := Chart([]string{"SAD", "SATD"}, [][]int64{{1, 2, 3}, {3, 2, 1}})
	if !strings.Contains(out, "SAD") || !strings.Contains(out, "max=3") {
		t.Fatalf("chart broken:\n%s", out)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(238, 100); got != "2.38" {
		t.Fatalf("Speedup = %q", got)
	}
	if got := Speedup(10, 0); got != "inf" {
		t.Fatalf("Speedup/0 = %q", got)
	}
	if got := SpeedupValue(300, 200); got != 1.5 {
		t.Fatalf("SpeedupValue = %v", got)
	}
	if got := SpeedupValue(1, 0); got != 0 {
		t.Fatalf("SpeedupValue/0 = %v", got)
	}
}

func TestHistogramCSV(t *testing.T) {
	h := NewHistogram(100)
	h.Add(0, 0, 5, 10)
	h.Add(2, 150, 3, 10)
	csv := h.CSV(func(si int) string { return map[int]string{0: "SAD", 2: "DCT"}[si] })
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "bucket,SAD,DCT" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 { // 2 buckets + header
		t.Fatalf("lines = %v", lines)
	}
	if lines[1] != "0,5,0" || lines[2] != "1,0,3" {
		t.Fatalf("rows = %v", lines[1:])
	}
}

func TestTimelineCSV(t *testing.T) {
	var tl Timeline
	tl.Record(0, 1, 1110)
	tl.Record(500, 1, 38)
	csv := tl.CSV(func(si int) string { return "SAD" })
	if !strings.Contains(csv, "cycle,si,latency\n0,SAD,1110\n500,SAD,38\n") {
		t.Fatalf("timeline CSV:\n%s", csv)
	}
}
