package scenario

// The shipped scenario registry. Every *.json file under data/ is a
// single Spec document, embedded into the binary, decoded and validated
// at init — a malformed shipped scenario fails the build's tests, not a
// user's request.
//
// Ownership rule: the registry is append-only. A published name is a
// cache key (explore.Point.Scenario participates in the content-addressed
// result cache) and an experiment axis (EXPERIMENTS.md tables cite
// scenario names), so changing a shipped file would silently invalidate
// both. Edits therefore require a new scenario name; the digest-pinning
// test in scenario_test.go turns violations into test failures.

import (
	"bytes"
	"embed"
	"fmt"
	"sort"
)

//go:embed data/*.json
var dataFS embed.FS

var registry = loadRegistry()

func loadRegistry() map[string]*Scenario {
	entries, err := dataFS.ReadDir("data")
	if err != nil {
		panic(fmt.Sprintf("scenario: embedded data: %v", err))
	}
	reg := make(map[string]*Scenario, len(entries))
	for _, e := range entries {
		raw, err := dataFS.ReadFile("data/" + e.Name())
		if err != nil {
			panic(fmt.Sprintf("scenario: read %s: %v", e.Name(), err))
		}
		sc, err := Decode(bytes.NewReader(raw))
		if err != nil {
			panic(fmt.Sprintf("scenario: %s: %v", e.Name(), err))
		}
		want := sc.Name() + ".json"
		if e.Name() != want {
			panic(fmt.Sprintf("scenario: %s declares name %q (file must be %s)", e.Name(), sc.Name(), want))
		}
		reg[sc.Name()] = sc
	}
	return reg
}

// Find returns the shipped scenario with the given name.
func Find(name string) (*Scenario, bool) {
	sc, ok := registry[name]
	return sc, ok
}

// Names returns the shipped scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
