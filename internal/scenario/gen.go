package scenario

import (
	"fmt"
	"math/rand"
)

// GenSpec generates a random, valid-by-construction scenario spec — the
// scenario-side counterpart of oracle.GenHardware/GenWorkload. The oracle
// corpus test expands hundreds of generated specs and cross-checks each
// expansion field-exactly against the reference interpreter; the property
// tests reuse it to probe the validator and the expander. Generated specs
// are small on purpose (tiny macroblock counts, short bursts) so a corpus
// run stays fast.
func GenSpec(r *rand.Rand) Spec {
	spec := Spec{
		Name:        fmt.Sprintf("gen-%d", r.Intn(1_000_000)),
		Description: "generated corpus scenario",
		Seed:        r.Int63n(1 << 32),
	}
	if r.Intn(2) == 0 {
		spec.Kind = KindMultiApp
		n := 2 + r.Intn(2)
		for i := 0; i < n; i++ {
			spec.Apps = append(spec.Apps, genApp(r))
		}
		spec.Switch = genSwitch(r, n)
	} else {
		spec.Kind = KindControlFlow
		if r.Intn(10) < 3 {
			spec.Content = genContent(r)
		} else {
			app := genApp(r)
			spec.Apps = []App{app}
			spec.Branch = genBranch(r, app.hotSpotNames())
		}
	}
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("scenario: GenSpec produced an invalid spec: %v", err))
	}
	return spec
}

func genApp(r *rand.Rand) App {
	var app App
	switch r.Intn(4) {
	case 0:
		app = App{Library: "h264", MBs: 1 + r.Intn(3)}
	case 1:
		app = App{Library: "crypto"}
	case 2:
		app = App{Library: "audio"}
	default:
		app = App{Library: "custom", Custom: genCustomISA(r)}
	}
	if r.Intn(2) == 0 {
		app.Scale = []float64{0.25, 0.5, 1, 2}[r.Intn(4)]
	}
	if r.Intn(3) == 0 {
		app.Gap = r.Intn(16)
	}
	if r.Intn(3) == 0 {
		app.Setup = r.Int63n(50_000)
	}
	return app
}

func genSwitch(r *rand.Rand, numApps int) *Switch {
	switch r.Intn(3) {
	case 0:
		return nil // default round-robin
	case 1:
		n := 1 + r.Intn(4)
		pat := make([]int, n)
		for i := range pat {
			pat[i] = r.Intn(numApps)
		}
		return &Switch{Pattern: pat, Rounds: r.Intn(3)}
	default:
		return &Switch{PSwitch: 0.1 + 0.8*r.Float64(), Rounds: r.Intn(3)}
	}
}

func genBranch(r *rand.Rand, hotNames []string) *Branch {
	b := &Branch{}
	nModes := 1 + r.Intn(3)
	for i := 0; i < nModes; i++ {
		m := Mode{Name: fmt.Sprintf("m%d", i)}
		if r.Intn(2) == 0 {
			m.Scale = map[string]float64{}
			for _, h := range hotNames {
				if r.Intn(2) == 0 {
					m.Scale[h] = []float64{0.25, 0.5, 2, 4}[r.Intn(4)]
				}
			}
		}
		b.Modes = append(b.Modes, m)
	}
	if nModes > 1 && r.Intn(2) == 0 {
		b.Transition = make([][]float64, nModes)
		for i := range b.Transition {
			row := make([]float64, nModes)
			total := 0.0
			for j := range row {
				row[j] = 0.05 + r.Float64()
				total += row[j]
			}
			for j := range row {
				row[j] /= total
			}
			b.Transition[i] = row
		}
	}
	for _, h := range hotNames {
		if r.Intn(3) != 0 {
			continue
		}
		ee := EarlyExit{HotSpot: h, P: 0.1 + 0.6*r.Float64()}
		if r.Intn(2) == 0 {
			ee.Skip = true
		} else {
			ee.Scale = 0.25 + 0.5*r.Float64()
		}
		b.EarlyExit = append(b.EarlyExit, ee)
	}
	return b
}

func genContent(r *rand.Rand) *Content {
	c := &Content{
		WidthPx:     32 + 16*r.Intn(3),
		HeightPx:    32 + 16*r.Intn(3),
		Objects:     r.Intn(5),
		PanX:        float64(r.Intn(5)) - 2,
		PanY:        float64(r.Intn(5)) - 2,
		SearchRange: 1 + r.Intn(3),
	}
	if r.Intn(2) == 0 {
		c.SceneChangeFrame = 1 + r.Intn(3)
	}
	return c
}

func genCustomISA(r *rand.Rand) *CustomISA {
	nAtoms := 1 + r.Intn(3)
	c := &CustomISA{Name: "gen"}
	for i := 0; i < nAtoms; i++ {
		c.Atoms = append(c.Atoms, CustomAtom{
			Name:           fmt.Sprintf("A%d", i),
			BitstreamBytes: 1024 * (1 + r.Intn(8)),
			Slices:         r.Intn(400),
		})
	}
	nHots := 1 + r.Intn(2)
	for h := 0; h < nHots; h++ {
		c.HotSpots = append(c.HotSpots, fmt.Sprintf("hot%d", h))
	}
	// One SI per hot spot keeps every hot spot covered.
	for h := 0; h < nHots; h++ {
		k := 1 + r.Intn(nAtoms)
		si := CustomSI{
			Name:     fmt.Sprintf("SI%d", h),
			HotSpot:  h,
			Overhead: 1 + r.Intn(20),
			Round:    10 + r.Intn(80),
		}
		perm := r.Perm(nAtoms)[:k]
		grid := 1
		for _, a := range perm {
			si.Atoms = append(si.Atoms, a)
			occ := 1 + r.Intn(8)
			hw := 1 + r.Intn(4)
			si.Occ = append(si.Occ, occ)
			si.HWCyc = append(si.HWCyc, hw)
			si.SWCyc = append(si.SWCyc, hw+1+r.Intn(40))
			// Steps always include 0 so the zero Molecule exists and the
			// non-zero grid size is grid-1.
			steps := []int{0}
			for _, v := range []int{1, 2, 4, 8} {
				if r.Intn(2) == 0 {
					steps = append(steps, v)
				}
			}
			if len(steps) == 1 {
				steps = append(steps, 1+r.Intn(8))
			}
			si.Steps = append(si.Steps, steps)
			grid *= len(steps)
		}
		maxCount := grid - 1
		if maxCount > 4 {
			maxCount = 4
		}
		si.Count = 1 + r.Intn(maxCount)
		c.SIs = append(c.SIs, si)
	}
	return c
}
