package scenario

import (
	"reflect"
	"strings"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/workload"
)

// pinnedDigests is the append-only contract of the shipped library: a
// published scenario's spec (and therefore its expansion) must never change
// under the same name, because explore.Point keys — and every cache built
// on them — embed the name. Editing a data file under an existing name
// fails here; publish a new name instead.
var pinnedDigests = map[string]string{
	"branchy-modes":      "996342dc59756b503f108eb9834ec48bd72d9a4d5640f5ef61ab782cb3bde8b8",
	"early-exit-me":      "8049a412a5343eb92c90f56d3fadbf836225e50e9e23b03f2d2d9d7c9b133b6d",
	"scene-cut":          "a37eb8071d20f74e842aedb73e862e6662ca9c0c47dfaa321d051c848fc66cd4",
	"sdr-crypto":         "f14507fdbcb5e4b83ff0d9c2a5e261e3e13b8f4ce84628670b9eb2f5180bae31",
	"video-crypto":       "38a91904a322856e2ef8bf8cc6cb65c52ab661c5dc0f37797f05d79282e3f62c",
	"video-crypto-audio": "8587050a77669f22349ec5658163d16645e254dbd0d9a97686cce4511dac7286",
	"video-pip":          "0f4acb76aaf6967c649d760e8b1291ebd7a6b2b8f901bdad08c2860b86868702",
}

func TestRegistryDigestsPinned(t *testing.T) {
	names := Names()
	if len(names) != len(pinnedDigests) {
		t.Errorf("library has %d scenarios, pinned %d — new scenarios must be pinned here", len(names), len(pinnedDigests))
	}
	for _, n := range names {
		sc, ok := Find(n)
		if !ok {
			t.Fatalf("Names() lists %q but Find does not return it", n)
		}
		want, pinned := pinnedDigests[n]
		if !pinned {
			t.Errorf("scenario %q is not digest-pinned; add it (append-only!)", n)
			continue
		}
		if sc.Digest() != want {
			t.Errorf("scenario %q digest = %s, pinned %s — published scenarios are append-only; publish a new name instead of editing", n, sc.Digest(), want)
		}
	}
}

func TestLibraryShape(t *testing.T) {
	kinds := map[string]int{}
	for _, n := range Names() {
		sc, _ := Find(n)
		kinds[sc.Kind()]++
		if sc.Description() == "" {
			t.Errorf("scenario %q has no description", n)
		}
	}
	// The issue's acceptance floor: at least 3 of each kind.
	if kinds[KindMultiApp] < 3 {
		t.Errorf("library has %d multiapp scenarios, want >= 3", kinds[KindMultiApp])
	}
	if kinds[KindControlFlow] < 3 {
		t.Errorf("library has %d controlflow scenarios, want >= 3", kinds[KindControlFlow])
	}
	if _, ok := Find("no-such-scenario"); ok {
		t.Error("Find returned a scenario for an unknown name")
	}
}

// TestTraceDeterminism is the contract that makes scenario names sound
// cache keys: expansion is a pure function of (spec, frames, seed).
func TestTraceDeterminism(t *testing.T) {
	for _, n := range Names() {
		sc, _ := Find(n)
		a := sc.Trace(8, 42)
		b := sc.Trace(8, 42)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: same (frames, seed) expanded to different traces", n)
		}
		// Only stochastic scenarios (random walk, branch model, content)
		// draw from the PRNG; static-pattern multiapp scenarios are
		// seed-invariant by design.
		spec := sc.Spec()
		stochastic := spec.Branch != nil || spec.Content != nil ||
			(spec.Switch != nil && spec.Switch.PSwitch > 0)
		if !stochastic {
			continue
		}
		c := sc.Trace(8, 43)
		if reflect.DeepEqual(a, c) {
			t.Errorf("%s: seeds 42 and 43 expanded to identical traces", n)
		}
	}
}

func TestTraceValidatesAgainstISA(t *testing.T) {
	for _, n := range Names() {
		sc, _ := Find(n)
		for _, seed := range []int64{0, 1, 7} {
			tr := sc.Trace(12, seed)
			if err := tr.Validate(sc.ISA()); err != nil {
				t.Errorf("%s seed %d: %v", n, seed, err)
			}
			if len(tr.Phases) == 0 {
				t.Errorf("%s seed %d: empty trace", n, seed)
			}
			if tr.TotalExecutions() == 0 {
				t.Errorf("%s seed %d: trace with zero SI executions", n, seed)
			}
		}
	}
}

func TestScenarioISAsValid(t *testing.T) {
	for _, n := range Names() {
		sc, _ := Find(n)
		if err := sc.ISA().Validate(); err != nil {
			t.Errorf("%s: ISA invalid: %v", n, err)
		}
	}
}

// TestMultiAppSwitchPoints verifies the defining property of multiapp
// scenarios: the trace crosses between the hot-spot ranges of different
// apps (ISA switch points the run-time system must absorb).
func TestMultiAppSwitchPoints(t *testing.T) {
	for _, n := range Names() {
		sc, _ := Find(n)
		if sc.Kind() != KindMultiApp {
			continue
		}
		// Recover each app's hot-spot range from the merged ISA: merged
		// hot-spot names are "partName: hotName", so the app boundary is
		// where the prefix changes.
		is := sc.ISA()
		prefix := func(h isa.HotSpotID) string {
			name := is.HotSpots[h].Name
			i := strings.Index(name, ": ")
			if i < 0 {
				t.Fatalf("%s: merged hot spot %q lacks app prefix", n, name)
			}
			return name[:i]
		}
		tr := sc.Trace(10, 1)
		switches := 0
		for i := 1; i < len(tr.Phases); i++ {
			if prefix(tr.Phases[i].HotSpot) != prefix(tr.Phases[i-1].HotSpot) {
				switches++
			}
		}
		if switches == 0 {
			t.Errorf("%s: 10 iterations produced no ISA switch points", n)
		}
	}
}

// TestControlFlowVariesAcrossSeeds verifies the defining property of
// control-flow scenarios: the per-SI mix depends on the input, so a-priori
// forecasts made for one seed mis-predict another.
func TestControlFlowVariesAcrossSeeds(t *testing.T) {
	for _, n := range Names() {
		sc, _ := Find(n)
		if sc.Kind() != KindControlFlow {
			continue
		}
		a := sc.Trace(16, 1).Executions()
		b := sc.Trace(16, 2).Executions()
		if reflect.DeepEqual(a, b) {
			t.Errorf("%s: seeds 1 and 2 produced identical SI mixes — not input-dependent", n)
		}
	}
}

func TestSingleAppKeepsLibraryISA(t *testing.T) {
	// A controlflow scenario over the h264 library must keep the paper's
	// SI identities (no merge offsets), so forecasts and per-SI tables
	// stay comparable with the baseline workload.
	sc, ok := Find("branchy-modes")
	if !ok {
		t.Fatal("branchy-modes missing")
	}
	ref := isa.H264()
	is := sc.ISA()
	if len(is.SIs) != len(ref.SIs) || is.Dim() != ref.Dim() {
		t.Fatalf("branchy-modes ISA shape %d SIs/%d atoms, want %d/%d", len(is.SIs), is.Dim(), len(ref.SIs), ref.Dim())
	}
	for i := range ref.SIs {
		if is.SIs[i].Name != ref.SIs[i].Name {
			t.Errorf("SI %d = %q, want %q", i, is.SIs[i].Name, ref.SIs[i].Name)
		}
	}
}

func TestTraceClamping(t *testing.T) {
	sc, _ := Find("video-crypto")
	if tr := sc.Trace(0, 0); len(tr.Phases) == 0 {
		t.Error("frames=0 should clamp to 1 iteration, got empty trace")
	}
	if tr := sc.Trace(-5, 0); len(tr.Phases) == 0 {
		t.Error("negative frames should clamp to 1 iteration")
	}
}

// validSpec returns a minimal valid multiapp spec for mutation tests.
func validSpec() Spec {
	return Spec{
		Name: "t",
		Kind: KindMultiApp,
		Apps: []App{{Library: "h264", MBs: 2}, {Library: "crypto"}},
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "empty name"},
		{"bad name chars", func(s *Spec) { s.Name = "Bad_Name" }, "contains"},
		{"long name", func(s *Spec) { s.Name = strings.Repeat("a", 65) }, "longer"},
		{"unknown kind", func(s *Spec) { s.Kind = "mystery" }, "unknown kind"},
		{"multiapp one app", func(s *Spec) { s.Apps = s.Apps[:1] }, "at least 2"},
		{"multiapp with content", func(s *Spec) { s.Content = &Content{} }, "controlflow-only"},
		{"too many apps", func(s *Spec) {
			s.Apps = []App{{Library: "crypto"}, {Library: "crypto"}, {Library: "crypto"}, {Library: "crypto"}, {Library: "crypto"}}
		}, "exceeds cap"},
		{"unknown library", func(s *Spec) { s.Apps[0].Library = "fortran" }, "unknown library"},
		{"h264 mbs range", func(s *Spec) { s.Apps[0].MBs = 500 }, "outside"},
		{"scale range", func(s *Spec) { s.Apps[1].Scale = 100 }, "outside"},
		{"scale tiny", func(s *Spec) { s.Apps[1].Scale = 0.01 }, "below"},
		{"custom without ISA", func(s *Spec) { s.Apps[0] = App{Library: "custom"} }, "without custom ISA"},
		{"custom on h264", func(s *Spec) { s.Apps[0].Custom = &CustomISA{} }, "does not take"},
		{"pattern out of range", func(s *Spec) { s.Switch = &Switch{Pattern: []int{0, 2}} }, "references app"},
		{"pattern and p_switch", func(s *Spec) { s.Switch = &Switch{Pattern: []int{0}, PSwitch: 0.5} }, "mutually exclusive"},
		{"p_switch range", func(s *Spec) { s.Switch = &Switch{PSwitch: 1.5} }, "outside"},
		{"switch rounds range", func(s *Spec) { s.Switch = &Switch{Rounds: 99} }, "outside"},
		{"empty branch", func(s *Spec) { s.Branch = &Branch{} }, "neither modes nor"},
		{"mode unknown hot spot", func(s *Spec) {
			s.Branch = &Branch{Modes: []Mode{{Name: "m", Scale: map[string]float64{"nope": 2}}}}
		}, "unknown hot spot"},
		{"transition shape", func(s *Spec) {
			s.Branch = &Branch{Modes: []Mode{{Name: "a"}, {Name: "b"}}, Transition: [][]float64{{1}}}
		}, "rows"},
		{"transition not stochastic", func(s *Spec) {
			s.Branch = &Branch{Modes: []Mode{{Name: "a"}, {Name: "b"}}, Transition: [][]float64{{0.9, 0.9}, {0.5, 0.5}}}
		}, "sums to"},
		{"early exit skip and scale", func(s *Spec) {
			s.Branch = &Branch{EarlyExit: []EarlyExit{{HotSpot: "bulk encryption", P: 0.5, Skip: true, Scale: 0.5}}}
		}, "both skip and scale"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted spec mutated by %q", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateControlFlowShape(t *testing.T) {
	cf := Spec{
		Name:   "cf",
		Kind:   KindControlFlow,
		Apps:   []App{{Library: "h264", MBs: 2}},
		Branch: &Branch{Modes: []Mode{{Name: "steady"}}},
	}
	if err := cf.Validate(); err != nil {
		t.Fatalf("valid controlflow spec rejected: %v", err)
	}
	noBranch := cf
	noBranch.Branch = nil
	if err := noBranch.Validate(); err == nil || !strings.Contains(err.Error(), "branch model") {
		t.Errorf("controlflow without branch/content: err = %v", err)
	}
	twoApps := cf
	twoApps.Apps = []App{{Library: "h264"}, {Library: "crypto"}}
	if err := twoApps.Validate(); err == nil || !strings.Contains(err.Error(), "exactly 1") {
		t.Errorf("controlflow with 2 apps: err = %v", err)
	}
	content := Spec{Name: "c", Kind: KindControlFlow, Content: &Content{WidthPx: 96, HeightPx: 96}}
	if err := content.Validate(); err != nil {
		t.Fatalf("valid content spec rejected: %v", err)
	}
	contentApps := content
	contentApps.Apps = []App{{Library: "h264"}}
	if err := contentApps.Validate(); err == nil || !strings.Contains(err.Error(), "excludes") {
		t.Errorf("content + apps: err = %v", err)
	}
	badGeom := content
	badGeom.Content = &Content{WidthPx: 100, HeightPx: 96}
	if err := badGeom.Validate(); err == nil || !strings.Contains(err.Error(), "multiples of 16") {
		t.Errorf("non-16 geometry: err = %v", err)
	}
}

func TestDecodeStrict(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"name":"x","kind":"multiapp","bogus":1}`)); err == nil {
		t.Error("Decode accepted an unknown field")
	}
	if _, err := Decode(strings.NewReader(`{"name":"x","kind":"multiapp","apps":[{"library":"crypto"},{"library":"audio"}]} {"more":1}`)); err == nil {
		t.Error("Decode accepted trailing data")
	}
	if _, err := Decode(strings.NewReader(`not json`)); err == nil {
		t.Error("Decode accepted garbage")
	}
	sc, err := Decode(strings.NewReader(`{"name":"ok","kind":"multiapp","apps":[{"library":"crypto"},{"library":"audio"}]}`))
	if err != nil {
		t.Fatalf("Decode rejected a valid spec: %v", err)
	}
	if sc.Name() != "ok" || len(sc.ISA().SIs) == 0 {
		t.Errorf("decoded scenario malformed: name %q, %d SIs", sc.Name(), len(sc.ISA().SIs))
	}
}

func TestCustomISARoundTrip(t *testing.T) {
	spec := Spec{
		Name: "custom-app",
		Kind: KindControlFlow,
		Apps: []App{{
			Library: "custom",
			Custom: &CustomISA{
				Name:     "dsp",
				Atoms:    []CustomAtom{{Name: "MAC", BitstreamBytes: 4096}, {Name: "SHIFT", BitstreamBytes: 2048}},
				HotSpots: []string{"filter"},
				SIs: []CustomSI{{
					Name: "FIR", HotSpot: 0, Atoms: []int{0, 1},
					Occ: []int{8, 4}, HWCyc: []int{2, 1}, SWCyc: []int{40, 12},
					Steps: [][]int{{0, 1, 2}, {0, 1}}, Overhead: 6, Count: 4, Round: 50,
				}},
			},
		}},
		Branch: &Branch{EarlyExit: []EarlyExit{{HotSpot: "filter", P: 0.3, Scale: 0.5}}},
	}
	sc, err := New(spec)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := sc.ISA().Validate(); err != nil {
		t.Fatalf("custom ISA invalid: %v", err)
	}
	tr := sc.Trace(20, 3)
	if err := tr.Validate(sc.ISA()); err != nil {
		t.Fatalf("custom trace invalid: %v", err)
	}
	// The early-exit rule at p=0.3 over 20 iterations should fire at least
	// once: not every phase has the full 50-count burst.
	full, reduced := 0, 0
	for i := range tr.Phases {
		for _, b := range tr.Phases[i].Bursts {
			if b.Count == 50 {
				full++
			} else {
				reduced++
			}
		}
	}
	if full == 0 || reduced == 0 {
		t.Errorf("early-exit rule never fired or always fired: %d full, %d reduced bursts", full, reduced)
	}
}

func TestCustomISARejections(t *testing.T) {
	base := func() *CustomISA {
		return &CustomISA{
			Atoms:    []CustomAtom{{Name: "A", BitstreamBytes: 1024}},
			HotSpots: []string{"h"},
			SIs: []CustomSI{{
				Name: "S", HotSpot: 0, Atoms: []int{0},
				Occ: []int{4}, HWCyc: []int{2}, SWCyc: []int{20},
				Steps: [][]int{{0, 1, 2}}, Overhead: 4, Count: 2, Round: 10,
			}},
		}
	}
	cases := []struct {
		name string
		mut  func(*CustomISA)
		want string
	}{
		{"no atoms", func(c *CustomISA) { c.Atoms = nil }, "atoms"},
		{"zero bitstream", func(c *CustomISA) { c.Atoms[0].BitstreamBytes = 0 }, "bitstream"},
		{"no SIs", func(c *CustomISA) { c.SIs = nil }, "SIs"},
		{"bad hot spot ref", func(c *CustomISA) { c.SIs[0].HotSpot = 3 }, "references hot spot"},
		{"length mismatch", func(c *CustomISA) { c.SIs[0].Occ = []int{4, 4} }, "disagree"},
		{"repeated atom", func(c *CustomISA) {
			c.Atoms = append(c.Atoms, CustomAtom{Name: "B", BitstreamBytes: 512})
			c.SIs[0].Atoms = []int{0, 0}
			c.SIs[0].Occ = []int{4, 4}
			c.SIs[0].HWCyc = []int{2, 2}
			c.SIs[0].SWCyc = []int{20, 20}
			c.SIs[0].Steps = [][]int{{0, 1}, {0, 1}}
		}, "repeats atom"},
		{"sw not above hw", func(c *CustomISA) { c.SIs[0].SWCyc = []int{2} }, "not in (hw_cyc"},
		{"repeated step", func(c *CustomISA) { c.SIs[0].Steps = [][]int{{0, 1, 1}} }, "repeats"},
		{"count beyond grid", func(c *CustomISA) { c.SIs[0].Count = 5 }, "molecules of a"},
		{"uncovered hot spot", func(c *CustomISA) { c.HotSpots = []string{"h", "lonely"} }, "no SIs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mut(c)
			err := c.validate()
			if err == nil {
				t.Fatalf("validate accepted custom ISA mutated by %q", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestMixSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for pt := int64(0); pt < 4; pt++ {
			s := mixSeed(base, pt)
			if seen[s] {
				t.Fatalf("mixSeed collision at (%d, %d)", base, pt)
			}
			seen[s] = true
		}
	}
}

// TestExpansionSnapshot pins the concrete expansion of one scenario at one
// (frames, seed): phase count, execution total and first phases. If the
// expander ever changes behavior, this fails before the oracle corpus does,
// with a much smaller counterexample.
func TestExpansionSnapshot(t *testing.T) {
	sc, _ := Find("video-crypto")
	tr := sc.Trace(4, 7)
	if err := tr.Validate(sc.ISA()); err != nil {
		t.Fatal(err)
	}
	again := sc.Trace(4, 7)
	if !reflect.DeepEqual(tr, again) {
		t.Fatal("expansion not reproducible")
	}
	var hs []isa.HotSpotID
	for i := range tr.Phases {
		hs = append(hs, tr.Phases[i].HotSpot)
	}
	// Pattern [0,0,1]: two h264 turns (hot spots 0..2) then one crypto turn
	// (hot spots 3..4), repeated.
	wantFirst := []isa.HotSpotID{0, 1, 2, 0, 1, 2, 3, 4}
	if len(hs) < len(wantFirst) {
		t.Fatalf("only %d phases", len(hs))
	}
	if !reflect.DeepEqual(hs[:len(wantFirst)], wantFirst) {
		t.Errorf("first phases %v, want %v", hs[:len(wantFirst)], wantFirst)
	}
	_ = workload.Trace{} // keep the import if the snapshot shrinks
}
