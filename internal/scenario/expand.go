package scenario

// Trace expansion: the pure function from (validated spec, frames, seed)
// to a workload.Trace. All randomness flows through the single rand.Rand
// seeded by Scenario.Trace, and every draw happens in a fixed order, so
// expansion is bit-reproducible — the property the content-addressed
// cache keys of internal/explore rely on.

import (
	"math/rand"

	"rispp/internal/video"
	"rispp/internal/workload"
)

// templateTrace expands a template scenario (apps + switch + branch).
//
// Per iteration: the branch model first steps its mode Markov chain, then
// each scheduled app takes a turn (Switch.Rounds passes over its round
// templates). Per round, the current mode's scale for the round's hot
// spot applies, then each matching early-exit rule draws once — a phase
// either drops (Skip: the hot-spot order itself changes) or collapses to
// a fraction of its work. Multi-app scheduling follows Switch.Pattern
// (default round-robin) or the seeded PSwitch random walk.
func (s *Scenario) templateTrace(iters int, rng *rand.Rand) *workload.Trace {
	b := workload.NewBuilder("scenario:" + s.spec.Name)
	br := s.spec.Branch
	sw := s.spec.Switch
	mode := 0

	emitRound := func(rd *round) {
		scale := 1.0
		if br != nil && len(br.Modes) > 0 {
			if v, ok := br.Modes[mode].Scale[rd.hotName]; ok {
				scale = v
			}
		}
		if br != nil {
			for i := range br.EarlyExit {
				ee := &br.EarlyExit[i]
				if ee.HotSpot != rd.hotName {
					continue
				}
				if rng.Float64() < ee.P {
					if ee.Skip {
						scale = -1 // sentinel: drop the phase
						break
					}
					scale *= ee.Scale
				}
			}
		}
		if scale < 0 {
			return
		}
		b.Phase(rd.hot, rd.setup)
		for _, bu := range rd.bursts {
			count := bu.count
			if scale != 1 {
				count = int(float64(count)*scale + 0.5)
			}
			b.Burst(bu.si, count, bu.gap)
		}
	}
	turnRounds := 1
	if sw != nil && sw.Rounds > 0 {
		turnRounds = sw.Rounds
	}
	emitTurn := func(app *appRT) {
		for r := 0; r < turnRounds; r++ {
			for i := range app.rounds {
				emitRound(&app.rounds[i])
			}
		}
	}

	// Static schedule of one iteration (nil when PSwitch walks instead).
	var pattern []int
	walk := sw != nil && sw.PSwitch > 0
	if !walk {
		if sw != nil && len(sw.Pattern) > 0 {
			pattern = sw.Pattern
		} else {
			pattern = make([]int, len(s.apps))
			for i := range pattern {
				pattern[i] = i
			}
		}
	}
	cur := 0
	for it := 0; it < iters; it++ {
		if br != nil && len(br.Modes) > 1 && it > 0 {
			mode = nextMode(br, mode, rng)
		}
		if walk {
			emitTurn(&s.apps[cur])
			if rng.Float64() < sw.PSwitch {
				next := rng.Intn(len(s.apps) - 1)
				if next >= cur {
					next++
				}
				cur = next
			}
			continue
		}
		for _, app := range pattern {
			emitTurn(&s.apps[app])
		}
	}
	return b.Build()
}

// nextMode steps the mode Markov chain. A nil transition matrix means
// uniform re-draw.
func nextMode(br *Branch, cur int, rng *rand.Rand) int {
	n := len(br.Modes)
	if br.Transition == nil {
		return rng.Intn(n)
	}
	u := rng.Float64()
	acc := 0.0
	for j, p := range br.Transition[cur] {
		acc += p
		if u < acc {
			return j
		}
	}
	return n - 1
}

// contentTrace expands a content-driven scenario: a deterministic
// synthetic scene is rendered and actually motion-searched by
// internal/video, so SI counts and the inter/intra mix depend on what the
// virtual camera sees. The scene seed is drawn from the scenario PRNG, so
// per-point seeds select different renderings of the same setup.
func (s *Scenario) contentTrace(frames int, rng *rand.Rand) *workload.Trace {
	c := s.spec.Content
	w, h := c.WidthPx, c.HeightPx
	if w == 0 {
		w = 96
	}
	if h == 0 {
		h = 96
	}
	objects := c.Objects
	if objects == 0 {
		objects = 4
	}
	tr := video.Trace(video.TraceConfig{
		Scene: video.Scene{
			W: w, H: h,
			Seed:             rng.Int63(),
			Objects:          objects,
			PanX:             c.PanX,
			PanY:             c.PanY,
			SceneChangeFrame: c.SceneChangeFrame,
		},
		Frames:      frames,
		SearchRange: c.SearchRange,
	})
	tr.Name = "scenario:" + s.spec.Name
	return tr
}
