// Package scenario is the workload scenario library of the RISPP
// evaluation platform: new workloads are data, not code.
//
// A Spec is a small JSON document describing either a multi-application
// scenario — two or more applications with disjoint dynamic instruction
// sets (composed via isa.Merge) time-sharing one fabric, with ISA switch
// points in the trace — or a dynamic control-flow scenario, where a seeded
// branch model (mode Markov chains, early-exit rules) or a content-driven
// encoder front end (internal/video) makes the hot-spot order and SI mix
// input-dependent, so a-priori forecasts mis-predict and the monitor's
// online re-estimation matters.
//
// Specs are schema-validated, seeded and deterministic: the same
// (spec, frames, seed) always expands to the identical workload.Trace, so
// scenario names are legitimate members of the content-addressed point-key
// scheme of internal/explore. The named scenarios shipped under data/ are
// append-only: once published, a scenario's expansion must never change
// (caches and experiment tables key on the name), so edits require a new
// name — enforced by the digest-pinning test in scenario_test.go.
//
// Every scenario doubles as a verification input: the corpus tests in this
// package cross-check each expansion field-exactly (results, histograms,
// journal bytes) against the reference interpreter of internal/oracle.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"rispp/internal/isa"
	"rispp/internal/workload"
)

// Scenario kinds.
const (
	KindMultiApp    = "multiapp"
	KindControlFlow = "controlflow"
)

// Validation caps. They bound what a decoded spec may ask for, so the
// expander stays fast and panic-free on arbitrary (fuzzed) inputs.
const (
	MaxApps       = 4
	MaxIterations = 100_000
	maxAtoms      = 8
	maxSIs        = 8
	maxStepsDim   = 6
	maxGrid       = 2048
	maxMolecules  = 64
	maxModes      = 8
	maxPattern    = 64
	maxNameLen    = 64
)

// Spec is the JSON scenario description — the DSL a data file or an API
// client writes. See Validate for the schema rules.
type Spec struct {
	// Name identifies the scenario; it becomes part of explore.Point keys
	// and therefore of every cache address. Lowercase [a-z0-9-] only.
	Name string `json:"name"`
	// Kind is "multiapp" or "controlflow".
	Kind string `json:"kind"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Seed is the scenario's base PRNG seed; it is mixed with the
	// per-point seed so one scenario spans a seeded family of traces.
	Seed int64 `json:"seed,omitempty"`

	// Apps lists the applications sharing the fabric. A multiapp scenario
	// needs at least two; a controlflow scenario exactly one (or none,
	// when Content drives the trace).
	Apps []App `json:"apps,omitempty"`
	// Switch describes how a multiapp scenario interleaves its apps.
	Switch *Switch `json:"switch,omitempty"`
	// Branch is the control-flow model: workload modes walked by a seeded
	// Markov chain plus probabilistic early-exit rules.
	Branch *Branch `json:"branch,omitempty"`
	// Content derives the trace from the synthetic-video encoder front
	// end (internal/video) instead of the burst templates: motion search
	// with early termination over rendered frames, so SI counts and the
	// inter/intra mix genuinely depend on what the virtual camera sees.
	Content *Content `json:"content,omitempty"`
}

// App is one application of a scenario.
type App struct {
	// Library selects the application's dynamic instruction set and round
	// templates: "h264", "crypto", "audio", or "custom".
	Library string `json:"library"`
	// Name overrides the display name of the app's ISA.
	Name string `json:"name,omitempty"`
	// Custom holds the inline ISA of a "custom" app.
	Custom *CustomISA `json:"custom,omitempty"`
	// MBs sizes the h264 app: macroblocks per frame round (default 4;
	// the paper's CIF geometry is 396).
	MBs int `json:"mbs,omitempty"`
	// Scale multiplies every burst count of the app (default 1).
	Scale float64 `json:"scale,omitempty"`
	// Gap is the glue cycles per SI execution (default 8).
	Gap int `json:"gap,omitempty"`
	// Setup is the per-phase setup cycles (default 20000).
	Setup int64 `json:"setup,omitempty"`
}

// Switch describes multi-application interleaving: which app owns the
// fabric next. Each turn an app emits one pass over its hot-spot rounds;
// the boundary between turns of different apps is an ISA switch point.
type Switch struct {
	// Pattern is the explicit app order of one iteration (indices into
	// Apps), e.g. [0,1] for strict alternation. Empty selects round-robin
	// over all apps.
	Pattern []int `json:"pattern,omitempty"`
	// Rounds is how many passes over its rounds an app makes per turn
	// (default 1). Longer turns mean rarer, costlier ISA switches.
	Rounds int `json:"rounds,omitempty"`
	// PSwitch, when > 0, replaces the pattern with a seeded random walk:
	// after each turn the fabric switches to a uniformly chosen other app
	// with this probability — the unpredictable time-sharing the run-time
	// system cannot plan for.
	PSwitch float64 `json:"p_switch,omitempty"`
}

// Branch is the seeded control-flow model: the workload walks a Markov
// chain of modes (per-hot-spot count multipliers) and applies early-exit
// rules per phase, so both the SI mix and the hot-spot order depend on the
// input — which is exactly what invalidates a-priori forecasts.
type Branch struct {
	// Modes are the workload modes; the chain starts in Modes[0].
	Modes []Mode `json:"modes,omitempty"`
	// Transition is the row-stochastic mode transition matrix (rows must
	// sum to ~1). Empty selects the uniform matrix.
	Transition [][]float64 `json:"transition,omitempty"`
	// EarlyExit lists probabilistic per-phase rules.
	EarlyExit []EarlyExit `json:"early_exit,omitempty"`
}

// Mode is one workload mode.
type Mode struct {
	Name string `json:"name"`
	// Scale multiplies the burst counts of phases by hot-spot name (the
	// app-local name, e.g. "Motion Estimation"). Missing hot spots keep
	// their base counts.
	Scale map[string]float64 `json:"scale,omitempty"`
}

// EarlyExit is a probabilistic per-phase rule modeling data-dependent
// kernel exits (an ME search that terminates early, a skipped encoding
// pass). Each time the named hot spot would run, with probability P the
// phase is either dropped entirely (Skip — the hot-spot order changes) or
// its counts collapse to Scale of the base.
type EarlyExit struct {
	HotSpot string  `json:"hot_spot"`
	P       float64 `json:"p"`
	Skip    bool    `json:"skip,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
}

// Content derives the trace from internal/video: a deterministic rendered
// scene is actually motion-searched and mode-decided per macroblock.
type Content struct {
	// WidthPx/HeightPx size the pictures (default 96x96; must be
	// multiples of 16, capped at CIF).
	WidthPx  int `json:"width_px,omitempty"`
	HeightPx int `json:"height_px,omitempty"`
	// Objects is the number of moving foreground objects (default 4).
	Objects int `json:"objects,omitempty"`
	// PanX/PanY pan the background (pixels per frame).
	PanX float64 `json:"pan_x,omitempty"`
	PanY float64 `json:"pan_y,omitempty"`
	// SceneChangeFrame, when > 0, swaps the layout and speeds the objects
	// up from that frame on.
	SceneChangeFrame int `json:"scene_change_frame,omitempty"`
	// SearchRange is the integer-pel motion search range (default 4).
	SearchRange int `json:"search_range,omitempty"`
}

// CustomISA is an inline dynamic instruction set: the data form of
// isa.MoleculeSpec, so an application nobody anticipated can be described
// in a scenario file without writing Go.
type CustomISA struct {
	Name     string       `json:"name,omitempty"`
	Atoms    []CustomAtom `json:"atoms"`
	HotSpots []string     `json:"hot_spots"`
	SIs      []CustomSI   `json:"sis"`
}

// CustomAtom is one reconfigurable data path of a custom ISA.
type CustomAtom struct {
	Name           string `json:"name"`
	BitstreamBytes int    `json:"bitstream_bytes"`
	Slices         int    `json:"slices,omitempty"`
	LUTs           int    `json:"luts,omitempty"`
	FFs            int    `json:"ffs,omitempty"`
}

// CustomSI is one Special Instruction of a custom ISA, described through
// the mixed-execution latency model of isa.MoleculeSpec.
type CustomSI struct {
	Name     string  `json:"name"`
	HotSpot  int     `json:"hot_spot"`
	Atoms    []int   `json:"atoms"` // indices into CustomISA.Atoms
	Occ      []int   `json:"occ"`
	HWCyc    []int   `json:"hw_cyc"`
	SWCyc    []int   `json:"sw_cyc"`
	Steps    [][]int `json:"steps"`
	Overhead int     `json:"overhead"`
	Count    int     `json:"count"`
	// Round is the SI's burst count in the hot spot's round template.
	Round int `json:"round"`
}

// Validate checks the schema rules every spec must satisfy before
// expansion. It is deliberately strict: everything the expander assumes is
// checked here, so expansion of a validated spec cannot fail or panic.
func (s *Spec) Validate() error {
	if err := validateName(s.Name); err != nil {
		return err
	}
	switch s.Kind {
	case KindMultiApp:
		if s.Content != nil {
			return fmt.Errorf("scenario %s: content is controlflow-only", s.Name)
		}
		if len(s.Apps) < 2 {
			return fmt.Errorf("scenario %s: multiapp needs at least 2 apps, got %d", s.Name, len(s.Apps))
		}
	case KindControlFlow:
		if s.Content != nil {
			if len(s.Apps) != 0 || s.Branch != nil || s.Switch != nil {
				return fmt.Errorf("scenario %s: content excludes apps/branch/switch", s.Name)
			}
		} else {
			if len(s.Apps) != 1 {
				return fmt.Errorf("scenario %s: controlflow needs exactly 1 app (or content), got %d", s.Name, len(s.Apps))
			}
			if s.Branch == nil {
				return fmt.Errorf("scenario %s: controlflow needs a branch model (or content)", s.Name)
			}
		}
	default:
		return fmt.Errorf("scenario %s: unknown kind %q (want %q or %q)", s.Name, s.Kind, KindMultiApp, KindControlFlow)
	}
	if len(s.Apps) > MaxApps {
		return fmt.Errorf("scenario %s: %d apps exceeds cap %d", s.Name, len(s.Apps), MaxApps)
	}
	hotNames := map[string]bool{}
	for i := range s.Apps {
		if err := s.Apps[i].validate(); err != nil {
			return fmt.Errorf("scenario %s: app %d: %w", s.Name, i, err)
		}
		for _, h := range s.Apps[i].hotSpotNames() {
			hotNames[h] = true
		}
	}
	if s.Switch != nil {
		if s.Kind != KindMultiApp {
			return fmt.Errorf("scenario %s: switch is multiapp-only", s.Name)
		}
		if err := s.Switch.validate(len(s.Apps)); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Branch != nil {
		if err := s.Branch.validate(hotNames); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	if s.Content != nil {
		if err := s.Content.validate(); err != nil {
			return fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	return nil
}

func validateName(name string) error {
	if name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("scenario: name longer than %d bytes", maxNameLen)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' || c == '+' {
			continue
		}
		return fmt.Errorf("scenario: name %q contains %q (want [a-z0-9+-])", name, c)
	}
	return nil
}

func (a *App) validate() error {
	switch a.Library {
	case "h264":
		if a.MBs < 0 || a.MBs > 396 {
			return fmt.Errorf("mbs %d outside [0, 396]", a.MBs)
		}
	case "crypto", "audio":
	case "custom":
		if a.Custom == nil {
			return fmt.Errorf("custom app without custom ISA")
		}
		if err := a.Custom.validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown library %q", a.Library)
	}
	if a.Library != "custom" && a.Custom != nil {
		return fmt.Errorf("library %q does not take a custom ISA", a.Library)
	}
	if a.Scale < 0 || a.Scale > 64 {
		return fmt.Errorf("scale %g outside [0, 64]", a.Scale)
	}
	if a.Scale != 0 && a.Scale < 1.0/16 {
		return fmt.Errorf("scale %g below 1/16", a.Scale)
	}
	if a.Gap < 0 || a.Gap > 1<<16 {
		return fmt.Errorf("gap %d outside [0, 65536]", a.Gap)
	}
	if a.Setup < 0 || a.Setup > 1<<30 {
		return fmt.Errorf("setup %d outside [0, 2^30]", a.Setup)
	}
	return nil
}

func (sw *Switch) validate(numApps int) error {
	if len(sw.Pattern) > maxPattern {
		return fmt.Errorf("switch pattern longer than %d", maxPattern)
	}
	for _, a := range sw.Pattern {
		if a < 0 || a >= numApps {
			return fmt.Errorf("switch pattern references app %d of %d", a, numApps)
		}
	}
	if sw.Rounds < 0 || sw.Rounds > 16 {
		return fmt.Errorf("switch rounds %d outside [0, 16]", sw.Rounds)
	}
	if sw.PSwitch < 0 || sw.PSwitch > 1 {
		return fmt.Errorf("p_switch %g outside [0, 1]", sw.PSwitch)
	}
	if sw.PSwitch > 0 && len(sw.Pattern) > 0 {
		return fmt.Errorf("p_switch and pattern are mutually exclusive")
	}
	return nil
}

func (b *Branch) validate(hotNames map[string]bool) error {
	if len(b.Modes) == 0 && len(b.EarlyExit) == 0 {
		return fmt.Errorf("branch model with neither modes nor early-exit rules")
	}
	if len(b.Modes) > maxModes {
		return fmt.Errorf("%d modes exceeds cap %d", len(b.Modes), maxModes)
	}
	for i, m := range b.Modes {
		if m.Name == "" {
			return fmt.Errorf("mode %d unnamed", i)
		}
		for h, sc := range m.Scale {
			if !hotNames[h] {
				return fmt.Errorf("mode %q scales unknown hot spot %q", m.Name, h)
			}
			if sc < 0 || sc > 64 {
				return fmt.Errorf("mode %q scale %g outside [0, 64]", m.Name, sc)
			}
		}
	}
	if b.Transition != nil {
		if len(b.Transition) != len(b.Modes) {
			return fmt.Errorf("transition matrix has %d rows for %d modes", len(b.Transition), len(b.Modes))
		}
		for i, row := range b.Transition {
			if len(row) != len(b.Modes) {
				return fmt.Errorf("transition row %d has %d columns for %d modes", i, len(row), len(b.Modes))
			}
			sum := 0.0
			for _, p := range row {
				if p < 0 || p > 1 {
					return fmt.Errorf("transition row %d probability %g outside [0, 1]", i, p)
				}
				sum += p
			}
			if sum < 0.999 || sum > 1.001 {
				return fmt.Errorf("transition row %d sums to %g, want 1", i, sum)
			}
		}
	}
	for i, ee := range b.EarlyExit {
		if !hotNames[ee.HotSpot] {
			return fmt.Errorf("early-exit rule %d names unknown hot spot %q", i, ee.HotSpot)
		}
		if ee.P < 0 || ee.P > 1 {
			return fmt.Errorf("early-exit rule %d probability %g outside [0, 1]", i, ee.P)
		}
		if ee.Scale < 0 || ee.Scale > 1 {
			return fmt.Errorf("early-exit rule %d scale %g outside [0, 1]", i, ee.Scale)
		}
		if ee.Skip && ee.Scale != 0 {
			return fmt.Errorf("early-exit rule %d sets both skip and scale", i)
		}
	}
	return nil
}

func (c *Content) validate() error {
	if c.WidthPx%16 != 0 || c.HeightPx%16 != 0 {
		return fmt.Errorf("content geometry %dx%d not multiples of 16", c.WidthPx, c.HeightPx)
	}
	if c.WidthPx < 0 || c.WidthPx > 352 || c.HeightPx < 0 || c.HeightPx > 288 {
		return fmt.Errorf("content geometry %dx%d outside CIF bounds", c.WidthPx, c.HeightPx)
	}
	if c.Objects < 0 || c.Objects > 16 {
		return fmt.Errorf("content objects %d outside [0, 16]", c.Objects)
	}
	if c.PanX < -8 || c.PanX > 8 || c.PanY < -8 || c.PanY > 8 {
		return fmt.Errorf("content pan (%g, %g) outside [-8, 8]", c.PanX, c.PanY)
	}
	if c.SceneChangeFrame < 0 || c.SceneChangeFrame > MaxIterations {
		return fmt.Errorf("content scene-change frame %d outside [0, %d]", c.SceneChangeFrame, MaxIterations)
	}
	if c.SearchRange < 0 || c.SearchRange > 16 {
		return fmt.Errorf("content search range %d outside [0, 16]", c.SearchRange)
	}
	return nil
}

func (c *CustomISA) validate() error {
	if len(c.Atoms) == 0 || len(c.Atoms) > maxAtoms {
		return fmt.Errorf("custom ISA has %d atoms (want 1..%d)", len(c.Atoms), maxAtoms)
	}
	for i, a := range c.Atoms {
		if a.Name == "" {
			return fmt.Errorf("custom atom %d unnamed", i)
		}
		if a.BitstreamBytes <= 0 || a.BitstreamBytes > 1<<24 {
			return fmt.Errorf("custom atom %q bitstream %d outside (0, 2^24]", a.Name, a.BitstreamBytes)
		}
		if a.Slices < 0 || a.LUTs < 0 || a.FFs < 0 {
			return fmt.Errorf("custom atom %q has negative synthesis cost", a.Name)
		}
	}
	if len(c.HotSpots) == 0 || len(c.HotSpots) > maxSIs {
		return fmt.Errorf("custom ISA has %d hot spots (want 1..%d)", len(c.HotSpots), maxSIs)
	}
	if len(c.SIs) == 0 || len(c.SIs) > maxSIs {
		return fmt.Errorf("custom ISA has %d SIs (want 1..%d)", len(c.SIs), maxSIs)
	}
	covered := make([]bool, len(c.HotSpots))
	for i, si := range c.SIs {
		if si.Name == "" {
			return fmt.Errorf("custom SI %d unnamed", i)
		}
		if si.HotSpot < 0 || si.HotSpot >= len(c.HotSpots) {
			return fmt.Errorf("custom SI %q references hot spot %d of %d", si.Name, si.HotSpot, len(c.HotSpots))
		}
		covered[si.HotSpot] = true
		k := len(si.Atoms)
		if k == 0 || k > len(c.Atoms) {
			return fmt.Errorf("custom SI %q uses %d atom types (want 1..%d)", si.Name, k, len(c.Atoms))
		}
		if len(si.Occ) != k || len(si.HWCyc) != k || len(si.SWCyc) != k || len(si.Steps) != k {
			return fmt.Errorf("custom SI %q: atoms/occ/hw_cyc/sw_cyc/steps lengths disagree", si.Name)
		}
		seen := map[int]bool{}
		grid := 1
		zeroReachable := true
		for d := 0; d < k; d++ {
			if si.Atoms[d] < 0 || si.Atoms[d] >= len(c.Atoms) {
				return fmt.Errorf("custom SI %q references atom %d of %d", si.Name, si.Atoms[d], len(c.Atoms))
			}
			if seen[si.Atoms[d]] {
				return fmt.Errorf("custom SI %q repeats atom %d", si.Name, si.Atoms[d])
			}
			seen[si.Atoms[d]] = true
			if si.Occ[d] < 1 || si.Occ[d] > 1024 {
				return fmt.Errorf("custom SI %q occ[%d]=%d outside [1, 1024]", si.Name, d, si.Occ[d])
			}
			if si.HWCyc[d] < 1 || si.HWCyc[d] > 1024 {
				return fmt.Errorf("custom SI %q hw_cyc[%d]=%d outside [1, 1024]", si.Name, d, si.HWCyc[d])
			}
			// Strictly faster hardware guarantees every non-zero Molecule
			// beats the trap latency, which isa.Validate requires.
			if si.SWCyc[d] <= si.HWCyc[d] || si.SWCyc[d] > 4096 {
				return fmt.Errorf("custom SI %q sw_cyc[%d]=%d not in (hw_cyc, 4096]", si.Name, d, si.SWCyc[d])
			}
			steps := si.Steps[d]
			if len(steps) == 0 || len(steps) > maxStepsDim {
				return fmt.Errorf("custom SI %q steps[%d] has %d entries (want 1..%d)", si.Name, d, len(steps), maxStepsDim)
			}
			hasZero := false
			stepSeen := map[int]bool{}
			for _, v := range steps {
				if v < 0 || v > 64 {
					return fmt.Errorf("custom SI %q steps[%d] value %d outside [0, 64]", si.Name, d, v)
				}
				if stepSeen[v] {
					return fmt.Errorf("custom SI %q steps[%d] repeats %d", si.Name, d, v)
				}
				stepSeen[v] = true
				if v == 0 {
					hasZero = true
				}
			}
			if !hasZero {
				zeroReachable = false
			}
			grid *= len(steps)
			if grid > maxGrid {
				return fmt.Errorf("custom SI %q molecule grid exceeds %d", si.Name, maxGrid)
			}
		}
		nonzero := grid
		if zeroReachable {
			nonzero--
		}
		if si.Count < 1 || si.Count > maxMolecules || si.Count > nonzero {
			return fmt.Errorf("custom SI %q wants %d molecules of a %d-point grid", si.Name, si.Count, nonzero)
		}
		if si.Overhead < 1 || si.Overhead > 1<<16 {
			return fmt.Errorf("custom SI %q overhead %d outside [1, 65536]", si.Name, si.Overhead)
		}
		if si.Round < 0 || si.Round > 1<<16 {
			return fmt.Errorf("custom SI %q round count %d outside [0, 65536]", si.Name, si.Round)
		}
	}
	for h, ok := range covered {
		if !ok {
			return fmt.Errorf("custom hot spot %q has no SIs", c.HotSpots[h])
		}
	}
	return nil
}

// Scenario is a validated spec with its instruction set built: ready to
// expand deterministic workload traces. Build one with New or Decode, or
// fetch a shipped one with Find.
type Scenario struct {
	spec   Spec
	digest string
	is     *isa.ISA
	apps   []appRT
}

// New validates the spec and builds the scenario's (merged) instruction
// set. The returned Scenario is immutable and safe for concurrent use.
func New(spec Spec) (sc *Scenario, err error) {
	// The expander and the library builders are panic-free for validated
	// specs; this backstop turns any future gap into an error instead of
	// a crash, because New is the trust boundary of the DSL.
	defer func() {
		if p := recover(); p != nil {
			sc, err = nil, fmt.Errorf("scenario %s: building ISA: %v", spec.Name, p)
		}
	}()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sc = &Scenario{spec: spec, digest: specDigest(spec)}
	if err := sc.build(); err != nil {
		return nil, err
	}
	return sc, nil
}

// Decode reads one strict JSON spec (unknown fields and trailing garbage
// rejected) and builds the scenario.
func Decode(r io.Reader) (*Scenario, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("scenario: decode: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: trailing data after spec")
	}
	return New(spec)
}

// specDigest is the content address of a spec: SHA-256 over its canonical
// (field-ordered, compact) JSON form.
func specDigest(spec Spec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("scenario: marshal spec: %v", err)) // plain data; cannot fail
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

// Name returns the scenario name.
func (s *Scenario) Name() string { return s.spec.Name }

// Kind returns the scenario kind ("multiapp" or "controlflow").
func (s *Scenario) Kind() string { return s.spec.Kind }

// Description returns the free-form description.
func (s *Scenario) Description() string { return s.spec.Description }

// Digest returns the SHA-256 content address of the spec. Named scenarios
// pin their digests in tests: a published scenario's expansion is part of
// the cache-key contract and must never change under the same name.
func (s *Scenario) Digest() string { return s.digest }

// Spec returns a copy of the validated spec.
func (s *Scenario) Spec() Spec { return s.spec }

// ISA returns the scenario's dynamic instruction set: the single app's
// library, or the isa.Merge composition for multi-app scenarios. The ISA
// is built once by New and shared — treat it as immutable.
func (s *Scenario) ISA() *isa.ISA { return s.is }

// mixSeed folds the scenario's base seed and the per-point seed into one
// PRNG seed (SplitMix64-style, so nearby seeds decorrelate).
func mixSeed(base, point int64) int64 {
	z := uint64(base)*0x9E3779B97F4A7C15 + uint64(point) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Trace expands the scenario into a workload trace of the given length
// (iterations for template scenarios, encoded frames for content-driven
// ones; values < 1 are clamped to 1) for the given per-point seed. The
// expansion is a pure function of (spec, frames, seed) — same inputs,
// identical trace — and the result always validates against ISA().
func (s *Scenario) Trace(frames int, seed int64) *workload.Trace {
	if frames < 1 {
		frames = 1
	}
	if frames > MaxIterations {
		frames = MaxIterations
	}
	rng := rand.New(rand.NewSource(mixSeed(s.spec.Seed, seed)))
	if s.spec.Content != nil {
		return s.contentTrace(frames, rng)
	}
	return s.templateTrace(frames, rng)
}
