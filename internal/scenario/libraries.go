package scenario

// The application libraries: each library contributes a dynamic
// instruction set (its own Atom space — merging concatenates, no sharing
// across apps) plus round templates, the per-hot-spot burst patterns one
// pass of the application executes. Library counts are calibrated per
// macroblock / packet batch / audio granule; the App knobs (MBs, Scale)
// and the branch model of the spec rescale them at expansion time.

import (
	"fmt"

	"rispp/internal/isa"
)

// appRT is the runtime form of one app: its round templates with SI and
// hot-spot IDs already lifted into the scenario's (merged) ID space.
type appRT struct {
	name   string
	rounds []round
}

// round is one hot-spot pass of an app's turn.
type round struct {
	hot     isa.HotSpotID // scenario-global ID
	hotName string        // app-local name, the branch model's key
	setup   int64
	bursts  []burst
}

type burst struct {
	si    isa.SIID // scenario-global ID
	count int
	gap   int
}

// build constructs the scenario's ISA and runtime apps from the validated
// spec: single-app scenarios keep their library ISA as-is (H.264 keeps
// the paper's SI IDs), multi-app scenarios go through isa.Merge with IDs
// lifted by isa.Offsets.
func (s *Scenario) build() error {
	if s.spec.Content != nil {
		is := isa.H264() // freshly allocated; renaming is safe
		is.Name = "scenario " + s.spec.Name
		s.is = is
		return nil
	}
	parts := make([]*isa.ISA, len(s.spec.Apps))
	rounds := make([][]round, len(s.spec.Apps))
	for i := range s.spec.Apps {
		p, r, err := buildApp(&s.spec.Apps[i])
		if err != nil {
			return fmt.Errorf("scenario %s: app %d: %w", s.spec.Name, i, err)
		}
		parts[i], rounds[i] = p, r
	}
	if len(parts) == 1 {
		s.is = parts[0]
		s.apps = []appRT{{name: parts[0].Name, rounds: rounds[0]}}
		return nil
	}
	merged, err := isa.Merge("scenario "+s.spec.Name, parts...)
	if err != nil {
		return fmt.Errorf("scenario %s: %w", s.spec.Name, err)
	}
	siOff, hsOff := isa.Offsets(parts...)
	s.apps = make([]appRT, 0, len(parts))
	for i := range rounds {
		for j := range rounds[i] {
			rounds[i][j].hot += isa.HotSpotID(hsOff[i])
			for k := range rounds[i][j].bursts {
				rounds[i][j].bursts[k].si += isa.SIID(siOff[i])
			}
		}
		s.apps = append(s.apps, appRT{name: parts[i].Name, rounds: rounds[i]})
	}
	s.is = merged
	return nil
}

// Per-app knob defaults.
const (
	defaultMBs   = 4
	defaultGap   = 8
	defaultSetup = 20_000
)

func (a *App) knobs() (scale float64, gap int, setup int64) {
	scale = a.Scale
	if scale == 0 {
		scale = 1
	}
	gap = a.Gap
	if gap == 0 {
		gap = defaultGap
	}
	setup = a.Setup
	if setup == 0 {
		setup = defaultSetup
	}
	return scale, gap, setup
}

// hotSpotNames returns the app-local hot-spot names — the identifiers the
// branch model may reference. Must agree with what the builders emit.
func (a *App) hotSpotNames() []string {
	switch a.Library {
	case "h264":
		return []string{"Motion Estimation", "Encoding Engine", "Loop Filter"}
	case "crypto":
		return []string{"bulk encryption", "integrity hashing"}
	case "audio":
		return []string{"filterbank", "entropy"}
	case "custom":
		if a.Custom != nil {
			return a.Custom.HotSpots
		}
	}
	return nil
}

func buildApp(a *App) (*isa.ISA, []round, error) {
	switch a.Library {
	case "h264":
		return buildH264App(a)
	case "crypto":
		return buildCryptoApp(a)
	case "audio":
		return buildAudioApp(a)
	case "custom":
		return buildCustomApp(a)
	}
	return nil, nil, fmt.Errorf("unknown library %q", a.Library) // unreachable after Validate
}

// scaleCount applies the app-level scale to a base burst count.
func scaleCount(base int, scale float64) int {
	n := int(float64(base)*scale + 0.5)
	if n < 0 {
		n = 0
	}
	return n
}

// buildH264App instantiates the paper's H.264 encoder ISA with the
// calibrated per-macroblock counts of workload.H264, aggregated into one
// burst per SI per hot spot and sized by the MBs knob (so small scenario
// geometries stay cheap enough for the reference interpreter).
func buildH264App(a *App) (*isa.ISA, []round, error) {
	is := isa.H264()
	if a.Name != "" {
		is.Name = a.Name
	}
	mbs := a.MBs
	if mbs == 0 {
		mbs = defaultMBs
	}
	scale, gap, setup := a.knobs()
	c := func(perMB int) int { return scaleCount(perMB*mbs, scale) }
	rounds := []round{
		{hot: isa.HotSpotME, hotName: "Motion Estimation", setup: setup, bursts: []burst{
			{si: isa.SISAD, count: c(65), gap: gap},
			{si: isa.SISATD, count: c(16), gap: gap},
		}},
		{hot: isa.HotSpotEE, hotName: "Encoding Engine", setup: setup, bursts: []burst{
			{si: isa.SIMC, count: c(6), gap: gap},
			{si: isa.SIIPredHDC, count: c(2), gap: gap},
			{si: isa.SIIPredVDC, count: c(2), gap: gap},
			{si: isa.SIDCT, count: c(24), gap: gap},
			{si: isa.SIHT4x4, count: c(2), gap: gap},
			{si: isa.SIHT2x2, count: c(1), gap: gap},
		}},
		{hot: isa.HotSpotLF, hotName: "Loop Filter", setup: setup, bursts: []burst{
			{si: isa.SILFBS4, count: c(16), gap: gap},
		}},
	}
	return is, rounds, nil
}

// siSpec is the shared shape of the built-in non-H.264 libraries.
type siSpec struct {
	name    string
	hotSpot isa.HotSpotID
	spec    isa.MoleculeSpec
}

func buildLibraryISA(name string, atoms []isa.AtomType, hotSpots []isa.HotSpot, specs []siSpec) (*isa.ISA, error) {
	is := &isa.ISA{
		Name:     name,
		Atoms:    append([]isa.AtomType(nil), atoms...),
		HotSpots: hotSpots,
	}
	for i, d := range specs {
		id := isa.SIID(i)
		is.SIs = append(is.SIs, isa.SI{
			ID:        id,
			Name:      d.name,
			HotSpot:   d.hotSpot,
			SWLatency: d.spec.SWLatency(),
			Molecules: d.spec.Generate(id, len(atoms)),
		})
	}
	if err := is.Validate(); err != nil {
		return nil, err
	}
	return is, nil
}

// buildCryptoApp models a network-security stack: AES-like bulk
// encryption and SHA-like integrity hashing (cf. examples/adaptivecrypto).
// One round is one packet batch.
func buildCryptoApp(a *App) (*isa.ISA, []round, error) {
	const (
		atomSBox = isa.AtomID(iota)
		atomMixCol
		atomKeyXor
		atomSigma
		atomCSA
	)
	const (
		siAESRound = isa.SIID(iota)
		siAESKeyExp
		siSHACompress
	)
	const (
		hotEncrypt = isa.HotSpotID(iota)
		hotHash
	)
	name := a.Name
	if name == "" {
		name = "crypto stack"
	}
	is, err := buildLibraryISA(name,
		[]isa.AtomType{
			{ID: atomSBox, Name: "SBox", BitstreamBytes: 52000, Slices: 300, LUTs: 590, FFs: 24},
			{ID: atomMixCol, Name: "MixCol", BitstreamBytes: 63000, Slices: 450, LUTs: 880, FFs: 40},
			{ID: atomKeyXor, Name: "KeyXor", BitstreamBytes: 47000, Slices: 210, LUTs: 400, FFs: 16},
			{ID: atomSigma, Name: "Sigma", BitstreamBytes: 58000, Slices: 380, LUTs: 740, FFs: 36},
			{ID: atomCSA, Name: "CSA", BitstreamBytes: 55000, Slices: 340, LUTs: 660, FFs: 30},
		},
		[]isa.HotSpot{
			{ID: hotEncrypt, Name: "bulk encryption", SIs: []isa.SIID{siAESRound, siAESKeyExp}},
			{ID: hotHash, Name: "integrity hashing", SIs: []isa.SIID{siSHACompress}},
		},
		[]siSpec{
			{"AES round", hotEncrypt, isa.MoleculeSpec{
				Atoms:    []isa.AtomID{atomSBox, atomMixCol, atomKeyXor},
				Occ:      []int{16, 4, 4},
				HWCyc:    []int{1, 2, 1},
				SWCyc:    []int{30, 55, 18},
				Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2}, {0, 1}},
				Overhead: 8,
				Count:    10,
			}},
			{"AES key expansion", hotEncrypt, isa.MoleculeSpec{
				Atoms:    []isa.AtomID{atomSBox, atomKeyXor},
				Occ:      []int{4, 8},
				HWCyc:    []int{1, 1},
				SWCyc:    []int{30, 18},
				Steps:    [][]int{{0, 1, 2}, {0, 1, 2}},
				Overhead: 6,
				Count:    5,
			}},
			{"SHA compress", hotHash, isa.MoleculeSpec{
				Atoms:    []isa.AtomID{atomSigma, atomCSA, atomKeyXor},
				Occ:      []int{16, 8, 4},
				HWCyc:    []int{1, 1, 1},
				SWCyc:    []int{26, 34, 18},
				Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2}, {0, 1}},
				Overhead: 10,
				Count:    9,
			}},
		})
	if err != nil {
		return nil, nil, err
	}
	scale, gap, setup := a.knobs()
	rounds := []round{
		{hot: hotEncrypt, hotName: "bulk encryption", setup: setup, bursts: []burst{
			{si: siAESKeyExp, count: scaleCount(20, scale), gap: gap},
			{si: siAESRound, count: scaleCount(320, scale), gap: gap},
		}},
		{hot: hotHash, hotName: "integrity hashing", setup: setup, bursts: []burst{
			{si: siSHACompress, count: scaleCount(192, scale), gap: gap},
		}},
	}
	return is, rounds, nil
}

// buildAudioApp models an AAC-like audio encoder: an MDCT filterbank with
// quantization, then entropy coding. One round is one granule. WinMAC is
// shared between MDCT and Quantize — intra-app Atom reuse, the essence of
// RISPP's efficiency.
func buildAudioApp(a *App) (*isa.ISA, []round, error) {
	const (
		atomButterfly = isa.AtomID(iota)
		atomWinMAC
		atomQuantPow
		atomPackShift
	)
	const (
		siMDCT = isa.SIID(iota)
		siQuantize
		siHuffman
	)
	const (
		hotFilterbank = isa.HotSpotID(iota)
		hotEntropy
	)
	name := a.Name
	if name == "" {
		name = "audio encoder"
	}
	is, err := buildLibraryISA(name,
		[]isa.AtomType{
			{ID: atomButterfly, Name: "Butterfly", BitstreamBytes: 61000, Slices: 430, LUTs: 850, FFs: 52},
			{ID: atomWinMAC, Name: "WinMAC", BitstreamBytes: 54000, Slices: 330, LUTs: 640, FFs: 28},
			{ID: atomQuantPow, Name: "QuantPow", BitstreamBytes: 57000, Slices: 360, LUTs: 700, FFs: 32},
			{ID: atomPackShift, Name: "PackShift", BitstreamBytes: 49000, Slices: 240, LUTs: 460, FFs: 18},
		},
		[]isa.HotSpot{
			{ID: hotFilterbank, Name: "filterbank", SIs: []isa.SIID{siMDCT, siQuantize}},
			{ID: hotEntropy, Name: "entropy", SIs: []isa.SIID{siHuffman}},
		},
		[]siSpec{
			{"MDCT", hotFilterbank, isa.MoleculeSpec{
				Atoms:    []isa.AtomID{atomButterfly, atomWinMAC},
				Occ:      []int{16, 8},
				HWCyc:    []int{2, 1},
				SWCyc:    []int{40, 25},
				Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2}},
				Overhead: 12,
				Count:    8,
			}},
			{"Quantize", hotFilterbank, isa.MoleculeSpec{
				Atoms:    []isa.AtomID{atomQuantPow, atomWinMAC},
				Occ:      []int{12, 4},
				HWCyc:    []int{1, 1},
				SWCyc:    []int{22, 25},
				Steps:    [][]int{{0, 1, 2}, {0, 1}},
				Overhead: 8,
				Count:    4,
			}},
			{"Huffman", hotEntropy, isa.MoleculeSpec{
				Atoms:    []isa.AtomID{atomPackShift},
				Occ:      []int{10},
				HWCyc:    []int{2},
				SWCyc:    []int{35},
				Steps:    [][]int{{1, 2, 5}},
				Overhead: 9,
				Count:    3,
			}},
		})
	if err != nil {
		return nil, nil, err
	}
	scale, gap, setup := a.knobs()
	rounds := []round{
		{hot: hotFilterbank, hotName: "filterbank", setup: setup, bursts: []burst{
			{si: siMDCT, count: scaleCount(96, scale), gap: gap},
			{si: siQuantize, count: scaleCount(64, scale), gap: gap},
		}},
		{hot: hotEntropy, hotName: "entropy", setup: setup, bursts: []burst{
			{si: siHuffman, count: scaleCount(128, scale), gap: gap},
		}},
	}
	return is, rounds, nil
}

// buildCustomApp lowers an inline CustomISA — validated by
// CustomISA.validate, which guarantees MoleculeSpec.Generate cannot panic
// (dimensions agree, Count fits the non-zero grid).
func buildCustomApp(a *App) (*isa.ISA, []round, error) {
	c := a.Custom
	name := a.Name
	if name == "" {
		name = c.Name
	}
	if name == "" {
		name = "custom"
	}
	is := &isa.ISA{Name: name}
	for i, at := range c.Atoms {
		slices := at.Slices
		if slices == 0 {
			slices = 200 + at.BitstreamBytes/256 // plausible default synthesis cost
		}
		luts := at.LUTs
		if luts == 0 {
			luts = 2 * slices
		}
		ffs := at.FFs
		if ffs == 0 {
			ffs = slices / 8
		}
		is.Atoms = append(is.Atoms, isa.AtomType{
			ID: isa.AtomID(i), Name: at.Name,
			BitstreamBytes: at.BitstreamBytes, Slices: slices, LUTs: luts, FFs: ffs,
		})
	}
	for i, h := range c.HotSpots {
		is.HotSpots = append(is.HotSpots, isa.HotSpot{ID: isa.HotSpotID(i), Name: h})
	}
	scale, gap, setup := a.knobs()
	rounds := make([]round, len(c.HotSpots))
	for i, h := range c.HotSpots {
		rounds[i] = round{hot: isa.HotSpotID(i), hotName: h, setup: setup}
	}
	for i, si := range c.SIs {
		id := isa.SIID(i)
		atoms := make([]isa.AtomID, len(si.Atoms))
		for d, ai := range si.Atoms {
			atoms[d] = isa.AtomID(ai)
		}
		spec := isa.MoleculeSpec{
			Atoms: atoms, Occ: si.Occ, HWCyc: si.HWCyc, SWCyc: si.SWCyc,
			Steps: si.Steps, Overhead: si.Overhead, Count: si.Count,
		}
		is.SIs = append(is.SIs, isa.SI{
			ID:        id,
			Name:      si.Name,
			HotSpot:   isa.HotSpotID(si.HotSpot),
			SWLatency: spec.SWLatency(),
			Molecules: spec.Generate(id, len(c.Atoms)),
		})
		is.HotSpots[si.HotSpot].SIs = append(is.HotSpots[si.HotSpot].SIs, id)
		rounds[si.HotSpot].bursts = append(rounds[si.HotSpot].bursts, burst{
			si: id, count: scaleCount(si.Round, scale), gap: gap,
		})
	}
	if err := is.Validate(); err != nil {
		return nil, nil, err
	}
	return is, rounds, nil
}
