package scenario

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

// FuzzScenarioDecode fuzzes the DSL trust boundary: Decode must never
// panic, and whatever it accepts must hold the full scenario contract —
// a Validate-clean spec, an isa.Validate-clean instruction set, and
// deterministic expansions that validate against that instruction set.
// The committed corpus under testdata/fuzz seeds the shipped library
// files plus structural near-misses; the in-code seeds below add the
// generated-corpus shapes.
func FuzzScenarioDecode(f *testing.F) {
	// Every shipped scenario file is a seed.
	entries, err := dataFS.ReadDir("data")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		raw, err := dataFS.ReadFile("data/" + e.Name())
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	// A few generated specs widen the seeded shapes (custom ISAs, random
	// branch models) beyond what the library ships.
	for seed := int64(0); seed < 4; seed++ {
		spec := GenSpec(rand.New(rand.NewSource(seed)))
		b, err := json.Marshal(spec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"name":"x","kind":"multiapp"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only other acceptable outcome
		}
		// Accepted input: the full contract must hold.
		spec := sc.Spec()
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("Decode accepted a spec Validate rejects: %v", verr)
		}
		if ierr := sc.ISA().Validate(); ierr != nil {
			t.Fatalf("accepted scenario has an invalid ISA: %v", ierr)
		}
		tr := sc.Trace(3, 1)
		if verr := tr.Validate(sc.ISA()); verr != nil {
			t.Fatalf("expansion does not validate against the scenario ISA: %v", verr)
		}
		if again := sc.Trace(3, 1); !reflect.DeepEqual(tr, again) {
			t.Fatal("expansion not deterministic")
		}
		// Round trip: re-decoding the validated spec reproduces the same
		// content address.
		b, merr := json.Marshal(spec)
		if merr != nil {
			t.Fatalf("re-marshal: %v", merr)
		}
		sc2, derr := Decode(bytes.NewReader(b))
		if derr != nil {
			t.Fatalf("re-decode of an accepted spec failed: %v", derr)
		}
		if sc2.Digest() != sc.Digest() {
			t.Fatalf("digest changed across a marshal round trip: %s vs %s", sc.Digest(), sc2.Digest())
		}
	})
}
