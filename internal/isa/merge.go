package isa

import (
	"fmt"

	"rispp/internal/molecule"
)

// Merge combines several dynamic instruction sets into one: the Atom-type
// spaces are concatenated (no sharing across parts — different
// applications bring their own data paths), SI and hot-spot IDs are
// re-indexed, and Molecule vectors are lifted into the combined space.
//
// Merging models a RISPP processor that time-shares its fabric between
// applications (e.g. a video encoder and a crypto stack): each
// application's hot spots rotate through the same Atom Containers and the
// run-time system arbitrates — exactly the "varying workloads" scenario
// the paper's introduction motivates.
func Merge(name string, parts ...*ISA) (*ISA, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("isa: Merge of no ISAs")
	}
	out := &ISA{Name: name}
	atomOff := 0
	siOff := 0
	hsOff := 0
	dims := make([]int, len(parts))
	for _, p := range parts {
		out.Atoms = append(out.Atoms, p.Atoms...)
	}
	dim := len(out.Atoms)
	// Re-index atoms (IDs are positional).
	for i := range out.Atoms {
		out.Atoms[i].ID = AtomID(i)
	}
	for pi, p := range parts {
		dims[pi] = p.Dim()
		for si := range p.SIs {
			src := &p.SIs[si]
			ns := SI{
				ID:        SIID(siOff + int(src.ID)),
				Name:      src.Name,
				HotSpot:   HotSpotID(hsOff + int(src.HotSpot)),
				SWLatency: src.SWLatency,
			}
			for _, m := range src.Molecules {
				v := molecule.New(dim)
				for a, c := range m.Atoms {
					v[atomOff+a] = c
				}
				ns.Molecules = append(ns.Molecules, Molecule{SI: ns.ID, Atoms: v, Latency: m.Latency})
			}
			out.SIs = append(out.SIs, ns)
		}
		for _, h := range p.HotSpots {
			nh := HotSpot{ID: HotSpotID(hsOff + int(h.ID)), Name: fmt.Sprintf("%s: %s", p.Name, h.Name)}
			for _, id := range h.SIs {
				nh.SIs = append(nh.SIs, SIID(siOff+int(id)))
			}
			out.HotSpots = append(out.HotSpots, nh)
		}
		atomOff += p.Dim()
		siOff += len(p.SIs)
		hsOff += len(p.HotSpots)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("isa: merged ISA invalid: %w", err)
	}
	return out, nil
}

// Offsets reports the SI and hot-spot ID offsets Merge assigned to each
// part, so callers can translate per-application IDs into the combined
// space when building interleaved workloads.
func Offsets(parts ...*ISA) (siOff, hsOff []int) {
	siOff = make([]int, len(parts))
	hsOff = make([]int, len(parts))
	s, h := 0, 0
	for i, p := range parts {
		siOff[i], hsOff[i] = s, h
		s += len(p.SIs)
		h += len(p.HotSpots)
	}
	return siOff, hsOff
}
