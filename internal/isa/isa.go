// Package isa models the dynamic instruction set of a RISPP processor:
// reconfigurable Atom types, Special Instructions (SIs), and the Molecules
// (Atom-count vectors with an execution latency) that implement each SI.
//
// It ships the full H.264 encoder SI library of the paper's Table 1 (see
// H264), but any application-specific library can be described with the same
// types (see examples/adaptivecrypto).
package isa

import (
	"fmt"
	"sort"

	"rispp/internal/molecule"
)

// AtomID identifies an Atom type in the global Atom-type space of an ISA.
// It doubles as the index into Molecule vectors.
type AtomID int

// SIID identifies a Special Instruction within an ISA.
type SIID int

// HotSpotID identifies a computational hot spot of the application, e.g.
// Motion Estimation. Each SI belongs to exactly one hot spot.
type HotSpotID int

// AtomType describes one elementary reconfigurable data path. The hardware
// characteristics feed the reconfiguration-time model (BitstreamBytes) and
// the synthesis cost model of package hwmodel.
type AtomType struct {
	ID             AtomID
	Name           string
	BitstreamBytes int // partial bitstream size; determines reload time
	Slices         int // FPGA slices occupied
	LUTs           int
	FFs            int
}

// Molecule is one implementation alternative of an SI: the vector of Atom
// instances it needs and the resulting latency of a single SI execution.
type Molecule struct {
	SI      SIID
	Atoms   molecule.Vector // over the global Atom-type space
	Latency int             // cycles per SI execution
}

// Determinant returns the total number of Atom instances the Molecule needs.
func (m Molecule) Determinant() int { return m.Atoms.Determinant() }

// SI is a Special Instruction: a name, the hot spot it accelerates, the
// latency of the base-instruction-set trap implementation (the "software
// Molecule" using zero Atoms), and its hardware Molecules.
type SI struct {
	ID        SIID
	Name      string
	HotSpot   HotSpotID
	SWLatency int        // cycles per execution via the synchronous trap
	Molecules []Molecule // sorted by decreasing latency (slowest first)
}

// FastestAvailable returns the fastest Molecule of the SI that is fully
// contained in the available Atoms a, and true; or a zero Molecule and false
// if no hardware Molecule is available (the SI then executes in software).
// This implements getFastestAvailableMolecule(a) from the paper.
func (s *SI) FastestAvailable(a molecule.Vector) (Molecule, bool) {
	// Molecules are sorted slowest-first, so scan from the back.
	for i := len(s.Molecules) - 1; i >= 0; i-- {
		if s.Molecules[i].Atoms.Leq(a) {
			return s.Molecules[i], true
		}
	}
	return Molecule{}, false
}

// LatencyWith returns the per-execution latency of the SI given available
// Atoms a: the fastest available Molecule's latency, or the software latency
// if no Molecule is loaded.
func (s *SI) LatencyWith(a molecule.Vector) int {
	if m, ok := s.FastestAvailable(a); ok {
		return m.Latency
	}
	return s.SWLatency
}

// Fastest returns the highest-performance Molecule of the SI (maximum
// Molecule-level parallelism).
func (s *SI) Fastest() Molecule { return s.Molecules[len(s.Molecules)-1] }

// Slowest returns the smallest hardware Molecule of the SI.
func (s *SI) Slowest() Molecule { return s.Molecules[0] }

// HotSpot describes one computational hot spot.
type HotSpot struct {
	ID   HotSpotID
	Name string
	SIs  []SIID
}

// ISA is a complete dynamic instruction set: the global Atom-type space,
// the Special Instructions, and the hot spots they belong to.
type ISA struct {
	Name     string
	Atoms    []AtomType
	SIs      []SI
	HotSpots []HotSpot
}

// Dim returns the dimension n of the global Atom-type space; all Molecule
// vectors of this ISA have this length.
func (is *ISA) Dim() int { return len(is.Atoms) }

// Atom returns the Atom type with the given ID.
func (is *ISA) Atom(id AtomID) *AtomType {
	if int(id) < 0 || int(id) >= len(is.Atoms) {
		panic(fmt.Sprintf("isa: atom id %d out of range", id))
	}
	return &is.Atoms[id]
}

// SI returns the Special Instruction with the given ID.
func (is *ISA) SI(id SIID) *SI {
	if int(id) < 0 || int(id) >= len(is.SIs) {
		panic(fmt.Sprintf("isa: SI id %d out of range", id))
	}
	return &is.SIs[id]
}

// SIByName looks an SI up by name; it returns nil if no SI matches.
func (is *ISA) SIByName(name string) *SI {
	for i := range is.SIs {
		if is.SIs[i].Name == name {
			return &is.SIs[i]
		}
	}
	return nil
}

// HotSpotSIs returns the SIs belonging to the given hot spot.
func (is *ISA) HotSpotSIs(h HotSpotID) []*SI {
	var out []*SI
	for i := range is.SIs {
		if is.SIs[i].HotSpot == h {
			out = append(out, &is.SIs[i])
		}
	}
	return out
}

// AvgBitstreamBytes returns the average partial-bitstream size over all
// Atom types, which the paper reports as 60,488 bytes.
func (is *ISA) AvgBitstreamBytes() float64 {
	if len(is.Atoms) == 0 {
		return 0
	}
	sum := 0
	for _, a := range is.Atoms {
		sum += a.BitstreamBytes
	}
	return float64(sum) / float64(len(is.Atoms))
}

// Validate checks the structural invariants every ISA must satisfy:
//
//   - every Molecule vector has the global dimension and is non-zero,
//   - Molecule vectors of one SI are pairwise distinct,
//   - Molecules are sorted by decreasing latency,
//   - latency is ≤-monotone: o ≤ m implies latency(o) ≥ latency(m)
//     (more Atoms never hurt),
//   - every hardware Molecule beats the software latency,
//   - Molecules only use Atom types with positive occurrence.
func (is *ISA) Validate() error {
	n := is.Dim()
	for i := range is.Atoms {
		a := &is.Atoms[i]
		if a.ID != AtomID(i) {
			return fmt.Errorf("isa %s: atom %q has ID %d, want %d", is.Name, a.Name, a.ID, i)
		}
		if a.BitstreamBytes <= 0 {
			return fmt.Errorf("isa %s: atom %q has non-positive bitstream size", is.Name, a.Name)
		}
	}
	for i := range is.SIs {
		s := &is.SIs[i]
		if s.ID != SIID(i) {
			return fmt.Errorf("isa %s: SI %q has ID %d, want %d", is.Name, s.Name, s.ID, i)
		}
		if s.SWLatency <= 0 {
			return fmt.Errorf("isa %s: SI %q has non-positive software latency", is.Name, s.Name)
		}
		if len(s.Molecules) == 0 {
			return fmt.Errorf("isa %s: SI %q has no Molecules", is.Name, s.Name)
		}
		for j, m := range s.Molecules {
			if m.SI != s.ID {
				return fmt.Errorf("isa %s: SI %q Molecule %d references SI %d", is.Name, s.Name, j, m.SI)
			}
			if m.Atoms.Len() != n {
				return fmt.Errorf("isa %s: SI %q Molecule %d has dimension %d, want %d", is.Name, s.Name, j, m.Atoms.Len(), n)
			}
			if m.Atoms.IsZero() {
				return fmt.Errorf("isa %s: SI %q Molecule %d is the zero vector", is.Name, s.Name, j)
			}
			if m.Latency <= 0 || m.Latency >= s.SWLatency {
				return fmt.Errorf("isa %s: SI %q Molecule %d latency %d not in (0, SW=%d)", is.Name, s.Name, j, m.Latency, s.SWLatency)
			}
			if j > 0 && m.Latency > s.Molecules[j-1].Latency {
				return fmt.Errorf("isa %s: SI %q Molecules not sorted by decreasing latency at %d", is.Name, s.Name, j)
			}
			for k := 0; k < j; k++ {
				if m.Atoms.Equal(s.Molecules[k].Atoms) {
					return fmt.Errorf("isa %s: SI %q has duplicate Molecule vector %v", is.Name, s.Name, m.Atoms)
				}
			}
		}
		// ≤-monotonicity across all pairs.
		for _, a := range s.Molecules {
			for _, b := range s.Molecules {
				if a.Atoms.Leq(b.Atoms) && a.Latency < b.Latency {
					return fmt.Errorf("isa %s: SI %q latency not ≤-monotone: %v (%d) ≤ %v (%d)",
						is.Name, s.Name, a.Atoms, a.Latency, b.Atoms, b.Latency)
				}
			}
		}
	}
	for _, h := range is.HotSpots {
		for _, id := range h.SIs {
			if int(id) < 0 || int(id) >= len(is.SIs) {
				return fmt.Errorf("isa %s: hot spot %q references unknown SI %d", is.Name, h.Name, id)
			}
			if is.SIs[id].HotSpot != h.ID {
				return fmt.Errorf("isa %s: SI %q not tagged with hot spot %q", is.Name, is.SIs[id].Name, h.Name)
			}
		}
	}
	return nil
}

// MoleculeSpec procedurally generates the Molecule set of one SI. Following
// the paper's execution model — "an SI can be executed with a mixture of
// dynamically loaded data paths in conjunction with the base processor
// instructions" — a Molecule may cover only some Atom types: covered types
// run on hardware (reusing one instance for all occurrences, or exploiting
// Molecule-level parallelism with several), uncovered types are emulated by
// base instructions. The latency model is
//
//	latency(m) = Overhead + Σ_i work_i(m_i)
//	work_i(0)  = Occ[i] · SWCyc[i]              (emulated in software)
//	work_i(k)  = ceil(Occ[i] / k) · HWCyc[i]    (k Atom instances)
//
// where Occ[i] is the number of work units Atom type Atoms[i] processes per
// SI execution. The all-zero vector is the trap implementation: its latency
// is the SI's software latency (see SWLatency). Latency is ≤-monotone by
// construction.
//
// Steps[i] lists the candidate instance counts for dimension i (0 = type
// not covered); the full grid minus the zero vector is generated and
// thinned to exactly Count Molecules, always keeping the smallest and the
// largest vector.
type MoleculeSpec struct {
	Atoms    []AtomID // global Atom types used (local dimension order)
	Occ      []int    // work units per Atom type per SI execution
	HWCyc    []int    // cycles per work unit on one Atom instance
	SWCyc    []int    // cycles per work unit emulated by base instructions
	Steps    [][]int  // candidate instance counts per local dimension
	Overhead int      // fixed cycles per SI execution
	Count    int      // number of Molecules to keep
}

// Latency evaluates the latency model for local instance counts inst.
func (sp *MoleculeSpec) Latency(inst []int) int {
	lat := sp.Overhead
	for i, m := range inst {
		if m == 0 {
			lat += sp.Occ[i] * sp.SWCyc[i]
		} else {
			lat += ((sp.Occ[i] + m - 1) / m) * sp.HWCyc[i]
		}
	}
	return lat
}

// SWLatency returns the latency of the trap implementation (zero Atoms).
func (sp *MoleculeSpec) SWLatency() int {
	return sp.Latency(make([]int, len(sp.Occ)))
}

// Generate produces the Molecule set for SI si in an Atom space of dimension
// dim. It panics on malformed specs; library construction is init-time.
func (sp *MoleculeSpec) Generate(si SIID, dim int) []Molecule {
	if len(sp.Atoms) != len(sp.Occ) || len(sp.Occ) != len(sp.HWCyc) ||
		len(sp.HWCyc) != len(sp.SWCyc) || len(sp.SWCyc) != len(sp.Steps) {
		panic("isa: MoleculeSpec dimension mismatch")
	}
	grid := enumerate(sp.Steps)
	mols := make([]Molecule, 0, len(grid))
	for _, inst := range grid {
		v := molecule.New(dim)
		for i, id := range sp.Atoms {
			v[int(id)] = inst[i]
		}
		if v.IsZero() {
			continue // the trap implementation is not a Molecule
		}
		mols = append(mols, Molecule{SI: si, Atoms: v, Latency: sp.Latency(inst)})
	}
	// Slowest (smallest) first; ties broken by fewer Atoms first so the
	// kept subset prefers cheap upgrade steps.
	sort.Slice(mols, func(i, j int) bool {
		if mols[i].Latency != mols[j].Latency {
			return mols[i].Latency > mols[j].Latency
		}
		return mols[i].Determinant() < mols[j].Determinant()
	})
	if sp.Count > len(mols) {
		panic(fmt.Sprintf("isa: MoleculeSpec wants %d Molecules, grid has only %d", sp.Count, len(mols)))
	}
	if sp.Count == len(mols) {
		return mols
	}
	if sp.Count == 1 {
		// A single-Molecule SI keeps its fastest implementation.
		return mols[len(mols)-1:]
	}
	// Evenly sample Count indices, always keeping first and last.
	kept := make([]Molecule, 0, sp.Count)
	for i := 0; i < sp.Count; i++ {
		idx := i * (len(mols) - 1) / (sp.Count - 1)
		kept = append(kept, mols[idx])
	}
	return dedupe(kept)
}

func enumerate(steps [][]int) [][]int {
	out := [][]int{nil}
	for _, dim := range steps {
		var next [][]int
		for _, prefix := range out {
			for _, v := range dim {
				row := make([]int, len(prefix)+1)
				copy(row, prefix)
				row[len(prefix)] = v
				next = append(next, row)
			}
		}
		out = next
	}
	return out
}

func dedupe(mols []Molecule) []Molecule {
	out := mols[:0]
	for _, m := range mols {
		dup := false
		for _, o := range out {
			if o.Atoms.Equal(m.Atoms) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, m)
		}
	}
	return out
}
