package isa

import (
	"testing"

	"rispp/internal/molecule"
)

func tinyISA(name string) *ISA {
	spec := MoleculeSpec{
		Atoms:    []AtomID{0, 1},
		Occ:      []int{8, 4},
		HWCyc:    []int{2, 1},
		SWCyc:    []int{40, 20},
		Steps:    [][]int{{0, 1, 2}, {0, 1}},
		Overhead: 4,
		Count:    4,
	}
	is := &ISA{
		Name: name,
		Atoms: []AtomType{
			{ID: 0, Name: name + "-A", BitstreamBytes: 50000, Slices: 400, LUTs: 800, FFs: 40},
			{ID: 1, Name: name + "-B", BitstreamBytes: 55000, Slices: 420, LUTs: 850, FFs: 44},
		},
		SIs: []SI{{
			ID: 0, Name: name + "-SI", HotSpot: 0,
			SWLatency: spec.SWLatency(),
			Molecules: spec.Generate(0, 2),
		}},
		HotSpots: []HotSpot{{ID: 0, Name: "hot", SIs: []SIID{0}}},
	}
	if err := is.Validate(); err != nil {
		panic(err)
	}
	return is
}

func TestMergeTwoISAs(t *testing.T) {
	a := tinyISA("alpha")
	b := tinyISA("beta")
	m, err := Merge("combined", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 4 {
		t.Fatalf("merged dim = %d, want 4", m.Dim())
	}
	if len(m.SIs) != 2 || len(m.HotSpots) != 2 {
		t.Fatalf("merged SIs/hot spots = %d/%d", len(m.SIs), len(m.HotSpots))
	}
	// The second part's Molecules must reference the offset Atom space.
	second := m.SI(1)
	for _, mol := range second.Molecules {
		if mol.Atoms[0] != 0 || mol.Atoms[1] != 0 {
			t.Fatalf("beta Molecule uses alpha Atoms: %v", mol.Atoms)
		}
		if mol.Atoms[2] == 0 && mol.Atoms[3] == 0 {
			t.Fatalf("beta Molecule empty in its own space: %v", mol.Atoms)
		}
	}
	// Latencies are preserved.
	if second.SWLatency != b.SI(0).SWLatency {
		t.Fatal("software latency changed by merge")
	}
}

func TestMergeWithH264(t *testing.T) {
	m, err := Merge("video+extra", H264(), tinyISA("extra"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 14 {
		t.Fatalf("dim = %d, want 12+2", m.Dim())
	}
	if len(m.SIs) != 10 {
		t.Fatalf("SIs = %d, want 9+1", len(m.SIs))
	}
	if got := m.HotSpots[3].Name; got != "video+extra: hot" && got[:5] != "extra" {
		// The extra hot spot keeps its origin in the name.
		if got != "H.264 encoder: Loop Filter" { // index 3 is the extra one only if ordering holds
			t.Logf("hot spot names: %v", got)
		}
	}
	siOff, hsOff := Offsets(H264(), tinyISA("extra"))
	if siOff[1] != 9 || hsOff[1] != 3 {
		t.Fatalf("offsets = %v %v", siOff, hsOff)
	}
}

func TestMergeEmptyFails(t *testing.T) {
	if _, err := Merge("x"); err == nil {
		t.Fatal("Merge() accepted zero parts")
	}
}

func TestMergePreservesFastestAvailableSemantics(t *testing.T) {
	a := tinyISA("alpha")
	m, err := Merge("c", a, tinyISA("beta"))
	if err != nil {
		t.Fatal(err)
	}
	// Loading only beta's Atoms must not accelerate alpha's SI.
	avail := molecule.Of(0, 0, 2, 1)
	if _, ok := m.SI(0).FastestAvailable(avail); ok {
		t.Fatal("alpha SI accelerated by beta Atoms")
	}
	if _, ok := m.SI(1).FastestAvailable(avail); !ok {
		t.Fatal("beta SI not accelerated by its own Atoms")
	}
}
