package isa

import (
	"testing"

	"rispp/internal/molecule"
)

func TestH264Validates(t *testing.T) {
	is := H264()
	if err := is.Validate(); err != nil {
		t.Fatalf("H264 ISA invalid: %v", err)
	}
}

// TestTable1 checks the SI inventory against the paper's Table 1: number of
// distinct Atom types and number of Molecules per SI.
func TestTable1(t *testing.T) {
	is := H264()
	want := []struct {
		name      string
		atomTypes int
		molecules int
	}{
		{"SAD", 1, 3},
		{"SATD", 4, 20},
		{"(I)DCT", 3, 12},
		{"(I)HT 2x2", 1, 2},
		{"(I)HT 4x4", 2, 7},
		{"MC", 3, 11},
		{"IPred HDC", 2, 4},
		{"IPred VDC", 1, 3},
		{"LF_BS4", 2, 5},
	}
	if len(is.SIs) != len(want) {
		t.Fatalf("H264 has %d SIs, want %d", len(is.SIs), len(want))
	}
	for _, w := range want {
		si := is.SIByName(w.name)
		if si == nil {
			t.Errorf("SI %q missing", w.name)
			continue
		}
		if got := len(si.Molecules); got != w.molecules {
			t.Errorf("SI %q has %d Molecules, want %d", w.name, got, w.molecules)
		}
		types := map[int]bool{}
		for _, m := range si.Molecules {
			for atom, c := range m.Atoms {
				if c > 0 {
					types[atom] = true
				}
			}
		}
		if got := len(types); got != w.atomTypes {
			t.Errorf("SI %q uses %d Atom types, want %d", w.name, got, w.atomTypes)
		}
	}
}

func TestH264AtomAveragesMatchTable3(t *testing.T) {
	is := H264()
	var slices, luts, ffs, bytes int
	for _, a := range is.Atoms {
		slices += a.Slices
		luts += a.LUTs
		ffs += a.FFs
		bytes += a.BitstreamBytes
	}
	n := len(is.Atoms)
	if got := slices / n; got != 421 {
		t.Errorf("avg Atom slices = %d, want 421", got)
	}
	if got := luts / n; got != 839 {
		t.Errorf("avg Atom LUTs = %d, want 839", got)
	}
	if got := ffs / n; got != 45 {
		t.Errorf("avg Atom FFs = %d, want 45", got)
	}
	if got := bytes / n; got != 60488 {
		t.Errorf("avg Atom bitstream = %d bytes, want 60488", got)
	}
}

func TestFastestAvailable(t *testing.T) {
	is := H264()
	sad := is.SI(SISAD)
	none := molecule.New(is.Dim())
	if _, ok := sad.FastestAvailable(none); ok {
		t.Fatal("SAD has a Molecule available with zero Atoms")
	}
	if lat := sad.LatencyWith(none); lat != sad.SWLatency {
		t.Fatalf("LatencyWith(0) = %d, want software %d", lat, sad.SWLatency)
	}

	one := molecule.New(is.Dim())
	one[AtomSAD16] = 1
	m, ok := sad.FastestAvailable(one)
	if !ok {
		t.Fatal("SAD not available with one SAD16 Atom")
	}
	if !m.Atoms.Equal(sad.Slowest().Atoms) {
		t.Fatalf("fastest with 1 Atom = %v, want slowest Molecule %v", m.Atoms, sad.Slowest().Atoms)
	}

	all := molecule.New(is.Dim())
	for i := range all {
		all[i] = 16
	}
	m, ok = sad.FastestAvailable(all)
	if !ok || m.Latency != sad.Fastest().Latency {
		t.Fatalf("fastest with all Atoms = %+v, want %+v", m, sad.Fastest())
	}
}

func TestLatencyWithIsMonotoneInAvailability(t *testing.T) {
	is := H264()
	for i := range is.SIs {
		si := &is.SIs[i]
		prev := si.SWLatency
		a := molecule.New(is.Dim())
		// Load the fastest Molecule's Atoms one by one; the latency must
		// never increase.
		for _, u := range si.Fastest().Atoms.Units() {
			a = a.Add(molecule.Unit(u, is.Dim()))
			lat := si.LatencyWith(a)
			if lat > prev {
				t.Fatalf("SI %q: latency increased from %d to %d at availability %v", si.Name, prev, lat, a)
			}
			prev = lat
		}
		if prev != si.Fastest().Latency {
			t.Errorf("SI %q: after loading fastest Molecule, latency %d != fastest %d", si.Name, prev, si.Fastest().Latency)
		}
	}
}

func TestSharedAtomsAccelerateMultipleSIs(t *testing.T) {
	is := H264()
	// The Transform Atom is shared between SATD, (I)DCT and the Hadamard
	// transforms; Clip3 between MC and LF_BS4. Check Molecules agree.
	users := map[AtomID][]string{
		AtomTransform: {"SATD", "(I)DCT", "(I)HT 2x2", "(I)HT 4x4"},
		AtomClip3:     {"MC", "LF_BS4"},
		AtomRepack:    {"SATD", "(I)DCT", "(I)HT 4x4", "IPred HDC"},
	}
	for atom, names := range users {
		for _, name := range names {
			si := is.SIByName(name)
			if si == nil {
				t.Fatalf("SI %q missing", name)
			}
			uses := false
			for _, m := range si.Molecules {
				if m.Atoms[atom] > 0 {
					uses = true
					break
				}
			}
			if !uses {
				t.Errorf("SI %q does not use shared Atom %v", name, is.Atom(atom).Name)
			}
		}
	}
}

func TestMoleculeSpecLatencyModel(t *testing.T) {
	sp := MoleculeSpec{
		Atoms:    []AtomID{0, 1},
		Occ:      []int{8, 4},
		HWCyc:    []int{5, 2},
		SWCyc:    []int{40, 20},
		Steps:    [][]int{{0, 1, 2}, {0, 1, 2}},
		Overhead: 4,
		Count:    8,
	}
	// latency((1,1)) = 4 + 8*5 + 4*2 = 52
	if got := sp.Latency([]int{1, 1}); got != 52 {
		t.Fatalf("Latency(1,1) = %d, want 52", got)
	}
	// latency((2,2)) = 4 + 4*5 + 2*2 = 28
	if got := sp.Latency([]int{2, 2}); got != 28 {
		t.Fatalf("Latency(2,2) = %d, want 28", got)
	}
	// latency((0,1)): type 0 emulated in software = 4 + 8*40 + 4*2 = 332
	if got := sp.Latency([]int{0, 1}); got != 332 {
		t.Fatalf("Latency(0,1) = %d, want 332", got)
	}
	// The trap implementation uses the software cycles throughout.
	if got := sp.SWLatency(); got != 4+8*40+4*20 {
		t.Fatalf("SWLatency = %d, want %d", got, 4+8*40+4*20)
	}
	mols := sp.Generate(0, 2)
	if len(mols) != 8 {
		t.Fatalf("Generate kept %d Molecules, want 8 (grid minus zero vector)", len(mols))
	}
	for i := 1; i < len(mols); i++ {
		if mols[i].Latency > mols[i-1].Latency {
			t.Fatal("Molecules not sorted by decreasing latency")
		}
	}
	for _, m := range mols {
		if m.Atoms.IsZero() {
			t.Fatal("Generate emitted the zero vector")
		}
	}
}

func TestMoleculeSpecCeilDivision(t *testing.T) {
	sp := MoleculeSpec{
		Atoms:    []AtomID{0},
		Occ:      []int{5},
		HWCyc:    []int{10},
		SWCyc:    []int{100},
		Steps:    [][]int{{2}},
		Overhead: 0,
		Count:    1,
	}
	// ceil(5/2) = 3 → 30 cycles.
	if got := sp.Latency([]int{2}); got != 30 {
		t.Fatalf("Latency = %d, want 30", got)
	}
}

func TestGenerateKeepsExtremes(t *testing.T) {
	is := H264()
	for i := range is.SIs {
		si := &is.SIs[i]
		slowest := si.Slowest()
		fastest := si.Fastest()
		// The smallest Molecule must be dominated by every other and the
		// largest must dominate in latency terms.
		for _, m := range si.Molecules {
			if m.Latency > slowest.Latency {
				t.Errorf("SI %q: Molecule slower than Slowest()", si.Name)
			}
			if m.Latency < fastest.Latency {
				t.Errorf("SI %q: Molecule faster than Fastest()", si.Name)
			}
		}
		if fastest.Determinant() < slowest.Determinant() {
			t.Errorf("SI %q: fastest Molecule smaller than slowest", si.Name)
		}
	}
}

func TestHotSpotSIs(t *testing.T) {
	is := H264()
	me := is.HotSpotSIs(HotSpotME)
	if len(me) != 2 {
		t.Fatalf("ME hot spot has %d SIs, want 2 (SAD, SATD)", len(me))
	}
	ee := is.HotSpotSIs(HotSpotEE)
	if len(ee) != 6 {
		t.Fatalf("EE hot spot has %d SIs, want 6", len(ee))
	}
	lf := is.HotSpotSIs(HotSpotLF)
	if len(lf) != 1 || lf[0].Name != "LF_BS4" {
		t.Fatalf("LF hot spot = %v", lf)
	}
}

func TestSIByNameMissing(t *testing.T) {
	if si := H264().SIByName("nope"); si != nil {
		t.Fatalf("SIByName(nope) = %v, want nil", si)
	}
}

func TestAvgBitstreamBytes(t *testing.T) {
	is := H264()
	if got := is.AvgBitstreamBytes(); got != 60488 {
		t.Fatalf("AvgBitstreamBytes = %v, want 60488", got)
	}
	empty := &ISA{}
	if got := empty.AvgBitstreamBytes(); got != 0 {
		t.Fatalf("empty ISA avg = %v", got)
	}
}

func TestValidateCatchesBrokenISAs(t *testing.T) {
	break1 := H264()
	break1.SIs[0].Molecules[0].Latency = break1.SIs[0].SWLatency + 1
	if break1.Validate() == nil {
		t.Error("Validate missed hardware slower than software")
	}

	break2 := H264()
	break2.SIs[0].Molecules = nil
	if break2.Validate() == nil {
		t.Error("Validate missed SI without Molecules")
	}

	break3 := H264()
	break3.SIs[1].Molecules[0].Atoms = molecule.New(3)
	if break3.Validate() == nil {
		t.Error("Validate missed dimension mismatch")
	}

	break4 := H264()
	// Make the largest Molecule slower than the smallest: monotonicity broken.
	last := len(break4.SIs[1].Molecules) - 1
	break4.SIs[1].Molecules[last].Latency = break4.SIs[1].Molecules[0].Latency + 1
	if break4.Validate() == nil {
		t.Error("Validate missed non-monotone latency")
	}
}
