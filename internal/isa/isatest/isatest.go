// Package isatest generates random, structurally valid dynamic instruction
// sets for property-based testing of the scheduler, selection and run-time
// packages.
package isatest

import (
	"fmt"
	"math/rand"

	"rispp/internal/isa"
)

// RandomISA builds a random valid ISA: nSIs Special Instructions over a
// dim-dimensional Atom space, each with a ≤-monotone Molecule set derived
// from a random work model. All SIs share one hot spot (ID 0).
func RandomISA(rng *rand.Rand, dim, nSIs int) *isa.ISA {
	out := &isa.ISA{Name: "random"}
	for a := 0; a < dim; a++ {
		out.Atoms = append(out.Atoms, isa.AtomType{
			ID:             isa.AtomID(a),
			Name:           fmt.Sprintf("A%d", a),
			BitstreamBytes: 40000 + rng.Intn(40000),
			Slices:         200 + rng.Intn(500),
			LUTs:           400 + rng.Intn(1000),
			FFs:            10 + rng.Intn(80),
		})
	}
	hs := isa.HotSpot{ID: 0, Name: "hot"}
	for s := 0; s < nSIs; s++ {
		nTypes := 1 + rng.Intn(3)
		if nTypes > dim {
			nTypes = dim
		}
		perm := rng.Perm(dim)[:nTypes]
		spec := isa.MoleculeSpec{Overhead: 2 + rng.Intn(20)}
		for _, a := range perm {
			spec.Atoms = append(spec.Atoms, isa.AtomID(a))
			spec.Occ = append(spec.Occ, 2+rng.Intn(15))
			spec.HWCyc = append(spec.HWCyc, 1+rng.Intn(3))
			spec.SWCyc = append(spec.SWCyc, 10+rng.Intn(60))
			steps := []int{1, 2}
			if nTypes > 1 && rng.Intn(2) == 0 {
				steps = append([]int{0}, steps...)
			}
			if rng.Intn(2) == 0 {
				steps = append(steps, 4)
			}
			spec.Steps = append(spec.Steps, steps)
		}
		grid := 1
		for _, st := range spec.Steps {
			grid *= len(st)
		}
		for _, st := range spec.Steps {
			if st[0] == 0 {
				grid-- // the all-zero vector is excluded once
				break
			}
		}
		spec.Count = 1 + rng.Intn(grid)
		id := isa.SIID(s)
		out.SIs = append(out.SIs, isa.SI{
			ID:        id,
			Name:      fmt.Sprintf("SI%d", s),
			HotSpot:   0,
			SWLatency: spec.SWLatency(),
			Molecules: spec.Generate(id, dim),
		})
		hs.SIs = append(hs.SIs, id)
	}
	out.HotSpots = []isa.HotSpot{hs}
	return out
}
