package isa

// The H.264 video encoder dynamic instruction set of the paper's Table 1.
//
//	Hot spot              SI          #Atom-types  #Molecules
//	Motion Estimation     SAD              1            3
//	                      SATD             4           20
//	Encoding Engine       (I)DCT           3           12
//	                      (I)HT 2x2        1            2
//	                      (I)HT 4x4        2            7
//	                      MC               3           11
//	                      IPred HDC        2            4
//	                      IPred VDC        1            3
//	Loop Filter           LF_BS4           2            5
//
// The global Atom-type space includes shared Atoms (e.g. Transform is used
// by SATD, (I)DCT and both Hadamard transforms; Clip3 by MC and LF_BS4;
// Repack by several SIs), which is the essence of RISPP's efficient
// hardware reuse.

// Global Atom-type IDs of the H.264 ISA.
const (
	AtomSAD16       AtomID = iota // 16-pixel SAD accumulation tree
	AtomQSub                      // quad packed subtraction
	AtomTransform                 // 2-D butterfly transform (DCT/Hadamard core)
	AtomSAV                       // sum of absolute values
	AtomRepack                    // operand repacking / byte rearrangement
	AtomDCTQ                      // DCT quantization stage
	AtomPointFilter               // 6-tap half-pel point filter (Figure 3)
	AtomBytePack                  // byte packing (Figure 3)
	AtomClip3                     // 3-operand clipping (Figure 3)
	AtomPredHDC                   // horizontal DC intra prediction
	AtomPredVDC                   // vertical DC intra prediction
	AtomLFCond                    // loop-filter boundary-strength condition

	numH264Atoms = int(AtomLFCond) + 1
)

// SI IDs of the H.264 ISA.
const (
	SISAD SIID = iota
	SISATD
	SIDCT
	SIHT2x2
	SIHT4x4
	SIMC
	SIIPredHDC
	SIIPredVDC
	SILFBS4
)

// Hot spot IDs of the H.264 encoder (Figure 1).
const (
	HotSpotME HotSpotID = iota // Motion Estimation
	HotSpotEE                  // Encoding Engine
	HotSpotLF                  // Loop Filter
)

// h264AtomTypes lists hardware characteristics of each Atom. The values are
// calibrated so that the averages match the paper's Table 3 "Avg. Atom"
// column (421 slices, 839 LUTs, 45 FFs) and the average partial-bitstream
// size matches the reported 60,488 bytes.
var h264AtomTypes = []AtomType{
	{AtomSAD16, "SAD16", 66200, 512, 980, 64},
	{AtomQSub, "QSub", 52300, 280, 560, 24},
	{AtomTransform, "Transform", 66800, 520, 1010, 80},
	{AtomSAV, "SAV", 53800, 300, 590, 30},
	{AtomRepack, "Repack", 48200, 220, 420, 16},
	{AtomDCTQ, "DCTQ", 63900, 460, 900, 60},
	{AtomPointFilter, "PointFilter", 67400, 540, 1050, 72},
	{AtomBytePack, "BytePack", 50100, 260, 500, 20},
	{AtomClip3, "Clip3", 54500, 310, 610, 28},
	{AtomPredHDC, "PredHDC", 61200, 430, 840, 48},
	{AtomPredVDC, "PredVDC", 60300, 410, 800, 44},
	{AtomLFCond, "LFCond", 81156, 810, 1808, 54},
}

// h264SIs defines name, hot spot and the Molecule generator of every SI;
// the software (trap) latency is derived from the same model (all Atom
// types emulated by base instructions). Molecule counts match Table 1
// exactly.
var h264SIs = []struct {
	name    string
	hotSpot HotSpotID
	spec    MoleculeSpec
}{
	{"SAD", HotSpotME, MoleculeSpec{
		Atoms:    []AtomID{AtomSAD16},
		Occ:      []int{16},
		HWCyc:    []int{2},
		SWCyc:    []int{69},
		Steps:    [][]int{{1, 4, 16}},
		Overhead: 6,
		Count:    3,
	}}, // SW 1110; Molecules 38 / 14 / 8
	{"SATD", HotSpotME, MoleculeSpec{
		Atoms:    []AtomID{AtomQSub, AtomTransform, AtomSAV, AtomRepack},
		Occ:      []int{8, 16, 8, 4},
		HWCyc:    []int{1, 2, 1, 1},
		SWCyc:    []int{26, 64, 28, 36},
		Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2, 4, 8}, {0, 1, 2}, {0, 1, 2}},
		Overhead: 20,
		Count:    20,
	}}, // SW 1620; full Molecule (4,8,2,2) at 32
	{"(I)DCT", HotSpotEE, MoleculeSpec{
		Atoms:    []AtomID{AtomTransform, AtomDCTQ, AtomRepack},
		Occ:      []int{16, 8, 4},
		HWCyc:    []int{1, 1, 1},
		SWCyc:    []int{15, 15, 15},
		Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2}, {0, 1, 2}},
		Overhead: 15,
		Count:    12,
	}}, // SW 435; full Molecule (4,2,2) at 25
	{"(I)HT 2x2", HotSpotEE, MoleculeSpec{
		Atoms:    []AtomID{AtomTransform},
		Occ:      []int{4},
		HWCyc:    []int{2},
		SWCyc:    []int{85},
		Steps:    [][]int{{1, 2}},
		Overhead: 7,
		Count:    2,
	}}, // SW 347; Molecules 15 / 11
	{"(I)HT 4x4", HotSpotEE, MoleculeSpec{
		Atoms:    []AtomID{AtomTransform, AtomRepack},
		Occ:      []int{8, 4},
		HWCyc:    []int{2, 1},
		SWCyc:    []int{45, 30},
		Steps:    [][]int{{0, 1, 2, 4, 8}, {0, 1, 2}},
		Overhead: 10,
		Count:    7,
	}}, // SW 490; full Molecule (8,2) at 14
	{"MC", HotSpotEE, MoleculeSpec{
		Atoms:    []AtomID{AtomPointFilter, AtomBytePack, AtomClip3},
		Occ:      []int{16, 8, 8},
		HWCyc:    []int{2, 1, 1},
		SWCyc:    []int{62, 26, 28},
		Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2}, {0, 1, 2}},
		Overhead: 16,
		Count:    11,
	}}, // SW 1440; full Molecule (4,2,2) at 32
	{"IPred HDC", HotSpotEE, MoleculeSpec{
		Atoms:    []AtomID{AtomPredHDC, AtomRepack},
		Occ:      []int{8, 4},
		HWCyc:    []int{2, 1},
		SWCyc:    []int{54, 30},
		Steps:    [][]int{{0, 1, 2}, {0, 1, 2}},
		Overhead: 8,
		Count:    4,
	}}, // SW 560; full Molecule (2,2) at 18
	{"IPred VDC", HotSpotEE, MoleculeSpec{
		Atoms:    []AtomID{AtomPredVDC},
		Occ:      []int{8},
		HWCyc:    []int{2},
		SWCyc:    []int{56},
		Steps:    [][]int{{1, 2, 4}},
		Overhead: 12,
		Count:    3,
	}}, // SW 460; Molecules 28 / 20 / 16
	{"LF_BS4", HotSpotLF, MoleculeSpec{
		Atoms:    []AtomID{AtomLFCond, AtomClip3},
		Occ:      []int{8, 8},
		HWCyc:    []int{2, 1},
		SWCyc:    []int{50, 40},
		Steps:    [][]int{{0, 1, 2, 4}, {0, 1, 2}},
		Overhead: 15,
		Count:    5,
	}}, // SW 735; full Molecule (4,2) at 23
}

// H264 constructs the H.264 encoder ISA of Table 1. The returned ISA is
// freshly allocated and safe for concurrent use by independent simulations.
func H264() *ISA {
	is := &ISA{
		Name:  "H.264 encoder",
		Atoms: append([]AtomType(nil), h264AtomTypes...),
		HotSpots: []HotSpot{
			{HotSpotME, "Motion Estimation", []SIID{SISAD, SISATD}},
			{HotSpotEE, "Encoding Engine", []SIID{SIDCT, SIHT2x2, SIHT4x4, SIMC, SIIPredHDC, SIIPredVDC}},
			{HotSpotLF, "Loop Filter", []SIID{SILFBS4}},
		},
	}
	for i, d := range h264SIs {
		id := SIID(i)
		is.SIs = append(is.SIs, SI{
			ID:        id,
			Name:      d.name,
			HotSpot:   d.hotSpot,
			SWLatency: d.spec.SWLatency(),
			Molecules: d.spec.Generate(id, numH264Atoms),
		})
	}
	if err := is.Validate(); err != nil {
		panic("isa: H264 library invalid: " + err.Error())
	}
	return is
}
