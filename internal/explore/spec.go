// Package explore is a concurrent, cancellable design-space exploration
// engine for the RISPP evaluation platform. A declarative Spec spans a grid
// (and/or an explicit list) of design points — scheduler, Atom-Container
// budget, workload knobs — which the Engine expands into deduplicated jobs
// and runs on a bounded worker pool with context cancellation, per-job
// panic recovery and a content-addressed result cache. Results stream as
// JSONL in job order (byte-identical regardless of parallelism) and are
// aggregated into best-per-AC, speedup and Pareto-front summaries.
//
// The discrete-event simulator of internal/sim is pure and deterministic,
// so the same spec yields bit-identical results at any worker count; this
// is what makes both the parallelism and the cache safe.
package explore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Point is one configuration of the design space: the knobs of a single
// simulation run. The zero value is normalized to the paper's defaults
// (HEF, 140 CIF frames) by Spec.Expand. Field order is the canonical
// serialization order — do not reorder fields, the cache keys depend on it.
type Point struct {
	// Scheduler is the run-time system: a RISPP SI-scheduler name, "Molen"
	// or "software" ("HEF" if empty).
	Scheduler string `json:"scheduler"`
	// NumACs is the Atom-Container budget (ignored for "software").
	NumACs int `json:"acs"`
	// Frames sizes the H.264 workload (140 if zero).
	Frames int `json:"frames"`
	// Seed is the workload PRNG seed.
	Seed int64 `json:"seed"`
	// Motion is the per-frame motion variability (0..1).
	Motion float64 `json:"motion"`
	// SceneChange, when > 0, raises the motion level from that frame on.
	SceneChange int `json:"scene_change"`
	// SeedForecasts seeds the monitor from the trace (design-time
	// estimation); almost always desirable.
	SeedForecasts bool `json:"seed_forecasts"`
	// Prefetch enables next-hot-spot reconfiguration prefetching.
	Prefetch bool `json:"prefetch"`
	// Scenario, when non-empty, replaces the H.264 workload generator
	// with the named scenario from internal/scenario: Frames becomes the
	// scenario iteration count, Seed selects a member of its seeded trace
	// family, and Motion/SceneChange must stay zero (they are H.264
	// generator knobs). The name participates in Key/Hash — shipped
	// scenarios are append-only precisely so the name is a sound content
	// address. omitempty keeps the keys (and caches) of all non-scenario
	// points unchanged.
	Scenario string `json:"scenario,omitempty"`
}

// Normalized fills the paper defaults so that equivalent points share one
// canonical form — and therefore one cache entry and one serving-layer
// dedup key. Spec.Expand normalizes every point; callers keying caches on
// points built by hand (e.g. a single-point HTTP request) must normalize
// first, or equal design points would hash differently.
func (p Point) Normalized() Point {
	if p.Scheduler == "" {
		p.Scheduler = "HEF"
	}
	if p.Frames == 0 {
		p.Frames = 140
	}
	return p
}

// Key returns the canonical serialized form of the point: compact JSON
// with fields in declaration order. Two points are the same design point
// iff their keys are equal.
func (p Point) Key() string {
	b, err := json.Marshal(p)
	if err != nil {
		panic(fmt.Sprintf("explore: marshal point: %v", err)) // plain scalars; cannot fail
	}
	return string(b)
}

// Hash returns the content address of the point — SHA-256 over Key — used
// as the cache file name.
func (p Point) Hash() string {
	h := sha256.Sum256([]byte(p.Key()))
	return hex.EncodeToString(h[:])
}

// Hash64 returns the first 8 bytes of Hash as a big-endian integer — the
// sharding key of the distributed sweep fabric. Shard assignment therefore
// depends only on the canonical point key, never on enumeration order, so
// any process that expands the same spec partitions it identically.
func (p Point) Hash64() uint64 {
	h := sha256.Sum256([]byte(p.Key()))
	return binary.BigEndian.Uint64(h[:8])
}

// Spec declares a design-space sweep: the cross product of every non-empty
// grid dimension, plus an explicit list of extra points. Empty grid
// dimensions default to a single paper-default value; a spec with only
// Points set runs exactly those. Specs round-trip through JSON for the
// risppexplore -spec file.
type Spec struct {
	Schedulers    []string  `json:"schedulers,omitempty"`
	ACs           []int     `json:"acs,omitempty"`
	Frames        []int     `json:"frames,omitempty"`
	Seeds         []int64   `json:"seeds,omitempty"`
	Motion        []float64 `json:"motion,omitempty"`
	SceneChanges  []int     `json:"scene_changes,omitempty"`
	SeedForecasts []bool    `json:"seed_forecasts,omitempty"`
	Prefetch      []bool    `json:"prefetch,omitempty"`
	// Scenarios spans the workload axis: "" is the H.264 generator, any
	// other entry a named scenario.
	Scenarios []string `json:"scenarios,omitempty"`
	Points    []Point  `json:"points,omitempty"`
}

// gridEmpty reports whether no grid dimension is set at all, in which case
// Expand emits only the explicit Points.
func (s Spec) gridEmpty() bool {
	return len(s.Schedulers) == 0 && len(s.ACs) == 0 && len(s.Frames) == 0 &&
		len(s.Seeds) == 0 && len(s.Motion) == 0 && len(s.SceneChanges) == 0 &&
		len(s.SeedForecasts) == 0 && len(s.Prefetch) == 0 && len(s.Scenarios) == 0
}

// Expand turns the spec into the ordered, deduplicated job list: the grid
// in nested-loop order (schedulers outermost, prefetch innermost), then the
// explicit points; duplicates keep their first position. The order is
// deterministic, so the JSONL result stream is byte-stable across runs and
// worker counts.
func (s Spec) Expand() ([]Point, error) {
	var grid []Point
	if !s.gridEmpty() {
		schedulers := s.Schedulers
		if len(schedulers) == 0 {
			schedulers = []string{"HEF"}
		}
		acs := s.ACs
		if len(acs) == 0 {
			acs = []int{10}
		}
		frames := s.Frames
		if len(frames) == 0 {
			frames = []int{140}
		}
		seeds := s.Seeds
		if len(seeds) == 0 {
			seeds = []int64{0}
		}
		motion := s.Motion
		if len(motion) == 0 {
			motion = []float64{0}
		}
		scenes := s.SceneChanges
		if len(scenes) == 0 {
			scenes = []int{0}
		}
		forecasts := s.SeedForecasts
		if len(forecasts) == 0 {
			forecasts = []bool{true}
		}
		prefetch := s.Prefetch
		if len(prefetch) == 0 {
			prefetch = []bool{false}
		}
		scenarios := s.Scenarios
		if len(scenarios) == 0 {
			scenarios = []string{""}
		}
		for _, wl := range scenarios {
			for _, sc := range schedulers {
				for _, n := range acs {
					for _, f := range frames {
						for _, sd := range seeds {
							for _, m := range motion {
								for _, sn := range scenes {
									for _, fc := range forecasts {
										for _, pf := range prefetch {
											grid = append(grid, Point{
												Scheduler: sc, NumACs: n, Frames: f,
												Seed: sd, Motion: m, SceneChange: sn,
												SeedForecasts: fc, Prefetch: pf,
												Scenario: wl,
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	all := append(grid, s.Points...)
	seen := make(map[string]bool, len(all))
	out := make([]Point, 0, len(all))
	for _, p := range all {
		p = p.Normalized()
		if p.NumACs < 0 {
			return nil, fmt.Errorf("explore: negative AC count %d", p.NumACs)
		}
		if p.Frames < 0 {
			return nil, fmt.Errorf("explore: negative frame count %d", p.Frames)
		}
		if p.Motion < 0 || p.Motion > 1 {
			return nil, fmt.Errorf("explore: motion variability %g outside [0,1]", p.Motion)
		}
		if p.Scenario != "" && (p.Motion != 0 || p.SceneChange != 0) {
			return nil, fmt.Errorf("explore: scenario %q combined with H.264 knobs (motion/scene_change)", p.Scenario)
		}
		k := p.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, p)
	}
	return out, nil
}
