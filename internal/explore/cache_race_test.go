package explore

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestCacheConcurrentWritersSharedDir hammers one cache directory from many
// goroutines across two independent Cache instances — the multi-process
// sharing mode of the sweep fabric (several risppserve workers pointed at
// one directory). Every Put must succeed: racing writers hold byte-identical
// entries, so losing a rename race to an equal entry is success, not an
// error.
func TestCacheConcurrentWritersSharedDir(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	points := make([]Point, 8)
	for i := range points {
		points[i] = Point{Scheduler: "HEF", NumACs: i + 1, Frames: 5}.Normalized()
	}
	metrics := func(p Point) Metrics {
		return Metrics{TotalCycles: int64(p.NumACs) * 1000, StallCycles: 7,
			SWExecutions: 1, HWExecutions: 2}
	}

	const writersPerCache = 16
	var wg sync.WaitGroup
	errs := make(chan error, 2*writersPerCache*len(points))
	for _, c := range []*Cache{c1, c2} {
		for w := 0; w < writersPerCache; w++ {
			wg.Add(1)
			go func(c *Cache) {
				defer wg.Done()
				for _, p := range points {
					if err := c.Put(p, metrics(p)); err != nil {
						errs <- err
					}
				}
			}(c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Put: %v", err)
	}

	if got := c1.Len(); got != len(points) {
		t.Errorf("cache holds %d entries, want %d", got, len(points))
	}
	for _, p := range points {
		if m, ok := c2.Get(p); !ok || m != metrics(p) {
			t.Errorf("after the race, %s: %+v ok=%v", p.Key(), m, ok)
		}
	}
	// No temp-file litter: every writer either renamed its file or removed it.
	leftovers, err := filepath.Glob(filepath.Join(dir, ".put-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("%d temp files left behind: %v", len(leftovers), leftovers)
	}
}
