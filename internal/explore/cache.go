package explore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Cache is a content-addressed result store: one JSON file per design
// point, named by the SHA-256 of the point's canonical key. Entries are
// written atomically (temp file + rename) and a lost rename race against a
// concurrent writer of the same point is tolerated, so a cache directory
// can be shared by concurrent workers — including several processes of a
// sweep fleet — and re-used across restarts (the -resume mechanism of
// risppexplore).
type Cache struct {
	dir string

	// WriteOnly disables Get: every point re-simulates and overwrites its
	// entry — the risppexplore -resume=false mode.
	WriteOnly bool
}

// Store is the result-cache interface the exploration engine consults
// before and fills after every job. *Cache is the canonical implementation
// (content-addressed disk files); internal/fabric layers a peer-backed
// tier on top so a worker fleet shares one logical cache.
type Store interface {
	// Get returns the cached metrics of the point, if present and valid.
	Get(p Point) (Metrics, bool)
	// Put stores the metrics of a completed simulation.
	Put(p Point, m Metrics) error
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("explore: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// cacheEntry is the on-disk (and cache-peer wire) format. The full
// canonical key is stored and verified on read, so a corrupt or foreign
// file is treated as a miss rather than returned as a wrong result.
type cacheEntry struct {
	Key string `json:"key"`
	Metrics
}

// EncodeEntry renders the canonical stored form of a cached result — the
// bytes Put writes and the body of the cache-peer protocol's GET/PUT.
func EncodeEntry(p Point, m Metrics) []byte {
	b, err := json.Marshal(cacheEntry{Key: p.Key(), Metrics: m})
	if err != nil {
		panic(fmt.Sprintf("explore: marshal cache entry: %v", err)) // plain scalars; cannot fail
	}
	return append(b, '\n')
}

// DecodeEntry parses a stored entry and validates it against the point it
// was requested for; a mismatch (corruption, foreign entry) is a miss.
func DecodeEntry(p Point, b []byte) (Metrics, bool) {
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil || e.Key != p.Key() {
		return Metrics{}, false
	}
	return e.Metrics, true
}

// ValidEntryForHash reports whether b is a well-formed entry whose stored
// key hashes to hash — the integrity check of the cache-peer PUT path,
// where the receiver knows only the content address.
func ValidEntryForHash(hash string, b []byte) bool {
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil || e.Key == "" {
		return false
	}
	h := sha256.Sum256([]byte(e.Key))
	return hex.EncodeToString(h[:]) == hash
}

// ValidHash reports whether s has the exact shape of a point content
// address (64 lowercase hex digits). Anything else must be rejected before
// it is joined into a cache path — the hash arrives over HTTP in the
// cache-peer protocol.
func ValidHash(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (c *Cache) path(p Point) string {
	return filepath.Join(c.dir, p.Hash()+".json")
}

// Get returns the cached metrics of the point, if present and valid.
func (c *Cache) Get(p Point) (Metrics, bool) {
	if c.WriteOnly {
		return Metrics{}, false
	}
	b, err := os.ReadFile(c.path(p))
	if err != nil {
		return Metrics{}, false
	}
	return DecodeEntry(p, b)
}

// Put stores the metrics of a completed simulation.
func (c *Cache) Put(p Point, m Metrics) error {
	return c.writeEntry(p.Hash(), EncodeEntry(p, m))
}

// GetRaw returns the stored entry bytes for a content address — the
// cache-peer GET path. The hash must already be validated (ValidHash).
func (c *Cache) GetRaw(hash string) ([]byte, bool) {
	if c.WriteOnly || !ValidHash(hash) {
		return nil, false
	}
	b, err := os.ReadFile(filepath.Join(c.dir, hash+".json"))
	if err != nil {
		return nil, false
	}
	return b, true
}

// PutRaw stores entry bytes under their content address — the cache-peer
// PUT path. The body is validated against the hash (ValidEntryForHash), so
// a peer cannot poison the store with a mislabeled result.
func (c *Cache) PutRaw(hash string, b []byte) error {
	if !ValidHash(hash) {
		return fmt.Errorf("explore: cache put: invalid content address %q", hash)
	}
	if !ValidEntryForHash(hash, b) {
		return fmt.Errorf("explore: cache put: entry does not match content address %s", hash)
	}
	return c.writeEntry(hash, b)
}

// writeEntry writes entry bytes to <dir>/<hash>.json via a temp file and an
// atomic rename. Concurrent workers — goroutines or whole processes sharing
// the directory — may race on the same point: every writer holds a
// byte-identical entry (the simulator is deterministic), so whichever
// rename lands last simply overwrites equal bytes. On filesystems where
// rename-over-existing fails (EEXIST semantics), a loser whose destination
// already holds a valid equal entry treats the race as won by the other
// writer and succeeds.
func (c *Cache) writeEntry(hash string, b []byte) error {
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("explore: cache put: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: cache put: %w", err)
	}
	dst := filepath.Join(c.dir, hash+".json")
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		if cur, rerr := os.ReadFile(dst); rerr == nil && bytes.Equal(cur, b) {
			return nil // a concurrent writer of the same point won the race
		}
		return fmt.Errorf("explore: cache put: %w", err)
	}
	return nil
}

// Len counts the stored entries.
func (c *Cache) Len() int {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}
