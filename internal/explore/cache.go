package explore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Cache is a content-addressed result store: one JSON file per design
// point, named by the SHA-256 of the point's canonical key. Entries are
// written atomically (temp file + rename), so a cache directory can be
// shared by concurrent workers and re-used across processes — the -resume
// mechanism of risppexplore.
type Cache struct {
	dir string

	// WriteOnly disables Get: every point re-simulates and overwrites its
	// entry — the risppexplore -resume=false mode.
	WriteOnly bool
}

// OpenCache opens (creating if needed) a cache directory.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("explore: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

// cacheEntry is the on-disk format. The full canonical key is stored and
// verified on read, so a corrupt or foreign file is treated as a miss
// rather than returned as a wrong result.
type cacheEntry struct {
	Key string `json:"key"`
	Metrics
}

func (c *Cache) path(p Point) string {
	return filepath.Join(c.dir, p.Hash()+".json")
}

// Get returns the cached metrics of the point, if present and valid.
func (c *Cache) Get(p Point) (Metrics, bool) {
	if c.WriteOnly {
		return Metrics{}, false
	}
	b, err := os.ReadFile(c.path(p))
	if err != nil {
		return Metrics{}, false
	}
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil || e.Key != p.Key() {
		return Metrics{}, false
	}
	return e.Metrics, true
}

// Put stores the metrics of a completed simulation.
func (c *Cache) Put(p Point, m Metrics) error {
	b, err := json.Marshal(cacheEntry{Key: p.Key(), Metrics: m})
	if err != nil {
		return fmt.Errorf("explore: cache put: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("explore: cache put: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(p)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("explore: cache put: %w", err)
	}
	return nil
}

// Len counts the stored entries.
func (c *Cache) Len() int {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}
