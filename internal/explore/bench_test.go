// Benchmarks of the exploration engine's orchestration overhead: job
// expansion, worker-pool scheduling and ordered JSONL streaming, isolated
// from simulation cost by a trivial RunFunc.
//
// Run with: go test -bench . -benchmem ./internal/explore
package explore

import (
	"context"
	"io"
	"testing"
)

func benchSpec() Spec {
	return Spec{
		Schedulers: []string{"FSFR", "ASF", "SJF", "HEF"},
		ACs:        []int{5, 10, 15, 20, 25},
		Frames:     []int{20},
	}
}

func noopRun(ctx context.Context, p Point) (Metrics, error) {
	return Metrics{
		TotalCycles:  int64(p.NumACs) * 1000,
		StallCycles:  int64(p.NumACs) * 10,
		SWExecutions: 1,
		HWExecutions: 2,
	}, nil
}

// BenchmarkEngineExecute measures the per-sweep engine overhead without
// output streaming.
func BenchmarkEngineExecute(b *testing.B) {
	eng := &Engine{Run: noopRun, Workers: 4}
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(context.Background(), spec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineExecuteJSONL adds the ordered JSONL result stream — the
// path risppexplore runs; the encoder is shared across records so the
// per-record cost must stay flat.
func BenchmarkEngineExecuteJSONL(b *testing.B) {
	eng := &Engine{Run: noopRun, Workers: 4}
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(context.Background(), spec, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpecExpand measures grid expansion and dedup on their own.
func BenchmarkSpecExpand(b *testing.B) {
	spec := benchSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Expand(); err != nil {
			b.Fatal(err)
		}
	}
}
