package explore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"rispp/internal/hwmodel"
	"rispp/internal/stats"
)

// Metrics is the measured outcome of one design point.
type Metrics struct {
	TotalCycles  int64 `json:"cycles"`
	StallCycles  int64 `json:"stall_cycles"`
	SWExecutions int64 `json:"sw_execs"`
	HWExecutions int64 `json:"hw_execs"`
}

// Record pairs a design point with its outcome — one line of the JSONL
// result stream. Cached and CacheWarn are deliberately excluded from the
// serialization so that cold and warm runs of the same spec produce
// identical bytes.
type Record struct {
	Point Point `json:"point"`
	Metrics
	// Area is the estimated fabric cost of the point in Virtex-II slices
	// (hwmodel.PointArea): the Atom-Container array plus the run-time
	// system's fixed hardware. It is derived from the point — not measured
	// and not cached — so every record carries it, including failed ones,
	// and cold/warm runs stay byte-identical.
	Area int64  `json:"area"`
	Err  string `json:"err,omitempty"`

	Cached bool `json:"-"`
	// CacheWarn carries a non-fatal warning: the point simulated fine but
	// its result could not be written to the cache (a re-run will simulate
	// it again). It never affects OK().
	CacheWarn string `json:"-"`
}

// OK reports whether the job produced a usable measurement.
func (r Record) OK() bool { return r.Err == "" }

// RunFunc simulates one design point. The engine calls it from multiple
// goroutines; implementations must not share mutable state across calls.
type RunFunc func(ctx context.Context, p Point) (Metrics, error)

// RunSetFunc simulates a batch of design points that share one workload and
// differ only in their run-time system (scheduler), returning one Metrics
// per point in input order. The engine calls it from multiple goroutines.
type RunSetFunc func(ctx context.Context, ps []Point) ([]Metrics, error)

// Engine executes sweep specs on a bounded worker pool.
type Engine struct {
	// Run simulates one point (required).
	Run RunFunc
	// RunSet, when non-nil, batches the points of each scheduler group —
	// points identical except for Point.Scheduler — into one call, letting
	// the backend walk the shared compiled trace once for all systems of a
	// grid point (sim.RunCompiledSet). Workers then operate on groups
	// instead of single points; records, their order, and the cache
	// behavior are unchanged. Cached points are excluded from the batch; a
	// RunSet error fails every uncached point of its group.
	RunSet RunSetFunc
	// Workers bounds the pool; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Cache, when non-nil, is consulted before and populated after every
	// job, so re-running an enlarged sweep only simulates new points. It is
	// typically a *Cache (content-addressed disk files); a sweep-fabric
	// worker installs a peer-backed tiered Store instead, making the cache
	// fleet-wide. Beware of typed-nil interfaces: assign only a non-nil
	// implementation.
	Cache Store
	// OnRecord, when non-nil, is invoked for every record exactly when it
	// is streamed: strictly in job order, immediately after the record is
	// encoded to Execute's writer (or where it would have been, when no
	// writer is given). Serving layers use it to flush chunked responses
	// per line and to observe cache hits (Record.Cached is not serialized).
	// The callback runs under the engine's internal lock — it must return
	// promptly and must not call back into the engine.
	OnRecord func(Record)
}

// Summary aggregates an executed sweep.
type Summary struct {
	// Total / Simulated / CacheHits / Failed count jobs; Simulated counts
	// actual RunFunc invocations (a cached re-run reports 0).
	Total, Simulated, CacheHits, Failed int
	// CacheWriteFailures counts successfully simulated points whose cache
	// write failed (see Record.CacheWarn). The measurements themselves are
	// complete; only the warm-start cache is incomplete.
	CacheWriteFailures int
	// BestPerACs holds, per distinct Atom-Container budget, the successful
	// record with the fewest cycles (ties broken by canonical key), in
	// ascending-AC order.
	BestPerACs []Record
	// Pareto is the front over {TotalCycles, NumACs}: no other successful
	// record is at least as good in both dimensions and better in one.
	Pareto []Record
}

// Result is the outcome of Engine.Execute: all records in job order plus
// the aggregated summary.
type Result struct {
	Records []Record
	Summary Summary
}

// FirstErr returns the error of the first failed record, or nil.
func (r *Result) FirstErr() error {
	for _, rec := range r.Records {
		if !rec.OK() {
			return fmt.Errorf("explore: %s: %s", rec.Point.Key(), rec.Err)
		}
	}
	return nil
}

// Execute expands the spec and runs every job. Results stream to w (may be
// nil) as one JSON object per line, strictly in job order regardless of
// completion order, so output is byte-identical at any worker count. On
// context cancellation the completed prefix is flushed, unfinished jobs are
// marked failed, and ctx's error is returned alongside the partial result.
func (e *Engine) Execute(ctx context.Context, spec Spec, w io.Writer) (*Result, error) {
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	return e.ExecutePoints(ctx, jobs, w)
}

// ExecutePoints runs an already-expanded job list, bypassing Spec.Expand:
// the points must be normalized (Point.Normalized) and deduplicated —
// exactly what Expand, or a search space built from one, produces. Batch
// drivers that already hold canonical points (internal/search proposes from
// a space normalized once at construction) use this to avoid re-normalizing
// every batch; everything else — streaming, ordering, grouping, caching —
// matches Execute.
func (e *Engine) ExecutePoints(ctx context.Context, jobs []Point, w io.Writer) (*Result, error) {
	if e.Run == nil {
		return nil, errors.New("explore: Engine.Run is nil")
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	res := &Result{Records: make([]Record, len(jobs))}
	var (
		mu       sync.Mutex
		done     = make([]bool, len(jobs))
		next     int // first job index not yet streamed
		writeErr error
		enc      *json.Encoder
	)
	if w != nil {
		// One streaming encoder for the whole sweep: Encode(v) emits
		// exactly Marshal(v) plus '\n' while reusing its internal buffer,
		// so large sweeps don't allocate a fresh buffer per record.
		enc = json.NewEncoder(w)
	}
	// finish records job i and streams every contiguous completed record.
	finish := func(i int, rec Record) {
		rec.Area = hwmodel.PointArea(rec.Point.Scheduler, rec.Point.NumACs)
		mu.Lock()
		defer mu.Unlock()
		res.Records[i] = rec
		done[i] = true
		for next < len(jobs) && done[next] {
			if enc != nil && writeErr == nil {
				if err := enc.Encode(&res.Records[next]); err != nil {
					writeErr = fmt.Errorf("explore: write result: %w", err)
				}
			}
			if e.OnRecord != nil {
				e.OnRecord(res.Records[next])
			}
			next++
		}
	}

	// The unit of worker dispatch is a group of job indices. Without RunSet
	// every job is its own group; with RunSet, jobs that differ only in
	// their scheduler form one group and are simulated in a single pass
	// over the shared compiled trace.
	groups := make([][]int, 0, len(jobs))
	if e.RunSet == nil {
		for i := range jobs {
			groups = append(groups, []int{i})
		}
	} else {
		byKey := make(map[string]int, len(jobs))
		for i, p := range jobs {
			p.Scheduler = ""
			k := p.Key()
			gi, ok := byKey[k]
			if !ok {
				gi = len(groups)
				byKey[k] = gi
				groups = append(groups, nil)
			}
			groups[gi] = append(groups[gi], i)
		}
	}
	if workers > len(groups) {
		workers = len(groups)
	}

	idx := make(chan int)
	go func() {
		defer close(idx)
		for gi := range groups {
			select {
			case idx <- gi:
			case <-ctx.Done():
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for gi := range idx {
				if g := groups[gi]; len(g) == 1 || e.RunSet == nil {
					for _, i := range g {
						finish(i, e.runJob(ctx, jobs[i]))
					}
				} else {
					e.runGroup(ctx, jobs, g, finish)
				}
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		for i := range res.Records {
			if !done[i] {
				res.Records[i] = Record{
					Point: jobs[i],
					Area:  hwmodel.PointArea(jobs[i].Scheduler, jobs[i].NumACs),
					Err:   "skipped: " + err.Error(),
				}
			}
		}
		res.summarize()
		return res, err
	}
	res.summarize()
	return res, writeErr
}

// runJob measures one point: cache lookup, guarded simulation, cache fill.
// A panicking RunFunc fails only its own job. A failing cache write does not
// fail the job either — the measurement is sound and is surfaced exactly
// once, as a warning on the record, rather than aborting or re-running the
// point mid-sweep.
func (e *Engine) runJob(ctx context.Context, p Point) (rec Record) {
	rec.Point = p
	if e.Cache != nil {
		if m, ok := e.Cache.Get(p); ok {
			rec.Metrics = m
			rec.Cached = true
			return rec
		}
	}
	if err := ctx.Err(); err != nil {
		rec.Err = "skipped: " + err.Error()
		return rec
	}
	m, err := e.safeRun(ctx, p)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Metrics = m
	if e.Cache != nil {
		if err := e.Cache.Put(p, m); err != nil {
			rec.CacheWarn = err.Error()
		}
	}
	return rec
}

// runGroup measures a scheduler group in one RunSet call. Cache lookups,
// cancellation, and cache fills match runJob point-for-point; only the
// simulation itself is batched. An error (or panic) in RunSet fails every
// point that was in the batch.
func (e *Engine) runGroup(ctx context.Context, jobs []Point, group []int, finish func(int, Record)) {
	pending := make([]int, 0, len(group))
	for _, i := range group {
		p := jobs[i]
		if e.Cache != nil {
			if m, ok := e.Cache.Get(p); ok {
				finish(i, Record{Point: p, Metrics: m, Cached: true})
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return
	}
	if err := ctx.Err(); err != nil {
		for _, i := range pending {
			finish(i, Record{Point: jobs[i], Err: "skipped: " + err.Error()})
		}
		return
	}
	ps := make([]Point, len(pending))
	for k, i := range pending {
		ps[k] = jobs[i]
	}
	ms, err := e.safeRunSet(ctx, ps)
	if err == nil && len(ms) != len(ps) {
		err = fmt.Errorf("explore: RunSet returned %d metrics for %d points", len(ms), len(ps))
	}
	if err != nil {
		for _, i := range pending {
			finish(i, Record{Point: jobs[i], Err: err.Error()})
		}
		return
	}
	for k, i := range pending {
		rec := Record{Point: ps[k], Metrics: ms[k]}
		if e.Cache != nil {
			if err := e.Cache.Put(ps[k], ms[k]); err != nil {
				rec.CacheWarn = err.Error()
			}
		}
		finish(i, rec)
	}
}

func (e *Engine) safeRunSet(ctx context.Context, ps []Point) (ms []Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return e.RunSet(ctx, ps)
}

func (e *Engine) safeRun(ctx context.Context, p Point) (m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return e.Run(ctx, p)
}

// summarize fills Result.Summary from the records.
func (r *Result) summarize() {
	s := &r.Summary
	s.Total = len(r.Records)
	best := make(map[int]Record)
	for _, rec := range r.Records {
		switch {
		case !rec.OK():
			s.Failed++
		case rec.Cached:
			s.CacheHits++
		default:
			s.Simulated++
		}
		if rec.CacheWarn != "" {
			s.CacheWriteFailures++
		}
		if !rec.OK() {
			continue
		}
		if b, ok := best[rec.Point.NumACs]; !ok || rec.TotalCycles < b.TotalCycles ||
			(rec.TotalCycles == b.TotalCycles && rec.Point.Key() < b.Point.Key()) {
			best[rec.Point.NumACs] = rec
		}
	}
	acs := make([]int, 0, len(best))
	for n := range best {
		acs = append(acs, n)
	}
	sort.Ints(acs)
	for _, n := range acs {
		s.BestPerACs = append(s.BestPerACs, best[n])
	}
	// The Pareto front over {cycles, ACs} is the strictly improving chain
	// of the per-AC bests in ascending-AC order.
	var minCycles int64
	for i, rec := range s.BestPerACs {
		if i == 0 || rec.TotalCycles < minCycles {
			s.Pareto = append(s.Pareto, rec)
			minCycles = rec.TotalCycles
		}
	}
}

// SpeedupRow is one line of a speedup-vs-baseline table: a design point and
// how much faster it ran than the baseline scheduler at otherwise identical
// knobs.
type SpeedupRow struct {
	Point   Point
	Speedup float64
}

// SpeedupVsBaseline compares every successful record against the record
// with the same knobs but the baseline scheduler. Rows are ordered by
// canonical key; points without a baseline counterpart (and the baseline
// itself) are omitted.
func SpeedupVsBaseline(records []Record, baseline string) []SpeedupRow {
	base := make(map[string]Record)
	for _, rec := range records {
		if rec.OK() && rec.Point.Scheduler == baseline {
			p := rec.Point
			p.Scheduler = ""
			base[p.Key()] = rec
		}
	}
	var rows []SpeedupRow
	for _, rec := range records {
		if !rec.OK() || rec.Point.Scheduler == baseline {
			continue
		}
		p := rec.Point
		p.Scheduler = ""
		b, ok := base[p.Key()]
		if !ok || rec.TotalCycles == 0 {
			continue
		}
		rows = append(rows, SpeedupRow{Point: rec.Point, Speedup: stats.SpeedupValue(b.TotalCycles, rec.TotalCycles)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Point.Key() < rows[j].Point.Key() })
	return rows
}

// Format renders the sweep summary as text: job counts, the best-per-AC
// table, the Pareto front and (when baseline names a scheduler present in
// the sweep) the speedup table.
func (r *Result) Format(baseline string) string {
	out := fmt.Sprintf("%d jobs: %d simulated, %d cached, %d failed\n",
		r.Summary.Total, r.Summary.Simulated, r.Summary.CacheHits, r.Summary.Failed)
	if n := r.Summary.CacheWriteFailures; n > 0 {
		out += fmt.Sprintf("warning: %d cache writes failed; those points will re-simulate on resume\n", n)
	}
	if len(r.Summary.BestPerACs) > 0 {
		tb := &stats.Table{Header: []string{"#ACs", "best scheduler", "cycles", "stall", "hw share"}}
		for _, rec := range r.Summary.BestPerACs {
			hwShare := 0.0
			if t := rec.SWExecutions + rec.HWExecutions; t > 0 {
				hwShare = 100 * float64(rec.HWExecutions) / float64(t)
			}
			tb.AddRow(fmt.Sprint(rec.Point.NumACs), rec.Point.Scheduler,
				fmt.Sprint(rec.TotalCycles), fmt.Sprint(rec.StallCycles),
				fmt.Sprintf("%.1f%%", hwShare))
		}
		out += "\nBest per Atom-Container budget:\n" + tb.String()
	}
	if len(r.Summary.Pareto) > 0 {
		tb := &stats.Table{Header: []string{"#ACs", "scheduler", "cycles"}}
		for _, rec := range r.Summary.Pareto {
			tb.AddRow(fmt.Sprint(rec.Point.NumACs), rec.Point.Scheduler, fmt.Sprint(rec.TotalCycles))
		}
		out += "\nPareto front {cycles, ACs}:\n" + tb.String()
	}
	if rows := SpeedupVsBaseline(r.Records, baseline); len(rows) > 0 {
		tb := &stats.Table{Header: []string{"scheduler", "#ACs", "frames", "speedup vs " + baseline}}
		for _, row := range rows {
			tb.AddRow(row.Point.Scheduler, fmt.Sprint(row.Point.NumACs),
				fmt.Sprint(row.Point.Frames), fmt.Sprintf("%.2f", row.Speedup))
		}
		out += "\nSpeedups:\n" + tb.String()
	}
	return out
}
