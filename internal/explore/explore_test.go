package explore

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rispp/internal/hwmodel"
)

// fakeRun is a deterministic stand-in for the simulator: cycles depend only
// on the point, with a per-call counter to observe cache behaviour.
func fakeRun(calls *atomic.Int64) RunFunc {
	return func(ctx context.Context, p Point) (Metrics, error) {
		if calls != nil {
			calls.Add(1)
		}
		cycles := int64(1_000_000 / (p.NumACs + 1))
		if p.Scheduler == "HEF" {
			cycles -= 1000
		}
		return Metrics{TotalCycles: cycles, StallCycles: cycles / 10,
			SWExecutions: int64(p.NumACs), HWExecutions: int64(p.Frames)}, nil
	}
}

func testSpec() Spec {
	return Spec{
		Schedulers: []string{"HEF", "ASF", "Molen"},
		ACs:        []int{5, 10, 15, 20},
		Frames:     []int{20},
	}
}

func TestExpandGridOrderAndDefaults(t *testing.T) {
	jobs, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 12 {
		t.Fatalf("got %d jobs, want 12", len(jobs))
	}
	// Schedulers outermost, ACs next: first four jobs are HEF over the ACs.
	for i, n := range []int{5, 10, 15, 20} {
		if jobs[i].Scheduler != "HEF" || jobs[i].NumACs != n {
			t.Errorf("job %d = %+v, want HEF/%d", i, jobs[i], n)
		}
		if !jobs[i].SeedForecasts {
			t.Errorf("job %d: SeedForecasts should default to true", i)
		}
	}
	// An empty grid with explicit points normalizes them.
	jobs, err = Spec{Points: []Point{{NumACs: 7}}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Scheduler != "HEF" || jobs[0].Frames != 140 {
		t.Fatalf("explicit point not normalized: %+v", jobs)
	}
}

func TestExpandDedupes(t *testing.T) {
	s := testSpec()
	s.Points = append(s.Points,
		Point{Scheduler: "HEF", NumACs: 5, Frames: 20, SeedForecasts: true}, // duplicate of grid job 0
		Point{Scheduler: "SJF", NumACs: 9, Frames: 20, SeedForecasts: true}, // new
	)
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 13 {
		t.Fatalf("got %d jobs, want 13 (12 grid + 1 new explicit)", len(jobs))
	}
	if last := jobs[len(jobs)-1]; last.Scheduler != "SJF" || last.NumACs != 9 {
		t.Fatalf("explicit point not appended: %+v", last)
	}
}

func TestExpandRejectsBadPoints(t *testing.T) {
	for _, s := range []Spec{
		{ACs: []int{-1}},
		{Frames: []int{-3}},
		{Motion: []float64{1.5}},
	} {
		if _, err := s.Expand(); err == nil {
			t.Errorf("spec %+v: expected error", s)
		}
	}
}

func TestKeyStableAndHashDistinct(t *testing.T) {
	a := Point{Scheduler: "HEF", NumACs: 10, Frames: 20, SeedForecasts: true}
	b := a
	if a.Key() != b.Key() || a.Hash() != b.Hash() {
		t.Fatal("identical points disagree")
	}
	b.NumACs = 11
	if a.Hash() == b.Hash() {
		t.Fatal("distinct points collide")
	}
	want := `{"scheduler":"HEF","acs":10,"frames":20,"seed":0,"motion":0,"scene_change":0,"seed_forecasts":true,"prefetch":false}`
	if a.Key() != want {
		t.Fatalf("canonical key changed:\n got %s\nwant %s", a.Key(), want)
	}
}

// TestNormalizedIdempotent guards the normalize-once contract the search
// driver relies on: normalizing an already-normalized point must be the
// identity, so points expanded once can be re-submitted (ExecutePoints,
// suggest observations) without drifting.
func TestNormalizedIdempotent(t *testing.T) {
	pts := []Point{
		{},
		{Scheduler: "ASF", NumACs: 7},
		{Scheduler: "Molen", NumACs: 3, Frames: 9, Seed: 4, Motion: 0.5, SceneChange: 2, SeedForecasts: true, Prefetch: true},
	}
	for _, p := range pts {
		once := p.Normalized()
		if twice := once.Normalized(); twice != once {
			t.Errorf("double normalization drifts: %+v -> %+v", once, twice)
		}
	}
	// Expand emits normalized points: re-normalizing its output is a no-op.
	jobs, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range jobs {
		if p.Normalized() != p {
			t.Errorf("Expand emitted non-normalized point %+v", p)
		}
	}
}

// TestRecordsCarryArea: every record of every sweep — simulated, cached,
// failed — carries the hwmodel area estimate, and the JSONL stream exposes
// it as the "area" field.
func TestRecordsCarryArea(t *testing.T) {
	spec := Spec{
		Schedulers: []string{"HEF", "Molen", "software"},
		ACs:        []int{5, 10},
		Frames:     []int{20},
	}
	var buf bytes.Buffer
	eng := &Engine{Run: fakeRun(nil)}
	res, err := eng.Execute(context.Background(), spec, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		want := hwmodel.PointArea(rec.Point.Scheduler, rec.Point.NumACs)
		if rec.Area != want {
			t.Errorf("%s: area = %d, want %d", rec.Point.Key(), rec.Area, want)
		}
		if rec.Point.Scheduler == "software" && rec.Area != 0 {
			t.Errorf("software point priced %d slices", rec.Area)
		}
	}
	if !strings.Contains(buf.String(), `"area":`) {
		t.Fatal("JSONL stream lacks the area field")
	}
	// Area is derived, not cached: a warm re-run reports it identically.
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	eng.Cache = cache
	var cold, warm bytes.Buffer
	if _, err := eng.Execute(context.Background(), spec, &cold); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Execute(context.Background(), spec, &warm); err != nil {
		t.Fatal(err)
	}
	if cold.String() != warm.String() {
		t.Fatal("area broke cold/warm byte parity")
	}
	// Failed records are priced too (area is a property of the point).
	failEng := &Engine{Run: func(ctx context.Context, p Point) (Metrics, error) {
		return Metrics{}, errors.New("boom")
	}}
	res, err = failEng.Execute(context.Background(), Spec{Schedulers: []string{"HEF"}, ACs: []int{4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec := res.Records[0]; rec.OK() || rec.Area != hwmodel.PointArea("HEF", 4) {
		t.Fatalf("failed record area = %d (err %q)", rec.Area, rec.Err)
	}
}

// TestExecutePointsMatchesExecute: running a pre-expanded job list through
// ExecutePoints yields the identical stream and summary as Execute on the
// spec — the batch path the search driver uses to avoid re-normalizing per
// batch.
func TestExecutePointsMatchesExecute(t *testing.T) {
	spec := testSpec()
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var viaSpec, viaPoints bytes.Buffer
	eng := &Engine{Run: fakeRun(nil), Workers: 4}
	rs, err := eng.Execute(context.Background(), spec, &viaSpec)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := eng.ExecutePoints(context.Background(), jobs, &viaPoints)
	if err != nil {
		t.Fatal(err)
	}
	if viaSpec.String() != viaPoints.String() {
		t.Fatal("ExecutePoints stream differs from Execute")
	}
	if rs.Summary.Total != rp.Summary.Total || rs.Summary.Simulated != rp.Summary.Simulated ||
		rs.Summary.Failed != rp.Summary.Failed || len(rs.Summary.Pareto) != len(rp.Summary.Pareto) {
		t.Fatalf("summaries differ: %+v vs %+v", rs.Summary, rp.Summary)
	}
	if _, err := (&Engine{}).ExecutePoints(context.Background(), jobs, nil); err == nil {
		t.Fatal("nil RunFunc accepted")
	}
}

// TestByteIdenticalAcrossWorkerCounts is the acceptance property: the JSONL
// stream is identical at -j 1 and -j 8.
func TestByteIdenticalAcrossWorkerCounts(t *testing.T) {
	var outputs []string
	for _, workers := range []int{1, 8} {
		var buf bytes.Buffer
		eng := &Engine{Run: fakeRun(nil), Workers: workers}
		res, err := eng.Execute(context.Background(), testSpec(), &buf)
		if err != nil {
			t.Fatal(err)
		}
		if res.Summary.Failed != 0 || res.Summary.Total != 12 {
			t.Fatalf("summary %+v", res.Summary)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Fatalf("JSONL differs between -j 1 and -j 8:\n%s\n---\n%s", outputs[0], outputs[1])
	}
	if n := strings.Count(outputs[0], "\n"); n != 12 {
		t.Fatalf("got %d lines, want 12", n)
	}
}

// TestCacheSkipsCompletedPoints is the second acceptance property: a cached
// re-run of an already-completed sweep performs zero new simulations, and
// an enlarged sweep only simulates the new points.
func TestCacheSkipsCompletedPoints(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	eng := &Engine{Run: fakeRun(&calls), Cache: cache}

	var cold bytes.Buffer
	if _, err := eng.Execute(context.Background(), testSpec(), &cold); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 12 {
		t.Fatalf("cold run simulated %d points, want 12", calls.Load())
	}

	calls.Store(0)
	var warm bytes.Buffer
	res, err := eng.Execute(context.Background(), testSpec(), &warm)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 {
		t.Fatalf("warm run simulated %d points, want 0", calls.Load())
	}
	if res.Summary.CacheHits != 12 || res.Summary.Simulated != 0 {
		t.Fatalf("warm summary %+v", res.Summary)
	}
	if cold.String() != warm.String() {
		t.Fatal("cached run not byte-identical to cold run")
	}

	// Enlarging the sweep only simulates the new points.
	grown := testSpec()
	grown.ACs = append(grown.ACs, 25)
	if _, err := eng.Execute(context.Background(), grown, nil); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("enlarged run simulated %d points, want 3 (the new AC per scheduler)", calls.Load())
	}
}

func TestCacheRejectsCorruptAndForeignEntries(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := Point{Scheduler: "HEF", NumACs: 3, Frames: 1}
	if err := cache.Put(p, Metrics{TotalCycles: 42}); err != nil {
		t.Fatal(err)
	}
	if m, ok := cache.Get(p); !ok || m.TotalCycles != 42 {
		t.Fatalf("round trip failed: %v %v", m, ok)
	}
	q := p
	q.NumACs = 4
	if _, ok := cache.Get(q); ok {
		t.Fatal("hit for absent point")
	}
	cache.WriteOnly = true
	if _, ok := cache.Get(p); ok {
		t.Fatal("WriteOnly cache returned a hit")
	}
}

func TestPanicRecoveryIsolatesJob(t *testing.T) {
	eng := &Engine{
		Workers: 4,
		Run: func(ctx context.Context, p Point) (Metrics, error) {
			if p.NumACs == 10 {
				panic("boom")
			}
			return Metrics{TotalCycles: int64(p.NumACs)}, nil
		},
	}
	res, err := eng.Execute(context.Background(), testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Failed != 3 {
		t.Fatalf("failed = %d, want 3 (one panicking AC value × 3 schedulers)", res.Summary.Failed)
	}
	for _, rec := range res.Records {
		if rec.Point.NumACs == 10 {
			if !strings.Contains(rec.Err, "panic: boom") {
				t.Fatalf("panic not captured: %q", rec.Err)
			}
		} else if !rec.OK() {
			t.Fatalf("healthy job failed: %+v", rec)
		}
	}
	if res.FirstErr() == nil {
		t.Fatal("FirstErr lost the failure")
	}
}

func TestCancellationStopsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	eng := &Engine{
		Workers: 2,
		Run: func(ctx context.Context, p Point) (Metrics, error) {
			started <- struct{}{}
			<-ctx.Done()
			return Metrics{}, ctx.Err()
		},
	}
	go func() {
		<-started
		cancel()
	}()
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		res, err = eng.Execute(ctx, testSpec(), nil)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Execute did not return after cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Records) != 12 {
		t.Fatalf("partial result missing: %+v", res)
	}
	for _, rec := range res.Records {
		if rec.OK() {
			t.Fatalf("job reported success after cancellation: %+v", rec)
		}
	}
}

func TestSummaryBestParetoSpeedups(t *testing.T) {
	eng := &Engine{Run: fakeRun(nil), Workers: 3}
	res, err := eng.Execute(context.Background(), testSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Summary.BestPerACs) != 4 {
		t.Fatalf("best-per-ACs has %d rows, want 4", len(res.Summary.BestPerACs))
	}
	for i, rec := range res.Summary.BestPerACs {
		// HEF is always fastest in the fake model.
		if rec.Point.Scheduler != "HEF" {
			t.Errorf("best[%d] scheduler = %s, want HEF", i, rec.Point.Scheduler)
		}
		if i > 0 && rec.Point.NumACs <= res.Summary.BestPerACs[i-1].Point.NumACs {
			t.Error("best-per-ACs not ascending")
		}
	}
	// Cycles strictly decrease with ACs in the fake model, so the Pareto
	// front is the whole best-per-ACs set.
	if len(res.Summary.Pareto) != 4 {
		t.Fatalf("pareto has %d rows, want 4", len(res.Summary.Pareto))
	}
	rows := SpeedupVsBaseline(res.Records, "Molen")
	if len(rows) != 8 {
		t.Fatalf("speedups has %d rows, want 8 (HEF+ASF × 4 ACs)", len(rows))
	}
	for _, row := range rows {
		switch row.Point.Scheduler {
		case "HEF":
			if row.Speedup <= 1 {
				t.Errorf("HEF speedup %f, want > 1", row.Speedup)
			}
		case "ASF":
			if row.Speedup != 1 {
				t.Errorf("ASF speedup %f, want 1", row.Speedup)
			}
		}
	}
	txt := res.Format("Molen")
	for _, want := range []string{"12 jobs", "Best per Atom-Container budget", "Pareto front", "Speedups"} {
		if !strings.Contains(txt, want) {
			t.Errorf("Format output missing %q:\n%s", want, txt)
		}
	}
}

func TestParetoDropsDominatedPoints(t *testing.T) {
	res := &Result{Records: []Record{
		{Point: Point{Scheduler: "A", NumACs: 5}, Metrics: Metrics{TotalCycles: 100}},
		{Point: Point{Scheduler: "A", NumACs: 10}, Metrics: Metrics{TotalCycles: 100}}, // dominated: more ACs, same cycles
		{Point: Point{Scheduler: "A", NumACs: 15}, Metrics: Metrics{TotalCycles: 40}},
	}}
	res.summarize()
	if len(res.Summary.Pareto) != 2 {
		t.Fatalf("pareto = %+v, want the 5-AC and 15-AC points", res.Summary.Pareto)
	}
	if res.Summary.Pareto[0].Point.NumACs != 5 || res.Summary.Pareto[1].Point.NumACs != 15 {
		t.Fatalf("pareto = %+v", res.Summary.Pareto)
	}
}

func TestEngineRequiresRunFunc(t *testing.T) {
	if _, err := (&Engine{}).Execute(context.Background(), testSpec(), nil); err == nil {
		t.Fatal("nil RunFunc accepted")
	}
}

// TestOnRecordStreamOrder: the streaming hook must fire once per record,
// strictly in job order, at any worker count, and see cache-hit marks.
func TestOnRecordStreamOrder(t *testing.T) {
	spec := testSpec()
	jobs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		var seen []Point
		var cached int
		eng := &Engine{
			Run:     fakeRun(nil),
			Workers: workers,
			OnRecord: func(rec Record) {
				seen = append(seen, rec.Point)
				if rec.Cached {
					cached++
				}
			},
		}
		var buf bytes.Buffer
		if _, err := eng.Execute(context.Background(), spec, &buf); err != nil {
			t.Fatal(err)
		}
		if len(seen) != len(jobs) {
			t.Fatalf("workers=%d: hook fired %d times, want %d", workers, len(seen), len(jobs))
		}
		for i := range jobs {
			if seen[i] != jobs[i] {
				t.Fatalf("workers=%d: record %d is %v, want %v (out of order)", workers, i, seen[i], jobs[i])
			}
		}
		if cached != 0 {
			t.Errorf("workers=%d: %d cache hits without a cache", workers, cached)
		}
		// The hook fires where the stream is written: the number of JSONL
		// lines must match the number of hook invocations.
		if lines := bytes.Count(buf.Bytes(), []byte("\n")); lines != len(seen) {
			t.Errorf("workers=%d: %d lines vs %d hook calls", workers, lines, len(seen))
		}
	}
}

// TestOnRecordSeesCacheHits: records answered by the cache are marked
// Cached when they reach the hook.
func TestOnRecordSeesCacheHits(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec()
	eng := &Engine{Run: fakeRun(nil), Cache: cache}
	if _, err := eng.Execute(context.Background(), spec, nil); err != nil {
		t.Fatal(err)
	}
	var cached int
	eng.OnRecord = func(rec Record) {
		if rec.Cached {
			cached++
		}
	}
	if _, err := eng.Execute(context.Background(), spec, nil); err != nil {
		t.Fatal(err)
	}
	jobs, _ := spec.Expand()
	if cached != len(jobs) {
		t.Errorf("hook saw %d cache hits on a warm re-run, want %d", cached, len(jobs))
	}
}

// TestCacheWriteFailureWarnsOnce: a sweep whose cache directory breaks
// mid-flight must complete normally — every point simulated exactly once,
// no sweep-level error — and surface the failure as a per-record warning
// plus a summary count, not by aborting or re-running points.
func TestCacheWriteFailureWarnsOnce(t *testing.T) {
	dir := t.TempDir() + "/cache"
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the cache directory with a regular file: every Put now fails
	// at CreateTemp, even when the test runs as root.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	eng := &Engine{Run: fakeRun(&calls), Cache: cache}
	var buf bytes.Buffer
	res, err := eng.Execute(context.Background(), testSpec(), &buf)
	if err != nil {
		t.Fatalf("cache write failure escalated to a sweep error: %v", err)
	}
	if calls.Load() != 12 {
		t.Fatalf("simulated %d points, want 12 (each exactly once)", calls.Load())
	}
	if res.Summary.Failed != 0 || res.Summary.Simulated != 12 {
		t.Fatalf("summary %+v", res.Summary)
	}
	if res.Summary.CacheWriteFailures != 12 {
		t.Fatalf("CacheWriteFailures = %d, want 12", res.Summary.CacheWriteFailures)
	}
	for i, rec := range res.Records {
		if !rec.OK() {
			t.Fatalf("record %d failed: %s", i, rec.Err)
		}
		if rec.CacheWarn == "" {
			t.Fatalf("record %d carries no cache warning", i)
		}
	}
	// The warning stays out of the JSONL stream (cold/warm byte-identity)
	// but shows up in the human-readable summary.
	if strings.Contains(buf.String(), "cache") {
		t.Fatal("cache warning leaked into the JSONL stream")
	}
	if !strings.Contains(res.Format(""), "12 cache writes failed") {
		t.Fatalf("Format does not surface the cache warning:\n%s", res.Format(""))
	}
}
