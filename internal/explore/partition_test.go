package explore_test

// The distributed sweep fabric relies on one property of this package: any
// partition of an expanded spec, with each part executed by its own engine
// and the lines merged back in canonical order, reproduces the unsharded
// JSONL stream byte-for-byte — under any mix of cache hits and misses.
// These tests pin that property directly against random hash-range
// partitions, independent of the fabric's HTTP plumbing.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/fabric"
)

func partitionRun(ctx context.Context, p explore.Point) (explore.Metrics, error) {
	h := int64(p.Hash64() % 1_000_000)
	if p.NumACs == 13 {
		return explore.Metrics{}, fmt.Errorf("unlucky budget %d", p.NumACs)
	}
	return explore.Metrics{
		TotalCycles:  2_000_000 + h,
		StallCycles:  h % 7777,
		SWExecutions: int64(p.Frames),
		HWExecutions: int64(p.NumACs) * 100,
	}, nil
}

func partitionPoints(t *testing.T) []explore.Point {
	t.Helper()
	pts, err := explore.Spec{
		Schedulers:   []string{"HEF", "Molen", "SJF", "FSFR"},
		ACs:          []int{4, 8, 13, 16},
		Frames:       []int{5, 10},
		SceneChanges: []int{0, 3},
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return pts
}

// stream executes the points on a fresh engine and returns the JSONL bytes.
func stream(t *testing.T, pts []explore.Point, cache explore.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	eng := &explore.Engine{Run: partitionRun, Workers: 3}
	if cache != nil {
		eng.Cache = cache
	}
	if _, err := eng.ExecutePoints(context.Background(), pts, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// shardAndMerge partitions pts across the worker ids by rendezvous hash,
// streams every shard independently (in canonical sub-order, as a fabric
// worker would), then reassembles the full stream in canonical order.
func shardAndMerge(t *testing.T, pts []explore.Point, ids []string, cacheFor func(id string) explore.Store) []byte {
	t.Helper()
	shards := make(map[string][]explore.Point)
	for _, p := range pts {
		id := fabric.Owner(p.Hash64(), ids)
		shards[id] = append(shards[id], p)
	}
	lines := make(map[string][][]byte)
	for id, shard := range shards {
		var cache explore.Store
		if cacheFor != nil {
			cache = cacheFor(id)
		}
		lines[id] = bytes.SplitAfter(stream(t, shard, cache), []byte("\n"))
	}
	var merged bytes.Buffer
	next := make(map[string]int)
	for _, p := range pts {
		id := fabric.Owner(p.Hash64(), ids)
		merged.Write(lines[id][next[id]])
		next[id]++
	}
	return merged.Bytes()
}

func TestPartitionMergeByteIdentical(t *testing.T) {
	pts := partitionPoints(t)
	want := stream(t, pts, nil)

	rng := rand.New(rand.NewSource(8264))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("worker-%d-%d", trial, rng.Intn(1000))
		}
		got := shardAndMerge(t, pts, ids, nil)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (%d workers %v): merged stream differs from unsharded stream", trial, n, ids)
		}
	}
}

// TestPartitionMergeWithCacheMixes re-runs the property with every worker
// holding its own cache pre-warmed with a random subset of the points: the
// hit/miss mix varies per worker and per trial, the bytes must not.
func TestPartitionMergeWithCacheMixes(t *testing.T) {
	pts := partitionPoints(t)
	want := stream(t, pts, nil)

	rng := rand.New(rand.NewSource(2008))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(4)
		ids := make([]string, n)
		caches := make(map[string]*explore.Cache, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("w%d", i)
			c, err := explore.OpenCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			// Warm a random subset — including points this worker does not
			// own, and none of the failing ones (failures are never cached).
			for _, p := range pts {
				if rng.Intn(2) == 0 {
					continue
				}
				if m, err := partitionRun(context.Background(), p); err == nil {
					if err := c.Put(p, m); err != nil {
						t.Fatal(err)
					}
				}
			}
			caches[ids[i]] = c
		}
		got := shardAndMerge(t, pts, ids, func(id string) explore.Store { return caches[id] })
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (%d workers): cache-mixed merged stream differs from unsharded stream", trial, n)
		}
	}
}

// TestPartitionMergeSharedCache is the fleet configuration: every shard
// consults one shared store (the coordinator cache tier), so later shards
// may hit entries written moments ago by earlier ones.
func TestPartitionMergeSharedCache(t *testing.T) {
	pts := partitionPoints(t)
	want := stream(t, pts, nil)

	shared, err := explore.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"a", "b", "c"}
	cold := shardAndMerge(t, pts, ids, func(string) explore.Store { return shared })
	if !bytes.Equal(cold, want) {
		t.Fatal("cold shared-cache merged stream differs from unsharded stream")
	}
	warm := shardAndMerge(t, pts, ids, func(string) explore.Store { return shared })
	if !bytes.Equal(warm, want) {
		t.Fatal("warm shared-cache merged stream differs from unsharded stream")
	}
}
