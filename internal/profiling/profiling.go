// Package profiling wires the standard Go profilers into the repo's
// command-line tools: a -cpuprofile/-memprofile/-trace flag triple and a
// Start/stop pair that brackets the measured work, so hot-path regressions
// (see EXPERIMENTS.md, "Hot-path optimisation") can be diagnosed with
// `go tool pprof` / `go tool trace` against the real workloads instead of
// micro-benchmarks only.
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Config holds the profiling destinations of one command. The zero value
// profiles nothing.
type Config struct {
	CPUProfile string // pprof CPU profile
	MemProfile string // pprof allocation profile, written at stop
	Trace      string // runtime execution trace
}

// AddFlags registers the conventional flag triple on fs.
func (c *Config) AddFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a CPU profile to `file`")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write an allocation profile to `file` on exit")
	fs.StringVar(&c.Trace, "trace", "", "write a runtime execution trace to `file`")
}

// Start begins every requested profile and returns a stop function that
// finishes them; the caller must invoke stop before exiting (and before
// any os.Exit) or the profiles are truncated. Start is idempotent in the
// zero-value case: no files are touched and stop is a no-op.
func (c *Config) Start() (stop func() error, err error) {
	var (
		cpuFile   *os.File
		traceFile *os.File
	)
	cleanup := func() {
		if traceFile != nil {
			trace.Stop()
			traceFile.Close()
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
	}
	if c.CPUProfile != "" {
		cpuFile, err = os.Create(c.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			cpuFile = nil
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	if c.Trace != "" {
		traceFile, err = os.Create(c.Trace)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := trace.Start(traceFile); err != nil {
			traceFile.Close()
			traceFile = nil
			cleanup()
			return nil, fmt.Errorf("profiling: %w", err)
		}
	}
	memProfile := c.MemProfile
	return func() error {
		var firstErr error
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: %w", err)
			}
		}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: %w", err)
			}
		}
		if memProfile != "" {
			f, err := os.Create(memProfile)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("profiling: %w", err)
				}
				return firstErr
			}
			// Materialize unreachable objects so the profile reflects
			// steady-state live heap plus cumulative allocation counts.
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: %w", err)
			}
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("profiling: %w", err)
			}
		}
		return firstErr
	}, nil
}
