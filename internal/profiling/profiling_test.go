package profiling

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

func TestZeroValueIsNoop(t *testing.T) {
	var c Config
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	c := Config{
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
		Trace:      filepath.Join(dir, "trace.out"),
	}
	stop, err := c.Start()
	if err != nil {
		t.Fatal(err)
	}
	// Some allocation work so the profiles have content.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{c.CPUProfile, c.MemProfile, c.Trace} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty profile", p)
		}
	}
}

func TestAddFlags(t *testing.T) {
	var c Config
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c.AddFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", "a", "-memprofile", "b", "-trace", "c"}); err != nil {
		t.Fatal(err)
	}
	if c.CPUProfile != "a" || c.MemProfile != "b" || c.Trace != "c" {
		t.Errorf("parsed %+v", c)
	}
}

func TestStartFailsOnBadPath(t *testing.T) {
	c := Config{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof")}
	if _, err := c.Start(); err == nil {
		t.Error("Start succeeded with an uncreatable CPU profile path")
	}
}
