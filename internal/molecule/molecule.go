// Package molecule implements the formal Molecule assembly model of the
// RISPP run-time system (Bauer et al., DATE 2008, Section 4.1): the data
// structure (ℕⁿ, ∪, ∩, ≤) over Atom-count vectors.
//
// A Vector m = (m_1, …, m_n) gives the desired number of instances of each
// Atom type needed to implement a Molecule. The package provides the
// Meta-Molecule operators ∪ (element-wise max, Sup), ∩ (element-wise min,
// Inf), the partial order ≤ (Leq), the determinant |m| (total Atom count),
// and the monus operator ⊖ (Sub) that yields the Atoms additionally required
// on top of an already available set.
//
// (ℕⁿ, ∪) and (ℕⁿ, ∩) are Abelian semi-groups and (ℕⁿ, ≤) is a complete
// lattice; the laws are enforced by property-based tests.
package molecule

import (
	"fmt"
	"strings"
)

// Vector is an Atom-count vector in ℕⁿ: element i is the number of instances
// of Atom type i. The zero-length Vector is a valid neutral element for
// operations between equal-length vectors of length 0 only; all binary
// operators require both operands to have the same length.
type Vector []int

// New returns a zero Vector of dimension n (the neutral element of ∪).
func New(n int) Vector { return make(Vector, n) }

// Of builds a Vector from the given counts. It panics if any count is
// negative, since Molecules live in ℕⁿ.
func Of(counts ...int) Vector {
	v := make(Vector, len(counts))
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("molecule: negative atom count %d at index %d", c, i))
		}
		v[i] = c
	}
	return v
}

// Unit returns the Unit-Molecule u_i of dimension n: a single instance of
// Atom type i and nothing else.
func Unit(i, n int) Vector {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("molecule: unit index %d out of range [0,%d)", i, n))
	}
	u := make(Vector, n)
	u[i] = 1
	return u
}

// Len returns the dimension n of the vector.
func (m Vector) Len() int { return len(m) }

// Clone returns an independent copy of m.
func (m Vector) Clone() Vector {
	c := make(Vector, len(m))
	copy(c, m)
	return c
}

// IsZero reports whether m is the neutral element (0, …, 0) of ∪.
func (m Vector) IsZero() bool {
	for _, v := range m {
		if v != 0 {
			return false
		}
	}
	return true
}

// Valid reports whether all counts are non-negative, i.e. m ∈ ℕⁿ.
func (m Vector) Valid() bool {
	for _, v := range m {
		if v < 0 {
			return false
		}
	}
	return true
}

func checkDim(a, b Vector, op string) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("molecule: %s on vectors of different dimension (%d vs %d)", op, len(a), len(b)))
	}
}

// Sup returns the Meta-Molecule m ∪ o with p_i = max(m_i, o_i): the Atoms
// required to implement both m and o.
func (m Vector) Sup(o Vector) Vector {
	checkDim(m, o, "sup")
	p := make(Vector, len(m))
	for i := range m {
		p[i] = max(m[i], o[i])
	}
	return p
}

// Inf returns m ∩ o with p_i = min(m_i, o_i): the Atoms collectively needed
// for both m and o.
func (m Vector) Inf(o Vector) Vector {
	checkDim(m, o, "inf")
	p := make(Vector, len(m))
	for i := range m {
		p[i] = min(m[i], o[i])
	}
	return p
}

// Leq reports whether m ≤ o, i.e. ∀i: m_i ≤ o_i. This is the partial order
// of the complete lattice (ℕⁿ, ≤).
func (m Vector) Leq(o Vector) bool {
	checkDim(m, o, "leq")
	for i := range m {
		if m[i] > o[i] {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality.
func (m Vector) Equal(o Vector) bool {
	checkDim(m, o, "equal")
	for i := range m {
		if m[i] != o[i] {
			return false
		}
	}
	return true
}

// Determinant returns |m| = Σ m_i, the total number of Atoms required to
// implement the Molecule.
func (m Vector) Determinant() int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// Sub returns the monus o ⊖ m … precisely the paper's m ⊖ o with the
// receiver as the already available Atoms: p_i = o_i - m_i if positive,
// else 0. The result is the minimum set of Atoms that additionally have to
// be loaded to implement o, assuming the Atoms in m are already available.
func (m Vector) Sub(o Vector) Vector {
	checkDim(m, o, "sub")
	p := make(Vector, len(m))
	for i := range m {
		if d := o[i] - m[i]; d > 0 {
			p[i] = d
		}
	}
	return p
}

// Add returns the element-wise sum m + o. It is used to account Atom loads:
// loading the Unit-Molecule u_i onto an availability vector a yields a + u_i.
func (m Vector) Add(o Vector) Vector {
	checkDim(m, o, "add")
	p := make(Vector, len(m))
	for i := range m {
		p[i] = m[i] + o[i]
	}
	return p
}

// Zero sets every count to 0 in place, recycling the backing storage — the
// arena-reuse counterpart of New.
func (m Vector) Zero() {
	for i := range m {
		m[i] = 0
	}
}

// CopyFrom overwrites m with o in place. Both vectors must have the same
// dimension.
func (m Vector) CopyFrom(o Vector) {
	checkDim(m, o, "copy")
	copy(m, o)
}

// SupInPlace sets m = m ∪ o without allocating.
func (m Vector) SupInPlace(o Vector) {
	checkDim(m, o, "sup")
	for i := range m {
		if o[i] > m[i] {
			m[i] = o[i]
		}
	}
}

// SupDet returns |m ∪ o| without materializing the supremum — the container
// cost check of the Molecule selection, allocation-free.
func (m Vector) SupDet(o Vector) int {
	checkDim(m, o, "sup")
	s := 0
	for i := range m {
		s += max(m[i], o[i])
	}
	return s
}

// SubDet returns |m ⊖ o| (with the receiver as the already available Atoms,
// mirroring Sub): the number of Atoms additionally required to implement o,
// without materializing the monus.
func (m Vector) SubDet(o Vector) int {
	checkDim(m, o, "sub")
	s := 0
	for i := range m {
		if d := o[i] - m[i]; d > 0 {
			s += d
		}
	}
	return s
}

// SupSet returns sup(M) = ∪_{m ∈ M} m, the Meta-Molecule declaring all Atoms
// needed to implement any Molecule in set. dim is required so the supremum
// of the empty set is the neutral element (0, …, 0).
func SupSet(dim int, set ...Vector) Vector {
	s := New(dim)
	for _, m := range set {
		s = s.Sup(m)
	}
	return s
}

// InfSet returns inf(M) = ∩_{m ∈ M} m. The infimum of the empty set is the
// neutral element of ∩, which in ℕⁿ is unbounded; InfSet panics on an empty
// set instead of materializing (maxInt, …, maxInt).
func InfSet(set ...Vector) Vector {
	if len(set) == 0 {
		panic("molecule: InfSet of empty set")
	}
	s := set[0].Clone()
	for _, m := range set[1:] {
		s = s.Inf(m)
	}
	return s
}

// String renders the vector in the paper's tuple notation, e.g. "(2, 1, 0)".
func (m Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range m {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Units decomposes m into the multiset of Unit-Molecule indices it consists
// of, in ascending Atom-type order: Atom type i appears m_i times. This is
// the multiset a valid scheduling function SF must enumerate (condition (2)
// of the paper).
func (m Vector) Units() []int {
	units := make([]int, 0, m.Determinant())
	for i, c := range m {
		for j := 0; j < c; j++ {
			units = append(units, i)
		}
	}
	return units
}
