package molecule

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOf(t *testing.T) {
	v := Of(1, 2, 3)
	if v.Len() != 3 || v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Of(1,2,3) = %v", v)
	}
}

func TestOfPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Of(-1) did not panic")
		}
	}()
	Of(-1)
}

func TestNewIsZero(t *testing.T) {
	v := New(5)
	if !v.IsZero() {
		t.Fatalf("New(5) = %v, want zero", v)
	}
	if v.Len() != 5 {
		t.Fatalf("New(5).Len() = %d", v.Len())
	}
}

func TestUnit(t *testing.T) {
	u := Unit(2, 4)
	want := Of(0, 0, 1, 0)
	if !u.Equal(want) {
		t.Fatalf("Unit(2,4) = %v, want %v", u, want)
	}
	if u.Determinant() != 1 {
		t.Fatalf("Unit determinant = %d, want 1", u.Determinant())
	}
}

func TestUnitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unit(4,4) did not panic")
		}
	}()
	Unit(4, 4)
}

func TestSupPaperExample(t *testing.T) {
	// Figure 5 caption: sup({m1, m2}) = m1 ∪ m2 for two-Atom-type Molecules.
	m := Of(3, 1)
	o := Of(1, 2)
	got := m.Sup(o)
	want := Of(3, 2)
	if !got.Equal(want) {
		t.Fatalf("%v ∪ %v = %v, want %v", m, o, got, want)
	}
}

func TestInf(t *testing.T) {
	got := Of(3, 1, 2).Inf(Of(1, 2, 2))
	want := Of(1, 1, 2)
	if !got.Equal(want) {
		t.Fatalf("Inf = %v, want %v", got, want)
	}
}

func TestLeq(t *testing.T) {
	cases := []struct {
		a, b Vector
		want bool
	}{
		{Of(1, 1), Of(2, 2), true},
		{Of(2, 2), Of(2, 2), true},
		{Of(2, 3), Of(2, 2), false},
		{Of(0, 0), Of(0, 0), true},
		// Incomparable pair from the paper: m4=(1,3) vs m2=(2,2).
		{Of(1, 3), Of(2, 2), false},
		{Of(2, 2), Of(1, 3), false},
	}
	for _, c := range cases {
		if got := c.a.Leq(c.b); got != c.want {
			t.Errorf("%v ≤ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDeterminant(t *testing.T) {
	if d := Of(2, 2).Determinant(); d != 4 {
		t.Fatalf("|(2,2)| = %d, want 4", d)
	}
	if d := New(7).Determinant(); d != 0 {
		t.Fatalf("|0| = %d, want 0", d)
	}
}

func TestSubMonus(t *testing.T) {
	// a ⊖ m: Atoms additionally required to offer m given a is available.
	a := Of(0, 3)
	m4 := Of(1, 3)
	m2 := Of(2, 2)
	if got := a.Sub(m4); !got.Equal(Of(1, 0)) {
		t.Fatalf("(0,3) ⊖ (1,3) = %v, want (1, 0)", got)
	}
	if got := a.Sub(m2); !got.Equal(Of(2, 0)) {
		t.Fatalf("(0,3) ⊖ (2,2) = %v, want (2, 0)", got)
	}
	// The paper's observation: |a⊖m4| ≤ |a⊖m2| for a=(0,3), so m4 can be
	// the cheaper upgrade even though it is slower when starting from zero.
	if a.Sub(m4).Determinant() > a.Sub(m2).Determinant() {
		t.Fatal("paper example violated: |a⊖m4| > |a⊖m2|")
	}
}

func TestAdd(t *testing.T) {
	got := Of(1, 2).Add(Of(3, 0))
	if !got.Equal(Of(4, 2)) {
		t.Fatalf("Add = %v", got)
	}
}

func TestSupSet(t *testing.T) {
	got := SupSet(2, Of(3, 1), Of(1, 2), Of(2, 2))
	if !got.Equal(Of(3, 2)) {
		t.Fatalf("SupSet = %v, want (3, 2)", got)
	}
	if got := SupSet(3); !got.Equal(New(3)) {
		t.Fatalf("SupSet of empty set = %v, want zero", got)
	}
}

func TestInfSet(t *testing.T) {
	got := InfSet(Of(3, 1), Of(1, 2), Of(2, 2))
	if !got.Equal(Of(1, 1)) {
		t.Fatalf("InfSet = %v, want (1, 1)", got)
	}
}

func TestInfSetEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InfSet() did not panic")
		}
	}()
	InfSet()
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sup with mismatched dims did not panic")
		}
	}()
	Of(1, 2).Sup(Of(1, 2, 3))
}

func TestString(t *testing.T) {
	if s := Of(2, 0, 1).String(); s != "(2, 0, 1)" {
		t.Fatalf("String = %q", s)
	}
	if s := New(0).String(); s != "()" {
		t.Fatalf("String = %q", s)
	}
}

func TestUnits(t *testing.T) {
	got := Of(2, 0, 1).Units()
	want := []int{0, 0, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Units = %v, want %v", got, want)
	}
	if len(New(3).Units()) != 0 {
		t.Fatal("Units of zero vector not empty")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Of(1, 2)
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

// --- Property-based tests: the algebraic laws claimed in Section 4.1. ---

// genVec draws a small random vector of the given dimension.
func genVec(r *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = r.Intn(6)
	}
	return v
}

// triple is a quick.Generator producing three same-dimension vectors.
type triple struct{ A, B, C Vector }

func (triple) Generate(r *rand.Rand, _ int) reflect.Value {
	dim := 1 + r.Intn(8)
	return reflect.ValueOf(triple{genVec(r, dim), genVec(r, dim), genVec(r, dim)})
}

func quickCheck(t *testing.T, name string, f any) {
	t.Helper()
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestSupSemigroupLaws(t *testing.T) {
	quickCheck(t, "sup commutative", func(tr triple) bool {
		return tr.A.Sup(tr.B).Equal(tr.B.Sup(tr.A))
	})
	quickCheck(t, "sup associative", func(tr triple) bool {
		return tr.A.Sup(tr.B).Sup(tr.C).Equal(tr.A.Sup(tr.B.Sup(tr.C)))
	})
	quickCheck(t, "sup neutral element", func(tr triple) bool {
		return tr.A.Sup(New(tr.A.Len())).Equal(tr.A)
	})
	quickCheck(t, "sup idempotent", func(tr triple) bool {
		return tr.A.Sup(tr.A).Equal(tr.A)
	})
}

func TestInfSemigroupLaws(t *testing.T) {
	quickCheck(t, "inf commutative", func(tr triple) bool {
		return tr.A.Inf(tr.B).Equal(tr.B.Inf(tr.A))
	})
	quickCheck(t, "inf associative", func(tr triple) bool {
		return tr.A.Inf(tr.B).Inf(tr.C).Equal(tr.A.Inf(tr.B.Inf(tr.C)))
	})
	quickCheck(t, "inf idempotent", func(tr triple) bool {
		return tr.A.Inf(tr.A).Equal(tr.A)
	})
}

func TestLatticeLaws(t *testing.T) {
	quickCheck(t, "absorption sup", func(tr triple) bool {
		return tr.A.Sup(tr.A.Inf(tr.B)).Equal(tr.A)
	})
	quickCheck(t, "absorption inf", func(tr triple) bool {
		return tr.A.Inf(tr.A.Sup(tr.B)).Equal(tr.A)
	})
	quickCheck(t, "sup is least upper bound", func(tr triple) bool {
		s := tr.A.Sup(tr.B)
		if !tr.A.Leq(s) || !tr.B.Leq(s) {
			return false
		}
		// Any other upper bound dominates s.
		u := s.Sup(tr.C) // u ≥ A, B by construction
		return s.Leq(u)
	})
	quickCheck(t, "inf is greatest lower bound", func(tr triple) bool {
		i := tr.A.Inf(tr.B)
		if !i.Leq(tr.A) || !i.Leq(tr.B) {
			return false
		}
		l := i.Inf(tr.C) // l ≤ A, B by construction
		return l.Leq(i)
	})
}

func TestOrderLaws(t *testing.T) {
	quickCheck(t, "reflexive", func(tr triple) bool {
		return tr.A.Leq(tr.A)
	})
	quickCheck(t, "antisymmetric", func(tr triple) bool {
		if tr.A.Leq(tr.B) && tr.B.Leq(tr.A) {
			return tr.A.Equal(tr.B)
		}
		return true
	})
	quickCheck(t, "transitive", func(tr triple) bool {
		a, b, c := tr.A, tr.A.Sup(tr.B), tr.A.Sup(tr.B).Sup(tr.C)
		return a.Leq(b) && b.Leq(c) && a.Leq(c)
	})
	quickCheck(t, "leq iff sup is rhs", func(tr triple) bool {
		return tr.A.Leq(tr.B) == tr.A.Sup(tr.B).Equal(tr.B)
	})
}

func TestMonusLaws(t *testing.T) {
	quickCheck(t, "monus yields valid vector", func(tr triple) bool {
		return tr.A.Sub(tr.B).Valid()
	})
	quickCheck(t, "a + (a ⊖ b) ≥ b", func(tr triple) bool {
		return tr.B.Leq(tr.A.Add(tr.A.Sub(tr.B)))
	})
	quickCheck(t, "monus zero iff b ≤ a", func(tr triple) bool {
		return tr.A.Sub(tr.B).IsZero() == tr.B.Leq(tr.A)
	})
	quickCheck(t, "monus is minimal", func(tr triple) bool {
		// Removing any unit from a non-zero monus no longer covers b.
		d := tr.A.Sub(tr.B)
		for i, c := range d {
			if c == 0 {
				continue
			}
			smaller := d.Clone()
			smaller[i]--
			if tr.B.Leq(tr.A.Add(smaller)) {
				return false
			}
		}
		return true
	})
	quickCheck(t, "determinant additive under add", func(tr triple) bool {
		return tr.A.Add(tr.B).Determinant() == tr.A.Determinant()+tr.B.Determinant()
	})
}

func TestUnitsRoundTrip(t *testing.T) {
	quickCheck(t, "units reassemble", func(tr triple) bool {
		v := New(tr.A.Len())
		for _, i := range tr.A.Units() {
			v = v.Add(Unit(i, tr.A.Len()))
		}
		return v.Equal(tr.A)
	})
}
