package molecule_test

import (
	"fmt"

	"rispp/internal/molecule"
)

// The Figure 4 Molecules: m1 ≤ m2 ≤ m3 form an upgrade chain; the monus
// operator yields the Atoms each upgrade step still has to load.
func Example() {
	m1 := molecule.Of(1, 2)
	m2 := molecule.Of(2, 2)
	m3 := molecule.Of(3, 3)

	fmt.Println("m1 ≤ m2:", m1.Leq(m2))
	fmt.Println("sup(m1,m2,m3):", molecule.SupSet(2, m1, m2, m3))
	fmt.Println("|m3|:", m3.Determinant())

	available := molecule.Of(0, 3)
	fmt.Println("still to load for m2:", available.Sub(m2))
	// Output:
	// m1 ≤ m2: true
	// sup(m1,m2,m3): (3, 3)
	// |m3|: 6
	// still to load for m2: (2, 0)
}

func ExampleVector_Sup() {
	a := molecule.Of(3, 1, 0)
	b := molecule.Of(1, 2, 2)
	fmt.Println(a.Sup(b))
	// Output: (3, 2, 2)
}

func ExampleVector_Units() {
	m := molecule.Of(2, 0, 1)
	fmt.Println(m.Units())
	// Output: [0 0 2]
}
