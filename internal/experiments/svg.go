package experiments

import (
	"fmt"

	"rispp/internal/isa"
	"rispp/internal/plot"
	"rispp/internal/sched"
)

// SVG renders the Figure 7 sweep as a line chart.
func (r *Fig7Result) SVG() string {
	var series []plot.Series
	for _, name := range sched.Names {
		s := plot.Series{Name: name}
		for _, n := range r.ACs {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, float64(r.Cycles[name][n])/1e6)
		}
		series = append(series, s)
	}
	return plot.Line(series, plot.Options{
		Title:  "Figure 7 — Execution time vs. Atom Containers",
		XLabel: "#Atom Containers",
		YLabel: "execution time [Mcycles]",
	})
}

// SVG renders the Table 2 speedups as a line chart.
func (r *Table2Result) SVG() string {
	mk := func(name string, ys []float64) plot.Series {
		s := plot.Series{Name: name}
		for i, n := range r.ACs {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, ys[i])
		}
		return s
	}
	return plot.Line([]plot.Series{
		mk("HEF vs Molen", r.HEFvsMolen),
		mk("ASF vs Molen", r.ASFvsMolen),
		mk("HEF vs ASF", r.HEFvsASF),
	}, plot.Options{
		Title:  "Table 2 — Speedup over the Molen-like baseline",
		XLabel: "#Atom Containers",
		YLabel: "speedup [x]",
	})
}

// SVG renders the Figure 2 comparison as grouped execution-rate bars.
func (r *Fig2Result) SVG() string {
	sum := func(res interface {
		Counts(int) []int64
	}) []float64 {
		var out []float64
		for _, si := range []isa.SIID{isa.SISAD, isa.SISATD} {
			for i, c := range res.Counts(int(si)) {
				if i >= len(out) {
					out = append(out, 0)
				}
				out[i] += float64(c)
			}
		}
		return out
	}
	return plot.Bars([]plot.Series{
		{Name: "no SI upgrade", Y: sum(r.Without.Histogram)},
		{Name: "stepwise SI upgrade", Y: sum(r.With.Histogram)},
	}, plot.Options{
		Title:  "Figure 2 — ME hot spot SI executions per 100K cycles",
		XLabel: "execution time [100K-cycle buckets]",
		YLabel: "SI executions",
	})
}

// SVG renders the Figure 8 detail: latency staircases on a log axis.
func (r *Fig8Result) SVG() string {
	is := isa.H264()
	var series []plot.Series
	for _, si := range []isa.SIID{isa.SISAD, isa.SISATD, isa.SIMC, isa.SIDCT} {
		s := plot.Series{Name: is.SI(si).Name + " latency"}
		events := r.Result.Timeline.PerSI(int(si))
		for i, e := range events {
			// Draw a staircase: hold the previous latency until the step.
			if i > 0 {
				s.X = append(s.X, float64(e.Cycle)/1e5)
				s.Y = append(s.Y, float64(events[i-1].Latency))
			}
			s.X = append(s.X, float64(e.Cycle)/1e5)
			s.Y = append(s.Y, float64(e.Latency))
		}
		if len(events) > 0 {
			s.X = append(s.X, float64(r.Result.TotalCycles)/1e5)
			s.Y = append(s.Y, float64(events[len(events)-1].Latency))
		}
		series = append(series, s)
	}
	return plot.Line(series, plot.Options{
		Title:  fmt.Sprintf("Figure 8 — HEF latency steps, ME+EE of one frame (%d cycles)", r.Result.TotalCycles),
		XLabel: "execution time [100K cycles]",
		YLabel: "SI latency [cycles]",
		LogY:   true,
	})
}
