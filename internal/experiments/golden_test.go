package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rispp/internal/hwmodel"
	"rispp/internal/isa"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares rendered experiment text against a stored snapshot; the
// simulator and library are fully deterministic, so any diff is a real
// behavioural change. Refresh intentionally with `go test -update`.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/experiments -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s changed; run with -update if intentional.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	golden(t, "table1.golden", Table1())
}

func TestGoldenFig4(t *testing.T) {
	golden(t, "fig4.golden", Fig4().Text)
}

func TestGoldenTable3(t *testing.T) {
	golden(t, "table3.golden", hwmodel.Table3(isa.H264()))
}

func TestGoldenFig2(t *testing.T) {
	golden(t, "fig2.golden", Fig2().Text)
}

func TestGoldenFig8(t *testing.T) {
	golden(t, "fig8.golden", Fig8().Text)
}

func TestGoldenFig7Small(t *testing.T) {
	golden(t, "fig7_small.golden", Fig7(small).CSV())
}

func TestGoldenTable2Small(t *testing.T) {
	golden(t, "table2_small.golden", Table2(small).CSV())
}
