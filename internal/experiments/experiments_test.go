package experiments

import (
	"strings"
	"testing"

	"rispp/internal/isa"
)

// small keeps sweep tests fast while preserving the qualitative shapes.
var small = Params{Frames: 20, ACs: []int{5, 10, 14, 24}}

func TestFig2UpgradeFinishesEarlier(t *testing.T) {
	r := Fig2()
	if r.With.TotalCycles >= r.Without.TotalCycles {
		t.Fatalf("stepwise upgrade (%d) not faster than no-upgrade (%d)",
			r.With.TotalCycles, r.Without.TotalCycles)
	}
	// Both versions execute the full 31,977 ME SI executions (Figure 2).
	for _, res := range []struct {
		name string
		n    int64
	}{
		{"with", r.With.ExecutionsOf(isa.SISAD) + r.With.ExecutionsOf(isa.SISATD)},
		{"without", r.Without.ExecutionsOf(isa.SISAD) + r.Without.ExecutionsOf(isa.SISATD)},
	} {
		if res.n != 31977 {
			t.Errorf("%s upgrade: %d SI executions, want 31977", res.name, res.n)
		}
	}
	if !strings.Contains(r.Text, "Figure 2") {
		t.Error("missing caption")
	}
}

func TestFig2UpgradeAcceleratesEarlier(t *testing.T) {
	// The defining transient: in some early 100K bucket, the upgrade
	// version already executes noticeably more SIs than the no-upgrade
	// version (which is still stuck in software).
	r := Fig2()
	withC := r.With.Histogram.Counts(int(isa.SISAD))
	withoutC := r.Without.Histogram.Counts(int(isa.SISAD))
	found := false
	for i := 0; i < len(withC) && i < len(withoutC); i++ {
		if withC[i] > 2*withoutC[i] && withC[i] > 100 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no early bucket where stepwise upgrade is ahead")
	}
}

func TestFig4Table(t *testing.T) {
	r := Fig4()
	want := []struct {
		good, naive string
	}{
		{"-", "-"},
		{"-", "-"},
		{"m1", "-"},
		{"m2", "-"},
		{"m2", "m2"},
		{"m3", "m3"},
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i, w := range want {
		if r.Rows[i].Good != w.good || r.Rows[i].Naive != w.naive {
			t.Errorf("after %d Atoms: good=%q naive=%q, want %q/%q",
				i+1, r.Rows[i].Good, r.Rows[i].Naive, w.good, w.naive)
		}
	}
}

func TestTable1ListsAllSIs(t *testing.T) {
	out := Table1()
	for _, name := range []string{"SAD", "SATD", "(I)DCT", "(I)HT 2x2", "(I)HT 4x4", "MC", "IPred HDC", "IPred VDC", "LF_BS4"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table1 missing %q", name)
		}
	}
	if !strings.Contains(out, "Motion Estimation") || !strings.Contains(out, "Loop Filter") {
		t.Error("Table1 missing hot spot names")
	}
}

func TestFig7Shapes(t *testing.T) {
	r := Fig7(small)
	// HEF is never slower than any other scheduler (±0.5% tolerance for
	// micro-instances, cf. the paper's "never performed slower").
	for _, n := range small.ACs {
		hef := float64(r.Cycles["HEF"][n])
		for _, s := range []string{"FSFR", "ASF", "SJF"} {
			if float64(r.Cycles[s][n]) < 0.995*hef {
				t.Errorf("ACs=%d: %s (%d) beats HEF (%d)", n, s, r.Cycles[s][n], r.Cycles["HEF"][n])
			}
		}
	}
	// More containers help HEF substantially across the range.
	if r.Cycles["HEF"][24] >= r.Cycles["HEF"][5] {
		t.Errorf("HEF at 24 ACs (%d) not faster than at 5 ACs (%d)",
			r.Cycles["HEF"][24], r.Cycles["HEF"][5])
	}
	if !strings.Contains(r.Text, "Figure 7") {
		t.Error("missing caption")
	}
}

func TestTable2Shapes(t *testing.T) {
	r := Table2(small)
	last := len(r.ACs) - 1
	// HEF vs Molen speedup grows with the fabric and exceeds 1.5x at the
	// top of the range (paper: 1.09 → 2.38).
	if r.HEFvsMolen[0] < 1.0 {
		t.Errorf("HEF vs Molen at %d ACs = %.2f < 1", r.ACs[0], r.HEFvsMolen[0])
	}
	if r.HEFvsMolen[last] < 1.5 {
		t.Errorf("HEF vs Molen at %d ACs = %.2f, want ≥ 1.5", r.ACs[last], r.HEFvsMolen[last])
	}
	if r.HEFvsMolen[last] <= r.HEFvsMolen[0] {
		t.Error("HEF vs Molen speedup does not grow with ACs")
	}
	// HEF is never slower than ASF, and ASF never slower than Molen.
	for i := range r.ACs {
		if r.HEFvsASF[i] < 0.995 {
			t.Errorf("ACs=%d: HEF vs ASF = %.3f < 1", r.ACs[i], r.HEFvsASF[i])
		}
		if r.ASFvsMolen[i] < 1.0 {
			t.Errorf("ACs=%d: ASF vs Molen = %.3f < 1", r.ACs[i], r.ASFvsMolen[i])
		}
	}
	if r.AvgHEFvsMolen < 1.2 {
		t.Errorf("average HEF vs Molen = %.2f, want well above 1", r.AvgHEFvsMolen)
	}
}

func TestFig8Detail(t *testing.T) {
	r := Fig8()
	// All four watched SIs must show latency steps: the initial (software
	// or leftover) latency plus at least one upgrade.
	for _, si := range []isa.SIID{isa.SISAD, isa.SISATD, isa.SIMC, isa.SIDCT} {
		ev := r.Result.Timeline.PerSI(int(si))
		if len(ev) < 2 {
			t.Errorf("SI %d: only %d latency steps, upgrades missing", si, len(ev))
		}
		for i := 1; i < len(ev); i++ {
			if ev[i].Latency >= ev[i-1].Latency {
				t.Errorf("SI %d: latency did not decrease monotonically within ME+EE", si)
			}
		}
	}
	if r.Result.TotalCycles > 4_000_000 {
		t.Errorf("ME+EE of one frame took %d cycles; expected a few million", r.Result.TotalCycles)
	}
}

func TestSoftwareBaseline(t *testing.T) {
	res, txt := SoftwareBaseline(Params{Frames: 140})
	if res.TotalCycles < 7_350_000_000 || res.TotalCycles > 7_450_000_000 {
		t.Fatalf("software baseline = %d, want ≈7,403M", res.TotalCycles)
	}
	if !strings.Contains(txt, "7,403M") {
		t.Error("baseline text missing paper reference")
	}
}

func TestCSVRendering(t *testing.T) {
	f := Fig7(small)
	csv := f.CSV()
	if !strings.HasPrefix(csv, "acs,FSFR,ASF,SJF,HEF\n") {
		t.Fatalf("Fig7 CSV header wrong:\n%s", csv)
	}
	t2 := Table2(small)
	csv2 := t2.CSV()
	if !strings.HasPrefix(csv2, "acs,hef_vs_asf,asf_vs_molen,hef_vs_molen\n") {
		t.Fatalf("Table2 CSV header wrong:\n%s", csv2)
	}
	if len(strings.Split(strings.TrimSpace(csv2), "\n")) != len(small.ACs)+1 {
		t.Fatal("Table2 CSV row count wrong")
	}
}

func TestSVGRendering(t *testing.T) {
	for name, svg := range map[string]string{
		"fig2":   Fig2().SVG(),
		"fig7":   Fig7(small).SVG(),
		"table2": Table2(small).SVG(),
		"fig8":   Fig8().SVG(),
	} {
		if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
			t.Errorf("%s: not a complete SVG document", name)
		}
		if len(svg) < 500 {
			t.Errorf("%s: suspiciously small SVG (%d bytes)", name, len(svg))
		}
	}
}

func TestOptimalGap(t *testing.T) {
	r := OptimalGap()
	for spot, ratios := range r.Ratio {
		for name, ratio := range ratios {
			if ratio < 0.999 {
				t.Errorf("%s/%s: ratio %.3f below optimal", spot, name, ratio)
			}
			if name == "HEF" && ratio > 1.30 {
				t.Errorf("%s: HEF optimality gap %.3f too large", spot, ratio)
			}
		}
		if ratios["HEF"] > ratios["FSFR"]+0.001 {
			t.Errorf("%s: HEF (%.3f) worse than FSFR (%.3f)", spot, ratios["HEF"], ratios["FSFR"])
		}
	}
	if !strings.Contains(r.Text, "optimum") {
		t.Error("caption missing")
	}
}
