// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment returns structured data plus a
// rendered text block; cmd/risppbench prints them and bench_test.go wraps
// them in testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"rispp/internal/explore"
	"rispp/internal/isa"
	"rispp/internal/molecule"
	"rispp/internal/molen"
	"rispp/internal/reconfig"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/stats"
	"rispp/internal/workload"

	"rispp/internal/core"
)

// Params controls experiment sizing; the zero value reproduces the paper's
// setup (140 CIF frames, ACs 5–24).
type Params struct {
	Frames int   // default 140
	ACs    []int // default 5..24

	// Workers bounds the sweep worker pool (0 = GOMAXPROCS). The simulator
	// is deterministic, so the worker count never changes results.
	Workers int
	// CacheDir, when set, reuses completed sweep points from (and stores
	// new ones into) a content-addressed result cache.
	CacheDir string
}

func (p *Params) setDefaults() {
	if p.Frames == 0 {
		p.Frames = 140
	}
	if len(p.ACs) == 0 {
		for n := 5; n <= 24; n++ {
			p.ACs = append(p.ACs, n)
		}
	}
}

// newRISPP builds a seeded RISPP manager.
func newRISPP(is *isa.ISA, tr *workload.Trace, scheduler string, acs int) *core.Manager {
	s, err := sched.New(scheduler)
	if err != nil {
		panic(err)
	}
	m := core.NewManager(core.Config{ISA: is, NumACs: acs, Scheduler: s})
	m.SeedFromTrace(tr)
	return m
}

// newMolen builds a seeded Molen-like baseline.
func newMolen(is *isa.ISA, tr *workload.Trace, acs int) *molen.Runtime {
	r := molen.New(molen.Config{ISA: is, NumACs: acs})
	r.SeedFromTrace(tr)
	return r
}

// runPoint simulates one (system, ACs) cell.
func runPoint(is *isa.ISA, tr *workload.Trace, system string, acs int, opts sim.Options) *sim.Result {
	var rt sim.Runtime
	if system == "Molen" {
		rt = newMolen(is, tr, acs)
	} else {
		rt = newRISPP(is, tr, system, acs)
	}
	res, err := sim.Run(tr, is, rt, opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s/%d ACs: %v", system, acs, err))
	}
	return res
}

// sweep runs systems × ACs through the exploration engine: parallel on a
// bounded worker pool (ISA and trace are read-only during simulation), with
// optional result caching keyed by the full design point. The trace is
// compiled once for the whole sweep and Result buffers are pooled, so each
// point only pays for runtime construction and simulation.
func sweep(is *isa.ISA, tr *workload.Trace, systems []string, acs []int, p Params) map[string]map[int]int64 {
	var cache explore.Store // non-nil only when a directory is configured
	if p.CacheDir != "" {
		c, err := explore.OpenCache(p.CacheDir)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		cache = c
	}
	ct, err := workload.Compile(tr, is)
	if err != nil {
		panic(fmt.Sprintf("experiments: compile trace: %v", err))
	}
	var results sync.Pool
	eng := &explore.Engine{
		Workers: p.Workers,
		Cache:   cache,
		Run: func(ctx context.Context, pt explore.Point) (explore.Metrics, error) {
			var rt sim.Runtime
			if pt.Scheduler == "Molen" {
				rt = newMolen(is, tr, pt.NumACs)
			} else {
				rt = newRISPP(is, tr, pt.Scheduler, pt.NumACs)
			}
			res, _ := results.Get().(*sim.Result)
			if res == nil {
				res = new(sim.Result)
			}
			if err := sim.RunCompiled(ctx, ct, rt, sim.Options{}, res); err != nil {
				results.Put(res)
				return explore.Metrics{}, err
			}
			m := explore.Metrics{
				TotalCycles:  res.TotalCycles,
				StallCycles:  res.StallCycles,
				SWExecutions: res.TotalSWExecutions(),
				HWExecutions: res.TotalHWExecutions(),
			}
			results.Put(res)
			return m, nil
		},
	}
	// Frames is part of the point so that cached results from differently
	// sized sweeps can never collide.
	spec := explore.Spec{Schedulers: systems, ACs: acs, Frames: []int{p.Frames}}
	r, err := eng.Execute(context.Background(), spec, nil)
	if err != nil {
		panic(fmt.Sprintf("experiments: sweep: %v", err))
	}
	if err := r.FirstErr(); err != nil {
		panic(fmt.Sprintf("experiments: sweep: %v", err))
	}
	out := make(map[string]map[int]int64)
	for _, rec := range r.Records {
		if out[rec.Point.Scheduler] == nil {
			out[rec.Point.Scheduler] = make(map[int]int64)
		}
		out[rec.Point.Scheduler][rec.Point.NumACs] = rec.TotalCycles
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 2 — SI executions per 100K cycles in the ME hot spot, with vs.
// without stepwise SI upgrade.

// Fig2Result carries both runs of the Figure 2 comparison.
type Fig2Result struct {
	With    *sim.Result // RISPP/HEF: stepwise upgrades
	Without *sim.Result // Molen-like: software until fully reconfigured
	Text    string
}

// Fig2 runs the Motion Estimation hot spot of one frame on a 12-container
// fabric, once with stepwise SI upgrades (RISPP/HEF) and once without
// (single implementation per SI).
func Fig2() *Fig2Result {
	is := isa.H264()
	full := workload.H264(workload.H264Config{Frames: 1})
	me := &workload.Trace{Name: "me-hotspot", Phases: full.Phases[:1]}
	opts := sim.Options{HistogramBucket: 100_000, Timeline: true}

	withUp := runPoint(is, me, "HEF", 12, opts)
	withoutUp := runPoint(is, me, "Molen", 12, opts)

	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — %d SI executions (SAD+SATD) of the ME hot spot, 12 ACs\n\n",
		me.TotalExecutions())
	series := [][]int64{}
	labels := []string{}
	for _, r := range []*sim.Result{withoutUp, withUp} {
		sum := []int64{}
		for _, si := range []isa.SIID{isa.SISAD, isa.SISATD} {
			for i, c := range r.Histogram.Counts(int(si)) {
				if i >= len(sum) {
					sum = append(sum, 0)
				}
				sum[i] += c
			}
		}
		series = append(series, sum)
	}
	labels = append(labels, "no SI upgrade   ", "stepwise upgrade")
	b.WriteString(stats.Chart(labels, series))
	fmt.Fprintf(&b, "\nExecution time: without upgrade %d cycles, with stepwise upgrade %d cycles (%.2fx)\n",
		withoutUp.TotalCycles, withUp.TotalCycles,
		float64(withoutUp.TotalCycles)/float64(withUp.TotalCycles))
	return &Fig2Result{With: withUp, Without: withoutUp, Text: b.String()}
}

// ---------------------------------------------------------------------------
// Figure 4 — Molecule availability under different Atom schedules.

// Fig4Row is one row of the Figure 4 table: after loading the n-th Atom,
// the fastest Molecule each schedule has made available.
type Fig4Row struct {
	LoadedAtoms int
	Good, Naive string // fastest available Molecule (by name) per schedule
}

// Fig4Result carries the schedule comparison of Figure 4.
type Fig4Result struct {
	Rows []Fig4Row
	Text string
}

// Fig4 reproduces the Figure 4 scenario: an SI with Molecules m1=(1,2) ≤
// m2=(2,2) ≤ m3=(3,3); a good schedule (HEF order u2,u2,u1,u1,u2,u1) makes
// m1 available after 3 Atom loads and m2 after 4, while a naive type-sorted
// schedule (u1,u1,u1,u2,u2,u2) offers nothing before load 5.
func Fig4() *Fig4Result {
	is := fig4ISA()
	si := is.SI(0)
	req := []sched.Request{{SI: si, Selected: si.Fastest(), Expected: 1000}}
	hef, _ := sched.New("HEF")
	good := hef.Schedule(req, molecule.New(2))
	naive := []isa.AtomID{0, 0, 0, 1, 1, 1} // all A1 first, then all A2

	timing := reconfig.DefaultTiming()
	atomUs := timing.Microseconds(timing.LoadCycles(60488))

	name := func(seq []isa.AtomID, n int) string {
		a := molecule.New(2)
		for _, atom := range seq[:n] {
			a[int(atom)]++
		}
		m, ok := si.FastestAvailable(a)
		if !ok {
			return "-"
		}
		switch {
		case m.Atoms.Equal(molecule.Of(1, 2)):
			return "m1"
		case m.Atoms.Equal(molecule.Of(2, 2)):
			return "m2"
		case m.Atoms.Equal(molecule.Of(3, 3)):
			return "m3"
		}
		return m.Atoms.String()
	}

	r := &Fig4Result{}
	tb := &stats.Table{Header: []string{"#loaded Atoms", "good schedule", "naive schedule"}}
	for n := 1; n <= 6; n++ {
		row := Fig4Row{LoadedAtoms: n, Good: name(good, n), Naive: name(naive, n)}
		r.Rows = append(r.Rows, row)
		tb.AddRow(fmt.Sprint(n), row.Good, row.Naive)
	}
	var b strings.Builder
	b.WriteString("Figure 4 — Molecule availability under two Atom schedules\n\n")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nAvg Atom reconfiguration: %.2f µs; skipping the m1/m2 upgrades keeps the SI\n", atomUs)
	fmt.Fprintf(&b, "in software for %.2f µs instead of %.2f µs.\n", 5*atomUs, 3*atomUs)
	r.Text = b.String()
	return r
}

// fig4ISA builds the Figure 4 toy ISA (shared with the sched tests).
func fig4ISA() *isa.ISA {
	is := &isa.ISA{
		Name: "fig4",
		Atoms: []isa.AtomType{
			{ID: 0, Name: "A1", BitstreamBytes: 60488},
			{ID: 1, Name: "A2", BitstreamBytes: 60488},
		},
		SIs: []isa.SI{{
			ID: 0, Name: "SI", HotSpot: 0, SWLatency: 500,
			Molecules: []isa.Molecule{
				{SI: 0, Atoms: molecule.Of(1, 2), Latency: 100},
				{SI: 0, Atoms: molecule.Of(2, 2), Latency: 60},
				{SI: 0, Atoms: molecule.Of(3, 3), Latency: 30},
			},
		}},
		HotSpots: []isa.HotSpot{{ID: 0, Name: "hot", SIs: []isa.SIID{0}}},
	}
	if err := is.Validate(); err != nil {
		panic(err)
	}
	return is
}

// ---------------------------------------------------------------------------
// Table 1 — the SI inventory.

// Table1 renders the implemented SI library: Atom types and Molecule counts
// per SI, grouped by hot spot.
func Table1() string {
	is := isa.H264()
	tb := &stats.Table{Header: []string{"Hot spot", "Special Instruction", "#Atom-types", "#Molecules"}}
	for _, h := range is.HotSpots {
		for _, id := range h.SIs {
			si := is.SI(id)
			types := map[int]bool{}
			for _, m := range si.Molecules {
				for atom, c := range m.Atoms {
					if c > 0 {
						types[atom] = true
					}
				}
			}
			tb.AddRow(h.Name, si.Name, fmt.Sprint(len(types)), fmt.Sprint(len(si.Molecules)))
		}
	}
	return "Table 1 — Implemented SIs of the H.264 encoder\n\n" + tb.String()
}

// ---------------------------------------------------------------------------
// Figure 7 — execution time vs. #ACs for the four schedulers.

// Fig7Result maps scheduler → ACs → total cycles.
type Fig7Result struct {
	Cycles map[string]map[int]int64
	ACs    []int
	Text   string
}

// Fig7 sweeps the four SI schedulers over the Atom Container range while
// encoding the CIF sequence.
func Fig7(p Params) *Fig7Result {
	p.setDefaults()
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: p.Frames})
	cycles := sweep(is, tr, sched.Names, p.ACs, p)

	tb := &stats.Table{Header: append([]string{"#ACs"}, sched.Names...)}
	for _, n := range p.ACs {
		row := []string{fmt.Sprint(n)}
		for _, s := range sched.Names {
			row = append(row, fmt.Sprintf("%.1fM", float64(cycles[s][n])/1e6))
		}
		tb.AddRow(row...)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — Execution time encoding %d CIF frames [cycles]\n\n", p.Frames)
	b.WriteString(tb.String())
	return &Fig7Result{Cycles: cycles, ACs: p.ACs, Text: b.String()}
}

// ---------------------------------------------------------------------------
// Table 2 — speedups HEF vs ASF, ASF vs Molen, HEF vs Molen.

// Table2Result carries the speedup rows of Table 2.
type Table2Result struct {
	ACs           []int
	HEFvsASF      []float64
	ASFvsMolen    []float64
	HEFvsMolen    []float64
	AvgHEFvsMolen float64
	Text          string
}

// Table2 compares the worst (ASF) and best (HEF) scheduler against the
// Molen-like baseline over the AC range.
func Table2(p Params) *Table2Result {
	p.setDefaults()
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: p.Frames})
	cycles := sweep(is, tr, []string{"ASF", "HEF", "Molen"}, p.ACs, p)

	r := &Table2Result{ACs: p.ACs}
	tb := &stats.Table{Header: []string{"#ACs", "HEF vs ASF", "ASF vs Molen", "HEF vs Molen"}}
	sum := 0.0
	for _, n := range p.ACs {
		hefASF := stats.SpeedupValue(cycles["ASF"][n], cycles["HEF"][n])
		asfMol := stats.SpeedupValue(cycles["Molen"][n], cycles["ASF"][n])
		hefMol := stats.SpeedupValue(cycles["Molen"][n], cycles["HEF"][n])
		r.HEFvsASF = append(r.HEFvsASF, hefASF)
		r.ASFvsMolen = append(r.ASFvsMolen, asfMol)
		r.HEFvsMolen = append(r.HEFvsMolen, hefMol)
		sum += hefMol
		tb.AddRow(fmt.Sprint(n), fmt.Sprintf("%.2f", hefASF), fmt.Sprintf("%.2f", asfMol), fmt.Sprintf("%.2f", hefMol))
	}
	r.AvgHEFvsMolen = sum / float64(len(p.ACs))
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — Speedups over %d CIF frames\n\n", p.Frames)
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nAverage HEF vs Molen speedup: %.2fx (paper: 1.71x, max 2.38x)\n", r.AvgHEFvsMolen)
	r.Text = b.String()
	return r
}

// ---------------------------------------------------------------------------
// Figure 8 — detailed HEF behaviour at 10 ACs.

// Fig8Result carries the detail run of Figure 8.
type Fig8Result struct {
	Result *sim.Result
	Text   string
}

// Fig8 runs the first two hot spots (ME and EE) of one frame with the HEF
// scheduler on 10 Atom Containers, recording SI latency steps (the lines of
// the paper figure) and executions per 100K cycles (the bars).
func Fig8() *Fig8Result {
	is := isa.H264()
	full := workload.H264(workload.H264Config{Frames: 1})
	two := &workload.Trace{Name: "me+ee", Phases: full.Phases[:2]}
	res := runPoint(is, two, "HEF", 10, sim.Options{HistogramBucket: 100_000, Timeline: true})

	watch := []isa.SIID{isa.SISAD, isa.SISATD, isa.SIMC, isa.SIDCT}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 — HEF detail, first two hot spots (ME, EE) of one frame, 10 ACs\n")
	fmt.Fprintf(&b, "Total: %d cycles\n\nLatency steps (cycle: latency):\n", res.TotalCycles)
	for _, si := range watch {
		events := res.Timeline.PerSI(int(si))
		fmt.Fprintf(&b, "  %-10s", is.SI(si).Name)
		for _, e := range events {
			fmt.Fprintf(&b, "  %d:%d", e.Cycle, e.Latency)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nExecutions per 100K cycles:\n")
	labels := []string{}
	series := [][]int64{}
	for _, si := range watch {
		labels = append(labels, is.SI(si).Name)
		series = append(series, res.Histogram.Counts(int(si)))
	}
	b.WriteString(stats.Chart(labels, series))
	return &Fig8Result{Result: res, Text: b.String()}
}

// ---------------------------------------------------------------------------
// Section 5 — the 0-AC pure software number.

// SoftwareBaseline returns the pure-software execution (0 ACs) of the full
// encode, the paper's 7,403M cycles.
func SoftwareBaseline(p Params) (*sim.Result, string) {
	p.setDefaults()
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: p.Frames})
	res, err := sim.Run(tr, is, sim.Software(is), sim.Options{})
	if err != nil {
		panic(err)
	}
	txt := fmt.Sprintf("Pure software (0 ACs), %d frames: %d cycles (paper: 7,403M for 140 frames)\n",
		p.Frames, res.TotalCycles)
	return res, txt
}

// CSV renders the Figure 7 sweep as comma-separated values.
func (r *Fig7Result) CSV() string {
	tb := &stats.Table{Header: append([]string{"acs"}, sched.Names...)}
	for _, n := range r.ACs {
		row := []string{fmt.Sprint(n)}
		for _, s := range sched.Names {
			row = append(row, fmt.Sprint(r.Cycles[s][n]))
		}
		tb.AddRow(row...)
	}
	return tb.CSV()
}

// CSV renders the Table 2 speedups as comma-separated values.
func (r *Table2Result) CSV() string {
	tb := &stats.Table{Header: []string{"acs", "hef_vs_asf", "asf_vs_molen", "hef_vs_molen"}}
	for i, n := range r.ACs {
		tb.AddRow(fmt.Sprint(n),
			fmt.Sprintf("%.4f", r.HEFvsASF[i]),
			fmt.Sprintf("%.4f", r.ASFvsMolen[i]),
			fmt.Sprintf("%.4f", r.HEFvsMolen[i]))
	}
	return tb.CSV()
}

// ---------------------------------------------------------------------------
// Beyond the paper: the schedulers against the exhaustive optimum.

// OptimalGapResult compares every scheduler's clairvoyant-rate cost with
// the exhaustive optimal schedule on tractable hot-spot instances.
type OptimalGapResult struct {
	// Ratio[hotspot][scheduler] = cost(scheduler) / cost(optimal).
	Ratio map[string]map[string]float64
	Text  string
}

// OptimalGap evaluates the ME and LF hot spots (the EE instance's state
// space is too large for the exact solver) with the calibrated forecasts.
func OptimalGap() *OptimalGapResult {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	prof := map[isa.SIID]int64{}
	for _, b := range tr.Phases[0].Bursts {
		prof[b.SI] += int64(b.Count)
	}
	for _, b := range tr.Phases[2].Bursts {
		prof[b.SI] += int64(b.Count)
	}
	cost := func(a isa.AtomID) int64 { return int64(is.Atom(a).BitstreamBytes) }

	r := &OptimalGapResult{Ratio: make(map[string]map[string]float64)}
	tb := &stats.Table{Header: append([]string{"hot spot"}, append(append([]string{}, sched.Names...), "optimal")...)}
	for _, h := range []isa.HotSpotID{isa.HotSpotME, isa.HotSpotLF} {
		var reqs []sched.Request
		for _, si := range is.HotSpotSIs(h) {
			reqs = append(reqs, sched.Request{SI: si, Selected: si.Fastest(), Expected: prof[si.ID]})
		}
		avail := molecule.New(is.Dim())
		e := sched.Exhaustive{Cost: cost}
		_, optCost, err := e.Schedule(reqs, avail)
		if err != nil {
			panic(err)
		}
		name := is.HotSpots[h].Name
		r.Ratio[name] = make(map[string]float64)
		row := []string{name}
		for _, sn := range sched.Names {
			s, _ := sched.New(sn)
			c := sched.EvalCost(s.Schedule(reqs, avail), reqs, avail, cost)
			ratio := float64(c) / float64(optCost)
			r.Ratio[name][sn] = ratio
			row = append(row, fmt.Sprintf("%.3f", ratio))
		}
		row = append(row, "1.000")
		tb.AddRow(row...)
	}
	var b strings.Builder
	b.WriteString("Scheduler cost vs. exhaustive optimum (clairvoyant-rate model)\n\n")
	b.WriteString(tb.String())
	r.Text = b.String()
	return r
}
