package video

import (
	"math"
	"testing"
)

func encodePair(t *testing.T, qp int) (EncodeResult, *Frame, *Frame) {
	t.Helper()
	s := Scene{W: 128, H: 96, Seed: 12, Objects: 2, PanX: 1}
	ref := s.Frame(3)
	cur := s.Frame(4)
	return EncodeFrame(ref, cur, qp, 4), ref, cur
}

func TestEncodeFrameReconstructionQuality(t *testing.T) {
	res, _, _ := encodePair(t, 8)
	if res.PSNR < 38 {
		t.Fatalf("PSNR at QP 8 = %.1f dB, expected a high-quality reconstruction", res.PSNR)
	}
	if res.InterMBs == 0 {
		t.Fatal("panning scene produced no inter macroblocks")
	}
}

func TestPSNRDecreasesWithQP(t *testing.T) {
	low, _, _ := encodePair(t, 6)
	mid, _, _ := encodePair(t, 24)
	high, _, _ := encodePair(t, 40)
	if !(low.PSNR > mid.PSNR && mid.PSNR > high.PSNR) {
		t.Fatalf("PSNR not monotone in QP: %.1f, %.1f, %.1f", low.PSNR, mid.PSNR, high.PSNR)
	}
}

func TestLevelsDecreaseWithQP(t *testing.T) {
	fine, _, _ := encodePair(t, 6)
	coarse, _, _ := encodePair(t, 36)
	if coarse.Levels >= fine.Levels {
		t.Fatalf("coarser quantization should spend fewer levels: %d vs %d", coarse.Levels, fine.Levels)
	}
}

func TestEncodeIdenticalFramesNearLossless(t *testing.T) {
	s := Scene{W: 96, H: 96, Seed: 13}
	f := s.Frame(2)
	res := EncodeFrame(f, f, 8, 4)
	// Identical reference: zero-motion prediction, near-zero residual.
	if !math.IsInf(res.PSNR, 1) && res.PSNR < 50 {
		t.Fatalf("identical-frame encode PSNR = %.1f dB", res.PSNR)
	}
	if res.Levels > len(f.Pix)/64 {
		t.Fatalf("identical-frame encode spent %d levels", res.Levels)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, _, _ := encodePair(t, 20)
	b, _, _ := encodePair(t, 20)
	if a.PSNR != b.PSNR || a.Levels != b.Levels {
		t.Fatal("encode not deterministic")
	}
	for i := range a.Recon.Pix {
		if a.Recon.Pix[i] != b.Recon.Pix[i] {
			t.Fatal("reconstruction not deterministic")
		}
	}
}

func TestSceneChangeEncodesIntra(t *testing.T) {
	s := Scene{W: 128, H: 96, Seed: 14, SceneChangeFrame: 4, Objects: 2}
	ref := s.Frame(3)
	cur := s.Frame(4) // across the cut
	res := EncodeFrame(ref, cur, 20, 4)
	if res.IntraMBs <= res.InterMBs/4 {
		t.Fatalf("scene change should force many intra MBs: %d intra / %d inter",
			res.IntraMBs, res.InterMBs)
	}
	// Despite the useless reference, intra coding keeps quality reasonable.
	if res.PSNR < 25 {
		t.Fatalf("scene-change PSNR = %.1f dB", res.PSNR)
	}
}

func TestPSNRMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PSNR of mismatched frames did not panic")
		}
	}()
	PSNR(&Frame{W: 2, H: 2, Pix: make([]uint8, 4)}, &Frame{W: 4, H: 4, Pix: make([]uint8, 16)})
}

func TestPSNRIdentical(t *testing.T) {
	f := (&Scene{W: 32, H: 32, Seed: 1}).Frame(0)
	if !math.IsInf(PSNR(f, f), 1) {
		t.Fatal("PSNR of identical frames should be +Inf")
	}
}
