// Package video provides a synthetic video source and a small H.264-style
// encoder front end. Where internal/workload ships the paper-calibrated
// trace, this package *derives* a trace from actual content: it renders
// deterministic frames (panning background, moving objects, scene
// changes), runs a real motion search with the datapath kernels, decides
// inter/intra per macroblock, and emits the resulting Special Instruction
// invocations as a workload trace.
//
// This closes the loop the paper motivates: "the encoding-type of a Macro
// Block … only depends on the kind of motion in the input video sequence"
// — with this package the SI execution counts genuinely depend on what the
// virtual camera sees, and the run-time system has to adapt to it.
package video

import (
	"math/rand"

	"rispp/internal/datapath"
)

// Frame is a luma-only picture.
type Frame struct {
	W, H int
	Pix  []uint8
}

// At returns the sample at (x, y) with clamped borders.
func (f *Frame) At(x, y int) int {
	if x < 0 {
		x = 0
	}
	if x >= f.W {
		x = f.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= f.H {
		y = f.H - 1
	}
	return int(f.Pix[y*f.W+x])
}

// Scene describes a deterministic synthetic sequence.
type Scene struct {
	W, H int // pixels; default CIF 352x288

	Seed    int64
	Objects int     // moving foreground squares (default 4)
	PanX    float64 // background pan, pixels/frame (default 0.8)
	PanY    float64
	// SceneChangeFrame, when > 0, swaps the layout and triples the object
	// velocities from that frame on.
	SceneChangeFrame int
}

func (s *Scene) setDefaults() {
	if s.W == 0 {
		s.W = 352
	}
	if s.H == 0 {
		s.H = 288
	}
	if s.Objects == 0 {
		s.Objects = 4
	}
	if s.PanX == 0 && s.PanY == 0 {
		s.PanX = 0.8
	}
}

type object struct {
	x, y   float64
	vx, vy float64
	size   int
	shade  uint8
}

func (s *Scene) objects() []object {
	rng := rand.New(rand.NewSource(s.Seed*2654435761 + 1))
	objs := make([]object, s.Objects)
	for i := range objs {
		objs[i] = object{
			x:     rng.Float64() * float64(s.W),
			y:     rng.Float64() * float64(s.H),
			vx:    (rng.Float64()*2 - 1) * 3,
			vy:    (rng.Float64()*2 - 1) * 2,
			size:  24 + rng.Intn(40),
			shade: uint8(64 + rng.Intn(160)),
		}
	}
	return objs
}

// Frame renders frame idx of the scene. Rendering is deterministic in
// (Scene, idx) — no state is carried between calls.
func (s *Scene) Frame(idx int) *Frame {
	sc := *s
	sc.setDefaults()
	f := &Frame{W: sc.W, H: sc.H, Pix: make([]uint8, sc.W*sc.H)}

	speed := 1.0
	phaseShift := 0
	if sc.SceneChangeFrame > 0 && idx >= sc.SceneChangeFrame {
		speed = 3.0
		phaseShift = 97 // different background alignment after the cut
	}
	// Panning gradient background with a texture stripe pattern.
	panX := int(sc.PanX * float64(idx) * speed)
	panY := int(sc.PanY * float64(idx) * speed)
	for y := 0; y < sc.H; y++ {
		for x := 0; x < sc.W; x++ {
			v := ((x+panX+phaseShift)>>2 + (y+panY)>>3) & 0x3F
			f.Pix[y*sc.W+x] = uint8(64 + v*2)
		}
	}
	// Moving objects.
	for _, o := range sc.objects() {
		ox := int(o.x + o.vx*float64(idx)*speed)
		oy := int(o.y + o.vy*float64(idx)*speed)
		ox = ((ox % sc.W) + sc.W) % sc.W
		oy = ((oy % sc.H) + sc.H) % sc.H
		for dy := 0; dy < o.size; dy++ {
			yy := oy + dy
			if yy >= sc.H {
				break
			}
			for dx := 0; dx < o.size; dx++ {
				xx := ox + dx
				if xx >= sc.W {
					break
				}
				f.Pix[yy*sc.W+xx] = o.shade
			}
		}
	}
	return f
}

// MBSize is the macroblock edge length.
const MBSize = 16

// Analysis summarizes the encoder front end's work on one macroblock: the
// number of SI invocations the hot spots will issue, and the decisions.
type Analysis struct {
	SADs  int // SAD SI executions (one per 16x16 candidate evaluation)
	SATDs int // SATD SI executions (one per 4x4 block refinement)
	MVx   int
	MVy   int
	Cost  int  // best SAD cost
	Intra bool // inter prediction failed; macroblock coded intra
}

// blockSAD evaluates one motion candidate: the 16x16 SAD computed row by
// row with the datapath kernel (the work one SAD SI performs).
func blockSAD(ref, cur *Frame, cx, cy, rx, ry, bail int) int {
	total := 0
	for row := 0; row < MBSize; row++ {
		var a, b [16]int
		for i := 0; i < MBSize; i++ {
			a[i] = cur.At(cx+i, cy+row)
			b[i] = ref.At(rx+i, ry+row)
		}
		total += datapath.SAD16(&a, &b)
		if total >= bail {
			return total // early termination, like real encoders
		}
	}
	return total
}

// spiral is the candidate order of the integer-pel search: offsets sorted
// by |dx|+|dy| within the search range.
func spiral(searchRange int) [][2]int {
	var out [][2]int
	for d := 0; d <= 2*searchRange; d++ {
		for dy := -searchRange; dy <= searchRange; dy++ {
			for dx := -searchRange; dx <= searchRange; dx++ {
				if datapath.Abs(dx)+datapath.Abs(dy) == d {
					out = append(out, [2]int{dx, dy})
				}
			}
		}
	}
	return out
}

// AnalyzeMB runs the motion search for the macroblock at (mbx, mby):
// integer-pel spiral search with early termination, then SATD refinement
// of the winner's 4x4 blocks, then the inter/intra decision.
func AnalyzeMB(ref, cur *Frame, mbx, mby, searchRange int, candidates [][2]int) Analysis {
	cx, cy := mbx*MBSize, mby*MBSize
	a := Analysis{Cost: 1 << 30}
	stopAt := 24 * MBSize // "good enough" threshold: ~1.5/sample

	for _, c := range candidates {
		sad := blockSAD(ref, cur, cx, cy, cx+c[0], cy+c[1], a.Cost)
		a.SADs++
		if sad < a.Cost {
			a.Cost, a.MVx, a.MVy = sad, c[0], c[1]
		}
		if a.Cost < stopAt {
			break
		}
	}

	// SATD refinement of the winning candidate: each of the 16 4x4 blocks
	// is transformed once (fractional-pel cost model).
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			var curB, refB datapath.Block4
			for r := 0; r < 4; r++ {
				for c := 0; c < 4; c++ {
					curB[r][c] = cur.At(cx+bx*4+c, cy+by*4+r)
					refB[r][c] = ref.At(cx+a.MVx+bx*4+c, cy+a.MVy+by*4+r)
				}
			}
			_ = datapath.SATD4x4(curB, refB)
			a.SATDs++
		}
	}

	// Inter/intra decision: a residual this bad means prediction failed
	// (occlusion, scene change) — code the macroblock intra.
	a.Intra = a.Cost > 28*MBSize*MBSize/4
	return a
}

// FrameStats aggregates the analysis of one frame.
type FrameStats struct {
	SADs, SATDs int
	IntraMBs    int
	InterMBs    int
	AvgCost     int
}

// AnalyzeFrame runs the front end over all macroblocks of cur against ref.
func AnalyzeFrame(ref, cur *Frame, searchRange int) (FrameStats, []Analysis) {
	cands := spiral(searchRange)
	mbw, mbh := cur.W/MBSize, cur.H/MBSize
	out := make([]Analysis, 0, mbw*mbh)
	var st FrameStats
	total := 0
	for mby := 0; mby < mbh; mby++ {
		for mbx := 0; mbx < mbw; mbx++ {
			a := AnalyzeMB(ref, cur, mbx, mby, searchRange, cands)
			out = append(out, a)
			st.SADs += a.SADs
			st.SATDs += a.SATDs
			if a.Intra {
				st.IntraMBs++
			} else {
				st.InterMBs++
			}
			total += a.Cost
		}
	}
	if n := len(out); n > 0 {
		st.AvgCost = total / n
	}
	return st, out
}
