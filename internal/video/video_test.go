package video

import (
	"testing"

	"rispp/internal/isa"
)

func TestFrameRenderingDeterministic(t *testing.T) {
	s := Scene{Seed: 3}
	a := s.Frame(5)
	b := s.Frame(5)
	if a.W != 352 || a.H != 288 {
		t.Fatalf("default geometry = %dx%d", a.W, a.H)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("rendering not deterministic")
		}
	}
	c := s.Frame(6)
	same := true
	for i := range a.Pix {
		if a.Pix[i] != c.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("consecutive frames identical — no motion rendered")
	}
}

func TestFrameAtClampsBorders(t *testing.T) {
	s := Scene{W: 32, H: 32, Seed: 1}
	f := s.Frame(0)
	if f.At(-5, -5) != f.At(0, 0) {
		t.Fatal("negative coordinates not clamped")
	}
	if f.At(1000, 1000) != f.At(31, 31) {
		t.Fatal("overflow coordinates not clamped")
	}
}

func TestSpiralOrder(t *testing.T) {
	c := spiral(2)
	if len(c) != 25 {
		t.Fatalf("spiral(2) has %d candidates, want 25", len(c))
	}
	if c[0] != [2]int{0, 0} {
		t.Fatalf("first candidate = %v, want origin", c[0])
	}
	// Distances must be non-decreasing.
	prev := 0
	for _, v := range c {
		d := abs(v[0]) + abs(v[1])
		if d < prev {
			t.Fatalf("spiral order broken at %v", v)
		}
		prev = d
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestStaticSceneFindsZeroMotion(t *testing.T) {
	s := Scene{W: 64, H: 64, Seed: 2, PanX: -1} // PanX<0 with PanY 0: keep defaults off
	s.PanX = 0.0001                             // effectively static background
	s.Objects = 1
	ref := s.Frame(0)
	st, mbs := AnalyzeFrame(ref, ref, 4) // identical frames
	for _, a := range mbs {
		if a.MVx != 0 || a.MVy != 0 || a.Cost != 0 {
			t.Fatalf("identical frames: MV=(%d,%d) cost=%d", a.MVx, a.MVy, a.Cost)
		}
		if a.Intra {
			t.Fatal("identical frames coded intra")
		}
	}
	// Early termination: one candidate each.
	if st.SADs != len(mbs) {
		t.Fatalf("static scene evaluated %d candidates for %d MBs", st.SADs, len(mbs))
	}
}

func TestPanningSceneRecoversGlobalMotion(t *testing.T) {
	s := Scene{W: 128, H: 128, Seed: 4, PanX: 2, PanY: 0, Objects: 0}
	ref := s.Frame(10)
	cur := s.Frame(11)
	_, mbs := AnalyzeFrame(ref, cur, 4)
	// The background pans by 2 px/frame; most macroblocks should find a
	// low-cost vector pointing back at the reference position.
	good := 0
	for _, a := range mbs {
		if a.Cost <= 24*MBSize {
			good++
		}
	}
	if good < len(mbs)/2 {
		t.Fatalf("only %d/%d macroblocks matched the pan", good, len(mbs))
	}
}

func TestHighMotionCostsMoreSearch(t *testing.T) {
	calm := Scene{Seed: 5, PanX: 0.2, Objects: 1}
	wild := Scene{Seed: 5, PanX: 3.5, PanY: 2.5, Objects: 8}
	calmStats, _ := AnalyzeFrame(calm.Frame(4), calm.Frame(5), 4)
	wildStats, _ := AnalyzeFrame(wild.Frame(4), wild.Frame(5), 4)
	if wildStats.SADs <= calmStats.SADs {
		t.Fatalf("high motion should need more SAD evaluations: calm %d, wild %d",
			calmStats.SADs, wildStats.SADs)
	}
}

func TestSceneChangeForcesIntra(t *testing.T) {
	s := Scene{Seed: 6, SceneChangeFrame: 5, PanX: 0.5, Objects: 3}
	// Across the cut the reference is useless: many intra macroblocks.
	cutStats, _ := AnalyzeFrame(s.Frame(4), s.Frame(5), 4)
	steady, _ := AnalyzeFrame(s.Frame(2), s.Frame(3), 4)
	if cutStats.IntraMBs <= steady.IntraMBs {
		t.Fatalf("scene change: %d intra MBs, steady state %d", cutStats.IntraMBs, steady.IntraMBs)
	}
	if cutStats.IntraMBs < 50 {
		t.Fatalf("only %d intra MBs across a full scene change", cutStats.IntraMBs)
	}
}

func TestTraceFromScene(t *testing.T) {
	is := isa.H264()
	tr := Trace(TraceConfig{Scene: Scene{Seed: 7}, Frames: 3})
	if err := tr.Validate(is); err != nil {
		t.Fatal(err)
	}
	if len(tr.Phases) != 9 {
		t.Fatalf("phases = %d, want 9 (ME,EE,LF × 3)", len(tr.Phases))
	}
	ex := tr.Executions()
	for _, si := range []isa.SIID{isa.SISAD, isa.SISATD, isa.SIDCT, isa.SILFBS4} {
		if ex[si] == 0 {
			t.Errorf("derived trace has no executions of SI %d", si)
		}
	}
}

func TestTraceReflectsMotion(t *testing.T) {
	calm := Trace(TraceConfig{Scene: Scene{Seed: 8, PanX: 0.2, Objects: 1}, Frames: 3})
	wild := Trace(TraceConfig{Scene: Scene{Seed: 8, PanX: 3.5, PanY: 2.5, Objects: 8}, Frames: 3})
	if wild.Executions()[isa.SISAD] <= calm.Executions()[isa.SISAD] {
		t.Fatal("high-motion trace does not execute more SAD SIs")
	}
	if wild.TotalExecutions() <= calm.TotalExecutions() {
		t.Fatal("high-motion trace not heavier overall")
	}
}

func TestTraceSceneChangeShiftsMix(t *testing.T) {
	tr := Trace(TraceConfig{Scene: Scene{Seed: 9, SceneChangeFrame: 3, Objects: 3}, Frames: 4})
	// Frames 1,2 are steady; frame 3 crosses the cut. Compare the IPred
	// share of EE phases before and at the cut.
	intraAt := func(phase int) int64 {
		n := int64(0)
		for _, b := range tr.Phases[phase].Bursts {
			if b.SI == isa.SIIPredHDC || b.SI == isa.SIIPredVDC {
				n += int64(b.Count)
			}
		}
		return n
	}
	before := intraAt(1 + 0*3) // EE of frame 1
	atCut := intraAt(1 + 2*3)  // EE of frame 3 (prev=frame 2 ... cut at 3)
	if atCut <= before {
		t.Fatalf("scene change did not raise intra prediction: %d vs %d", atCut, before)
	}
}
