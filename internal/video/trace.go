package video

import (
	"rispp/internal/isa"
	"rispp/internal/workload"
)

// TraceConfig controls the derivation of a workload trace from a scene.
type TraceConfig struct {
	Scene       Scene
	Frames      int // encoded P-frames (frame 0 is the unencoded reference)
	SearchRange int // integer-pel search range (default 4)

	// Glue/setup cycles; defaults match the calibrated workload generator.
	Gap   int
	Setup int64
}

func (c *TraceConfig) setDefaults() {
	if c.Frames == 0 {
		c.Frames = 10
	}
	if c.SearchRange == 0 {
		c.SearchRange = 4
	}
	if c.Gap == 0 {
		c.Gap = 8
	}
	if c.Setup == 0 {
		c.Setup = 61_000
	}
}

// Trace encodes the scene with the toy front end and emits the SI
// invocations as a workload trace: the Motion Estimation counts come from
// the actual motion search, the Encoding Engine counts from the per-MB
// inter/intra decisions and residual costs, the Loop Filter counts from
// the predicted block boundaries. High-motion content therefore genuinely
// produces more SI work — the adaptivity driver of the paper.
func Trace(cfg TraceConfig) *workload.Trace {
	cfg.setDefaults()
	t := &workload.Trace{Name: "video-derived"}
	prev := cfg.Scene.Frame(0)
	for f := 1; f <= cfg.Frames; f++ {
		cur := cfg.Scene.Frame(f)
		_, mbs := AnalyzeFrame(prev, cur, cfg.SearchRange)

		me := workload.Phase{HotSpot: isa.HotSpotME, Setup: cfg.Setup}
		ee := workload.Phase{HotSpot: isa.HotSpotEE, Setup: cfg.Setup}
		lf := workload.Phase{HotSpot: isa.HotSpotLF, Setup: cfg.Setup}
		for _, a := range mbs {
			me.Bursts = append(me.Bursts,
				workload.Burst{SI: isa.SISAD, Count: a.SADs, Gap: cfg.Gap},
				workload.Burst{SI: isa.SISATD, Count: a.SATDs, Gap: cfg.Gap},
			)
			// Residual coding effort grows with the prediction error: 8
			// always-coded blocks plus up to 16 cost-dependent ones.
			dct := 8 + min(16, a.Cost/480)
			if a.Intra {
				ee.Bursts = append(ee.Bursts,
					workload.Burst{SI: isa.SIIPredHDC, Count: 4, Gap: cfg.Gap},
					workload.Burst{SI: isa.SIIPredVDC, Count: 4, Gap: cfg.Gap},
					workload.Burst{SI: isa.SIDCT, Count: dct + 8, Gap: cfg.Gap},
				)
			} else {
				ee.Bursts = append(ee.Bursts,
					workload.Burst{SI: isa.SIMC, Count: 6, Gap: cfg.Gap},
					workload.Burst{SI: isa.SIDCT, Count: dct, Gap: cfg.Gap},
				)
			}
			ee.Bursts = append(ee.Bursts,
				workload.Burst{SI: isa.SIHT4x4, Count: 2, Gap: cfg.Gap},
				workload.Burst{SI: isa.SIHT2x2, Count: 1, Gap: cfg.Gap},
			)
			// Intra blocks and strong residuals raise the boundary
			// strength: more BS4 edges to filter.
			lfCount := 8
			if a.Intra {
				lfCount = 16
			} else if a.Cost > 12*MBSize*MBSize/4 {
				lfCount = 12
			}
			lf.Bursts = append(lf.Bursts, workload.Burst{SI: isa.SILFBS4, Count: lfCount, Gap: cfg.Gap})
		}
		t.Phases = append(t.Phases, me, ee, lf)
		prev = cur
	}
	return t
}
