package video

import (
	"math"

	"rispp/internal/datapath"
)

// EncodeResult summarizes one encoded frame of the toy codec loop.
type EncodeResult struct {
	Recon *Frame  // reconstructed frame (what the decoder would see)
	PSNR  float64 // luma PSNR of the reconstruction vs. the source
	// Levels counts non-zero quantized coefficients — a simple proxy for
	// the bitrate the entropy coder would spend.
	Levels int
	// IntraMBs/InterMBs echo the mode decisions.
	IntraMBs, InterMBs int
}

// EncodeFrame runs the complete toy encoder for one frame: motion search
// (AnalyzeMB), prediction, 4x4 residual transform + quantization +
// reconstruction (datapath.RoundTrip-style but with the level count
// exposed), and the final PSNR. It exercises every functional kernel the
// Special Instructions implement: SAD/SATD in the search, the core
// transform and quantizer in the residual path, DC intra prediction, and
// clipping in the reconstruction.
func EncodeFrame(ref, cur *Frame, qp, searchRange int) EncodeResult {
	cands := spiral(searchRange)
	mbw, mbh := cur.W/MBSize, cur.H/MBSize
	recon := &Frame{W: cur.W, H: cur.H, Pix: make([]uint8, cur.W*cur.H)}
	res := EncodeResult{Recon: recon}

	for mby := 0; mby < mbh; mby++ {
		for mbx := 0; mbx < mbw; mbx++ {
			a := AnalyzeMB(ref, cur, mbx, mby, searchRange, cands)
			if a.Intra {
				res.IntraMBs++
			} else {
				res.InterMBs++
			}
			cx, cy := mbx*MBSize, mby*MBSize
			// Per 4x4 block: predict, code the residual, reconstruct.
			for by := 0; by < 4; by++ {
				for bx := 0; bx < 4; bx++ {
					ox, oy := cx+bx*4, cy+by*4
					pred := predictBlock(ref, recon, a, ox, oy)
					var residual datapath.Block4
					for r := 0; r < 4; r++ {
						for c := 0; c < 4; c++ {
							residual[r][c] = cur.At(ox+c, oy+r) - pred[r][c]
						}
					}
					levels := datapath.Quant(datapath.Forward4x4(residual), qp)
					for r := 0; r < 4; r++ {
						for c := 0; c < 4; c++ {
							if levels[r][c] != 0 {
								res.Levels++
							}
						}
					}
					rec := datapath.Inverse4x4(datapath.Dequant(levels, qp))
					for r := 0; r < 4; r++ {
						for c := 0; c < 4; c++ {
							recon.Pix[(oy+r)*recon.W+ox+c] = uint8(datapath.Clip255(pred[r][c] + rec[r][c]))
						}
					}
				}
			}
		}
	}
	res.PSNR = PSNR(cur, recon)
	return res
}

// predictBlock forms the 4x4 prediction: motion-compensated from the
// reference for inter macroblocks, DC prediction from the already
// reconstructed neighbours for intra macroblocks.
func predictBlock(ref, recon *Frame, a Analysis, ox, oy int) datapath.Block4 {
	var pred datapath.Block4
	if !a.Intra {
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				pred[r][c] = ref.At(ox+a.MVx+c, oy+a.MVy+r)
			}
		}
		return pred
	}
	// Intra DC: average of the reconstructed top row and left column
	// neighbours (128 when unavailable at the frame border).
	var top, left [4]int
	for i := 0; i < 4; i++ {
		if oy > 0 {
			top[i] = int(recon.Pix[(oy-1)*recon.W+clampInt(ox+i, 0, recon.W-1)])
		} else {
			top[i] = 128
		}
		if ox > 0 {
			left[i] = int(recon.Pix[clampInt(oy+i, 0, recon.H-1)*recon.W+ox-1])
		} else {
			left[i] = 128
		}
	}
	dc := (datapath.PredHDC(left) + datapath.PredVDC(top) + 1) / 2
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			pred[r][c] = dc
		}
	}
	return pred
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// PSNR computes the luma peak signal-to-noise ratio between two frames of
// identical geometry.
func PSNR(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("video: PSNR of mismatched frames")
	}
	var sse float64
	for i := range a.Pix {
		d := float64(int(a.Pix[i]) - int(b.Pix[i]))
		sse += d * d
	}
	if sse == 0 {
		return math.Inf(1)
	}
	mse := sse / float64(len(a.Pix))
	return 10 * math.Log10(255*255/mse)
}
