package video

import (
	"strings"
	"testing"

	"rispp/internal/datapath"
)

func TestEncodeSequenceClosedLoop(t *testing.T) {
	scene := Scene{W: 128, H: 96, Seed: 21, Objects: 2, PanX: 1}
	res := EncodeSequence(scene, 5, 16, 4)
	if len(res.Frames) != 5 {
		t.Fatalf("frames = %d", len(res.Frames))
	}
	if res.AvgPSNR < 30 {
		t.Fatalf("avg PSNR = %.1f dB, reconstruction chain is drifting", res.AvgPSNR)
	}
	// Quality must not collapse over the sequence (no drift between the
	// encoder's reference chain and the reconstructions).
	first, last := res.Frames[0].PSNR, res.Frames[len(res.Frames)-1].PSNR
	if last < first-6 {
		t.Fatalf("PSNR drifted from %.1f to %.1f dB", first, last)
	}
	if !strings.Contains(res.String(), "frames") {
		t.Fatal("String broken")
	}
}

func TestEncodeSequenceQPTradeoff(t *testing.T) {
	scene := Scene{W: 96, H: 96, Seed: 22, Objects: 2, PanX: 0.8}
	fine := EncodeSequence(scene, 3, 8, 4)
	coarse := EncodeSequence(scene, 3, 32, 4)
	if fine.AvgPSNR <= coarse.AvgPSNR {
		t.Fatalf("fine QP not higher quality: %.1f vs %.1f dB", fine.AvgPSNR, coarse.AvgPSNR)
	}
	if fine.Levels <= coarse.Levels {
		t.Fatalf("fine QP not more levels: %d vs %d", fine.Levels, coarse.Levels)
	}
}

func TestDeblockSmoothsBlockEdges(t *testing.T) {
	// Construct a frame with a hard step exactly at a macroblock boundary;
	// the loop filter must soften it.
	f := &Frame{W: 64, H: 32, Pix: make([]uint8, 64*32)}
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			v := uint8(70)
			if x >= 16 {
				v = 78 // mild blocking artifact, below the strong-filter threshold
			}
			f.Pix[y*f.W+x] = v
		}
	}
	before := datapath.Abs(f.At(15, 8) - f.At(16, 8))
	Deblock(f)
	after := datapath.Abs(f.At(15, 8) - f.At(16, 8))
	if after >= before {
		t.Fatalf("edge step not reduced: %d -> %d", before, after)
	}
}

func TestDeblockLeavesRealEdgesAlone(t *testing.T) {
	// A strong content edge (gradient above α) must not be filtered.
	f := &Frame{W: 64, H: 32, Pix: make([]uint8, 64*32)}
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			v := uint8(10)
			if x >= 16 {
				v = 240
			}
			f.Pix[y*f.W+x] = v
		}
	}
	orig := append([]uint8(nil), f.Pix...)
	Deblock(f)
	for i := range orig {
		if f.Pix[i] != orig[i] {
			t.Fatal("deblocking altered a real edge")
		}
	}
}

func TestDeblockFlatFrameUnchanged(t *testing.T) {
	f := &Frame{W: 48, H: 48, Pix: make([]uint8, 48*48)}
	for i := range f.Pix {
		f.Pix[i] = 123
	}
	Deblock(f)
	for i := range f.Pix {
		if f.Pix[i] != 123 {
			t.Fatal("deblocking altered a flat frame")
		}
	}
}
