package video

import (
	"fmt"

	"rispp/internal/datapath"
)

// SequenceResult summarizes a multi-frame encode.
type SequenceResult struct {
	Frames  []EncodeResult
	AvgPSNR float64
	Levels  int
}

// EncodeSequence runs the complete closed-loop toy codec over a scene:
// every frame predicts from the previous *reconstruction* (as a real
// encoder must, so encoder and decoder stay in sync), codes the residuals,
// and applies the BS4 in-loop deblocking filter across macroblock edges
// before the frame becomes the next reference.
func EncodeSequence(scene Scene, frames, qp, searchRange int) SequenceResult {
	var res SequenceResult
	ref := scene.Frame(0) // frame 0 is transmitted raw in this toy model
	for f := 1; f <= frames; f++ {
		cur := scene.Frame(f)
		er := EncodeFrame(ref, cur, qp, searchRange)
		Deblock(er.Recon)
		er.PSNR = PSNR(cur, er.Recon) // PSNR after the loop filter
		res.Frames = append(res.Frames, er)
		res.AvgPSNR += er.PSNR
		res.Levels += er.Levels
		ref = er.Recon
	}
	if len(res.Frames) > 0 {
		res.AvgPSNR /= float64(len(res.Frames))
	}
	return res
}

// Deblock applies the strong (BS4) deblocking filter to the vertical and
// horizontal macroblock edges of a reconstructed frame, in place — the
// Loop Filter hot spot's actual work. Edges are filtered only where the
// LFCond gradient conditions hold (α = 40, β = 10, a mid-QP setting).
func Deblock(f *Frame) {
	const alpha, beta = 40, 10
	// Vertical edges between macroblock columns.
	for x := MBSize; x < f.W; x += MBSize {
		for y := 0; y < f.H; y++ {
			deblockEdge(f, x, y, 1, 0, alpha, beta)
		}
	}
	// Horizontal edges between macroblock rows.
	for y := MBSize; y < f.H; y += MBSize {
		for x := 0; x < f.W; x++ {
			deblockEdge(f, x, y, 0, 1, alpha, beta)
		}
	}
}

// deblockEdge filters one sample line crossing the edge at (x, y); (dx, dy)
// is the direction across the edge.
func deblockEdge(f *Frame, x, y, dx, dy, alpha, beta int) {
	at := func(k int) int { // k < 0: p side; k ≥ 0: q side
		return f.At(x+k*dx, y+k*dy)
	}
	p0, p1 := at(-1), at(-2)
	q0, q1 := at(0), at(1)
	if !datapath.LFCond(p0, q0, p1, q1, alpha, beta) {
		return
	}
	// Additional strong-filter threshold of the BS4 path.
	if datapath.Abs(p0-q0) >= (alpha>>2)+2 {
		return
	}
	p := [4]int{p0, p1, at(-3), at(-4)}
	q := [4]int{q0, q1, at(2), at(3)}
	pf, qf := datapath.DeblockBS4(p, q)
	set := func(k, v int) {
		xx, yy := x+k*dx, y+k*dy
		if xx >= 0 && xx < f.W && yy >= 0 && yy < f.H {
			f.Pix[yy*f.W+xx] = uint8(datapath.Clip255(v))
		}
	}
	set(-1, pf[0])
	set(-2, pf[1])
	set(-3, pf[2])
	set(0, qf[0])
	set(1, qf[1])
	set(2, qf[2])
}

func (r SequenceResult) String() string {
	return fmt.Sprintf("%d frames, avg PSNR %.2f dB, %d coefficient levels",
		len(r.Frames), r.AvgPSNR, r.Levels)
}
