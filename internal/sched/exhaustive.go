package sched

import (
	"fmt"

	"rispp/internal/isa"
	"rispp/internal/molecule"
)

// LoadCost returns the reconfiguration time of one Atom in cycles.
type LoadCost func(isa.AtomID) int64

// costModel is the clairvoyant-rate execution model used to define schedule
// optimality: every requested SI executes continuously at a rate
// proportional to its expected executions while Atoms load, so the cost of
// a schedule is the time integral of the weighted SI latencies over the
// composition window:
//
//	cost = Σ_steps loadTime(step) · Σ_si expected(si) · latency_si(state)
//
// The model is exactly what an optimal schedule needs "precise future
// knowledge" for (Section 4.2); it upper-bounds the quality any realistic
// scheduler can reach.
type costModel struct {
	reqs []Request
	cost LoadCost
}

func (cm *costModel) rate(avail molecule.Vector) int64 {
	var r int64
	for i := range cm.reqs {
		r += cm.reqs[i].Expected * int64(cm.reqs[i].SI.LatencyWith(avail))
	}
	return r
}

func (cm *costModel) loadTime(add molecule.Vector) int64 {
	var t int64
	for _, u := range add.Units() {
		t += cm.cost(isa.AtomID(u))
	}
	return t
}

// EvalCost evaluates an Atom loading sequence under the clairvoyant-rate
// cost model. It is used to compare schedulers against the exhaustive
// optimum.
func EvalCost(seq []isa.AtomID, reqs []Request, avail molecule.Vector, cost LoadCost) int64 {
	cm := &costModel{reqs: reqs, cost: cost}
	a := avail.Clone()
	var total int64
	for _, atom := range seq {
		total += cost(atom) * cm.rate(a)
		a = a.Add(molecule.Unit(int(atom), a.Len()))
	}
	return total
}

// Exhaustive finds a cost-optimal Atom loading sequence by depth-first
// search with memoization over reachable availability states. It explores
// Molecule upgrade steps (like the realistic schedulers) but with full
// knowledge of the cost model, so it lower-bounds the achievable cost on
// that model. MaxStates bounds the search; Schedule returns an error when
// the instance is too large.
type Exhaustive struct {
	Cost      LoadCost
	MaxStates int // 0 means DefaultMaxStates
}

// DefaultMaxStates bounds the memoization table of Exhaustive.
const DefaultMaxStates = 1 << 18

func (Exhaustive) Name() string { return "optimal" }

type exhResult struct {
	cost int64
	step isa.Molecule // chosen Molecule; SI < 0 sentinel when terminal
	stop bool
}

// Schedule returns the optimal loading sequence, its model cost, and an
// error if the state space exceeded MaxStates.
func (e Exhaustive) Schedule(reqs []Request, avail molecule.Vector) ([]isa.AtomID, int64, error) {
	if e.Cost == nil {
		return nil, 0, fmt.Errorf("sched: Exhaustive requires a LoadCost")
	}
	maxStates := e.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	cm := &costModel{reqs: reqs, cost: e.Cost}
	cands := append([]isa.Molecule(nil), newState(NewScratch(), reqs, avail).candidates()...)
	memo := make(map[string]exhResult)

	var solve func(avail molecule.Vector) (exhResult, error)
	solve = func(avail molecule.Vector) (exhResult, error) {
		key := avail.String()
		if r, ok := memo[key]; ok {
			return r, nil
		}
		if len(memo) >= maxStates {
			return exhResult{}, fmt.Errorf("sched: Exhaustive exceeded %d states", maxStates)
		}
		memo[key] = exhResult{stop: true} // cycle guard; overwritten below
		// The scheduling state is fully determined by the availability
		// vector: newState recomputes every SI's best latency as that of its
		// fastest available Molecule, which makes memoization on avail exact
		// (slightly sharper than the committed-Molecule tracking of Figure 6).
		st := newState(NewScratch(), reqs, avail)
		live := clean(append([]isa.Molecule(nil), cands...), st)
		best := exhResult{stop: true}
		found := false
		for _, o := range live {
			add := avail.Sub(o.Atoms)
			stepCost := cm.loadTime(add) * cm.rate(avail)
			sub, err := solve(avail.Sup(o.Atoms))
			if err != nil {
				return exhResult{}, err
			}
			total := stepCost + sub.cost
			if !found || total < best.cost {
				best = exhResult{cost: total, step: o}
				found = true
			}
		}
		memo[key] = best
		return best, nil
	}

	r, err := solve(avail.Clone())
	if err != nil {
		return nil, 0, err
	}
	totalCost := r.cost

	// Reconstruct the sequence by replaying the memoized decisions.
	a := avail.Clone()
	var seq []isa.AtomID
	for {
		r, ok := memo[a.String()]
		if !ok || r.stop {
			break
		}
		for _, u := range a.Sub(r.step.Atoms).Units() {
			seq = append(seq, isa.AtomID(u))
		}
		a = a.Sup(r.step.Atoms)
	}
	return seq, totalCost, nil
}
