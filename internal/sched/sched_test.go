package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/molecule"
)

// fig4ISA builds the single-SI scenario of the paper's Figure 4: an SI with
// two Atom types and the Molecule chain m1=(1,2) < m2=(2,2) < m3=(3,3),
// where m3 was selected. It optionally includes the incomparable candidate
// m4=(1,3) that is slower than m2.
func fig4ISA(withM4 bool) *isa.ISA {
	mols := []isa.Molecule{
		{SI: 0, Atoms: molecule.Of(1, 2), Latency: 100},
		{SI: 0, Atoms: molecule.Of(2, 2), Latency: 60},
		{SI: 0, Atoms: molecule.Of(3, 3), Latency: 30},
	}
	if withM4 {
		mols = []isa.Molecule{
			mols[0],
			{SI: 0, Atoms: molecule.Of(1, 3), Latency: 80}, // m4: worse than m2
			mols[1],
			mols[2],
		}
	}
	is := &isa.ISA{
		Name: "fig4",
		Atoms: []isa.AtomType{
			{ID: 0, Name: "A1", BitstreamBytes: 60488, Slices: 421, LUTs: 839, FFs: 45},
			{ID: 1, Name: "A2", BitstreamBytes: 60488, Slices: 421, LUTs: 839, FFs: 45},
		},
		SIs: []isa.SI{{
			ID: 0, Name: "SI1", HotSpot: 0, SWLatency: 500, Molecules: mols,
		}},
		HotSpots: []isa.HotSpot{{ID: 0, Name: "hot", SIs: []isa.SIID{0}}},
	}
	if err := is.Validate(); err != nil {
		panic(err)
	}
	return is
}

// twoSIISA builds the two-SI scenario of Figure 5: two SIs over two shared
// Atom types, each with a small and the selected big Molecule.
func twoSIISA() *isa.ISA {
	is := &isa.ISA{
		Name: "fig5",
		Atoms: []isa.AtomType{
			{ID: 0, Name: "A1", BitstreamBytes: 60488},
			{ID: 1, Name: "A2", BitstreamBytes: 60488},
		},
		SIs: []isa.SI{
			{ID: 0, Name: "SI1", HotSpot: 0, SWLatency: 1000, Molecules: []isa.Molecule{
				{SI: 0, Atoms: molecule.Of(1, 0), Latency: 300},
				{SI: 0, Atoms: molecule.Of(2, 1), Latency: 150},
				{SI: 0, Atoms: molecule.Of(3, 1), Latency: 90},
			}},
			{ID: 1, Name: "SI2", HotSpot: 0, SWLatency: 800, Molecules: []isa.Molecule{
				{SI: 1, Atoms: molecule.Of(0, 1), Latency: 400},
				{SI: 1, Atoms: molecule.Of(1, 2), Latency: 200},
			}},
		},
		HotSpots: []isa.HotSpot{{ID: 0, Name: "hot", SIs: []isa.SIID{0, 1}}},
	}
	if err := is.Validate(); err != nil {
		panic(err)
	}
	return is
}

func reqsFor(is *isa.ISA, expected ...int64) []Request {
	var reqs []Request
	for i := range is.SIs {
		si := &is.SIs[i]
		reqs = append(reqs, Request{SI: si, Selected: si.Fastest(), Expected: expected[i]})
	}
	return reqs
}

func apply(seq []isa.AtomID, avail molecule.Vector) molecule.Vector {
	a := avail.Clone()
	for _, atom := range seq {
		a = a.Add(molecule.Unit(int(atom), a.Len()))
	}
	return a
}

func TestNewFactory(t *testing.T) {
	for _, name := range Names {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("New(bogus) did not fail")
	}
}

func TestAllSchedulersProduceValidSchedules(t *testing.T) {
	scenarios := []struct {
		name string
		is   *isa.ISA
		exp  []int64
	}{
		{"fig4", fig4ISA(true), []int64{1000}},
		{"fig5", twoSIISA(), []int64{1000, 400}},
	}
	for _, sc := range scenarios {
		for _, name := range Names {
			s, _ := New(name)
			reqs := reqsFor(sc.is, sc.exp...)
			avail := molecule.New(sc.is.Dim())
			seq := s.Schedule(reqs, avail)
			if err := Valid(seq, reqs, avail); err != nil {
				t.Errorf("%s on %s: invalid schedule: %v (seq %v)", name, sc.name, err, seq)
			}
		}
	}
}

func TestH264FullHotSpotSchedulesValid(t *testing.T) {
	is := isa.H264()
	for _, h := range is.HotSpots {
		var reqs []Request
		for _, si := range is.HotSpotSIs(h.ID) {
			reqs = append(reqs, Request{SI: si, Selected: si.Fastest(), Expected: 1000})
		}
		avail := molecule.New(is.Dim())
		for _, name := range Names {
			s, _ := New(name)
			seq := s.Schedule(reqs, avail)
			if err := Valid(seq, reqs, avail); err != nil {
				t.Errorf("%s on hot spot %s: %v", name, h.Name, err)
			}
			if len(seq) == 0 {
				t.Errorf("%s on hot spot %s: empty schedule", name, h.Name)
			}
		}
	}
}

func TestSchedulersAreDeterministic(t *testing.T) {
	is := isa.H264()
	var reqs []Request
	for _, si := range is.HotSpotSIs(isa.HotSpotEE) {
		reqs = append(reqs, Request{SI: si, Selected: si.Fastest(), Expected: int64(100 * (int(si.ID) + 1))})
	}
	avail := molecule.New(is.Dim())
	for _, name := range Names {
		s, _ := New(name)
		a := s.Schedule(reqs, avail)
		b := s.Schedule(reqs, avail)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s is not deterministic", name)
		}
	}
}

// TestFig4GoodScheduleUpgradesEarly reproduces the core claim of Figure 4:
// a good schedule makes intermediate Molecules available early. With HEF,
// after 3 Atom loads Molecule m1=(1,2) must be available, after 4 loads
// m2=(2,2), and after all 6 loads the selected m3=(3,3).
func TestFig4GoodScheduleUpgradesEarly(t *testing.T) {
	is := fig4ISA(false)
	reqs := reqsFor(is, 1000)
	avail := molecule.New(2)
	s, _ := New("HEF")
	seq := s.Schedule(reqs, avail)
	if len(seq) != 6 {
		t.Fatalf("schedule length = %d, want 6 Atom loads", len(seq))
	}
	si := &is.SIs[0]
	checkpoints := []struct {
		afterLoads  int
		wantLatency int
	}{
		{3, 100}, // m1 available
		{4, 60},  // m2 available
		{6, 30},  // m3 available
	}
	for _, cp := range checkpoints {
		a := apply(seq[:cp.afterLoads], avail)
		if got := si.LatencyWith(a); got != cp.wantLatency {
			t.Errorf("after %d loads: latency %d, want %d (avail %v)", cp.afterLoads, got, cp.wantLatency, a)
		}
	}
}

// TestFig4M4Cleaning reproduces the discussion around equation (4): the
// candidate m4=(1,3) is slower than m2=(2,2) and must be cleaned once m2 is
// the best available Molecule — but starting from a=(0,3), m4 is the
// cheaper upgrade and may be scheduled first.
func TestFig4M4Cleaning(t *testing.T) {
	is := fig4ISA(true)
	si := &is.SIs[0]
	reqs := reqsFor(is, 1000)

	// From scratch, m2 (latency 60) is committed before m4 could help, so
	// m4 must never appear: the final availability is exactly sup = (3,3).
	s, _ := New("HEF")
	seq := s.Schedule(reqs, molecule.New(2))
	if got := apply(seq, molecule.New(2)); !got.Equal(molecule.Of(3, 3)) {
		t.Errorf("from scratch: composed %v, want (3, 3)", got)
	}

	// From a=(0,3), |a ⊖ m4| = 1 < |a ⊖ m2| = 2: HEF's benefit (improvement
	// relativized by additional Atoms) prefers the cheap m4 step first.
	avail := molecule.Of(0, 3)
	seq = s.Schedule(reqs, avail)
	first := apply(seq[:1], avail)
	if got := si.LatencyWith(first); got != 80 {
		t.Errorf("first upgrade from (0,3): latency %d, want 80 via m4", got)
	}
	if err := Valid(seq, reqs, avail); err != nil {
		t.Errorf("invalid schedule: %v", err)
	}
}

// TestASFAcceleratesAllSIsFirst: the defining property of ASF (and SJF):
// after the first phase every SI has some hardware Molecule before any SI
// is upgraded to its full Molecule.
func TestASFAcceleratesAllSIsFirst(t *testing.T) {
	is := twoSIISA()
	reqs := reqsFor(is, 1000, 400)
	avail := molecule.New(2)
	for _, name := range []string{"ASF", "SJF"} {
		s, _ := New(name)
		seq := s.Schedule(reqs, avail)
		// Find when each SI first leaves software, and when any SI reaches
		// its selected Molecule.
		firstHW := map[isa.SIID]int{}
		reachedFull := -1
		for k := 1; k <= len(seq); k++ {
			a := apply(seq[:k], avail)
			for i := range is.SIs {
				si := &is.SIs[i]
				if _, ok := si.FastestAvailable(a); ok {
					if _, seen := firstHW[si.ID]; !seen {
						firstHW[si.ID] = k
					}
				}
				if si.LatencyWith(a) == si.Fastest().Latency && reachedFull < 0 {
					reachedFull = k
				}
			}
		}
		for i := range is.SIs {
			if firstHW[is.SIs[i].ID] > reachedFull {
				t.Errorf("%s: SI %q still in software when another SI was fully upgraded", name, is.SIs[i].Name)
			}
		}
	}
}

// TestFSFRFinishesFirstSIBeforeSecond: the defining property of FSFR.
func TestFSFRFinishesFirstSIBeforeSecond(t *testing.T) {
	is := twoSIISA()
	reqs := reqsFor(is, 1000, 400) // SI1 is more important
	avail := molecule.New(2)
	s, _ := New("FSFR")
	seq := s.Schedule(reqs, avail)

	si1, si2 := &is.SIs[0], &is.SIs[1]
	full1, hw2 := -1, -1
	for k := 1; k <= len(seq); k++ {
		a := apply(seq[:k], avail)
		if full1 < 0 && si1.LatencyWith(a) == si1.Fastest().Latency {
			full1 = k
		}
		if hw2 < 0 {
			if _, ok := si2.FastestAvailable(a); ok {
				hw2 = k
			}
		}
	}
	if full1 < 0 || hw2 < 0 {
		t.Fatalf("schedule incomplete: full1=%d hw2=%d", full1, hw2)
	}
	if hw2 < full1 {
		// SI2 may become available incidentally through shared Atoms, but
		// with this ISA SI2 needs Atom type 2 which SI1's chain also loads;
		// assert FSFR did not deliberately accelerate SI2 first.
		a := apply(seq[:hw2], avail)
		if si1.LatencyWith(a) == si1.SWLatency {
			t.Errorf("FSFR accelerated SI2 (at %d) while SI1 still in software", hw2)
		}
	}
}

// TestHEFPrefersImportantSI: with extremely skewed expected executions, the
// first Atoms HEF loads must accelerate the hot SI.
func TestHEFPrefersImportantSI(t *testing.T) {
	is := twoSIISA()
	avail := molecule.New(2)
	s, _ := New("HEF")

	reqs := reqsFor(is, 10000, 1)
	seq := s.Schedule(reqs, avail)
	a := apply(seq[:1], avail)
	if _, ok := is.SIs[0].FastestAvailable(a); !ok {
		t.Errorf("HEF first load %v does not accelerate the hot SI1", seq[:1])
	}

	reqs = reqsFor(is, 1, 10000)
	seq = s.Schedule(reqs, avail)
	a = apply(seq[:1], avail)
	if _, ok := is.SIs[1].FastestAvailable(a); !ok {
		t.Errorf("HEF first load %v does not accelerate the hot SI2", seq[:1])
	}
}

// TestHEFSkipsZeroExpectedSIs: Figure 6 requires benefit > 0, so an SI that
// is not expected to execute is never composed.
func TestHEFSkipsZeroExpectedSIs(t *testing.T) {
	is := twoSIISA()
	reqs := reqsFor(is, 1000, 0)
	avail := molecule.New(2)
	s, _ := New("HEF")
	seq := s.Schedule(reqs, avail)
	a := apply(seq, avail)
	// SI1's selected Molecule must be reached...
	if got := is.SIs[0].LatencyWith(a); got != is.SIs[0].Fastest().Latency {
		t.Errorf("SI1 not fully composed: latency %d", got)
	}
	// ...but no Atom beyond SI1's needs may be loaded.
	if !a.Leq(is.SIs[0].Fastest().Atoms) {
		t.Errorf("HEF loaded Atoms %v beyond the needs of the only expected SI %v", a, is.SIs[0].Fastest().Atoms)
	}
}

func TestScheduleFromPartialAvailability(t *testing.T) {
	// Atoms left over from a previous hot spot reduce the work.
	is := twoSIISA()
	reqs := reqsFor(is, 1000, 400)
	full := molecule.Of(3, 2) // sup of both selected Molecules
	for _, name := range Names {
		s, _ := New(name)
		seq := s.Schedule(reqs, molecule.Of(2, 1))
		if want := full.Determinant() - 3; len(seq) != want {
			t.Errorf("%s: schedule length %d, want %d", name, len(seq), want)
		}
		if err := Valid(seq, reqs, molecule.Of(2, 1)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestScheduleNothingToDo(t *testing.T) {
	is := twoSIISA()
	reqs := reqsFor(is, 1000, 400)
	avail := molecule.Of(3, 2)
	for _, name := range Names {
		s, _ := New(name)
		if seq := s.Schedule(reqs, avail); len(seq) != 0 {
			t.Errorf("%s scheduled %v although everything is available", name, seq)
		}
	}
}

func TestEmptyRequests(t *testing.T) {
	for _, name := range Names {
		s, _ := New(name)
		if seq := s.Schedule(nil, molecule.New(4)); len(seq) != 0 {
			t.Errorf("%s scheduled %v for no requests", name, seq)
		}
	}
}

func TestDivisionFreeBenefitEquivalence(t *testing.T) {
	// The hardware HEF avoids the division by comparing (a·b)·f > (d·e)·c.
	// Check the integer comparison agrees with the float division on random
	// inputs in the realistic value ranges.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100000; i++ {
		e1, e2 := rng.Int63n(50000), rng.Int63n(50000)
		d1, d2 := rng.Intn(2000), rng.Intn(2000)
		c1, c2 := 1+rng.Intn(40), 1+rng.Intn(40)
		intCmp := e1*int64(d1)*int64(c2) > e2*int64(d2)*int64(c1)
		f1 := BenefitFloat(e1, d1, 0, c1)
		f2 := BenefitFloat(e2, d2, 0, c2)
		// Only strict float inequality is meaningful; equality maps to
		// "not greater" in both schemes.
		if intCmp != (f1 > f2) && f1 != f2 {
			t.Fatalf("mismatch: e1=%d d1=%d c1=%d vs e2=%d d2=%d c2=%d", e1, d1, c1, e2, d2, c2)
		}
	}
	if BenefitFloat(10, 100, 50, 0) != 0 {
		t.Fatal("BenefitFloat with zero Atoms should be 0")
	}
}

func TestCandidatesEquation3(t *testing.T) {
	is := fig4ISA(true)
	reqs := reqsFor(is, 100)
	c := newState(NewScratch(), reqs, molecule.New(2)).candidates()
	if len(c) != 4 { // m1, m4, m2, m3 all ≤ selected (3,3)
		t.Fatalf("candidates = %d, want 4", len(c))
	}
	// Selecting only m2=(2,2) must exclude m4=(1,3) (not ≤ m2).
	reqs[0].Selected = is.SIs[0].Molecules[2] // (2,2), latency 60
	if !reqs[0].Selected.Atoms.Equal(molecule.Of(2, 2)) {
		t.Fatalf("unexpected Molecule ordering: %v", reqs[0].Selected.Atoms)
	}
	c = newState(NewScratch(), reqs, molecule.New(2)).candidates()
	for _, m := range c {
		if m.Atoms.Equal(molecule.Of(1, 3)) {
			t.Error("m4 not filtered by equation (3)")
		}
		if m.Atoms.Equal(molecule.Of(3, 3)) {
			t.Error("m3 not filtered by equation (3)")
		}
	}
	if len(c) != 2 {
		t.Fatalf("candidates = %d, want 2 (m1, m2)", len(c))
	}
}

func TestCleanEquation4(t *testing.T) {
	is := fig4ISA(true)
	reqs := reqsFor(is, 100)
	st := newState(NewScratch(), reqs, molecule.Of(2, 2)) // m2 available: bestLat 60
	c := clean(st.candidates(), st)
	// m1 (≤ avail), m4 (slower than 60) and m2 (≤ avail) must be gone.
	if len(c) != 1 || !c[0].Atoms.Equal(molecule.Of(3, 3)) {
		t.Fatalf("cleaned candidates = %v, want only m3", c)
	}
}

func TestValidDetectsBadSequences(t *testing.T) {
	is := twoSIISA()
	reqs := reqsFor(is, 10, 10)
	avail := molecule.New(2)
	// Too short: SIs stay in software.
	if err := Valid([]isa.AtomID{0}, reqs, avail); err == nil {
		t.Error("Valid accepted an incomplete sequence")
	}
	// Overshoot: loads more than sup requires.
	over := []isa.AtomID{0, 0, 0, 0, 1, 1, 1}
	if err := Valid(over, reqs, avail); err == nil {
		t.Error("Valid accepted an overshooting sequence")
	}
}

func TestHEFUnnormalizedVariant(t *testing.T) {
	s, err := New("HEF-unnorm")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "HEF-unnorm" {
		t.Fatalf("Name = %q", s.Name())
	}
	// Valid schedules, like the real HEF.
	is := twoSIISA()
	reqs := reqsFor(is, 1000, 400)
	avail := molecule.New(2)
	if err := Valid(s.Schedule(reqs, avail), reqs, avail); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizationMattersForCheapUpgrades(t *testing.T) {
	// SI-A offers a 300-cycle improvement for one Atom (300/Atom); SI-B a
	// 1100-cycle improvement for five Atoms (220/Atom). Normalized HEF
	// upgrades the efficient SI-A first; the unnormalized variant chases
	// SI-B's bigger raw improvement and leaves SI-A in software for five
	// Atom loads.
	is := &isa.ISA{
		Name: "norm-ablation",
		Atoms: []isa.AtomType{
			{ID: 0, Name: "A", BitstreamBytes: 60488},
			{ID: 1, Name: "B", BitstreamBytes: 60488},
		},
		SIs: []isa.SI{
			{ID: 0, Name: "cheap", HotSpot: 0, SWLatency: 400, Molecules: []isa.Molecule{
				{SI: 0, Atoms: molecule.Of(1, 0), Latency: 100},
			}},
			{ID: 1, Name: "big", HotSpot: 0, SWLatency: 1200, Molecules: []isa.Molecule{
				{SI: 1, Atoms: molecule.Of(0, 5), Latency: 100},
			}},
		},
		HotSpots: []isa.HotSpot{{ID: 0, Name: "hot", SIs: []isa.SIID{0, 1}}},
	}
	if err := is.Validate(); err != nil {
		t.Fatal(err)
	}
	reqs := reqsFor(is, 1, 1)
	avail := molecule.New(2)

	norm, _ := New("HEF")
	unnorm, _ := New("HEF-unnorm")
	nSeq := norm.Schedule(reqs, avail)
	uSeq := unnorm.Schedule(reqs, avail)

	if nSeq[0] != 0 {
		t.Fatalf("normalized HEF first load = atom %d, want the cheap SI's Atom", nSeq[0])
	}
	if uSeq[0] != 1 {
		t.Fatalf("unnormalized HEF first load = atom %d, want the big SI's Atom", uSeq[0])
	}
	// Both remain valid schedules.
	for _, seq := range [][]isa.AtomID{nSeq, uSeq} {
		if err := Valid(seq, reqs, avail); err != nil {
			t.Fatal(err)
		}
	}
}
