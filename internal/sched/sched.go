// Package sched implements the Special Instruction Scheduler of the RISPP
// run-time system (paper Section 4): given the Molecules selected for the
// upcoming hot spot and the currently available Atoms, it determines the
// Atom loading sequence (the scheduling function SF of equation (1)).
//
// The package provides the three reference strategies the paper compares —
// First Select First Reconfigure (FSFR), Avoid Software First (ASF) and
// Smallest Job First (SJF) — and the paper's proposed Highest Efficiency
// First (HEF) algorithm (Figure 6), plus an exhaustive clairvoyant-rate
// scheduler used to measure HEF's optimality gap on small instances.
package sched

import (
	"fmt"

	"rispp/internal/isa"
	"rispp/internal/molecule"
)

// Request asks the scheduler to compose one selected Molecule. Expected is
// the monitor's forecast of SI executions in the upcoming hot spot; it
// weighs the upgrade priority.
type Request struct {
	SI       *isa.SI
	Selected isa.Molecule
	Expected int64
}

// Scheduler determines the Atom loading sequence for a set of requests.
// Implementations must be deterministic.
type Scheduler interface {
	Name() string
	// Schedule returns the ordered Atom loads (Unit-Molecules, condition
	// (2) of the paper applied to the upgrade steps actually chosen) that
	// compose the requested Molecules, given the Atoms in avail are already
	// loaded.
	Schedule(reqs []Request, avail molecule.Vector) []isa.AtomID
}

// Names lists the built-in scheduler names in the paper's presentation
// order.
var Names = []string{"FSFR", "ASF", "SJF", "HEF"}

// New returns the scheduler with the given name (case-sensitive, one of
// Names, or the ablation variant "HEF-unnorm").
func New(name string) (Scheduler, error) {
	switch name {
	case "FSFR":
		return fsfr{}, nil
	case "ASF":
		return asf{}, nil
	case "SJF":
		return sjf{}, nil
	case "HEF":
		return hef{normalize: true}, nil
	case "HEF-unnorm":
		// Ablation: the benefit without the ÷|a ⊖ o| relativization of
		// Figure 6 line 20 — greedy on raw expected improvement.
		return hef{normalize: false}, nil
	}
	return nil, fmt.Errorf("sched: unknown scheduler %q (want one of %v)", name, Names)
}

// Scratch is the reusable arena of the scheduling engine: every slice the
// scheduling loop of Figure 6 needs, grown on demand and recycled across
// calls. A run-time system that owns a Scratch and schedules through
// ScheduleInto performs no allocations in the steady state. A Scratch is
// not safe for concurrent use; the schedulers themselves stay stateless.
type Scratch struct {
	avail   molecule.Vector
	bestLat []int   // indexed by SIID
	reqIdx  []int32 // indexed by SIID; -1 = SI not requested
	out     []isa.AtomID
	cands   []isa.Molecule
	ids     []isa.SIID
	reqs    []Request // the request set of the current call (borrowed)

	// Kernel tables (kernels.go): per-candidate Atom deficit, forecast and
	// retirement flag, plus per-SI importance for the ordering sort.
	kAdd  []int32
	kExp  []int64
	kDead []bool
	kImp  []int64
}

// NewScratch returns an empty Scratch; it sizes itself from the first
// ScheduleInto call and grows as needed.
func NewScratch() *Scratch { return &Scratch{} }

// prepare sizes the arena for one scheduling call and seeds the per-SI
// state from the requests.
func (sc *Scratch) prepare(reqs []Request, avail molecule.Vector) {
	if cap(sc.avail) < avail.Len() {
		sc.avail = avail.Clone()
	} else {
		sc.avail = sc.avail[:avail.Len()]
		sc.avail.CopyFrom(avail)
	}
	nSIs := 0
	for i := range reqs {
		if n := int(reqs[i].SI.ID) + 1; n > nSIs {
			nSIs = n
		}
	}
	if cap(sc.bestLat) < nSIs {
		sc.bestLat = make([]int, nSIs)
		sc.reqIdx = make([]int32, nSIs)
	} else {
		sc.bestLat = sc.bestLat[:nSIs]
		sc.reqIdx = sc.reqIdx[:nSIs]
	}
	for i := range sc.reqIdx {
		sc.reqIdx[i] = -1
	}
	for i := range reqs {
		r := &reqs[i]
		sc.reqIdx[r.SI.ID] = int32(i)
		sc.bestLat[r.SI.ID] = r.SI.LatencyWith(avail)
	}
	sc.out = sc.out[:0]
	sc.cands = sc.cands[:0]
	sc.ids = sc.ids[:0]
}

// state is the shared scheduling engine state mirroring Figure 6: the Atoms
// already available or scheduled (a), and per SI the latency of the fastest
// available/scheduled Molecule (bestLatency). It is the Scratch itself —
// returning the same pointer keeps newState allocation-free.
type state = Scratch

func newState(sc *Scratch, reqs []Request, avail molecule.Vector) *state {
	sc.prepare(reqs, avail)
	sc.reqs = reqs
	return sc
}

func (st *state) byID(si isa.SIID) *Request { return &st.reqs[st.reqIdx[si]] }
func (st *state) bestLatOf(si isa.SIID) int { return st.bestLat[si] }

// commit schedules Molecule m: its additionally required Atoms a ⊖ m are
// appended to the loading sequence (in ascending Atom-type order) and the
// state is advanced (line 26–28 of Figure 6) — all in place.
func (st *state) commit(m isa.Molecule) {
	a := st.avail
	for i, c := range m.Atoms {
		for d := c - a[i]; d > 0; d-- {
			st.out = append(st.out, isa.AtomID(i))
		}
		if c > a[i] {
			a[i] = c
		}
	}
	if m.Latency < st.bestLat[m.SI] {
		st.bestLat[m.SI] = m.Latency
	}
}

// candidates computes M′ of equation (3): for every request, all Molecules
// of the same SI that are ≤ the selected Molecule. The result is in a
// deterministic canonical order (by SI, then slowest first), assembled in
// the scratch arena; the stable insertion sort (candidate sets are small)
// yields exactly the order sort.SliceStable produced.
func (st *state) candidates() []isa.Molecule {
	out := st.cands[:0]
	for _, r := range st.reqs {
		for _, o := range r.SI.Molecules {
			if o.Atoms.Leq(r.Selected.Atoms) {
				out = append(out, o)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && candLess(&out[j], &out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	st.cands = out
	return out
}

func candLess(a, b *isa.Molecule) bool {
	if a.SI != b.SI {
		return a.SI < b.SI
	}
	return a.Latency > b.Latency
}

// clean applies equation (4): drop candidates that are already available
// with the current (available ∪ scheduled) Atoms, and candidates that are
// not faster than the best available/scheduled Molecule of their SI.
func clean(cands []isa.Molecule, st *state) []isa.Molecule {
	out := cands[:0]
	for _, o := range cands {
		if o.Atoms.Leq(st.avail) {
			continue // o ≤ a: no additional Atoms required
		}
		if o.Latency >= st.bestLatOf(o.SI) {
			continue // no latency improvement
		}
		out = append(out, o)
	}
	return out
}

// importance ranks an SI for FSFR/ASF ordering: expected executions times
// the potential improvement the selected Molecule offers over the current
// state.
func importance(r *Request, st *state) int64 {
	improve := int64(st.bestLatOf(r.SI.ID) - r.Selected.Latency)
	if improve < 0 {
		improve = 0
	}
	return r.Expected * improve
}

// orderSIs returns the request SIs most-important-first (deterministic:
// ties broken by SI ID, so the order is unique and the in-place insertion
// sort reproduces the previous sort.SliceStable exactly).
func orderSIs(reqs []Request, st *state) []isa.SIID {
	ids := st.ids[:0]
	for i := range reqs {
		ids = append(ids, reqs[i].SI.ID)
	}
	less := func(a, b isa.SIID) bool {
		ia, ib := importance(st.byID(a), st), importance(st.byID(b), st)
		if ia != ib {
			return ia > ib
		}
		return a < b
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && less(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	st.ids = ids
	return ids
}

// smallestStep picks, among the candidates of SI si (or all SIs if si < 0),
// the Molecule with the fewest additionally required Atoms; ties are broken
// by the bigger performance improvement, then canonically. It returns the
// index into cands or -1.
func smallestStep(cands []isa.Molecule, st *state, si isa.SIID) int {
	best := -1
	var bestAdd, bestImprove int
	for i, o := range cands {
		if si >= 0 && o.SI != si {
			continue
		}
		add := st.avail.SubDet(o.Atoms)
		improve := st.bestLatOf(o.SI) - o.Latency
		if best < 0 || add < bestAdd || (add == bestAdd && improve > bestImprove) {
			best, bestAdd, bestImprove = i, add, improve
		}
	}
	return best
}

// run drives the generic scheduling loop of Figure 6 with a pluggable
// choice function. choose returns the index of the next Molecule to
// schedule, or -1 to stop.
func run(sc *Scratch, reqs []Request, avail molecule.Vector, choose func(cands []isa.Molecule, st *state) int) []isa.AtomID {
	st := newState(sc, reqs, avail)
	cands := st.candidates()
	for {
		cands = clean(cands, st)
		if len(cands) == 0 {
			break
		}
		i := choose(cands, st)
		if i < 0 {
			break
		}
		st.commit(cands[i])
	}
	return st.out
}

// ScheduleInto runs scheduler s with a caller-owned Scratch, so run-time
// systems that schedule at every hot-spot entry can do so allocation-free.
// The returned sequence aliases the Scratch and is only valid until its
// next use — callers must copy it (reconfig.Port.Schedule does). Schedulers
// that do not support scratch execution (e.g. the exhaustive reference)
// fall back to their plain Schedule.
func ScheduleInto(s Scheduler, sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	if ss, ok := s.(scratchScheduler); ok {
		return ss.schedule(sc, reqs, avail)
	}
	return s.Schedule(reqs, avail)
}

// ScheduleReference is ScheduleInto through the original choose-based
// reference loop instead of the specialized kernels. It exists for
// verification only: the kernels must emit the exact same Atom sequence
// (see kernels_test.go and the oracle corpus), and equivalence checkers
// outside this package call the reference through here.
func ScheduleReference(s Scheduler, sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	if ss, ok := s.(scratchScheduler); ok {
		return ss.scheduleGeneric(sc, reqs, avail)
	}
	return s.Schedule(reqs, avail)
}

// scratchScheduler is implemented by the built-in strategies: scheduling
// into caller-owned scratch with results identical to Schedule. schedule is
// the specialized kernel (kernels.go); scheduleGeneric the original
// choose-based loop, retained as the reference the equivalence property
// tests pin the kernels against.
type scratchScheduler interface {
	schedule(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID
	scheduleGeneric(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID
}

// --- FSFR: First Select First Reconfigure -------------------------------

// fsfr reconfigures the most important SI's selected Molecule completely
// before starting the next SI. The Atoms of one SI load in plain ascending
// type order — FSFR makes no effort to pass through intermediate Molecules,
// they become available only incidentally ("it strictly upgrades one SI
// after the other", Section 5).
type fsfr struct{}

func (fsfr) Name() string { return "FSFR" }

func (s fsfr) Schedule(reqs []Request, avail molecule.Vector) []isa.AtomID {
	return s.schedule(NewScratch(), reqs, avail)
}

func (fsfr) scheduleGeneric(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	st := newState(sc, reqs, avail)
	for _, si := range orderSIs(reqs, st) {
		st.commit(st.byID(si).Selected)
	}
	return st.out
}

// --- ASF: Avoid Software First -------------------------------------------

// asf first loads one accelerating Molecule for every SI (so no SI is stuck
// in software), then continues along the FSFR path.
type asf struct{}

func (asf) Name() string { return "ASF" }

func (s asf) Schedule(reqs []Request, avail molecule.Vector) []isa.AtomID {
	return s.schedule(NewScratch(), reqs, avail)
}

func (asf) scheduleGeneric(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	st := newState(sc, reqs, avail)
	cands := st.candidates()
	order := orderSIs(reqs, st)
	// Phase 1: one accelerating Molecule per SI — the nearest upgrade step
	// (fewest additional Atoms) — in plain program order, so no SI stays at
	// its slow (software or stale leftover) implementation for long. This
	// spends reconfiguration time on every SI, "even though some of them
	// are significantly less often executed than others are" (Section 5) —
	// the very drawback that lets FSFR overtake ASF at high AC counts.
	for i := range reqs {
		cands = clean(cands, st)
		if j := smallestStep(cands, st, reqs[i].SI.ID); j >= 0 {
			st.commit(cands[j])
		}
	}
	// Phase 2: follow the FSFR path for the remaining upgrades.
	for _, si := range order {
		st.commit(st.byID(si).Selected)
	}
	return st.out
}

// --- SJF: Smallest Job First ----------------------------------------------

// sjf first loads the smallest Molecule for each SI (like ASF), then always
// schedules the candidate requiring the fewest additional Atoms; ties go to
// the bigger performance improvement.
type sjf struct{}

func (sjf) Name() string { return "SJF" }

func (s sjf) Schedule(reqs []Request, avail molecule.Vector) []isa.AtomID {
	return s.schedule(NewScratch(), reqs, avail)
}

func (sjf) scheduleGeneric(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	st := newState(sc, reqs, avail)
	cands := st.candidates()
	for _, si := range orderSIs(reqs, st) {
		if _, ok := st.byID(si).SI.FastestAvailable(st.avail); ok {
			continue
		}
		cands = clean(cands, st)
		if i := smallestStep(cands, st, si); i >= 0 {
			st.commit(cands[i])
		}
	}
	for {
		cands = clean(cands, st)
		if len(cands) == 0 {
			break
		}
		i := smallestStep(cands, st, -1)
		if i < 0 {
			break
		}
		st.commit(cands[i])
	}
	return st.out
}

// --- HEF: Highest Efficiency First (Figure 6) -----------------------------

// hef schedules, in every step, the Molecule candidate with the highest
// benefit
//
//	benefit(o) = expected(SI(o)) · (bestLatency(SI(o)) − latency(o)) / |a ⊖ o|
//
// i.e. the performance improvement weighted by expected executions and
// relativized by the number of additionally required Atoms. The
// unnormalized ablation variant drops the division (every candidate's
// denominator is 1), showing why the per-Atom relativization matters.
type hef struct {
	normalize bool
}

func (s hef) Name() string {
	if s.normalize {
		return "HEF"
	}
	return "HEF-unnorm"
}

func (s hef) Schedule(reqs []Request, avail molecule.Vector) []isa.AtomID {
	return s.schedule(NewScratch(), reqs, avail)
}

func (s hef) scheduleGeneric(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	return run(sc, reqs, avail, func(cands []isa.Molecule, st *state) int {
		best := -1
		var bestNum, bestDen int64 // benefit as fraction bestNum/bestDen
		for i, o := range cands {
			r := st.byID(o.SI)
			num := r.Expected * int64(st.bestLatOf(o.SI)-o.Latency)
			den := int64(1)
			if s.normalize {
				den = int64(st.avail.SubDet(o.Atoms))
			}
			// Division-free comparison num/den > bestNum/bestDen, valid
			// because the number of additionally required Atoms is always
			// > 0 after cleaning (paper Section 5, Table 3 discussion).
			if best < 0 {
				if num > 0 {
					best, bestNum, bestDen = i, num, den
				}
				continue
			}
			if num*bestDen > bestNum*den {
				best, bestNum, bestDen = i, num, den
			}
		}
		return best
	})
}

// BenefitFloat computes the HEF benefit with a floating-point division; it
// exists to prove the division-free integer comparison makes identical
// decisions (ablation + unit test).
func BenefitFloat(expected int64, bestLat, lat, addAtoms int) float64 {
	if addAtoms <= 0 {
		return 0
	}
	return float64(expected) * float64(bestLat-lat) / float64(addAtoms)
}

// Valid checks that a loading sequence is a valid schedule in the sense of
// conditions (1) and (2) applied to the upgrade-step strategy of Section
// 4.3: after loading the sequence on top of avail, every requested SI runs
// at the latency of its selected Molecule, and no Atom was loaded beyond
// the requirement of sup(M) ⊖ avail.
func Valid(seq []isa.AtomID, reqs []Request, avail molecule.Vector) error {
	a := avail.Clone()
	loaded := molecule.New(avail.Len())
	for _, atom := range seq {
		u := molecule.Unit(int(atom), a.Len())
		a = a.Add(u)
		loaded = loaded.Add(u)
	}
	sup := molecule.New(avail.Len())
	for _, r := range reqs {
		sup = sup.Sup(r.Selected.Atoms)
		if got, want := r.SI.LatencyWith(a), r.Selected.Latency; got > want {
			return fmt.Errorf("sched: SI %q reaches latency %d, selected Molecule promises %d", r.SI.Name, got, want)
		}
	}
	if limit := avail.Sub(sup); !loaded.Leq(limit) {
		return fmt.Errorf("sched: sequence loads %v, exceeding the requirement %v", loaded, limit)
	}
	return nil
}
