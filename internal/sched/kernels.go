// Specialized scheduler kernels: the generic scheduling loop of Figure 6
// (run + clean + candLess + smallestStep) re-derives every comparison input
// per decision — |a ⊖ o| costs a full Atom-vector scan per candidate per
// round, and clean compacts the candidate slice each iteration. The kernels
// below compile those comparisons into flat integer tables precomputed once
// per (ISA, avail) shape on the reusable Scratch:
//
//	kAdd[c]  additionally required Atoms of candidate c (the |a ⊖ o| of the
//	         HEF denominator and the SJF/ASF step size), maintained
//	         incrementally per commit: only the Atom dimensions a commit
//	         actually raised are reconciled, so a decision costs
//	         O(candidates) instead of O(candidates · dim).
//	kExp[c]  forecast executions of candidate c's SI (constant per call).
//	kDead[c] candidate retired by equation (4); deadness is monotone within
//	         a call (avail only grows, bestLat only shrinks), so the fused
//	         clean+choose pass marks candidates dead with the current state
//	         exactly when the generic clean would have dropped them.
//	kImp[si] FSFR/ASF importance, precomputed so the ordering sort compares
//	         table entries instead of recomputing Expected·improvement per
//	         comparison.
//
// Candidates stay in the canonical candidates() order and every comparison
// replaces only on strictly-better, so first-wins tie-breaking is preserved
// verbatim; the generic implementations remain as scheduleGeneric for the
// equivalence property tests (mirroring how BenefitFloat anchors the
// division-free HEF comparator).
package sched

import (
	"rispp/internal/isa"
	"rispp/internal/molecule"
)

// buildKernel assembles the candidate tables for one scheduling call. Must
// run after newState; candidates() supplies the canonical order.
func (st *state) buildKernel() {
	cands := st.candidates()
	n := len(cands)
	if cap(st.kAdd) < n {
		st.kAdd = make([]int32, n)
		st.kExp = make([]int64, n)
		st.kDead = make([]bool, n)
	}
	st.kAdd = st.kAdd[:n]
	st.kExp = st.kExp[:n]
	st.kDead = st.kDead[:n]
	for c := range cands {
		st.kAdd[c] = int32(st.avail.SubDet(cands[c].Atoms))
		st.kExp[c] = st.byID(cands[c].SI).Expected
		st.kDead[c] = false
	}
}

// commitK is commit plus incremental kAdd maintenance: for every Atom
// dimension the commit raises from old to new, a live candidate needing o_d
// Atoms of that type loses min(o_d, new) − min(o_d, old) from its deficit.
func (st *state) commitK(ci int) {
	m := &st.cands[ci]
	a := st.avail
	for d, c := range m.Atoms {
		old := a[d]
		if c <= old {
			continue
		}
		for n := c - old; n > 0; n-- {
			st.out = append(st.out, isa.AtomID(d))
		}
		a[d] = c
		for j := range st.cands {
			if st.kDead[j] {
				continue
			}
			od := st.cands[j].Atoms[d]
			if od <= old {
				continue
			}
			dec := od - old
			if od > c {
				dec = c - old
			}
			st.kAdd[j] -= int32(dec)
		}
	}
	if m.Latency < st.bestLat[m.SI] {
		st.bestLat[m.SI] = m.Latency
	}
}

// retire applies equation (4) to candidate c against the current state and
// returns true when it is (now) dead. kAdd == 0 ⇔ o ≤ a (a zero Atom
// deficit is exactly the Leq(avail) clean condition).
func (st *state) retire(c int) bool {
	if st.kDead[c] {
		return true
	}
	o := &st.cands[c]
	if st.kAdd[c] == 0 || o.Latency >= st.bestLat[o.SI] {
		st.kDead[c] = true
		return true
	}
	return false
}

// orderSIsK is orderSIs with the importance of every request precomputed
// into kImp (indexed by SIID), so the insertion sort compares table entries.
func orderSIsK(reqs []Request, st *state) []isa.SIID {
	if cap(st.kImp) < len(st.bestLat) {
		st.kImp = make([]int64, len(st.bestLat))
	}
	st.kImp = st.kImp[:len(st.bestLat)]
	ids := st.ids[:0]
	for i := range reqs {
		id := reqs[i].SI.ID
		ids = append(ids, id)
		st.kImp[id] = importance(&reqs[i], st)
	}
	imp := st.kImp
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j], ids[j-1]
			if imp[a] > imp[b] || (imp[a] == imp[b] && a < b) {
				ids[j], ids[j-1] = b, a
			} else {
				break
			}
		}
	}
	st.ids = ids
	return ids
}

// smallestStepK is the fused clean+smallestStep pass: among live candidates
// (of SI si, or all SIs if si < 0), pick the one with the smallest Atom
// deficit, ties to the bigger improvement, first-wins in canonical order.
func smallestStepK(st *state, si isa.SIID) int {
	best := -1
	var bestAdd int32
	var bestImprove int
	for c := range st.cands {
		if st.retire(c) {
			continue
		}
		o := &st.cands[c]
		if si >= 0 && o.SI != si {
			continue
		}
		add := st.kAdd[c]
		improve := st.bestLat[o.SI] - o.Latency
		if best < 0 || add < bestAdd || (add == bestAdd && improve > bestImprove) {
			best, bestAdd, bestImprove = c, add, improve
		}
	}
	return best
}

// --- kernel schedule entry points ----------------------------------------

func (fsfr) schedule(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	st := newState(sc, reqs, avail)
	for _, si := range orderSIsK(reqs, st) {
		st.commit(st.byID(si).Selected)
	}
	return st.out
}

func (asf) schedule(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	st := newState(sc, reqs, avail)
	st.buildKernel()
	order := orderSIsK(reqs, st)
	for i := range reqs {
		if j := smallestStepK(st, reqs[i].SI.ID); j >= 0 {
			st.commitK(j)
		}
	}
	for _, si := range order {
		st.commit(st.byID(si).Selected)
	}
	return st.out
}

func (sjf) schedule(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	st := newState(sc, reqs, avail)
	st.buildKernel()
	for _, si := range orderSIsK(reqs, st) {
		if _, ok := st.byID(si).SI.FastestAvailable(st.avail); ok {
			continue
		}
		if i := smallestStepK(st, si); i >= 0 {
			st.commitK(i)
		}
	}
	for {
		i := smallestStepK(st, -1)
		if i < 0 {
			break
		}
		st.commitK(i)
	}
	return st.out
}

func (s hef) schedule(sc *Scratch, reqs []Request, avail molecule.Vector) []isa.AtomID {
	st := newState(sc, reqs, avail)
	st.buildKernel()
	for {
		best := -1
		var bestNum, bestDen int64
		for c := range st.cands {
			if st.retire(c) {
				continue
			}
			o := &st.cands[c]
			num := st.kExp[c] * int64(st.bestLat[o.SI]-o.Latency)
			den := int64(1)
			if s.normalize {
				den = int64(st.kAdd[c])
			}
			if best < 0 {
				if num > 0 {
					best, bestNum, bestDen = c, num, den
				}
				continue
			}
			if num*bestDen > bestNum*den {
				best, bestNum, bestDen = c, num, den
			}
		}
		if best < 0 {
			break
		}
		st.commitK(best)
	}
	return st.out
}
