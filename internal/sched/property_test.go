package sched

import (
	"math/rand"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/isa/isatest"
	"rispp/internal/molecule"
)

// TestRandomISAsAreValid hardens the generator itself: Validate must accept
// everything randomISA produces.
func TestRandomISAsAreValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		is := isatest.RandomISA(rng, 2+rng.Intn(5), 1+rng.Intn(4))
		if err := is.Validate(); err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

// TestSchedulersValidOnRandomISAs is the central robustness property: on
// hundreds of random Molecule libraries, from random initial availability,
// every scheduler emits a valid schedule (selected latency reached, no
// superfluous loads) and HEF additionally composes nothing an SI with zero
// expectations would need.
func TestSchedulersValidOnRandomISAs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 300; i++ {
		dim := 2 + rng.Intn(5)
		is := isatest.RandomISA(rng, dim, 1+rng.Intn(4))

		var reqs []Request
		for j := range is.SIs {
			si := &is.SIs[j]
			// Random selected Molecule and expectation (always > 0 so the
			// validity contract applies to every scheduler incl. HEF).
			sel := si.Molecules[rng.Intn(len(si.Molecules))]
			reqs = append(reqs, Request{SI: si, Selected: sel, Expected: int64(1 + rng.Intn(10000))})
		}
		avail := molecule.New(dim)
		for a := 0; a < dim; a++ {
			avail[a] = rng.Intn(3)
		}

		for _, name := range Names {
			s, _ := New(name)
			seq := s.Schedule(reqs, avail)
			if err := Valid(seq, reqs, avail); err != nil {
				t.Fatalf("iteration %d, %s: %v\nreqs=%+v avail=%v seq=%v", i, name, err, reqs, avail, seq)
			}
		}
	}
}

// TestHEFNeverLoadsBeyondSup: on random instances, HEF's loads never exceed
// the joint requirement sup(M) ⊖ avail.
func TestHEFNeverLoadsBeyondSup(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	s, _ := New("HEF")
	for i := 0; i < 300; i++ {
		dim := 2 + rng.Intn(4)
		is := isatest.RandomISA(rng, dim, 1+rng.Intn(3))
		var reqs []Request
		sup := molecule.New(dim)
		for j := range is.SIs {
			si := &is.SIs[j]
			sel := si.Molecules[rng.Intn(len(si.Molecules))]
			reqs = append(reqs, Request{SI: si, Selected: sel, Expected: int64(rng.Intn(1000))})
			sup = sup.Sup(sel.Atoms)
		}
		avail := molecule.New(dim)
		seq := s.Schedule(reqs, avail)
		loaded := molecule.New(dim)
		for _, atom := range seq {
			loaded = loaded.Add(molecule.Unit(int(atom), dim))
		}
		if !loaded.Leq(sup) {
			t.Fatalf("iteration %d: HEF loaded %v beyond sup %v", i, loaded, sup)
		}
	}
}

// TestSchedulePrefixesAreMonotone: along every scheduler's load sequence,
// no SI's fastest-available latency ever increases (loading Atoms can only
// help — the foundation of the as-soon-as-available upgrade model).
func TestSchedulePrefixesAreMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 200; i++ {
		dim := 2 + rng.Intn(4)
		is := isatest.RandomISA(rng, dim, 1+rng.Intn(3))
		var reqs []Request
		for j := range is.SIs {
			si := &is.SIs[j]
			reqs = append(reqs, Request{SI: si, Selected: si.Fastest(), Expected: int64(1 + rng.Intn(100))})
		}
		avail := molecule.New(dim)
		for _, name := range Names {
			s, _ := New(name)
			seq := s.Schedule(reqs, avail)
			a := avail.Clone()
			prev := map[isa.SIID]int{}
			for j := range is.SIs {
				prev[is.SIs[j].ID] = is.SIs[j].LatencyWith(a)
			}
			for _, atom := range seq {
				a = a.Add(molecule.Unit(int(atom), dim))
				for j := range is.SIs {
					si := &is.SIs[j]
					lat := si.LatencyWith(a)
					if lat > prev[si.ID] {
						t.Fatalf("iteration %d, %s: SI %s latency rose %d -> %d", i, name, si.Name, prev[si.ID], lat)
					}
					prev[si.ID] = lat
				}
			}
		}
	}
}
