package sched

import (
	"testing"

	"rispp/internal/isa"
	"rispp/internal/molecule"
)

func unitCost(isa.AtomID) int64 { return 87403 } // avg Atom reload, cycles

func TestExhaustiveRequiresCost(t *testing.T) {
	var e Exhaustive
	if _, _, err := e.Schedule(nil, molecule.New(2)); err == nil {
		t.Fatal("Exhaustive without LoadCost did not fail")
	}
}

func TestExhaustiveIsLowerBound(t *testing.T) {
	scenarios := []struct {
		name string
		is   *isa.ISA
		exp  []int64
	}{
		{"fig4", fig4ISA(true), []int64{1000}},
		{"fig5-balanced", twoSIISA(), []int64{1000, 1000}},
		{"fig5-skewed", twoSIISA(), []int64{5000, 100}},
		{"fig5-inverse", twoSIISA(), []int64{100, 5000}},
	}
	e := Exhaustive{Cost: unitCost}
	for _, sc := range scenarios {
		reqs := reqsFor(sc.is, sc.exp...)
		avail := molecule.New(sc.is.Dim())
		optSeq, optCost, err := e.Schedule(reqs, avail)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		if got := EvalCost(optSeq, reqs, avail, unitCost); got != optCost {
			t.Errorf("%s: EvalCost(optimal) = %d, solver reported %d", sc.name, got, optCost)
		}
		for _, name := range Names {
			s, _ := New(name)
			seq := s.Schedule(reqs, avail)
			cost := EvalCost(seq, reqs, avail, unitCost)
			if cost < optCost {
				t.Errorf("%s on %s: cost %d beats the 'optimal' %d", name, sc.name, cost, optCost)
			}
		}
	}
}

// TestHEFNearOptimal quantifies the paper's implicit claim that HEF is a
// good heuristic: on small instances its clairvoyant-rate cost is within
// 10%% of the exhaustive optimum and no other scheduler beats it.
func TestHEFNearOptimal(t *testing.T) {
	scenarios := []struct {
		name string
		exp  []int64
	}{
		{"balanced", []int64{1000, 1000}},
		{"skewed", []int64{5000, 100}},
		{"inverse", []int64{100, 5000}},
		{"mild", []int64{800, 500}},
	}
	is := twoSIISA()
	e := Exhaustive{Cost: unitCost}
	hefS, _ := New("HEF")
	for _, sc := range scenarios {
		reqs := reqsFor(is, sc.exp...)
		avail := molecule.New(is.Dim())
		_, optCost, err := e.Schedule(reqs, avail)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		hefCost := EvalCost(hefS.Schedule(reqs, avail), reqs, avail, unitCost)
		if float64(hefCost) > 1.10*float64(optCost) {
			t.Errorf("%s: HEF cost %d vs optimal %d (> 10%% gap)", sc.name, hefCost, optCost)
		}
		// On micro-instances another heuristic may edge HEF out by a hair
		// (the paper's "never slower" claim is about full H.264 runs, see
		// the Table 2 reproduction); assert no scheduler beats HEF by more
		// than 1%.
		for _, name := range []string{"FSFR", "ASF", "SJF"} {
			s, _ := New(name)
			cost := EvalCost(s.Schedule(reqs, avail), reqs, avail, unitCost)
			if float64(cost) < 0.99*float64(hefCost) {
				t.Errorf("%s: %s cost %d beats HEF %d by >1%%", sc.name, name, cost, hefCost)
			}
		}
	}
}

func TestExhaustiveOnH264MEHotSpot(t *testing.T) {
	// The ME hot spot (SAD + SATD) is small enough for the exact solver.
	is := isa.H264()
	var reqs []Request
	for _, si := range is.HotSpotSIs(isa.HotSpotME) {
		exp := int64(26000)
		if si.ID == isa.SISATD {
			exp = 6000
		}
		reqs = append(reqs, Request{SI: si, Selected: si.Fastest(), Expected: exp})
	}
	avail := molecule.New(is.Dim())
	cost := func(a isa.AtomID) int64 {
		return int64(is.Atom(a).BitstreamBytes) // proportional to reload time
	}
	e := Exhaustive{Cost: cost}
	optSeq, optCost, err := e.Schedule(reqs, avail)
	if err != nil {
		t.Fatalf("exhaustive on ME: %v", err)
	}
	if err := Valid(optSeq, reqs, avail); err != nil {
		t.Fatalf("optimal schedule invalid: %v", err)
	}
	hefS, _ := New("HEF")
	hefCost := EvalCost(hefS.Schedule(reqs, avail), reqs, avail, cost)
	if hefCost < optCost {
		t.Fatalf("HEF %d beats optimal %d", hefCost, optCost)
	}
	if float64(hefCost) > 1.25*float64(optCost) {
		t.Errorf("HEF optimality gap on ME too large: %d vs %d", hefCost, optCost)
	}
}

func TestExhaustiveStateLimit(t *testing.T) {
	is := twoSIISA()
	reqs := reqsFor(is, 10, 10)
	e := Exhaustive{Cost: unitCost, MaxStates: 1}
	if _, _, err := e.Schedule(reqs, molecule.New(2)); err == nil {
		t.Fatal("MaxStates=1 did not fail")
	}
}

func TestEvalCostEmptySequence(t *testing.T) {
	if got := EvalCost(nil, nil, molecule.New(2), unitCost); got != 0 {
		t.Fatalf("EvalCost(nil) = %d", got)
	}
}
