package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/isa/isatest"
	"rispp/internal/molecule"
)

// kernelNames is every strategy with a specialized kernel, including the
// unnormalized HEF ablation (a distinct comparison function).
var kernelNames = []string{"FSFR", "ASF", "SJF", "HEF", "HEF-unnorm"}

// TestKernelMatchesGenericRandom is the central kernel-equivalence
// property: on hundreds of random Molecule libraries, random expectations
// and random initial availability, the specialized integer kernels
// (kernels.go) must emit the exact Atom sequence — same IDs, same order —
// as the original choose-based reference loop (scheduleGeneric). The
// comparison is over the raw []isa.AtomID, so even benefit ties must break
// identically.
func TestKernelMatchesGenericRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 500; i++ {
		dim := 2 + rng.Intn(5)
		is := isatest.RandomISA(rng, dim, 1+rng.Intn(4))

		var reqs []Request
		for j := range is.SIs {
			si := &is.SIs[j]
			sel := si.Molecules[rng.Intn(len(si.Molecules))]
			// Zero expectations included: HEF skips such SIs and the
			// kernels must agree on the skipping too.
			reqs = append(reqs, Request{SI: si, Selected: sel, Expected: int64(rng.Intn(10000))})
		}
		avail := molecule.New(dim)
		for a := 0; a < dim; a++ {
			avail[a] = rng.Intn(3)
		}

		for _, name := range kernelNames {
			s, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			ss := s.(scratchScheduler)
			got := ss.schedule(NewScratch(), reqs, avail)
			want := ss.scheduleGeneric(NewScratch(), reqs, avail)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iteration %d, %s: kernel %v != generic %v\nreqs=%+v avail=%v",
					i, name, got, want, reqs, avail)
			}
		}
	}
}

// TestKernelScratchReuse: a dirty Scratch (left over from a different
// instance) must not leak into the next kernel run.
func TestKernelScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sc := NewScratch()
	for i := 0; i < 100; i++ {
		dim := 2 + rng.Intn(5)
		is := isatest.RandomISA(rng, dim, 1+rng.Intn(4))
		var reqs []Request
		for j := range is.SIs {
			si := &is.SIs[j]
			reqs = append(reqs, Request{SI: si, Selected: si.Fastest(), Expected: int64(1 + rng.Intn(100))})
		}
		avail := molecule.New(dim)
		for _, name := range kernelNames {
			s, _ := New(name)
			ss := s.(scratchScheduler)
			got := ss.schedule(sc, reqs, avail) // reused across all iterations
			want := ss.scheduleGeneric(NewScratch(), reqs, avail)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("iteration %d, %s: reused-scratch kernel %v != fresh generic %v", i, name, got, want)
			}
		}
	}
}

// tieISA builds a deliberate benefit tie: two SIs with structurally
// identical Molecule chains over disjoint Atom types and equal
// expectations. Every per-candidate comparison key (additional Atoms,
// latency improvement, expected count) is equal between the two SIs'
// candidates, so the outcome is decided purely by tie-breaking: the
// canonical candidate order (by SI, then slowest-first) with first-wins
// replacement. A kernel that broke ties differently — e.g. last-wins on
// equal benefit, or a different candidate order — produces a different
// Atom sequence on this instance.
func tieISA() *isa.ISA {
	is := &isa.ISA{
		Name: "tie",
		Atoms: []isa.AtomType{
			{ID: 0, Name: "A1", BitstreamBytes: 60488},
			{ID: 1, Name: "A2", BitstreamBytes: 60488},
		},
		SIs: []isa.SI{
			{ID: 0, Name: "SI1", HotSpot: 0, SWLatency: 500, Molecules: []isa.Molecule{
				{SI: 0, Atoms: molecule.Of(1, 0), Latency: 100},
				{SI: 0, Atoms: molecule.Of(2, 0), Latency: 50},
			}},
			{ID: 1, Name: "SI2", HotSpot: 0, SWLatency: 500, Molecules: []isa.Molecule{
				{SI: 1, Atoms: molecule.Of(0, 1), Latency: 100},
				{SI: 1, Atoms: molecule.Of(0, 2), Latency: 50},
			}},
		},
		HotSpots: []isa.HotSpot{{ID: 0, Name: "hot", SIs: []isa.SIID{0, 1}}},
	}
	if err := is.Validate(); err != nil {
		panic(err)
	}
	return is
}

// TestKernelTieBreaking pins the tie-breaking counterexample: on the
// symmetric instance both implementations must agree, and the agreed
// sequence must favor SI1 (the earlier candidate in canonical order) at
// every tie.
func TestKernelTieBreaking(t *testing.T) {
	is := tieISA()
	reqs := reqsFor(is, 100, 100)
	avail := molecule.New(2)

	for _, name := range kernelNames {
		s, _ := New(name)
		ss := s.(scratchScheduler)
		got := ss.schedule(NewScratch(), reqs, avail)
		want := ss.scheduleGeneric(NewScratch(), reqs, avail)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: kernel %v != generic %v", name, got, want)
			continue
		}
		if len(got) == 0 {
			t.Errorf("%s: empty schedule on tie instance", name)
			continue
		}
		// Ties must resolve to the canonically first candidate: Atom 0
		// (SI1's type) loads before Atom 1 ever does.
		if got[0] != 0 {
			t.Errorf("%s: first load is Atom %d, want Atom 0 (SI1 wins ties): seq=%v", name, got[0], got)
		}
	}
}
