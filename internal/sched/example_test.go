package sched_test

import (
	"fmt"

	"rispp/internal/isa"
	"rispp/internal/molecule"
	"rispp/internal/sched"
)

// Schedule the Motion Estimation hot spot of the H.264 ISA with the
// paper's HEF scheduler: SAD is expected to execute far more often than
// SATD, so its Atoms load first.
func Example() {
	is := isa.H264()
	var reqs []sched.Request
	for _, si := range is.HotSpotSIs(isa.HotSpotME) {
		expected := int64(25641) // SAD forecast
		if si.ID == isa.SISATD {
			expected = 6336
		}
		reqs = append(reqs, sched.Request{SI: si, Selected: si.Fastest(), Expected: expected})
	}

	hef, _ := sched.New("HEF")
	seq := hef.Schedule(reqs, molecule.New(is.Dim()))
	fmt.Println("first Atom loaded:", is.Atom(seq[0]).Name)
	fmt.Println("total Atom loads:", len(seq))
	// Output:
	// first Atom loaded: SAD16
	// total Atom loads: 32
}
