// Package pipeline models the base processor of the RISPP prototype: a
// simple in-order 5-stage RISC pipeline (the paper evaluates on DLX/MIPS
// and Leon2/SPARC V8 cores). RISPP extends this pipeline with the Atom
// Containers; a Special Instruction either dispatches to the reconfigurable
// fabric or raises a synchronous trap into an emulation routine built from
// base instructions.
//
// The package serves two purposes:
//
//   - it derives the software (trap) latencies and the per-invocation glue
//     cycles that calibrate internal/isa and internal/workload, by actually
//     executing emulation kernels on the pipeline model (see kernels.go and
//     the calibration tests), and
//   - it documents precisely what "cycles" means throughout the repo: cycles
//     of this in-order pipeline at 100 MHz.
package pipeline

import (
	"fmt"

	"rispp/internal/isa"
)

// Op is the instruction class; the timing model only needs classes, not
// full semantics.
type Op int

const (
	// OpALU is a single-cycle register ALU operation (add, sub, logic,
	// shift, abs, min/max, compare).
	OpALU Op = iota
	// OpLoad reads memory; result available after MEM (load-use hazard).
	OpLoad
	// OpStore writes memory.
	OpStore
	// OpBranch is a conditional branch; taken branches flush the two
	// instructions fetched down the fall-through path.
	OpBranch
	// OpMul is a multi-cycle multiply occupying EX for 4 cycles.
	OpMul
	// OpSI is a Special Instruction: it occupies EX for the latency the
	// run-time system reports (hardware Molecule) or traps into an
	// emulation routine.
	OpSI
	// OpNop fills delay slots.
	OpNop
)

func (o Op) String() string {
	switch o {
	case OpALU:
		return "alu"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpMul:
		return "mul"
	case OpSI:
		return "si"
	case OpNop:
		return "nop"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Instr is one instruction of a kernel. Registers are abstract small
// integers; only def/use relationships matter for hazard timing.
type Instr struct {
	Op    Op
	Dst   int // defined register (-1: none)
	Src1  int // used registers (-1: none)
	Src2  int
	SI    int  // SI id for OpSI
	Taken bool // branch outcome for OpBranch (static trace)
}

// timing constants of the pipeline model.
const (
	mulEXCycles        = 4 // EX occupancy of a multiply
	takenBranchPenalty = 2 // flushed slots on a taken branch
	loadUseStall       = 1 // bubble between a load and a dependent use
	drainCycles        = 4 // pipeline drain after the last issue
)

// Run executes the instruction sequence and returns the cycle count,
// modelling structural EX occupancy, load-use hazards and taken-branch
// flushes. siLatency gives the EX occupancy of OpSI instructions (the
// fastest available Molecule, or the trap entry cost when the routine is
// inlined separately); it may be nil if the program contains no OpSI.
func Run(prog []Instr, siLatency func(si int) int) int64 {
	var cycle int64
	lastLoadDst := -1
	loadReadyAt := int64(-1)
	for _, in := range prog {
		issue := cycle
		// Load-use hazard: a dependent instruction issues one cycle later.
		if lastLoadDst >= 0 && issue < loadReadyAt &&
			(in.Src1 == lastLoadDst || in.Src2 == lastLoadDst) {
			issue = loadReadyAt
		}
		occupancy := int64(1)
		switch in.Op {
		case OpMul:
			occupancy = mulEXCycles
		case OpSI:
			if siLatency == nil {
				panic("pipeline: OpSI without siLatency")
			}
			lat := siLatency(in.SI)
			if lat < 1 {
				lat = 1
			}
			occupancy = int64(lat)
		}
		cycle = issue + occupancy
		if in.Op == OpBranch && in.Taken {
			cycle += takenBranchPenalty
		}
		if in.Op == OpLoad {
			lastLoadDst = in.Dst
			loadReadyAt = cycle + loadUseStall
		} else if in.Dst >= 0 && in.Dst == lastLoadDst {
			lastLoadDst = -1 // overwritten before use
		}
	}
	return cycle + drainCycles
}

// Builder assembles kernels with a tiny embedded-assembler feel.
type Builder struct {
	prog []Instr
}

// NewBuilder returns an empty kernel builder.
func NewBuilder() *Builder { return &Builder{} }

// ALU appends a register ALU op dst = src1 ⊕ src2.
func (b *Builder) ALU(dst, src1, src2 int) *Builder {
	b.prog = append(b.prog, Instr{Op: OpALU, Dst: dst, Src1: src1, Src2: src2})
	return b
}

// Load appends dst = mem[addr].
func (b *Builder) Load(dst, addr int) *Builder {
	b.prog = append(b.prog, Instr{Op: OpLoad, Dst: dst, Src1: addr, Src2: -1})
	return b
}

// Store appends mem[addr] = src.
func (b *Builder) Store(src, addr int) *Builder {
	b.prog = append(b.prog, Instr{Op: OpStore, Dst: -1, Src1: src, Src2: addr})
	return b
}

// Mul appends dst = src1 * src2 (multi-cycle).
func (b *Builder) Mul(dst, src1, src2 int) *Builder {
	b.prog = append(b.prog, Instr{Op: OpMul, Dst: dst, Src1: src1, Src2: src2})
	return b
}

// Branch appends a conditional branch with a fixed outcome.
func (b *Builder) Branch(src int, taken bool) *Builder {
	b.prog = append(b.prog, Instr{Op: OpBranch, Dst: -1, Src1: src, Src2: -1, Taken: taken})
	return b
}

// SI appends a Special Instruction invocation.
func (b *Builder) SI(si int) *Builder {
	b.prog = append(b.prog, Instr{Op: OpSI, Dst: -1, Src1: -1, Src2: -1, SI: si})
	return b
}

// Nop appends a no-op.
func (b *Builder) Nop() *Builder {
	b.prog = append(b.prog, Instr{Op: OpNop, Dst: -1, Src1: -1, Src2: -1})
	return b
}

// Loop unrolls body iterations times, appending the loop bookkeeping
// (counter decrement + back-branch, taken on all but the last iteration).
func (b *Builder) Loop(iterations int, body func(b *Builder)) *Builder {
	for i := 0; i < iterations; i++ {
		body(b)
		b.ALU(30, 30, -1)              // decrement loop counter
		b.Branch(30, i < iterations-1) // back edge
	}
	return b
}

// Build returns the assembled program.
func (b *Builder) Build() []Instr {
	return append([]Instr(nil), b.prog...)
}

// Len returns the current instruction count.
func (b *Builder) Len() int { return len(b.prog) }

// EventSource is the slice of the run-time system the co-simulation needs:
// per-SI latencies that change as Atom loads complete (sim.Runtime
// satisfies it).
type EventSource interface {
	Latency(si isa.SIID) int
	NextEvent() (at int64, ok bool)
	Advance(t int64)
}

// RunWithRuntime executes the program instruction by instruction against a
// live run-time system: every OpSI queries the current fastest-Molecule
// latency, and Atom-load completions apply at exact instruction
// boundaries. This is the instruction-granular co-simulation of the
// platform — slower than the burst-level simulator of internal/sim, but it
// demonstrates (and tests) that an SI's latency can improve between two
// adjacent invocations of the same loop iteration.
func RunWithRuntime(prog []Instr, rt EventSource, start int64) int64 {
	cycle := start
	lastLoadDst := -1
	loadReadyAt := int64(-1)
	for _, in := range prog {
		for {
			at, ok := rt.NextEvent()
			if !ok || at > cycle {
				break
			}
			rt.Advance(at)
		}
		issue := cycle
		if lastLoadDst >= 0 && issue < loadReadyAt &&
			(in.Src1 == lastLoadDst || in.Src2 == lastLoadDst) {
			issue = loadReadyAt
		}
		occupancy := int64(1)
		switch in.Op {
		case OpMul:
			occupancy = mulEXCycles
		case OpSI:
			lat := rt.Latency(isa.SIID(in.SI))
			if lat < 1 {
				lat = 1
			}
			occupancy = int64(lat)
		}
		cycle = issue + occupancy
		if in.Op == OpBranch && in.Taken {
			cycle += takenBranchPenalty
		}
		if in.Op == OpLoad {
			lastLoadDst = in.Dst
			loadReadyAt = cycle + loadUseStall
		} else if in.Dst >= 0 && in.Dst == lastLoadDst {
			lastLoadDst = -1
		}
	}
	return cycle + drainCycles
}
