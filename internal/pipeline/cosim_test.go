package pipeline

import (
	"testing"

	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/sched"
	"rispp/internal/workload"
)

// TestCoSimulationUpgradesMidLoop runs a motion-estimation inner loop
// instruction by instruction against a live Run-Time Manager: early
// iterations trap to software, then Atoms finish loading mid-loop and the
// very same SI instruction gets cheaper — the paper's as-soon-as-available
// execution observed at instruction granularity.
func TestCoSimulationUpgradesMidLoop(t *testing.T) {
	is := isa.H264()
	s, _ := sched.New("HEF")
	mgr := core.NewManager(core.Config{ISA: is, NumACs: 8, Scheduler: s})
	mgr.SeedFromTrace(workload.H264(workload.H264Config{Frames: 1}))
	mgr.EnterHotSpot(isa.HotSpotME, 0)

	// 400 SAD invocations with glue, as the ME loop issues them.
	b := NewBuilder()
	b.Loop(400, func(b *Builder) {
		for _, in := range GlueShape() {
			b.prog = append(b.prog, in)
		}
		b.SI(int(isa.SISAD))
	})
	prog := b.Build()

	total := RunWithRuntime(prog, mgr, 0)
	swOnly := Run(prog, func(int) int { return is.SI(isa.SISAD).SWLatency })
	hwOnly := Run(prog, func(int) int { return is.SI(isa.SISAD).Fastest().Latency })
	if !(hwOnly < total && total < swOnly) {
		t.Fatalf("co-simulated %d cycles, want between full-hw %d and full-sw %d", total, hwOnly, swOnly)
	}
	// The fabric really did upgrade during the loop.
	if mgr.AtomLoads() == 0 {
		t.Fatal("no Atom loads applied during co-simulation")
	}
	if got := mgr.Latency(isa.SISAD); got >= is.SI(isa.SISAD).SWLatency {
		t.Fatal("SAD still in software after the loop")
	}
}

// TestCoSimulationMatchesStaticWhenIdle: with no reconfiguration pending,
// RunWithRuntime must agree exactly with the static Run.
func TestCoSimulationMatchesStaticWhenIdle(t *testing.T) {
	is := isa.H264()
	s, _ := sched.New("HEF")
	mgr := core.NewManager(core.Config{ISA: is, NumACs: 0, Scheduler: s}) // no fabric: nothing ever loads
	mgr.EnterHotSpot(isa.HotSpotME, 0)

	b := NewBuilder()
	b.Loop(50, func(b *Builder) { b.SI(int(isa.SISAD)) })
	prog := b.Build()

	dynamic := RunWithRuntime(prog, mgr, 0)
	static := Run(prog, func(int) int { return is.SI(isa.SISAD).SWLatency })
	if dynamic != static {
		t.Fatalf("idle co-simulation %d != static %d", dynamic, static)
	}
}
