package pipeline

import (
	"testing"

	"rispp/internal/isa"
)

func TestSingleALU(t *testing.T) {
	prog := NewBuilder().ALU(1, 2, 3).Build()
	// 1 issue cycle + 4 drain.
	if got := Run(prog, nil); got != 5 {
		t.Fatalf("Run = %d, want 5", got)
	}
}

func TestLoadUseHazard(t *testing.T) {
	dependent := NewBuilder().Load(1, 9).ALU(2, 1, 3).Build()
	independent := NewBuilder().Load(1, 9).ALU(2, 4, 3).Build()
	d := Run(dependent, nil)
	i := Run(independent, nil)
	if d != i+1 {
		t.Fatalf("load-use stall: dependent %d, independent %d, want +1", d, i)
	}
}

func TestLoadUseHazardOnlyNextUse(t *testing.T) {
	// Moving an independent instruction between the load and its use hides
	// the load latency: the reordered program is one cycle faster.
	hidden := NewBuilder().Load(1, 9).ALU(5, 6, 7).ALU(2, 1, 3).Build()
	exposed := NewBuilder().Load(1, 9).ALU(2, 1, 3).ALU(5, 6, 7).Build()
	if Run(hidden, nil) != Run(exposed, nil)-1 {
		t.Fatalf("hidden %d vs exposed %d: scheduling should hide exactly the stall",
			Run(hidden, nil), Run(exposed, nil))
	}
}

func TestTakenBranchPenalty(t *testing.T) {
	taken := NewBuilder().Branch(1, true).Build()
	notTaken := NewBuilder().Branch(1, false).Build()
	if Run(taken, nil)-Run(notTaken, nil) != takenBranchPenalty {
		t.Fatal("taken-branch penalty wrong")
	}
}

func TestMulOccupancy(t *testing.T) {
	mul := NewBuilder().Mul(1, 2, 3).Build()
	alu := NewBuilder().ALU(1, 2, 3).Build()
	if Run(mul, nil)-Run(alu, nil) != mulEXCycles-1 {
		t.Fatal("multiply occupancy wrong")
	}
}

func TestSIInstrUsesFabricLatency(t *testing.T) {
	prog := NewBuilder().SI(3).Build()
	fast := Run(prog, func(si int) int { return 10 })
	slow := Run(prog, func(si int) int { return 100 })
	if slow-fast != 90 {
		t.Fatalf("SI latency not respected: fast=%d slow=%d", fast, slow)
	}
}

func TestSIWithoutLatencyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("OpSI without siLatency did not panic")
		}
	}()
	Run(NewBuilder().SI(0).Build(), nil)
}

func TestLoopStructure(t *testing.T) {
	b := NewBuilder()
	b.Loop(3, func(b *Builder) { b.ALU(1, 2, 3) })
	prog := b.Build()
	// 3 × (body + dec + branch).
	if len(prog) != 9 {
		t.Fatalf("loop emitted %d instructions, want 9", len(prog))
	}
	// The last back-branch must be not-taken, all earlier ones taken.
	var branches []Instr
	for _, in := range prog {
		if in.Op == OpBranch {
			branches = append(branches, in)
		}
	}
	if len(branches) != 3 || !branches[0].Taken || !branches[1].Taken || branches[2].Taken {
		t.Fatalf("branch outcomes wrong: %+v", branches)
	}
}

func TestOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpALU: "alu", OpLoad: "load", OpStore: "store", OpBranch: "branch",
		OpMul: "mul", OpSI: "si", OpNop: "nop", Op(99): "Op(99)",
	} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), op.String(), want)
		}
	}
}

// TestKernelsReproduceTrapLatencies is the calibration link between the
// pipeline substrate and the isa package: executing each SI's emulation
// kernel on the pipeline model yields exactly the trap latency the dynamic
// instruction set declares.
func TestKernelsReproduceTrapLatencies(t *testing.T) {
	is := isa.H264()
	for i := range is.SIs {
		si := &is.SIs[i]
		got := EmulationCycles(si.ID)
		want := int64(si.SWLatency)
		if got != want {
			t.Errorf("SI %q: emulation kernel takes %d cycles, trap latency is %d", si.Name, got, want)
		}
	}
}

// TestGlueCyclesMatchWorkloadGap ties the per-invocation glue code to the
// workload calibration (Burst.Gap = 8 cycles).
func TestGlueCyclesMatchWorkloadGap(t *testing.T) {
	if got := GlueCycles(); got != 8 {
		t.Fatalf("glue = %d cycles, workload calibration uses 8", got)
	}
}

func TestKernelUnknownSIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Kernel(99) did not panic")
		}
	}()
	Kernel(isa.SIID(99))
}

func TestKernelsUseOnlyBaseInstructions(t *testing.T) {
	for si := range h264Kernels {
		for _, in := range Kernel(si) {
			if in.Op == OpSI {
				t.Fatalf("emulation kernel of SI %d contains an SI instruction", si)
			}
		}
	}
}

// TestSIvsTrapSpeedup demonstrates the point of the whole platform at the
// pipeline level: a hot loop invoking an SI 100 times runs far faster when
// the SI dispatches to a composed Molecule than when every invocation traps.
func TestSIvsTrapSpeedup(t *testing.T) {
	is := isa.H264()
	sad := is.SI(isa.SISAD)
	b := NewBuilder()
	b.Loop(100, func(b *Builder) {
		for _, in := range GlueShape() {
			b.prog = append(b.prog, in)
		}
		b.SI(int(isa.SISAD))
	})
	prog := b.Build()

	hw := Run(prog, func(int) int { return sad.Fastest().Latency })
	sw := Run(prog, func(int) int { return sad.SWLatency })
	if speedup := float64(sw) / float64(hw); speedup < 10 {
		t.Fatalf("hardware SI speedup only %.1fx at pipeline level", speedup)
	}
}
