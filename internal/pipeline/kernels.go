package pipeline

import (
	"fmt"

	"rispp/internal/isa"
)

// kernelShape parameterizes an SI emulation routine: the trap entry
// sequence, then units loop iterations, each consisting of pixel groups
// (load/load/sub/abs/accumulate), multiply groups (load/mul/accumulate —
// for filter taps and transforms) and plain ALU bookkeeping.
type kernelShape struct {
	entryALUs int
	units     int
	pixGroups int
	mulGroups int
	extraALUs int
}

// h264Kernels describes the emulation routine of every H.264 SI. The
// shapes are chosen so that executing the kernel on the pipeline model
// yields exactly the trap latency of the isa package — the calibration the
// paper's toolchain obtains from its estimation tools.
var h264Kernels = map[isa.SIID]kernelShape{
	// SAD: 16 packed-pixel groups of absolute differences.
	isa.SISAD: {entryALUs: 4, units: 16, pixGroups: 10, extraALUs: 5},
	// SATD: differences plus butterfly transform and accumulation.
	isa.SISATD: {entryALUs: 18, units: 16, pixGroups: 12, extraALUs: 24},
	// (I)DCT: multiply-accumulate butterflies plus rounding.
	isa.SIDCT: {entryALUs: 17, units: 13, pixGroups: 2, mulGroups: 2, extraALUs: 2},
	// (I)HT 2x2: small Hadamard butterfly.
	isa.SIHT2x2: {entryALUs: 25, units: 10, pixGroups: 4, extraALUs: 4},
	// (I)HT 4x4.
	isa.SIHT4x4: {entryALUs: 28, units: 10, pixGroups: 6, extraALUs: 6},
	// MC: 6-tap point filter — multiply-heavy.
	isa.SIMC: {entryALUs: 30, units: 16, pixGroups: 6, mulGroups: 6, extraALUs: 6},
	// IPred HDC.
	isa.SIIPredHDC: {entryALUs: 26, units: 14, pixGroups: 5, extraALUs: 4},
	// IPred VDC.
	isa.SIIPredVDC: {entryALUs: 24, units: 14, pixGroups: 4, extraALUs: 3},
	// LF_BS4: boundary-strength conditions and clipping.
	isa.SILFBS4: {entryALUs: 19, units: 14, pixGroups: 7, extraALUs: 5},
}

// Kernel builds the base-instruction emulation routine of an H.264 SI —
// the code the synchronous trap executes when the SI's Atoms are not (yet)
// loaded.
func Kernel(si isa.SIID) []Instr {
	shape, ok := h264Kernels[si]
	if !ok {
		panic(fmt.Sprintf("pipeline: no emulation kernel for SI %d", si))
	}
	b := NewBuilder()
	for i := 0; i < shape.entryALUs; i++ {
		b.ALU(10+i%4, 2, 3) // operand unpacking, address setup
	}
	b.Loop(shape.units, func(b *Builder) {
		for g := 0; g < shape.pixGroups; g++ {
			b.Load(1, 20)  // pixel A
			b.Load(2, 21)  // pixel B
			b.ALU(3, 1, 2) // difference
			b.ALU(4, 3, 3) // absolute value
			b.ALU(5, 5, 4) // accumulate
		}
		for g := 0; g < shape.mulGroups; g++ {
			b.Load(1, 22)  // sample
			b.Mul(2, 1, 6) // filter tap / transform coefficient
			b.ALU(5, 5, 2) // accumulate
		}
		for g := 0; g < shape.extraALUs; g++ {
			b.ALU(11, 11, 7) // address increments, rounding, packing
		}
	})
	return b.Build()
}

// EmulationCycles executes the SI's emulation kernel on the pipeline model
// and returns its latency in cycles. For the shipped shapes this equals the
// trap latency of the isa package (asserted by the calibration test).
func EmulationCycles(si isa.SIID) int64 {
	return Run(Kernel(si), nil)
}

// GlueShape is the per-SI-invocation glue code in the hot-spot loops
// (operand address generation, loop control). Its pipeline cost is the
// Burst.Gap of the workload model.
func GlueShape() []Instr {
	return NewBuilder().
		ALU(10, 10, 1). // advance source address
		ALU(11, 11, 1). // advance destination address
		ALU(12, 12, 2). // loop index
		Load(1, 10).    // fetch next operand descriptor
		ALU(2, 1, 3).   // decode it (load-use stall)
		Store(2, 11).   // spill the previous result
		Branch(12, false).
		Build()
}

// GlueCycles is the pipeline cost of GlueShape without the pipeline drain
// (the glue runs between SI invocations inside a filled pipeline).
func GlueCycles() int64 {
	return Run(GlueShape(), nil) - drainCycles
}
