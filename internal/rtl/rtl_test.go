package rtl

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rispp/internal/datapath"
)

func build(t *testing.T, b *Builder) *Circuit {
	t.Helper()
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCombinationalOperators(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 8)
	y := b.Input("y", 8)
	b.Output("add", b.Add(x, y))
	b.Output("sub", b.Sub(x, y))
	b.Output("mul", b.Mul(x, y))
	b.Output("gt", b.Gt(x, y))
	b.Output("ge", b.Ge(x, y))
	b.Output("eq", b.Eq(x, y))
	b.Output("absdiff", b.AbsDiff(x, y))
	b.Output("shr", b.Shr(x, 2))
	b.Output("and", b.And(x, y))
	b.Output("or", b.Or(x, y))
	c := build(t, b)

	out := c.Step(map[string]uint64{"x": 200, "y": 60})
	checks := map[string]uint64{
		"add": 260, "sub": 140, "mul": 12000, "gt": 1, "ge": 1, "eq": 0,
		"absdiff": 140, "shr": 50, "and": 200 & 60, "or": 200 | 60,
	}
	for name, want := range checks {
		if out[name] != want {
			t.Errorf("%s = %d, want %d", name, out[name], want)
		}
	}
	// Subtraction wraps within its width (8 bits here).
	out = c.Step(map[string]uint64{"x": 10, "y": 20})
	if out["sub"] != (10-20)&0xFF {
		t.Errorf("wrapped sub = %d", out["sub"])
	}
	if out["absdiff"] != 10 {
		t.Errorf("absdiff = %d", out["absdiff"])
	}
}

func TestMuxAndNot(t *testing.T) {
	b := NewBuilder()
	sel := b.Input("sel", 1)
	x := b.Input("x", 4)
	y := b.Input("y", 4)
	b.Output("mux", b.Mux(sel, x, y))
	b.Output("nsel", b.Not(sel))
	c := build(t, b)
	if out := c.Step(map[string]uint64{"sel": 1, "x": 5, "y": 9}); out["mux"] != 5 || out["nsel"] != 0 {
		t.Fatalf("mux/not: %v", out)
	}
	if out := c.Step(map[string]uint64{"sel": 0, "x": 5, "y": 9}); out["mux"] != 9 || out["nsel"] != 1 {
		t.Fatalf("mux/not: %v", out)
	}
}

func TestRegisterPipelineTiming(t *testing.T) {
	// Two registers in series delay a value by two cycles.
	b := NewBuilder()
	x := b.Input("x", 8)
	b.Output("delayed", b.Reg(b.Reg(x, 0), 0))
	c := build(t, b)
	seq := []uint64{7, 11, 13, 17}
	var got []uint64
	for _, v := range seq {
		out := c.Step(map[string]uint64{"x": v})
		got = append(got, out["delayed"])
	}
	want := []uint64{0, 0, 7, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d: delayed = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestRegisterInitAndReset(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 8)
	b.Output("r", b.Reg(x, 42))
	c := build(t, b)
	if out := c.Step(map[string]uint64{"x": 1}); out["r"] != 42 {
		t.Fatalf("initial register value = %d", out["r"])
	}
	if out := c.Step(map[string]uint64{"x": 2}); out["r"] != 1 {
		t.Fatalf("after one edge = %d", out["r"])
	}
	c.Reset()
	if out := c.Step(nil); out["r"] != 42 {
		t.Fatal("Reset did not restore the initial value")
	}
}

func TestFeedbackWidthGrowthRejected(t *testing.T) {
	// count' = count + 1 widens to 5 bits; driving it into the 4-bit
	// feedback register without masking must be rejected.
	b := NewBuilder()
	count, drive := b.Feedback(4, 0)
	drive(b.Add(count, b.Const(1, 1)))
	b.Output("count", count)
	if _, err := b.Build(); err == nil {
		t.Fatal("width-growing feedback must be rejected")
	}
}

func TestCounterCountsUp(t *testing.T) {
	b := NewBuilder()
	count, drive := b.Feedback(8, 0)
	inc := b.Add(count, b.Const(1, 1)) // 9 bits
	drive(b.Trunc(inc, 8))
	b.Output("count", count)
	c := build(t, b)
	for i := 0; i < 10; i++ {
		out := c.Step(nil)
		if out["count"] != uint64(i) {
			t.Fatalf("cycle %d: count = %d", i, out["count"])
		}
	}
}

func TestFeedbackMustBeDriven(t *testing.T) {
	b := NewBuilder()
	out, _ := b.Feedback(4, 0)
	b.Output("o", out)
	if _, err := b.Build(); err == nil {
		t.Fatal("undriven feedback register not rejected")
	}
}

func TestAccumulatorWithFeedback(t *testing.T) {
	// acc' = acc + x: the SAV Atom's accumulate stage.
	b := NewBuilder()
	acc, drive := b.Feedback(16, 0)
	x := b.Input("x", 8)
	sum := b.Add(acc, x) // 17 bits
	drive(b.Trunc(sum, 16))
	b.Output("acc", acc)
	c := build(t, b)
	vals := []uint64{5, 10, 100}
	want := []uint64{0, 5, 15}
	for i, v := range vals {
		out := c.Step(map[string]uint64{"x": v})
		if out["acc"] != want[i] {
			t.Fatalf("cycle %d: acc = %d, want %d", i, out["acc"], want[i])
		}
	}
}

func TestCombinationalLoopRejected(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4)
	// Create a cycle by hand: node argument pointing forward is impossible
	// through the API (nets are append-only), so force it internally.
	n := b.Add(x, x)
	b.nodes[n].args[1] = n // self-loop
	if _, err := b.Build(); err == nil {
		t.Fatal("combinational loop not rejected")
	}
}

func TestBuilderErrorPropagation(t *testing.T) {
	cases := []func(*Builder){
		func(b *Builder) { b.Input("w", 0) },
		func(b *Builder) { b.Input("w", 65) },
		func(b *Builder) { b.Const(16, 4) },
		func(b *Builder) { b.Mux(b.Input("s", 2), b.Input("x", 4), b.Input("y", 4)) },
		func(b *Builder) { b.Not(b.Input("x", 4)) },
		func(b *Builder) { b.Shr(b.Input("x", 4), -1) },
		func(b *Builder) { b.Output("o", Net(99)) },
		func(b *Builder) { x := b.Input("x", 4); b.Output("o", x); b.Output("o", x) },
		func(b *Builder) { b.Trunc(b.Input("x", 4), 8) },
		func(b *Builder) { b.Trunc(b.Input("x", 4), 0) },
	}
	for i, f := range cases {
		b := NewBuilder()
		f(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: error not reported", i)
		}
	}
}

// TestSAD16AtomMatchesDatapath: the netlist computes the same SAD as the
// functional kernel, for random operands, respecting its 1-cycle latency.
func TestSAD16AtomMatchesDatapath(t *testing.T) {
	c, err := SAD16Atom()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	type vec struct {
		in   map[string]uint64
		want uint64
	}
	var stream []vec
	for i := 0; i < 200; i++ {
		in := map[string]uint64{}
		var a, bb [16]int
		for j := 0; j < 16; j++ {
			av, bv := rng.Intn(256), rng.Intn(256)
			a[j], bb[j] = av, bv
			in[fmtIdx("a", j)] = uint64(av)
			in[fmtIdx("b", j)] = uint64(bv)
		}
		stream = append(stream, vec{in: in, want: uint64(datapath.SAD16(&a, &bb))})
	}
	// Registered output: result for input i appears at step i+1.
	var prevWant uint64
	for i, v := range stream {
		out := c.Step(v.in)
		if i > 0 && out["sad"] != prevWant {
			t.Fatalf("step %d: sad = %d, want %d", i, out["sad"], prevWant)
		}
		prevWant = v.want
	}
}

// TestBenefitComparatorMatchesSoftware: the pipelined netlist decides
// exactly like the integer cross-multiplication the scheduler software
// (and Figure 6's hardware) performs, three cycles later.
func TestBenefitComparatorMatchesSoftware(t *testing.T) {
	c, err := BenefitComparator()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	type vec struct {
		in   map[string]uint64
		want uint64
	}
	var stream []vec
	for i := 0; i < 300; i++ {
		e := uint64(rng.Intn(50000))
		d := uint64(rng.Intn(2000))
		cc := uint64(1 + rng.Intn(40))
		bp := uint64(rng.Intn(1 << 26))
		ba := uint64(1 + rng.Intn(40))
		want := uint64(0)
		if e*d*ba > bp*cc {
			want = 1
		}
		stream = append(stream, vec{
			in:   map[string]uint64{"expected": e, "dlat": d, "candAtoms": cc, "bestProd": bp, "bestAtoms": ba},
			want: want,
		})
	}
	results := make([]uint64, 0, len(stream)+BenefitComparatorLatency)
	for _, v := range stream {
		out := c.Step(v.in)
		results = append(results, out["greater"])
	}
	for i := 0; i < BenefitComparatorLatency; i++ {
		out := c.Step(nil) // flush the pipeline
		results = append(results, out["greater"])
	}
	for i, v := range stream {
		if results[i+BenefitComparatorLatency] != v.want {
			t.Fatalf("candidate %d: greater = %d, want %d", i, results[i+BenefitComparatorLatency], v.want)
		}
	}
}

// TestBenefitComparatorUsesFiveMults confirms the Table 3 headline at the
// netlist level: exactly five MULT18X18 tiles.
func TestBenefitComparatorUsesFiveMults(t *testing.T) {
	c, err := BenefitComparator()
	if err != nil {
		t.Fatal(err)
	}
	r := c.Resources()
	if r.Mults != 5 {
		t.Fatalf("MULT18X18 tiles = %d, want 5 (paper Table 3)", r.Mults)
	}
	if r.FFs < 100 || r.FFs > 200 {
		t.Errorf("pipeline FFs = %d, expected ≈136", r.FFs)
	}
	if r.Depth < 1 {
		t.Error("no combinational depth measured")
	}
}

func TestSAD16AtomResources(t *testing.T) {
	c, err := SAD16Atom()
	if err != nil {
		t.Fatal(err)
	}
	r := c.Resources()
	if r.Mults != 0 {
		t.Fatalf("SAD tree uses %d multipliers", r.Mults)
	}
	// 16 absdiffs (2 LUTs/bit) + 15 adders: a few hundred LUTs, like the
	// real Atom (Table 3 ballpark).
	if r.LUTs < 200 || r.LUTs > 1200 {
		t.Errorf("SAD16 LUTs = %d, out of the expected range", r.LUTs)
	}
	// Adder tree depth: absdiff + 4 add levels.
	if r.Depth != 5 {
		t.Errorf("SAD16 depth = %d, want 5", r.Depth)
	}
	if got := c.Stats(); got == "" {
		t.Error("Stats empty")
	}
}

func fmtIdx(prefix string, i int) string {
	return fmt.Sprintf("%s%d", prefix, i)
}

func TestVerilogEmission(t *testing.T) {
	c, err := BenefitComparator()
	if err != nil {
		t.Fatal(err)
	}
	v := c.Verilog("hef_benefit_cmp")
	for _, want := range []string{
		"module hef_benefit_cmp",
		"input  wire clk",
		"input  wire [15:0]  expected",
		"output wire",
		"always @(posedge clk)",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q", want)
		}
	}
	// Deterministic emission.
	if v != c.Verilog("hef_benefit_cmp") {
		t.Fatal("Verilog emission not deterministic")
	}
	// Every register is reset and clocked.
	if strings.Count(v, "<=") != 2*len(c.regs) {
		t.Errorf("register assignments = %d, want %d", strings.Count(v, "<="), 2*len(c.regs))
	}
}

func TestVerilogSADAtom(t *testing.T) {
	c, err := SAD16Atom()
	if err != nil {
		t.Fatal(err)
	}
	v := c.Verilog("sad16_atom")
	if !strings.Contains(v, "a15") || !strings.Contains(v, "b0") {
		t.Fatal("SAD operand ports missing")
	}
	if strings.Count(v, "assign") < 31 { // 16 absdiff + 15 adds + output
		t.Fatalf("too few assignments: %d", strings.Count(v, "assign"))
	}
}

// TestHadamard4AtomMatchesDatapath: the Transform Atom butterfly equals
// the functional kernel modulo the 16-bit lane width (two's complement).
func TestHadamard4AtomMatchesDatapath(t *testing.T) {
	c, err := Hadamard4Atom()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	prev := [4]uint64{}
	for i := 0; i < 300; i++ {
		var v [4]int
		in := map[string]uint64{}
		for j := range v {
			v[j] = rng.Intn(1024) - 512
			in[fmt.Sprintf("v%d", j)] = uint64(v[j]) & 0xFFFF
		}
		out := c.Step(in)
		if i > 0 {
			for j := 0; j < 4; j++ {
				if out[fmt.Sprintf("h%d", j)] != prev[j] {
					t.Fatalf("step %d lane %d: %d, want %d", i, j, out[fmt.Sprintf("h%d", j)], prev[j])
				}
			}
		}
		want := datapath.Hadamard4(v)
		for j := range want {
			prev[j] = uint64(want[j]) & 0xFFFF
		}
	}
}

// TestPointFilterAtomMatchesDatapath: the multiplier-free MC chain equals
// datapath.HalfPel for random pixel windows.
func TestPointFilterAtomMatchesDatapath(t *testing.T) {
	c, err := PointFilterAtom()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var prev uint64
	for i := 0; i < 500; i++ {
		var w [6]int
		in := map[string]uint64{}
		for j := range w {
			w[j] = rng.Intn(256)
			in[fmt.Sprintf("w%d", j)] = uint64(w[j])
		}
		out := c.Step(in)
		if i > 0 && out["pel"] != prev {
			t.Fatalf("step %d: pel = %d, want %d (window %v)", i, out["pel"], prev, w)
		}
		prev = uint64(datapath.HalfPel(w))
	}
}

// TestPointFilterAtomUsesNoMultipliers: the shift-add tap structure keeps
// the Atom multiplier-free, like the real PointFilter of Figure 3.
func TestPointFilterAtomUsesNoMultipliers(t *testing.T) {
	c, err := PointFilterAtom()
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Resources(); r.Mults != 0 {
		t.Fatalf("PointFilter uses %d MULT18X18 tiles", r.Mults)
	}
}

func TestTestbenchGeneration(t *testing.T) {
	c, err := SAD16Atom()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var vectors []map[string]uint64
	for i := 0; i < 5; i++ {
		in := map[string]uint64{}
		for j := 0; j < 16; j++ {
			in[fmt.Sprintf("a%d", j)] = uint64(rng.Intn(256))
			in[fmt.Sprintf("b%d", j)] = uint64(rng.Intn(256))
		}
		vectors = append(vectors, in)
	}
	tb := c.Testbench("sad16_atom", vectors)
	for _, want := range []string{
		"module sad16_atom_tb;",
		"sad16_atom dut",
		"always #5 clk = ~clk;",
		"$finish;",
		"PASS",
	} {
		if !strings.Contains(tb, want) {
			t.Errorf("testbench missing %q", want)
		}
	}
	// One check per output per vector.
	if got := strings.Count(tb, "check(sad"); got != len(vectors) {
		t.Fatalf("sad checks = %d, want %d", got, len(vectors))
	}
	// Generating the testbench must not disturb the circuit state: a fresh
	// simulation afterwards yields the same outputs.
	first := c.Step(vectors[0])
	c.Reset()
	again := c.Step(vectors[0])
	if first["sad"] != again["sad"] {
		t.Fatal("Testbench left the circuit in a dirty state")
	}
}

// TestSATD4x4AtomsMatchesDatapath: the complete QSub → Transform² → SAV
// netlist equals the functional SATD kernel for random pixel blocks.
func TestSATD4x4AtomsMatchesDatapath(t *testing.T) {
	c, err := SATD4x4Atoms()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	var prev uint64
	for i := 0; i < 300; i++ {
		var a, bb datapath.Block4
		in := map[string]uint64{}
		for r := 0; r < 4; r++ {
			for col := 0; col < 4; col++ {
				av, bv := rng.Intn(256), rng.Intn(256)
				a[r][col], bb[r][col] = av, bv
				in[fmt.Sprintf("a%d", 4*r+col)] = uint64(av)
				in[fmt.Sprintf("b%d", 4*r+col)] = uint64(bv)
			}
		}
		out := c.Step(in)
		if i > 0 && out["satd"] != prev {
			t.Fatalf("step %d: satd = %d, want %d", i, out["satd"], prev)
		}
		prev = uint64(datapath.SATD4x4(a, bb))
	}
}

func TestSATD4x4AtomsResources(t *testing.T) {
	c, err := SATD4x4Atoms()
	if err != nil {
		t.Fatal(err)
	}
	r := c.Resources()
	if r.Mults != 0 {
		t.Fatalf("SATD uses %d multipliers; Hadamard transforms are adder-only", r.Mults)
	}
	if r.LUTs < 500 {
		t.Fatalf("SATD datapath suspiciously small: %d LUTs", r.LUTs)
	}
}

func TestExtendOperator(t *testing.T) {
	b := NewBuilder()
	x := b.Input("x", 4)
	b.Output("wide", b.Extend(x, 12))
	c := build(t, b)
	if out := c.Step(map[string]uint64{"x": 9}); out["wide"] != 9 {
		t.Fatalf("extend = %d", out["wide"])
	}
	// Narrowing through Extend is an error.
	b2 := NewBuilder()
	b2.Extend(b2.Input("x", 8), 4)
	if _, err := b2.Build(); err == nil {
		t.Fatal("narrowing extend accepted")
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden Verilog files")

// TestVerilogGolden pins the deterministic Verilog emission of every
// library circuit; refresh intentionally with `go test -update`.
func TestVerilogGolden(t *testing.T) {
	circuits := []struct {
		name  string
		build func() (*Circuit, error)
	}{
		{"sad16_atom", SAD16Atom},
		{"hadamard4_atom", Hadamard4Atom},
		{"pointfilter_atom", PointFilterAtom},
		{"satd4x4", SATD4x4Atoms},
		{"hef_benefit_cmp", BenefitComparator},
	}
	for _, tc := range circuits {
		c, err := tc.build()
		if err != nil {
			t.Fatal(err)
		}
		got := c.Verilog(tc.name)
		path := filepath.Join("testdata", tc.name+".v")
		if *updateGolden {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run `go test ./internal/rtl -update`): %v", err)
		}
		if got != string(want) {
			t.Errorf("%s.v changed; run with -update if intentional", tc.name)
		}
	}
}
