package rtl

import "fmt"

// SAD16Atom builds the SAD16 Atom's data path as a netlist: sixteen 8-bit
// absolute differences feeding a balanced adder tree, with a registered
// output (one pipeline stage, matching the Atom's 1-cycle throughput).
//
// Inputs: a0..a15, b0..b15 (8 bit). Output: "sad" (registered, valid one
// cycle after the operands).
func SAD16Atom() (*Circuit, error) {
	b := NewBuilder()
	var diffs []Net
	for i := 0; i < 16; i++ {
		x := b.Input(fmt.Sprintf("a%d", i), 8)
		y := b.Input(fmt.Sprintf("b%d", i), 8)
		diffs = append(diffs, b.AbsDiff(x, y))
	}
	// Balanced reduction tree: 16 → 8 → 4 → 2 → 1.
	level := diffs
	for len(level) > 1 {
		var next []Net
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Add(level[i], level[i+1]))
		}
		level = next
	}
	b.Output("sad", b.Reg(level[0], 0))
	return b.Build()
}

// BenefitComparator builds the HEF scheduler's division-free benefit
// datapath (paper Section 5, Table 3): the comparison
//
//	(expected · Δlatency) · bestAtoms  >  bestProduct · candAtoms
//
// pipelined over three stages. The best side's product arrives
// pre-computed (it is registered from the cycle its Molecule became the
// best candidate), so the block needs exactly five MULT18X18 tiles: one
// for the 16x12 candidate product and two each for the two 28x6 rescales.
//
// Inputs: expected (16 bit), dlat (12 bit), candAtoms (6 bit),
// bestProd (28 bit), bestAtoms (6 bit).
// Output: "greater" — 1 when the candidate's benefit exceeds the best —
// valid three cycles after its operands entered the pipeline.
func BenefitComparator() (*Circuit, error) {
	b := NewBuilder()
	expected := b.Input("expected", 16)
	dlat := b.Input("dlat", 12)
	candAtoms := b.Input("candAtoms", 6)
	bestProd := b.Input("bestProd", 28)
	bestAtoms := b.Input("bestAtoms", 6)

	// Stage 1: candidate product expected·Δlatency; operands the later
	// stages still need travel in pipeline registers alongside it.
	candProd := b.Reg(b.Mul(expected, dlat), 0) // 28 bits, 1 MULT18X18
	cand1 := b.Reg(candAtoms, 0)
	bestP1 := b.Reg(bestProd, 0)
	bestA1 := b.Reg(bestAtoms, 0)

	// Stage 2: cross-multiplication — each 28x6 product spans two tiles.
	candScaled := b.Reg(b.Mul(candProd, bestA1), 0)
	bestScaled := b.Reg(b.Mul(bestP1, cand1), 0)

	// Stage 3: the 34-bit comparison.
	b.Output("greater", b.Reg(b.Gt(candScaled, bestScaled), 0))
	return b.Build()
}

// BenefitComparatorLatency is the pipeline depth of BenefitComparator in
// clock cycles.
const BenefitComparatorLatency = 3

// Hadamard4Atom builds one pass of the Transform Atom: the 4-point
// Hadamard butterfly over 16-bit two's-complement lanes (negative
// intermediate values wrap within the lane width, as real fixed-width
// hardware does).
//
// Inputs: v0..v3 (16 bit). Outputs: h0..h3 (registered).
func Hadamard4Atom() (*Circuit, error) {
	b := NewBuilder()
	var v [4]Net
	for i := range v {
		v[i] = b.Input(fmt.Sprintf("v%d", i), 16)
	}
	lane := func(n Net) Net { return b.Trunc(n, 16) }
	a := lane(b.Add(v[0], v[2]))
	d := lane(b.Sub(v[0], v[2]))
	cc := lane(b.Add(v[1], v[3]))
	e := lane(b.Sub(v[1], v[3]))
	outs := [4]Net{
		lane(b.Add(a, cc)),
		lane(b.Add(d, e)),
		lane(b.Sub(d, e)),
		lane(b.Sub(a, cc)),
	}
	for i, o := range outs {
		b.Output(fmt.Sprintf("h%d", i), b.Reg(o, 0))
	}
	return b.Build()
}

// PointFilterAtom builds the Figure 3 MC chain — the 6-tap half-pel filter
// (1, −5, 20, 20, −5, 1) with rounding, shifting and clipping — without a
// single multiplier: the ×5 and ×20 taps are shift-adds, the signed
// arithmetic is handled by computing the positive and negative tap sums
// separately.
//
// Inputs: w0..w5 (8 bit). Output: "pel" (registered, 8 bit).
func PointFilterAtom() (*Circuit, error) {
	b := NewBuilder()
	var w [6]Net
	for i := range w {
		w[i] = b.Input(fmt.Sprintf("w%d", i), 8)
	}
	x5 := func(n Net) Net { return b.Add(b.Shl(n, 2), n) }            // ×5
	x20 := func(n Net) Net { return b.Add(b.Shl(n, 4), b.Shl(n, 2)) } // ×20
	pos := b.Add(b.Add(w[0], w[5]), b.Add(x20(w[2]), x20(w[3])))      // + taps
	neg := b.Add(x5(w[1]), x5(w[4]))                                  // − taps
	posR := b.Add(pos, b.Const(16, 5))                                // rounding
	nonneg := b.Ge(posR, neg)
	diff := b.Mux(nonneg, b.Sub(posR, neg), b.Const(0, 1))
	shifted := b.Shr(diff, 5)
	over := b.Gt(shifted, b.Const(255, 9))
	b.Output("pel", b.Reg(b.Trunc(b.Mux(over, b.Const(255, 9), shifted), 8), 0))
	return b.Build()
}

// SATD4x4Atoms builds the complete SATD data path of the SATD Special
// Instruction as a netlist: the QSub stage (packed differences), two
// Hadamard butterfly passes (rows, then the transposed columns — the
// Transform Atoms), the signed absolute values and the accumulation tree
// (the SAV Atom), and the final /2. All arithmetic runs on 16-bit
// two's-complement lanes.
//
// Inputs: a0..a15, b0..b15 (8 bit, row-major 4x4 blocks).
// Output: "satd" (registered).
func SATD4x4Atoms() (*Circuit, error) {
	b := NewBuilder()
	lane := func(n Net) Net { return b.Trunc(n, 16) }
	neg := func(n Net) Net { return lane(b.Sub(b.Const(0, 16), n)) }
	sabs := func(n Net) Net { // |x| of a 16-bit two's-complement lane
		isNeg := b.Ge(n, b.Const(1<<15, 16))
		return b.Mux(isNeg, neg(n), n)
	}
	butterfly := func(v [4]Net) [4]Net {
		s0 := lane(b.Add(v[0], v[2]))
		d0 := lane(b.Sub(v[0], v[2]))
		s1 := lane(b.Add(v[1], v[3]))
		d1 := lane(b.Sub(v[1], v[3]))
		return [4]Net{
			lane(b.Add(s0, s1)),
			lane(b.Add(d0, d1)),
			lane(b.Sub(d0, d1)),
			lane(b.Sub(s0, s1)),
		}
	}

	// QSub stage: 16 packed differences on 16-bit lanes.
	var d [16]Net
	for i := 0; i < 16; i++ {
		ai := b.Extend(b.Input(fmt.Sprintf("a%d", i), 8), 16)
		bi := b.Extend(b.Input(fmt.Sprintf("b%d", i), 8), 16)
		d[i] = lane(b.Sub(ai, bi))
	}
	// Transform stage 1: row butterflies.
	var t [4][4]Net
	for r := 0; r < 4; r++ {
		t[r] = butterfly([4]Net{d[4*r], d[4*r+1], d[4*r+2], d[4*r+3]})
	}
	// Transform stage 2: column butterflies (transposition is wiring).
	var u [4][4]Net
	for c := 0; c < 4; c++ {
		col := butterfly([4]Net{t[0][c], t[1][c], t[2][c], t[3][c]})
		for r := 0; r < 4; r++ {
			u[r][c] = col[r]
		}
	}
	// SAV stage: absolute values into a balanced adder tree.
	var level []Net
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			level = append(level, sabs(u[r][c]))
		}
	}
	for len(level) > 1 {
		var next []Net
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, b.Add(level[i], level[i+1]))
		}
		level = next
	}
	b.Output("satd", b.Reg(b.Shr(level[0], 1), 0))
	return b.Build()
}
