// Package rtl is a small word-level register-transfer-level netlist
// builder and cycle simulator. Where internal/hwmodel estimates costs from
// component tables and internal/datapath pins down functionality in plain
// Go, this package closes the remaining gap of the hardware story: the
// key RISPP blocks — the SAD16 Atom's adder tree and the HEF scheduler's
// pipelined division-free benefit comparator — are built as actual
// netlists (see lib.go), simulated cycle by cycle, verified bit-identical
// against the functional models, and costed from their structure.
//
// Circuits are built with Builder: combinational operators (add, sub, mul,
// mux, comparisons, shifts) connect nets of explicit bit widths; Reg
// inserts clocked registers. Build performs width checking, combinational
// topological ordering and loop detection; Step advances one clock.
package rtl

import (
	"fmt"
	"sort"
)

// Net identifies a signal in the circuit under construction.
type Net int

type opKind int

const (
	opInput opKind = iota
	opConst
	opAdd
	opSub // saturating at 0? no — two's complement wraparound within width
	opMul
	opMux
	opGt
	opGe
	opEq
	opAnd
	opOr
	opNot
	opShr
	opShl
	opExtend
	opTrunc
	opAbsDiff
	opReg // placeholder node carrying a register's current output
)

func (k opKind) String() string {
	switch k {
	case opInput:
		return "input"
	case opConst:
		return "const"
	case opAdd:
		return "add"
	case opSub:
		return "sub"
	case opMul:
		return "mul"
	case opMux:
		return "mux"
	case opGt:
		return "gt"
	case opGe:
		return "ge"
	case opEq:
		return "eq"
	case opAnd:
		return "and"
	case opOr:
		return "or"
	case opNot:
		return "not"
	case opShr:
		return "shr"
	case opShl:
		return "shl"
	case opExtend:
		return "extend"
	case opTrunc:
		return "trunc"
	case opAbsDiff:
		return "absdiff"
	case opReg:
		return "reg"
	}
	return "?"
}

type node struct {
	kind  opKind
	width int
	args  []Net
	cval  uint64 // opConst
	shift int    // opShr
	name  string // opInput / opReg
}

type register struct {
	out  Net // the opReg node
	d    Net // data input
	init uint64
}

// Builder assembles a circuit.
type Builder struct {
	nodes   []node
	regs    []register
	outputs map[string]Net
	err     error
}

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder {
	return &Builder{outputs: make(map[string]Net)}
}

func (b *Builder) fail(format string, args ...any) Net {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return -1
}

func (b *Builder) add(n node) Net {
	b.nodes = append(b.nodes, n)
	return Net(len(b.nodes) - 1)
}

func (b *Builder) width(n Net) int {
	if n < 0 || int(n) >= len(b.nodes) {
		b.fail("rtl: invalid net %d", n)
		return 1
	}
	return b.nodes[n].width
}

// Input declares a named primary input of the given width.
func (b *Builder) Input(name string, width int) Net {
	if width < 1 || width > 64 {
		return b.fail("rtl: input %q width %d out of range", name, width)
	}
	return b.add(node{kind: opInput, width: width, name: name})
}

// Const introduces a constant.
func (b *Builder) Const(v uint64, width int) Net {
	if width < 1 || width > 64 {
		return b.fail("rtl: const width %d out of range", width)
	}
	if width < 64 && v >= 1<<width {
		return b.fail("rtl: const %d does not fit %d bits", v, width)
	}
	return b.add(node{kind: opConst, width: width, cval: v})
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampWidth(w int) int {
	if w > 64 {
		return 64
	}
	return w
}

// Add returns a+b with carry growth.
func (b *Builder) Add(x, y Net) Net {
	w := clampWidth(maxInt(b.width(x), b.width(y)) + 1)
	return b.add(node{kind: opAdd, width: w, args: []Net{x, y}})
}

// Sub returns x−y modulo the result width (two's complement wrap).
func (b *Builder) Sub(x, y Net) Net {
	w := maxInt(b.width(x), b.width(y))
	return b.add(node{kind: opSub, width: w, args: []Net{x, y}})
}

// Mul returns x·y with full-width growth.
func (b *Builder) Mul(x, y Net) Net {
	w := clampWidth(b.width(x) + b.width(y))
	return b.add(node{kind: opMul, width: w, args: []Net{x, y}})
}

// Mux returns sel ? x : y. sel must be 1 bit wide.
func (b *Builder) Mux(sel, x, y Net) Net {
	if b.width(sel) != 1 {
		return b.fail("rtl: mux select must be 1 bit, got %d", b.width(sel))
	}
	w := maxInt(b.width(x), b.width(y))
	return b.add(node{kind: opMux, width: w, args: []Net{sel, x, y}})
}

// Gt returns the 1-bit unsigned comparison x > y.
func (b *Builder) Gt(x, y Net) Net {
	return b.add(node{kind: opGt, width: 1, args: []Net{x, y}})
}

// Ge returns x ≥ y.
func (b *Builder) Ge(x, y Net) Net {
	return b.add(node{kind: opGe, width: 1, args: []Net{x, y}})
}

// Eq returns x == y.
func (b *Builder) Eq(x, y Net) Net {
	return b.add(node{kind: opEq, width: 1, args: []Net{x, y}})
}

// And returns the bitwise AND.
func (b *Builder) And(x, y Net) Net {
	return b.add(node{kind: opAnd, width: maxInt(b.width(x), b.width(y)), args: []Net{x, y}})
}

// Or returns the bitwise OR.
func (b *Builder) Or(x, y Net) Net {
	return b.add(node{kind: opOr, width: maxInt(b.width(x), b.width(y)), args: []Net{x, y}})
}

// Not returns the 1-bit logical negation (x must be 1 bit).
func (b *Builder) Not(x Net) Net {
	if b.width(x) != 1 {
		return b.fail("rtl: not expects a 1-bit net")
	}
	return b.add(node{kind: opNot, width: 1, args: []Net{x}})
}

// Shr returns x >> n (logical).
func (b *Builder) Shr(x Net, n int) Net {
	if n < 0 {
		return b.fail("rtl: negative shift")
	}
	w := b.width(x) - n
	if w < 1 {
		w = 1
	}
	return b.add(node{kind: opShr, width: w, args: []Net{x}, shift: n})
}

// Shl returns x << n with width growth — constant multipliers (the point
// filter's ×5 and ×20 taps) are built from shifts and adds, not MULT18X18
// tiles.
func (b *Builder) Shl(x Net, n int) Net {
	if n < 0 {
		return b.fail("rtl: negative shift")
	}
	return b.add(node{kind: opShl, width: clampWidth(b.width(x) + n), args: []Net{x}, shift: n})
}

// Extend zero-extends x to the given width (free in hardware — wiring).
func (b *Builder) Extend(x Net, width int) Net {
	if width < b.width(x) || width > 64 {
		return b.fail("rtl: extend from %d to %d bits", b.width(x), width)
	}
	return b.add(node{kind: opExtend, width: width, args: []Net{x}})
}

// Trunc keeps the low `width` bits of x — the explicit width cast feedback
// paths need (wrap-around counters, saturating accumulators are built from
// Trunc plus Mux).
func (b *Builder) Trunc(x Net, width int) Net {
	if width < 1 || width > b.width(x) {
		return b.fail("rtl: trunc to %d bits from %d", width, b.width(x))
	}
	return b.add(node{kind: opTrunc, width: width, args: []Net{x}})
}

// AbsDiff returns |x−y| — the absolute-difference primitive every SAD
// datapath is made of.
func (b *Builder) AbsDiff(x, y Net) Net {
	w := maxInt(b.width(x), b.width(y))
	return b.add(node{kind: opAbsDiff, width: w, args: []Net{x, y}})
}

// Reg inserts a clocked register with the given initial value; it returns
// the register's output net. The register samples d at every Step.
func (b *Builder) Reg(d Net, init uint64) Net {
	out := b.add(node{kind: opReg, width: b.width(d), name: fmt.Sprintf("r%d", len(b.regs))})
	b.regs = append(b.regs, register{out: out, d: d, init: init})
	return out
}

// Feedback creates a register whose data input is wired later, enabling
// feedback paths (counters, accumulators, the scheduler's best-benefit
// register). It returns the register output and a drive function that must
// be called exactly once with the data net; Build fails on undriven
// feedback registers.
func (b *Builder) Feedback(width int, init uint64) (out Net, drive func(d Net)) {
	if width < 1 || width > 64 {
		b.fail("rtl: feedback register width %d out of range", width)
		return -1, func(Net) {}
	}
	out = b.add(node{kind: opReg, width: width, name: fmt.Sprintf("r%d", len(b.regs))})
	idx := len(b.regs)
	b.regs = append(b.regs, register{out: out, d: -1, init: init})
	driven := false
	return out, func(d Net) {
		if driven {
			b.fail("rtl: feedback register driven twice")
			return
		}
		driven = true
		if d < 0 || int(d) >= len(b.nodes) {
			b.fail("rtl: feedback driven by invalid net")
			return
		}
		if b.nodes[d].width > width {
			b.fail("rtl: feedback data width %d exceeds register width %d", b.nodes[d].width, width)
			return
		}
		b.regs[idx].d = d
	}
}

// Output names a net as a primary output.
func (b *Builder) Output(name string, n Net) {
	if _, dup := b.outputs[name]; dup {
		b.fail("rtl: duplicate output %q", name)
		return
	}
	if n < 0 || int(n) >= len(b.nodes) {
		b.fail("rtl: output %q wired to invalid net", name)
		return
	}
	b.outputs[name] = n
}

// Circuit is a built netlist ready for cycle simulation.
type Circuit struct {
	nodes   []node
	regs    []register
	order   []Net // combinational evaluation order
	outputs map[string]Net

	vals []uint64
	regv []uint64
}

// Build freezes the netlist: it verifies the graph, orders the
// combinational nodes topologically and rejects combinational loops
// (feedback must go through a Reg).
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := len(b.nodes)
	state := make([]int, n) // 0 unvisited, 1 visiting, 2 done
	var order []Net
	var visit func(Net) error
	visit = func(id Net) error {
		switch state[id] {
		case 1:
			return fmt.Errorf("rtl: combinational loop through %s net %d", b.nodes[id].kind, id)
		case 2:
			return nil
		}
		state[id] = 1
		if b.nodes[id].kind != opReg { // registers break cycles
			for _, a := range b.nodes[id].args {
				if err := visit(a); err != nil {
					return err
				}
			}
		}
		state[id] = 2
		order = append(order, id)
		return nil
	}
	for id := 0; id < n; id++ {
		if err := visit(Net(id)); err != nil {
			return nil, err
		}
	}
	// Register data inputs must also be reachable/valid; undriven feedback
	// registers are a wiring bug.
	for _, r := range b.regs {
		if r.d < 0 || int(r.d) >= n {
			return nil, fmt.Errorf("rtl: register fed by invalid or undriven net")
		}
	}
	c := &Circuit{
		nodes:   b.nodes,
		regs:    b.regs,
		order:   order,
		outputs: b.outputs,
		vals:    make([]uint64, n),
		regv:    make([]uint64, len(b.regs)),
	}
	c.Reset()
	return c, nil
}

// Reset returns all registers to their initial values.
func (c *Circuit) Reset() {
	for i, r := range c.regs {
		c.regv[i] = r.init
	}
}

func mask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (1 << width) - 1
}

// Step evaluates one clock cycle: combinational logic settles with the
// current register values and inputs, outputs are sampled, then registers
// capture their data inputs. Missing inputs read as 0.
func (c *Circuit) Step(inputs map[string]uint64) map[string]uint64 {
	for _, id := range c.order {
		nd := &c.nodes[id]
		var v uint64
		switch nd.kind {
		case opInput:
			v = inputs[nd.name] & mask(nd.width)
		case opConst:
			v = nd.cval
		case opAdd:
			v = c.vals[nd.args[0]] + c.vals[nd.args[1]]
		case opSub:
			v = c.vals[nd.args[0]] - c.vals[nd.args[1]]
		case opMul:
			v = c.vals[nd.args[0]] * c.vals[nd.args[1]]
		case opMux:
			if c.vals[nd.args[0]] != 0 {
				v = c.vals[nd.args[1]]
			} else {
				v = c.vals[nd.args[2]]
			}
		case opGt:
			if c.vals[nd.args[0]] > c.vals[nd.args[1]] {
				v = 1
			}
		case opGe:
			if c.vals[nd.args[0]] >= c.vals[nd.args[1]] {
				v = 1
			}
		case opEq:
			if c.vals[nd.args[0]] == c.vals[nd.args[1]] {
				v = 1
			}
		case opAnd:
			v = c.vals[nd.args[0]] & c.vals[nd.args[1]]
		case opOr:
			v = c.vals[nd.args[0]] | c.vals[nd.args[1]]
		case opNot:
			if c.vals[nd.args[0]] == 0 {
				v = 1
			}
		case opShr:
			v = c.vals[nd.args[0]] >> nd.shift
		case opShl:
			v = c.vals[nd.args[0]] << nd.shift
		case opExtend:
			v = c.vals[nd.args[0]]
		case opTrunc:
			v = c.vals[nd.args[0]]
		case opAbsDiff:
			a, b := c.vals[nd.args[0]], c.vals[nd.args[1]]
			if a >= b {
				v = a - b
			} else {
				v = b - a
			}
		case opReg:
			// Find this register's current value.
			v = c.regValue(id)
		}
		c.vals[id] = v & mask(nd.width)
	}
	out := make(map[string]uint64, len(c.outputs))
	for name, id := range c.outputs {
		out[name] = c.vals[id]
	}
	// Clock edge: registers capture.
	next := make([]uint64, len(c.regs))
	for i, r := range c.regs {
		next[i] = c.vals[r.d] & mask(c.nodes[r.out].width)
	}
	copy(c.regv, next)
	return out
}

func (c *Circuit) regValue(out Net) uint64 {
	for i, r := range c.regs {
		if r.out == out {
			return c.regv[i]
		}
	}
	return 0
}

// Resources estimates the synthesis cost of the circuit from its structure:
// LUTs per operator (≈1 LUT per result bit for add/sub/mux/logic, carry
// chains included; comparators ≈ width/2), flip-flops per register bit, and
// dedicated MULT18X18 blocks per 18x18 partial product.
type Resources struct {
	LUTs  int
	FFs   int
	Mults int
	// Depth is the longest combinational operator chain (pipeline stage
	// depth in operator levels).
	Depth int
}

// Resources walks the netlist and accumulates structural costs.
func (c *Circuit) Resources() Resources {
	var r Resources
	depth := make([]int, len(c.nodes))
	for _, id := range c.order {
		nd := &c.nodes[id]
		d := 0
		if nd.kind != opReg {
			for _, a := range nd.args {
				if depth[a] > d {
					d = depth[a]
				}
			}
		}
		switch nd.kind {
		case opAdd, opSub:
			r.LUTs += nd.width
			d++
		case opAbsDiff:
			r.LUTs += 2 * nd.width // subtract + conditional negate
			d++
		case opMux, opAnd, opOr:
			r.LUTs += nd.width
			d++
		case opNot:
			r.LUTs++
			d++
		case opGt, opGe, opEq:
			r.LUTs += (maxWidthOf(c, nd.args) + 1) / 2
			d++
		case opMul:
			// One MULT18X18 per 18x18 partial-product tile.
			wa, wb := c.nodes[nd.args[0]].width, c.nodes[nd.args[1]].width
			r.Mults += ((wa + 17) / 18) * ((wb + 17) / 18)
			d++
		}
		depth[id] = d
	}
	for _, reg := range c.regs {
		r.FFs += c.nodes[reg.out].width
	}
	for _, d := range depth {
		if d > r.Depth {
			r.Depth = d
		}
	}
	return r
}

func maxWidthOf(c *Circuit, nets []Net) int {
	w := 0
	for _, n := range nets {
		if c.nodes[n].width > w {
			w = c.nodes[n].width
		}
	}
	return w
}

// Stats summarizes the netlist for debugging.
func (c *Circuit) Stats() string {
	counts := map[string]int{}
	for _, nd := range c.nodes {
		counts[nd.kind.String()]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := fmt.Sprintf("%d nodes, %d registers:", len(c.nodes), len(c.regs))
	for _, k := range keys {
		s += fmt.Sprintf(" %s=%d", k, counts[k])
	}
	return s
}
