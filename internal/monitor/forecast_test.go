package monitor

import (
	"math/rand"
	"testing"

	"rispp/internal/isa"
)

// TestWrongSeedConvergesGeometrically: a provably-wrong a-priori forecast
// (design-time profiling of the wrong input) must decay geometrically
// toward the actual steady workload: with α = 2^-1 the residual error
// halves (to within shift truncation) on every hot-spot execution, and is
// gone — exactly — after enough rounds.
func TestWrongSeedConvergesGeometrically(t *testing.T) {
	is := isa.H264()
	const actual, seeded = 26_000, 400 // forecast off by 65x
	m := New(is, 1)
	m.Seed(isa.SISAD, seeded)

	prevErr := int64(actual - seeded)
	for round := 0; round < 64 && prevErr > 1; round++ {
		m.EnterHotSpot(isa.HotSpotME)
		m.Record(isa.SISAD, actual)
		m.LeaveHotSpot()
		err := actual - m.Expected(isa.HotSpotME, isa.SISAD)
		if err < 0 {
			t.Fatalf("round %d: expectation overshot a constant workload (err %d)", round, err)
		}
		// Geometric decay: the shift update leaves at most half the
		// residual (plus the truncated bit).
		if err > prevErr/2+1 {
			t.Fatalf("round %d: error %d did not halve from %d", round, err, prevErr)
		}
		prevErr = err
	}
	// diff>>1 is 0 at diff=1, so the update's fixed point is within one
	// execution of the target — that is "converged" for a forecaster whose
	// consumers compare tens of thousands of executions.
	if prevErr > 1 {
		t.Fatalf("forecast never converged: residual error %d after 64 rounds", prevErr)
	}
}

// TestColdStartBeatsWrongSeed: with no seed at all, the cold-start rule
// adopts the first measurement outright — so an unseeded monitor reaches
// the steady state in one round, while a wrongly seeded one pays the
// geometric tail. This is the forecast-miss scenario the control-flow
// workloads of internal/scenario are built to produce.
func TestColdStartBeatsWrongSeed(t *testing.T) {
	is := isa.H264()
	const actual = 10_000

	cold := New(is, DefaultShift)
	cold.EnterHotSpot(isa.HotSpotME)
	cold.Record(isa.SISAD, actual)
	cold.LeaveHotSpot()
	if got := cold.Expected(isa.HotSpotME, isa.SISAD); got != actual {
		t.Fatalf("cold start: expectation %d after one round, want %d", got, actual)
	}

	wrong := New(is, DefaultShift)
	wrong.Seed(isa.SISAD, 80_000)
	wrong.EnterHotSpot(isa.HotSpotME)
	wrong.Record(isa.SISAD, actual)
	wrong.LeaveHotSpot()
	if got := wrong.Expected(isa.HotSpotME, isa.SISAD); got == actual {
		t.Fatal("wrongly seeded monitor converged in one round — smoothing is not happening")
	}
}

// TestAlternatingWorkloadLimitCycle pins the counterexample showing the
// shift-update forecaster does NOT converge on every workload: an SI
// alternating between 0 and 1000 executions per round settles (at α = 0.5)
// into the stable 2-cycle {333, 666} and stays wrong by ~2/3 of the
// amplitude forever. This is intentional — the paper's monitor trades
// convergence on adversarial inputs for a multiplier-free hardware block —
// and it is exactly why input-dependent control flow (internal/scenario's
// branch models) keeps the run-time system's forecasts honest.
func TestAlternatingWorkloadLimitCycle(t *testing.T) {
	is := isa.H264()
	m := New(is, 1)
	measure := func(n int64) {
		m.EnterHotSpot(isa.HotSpotME)
		if n > 0 {
			m.Record(isa.SISAD, n)
		}
		m.LeaveHotSpot()
	}
	// Burn in: the cycle is reached well within 32 alternations. The last
	// burn-in round measures 0, so the pinning loop below continues the
	// strict 1000/0 alternation.
	for i := 0; i < 32; i++ {
		if i%2 == 0 {
			measure(1000)
		} else {
			measure(0)
		}
	}
	// Pin the cycle exactly: after a 0-round the expectation is 333,
	// after a 1000-round it is 666 — indefinitely.
	for i := 0; i < 8; i++ {
		measure(1000)
		if got := m.Expected(isa.HotSpotME, isa.SISAD); got != 666 {
			t.Fatalf("alternation %d: after 1000-round expectation %d, want pinned 666", i, got)
		}
		measure(0)
		if got := m.Expected(isa.HotSpotME, isa.SISAD); got != 333 {
			t.Fatalf("alternation %d: after 0-round expectation %d, want pinned 333", i, got)
		}
	}
}

// refMonitor is the O(SIs)-per-leave full-scan reference implementation:
// the obviously-correct form of the update (visit every SI of the ISA on
// every leave) the incremental O(changed) LeaveHotSpot must match exactly.
type refMonitor struct {
	is       *isa.ISA
	shift    uint
	expected map[isa.HotSpotID][]int64
	counts   []int64
	current  isa.HotSpotID
	inSpot   bool
	observed map[isa.HotSpotID]int
	absError int64
	samples  int
}

func newRef(is *isa.ISA, shift uint) *refMonitor {
	return &refMonitor{
		is: is, shift: shift,
		expected: make(map[isa.HotSpotID][]int64),
		counts:   make([]int64, len(is.SIs)),
		observed: make(map[isa.HotSpotID]int),
	}
}

func (m *refMonitor) enter(h isa.HotSpotID) {
	if m.inSpot {
		m.leave()
	}
	m.current, m.inSpot = h, true
}

func (m *refMonitor) record(si isa.SIID, n int64) { m.counts[si] += n }

func (m *refMonitor) leave() {
	if !m.inSpot {
		return
	}
	e := m.expected[m.current]
	if e == nil {
		e = make([]int64, len(m.is.SIs))
		m.expected[m.current] = e
	}
	first := m.observed[m.current] == 0
	for si := range m.is.SIs {
		if m.counts[si] == 0 && e[si] == 0 {
			continue // the skip the full scan always had
		}
		diff := m.counts[si] - e[si]
		if diff < 0 {
			m.absError += -diff
		} else {
			m.absError += diff
		}
		m.samples++
		if first && e[si] == 0 {
			e[si] = m.counts[si]
		} else {
			e[si] += diff >> m.shift
		}
		m.counts[si] = 0
	}
	m.observed[m.current]++
	m.inSpot = false
}

// TestIncrementalMatchesFullScan drives the incremental monitor and the
// full-scan reference through identical random phase sequences (random hot
// spots, sparse random SI records, interleaved seeds and re-entries) and
// requires every observable — all (hot spot, SI) expectations, AbsError,
// Samples, ObservedSpots — to match exactly at every phase boundary.
func TestIncrementalMatchesFullScan(t *testing.T) {
	is := isa.H264()
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		shift := uint(r.Intn(3)) + 1
		m := New(is, shift)
		ref := newRef(is, shift)

		// Occasional a-priori seeds, correct or wildly wrong.
		for _, si := range []isa.SIID{isa.SISAD, isa.SIDCT} {
			if r.Intn(2) == 0 {
				v := r.Int63n(50_000)
				m.Seed(si, v)
				h := is.SI(si).HotSpot
				if ref.expected[h] == nil {
					ref.expected[h] = make([]int64, len(is.SIs))
				}
				ref.expected[h][si] = v
			}
		}

		for phase := 0; phase < 200; phase++ {
			h := isa.HotSpotID(r.Intn(len(is.HotSpots)))
			m.EnterHotSpot(h)
			ref.enter(h)
			sis := is.HotSpotSIs(h)
			for _, si := range sis {
				if r.Intn(3) == 0 {
					continue // sparse: most phases touch a subset
				}
				n := r.Int63n(2000)
				if n == 0 {
					continue
				}
				m.Record(si.ID, n)
				ref.record(si.ID, n)
			}
			m.LeaveHotSpot()
			ref.leave()

			for hh := range is.HotSpots {
				for si := range is.SIs {
					got := m.Expected(isa.HotSpotID(hh), isa.SIID(si))
					var want int64
					if e := ref.expected[isa.HotSpotID(hh)]; e != nil {
						want = e[si]
					}
					if got != want {
						t.Fatalf("seed %d phase %d: Expected(%d, %d) = %d, reference %d",
							seed, phase, hh, si, got, want)
					}
				}
			}
			if m.AbsError != ref.absError || m.Samples != ref.samples {
				t.Fatalf("seed %d phase %d: AbsError/Samples %d/%d, reference %d/%d",
					seed, phase, m.AbsError, m.Samples, ref.absError, ref.samples)
			}
			if m.ObservedSpots[h] != ref.observed[h] {
				t.Fatalf("seed %d phase %d: ObservedSpots[%d] = %d, reference %d",
					seed, phase, h, m.ObservedSpots[h], ref.observed[h])
			}
		}
	}
}

// TestForecastMissErrorAccounting: MeanAbsError over a workload whose
// counts the forecaster can never track (fresh hot spot each time it has
// adapted) stays an order of magnitude above the steady-workload error —
// the signal the evaluation layer uses to attribute scheduler losses to
// forecast misses.
func TestForecastMissErrorAccounting(t *testing.T) {
	is := isa.H264()
	steady := New(is, 1)
	jumpy := New(is, 1)
	r := rand.New(rand.NewSource(9))
	for round := 0; round < 100; round++ {
		steady.EnterHotSpot(isa.HotSpotME)
		steady.Record(isa.SISAD, 10_000)
		steady.LeaveHotSpot()

		jumpy.EnterHotSpot(isa.HotSpotME)
		jumpy.Record(isa.SISAD, 10_000*r.Int63n(2)) // coin-flip 0 / 10k
		jumpy.LeaveHotSpot()
	}
	if steady.MeanAbsError()*10 > jumpy.MeanAbsError() {
		t.Fatalf("steady MAE %.1f vs jumpy MAE %.1f: error accounting does not separate forecast misses",
			steady.MeanAbsError(), jumpy.MeanAbsError())
	}
}
