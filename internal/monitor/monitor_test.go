package monitor

import (
	"testing"

	"rispp/internal/isa"
)

func TestColdStartAdoptsFirstMeasurement(t *testing.T) {
	is := isa.H264()
	m := New(is, DefaultShift)
	m.EnterHotSpot(isa.HotSpotME)
	m.Record(isa.SISAD, 26000)
	m.Record(isa.SISATD, 6000)
	m.LeaveHotSpot()
	if got := m.Expected(isa.HotSpotME, isa.SISAD); got != 26000 {
		t.Fatalf("cold-start expectation = %d, want 26000", got)
	}
	if got := m.Expected(isa.HotSpotME, isa.SISATD); got != 6000 {
		t.Fatalf("cold-start expectation = %d, want 6000", got)
	}
}

func TestSmoothingUpdate(t *testing.T) {
	is := isa.H264()
	m := New(is, 1) // α = 0.5
	m.Seed(isa.SISAD, 1000)
	m.EnterHotSpot(isa.HotSpotME)
	m.Record(isa.SISAD, 2000)
	m.LeaveHotSpot()
	// expected += (2000-1000) >> 1 = 1500
	if got := m.Expected(isa.HotSpotME, isa.SISAD); got != 1500 {
		t.Fatalf("expectation = %d, want 1500", got)
	}
}

func TestSmoothingConvergesToSteadyState(t *testing.T) {
	is := isa.H264()
	m := New(is, 2) // α = 0.25
	m.Seed(isa.SISAD, 0)
	for i := 0; i < 64; i++ {
		m.EnterHotSpot(isa.HotSpotME)
		m.Record(isa.SISAD, 4096)
		m.LeaveHotSpot()
	}
	got := m.Expected(isa.HotSpotME, isa.SISAD)
	if got < 4090 || got > 4096 {
		t.Fatalf("expectation after 64 constant frames = %d, want ≈4096", got)
	}
}

func TestExpectationDecaysToZero(t *testing.T) {
	is := isa.H264()
	m := New(is, 1)
	m.Seed(isa.SISAD, 100)
	for i := 0; i < 32; i++ {
		m.EnterHotSpot(isa.HotSpotME)
		m.LeaveHotSpot() // zero executions measured
	}
	if got := m.Expected(isa.HotSpotME, isa.SISAD); got != 0 {
		t.Fatalf("expectation did not decay to 0, got %d", got)
	}
}

func TestHotSpotsAreIndependent(t *testing.T) {
	is := isa.H264()
	m := New(is, 1)
	m.EnterHotSpot(isa.HotSpotME)
	m.Record(isa.SISAD, 500)
	m.LeaveHotSpot()
	m.EnterHotSpot(isa.HotSpotEE)
	m.Record(isa.SIMC, 300)
	m.LeaveHotSpot()
	if got := m.Expected(isa.HotSpotEE, isa.SISAD); got != 0 {
		t.Fatalf("SAD expectation leaked into EE: %d", got)
	}
	if got := m.Expected(isa.HotSpotME, isa.SISAD); got != 500 {
		t.Fatalf("ME SAD expectation = %d", got)
	}
}

func TestEnterFinalizesPrevious(t *testing.T) {
	is := isa.H264()
	m := New(is, 1)
	m.EnterHotSpot(isa.HotSpotME)
	m.Record(isa.SISAD, 100)
	m.EnterHotSpot(isa.HotSpotEE) // implicit LeaveHotSpot
	m.LeaveHotSpot()
	if got := m.Expected(isa.HotSpotME, isa.SISAD); got != 100 {
		t.Fatalf("implicit finalize lost counts: %d", got)
	}
	if m.ObservedSpots[isa.HotSpotME] != 1 || m.ObservedSpots[isa.HotSpotEE] != 1 {
		t.Fatalf("ObservedSpots = %v", m.ObservedSpots)
	}
}

func TestRecordOutsideHotSpotPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Record outside hot spot did not panic")
		}
	}()
	New(isa.H264(), 1).Record(isa.SISAD, 1)
}

func TestLeaveWithoutEnterIsNoop(t *testing.T) {
	m := New(isa.H264(), 1)
	m.LeaveHotSpot() // must not panic
	if len(m.ObservedSpots) != 0 {
		t.Fatal("LeaveHotSpot without Enter counted a spot")
	}
}

func TestForecastOmitsZeroSIs(t *testing.T) {
	is := isa.H264()
	m := New(is, 1)
	m.EnterHotSpot(isa.HotSpotEE)
	m.Record(isa.SIMC, 42)
	m.LeaveHotSpot()
	f := m.Forecast(isa.HotSpotEE)
	if len(f) != 1 || f[isa.SIMC] != 42 {
		t.Fatalf("Forecast = %v", f)
	}
}

func TestMeanAbsError(t *testing.T) {
	is := isa.H264()
	m := New(is, 1)
	m.Seed(isa.SISAD, 100)
	m.EnterHotSpot(isa.HotSpotME)
	m.Record(isa.SISAD, 160)
	m.LeaveHotSpot()
	if got := m.MeanAbsError(); got != 60 {
		t.Fatalf("MeanAbsError = %v, want 60", got)
	}
	if New(is, 1).MeanAbsError() != 0 {
		t.Fatal("MeanAbsError on fresh monitor != 0")
	}
}

func TestTrackingChangingWorkload(t *testing.T) {
	// The motivation for run-time adaptation: the encoding type of a Macro
	// Block depends on the motion in the input sequence. Simulate a scene
	// change and check the forecast follows within a few frames.
	is := isa.H264()
	m := New(is, 1)
	for i := 0; i < 10; i++ {
		m.EnterHotSpot(isa.HotSpotME)
		m.Record(isa.SISATD, 2000)
		m.LeaveHotSpot()
	}
	for i := 0; i < 6; i++ {
		m.EnterHotSpot(isa.HotSpotME)
		m.Record(isa.SISATD, 8000) // high-motion scene
		m.LeaveHotSpot()
	}
	got := m.Expected(isa.HotSpotME, isa.SISATD)
	if got < 7800 {
		t.Fatalf("forecast lagging after scene change: %d, want ≥ 7800", got)
	}
}

func TestStringer(t *testing.T) {
	s := New(isa.H264(), 1).String()
	if s == "" {
		t.Fatal("String empty")
	}
}

func TestSuccessorPrediction(t *testing.T) {
	is := isa.H264()
	m := New(is, 1)
	if _, ok := m.PredictNext(isa.HotSpotME); ok {
		t.Fatal("prediction without observations")
	}
	for i := 0; i < 5; i++ {
		m.RecordTransition(isa.HotSpotME, isa.HotSpotEE)
		m.RecordTransition(isa.HotSpotEE, isa.HotSpotLF)
		m.RecordTransition(isa.HotSpotLF, isa.HotSpotME)
	}
	m.RecordTransition(isa.HotSpotME, isa.HotSpotLF) // one outlier
	next, ok := m.PredictNext(isa.HotSpotME)
	if !ok || next != isa.HotSpotEE {
		t.Fatalf("PredictNext(ME) = %v, %v", next, ok)
	}
	next, ok = m.PredictNext(isa.HotSpotEE)
	if !ok || next != isa.HotSpotLF {
		t.Fatalf("PredictNext(EE) = %v, %v", next, ok)
	}
}

func TestSuccessorPredictionTieBreaksDeterministically(t *testing.T) {
	is := isa.H264()
	m := New(is, 1)
	m.RecordTransition(isa.HotSpotME, isa.HotSpotLF)
	m.RecordTransition(isa.HotSpotME, isa.HotSpotEE)
	next, ok := m.PredictNext(isa.HotSpotME)
	if !ok || next != isa.HotSpotEE {
		t.Fatalf("tie should pick the lower hot-spot id, got %v", next)
	}
}
