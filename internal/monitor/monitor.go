// Package monitor implements the online monitoring of SI execution
// frequencies that feeds the RISPP run-time system (paper Section 3.1,
// task II of the Run-Time Manager; the lightweight implementation follows
// the self-adaptive scheme of reference [24]).
//
// During each execution of a hot spot the monitor counts how often every SI
// executes. When the hot spot is left, the measured value is compared with
// the previous expectation and the expectation for the next execution
// iteration of this hot spot is updated. To stay implementable as a small
// hardware block, the update uses a binary-shift exponential smoothing
//
//	expected += (measured - expected) >> Shift
//
// i.e. a smoothing factor α = 2^-Shift, avoiding multipliers and dividers.
package monitor

import (
	"fmt"

	"rispp/internal/isa"
)

// DefaultShift gives α = 0.5: fast adaptation to scene changes while still
// damping single-frame outliers.
const DefaultShift = 1

// Monitor tracks per-hot-spot SI execution counts and maintains the
// expected executions used by Molecule selection and the SI Scheduler.
type Monitor struct {
	is    *isa.ISA
	shift uint

	expected   map[isa.HotSpotID][]int64 // per hot spot: expectation per SI
	counts     []int64                   // live counters of the current hot spot
	current    isa.HotSpotID
	inSpot     bool
	successors map[isa.HotSpotID]map[isa.HotSpotID]int // hot-spot rotation

	// Incremental-update bookkeeping: LeaveHotSpot must visit exactly the
	// SIs with counts[si] != 0 or expected[si] != 0. touched lists the
	// former (appended on a counter's 0→nonzero transition), nz[h] is a
	// superset of the latter (rebuilt exactly on every LeaveHotSpot), and
	// mark/epoch dedupe the union of the two lists without a clearing pass.
	touched []isa.SIID
	nz      map[isa.HotSpotID][]isa.SIID
	mark    []uint32
	epoch   uint32
	nzSwap  []isa.SIID

	// ObservedSpots counts completed hot-spot executions per hot spot.
	ObservedSpots map[isa.HotSpotID]int
	// AbsError accumulates |measured − previous expectation| per SI across
	// all hot-spot executions; used to evaluate forecast quality.
	AbsError int64
	// Samples counts the (hot spot, SI) forecast comparisons behind AbsError.
	Samples int
}

// New creates a monitor for the given ISA with smoothing α = 2^-shift.
func New(is *isa.ISA, shift uint) *Monitor {
	return &Monitor{
		is:            is,
		shift:         shift,
		expected:      make(map[isa.HotSpotID][]int64),
		counts:        make([]int64, len(is.SIs)),
		nz:            make(map[isa.HotSpotID][]isa.SIID),
		mark:          make([]uint32, len(is.SIs)),
		ObservedSpots: make(map[isa.HotSpotID]int),
	}
}

// Reset returns the monitor to its power-on state — no expectations, no
// observed hot spots, no learned rotation — without freeing any backing
// storage: expectation vectors are zeroed in place and maps are cleared, so
// a steady-state Reset+relearn cycle over the same hot spots allocates
// nothing. Behaviorally identical to a freshly constructed Monitor.
func (m *Monitor) Reset() {
	for _, e := range m.expected {
		for i := range e {
			e[i] = 0
		}
	}
	for i := range m.counts {
		m.counts[i] = 0
	}
	m.touched = m.touched[:0]
	for h := range m.nz {
		m.nz[h] = m.nz[h][:0]
	}
	m.current = 0
	m.inSpot = false
	for _, row := range m.successors {
		clear(row)
	}
	clear(m.ObservedSpots)
	m.AbsError = 0
	m.Samples = 0
}

// Seed initializes the expectation of an SI before its hot spot was ever
// observed, e.g. from an offline profiling run. Without seeding, the first
// execution of a hot spot runs with zero expectations (every SI equally
// unimportant) and the monitor learns from there.
func (m *Monitor) Seed(si isa.SIID, expected int64) {
	h := m.is.SI(si).HotSpot
	m.expected[h] = m.ensure(h)
	m.expected[h][si] = expected
	if expected != 0 {
		m.noteNonzero(h, si)
	}
}

// noteNonzero registers si in the nonzero-expectation list of hot spot h,
// preserving the nz ⊇ {si : expected[si] ≠ 0} invariant. Linear dedupe —
// only called from cold paths (Seed, RestoreFrom fallback).
func (m *Monitor) noteNonzero(h isa.HotSpotID, si isa.SIID) {
	for _, x := range m.nz[h] {
		if x == si {
			return
		}
	}
	m.nz[h] = append(m.nz[h], si)
}

func (m *Monitor) ensure(h isa.HotSpotID) []int64 {
	if e, ok := m.expected[h]; ok {
		return e
	}
	e := make([]int64, len(m.is.SIs))
	m.expected[h] = e
	return e
}

// EnterHotSpot starts counting SI executions for hot spot h. Entering a new
// hot spot while another is active finalizes the previous one first.
// O(1): counters were zeroed lazily when the previous hot spot was left.
func (m *Monitor) EnterHotSpot(h isa.HotSpotID) {
	if m.inSpot {
		m.LeaveHotSpot()
	}
	m.current = h
	m.inSpot = true
}

// Record counts n executions of SI si within the current hot spot.
func (m *Monitor) Record(si isa.SIID, n int64) {
	if !m.inSpot {
		panic("monitor: Record outside a hot spot")
	}
	if n == 0 {
		return
	}
	if m.counts[si] == 0 {
		m.touched = append(m.touched, si)
	}
	m.counts[si] += n
}

// LeaveHotSpot finalizes the current hot spot execution: expectations are
// updated from the measured counts. Cost is O(changed) — proportional to
// the SIs that executed this round plus the SIs with a nonzero expectation
// for this hot spot — not O(SIs): the update below visits exactly the SIs
// the old full scan would not have skipped (counts ≠ 0 or expected ≠ 0),
// so AbsError/Samples and every expectation update are order-independent
// sums over the identical set.
func (m *Monitor) LeaveHotSpot() {
	if !m.inSpot {
		return
	}
	e := m.ensure(m.current)
	first := m.ObservedSpots[m.current] == 0
	m.epoch++
	keep := m.nzSwap[:0]
	for _, si := range m.touched {
		m.mark[si] = m.epoch
		m.settle(e, si, first)
		if e[si] != 0 {
			keep = append(keep, si)
		}
		m.counts[si] = 0
	}
	for _, si := range m.nz[m.current] {
		if m.mark[si] == m.epoch || e[si] == 0 {
			continue
		}
		m.mark[si] = m.epoch
		m.settle(e, si, first)
		if e[si] != 0 {
			keep = append(keep, si)
		}
	}
	m.nzSwap = m.nz[m.current][:0]
	m.nz[m.current] = keep
	m.touched = m.touched[:0]
	m.ObservedSpots[m.current]++
	m.inSpot = false
}

// settle applies the smoothing update for one SI of the current hot spot.
func (m *Monitor) settle(e []int64, si isa.SIID, first bool) {
	diff := m.counts[si] - e[si]
	if diff < 0 {
		m.AbsError += -diff
	} else {
		m.AbsError += diff
	}
	m.Samples++
	if first && e[si] == 0 {
		// Cold start: adopt the first measurement outright instead of
		// halving toward it.
		e[si] = m.counts[si]
	} else {
		// Arithmetic shift: negative diffs round toward −∞, so the
		// expectation can always decay back to zero.
		e[si] += diff >> m.shift
	}
}

// Expected returns the expected number of executions of SI si the next time
// hot spot h runs. Unobserved, unseeded SIs forecast zero.
func (m *Monitor) Expected(h isa.HotSpotID, si isa.SIID) int64 {
	if e, ok := m.expected[h]; ok {
		return e[si]
	}
	return 0
}

// Forecast returns the expectation vector for all SIs of hot spot h.
func (m *Monitor) Forecast(h isa.HotSpotID) map[isa.SIID]int64 {
	out := make(map[isa.SIID]int64)
	for _, si := range m.is.HotSpotSIs(h) {
		if v := m.Expected(h, si.ID); v > 0 {
			out[si.ID] = v
		}
	}
	return out
}

// MeanAbsError reports the average absolute forecast error per sample.
func (m *Monitor) MeanAbsError() float64 {
	if m.Samples == 0 {
		return 0
	}
	return float64(m.AbsError) / float64(m.Samples)
}

func (m *Monitor) String() string {
	return fmt.Sprintf("monitor(α=2^-%d, spots=%v)", m.shift, m.ObservedSpots)
}

// State is an opaque deep copy of a Monitor's learned state, produced by
// SaveInto at a phase boundary (between hot spots) and consumed by
// RestoreFrom. Arenas inside are reused across saves.
type State struct {
	expected   map[isa.HotSpotID][]int64
	nz         map[isa.HotSpotID][]isa.SIID
	successors map[isa.HotSpotID]map[isa.HotSpotID]int
	observed   map[isa.HotSpotID]int
	current    isa.HotSpotID
	absError   int64
	samples    int
}

// SaveInto copies the monitor's learned state into dst. Must be called
// between hot spots (after LeaveHotSpot): live counters are then all zero
// and need not be captured.
func (m *Monitor) SaveInto(dst *State) {
	if m.inSpot {
		panic("monitor: SaveInto inside a hot spot")
	}
	if dst.expected == nil {
		dst.expected = make(map[isa.HotSpotID][]int64)
		dst.nz = make(map[isa.HotSpotID][]isa.SIID)
		dst.observed = make(map[isa.HotSpotID]int)
	}
	for h := range dst.expected {
		if _, ok := m.expected[h]; !ok {
			delete(dst.expected, h)
			delete(dst.nz, h)
		}
	}
	for h, e := range m.expected {
		de := dst.expected[h]
		if cap(de) < len(e) {
			de = make([]int64, len(e))
		}
		de = de[:len(e)]
		copy(de, e)
		dst.expected[h] = de
		dst.nz[h] = append(dst.nz[h][:0], m.nz[h]...)
	}
	if m.successors != nil && dst.successors == nil {
		dst.successors = make(map[isa.HotSpotID]map[isa.HotSpotID]int)
	}
	for h, row := range dst.successors {
		if _, ok := m.successors[h]; !ok {
			delete(dst.successors, h)
		} else {
			clear(row)
		}
	}
	for h, row := range m.successors {
		drow := dst.successors[h]
		if drow == nil {
			drow = make(map[isa.HotSpotID]int, len(row))
			dst.successors[h] = drow
		}
		for to, n := range row {
			drow[to] = n
		}
	}
	clear(dst.observed)
	for h, n := range m.ObservedSpots {
		dst.observed[h] = n
	}
	dst.current = m.current
	dst.absError = m.AbsError
	dst.samples = m.Samples
}

// RestoreFrom overwrites the monitor's learned state with a saved one. Keys
// the monitor has learned since the save are zeroed in place rather than
// deleted — a zero expectation vector is behaviorally identical to an
// absent one — so steady-state restores allocate nothing.
func (m *Monitor) RestoreFrom(src *State) {
	for h, e := range m.expected {
		if _, ok := src.expected[h]; !ok {
			for i := range e {
				e[i] = 0
			}
			m.nz[h] = m.nz[h][:0]
		}
	}
	for h, se := range src.expected {
		e := m.ensure(h)
		copy(e, se)
		m.nz[h] = append(m.nz[h][:0], src.nz[h]...)
	}
	for i := range m.counts {
		m.counts[i] = 0
	}
	m.touched = m.touched[:0]
	m.inSpot = false
	m.current = src.current
	for h, row := range m.successors {
		if _, ok := src.successors[h]; !ok {
			clear(row)
		}
	}
	for h, srow := range src.successors {
		if m.successors == nil {
			m.successors = make(map[isa.HotSpotID]map[isa.HotSpotID]int)
		}
		row := m.successors[h]
		if row == nil {
			row = make(map[isa.HotSpotID]int, len(srow))
			m.successors[h] = row
		} else {
			clear(row)
		}
		for to, n := range srow {
			row[to] = n
		}
	}
	clear(m.ObservedSpots)
	for h, n := range src.observed {
		m.ObservedSpots[h] = n
	}
	m.AbsError = src.absError
	m.Samples = src.samples
}

// Successor prediction: the monitor also learns the hot-spot rotation
// (ME → EE → LF → ME … in the H.264 encoder) so the Run-Time Manager can
// prefetch Atoms for the upcoming hot spot while the reconfiguration port
// would otherwise idle.

// RecordTransition counts an observed hot-spot transition from → to. The
// Manager calls it on every hot-spot switch.
func (m *Monitor) RecordTransition(from, to isa.HotSpotID) {
	if m.successors == nil {
		m.successors = make(map[isa.HotSpotID]map[isa.HotSpotID]int)
	}
	row := m.successors[from]
	if row == nil {
		row = make(map[isa.HotSpotID]int)
		m.successors[from] = row
	}
	row[to]++
}

// PredictNext returns the most frequently observed successor of hot spot h.
// ok is false when h has no recorded successor yet.
func (m *Monitor) PredictNext(h isa.HotSpotID) (next isa.HotSpotID, ok bool) {
	row := m.successors[h]
	best := -1
	for to, n := range row {
		if n > best || (n == best && to < next) {
			best, next, ok = n, to, true
		}
	}
	return next, ok
}
