// Benchmarks of the simulator hot path. BenchmarkRun is the headline
// number tracked in EXPERIMENTS.md ("Hot-path optimisation"): the
// steady-state compiled-trace run path must stay at 0 allocs/op.
//
// Run with: go test -bench . -benchmem ./internal/sim
package sim_test

import (
	"context"
	"io"
	"testing"

	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/molen"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

func compiledFrame(b testing.TB, frames int) (*isa.ISA, *workload.Compiled) {
	b.Helper()
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: frames})
	ct, err := workload.Compile(tr, is)
	if err != nil {
		b.Fatal(err)
	}
	return is, ct
}

func hefManager(is *isa.ISA, ct *workload.Compiled) *core.Manager {
	s, _ := sched.New("HEF")
	m := core.NewManager(core.Config{ISA: is, NumACs: 10, Scheduler: s})
	m.SeedFromTrace(ct.Trace)
	return m
}

// BenchmarkRun measures the steady-state run path: a compiled one-frame
// H.264 trace executed into a reused Result with no journal and no
// histogram. This is the loop design-space exploration pays per point;
// it must report 0 allocs/op.
func BenchmarkRun(b *testing.B) {
	is, ct := compiledFrame(b, 1)
	rt := sim.Software(is)
	var res sim.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.RunCompiled(context.Background(), ct, rt, sim.Options{}, &res); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TotalCycles), "simulated-cycles/op")
}

// BenchmarkRunHEF is BenchmarkRun against the full RISPP run-time system
// (HEF at 10 ACs); remaining allocations come from the run-time manager's
// own per-phase scheduling work, not the simulator.
func BenchmarkRunHEF(b *testing.B) {
	is, ct := compiledFrame(b, 1)
	rt := hefManager(is, ct)
	var res sim.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.RunCompiled(context.Background(), ct, rt, sim.Options{}, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunJournal measures the journal hot path: the hand-rolled
// buffered event encoder against a discarding writer.
func BenchmarkRunJournal(b *testing.B) {
	is, ct := compiledFrame(b, 1)
	rt := hefManager(is, ct)
	opts := sim.Options{Journal: io.Discard}
	var res sim.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.RunCompiled(context.Background(), ct, rt, opts, &res); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunOneShot measures the convenience API (compile + allocate per
// call) for comparison with the steady-state path. Its allocations are the
// one-shot contract itself, not leakage from the hot path: Run hands a
// fresh caller-owned *Result back (so it cannot come from a pool — 4
// allocations: the struct, the fused dense counter backing, journal
// scratch, phase stats) and compiles the trace per call as documented
// (the rest; flat burst arrays, per-hot-spot SI lists, the spot memo).
// Callers that care run workload.Compile once and use RunCompiled, which
// is allocation-free in the steady state — the gap between this benchmark
// and BenchmarkRun is exactly what that buys. benchcheck gates both the
// ns/op and the allocation count here, so any new one-shot allocation
// still fails the build.
func BenchmarkRunOneShot(b *testing.B) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	rt := sim.Software(is)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr, is, rt, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures lowering a one-frame trace.
func BenchmarkCompile(b *testing.B) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Compile(tr, is); err != nil {
			b.Fatal(err)
		}
	}
}

// namedRuntime pairs a run-time system with its paper name for the
// reuse gates; the list covers all six systems of the paper comparison.
type namedRuntime struct {
	name string
	rt   sim.Runtime
}

func allRuntimes(tb testing.TB, is *isa.ISA, ct *workload.Compiled) []namedRuntime {
	tb.Helper()
	var out []namedRuntime
	for _, name := range sched.Names {
		s, err := sched.New(name)
		if err != nil {
			tb.Fatal(err)
		}
		m := core.NewManager(core.Config{ISA: is, NumACs: 10, Scheduler: s})
		m.SeedFromTrace(ct.Trace)
		out = append(out, namedRuntime{name, m})
	}
	mo := molen.New(molen.Config{ISA: is, NumACs: 10})
	mo.SeedFromTrace(ct.Trace)
	out = append(out, namedRuntime{"Molen", mo})
	out = append(out, namedRuntime{"software", sim.Software(is)})
	return out
}

// BenchmarkRunReused measures the reused one-shot path the sweep stack
// pays per point with runtime pooling: construct each run-time system once,
// then Reset+run per iteration (RunCompiled resets the runtime itself).
// Steady state must be 0 allocs/op for all six systems.
func BenchmarkRunReused(b *testing.B) {
	is, ct := compiledFrame(b, 1)
	for _, nr := range allRuntimes(b, is, ct) {
		b.Run(nr.name, func(b *testing.B) {
			var res sim.Result
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sim.RunCompiled(context.Background(), ct, nr.rt, sim.Options{}, &res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestRunReusedZeroAllocs is the allocation regression gate for the reused
// one-shot path: after a warm-up run sizes every arena, Reset+run of each
// of the six run-time systems must not allocate at all.
func TestRunReusedZeroAllocs(t *testing.T) {
	is, ct := compiledFrame(t, 1)
	for _, nr := range allRuntimes(t, is, ct) {
		t.Run(nr.name, func(t *testing.T) {
			var res sim.Result
			for i := 0; i < 2; i++ { // warm up arenas and Result
				if err := sim.RunCompiled(context.Background(), ct, nr.rt, sim.Options{}, &res); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(20, func() {
				if err := sim.RunCompiled(context.Background(), ct, nr.rt, sim.Options{}, &res); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state Reset+run of %s allocates %.1f times per run, want 0", nr.name, avg)
			}
		})
	}
}

// TestRunZeroAllocs is the allocation regression gate for the steady-state
// run path: after the first run warms the Result, further runs of a
// compiled trace must not allocate at all.
func TestRunZeroAllocs(t *testing.T) {
	is, ct := compiledFrame(t, 1)
	rt := sim.Software(is)
	var res sim.Result
	if err := sim.RunCompiled(context.Background(), ct, rt, sim.Options{}, &res); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := sim.RunCompiled(context.Background(), ct, rt, sim.Options{}, &res); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state RunCompiled allocates %.1f times per run, want 0", avg)
	}
}

// TestRunJournalAllocsBounded keeps the journal path's per-run allocations
// at a small constant (pooled encoder state, independent of event count).
func TestRunJournalAllocsBounded(t *testing.T) {
	is, ct := compiledFrame(t, 1)
	rt := hefManager(is, ct)
	opts := sim.Options{Journal: io.Discard}
	var res sim.Result
	if err := sim.RunCompiled(context.Background(), ct, rt, opts, &res); err != nil {
		t.Fatal(err)
	}
	base := testing.AllocsPerRun(10, func() {
		if err := sim.RunCompiled(context.Background(), ct, rt, sim.Options{}, &res); err != nil {
			t.Fatal(err)
		}
	})
	withJournal := testing.AllocsPerRun(10, func() {
		if err := sim.RunCompiled(context.Background(), ct, rt, opts, &res); err != nil {
			t.Fatal(err)
		}
	})
	// The journal writes hundreds of events per frame; its cost must not
	// scale with them. Allow a small constant for pool churn.
	if withJournal-base > 4 {
		t.Errorf("journal adds %.1f allocs per run (base %.1f), want ≤ 4", withJournal-base, base)
	}
}
