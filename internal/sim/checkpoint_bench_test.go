// Benchmarks of the delta-resimulation layer: recording overhead on top of
// a plain run, the cost of a runtime-free full skip, and a cross-budget
// partial resume. Tracked in BENCH_baseline.json via benchcheck.
package sim_test

import (
	"context"
	"testing"

	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

func hefManagerAt(is *isa.ISA, ct *workload.Compiled, acs int) *core.Manager {
	s, _ := sched.New("HEF")
	m := core.NewManager(core.Config{ISA: is, NumACs: acs, Scheduler: s})
	m.SeedFromTrace(ct.Trace)
	return m
}

// BenchmarkRunCheckpointRecord is BenchmarkRunHEF with trail recording:
// the delta to BenchmarkRunHEF is the pure snapshot overhead (state deep
// copies at promoted phase boundaries into a reused Trail).
func BenchmarkRunCheckpointRecord(b *testing.B) {
	is, ct := compiledFrame(b, 1)
	rt := hefManagerAt(is, ct, 10)
	var res sim.Result
	var trail sim.Trail
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.RunCompiledTrail(context.Background(), ct, rt, sim.Options{}, &res, &trail); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunDeltaServe measures a full skip: serving a recorded run to
// its own budget from the trail alone — no runtime, no simulation. This is
// the steady-state cost of re-evaluating an already-explored design point.
func BenchmarkRunDeltaServe(b *testing.B) {
	is, ct := compiledFrame(b, 1)
	rt := hefManagerAt(is, ct, 10)
	var trail sim.Trail
	if err := sim.RunCompiledTrail(context.Background(), ct, rt, sim.Options{}, new(sim.Result), &trail); err != nil {
		b.Fatal(err)
	}
	var res sim.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		served, err := trail.Serve(ct, 10, sim.Options{}, &res)
		if err != nil {
			b.Fatal(err)
		}
		if !served {
			b.Fatal("trail did not serve its own budget")
		}
	}
}

// BenchmarkRunDeltaResume measures a cross-budget partial resume: a trail
// recorded at 10 ACs resumed at 9, restoring the deepest transferable
// snapshot and simulating only the remaining suffix of the trace.
func BenchmarkRunDeltaResume(b *testing.B) {
	is, ct := compiledFrame(b, 1)
	rec := hefManagerAt(is, ct, 10)
	var trail sim.Trail
	if err := sim.RunCompiledTrail(context.Background(), ct, rec, sim.Options{}, new(sim.Result), &trail); err != nil {
		b.Fatal(err)
	}
	rt := hefManagerAt(is, ct, 9)
	if served, _ := trail.Serve(ct, 9, sim.Options{}, new(sim.Result)); served {
		b.Skip("trail fully transfers to 9 ACs; no partial resume to measure")
	}
	var res sim.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		used, err := sim.ResumeCompiled(context.Background(), ct, rt, sim.Options{}, &res, &trail, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !used {
			b.Fatal("no transferable snapshot")
		}
	}
}
