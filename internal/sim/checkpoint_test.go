// Tests for delta-resimulation: trails recorded at one container budget
// must serve or resume runs at other budgets field-exact — journal bytes
// included — against fresh from-power-on runs.
package sim_test

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/molen"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

var checkpointSystems = []string{"FSFR", "ASF", "SJF", "HEF", "Molen", "software"}

func checkpointRuntime(t testing.TB, system string, is *isa.ISA, tr *workload.Trace, numACs int) sim.Checkpointable {
	t.Helper()
	switch system {
	case "software":
		return sim.Software(is).(sim.Checkpointable)
	case "Molen":
		r := molen.New(molen.Config{ISA: is, NumACs: numACs})
		r.SeedFromTrace(tr)
		return r
	default:
		s, err := sched.New(system)
		if err != nil {
			t.Fatal(err)
		}
		m := core.NewManager(core.Config{ISA: is, NumACs: numACs, Scheduler: s})
		m.SeedFromTrace(tr)
		return m
	}
}

// requireSameRun compares everything a delta-eligible run produces.
func requireSameRun(t *testing.T, label string, got, want *sim.Result, gotJ, wantJ []byte) {
	t.Helper()
	if got.Runtime != want.Runtime {
		t.Errorf("%s: Runtime = %q, want %q", label, got.Runtime, want.Runtime)
	}
	if got.TotalCycles != want.TotalCycles {
		t.Errorf("%s: TotalCycles = %d, want %d", label, got.TotalCycles, want.TotalCycles)
	}
	if got.StallCycles != want.StallCycles {
		t.Errorf("%s: StallCycles = %d, want %d", label, got.StallCycles, want.StallCycles)
	}
	if !reflect.DeepEqual(got.Phases, want.Phases) {
		t.Errorf("%s: Phases differ:\n got %v\nwant %v", label, got.Phases, want.Phases)
	}
	if !reflect.DeepEqual(got.Executions(), want.Executions()) {
		t.Errorf("%s: Executions = %v, want %v", label, got.Executions(), want.Executions())
	}
	if !reflect.DeepEqual(got.SWExecutions(), want.SWExecutions()) {
		t.Errorf("%s: SWExecutions = %v, want %v", label, got.SWExecutions(), want.SWExecutions())
	}
	if !reflect.DeepEqual(got.HWExecutions(), want.HWExecutions()) {
		t.Errorf("%s: HWExecutions = %v, want %v", label, got.HWExecutions(), want.HWExecutions())
	}
	if !bytes.Equal(gotJ, wantJ) {
		t.Errorf("%s: journal bytes differ (%d vs %d bytes)", label, len(gotJ), len(wantJ))
		gl, wl := bytes.Split(gotJ, []byte("\n")), bytes.Split(wantJ, []byte("\n"))
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if !bytes.Equal(gl[i], wl[i]) {
				t.Errorf("%s: first differing journal line %d:\n got %s\nwant %s", label, i, gl[i], wl[i])
				break
			}
		}
	}
}

// TestTrailCrossBudgetEquivalence records a trail at one budget and then
// satisfies every other budget through the delta machinery (full skip where
// legal, partial resume otherwise), comparing each against a fresh
// from-power-on run with a journal attached. This is the core legality
// property: restored prefixes must be indistinguishable from re-simulated
// ones.
func TestTrailCrossBudgetEquivalence(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	ct, err := workload.Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	budgets := []int{5, 10, 15, 24}
	const recordAt = 10

	for _, system := range checkpointSystems {
		t.Run(system, func(t *testing.T) {
			trail := new(sim.Trail)
			var recJ bytes.Buffer
			recRes := new(sim.Result)
			rt := checkpointRuntime(t, system, is, tr, recordAt)
			if err := sim.RunCompiledTrail(context.Background(), ct, rt,
				sim.Options{Journal: &recJ}, recRes, trail); err != nil {
				t.Fatal(err)
			}
			if !trail.Complete() {
				t.Fatal("trail not complete after successful run")
			}

			// The recording run itself must match a plain RunCompiled.
			var wantJ bytes.Buffer
			want := new(sim.Result)
			if err := sim.RunCompiled(context.Background(), ct,
				checkpointRuntime(t, system, is, tr, recordAt),
				sim.Options{Journal: &wantJ}, want); err != nil {
				t.Fatal(err)
			}
			requireSameRun(t, "record", recRes, want, recJ.Bytes(), wantJ.Bytes())

			for _, budget := range budgets {
				// Fresh reference at this budget.
				var refJ bytes.Buffer
				ref := new(sim.Result)
				if err := sim.RunCompiled(context.Background(), ct,
					checkpointRuntime(t, system, is, tr, budget),
					sim.Options{Journal: &refJ}, ref); err != nil {
					t.Fatal(err)
				}

				var gotJ bytes.Buffer
				got := new(sim.Result)
				served, err := trail.Serve(ct, budget, sim.Options{Journal: &gotJ}, got)
				if err != nil {
					t.Fatal(err)
				}
				if budget == recordAt && !served {
					t.Fatalf("budget %d: Serve failed for the recorded budget", budget)
				}
				path := "serve"
				if !served {
					rec := new(sim.Trail)
					rt := checkpointRuntime(t, system, is, tr, budget)
					used, err := sim.ResumeCompiled(context.Background(), ct, rt,
						sim.Options{Journal: &gotJ}, got, trail, rec)
					if err != nil {
						t.Fatal(err)
					}
					path = "resume"
					if !used {
						// No transferable prefix: fall back to a full
						// recording run, like the Runner does.
						if err := sim.RunCompiledTrail(context.Background(), ct, rt,
							sim.Options{Journal: &gotJ}, got, rec); err != nil {
							t.Fatal(err)
						}
						path = "record-fallback"
					}
					if !rec.Complete() {
						t.Fatalf("budget %d: re-recorded trail incomplete", budget)
					}
					// The re-recorded trail must now full-skip this budget.
					var skipJ bytes.Buffer
					skip := new(sim.Result)
					served2, err := rec.Serve(ct, budget, sim.Options{Journal: &skipJ}, skip)
					if err != nil {
						t.Fatal(err)
					}
					if !served2 {
						t.Fatalf("budget %d: re-recorded trail cannot serve its own budget", budget)
					}
					requireSameRun(t, "re-serve", skip, ref, skipJ.Bytes(), refJ.Bytes())
				}
				requireSameRun(t, path, got, ref, gotJ.Bytes(), refJ.Bytes())
			}
		})
	}
}

// TestTrailServeSameBudget pins the cheapest path: a completed trail serves
// its own budget without any runtime at all.
func TestTrailServeSameBudget(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	ct, err := workload.Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	trail := new(sim.Trail)
	res := new(sim.Result)
	rt := checkpointRuntime(t, "HEF", is, tr, 10)
	if err := sim.RunCompiledTrail(context.Background(), ct, rt, sim.Options{}, res, trail); err != nil {
		t.Fatal(err)
	}
	got := new(sim.Result)
	served, err := trail.Serve(ct, 10, sim.Options{}, got)
	if err != nil || !served {
		t.Fatalf("Serve = %v, %v; want true, nil", served, err)
	}
	if got.TotalCycles != res.TotalCycles || !reflect.DeepEqual(got.Executions(), res.Executions()) {
		t.Errorf("served result differs from recorded run")
	}
	// Serving must not have mutated the trail: serve again.
	got2 := new(sim.Result)
	if served, err := trail.Serve(ct, 10, sim.Options{}, got2); err != nil || !served {
		t.Fatalf("second Serve = %v, %v; want true, nil", served, err)
	}
	if !reflect.DeepEqual(got2.Phases, got.Phases) {
		t.Errorf("second serve differs from first")
	}
}

// TestTrailRejectsIneligibleOptions: histogram/timeline/max-cycles runs
// must refuse trail recording and serving.
func TestTrailRejectsIneligibleOptions(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	ct, err := workload.Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	rt := checkpointRuntime(t, "HEF", is, tr, 10)
	bad := []sim.Options{
		{HistogramBucket: 100_000},
		{Timeline: true},
		{MaxCycles: 1 << 40},
	}
	for _, opts := range bad {
		if sim.DeltaEligible(opts) {
			t.Errorf("DeltaEligible(%+v) = true, want false", opts)
		}
		if err := sim.RunCompiledTrail(context.Background(), ct, rt, opts, new(sim.Result), new(sim.Trail)); err == nil {
			t.Errorf("RunCompiledTrail accepted ineligible options %+v", opts)
		}
	}

	trail := new(sim.Trail)
	if err := sim.RunCompiledTrail(context.Background(), ct, rt, sim.Options{}, new(sim.Result), trail); err != nil {
		t.Fatal(err)
	}
	for _, opts := range bad {
		if served, _ := trail.Serve(ct, 10, opts, new(sim.Result)); served {
			t.Errorf("Serve accepted ineligible options %+v", opts)
		}
		used, err := sim.ResumeCompiled(context.Background(), ct, rt, opts, new(sim.Result), trail, nil)
		if used || err != nil {
			t.Errorf("ResumeCompiled(%+v) = %v, %v; want false, nil", opts, used, err)
		}
	}
	// A journal-collecting request cannot be served from a journal-less trail.
	var j bytes.Buffer
	if served, _ := trail.Serve(ct, 10, sim.Options{Journal: &j}, new(sim.Result)); served {
		t.Error("Serve produced a journal from a journal-less trail")
	}
}

// TestTrailPhaseCountMismatch: a trail recorded against one trace must not
// serve a trace with a different phase count.
func TestTrailPhaseCountMismatch(t *testing.T) {
	is := isa.H264()
	tr1 := workload.H264(workload.H264Config{Frames: 1})
	tr2 := workload.H264(workload.H264Config{Frames: 2})
	ct1, err := workload.Compile(tr1, is)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := workload.Compile(tr2, is)
	if err != nil {
		t.Fatal(err)
	}
	trail := new(sim.Trail)
	rt := checkpointRuntime(t, "HEF", is, tr1, 10)
	if err := sim.RunCompiledTrail(context.Background(), ct1, rt, sim.Options{}, new(sim.Result), trail); err != nil {
		t.Fatal(err)
	}
	if served, _ := trail.Serve(ct2, 10, sim.Options{}, new(sim.Result)); served {
		t.Error("trail served a trace with a different phase count")
	}
	if used, _ := sim.ResumeCompiled(context.Background(), ct2, rt, sim.Options{}, new(sim.Result), trail, nil); used {
		t.Error("trail resumed a trace with a different phase count")
	}
}

// TestSoftwareTrailServesAllBudgets: the software runtime is completely
// budget-insensitive, so one trail full-skips every budget.
func TestSoftwareTrailServesAllBudgets(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	ct, err := workload.Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	trail := new(sim.Trail)
	res := new(sim.Result)
	rt := checkpointRuntime(t, "software", is, tr, 0)
	if err := sim.RunCompiledTrail(context.Background(), ct, rt, sim.Options{}, res, trail); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 5, 24, 1000} {
		got := new(sim.Result)
		served, err := trail.Serve(ct, budget, sim.Options{}, got)
		if err != nil || !served {
			t.Fatalf("budget %d: Serve = %v, %v; want true, nil", budget, served, err)
		}
		if got.TotalCycles != res.TotalCycles {
			t.Errorf("budget %d: TotalCycles = %d, want %d", budget, got.TotalCycles, res.TotalCycles)
		}
	}
}

// TestTrailResultReuse: serving into a dirty reused Result must fully
// overwrite it.
func TestTrailResultReuse(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	ct, err := workload.Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	trail := new(sim.Trail)
	rt := checkpointRuntime(t, "ASF", is, tr, 10)
	want := new(sim.Result)
	if err := sim.RunCompiledTrail(context.Background(), ct, rt, sim.Options{}, want, trail); err != nil {
		t.Fatal(err)
	}
	// Dirty the Result with a different system's run, then serve into it.
	got := new(sim.Result)
	if err := sim.RunCompiled(context.Background(), ct,
		checkpointRuntime(t, "Molen", is, tr, 24), sim.Options{}, got); err != nil {
		t.Fatal(err)
	}
	if served, err := trail.Serve(ct, 10, sim.Options{}, got); err != nil || !served {
		t.Fatalf("Serve = %v, %v; want true, nil", served, err)
	}
	if got.Runtime != want.Runtime || got.TotalCycles != want.TotalCycles ||
		got.StallCycles != want.StallCycles ||
		!reflect.DeepEqual(got.Executions(), want.Executions()) ||
		!reflect.DeepEqual(got.Phases, want.Phases) {
		t.Errorf("served-into-dirty Result differs from recorded run")
	}
}
