// Package sim is the cycle-level discrete-event simulator of the RISPP
// evaluation platform: it executes a workload trace (hot-spot phases of SI
// bursts) against a pluggable run-time system (the RISPP Run-Time Manager
// of internal/core or the Molen-like baseline of internal/molen), modelling
// the concurrency between SI execution and background reconfiguration.
//
// The simulator advances in closed form between latency-changing events
// (Atom-load completions), so simulating billions of cycles costs time
// proportional to the number of bursts and reconfigurations, not cycles.
//
// The hot path is allocation-free in the steady state: traces are lowered
// by workload.Compile into flat burst arrays with pre-resolved SI metadata,
// per-SI accounting lives in dense slices indexed by SIID, and RunCompiled
// reuses a caller-owned Result across runs. Run/RunContext wrap this
// pipeline for one-shot use.
package sim

import (
	"context"
	"fmt"
	"io"

	"rispp/internal/isa"
	"rispp/internal/stats"
	"rispp/internal/workload"
)

// Runtime is the run-time system under simulation. The simulator calls
// EnterHotSpot/LeaveHotSpot around every phase, asks Latency before bursts,
// reports executions via Record, and processes latency-changing events
// (Atom-load completions) via NextEvent/Advance.
type Runtime interface {
	Name() string
	// Reset returns the runtime to its power-on state.
	Reset()
	// EnterHotSpot is invoked when the processor enters hot spot h at time
	// now; the runtime typically forecasts, selects Molecules and schedules
	// Atom loads here.
	EnterHotSpot(h isa.HotSpotID, now int64)
	// LeaveHotSpot is invoked when the phase ends.
	LeaveHotSpot(now int64)
	// Latency returns the current per-execution latency of si in cycles.
	// It must be a pure query: the simulator polls it at different rates
	// depending on which measurement artifacts are collected.
	Latency(si isa.SIID) int
	// Record reports n back-to-back executions of si ending at time now.
	Record(si isa.SIID, n int64, now int64)
	// NextEvent returns the time of the next latency-changing event, or
	// ok = false when none is pending.
	NextEvent() (at int64, ok bool)
	// Advance processes the single event returned by NextEvent; t must
	// equal that time.
	Advance(t int64)
}

// Options control what a simulation run collects.
type Options struct {
	// HistogramBucket, when > 0, collects per-SI execution histograms with
	// this bucket width in cycles (the paper uses 100,000).
	HistogramBucket int64
	// Timeline, when true, records SI latency steps (Figure 8 lines).
	Timeline bool
	// MaxCycles aborts the run when simulated time exceeds it (0 = no
	// limit); a safety harness for tests.
	MaxCycles int64
	// Journal, when non-nil, receives one JSON object per line for every
	// simulation event (phase entry/exit, Atom-load completions, SI latency
	// changes) — a machine-readable replay log for external analysis.
	// Events are encoded without encoding/json and buffered internally;
	// the buffer is flushed (with a single latched error) before the run
	// returns, so the writer needs no extra buffering of its own.
	Journal io.Writer
}

// JournalEvent is one line of the simulation journal.
type JournalEvent struct {
	Cycle   int64  `json:"t"`
	Event   string `json:"ev"`      // "enter", "leave", "load", "latency"
	HotSpot int    `json:"hotspot"` // enter/leave
	SI      int    `json:"si"`      // latency
	Latency int    `json:"lat"`     // latency
}

// PhaseStat records the boundaries of one executed hot-spot phase.
type PhaseStat struct {
	HotSpot isa.HotSpotID
	Start   int64
	End     int64
}

// Cycles returns the duration of the phase.
func (p PhaseStat) Cycles() int64 { return p.End - p.Start }

// Result aggregates the outcome of one simulation run. Per-SI accounting
// is stored densely (slices indexed by SIID); the map accessors build the
// classic map form on demand at the API boundary. A Result can be reused
// across RunCompiled calls to eliminate steady-state allocations.
type Result struct {
	Runtime     string
	TotalCycles int64
	// StallCycles counts cycles spent in SI executions beyond what the
	// fastest Molecule of each SI would have needed — the price of not yet
	// (or never) being fully composed.
	StallCycles int64
	// Phases records the boundaries of every executed hot-spot phase.
	Phases []PhaseStat

	Histogram *stats.Histogram
	Timeline  *stats.Timeline

	// Dense per-SI accounting, indexed by SIID (length: number of SIs of
	// the ISA the trace was compiled against). The three slices are views
	// into one shared backing array (dense), so a fresh Result costs one
	// allocation for all counters.
	dense   []int64
	execs   []int64
	swExecs []int64
	hwExecs []int64
	// lastLat is per-run journal scratch (latency change detection).
	lastLat []int
}

// Executions returns the per-SI execution counts as a map with one entry
// per executed SI — the classic map form of the accounting.
func (r *Result) Executions() map[isa.SIID]int64 { return denseToMap(r.execs) }

// SWExecutions returns, per SI, the executions that ran via the base-ISA
// trap (one map entry per SI with at least one software execution).
func (r *Result) SWExecutions() map[isa.SIID]int64 { return denseToMap(r.swExecs) }

// HWExecutions returns, per SI, the executions that ran on composed
// Molecules (one map entry per SI with at least one hardware execution).
func (r *Result) HWExecutions() map[isa.SIID]int64 { return denseToMap(r.hwExecs) }

// ExecutionsOf returns the execution count of one SI without building a map.
func (r *Result) ExecutionsOf(si isa.SIID) int64 { return denseAt(r.execs, si) }

// SWExecutionsOf returns the software (trap) execution count of one SI.
func (r *Result) SWExecutionsOf(si isa.SIID) int64 { return denseAt(r.swExecs, si) }

// HWExecutionsOf returns the hardware (Molecule) execution count of one SI.
func (r *Result) HWExecutionsOf(si isa.SIID) int64 { return denseAt(r.hwExecs, si) }

// TotalExecutions returns the total SI executions of the run.
func (r *Result) TotalExecutions() int64 { return denseSum(r.execs) }

// TotalSWExecutions returns the total software (trap) SI executions.
func (r *Result) TotalSWExecutions() int64 { return denseSum(r.swExecs) }

// TotalHWExecutions returns the total hardware (Molecule) SI executions.
func (r *Result) TotalHWExecutions() int64 { return denseSum(r.hwExecs) }

// ExecutedSIs returns the SIs with at least one execution, in ascending
// SIID order.
func (r *Result) ExecutedSIs() []isa.SIID {
	var out []isa.SIID
	for si, n := range r.execs {
		if n != 0 {
			out = append(out, isa.SIID(si))
		}
	}
	return out
}

func denseAt(d []int64, si isa.SIID) int64 {
	if int(si) < 0 || int(si) >= len(d) {
		return 0
	}
	return d[si]
}

func denseSum(d []int64) int64 {
	var n int64
	for _, v := range d {
		n += v
	}
	return n
}

func denseToMap(d []int64) map[isa.SIID]int64 {
	m := make(map[isa.SIID]int64)
	for si, n := range d {
		if n != 0 {
			m[isa.SIID(si)] = n
		}
	}
	return m
}

// reset prepares the Result for a run over nSIs SIs and up to nPhases
// phases, reusing previous allocations where possible.
func (r *Result) reset(runtime string, nSIs, nPhases int, opts Options) {
	r.Runtime = runtime
	r.TotalCycles = 0
	r.StallCycles = 0
	if cap(r.dense) < 3*nSIs {
		r.dense = make([]int64, 3*nSIs)
	}
	r.dense = r.dense[:3*nSIs]
	for i := range r.dense {
		r.dense[i] = 0
	}
	r.execs = r.dense[0*nSIs : 1*nSIs : 1*nSIs]
	r.swExecs = r.dense[1*nSIs : 2*nSIs : 2*nSIs]
	r.hwExecs = r.dense[2*nSIs : 3*nSIs : 3*nSIs]
	if cap(r.lastLat) < nSIs {
		r.lastLat = make([]int, nSIs)
	} else {
		r.lastLat = r.lastLat[:nSIs]
		for i := range r.lastLat {
			r.lastLat[i] = 0
		}
	}
	if cap(r.Phases) < nPhases {
		r.Phases = make([]PhaseStat, 0, nPhases)
	} else {
		r.Phases = r.Phases[:0]
	}
	if opts.HistogramBucket > 0 {
		if r.Histogram != nil && r.Histogram.BucketCycles == opts.HistogramBucket {
			r.Histogram.Reset()
		} else {
			r.Histogram = stats.NewHistogram(opts.HistogramBucket)
		}
	} else {
		r.Histogram = nil
	}
	if opts.Timeline {
		if r.Timeline != nil {
			r.Timeline.Reset()
		} else {
			r.Timeline = &stats.Timeline{}
		}
	} else {
		r.Timeline = nil
	}
}

// Run simulates the trace on the runtime and returns the result. The
// runtime is Reset first, so a Runtime can be reused across runs.
func Run(tr *workload.Trace, is *isa.ISA, rt Runtime, opts Options) (*Result, error) {
	return RunContext(context.Background(), tr, is, rt, opts)
}

// RunContext is Run with cancellation: the context is checked between
// simulation events (phase boundaries and Atom-load completions — not per
// simulated cycle, which would defeat the closed-form advance). On
// cancellation it returns an error wrapping ctx.Err().
//
// RunContext compiles the trace on every call; callers running the same
// trace repeatedly should Compile once and use RunCompiled.
func RunContext(ctx context.Context, tr *workload.Trace, is *isa.ISA, rt Runtime, opts Options) (*Result, error) {
	ct, err := workload.Compile(tr, is)
	if err != nil {
		return nil, err
	}
	res := new(Result)
	if err := RunCompiled(ctx, ct, rt, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunCompiled simulates a pre-compiled trace into a caller-owned Result,
// reusing the Result's internal buffers: repeated runs into the same Result
// allocate nothing in the steady state (without journal or histogram
// collection). The runtime is Reset first. On error the Result holds the
// partial state of the aborted run and must not be interpreted.
func RunCompiled(ctx context.Context, ct *workload.Compiled, rt Runtime, opts Options, res *Result) error {
	rt.Reset()
	res.reset(rt.Name(), ct.NumSIs, len(ct.Phases), opts)
	var js *journalState
	if opts.Journal != nil {
		js = newJournalState(opts.Journal)
	}
	r := runner{
		ctx:       ctx,
		done:      ctx.Done(), // nil for context.Background(): free check
		rt:        rt,
		res:       res,
		js:        js,
		maxCycles: opts.MaxCycles,
	}
	err := r.run(ct)
	if js != nil {
		if jerr := js.close(); err == nil {
			err = jerr
		}
	}
	return err
}

// maxInlineSet is the runtime count up to which RunCompiledSet runs without
// allocating its runner table (the six paper systems fit).
const maxInlineSet = 8

// RunCompiledSet simulates one compiled trace against several run-time
// systems in a single pass: the trace is walked once, phase by phase, with
// every runtime executing each phase in turn before the walk moves on. The
// runtimes are independent, so each results[i] is field-exact identical to
// a sequential RunCompiled(ctx, ct, rts[i], opts, results[i]) — the batch
// form only shares the walk (hot compiled-trace data stays cached across
// systems, the per-point overhead is paid once per grid point instead of
// once per system).
//
// Every runtime is Reset first and results[i] receives rts[i]'s run.
// Options apply to all systems; Journal is not supported (the N interleaved
// event streams would be unusable) and returns an error. On error the
// results hold partial state and must not be interpreted.
func RunCompiledSet(ctx context.Context, ct *workload.Compiled, rts []Runtime, opts Options, results []*Result) error {
	if opts.Journal != nil {
		return fmt.Errorf("sim: RunCompiledSet does not support a journal; run the systems individually")
	}
	if len(rts) != len(results) {
		return fmt.Errorf("sim: RunCompiledSet got %d runtimes but %d results", len(rts), len(results))
	}
	var buf [maxInlineSet]runner
	var runners []runner
	if len(rts) <= maxInlineSet {
		runners = buf[:len(rts)]
	} else {
		runners = make([]runner, len(rts))
	}
	done := ctx.Done()
	for i, rt := range rts {
		rt.Reset()
		results[i].reset(rt.Name(), ct.NumSIs, len(ct.Phases), opts)
		runners[i] = runner{
			ctx:       ctx,
			done:      done,
			rt:        rt,
			res:       results[i],
			maxCycles: opts.MaxCycles,
		}
	}
	for pi := range ct.Phases {
		for i := range runners {
			if err := runners[i].runPhase(ct, pi); err != nil {
				return err
			}
		}
	}
	for i := range runners {
		results[i].TotalCycles = runners[i].now
	}
	return nil
}

// runner is the per-run simulator state; it lives on the stack of
// RunCompiled so the steady-state run path allocates nothing.
type runner struct {
	ctx       context.Context
	done      <-chan struct{}
	rt        Runtime
	res       *Result
	js        *journalState
	now       int64
	maxCycles int64
	cancelErr error
	rec       *trailRec // non-nil when recording a checkpoint trail
}

func (r *runner) canceled() bool {
	if r.done == nil || r.cancelErr != nil {
		return r.cancelErr != nil
	}
	select {
	case <-r.done:
		r.cancelErr = fmt.Errorf("sim: canceled at cycle %d: %w", r.now, r.ctx.Err())
		return true
	default:
		return false
	}
}

// recordLats polls the runtime's current SI latencies for the timeline and
// the journal's latency-change events. Without either artifact it is a
// no-op: Latency is a pure query, so skipping the poll cannot change the
// simulation.
func (r *runner) recordLats(at int64, spot []isa.SIID) {
	if r.js == nil && r.res.Timeline == nil {
		return
	}
	for _, si := range spot {
		lat := r.rt.Latency(si)
		if r.res.Timeline != nil {
			r.res.Timeline.Record(at, int(si), lat)
		}
		if r.js != nil && r.res.lastLat[si] != lat {
			r.res.lastLat[si] = lat
			r.js.emit(JournalEvent{Cycle: at, Event: "latency", SI: int(si), Latency: lat})
		}
	}
}

// drain processes all pending events up to and including time limit.
func (r *runner) drain(limit int64, spot []isa.SIID) {
	for {
		if r.canceled() {
			return
		}
		at, ok := r.rt.NextEvent()
		if !ok || at > limit {
			return
		}
		r.rt.Advance(at)
		if r.js != nil {
			r.js.emit(JournalEvent{Cycle: at, Event: "load"})
		}
		r.recordLats(at, spot)
	}
}

func (r *runner) run(ct *workload.Compiled) error {
	for pi := range ct.Phases {
		if err := r.runPhase(ct, pi); err != nil {
			return err
		}
	}
	r.res.TotalCycles = r.now
	return nil
}

// runPhase executes one hot-spot phase of the compiled trace. It is the
// unit of interleaving for RunCompiledSet: runtimes are independent, so
// executing phase pi for each runtime in turn produces results identical to
// full sequential runs.
func (r *runner) runPhase(ct *workload.Compiled, pi int) error {
	rt, res := r.rt, r.res
	if r.canceled() {
		return r.cancelErr
	}
	p := &ct.Phases[pi]
	phaseStart := r.now
	rt.EnterHotSpot(p.HotSpot, r.now)
	if r.js != nil {
		r.js.emit(JournalEvent{Cycle: r.now, Event: "enter", HotSpot: int(p.HotSpot)})
	}
	r.recordLats(r.now, p.Spot)
	r.now += p.Setup
	r.drain(r.now, p.Spot)

	for bi := range p.Bursts {
		b := &p.Bursts[bi]
		remaining := b.Count
		for remaining > 0 {
			r.drain(r.now, p.Spot)
			if r.cancelErr != nil {
				return r.cancelErr
			}
			lat := rt.Latency(b.SI)
			per := int64(lat) + b.Gap
			n := remaining
			if next, ok := rt.NextEvent(); ok && next > r.now {
				// Executions whose start time is before the event keep
				// the current latency.
				if k := (next - r.now + per - 1) / per; k < n {
					n = k
				}
			}
			if res.Histogram != nil {
				res.Histogram.Add(int(b.SI), r.now, n, per)
			}
			res.execs[b.SI] += n
			if lat >= b.SWLatency {
				res.swExecs[b.SI] += n
			} else {
				res.hwExecs[b.SI] += n
			}
			res.StallCycles += n * int64(lat-b.FastestLatency)
			r.now += n * per
			remaining -= n
			rt.Record(b.SI, n, r.now)
			if r.maxCycles > 0 && r.now > r.maxCycles {
				return fmt.Errorf("sim: exceeded MaxCycles=%d at phase %d", r.maxCycles, pi)
			}
		}
	}
	r.drain(r.now, p.Spot)
	if r.cancelErr != nil {
		return r.cancelErr
	}
	rt.LeaveHotSpot(r.now)
	if r.js != nil {
		r.js.emit(JournalEvent{Cycle: r.now, Event: "leave", HotSpot: int(p.HotSpot)})
	}
	res.Phases = append(res.Phases, PhaseStat{HotSpot: p.HotSpot, Start: phaseStart, End: r.now})
	if r.rec != nil {
		r.rec.boundary(r, pi+1)
	}
	return nil
}

// Software returns the trivial runtime with no reconfigurable hardware at
// all: every SI always executes through the base-ISA trap. It models the
// paper's 0-Atom-Container data point (7,403M cycles).
func Software(is *isa.ISA) Runtime { return &swRuntime{is: is} }

type swRuntime struct{ is *isa.ISA }

func (r *swRuntime) Name() string                      { return "software" }
func (r *swRuntime) Reset()                            {}
func (r *swRuntime) EnterHotSpot(isa.HotSpotID, int64) {}
func (r *swRuntime) LeaveHotSpot(int64)                {}
func (r *swRuntime) Latency(si isa.SIID) int           { return r.is.SI(si).SWLatency }
func (r *swRuntime) Record(isa.SIID, int64, int64)     {}
func (r *swRuntime) NextEvent() (int64, bool)          { return 0, false }
func (r *swRuntime) Advance(int64)                     { panic("sim: software runtime has no events") }

// The software runtime has no mutable state at all, so it checkpoints
// trivially and every prefix transfers to every budget.
func (r *swRuntime) ContainerBudget() int           { return 0 }
func (r *swRuntime) NewState() any                  { return nil }
func (r *swRuntime) SaveState(any)                  {}
func (r *swRuntime) RestoreState(any)               {}
func (r *swRuntime) BudgetSensitivity() (int, bool) { return 0, true }
