// Package sim is the cycle-level discrete-event simulator of the RISPP
// evaluation platform: it executes a workload trace (hot-spot phases of SI
// bursts) against a pluggable run-time system (the RISPP Run-Time Manager
// of internal/core or the Molen-like baseline of internal/molen), modelling
// the concurrency between SI execution and background reconfiguration.
//
// The simulator advances in closed form between latency-changing events
// (Atom-load completions), so simulating billions of cycles costs time
// proportional to the number of bursts and reconfigurations, not cycles.
package sim

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"rispp/internal/isa"
	"rispp/internal/stats"
	"rispp/internal/workload"
)

// Runtime is the run-time system under simulation. The simulator calls
// EnterHotSpot/LeaveHotSpot around every phase, asks Latency before bursts,
// reports executions via Record, and processes latency-changing events
// (Atom-load completions) via NextEvent/Advance.
type Runtime interface {
	Name() string
	// Reset returns the runtime to its power-on state.
	Reset()
	// EnterHotSpot is invoked when the processor enters hot spot h at time
	// now; the runtime typically forecasts, selects Molecules and schedules
	// Atom loads here.
	EnterHotSpot(h isa.HotSpotID, now int64)
	// LeaveHotSpot is invoked when the phase ends.
	LeaveHotSpot(now int64)
	// Latency returns the current per-execution latency of si in cycles.
	Latency(si isa.SIID) int
	// Record reports n back-to-back executions of si ending at time now.
	Record(si isa.SIID, n int64, now int64)
	// NextEvent returns the time of the next latency-changing event, or
	// ok = false when none is pending.
	NextEvent() (at int64, ok bool)
	// Advance processes the single event returned by NextEvent; t must
	// equal that time.
	Advance(t int64)
}

// Options control what a simulation run collects.
type Options struct {
	// HistogramBucket, when > 0, collects per-SI execution histograms with
	// this bucket width in cycles (the paper uses 100,000).
	HistogramBucket int64
	// Timeline, when true, records SI latency steps (Figure 8 lines).
	Timeline bool
	// MaxCycles aborts the run when simulated time exceeds it (0 = no
	// limit); a safety harness for tests.
	MaxCycles int64
	// Journal, when non-nil, receives one JSON object per line for every
	// simulation event (phase entry/exit, Atom-load completions, SI latency
	// changes) — a machine-readable replay log for external analysis.
	Journal io.Writer
}

// JournalEvent is one line of the simulation journal.
type JournalEvent struct {
	Cycle   int64  `json:"t"`
	Event   string `json:"ev"`      // "enter", "leave", "load", "latency"
	HotSpot int    `json:"hotspot"` // enter/leave
	SI      int    `json:"si"`      // latency
	Latency int    `json:"lat"`     // latency
}

// PhaseStat records the boundaries of one executed hot-spot phase.
type PhaseStat struct {
	HotSpot isa.HotSpotID
	Start   int64
	End     int64
}

// Cycles returns the duration of the phase.
func (p PhaseStat) Cycles() int64 { return p.End - p.Start }

// Result aggregates the outcome of one simulation run.
type Result struct {
	Runtime     string
	TotalCycles int64
	Executions  map[isa.SIID]int64
	// SWExecutions counts SI executions that ran via the base-ISA trap.
	SWExecutions map[isa.SIID]int64
	// HWExecutions counts SI executions on composed Molecules.
	HWExecutions map[isa.SIID]int64
	// StallCycles counts cycles spent in SI executions beyond what the
	// fastest Molecule of each SI would have needed — the price of not yet
	// (or never) being fully composed.
	StallCycles int64
	// Phases records the boundaries of every executed hot-spot phase.
	Phases []PhaseStat

	Histogram *stats.Histogram
	Timeline  *stats.Timeline
}

// Run simulates the trace on the runtime and returns the result. The
// runtime is Reset first, so a Runtime can be reused across runs.
func Run(tr *workload.Trace, is *isa.ISA, rt Runtime, opts Options) (*Result, error) {
	return RunContext(context.Background(), tr, is, rt, opts)
}

// RunContext is Run with cancellation: the context is checked between
// simulation events (phase boundaries and Atom-load completions — not per
// simulated cycle, which would defeat the closed-form advance). On
// cancellation it returns an error wrapping ctx.Err().
func RunContext(ctx context.Context, tr *workload.Trace, is *isa.ISA, rt Runtime, opts Options) (*Result, error) {
	rt.Reset()
	res := &Result{
		Runtime:      rt.Name(),
		Executions:   make(map[isa.SIID]int64),
		SWExecutions: make(map[isa.SIID]int64),
		HWExecutions: make(map[isa.SIID]int64),
	}
	if opts.HistogramBucket > 0 {
		res.Histogram = stats.NewHistogram(opts.HistogramBucket)
	}
	if opts.Timeline {
		res.Timeline = &stats.Timeline{}
	}
	var journalErr error
	journal := func(e JournalEvent) {
		if opts.Journal == nil || journalErr != nil {
			return
		}
		b, err := json.Marshal(e)
		if err == nil {
			_, err = opts.Journal.Write(append(b, '\n'))
		}
		if err != nil {
			journalErr = fmt.Errorf("sim: journal: %w", err)
		}
	}

	now := int64(0)
	// done is nil for context.Background(), making the per-event check free
	// on the uncancellable path.
	done := ctx.Done()
	var cancelErr error
	canceled := func() bool {
		if done == nil || cancelErr != nil {
			return cancelErr != nil
		}
		select {
		case <-done:
			cancelErr = fmt.Errorf("sim: canceled at cycle %d: %w", now, ctx.Err())
			return true
		default:
			return false
		}
	}
	// lastLat tracks per-SI latencies for journal change detection.
	lastLat := make(map[isa.SIID]int)
	recordLats := func(at int64, spot []isa.SIID) {
		for _, si := range spot {
			lat := rt.Latency(si)
			if res.Timeline != nil {
				res.Timeline.Record(at, int(si), lat)
			}
			if opts.Journal != nil && lastLat[si] != lat {
				lastLat[si] = lat
				journal(JournalEvent{Cycle: at, Event: "latency", SI: int(si), Latency: lat})
			}
		}
	}
	// drain processes all pending events up to and including time limit.
	drain := func(limit int64, spot []isa.SIID) {
		for {
			if canceled() {
				return
			}
			at, ok := rt.NextEvent()
			if !ok || at > limit {
				return
			}
			rt.Advance(at)
			journal(JournalEvent{Cycle: at, Event: "load"})
			recordLats(at, spot)
		}
	}

	res.Phases = make([]PhaseStat, 0, len(tr.Phases))
	for pi := range tr.Phases {
		if canceled() {
			return nil, cancelErr
		}
		p := &tr.Phases[pi]
		phaseStart := now
		spot := make([]isa.SIID, 0, 8)
		for _, s := range is.HotSpotSIs(p.HotSpot) {
			spot = append(spot, s.ID)
		}
		rt.EnterHotSpot(p.HotSpot, now)
		journal(JournalEvent{Cycle: now, Event: "enter", HotSpot: int(p.HotSpot)})
		recordLats(now, spot)
		now += p.Setup
		drain(now, spot)

		for _, b := range p.Bursts {
			remaining := int64(b.Count)
			for remaining > 0 {
				drain(now, spot)
				if cancelErr != nil {
					return nil, cancelErr
				}
				lat := rt.Latency(b.SI)
				per := int64(lat + b.Gap)
				n := remaining
				if next, ok := rt.NextEvent(); ok && next > now {
					// Executions whose start time is before the event keep
					// the current latency.
					if k := (next - now + per - 1) / per; k < n {
						n = k
					}
				}
				if res.Histogram != nil {
					res.Histogram.Add(int(b.SI), now, n, per)
				}
				res.Executions[b.SI] += n
				sw := lat >= is.SI(b.SI).SWLatency
				if sw {
					res.SWExecutions[b.SI] += n
				} else {
					res.HWExecutions[b.SI] += n
				}
				res.StallCycles += n * int64(lat-is.SI(b.SI).Fastest().Latency)
				now += n * per
				remaining -= n
				rt.Record(b.SI, n, now)
				if opts.MaxCycles > 0 && now > opts.MaxCycles {
					return nil, fmt.Errorf("sim: exceeded MaxCycles=%d at phase %d", opts.MaxCycles, pi)
				}
			}
		}
		drain(now, spot)
		if cancelErr != nil {
			return nil, cancelErr
		}
		rt.LeaveHotSpot(now)
		journal(JournalEvent{Cycle: now, Event: "leave", HotSpot: int(p.HotSpot)})
		res.Phases = append(res.Phases, PhaseStat{HotSpot: p.HotSpot, Start: phaseStart, End: now})
	}
	res.TotalCycles = now
	if journalErr != nil {
		return nil, journalErr
	}
	return res, nil
}

// Software returns the trivial runtime with no reconfigurable hardware at
// all: every SI always executes through the base-ISA trap. It models the
// paper's 0-Atom-Container data point (7,403M cycles).
func Software(is *isa.ISA) Runtime { return &swRuntime{is: is} }

type swRuntime struct{ is *isa.ISA }

func (r *swRuntime) Name() string                      { return "software" }
func (r *swRuntime) Reset()                            {}
func (r *swRuntime) EnterHotSpot(isa.HotSpotID, int64) {}
func (r *swRuntime) LeaveHotSpot(int64)                {}
func (r *swRuntime) Latency(si isa.SIID) int           { return r.is.SI(si).SWLatency }
func (r *swRuntime) Record(isa.SIID, int64, int64)     {}
func (r *swRuntime) NextEvent() (int64, bool)          { return 0, false }
func (r *swRuntime) Advance(int64)                     { panic("sim: software runtime has no events") }
