package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ReadJournal parses a JSONL simulation journal back into events; it is
// the counterpart of Options.Journal for offline analysis and the
// risppreplay tool.
func ReadJournal(r io.Reader) ([]JournalEvent, error) {
	var out []JournalEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	var prev int64 = -1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e JournalEvent
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("sim: journal line %d: %w", line, err)
		}
		switch e.Event {
		case "enter", "leave", "load", "latency":
		default:
			return nil, fmt.Errorf("sim: journal line %d: unknown event %q", line, e.Event)
		}
		if e.Cycle < prev {
			return nil, fmt.Errorf("sim: journal line %d: time goes backwards (%d after %d)", line, e.Cycle, prev)
		}
		prev = e.Cycle
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: journal: %w", err)
	}
	return out, nil
}

// JournalSummary aggregates a journal into per-phase statistics.
type JournalSummary struct {
	Phases []JournalPhase
	Loads  int
}

// JournalPhase is one hot-spot execution reconstructed from the journal.
type JournalPhase struct {
	HotSpot      int
	Start, End   int64
	Loads        int
	LatencySteps int
}

// Summarize reconstructs per-phase statistics from a journal.
func Summarize(events []JournalEvent) (JournalSummary, error) {
	var s JournalSummary
	open := -1
	for i, e := range events {
		switch e.Event {
		case "enter":
			if open >= 0 {
				return s, fmt.Errorf("sim: journal event %d: enter while phase open", i)
			}
			s.Phases = append(s.Phases, JournalPhase{HotSpot: e.HotSpot, Start: e.Cycle})
			open = len(s.Phases) - 1
		case "leave":
			if open < 0 {
				return s, fmt.Errorf("sim: journal event %d: leave without enter", i)
			}
			if s.Phases[open].HotSpot != e.HotSpot {
				return s, fmt.Errorf("sim: journal event %d: leave hot spot %d, open is %d", i, e.HotSpot, s.Phases[open].HotSpot)
			}
			s.Phases[open].End = e.Cycle
			open = -1
		case "load":
			s.Loads++
			if open >= 0 {
				s.Phases[open].Loads++
			}
		case "latency":
			if open >= 0 {
				s.Phases[open].LatencySteps++
			}
		}
	}
	if open >= 0 {
		return s, fmt.Errorf("sim: journal ends inside a phase")
	}
	return s, nil
}
