package sim

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
)

// The journal hot path encodes events by hand (strconv.Append* into a
// reused buffer) instead of reflecting through encoding/json, and batches
// writes through one buffered writer with a single latched-error flush.
// The encoding is byte-identical to json.Marshal(JournalEvent) — a
// property tests assert — so readers (sim.ReadJournal, external tooling)
// see exactly the bytes they always did.

// appendJournalEvent appends the compact JSON encoding of e, without a
// trailing newline. The Event string must not require JSON escaping; the
// simulator only emits the four fixed event names.
func appendJournalEvent(b []byte, e JournalEvent) []byte {
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, e.Cycle, 10)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Event...)
	b = append(b, `","hotspot":`...)
	b = strconv.AppendInt(b, int64(e.HotSpot), 10)
	b = append(b, `,"si":`...)
	b = strconv.AppendInt(b, int64(e.SI), 10)
	b = append(b, `,"lat":`...)
	b = strconv.AppendInt(b, int64(e.Latency), 10)
	return append(b, '}')
}

// journalState is the pooled per-run journal encoder: a scratch buffer for
// one encoded event and a buffered writer over Options.Journal.
type journalState struct {
	bw  *bufio.Writer
	buf []byte
}

var journalPool = sync.Pool{
	New: func() any {
		return &journalState{
			bw:  bufio.NewWriterSize(io.Discard, 32*1024),
			buf: make([]byte, 0, 96),
		}
	},
}

func newJournalState(w io.Writer) *journalState {
	js := journalPool.Get().(*journalState)
	js.bw.Reset(w)
	return js
}

// emit encodes and buffers one event. Write errors are latched inside the
// bufio.Writer (subsequent writes are no-ops) and surface once in close —
// the same stop-journaling-but-finish-the-run semantics the per-event
// writes had.
func (js *journalState) emit(e JournalEvent) {
	js.buf = appendJournalEvent(js.buf[:0], e)
	js.buf = append(js.buf, '\n')
	js.bw.Write(js.buf)
}

// close flushes the buffer, returns the state to the pool and reports the
// first write error of the run, if any.
func (js *journalState) close() error {
	err := js.bw.Flush()
	js.bw.Reset(io.Discard)
	journalPool.Put(js)
	if err != nil {
		return fmt.Errorf("sim: journal: %w", err)
	}
	return nil
}
