// Delta-resimulation: checkpoint/restore on sim.Runtime so consecutive
// sweep/search points that differ only in the Atom-Container budget reuse
// the simulation prefix up to the first decision the budget could have
// changed.
//
// A recording run (RunCompiledTrail) snapshots the runtime and the Result
// at hot-spot phase boundaries into a Trail. Not every boundary is kept:
// a rolling snapshot tracks the most recent boundary and is promoted into
// the ladder exactly when the just-finished phase raised the run's
// container demand or fired the first budget-dependent filter — so the
// ladder holds, per demand level, the deepest boundary whose prefix is
// still transferable to that budget class, plus the final state of the run.
//
// Transfer legality rests on two facts about the decision procedures:
//
//   - Greedy argmax stability: selection and scheduling choose by strictly-
//     better comparisons over a candidate list in deterministic order. The
//     budget only acts as a filter on candidates; every committed winner
//     needs ≤ demand containers, so on any budget ≥ demand the filter
//     removes only losing candidates and the winners — hence the entire
//     decision sequence — are unchanged.
//   - Contiguous occupancy: while no eviction has occurred, installs fill
//     containers first-free-first, so occupied slots are a prefix of the
//     array and the state transfers verbatim to an array of different size
//     ≥ the peak occupancy.
//
// A prefix recorded at budget n therefore replays exactly at budget n'
// when n' == n (trivially), when n' < n and the prefix demand ≤ n', or
// when n' > n and no budget-dependent filter fired at all (upOK). Runtimes
// report these two quantities via Checkpointable.BudgetSensitivity;
// features whose budget dependence resists the analysis (exhaustive
// selection, prefetching, SetBudget) report maximal sensitivity, which
// disables transfers without affecting correctness.
//
// Runs collecting a journal participate through a tee: the recording run's
// journal bytes are captured alongside the user's writer with per-boundary
// offsets, and a resumed run replays the byte prefix verbatim — restored
// runs are field-exact including journal bytes, which the oracle corpus
// pins.
package sim

import (
	"context"
	"fmt"
	"io"

	"rispp/internal/workload"
)

// Checkpointable is a Runtime that supports delta-resimulation: saving and
// restoring its complete mutable state at phase boundaries, and reporting
// how the run so far depended on the container budget. States are opaque
// (NewState/SaveState/RestoreFrom use the runtime's own concrete type) and
// transfer between runtimes whose configuration differs only in the
// container budget.
type Checkpointable interface {
	Runtime
	// ContainerBudget returns the budget axis value of this runtime.
	ContainerBudget() int
	// NewState allocates an empty state arena for SaveState.
	NewState() any
	// SaveState deep-copies the runtime's mutable state into a NewState
	// value; only legal at a phase boundary (between hot spots).
	SaveState(dst any)
	// RestoreState overwrites the runtime's state with a saved one,
	// replacing the Reset a fresh run would perform.
	RestoreState(src any)
	// BudgetSensitivity reports the run-so-far's container demand and
	// whether it is transferable to larger budgets.
	BudgetSensitivity() (demand int, upOK bool)
}

// DeltaEligible reports whether runs with these options can be recorded
// into or served from a Trail: histogram and timeline collection sample the
// run mid-phase in ways snapshots do not capture, and MaxCycles is a test
// harness not worth the bookkeeping. Journals are eligible (see the tee).
func DeltaEligible(opts Options) bool {
	return opts.HistogramBucket <= 0 && !opts.Timeline && opts.MaxCycles <= 0
}

// resultSnap is the Result accumulator state at a phase boundary.
type resultSnap struct {
	stall   int64
	execs   []int64
	swExecs []int64
	hwExecs []int64
	lastLat []int
	phases  []PhaseStat
}

func (s *resultSnap) save(res *Result) {
	s.stall = res.StallCycles
	s.execs = append(s.execs[:0], res.execs...)
	s.swExecs = append(s.swExecs[:0], res.swExecs...)
	s.hwExecs = append(s.hwExecs[:0], res.hwExecs...)
	s.lastLat = append(s.lastLat[:0], res.lastLat...)
	s.phases = append(s.phases[:0], res.Phases...)
}

// restore overwrites a freshly reset Result with the snapshot state.
func (s *resultSnap) restore(res *Result) {
	res.StallCycles = s.stall
	res.execs = append(res.execs[:0], s.execs...)
	res.swExecs = append(res.swExecs[:0], s.swExecs...)
	res.hwExecs = append(res.hwExecs[:0], s.hwExecs...)
	res.lastLat = append(res.lastLat[:0], s.lastLat...)
	res.Phases = append(res.Phases[:0], s.phases...)
}

// trailSnap is one rung of the checkpoint ladder: the complete simulation
// state after `phase` phases. demand/upOK describe the prefix up to here.
type trailSnap struct {
	phase   int // completed phases; resume at ct.Phases[phase]
	now     int64
	demand  int
	upOK    bool
	joff    int // journal bytes emitted by the prefix (hasJournal trails)
	rtState any
	res     resultSnap
}

// Trail is the checkpoint ladder of one recorded simulation run. A Trail is
// immutable once complete, so concurrent readers need no locking; an
// incomplete Trail (recording failed mid-run) must be discarded.
//
// A trail remembers the identity of the compiled trace it recorded — by
// pointer, since workload.Compiled is immutable and callers (the Runner's
// compile memo) hold one canonical *Compiled per workload. Serve and
// ResumeCompiled refuse a trail whose trace is not the very same object:
// under ISA-switching workloads two different traces can agree on phase
// count and still schedule completely differently, and a silently wrong
// resume is the one failure mode delta-resimulation must never have.
type Trail struct {
	name       string
	budget     int
	ct         *workload.Compiled
	complete   bool
	hasJournal bool
	snaps      []trailSnap
	jbuf       []byte
}

// Complete reports whether the trail captured a full run and may serve
// resumes.
func (t *Trail) Complete() bool { return t.complete }

// RecordedBudget returns the container budget of the recording run.
func (t *Trail) RecordedBudget() int { return t.budget }

// Snapshots returns the ladder depth (for introspection/metrics).
func (t *Trail) Snapshots() int { return len(t.snaps) }

func (t *Trail) reset(name string, budget int, ct *workload.Compiled, journal bool) {
	t.name = name
	t.budget = budget
	t.ct = ct
	t.complete = false
	t.hasJournal = journal
	t.snaps = t.snaps[:0]
	t.jbuf = t.jbuf[:0]
}

// resumeIndex returns the deepest ladder rung whose prefix transfers to
// budget, or -1. Valid rungs form a prefix of the ladder: demand is
// nondecreasing and upOK monotone along the run.
func (t *Trail) resumeIndex(budget int) int {
	best := -1
	for i := range t.snaps {
		s := &t.snaps[i]
		switch {
		case budget == t.budget:
			// Same budget: the whole recorded run replays verbatim.
		case budget < t.budget:
			if s.demand > budget {
				continue
			}
		default:
			if !s.upOK {
				continue
			}
		}
		best = i
	}
	return best
}

// trailWriter appends the journal byte stream into the trail (the tee
// target next to the user's writer).
type trailWriter struct{ t *Trail }

func (w trailWriter) Write(p []byte) (int, error) {
	w.t.jbuf = append(w.t.jbuf, p...)
	return len(p), nil
}

// trailRec drives trail recording from the runner's phase-boundary hook.
type trailRec struct {
	rt    Checkpointable
	t     *Trail
	roll  *trailSnap // rolling snapshot of the most recent boundary
	lastD int
	lastU bool
}

// boundary snapshots the state after `phase` completed phases. When the
// just-run phase raised demand or flipped upOK, the previous boundary was
// the deepest prefix of its budget class — promote its snapshot into the
// ladder before overwriting the rolling arena.
func (rec *trailRec) boundary(r *runner, phase int) {
	d, u := rec.rt.BudgetSensitivity()
	if rec.roll != nil && (d > rec.lastD || (rec.lastU && !u)) {
		rec.t.snaps = append(rec.t.snaps, *rec.roll)
		rec.roll = nil
	}
	if rec.roll == nil {
		rec.roll = &trailSnap{rtState: rec.rt.NewState()}
	}
	s := rec.roll
	s.phase = phase
	s.now = r.now
	s.demand = d
	s.upOK = u
	rec.rt.SaveState(s.rtState)
	s.res.save(r.res)
	if r.js != nil && rec.t.hasJournal {
		r.js.bw.Flush() // make jbuf complete up to this boundary
		s.joff = len(rec.t.jbuf)
	}
	rec.lastD, rec.lastU = d, u
}

// finish promotes the final boundary and seals the trail.
func (rec *trailRec) finish() {
	if rec.roll != nil {
		rec.t.snaps = append(rec.t.snaps, *rec.roll)
		rec.roll = nil
	}
	rec.t.complete = true
}

// RunCompiledTrail is RunCompiled recording a checkpoint trail into t for
// later delta-resimulation. opts must be DeltaEligible. On error the trail
// is left incomplete and must be discarded.
func RunCompiledTrail(ctx context.Context, ct *workload.Compiled, rt Checkpointable, opts Options, res *Result, t *Trail) error {
	if !DeltaEligible(opts) {
		return fmt.Errorf("sim: options are not delta-eligible; use RunCompiled")
	}
	t.reset(rt.Name(), rt.ContainerBudget(), ct, opts.Journal != nil)
	rt.Reset()
	res.reset(rt.Name(), ct.NumSIs, len(ct.Phases), opts)
	var js *journalState
	if opts.Journal != nil {
		js = newJournalState(io.MultiWriter(opts.Journal, trailWriter{t}))
	}
	rec := trailRec{rt: rt, t: t, lastU: true}
	r := runner{
		ctx:  ctx,
		done: ctx.Done(),
		rt:   rt,
		res:  res,
		js:   js,
		rec:  &rec,
	}
	err := r.run(ct)
	if js != nil {
		if jerr := js.close(); err == nil {
			err = jerr
		}
	}
	if err != nil {
		return err
	}
	rec.finish()
	return nil
}

// Serve satisfies a run for the given budget entirely from the trail — no
// runtime, no simulation — when the deepest transferable snapshot is the
// end of the recorded run (always the case for budget == RecordedBudget,
// and for any budget when the whole run was budget-insensitive). It fills
// res (and replays the journal bytes when opts.Journal is set) and reports
// whether it could serve.
func (t *Trail) Serve(ct *workload.Compiled, budget int, opts Options, res *Result) (bool, error) {
	if !t.complete || !DeltaEligible(opts) || t.ct != ct {
		return false, nil
	}
	if opts.Journal != nil && !t.hasJournal {
		return false, nil
	}
	i := t.resumeIndex(budget)
	if i < 0 || t.snaps[i].phase != len(ct.Phases) {
		return false, nil
	}
	snap := &t.snaps[i]
	res.reset(t.name, ct.NumSIs, len(ct.Phases), opts)
	snap.res.restore(res)
	res.TotalCycles = snap.now
	if opts.Journal != nil {
		if _, err := opts.Journal.Write(t.jbuf); err != nil {
			return true, fmt.Errorf("sim: journal: %w", err)
		}
	}
	return true, nil
}

// ResumeCompiled runs ct on rt for rt.ContainerBudget(), reusing the
// longest transferable prefix of src instead of simulating from power-on.
// It restores the deepest legal snapshot into rt, replays the prefix's
// journal bytes if a journal is collected, and simulates only the remaining
// phases. rec, when non-nil, receives a complete trail of THIS run (prefix
// snapshots shared with src — trails are immutable once complete, so
// sharing is safe), making the budget available for future full skips.
//
// The first return reports whether src was used; when false (ineligible
// options, incomplete or mismatched trail, no transferable snapshot, or a
// journal requested from a journal-less trail) the caller falls back to
// RunCompiled/RunCompiledTrail. res is field-exact identical — journal
// bytes included — to a fresh run of rt, which the oracle corpus pins.
func ResumeCompiled(ctx context.Context, ct *workload.Compiled, rt Checkpointable, opts Options, res *Result, src *Trail, rec *Trail) (bool, error) {
	if !src.complete || !DeltaEligible(opts) || src.ct != ct {
		return false, nil
	}
	wantJ := opts.Journal != nil
	if wantJ && !src.hasJournal {
		return false, nil
	}
	budget := rt.ContainerBudget()
	i := src.resumeIndex(budget)
	if i < 0 {
		return false, nil
	}
	snap := &src.snaps[i]

	res.reset(rt.Name(), ct.NumSIs, len(ct.Phases), opts)
	snap.res.restore(res)
	if snap.phase == len(ct.Phases) {
		// Full skip (callers that checked Serve first never reach this).
		res.TotalCycles = snap.now
		if wantJ {
			if _, err := opts.Journal.Write(src.jbuf); err != nil {
				return true, fmt.Errorf("sim: journal: %w", err)
			}
		}
		return true, nil
	}

	if snap.rtState == nil {
		// A serve-only imported trail (ImportTrail) carries no runtime
		// state; its single rung can never be selected mid-run, but guard
		// the invariant rather than assume it.
		return false, nil
	}

	var recorder *trailRec
	if rec != nil && rec != src {
		rec.reset(rt.Name(), budget, ct, wantJ)
		rec.snaps = append(rec.snaps[:0], src.snaps[:i+1]...)
		recorder = &trailRec{rt: rt, t: rec, lastD: snap.demand, lastU: snap.upOK}
	}

	var js *journalState
	if wantJ {
		var w io.Writer = opts.Journal
		if recorder != nil {
			w = io.MultiWriter(opts.Journal, trailWriter{rec})
		}
		// The prefix bytes go out before the buffered encoder is set up, so
		// ordering is preserved; joff offsets stay valid in rec because its
		// jbuf starts as exactly this prefix.
		if _, err := w.Write(src.jbuf[:snap.joff]); err != nil {
			return true, fmt.Errorf("sim: journal: %w", err)
		}
		js = newJournalState(w)
	}

	rt.RestoreState(snap.rtState)
	r := runner{
		ctx:  ctx,
		done: ctx.Done(),
		rt:   rt,
		res:  res,
		js:   js,
		now:  snap.now,
		rec:  recorder,
	}
	var err error
	for pi := snap.phase; pi < len(ct.Phases); pi++ {
		if err = r.runPhase(ct, pi); err != nil {
			break
		}
	}
	if err == nil {
		res.TotalCycles = r.now
	}
	if js != nil {
		if jerr := js.close(); err == nil {
			err = jerr
		}
	}
	if err != nil {
		return true, err
	}
	if recorder != nil {
		recorder.finish()
	}
	return true, nil
}
