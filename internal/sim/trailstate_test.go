package sim_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// recordedTrail runs one system to completion at the given budget and
// returns the recorded trail plus its compiled trace.
func recordedTrail(t *testing.T, system string, budget int) (*sim.Trail, *workload.Compiled) {
	t.Helper()
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	ct, err := workload.Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	trail := new(sim.Trail)
	rt := checkpointRuntime(t, system, is, tr, budget)
	if err := sim.RunCompiledTrail(context.Background(), ct, rt, sim.Options{}, new(sim.Result), trail); err != nil {
		t.Fatal(err)
	}
	if !trail.Complete() {
		t.Fatal("trail incomplete after a successful run")
	}
	return trail, ct
}

// TestTrailStateRoundTrip: an exported-and-reimported trail must serve the
// recorded budget with field-exact results — the imported final rung is the
// warm-restart path of a fleet worker.
func TestTrailStateRoundTrip(t *testing.T) {
	const budget = 10
	for _, system := range checkpointSystems {
		t.Run(system, func(t *testing.T) {
			trail, ct := recordedTrail(t, system, budget)
			st, ok := trail.ExportState("key-" + system)
			if !ok {
				t.Fatal("ExportState failed for a complete trail")
			}
			// The recorded budget is the runtime's own container count —
			// "software" has none and records 0.
			if st.Version != sim.TrailStateVersion || st.Budget != trail.RecordedBudget() {
				t.Fatalf("exported version=%d budget=%d, recorded %d", st.Version, st.Budget, trail.RecordedBudget())
			}

			// Round-trip through JSON exactly as the store does.
			b, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			var back sim.TrailState
			if err := json.Unmarshal(b, &back); err != nil {
				t.Fatal(err)
			}
			imported, ok := sim.ImportTrail(&back, ct)
			if !ok {
				t.Fatal("ImportTrail rejected its own export")
			}

			is := isa.H264()
			tr := workload.H264(workload.H264Config{Frames: 1})
			want := new(sim.Result)
			if err := sim.RunCompiled(context.Background(), ct,
				checkpointRuntime(t, system, is, tr, budget), sim.Options{}, want); err != nil {
				t.Fatal(err)
			}
			got := new(sim.Result)
			served, err := imported.Serve(ct, trail.RecordedBudget(), sim.Options{}, got)
			if err != nil {
				t.Fatal(err)
			}
			if !served {
				t.Fatal("imported trail does not serve its own budget")
			}
			requireSameRun(t, system, got, want, nil, nil)
		})
	}
}

func TestImportTrailRejectsMismatches(t *testing.T) {
	trail, ct := recordedTrail(t, "HEF", 10)
	good, ok := trail.ExportState("k")
	if !ok {
		t.Fatal("ExportState failed")
	}
	mutate := func(f func(st *sim.TrailState)) *sim.TrailState {
		b, _ := json.Marshal(good)
		var st sim.TrailState
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		f(&st)
		return &st
	}
	cases := map[string]*sim.TrailState{
		"nil":          nil,
		"version skew": mutate(func(st *sim.TrailState) { st.Version++ }),
		"phase drift":  mutate(func(st *sim.TrailState) { st.Phases++ }),
		"si drift":     mutate(func(st *sim.TrailState) { st.NumSIs++ }),
		"short execs":  mutate(func(st *sim.TrailState) { st.Execs = st.Execs[:1] }),
		"short phases": mutate(func(st *sim.TrailState) { st.PhaseStats = st.PhaseStats[:0] }),
	}
	for name, st := range cases {
		if _, ok := sim.ImportTrail(st, ct); ok {
			t.Errorf("%s: ImportTrail accepted a corrupt state", name)
		}
	}
}

func TestTrailStore(t *testing.T) {
	trail, ct := recordedTrail(t, "HEF", 10)
	store, err := sim.OpenTrailStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("cfg-a", trail); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d trails, want 1", store.Len())
	}

	if _, ok := store.Get("cfg-a", 10, ct); !ok {
		t.Error("stored trail not found under its own key and budget")
	}
	if _, ok := store.Get("cfg-b", 10, ct); ok {
		t.Error("foreign key served a trail")
	}
	if _, ok := store.Get("cfg-a", 11, ct); ok {
		t.Error("wrong budget served a trail")
	}

	// Idempotent re-put (the concurrent-writer path: identical bytes).
	if err := store.Put("cfg-a", trail); err != nil {
		t.Fatal(err)
	}

	// An incomplete trail must be silently skipped, not persisted.
	if err := store.Put("cfg-c", new(sim.Trail)); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("incomplete trail was persisted (%d files)", store.Len())
	}

	// Corruption degrades to a miss, never an error or a wrong serve.
	files, err := filepath.Glob(filepath.Join(store.Dir(), "*.trail.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	if err := os.WriteFile(files[0], []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get("cfg-a", 10, ct); ok {
		t.Error("corrupt file served a trail")
	}
}
