// Tests of the single-pass multi-system mode: RunCompiledSet must be
// behaviorally invisible — every result field-exact identical to a
// sequential RunCompiled of the same system.
package sim_test

import (
	"context"
	"io"
	"reflect"
	"testing"

	"rispp/internal/sim"
)

func TestRunCompiledSetMatchesSequential(t *testing.T) {
	is, ct := compiledFrame(t, 2)
	for _, opts := range []sim.Options{
		{},
		{HistogramBucket: 100_000, Timeline: true},
	} {
		nrs := allRuntimes(t, is, ct)
		// Sequential reference runs (fresh results; RunCompiled resets the
		// runtimes, so the same instances can be reused for the set run).
		want := make([]*sim.Result, len(nrs))
		for i, nr := range nrs {
			want[i] = new(sim.Result)
			if err := sim.RunCompiled(context.Background(), ct, nr.rt, opts, want[i]); err != nil {
				t.Fatal(err)
			}
		}
		rts := make([]sim.Runtime, len(nrs))
		got := make([]*sim.Result, len(nrs))
		for i, nr := range nrs {
			rts[i] = nr.rt
			got[i] = new(sim.Result)
		}
		if err := sim.RunCompiledSet(context.Background(), ct, rts, opts, got); err != nil {
			t.Fatal(err)
		}
		for i, nr := range nrs {
			w, g := want[i], got[i]
			if w.Runtime != g.Runtime || w.TotalCycles != g.TotalCycles || w.StallCycles != g.StallCycles {
				t.Errorf("%s: headline mismatch: want (%s, %d, %d), got (%s, %d, %d)",
					nr.name, w.Runtime, w.TotalCycles, w.StallCycles, g.Runtime, g.TotalCycles, g.StallCycles)
			}
			if !reflect.DeepEqual(w.Phases, g.Phases) {
				t.Errorf("%s: phase boundaries differ", nr.name)
			}
			if !reflect.DeepEqual(w.Executions(), g.Executions()) ||
				!reflect.DeepEqual(w.SWExecutions(), g.SWExecutions()) ||
				!reflect.DeepEqual(w.HWExecutions(), g.HWExecutions()) {
				t.Errorf("%s: per-SI accounting differs", nr.name)
			}
			if !reflect.DeepEqual(w.Histogram, g.Histogram) {
				t.Errorf("%s: histogram differs", nr.name)
			}
			if !reflect.DeepEqual(w.Timeline, g.Timeline) {
				t.Errorf("%s: timeline differs", nr.name)
			}
		}
	}
}

func TestRunCompiledSetRejectsJournal(t *testing.T) {
	is, ct := compiledFrame(t, 1)
	rts := []sim.Runtime{sim.Software(is)}
	res := []*sim.Result{new(sim.Result)}
	err := sim.RunCompiledSet(context.Background(), ct, rts, sim.Options{Journal: io.Discard}, res)
	if err == nil {
		t.Fatal("RunCompiledSet accepted a journal")
	}
}

func TestRunCompiledSetLengthMismatch(t *testing.T) {
	is, ct := compiledFrame(t, 1)
	rts := []sim.Runtime{sim.Software(is)}
	err := sim.RunCompiledSet(context.Background(), ct, rts, sim.Options{}, nil)
	if err == nil {
		t.Fatal("RunCompiledSet accepted mismatched lengths")
	}
}

// TestRunCompiledSetZeroAllocs extends the reuse gate to the batch mode:
// after warm-up, one set run over all six systems must not allocate.
func TestRunCompiledSetZeroAllocs(t *testing.T) {
	is, ct := compiledFrame(t, 1)
	nrs := allRuntimes(t, is, ct)
	rts := make([]sim.Runtime, len(nrs))
	results := make([]*sim.Result, len(nrs))
	for i, nr := range nrs {
		rts[i] = nr.rt
		results[i] = new(sim.Result)
	}
	for i := 0; i < 2; i++ {
		if err := sim.RunCompiledSet(context.Background(), ct, rts, sim.Options{}, results); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(20, func() {
		if err := sim.RunCompiledSet(context.Background(), ct, rts, sim.Options{}, results); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("steady-state RunCompiledSet allocates %.1f times per run, want 0", avg)
	}
}

// BenchmarkRunCompiledSet measures the single-pass six-system walk — the
// per-grid-point cost of the sweep stack after this PR.
func BenchmarkRunCompiledSet(b *testing.B) {
	is, ct := compiledFrame(b, 1)
	nrs := allRuntimes(b, is, ct)
	rts := make([]sim.Runtime, len(nrs))
	results := make([]*sim.Result, len(nrs))
	for i, nr := range nrs {
		rts[i] = nr.rt
		results[i] = new(sim.Result)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sim.RunCompiledSet(context.Background(), ct, rts, sim.Options{}, results); err != nil {
			b.Fatal(err)
		}
	}
}
