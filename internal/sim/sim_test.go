package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/workload"
)

func smallTrace() *workload.Trace {
	return workload.NewBuilder("small").
		Phase(isa.HotSpotME, 100).
		Burst(isa.SISAD, 10, 5).
		Burst(isa.SISATD, 4, 5).
		Phase(isa.HotSpotLF, 50).
		Burst(isa.SILFBS4, 8, 2).
		Build()
}

func TestSoftwareRuntimeCycleAccounting(t *testing.T) {
	is := isa.H264()
	tr := smallTrace()
	res, err := Run(tr, is, Software(is), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != tr.SoftwareCycles(is) {
		t.Fatalf("TotalCycles = %d, want %d (the closed-form software count)", res.TotalCycles, tr.SoftwareCycles(is))
	}
	if res.ExecutionsOf(isa.SISAD) != 10 || res.ExecutionsOf(isa.SISATD) != 4 || res.ExecutionsOf(isa.SILFBS4) != 8 {
		t.Fatalf("Executions = %v", res.Executions())
	}
	if res.SWExecutions()[isa.SISAD] != 10 {
		t.Fatalf("SWExecutions = %v", res.SWExecutions())
	}
	if len(res.HWExecutions()) != 0 {
		t.Fatalf("HWExecutions = %v on the software runtime", res.HWExecutions())
	}
	if res.Runtime != "software" {
		t.Fatalf("Runtime = %q", res.Runtime)
	}
}

func TestSoftwareMatchesPaperZeroACs(t *testing.T) {
	// The 0-Atom-Container data point of Section 5: 7,403M cycles.
	is := isa.H264()
	tr := workload.H264(workload.H264Config{})
	res, err := Run(tr, is, Software(is), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles < 7_350_000_000 || res.TotalCycles > 7_450_000_000 {
		t.Fatalf("software encode = %d cycles, want ≈7,403M", res.TotalCycles)
	}
}

// eventRuntime is a scripted runtime: SI latency drops from slow to fast at
// a fixed event time, mimicking one Atom-load completion.
type eventRuntime struct {
	is      *isa.ISA
	eventAt int64
	fired   bool
	slow    int
	fast    int

	recorded int64
}

func (e *eventRuntime) Name() string                      { return "scripted" }
func (e *eventRuntime) Reset()                            { e.fired = false; e.recorded = 0 }
func (e *eventRuntime) EnterHotSpot(isa.HotSpotID, int64) {}
func (e *eventRuntime) LeaveHotSpot(int64)                {}
func (e *eventRuntime) Latency(isa.SIID) int {
	if e.fired {
		return e.fast
	}
	return e.slow
}
func (e *eventRuntime) Record(_ isa.SIID, n int64, _ int64) { e.recorded += n }
func (e *eventRuntime) NextEvent() (int64, bool) {
	if e.fired {
		return 0, false
	}
	return e.eventAt, true
}
func (e *eventRuntime) Advance(t int64) {
	if t != e.eventAt {
		panic("advance at wrong time")
	}
	e.fired = true
}

func TestEventSplitsBurst(t *testing.T) {
	// 10 executions, 100 cycles each (latency 95 + gap 5); the upgrade
	// fires at cycle 250, so executions starting at 0, 100, 200 run slow
	// (the one at 200 still starts before 250) and the remaining 7 run at
	// 15 cycles each (10 + 5).
	is := isa.H264()
	tr := workload.NewBuilder("b").
		Phase(isa.HotSpotME, 0).
		Burst(isa.SISAD, 10, 5).
		Build()
	rt := &eventRuntime{is: is, eventAt: 250, slow: 95, fast: 10}
	res, err := Run(tr, is, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(3*100 + 7*15)
	if res.TotalCycles != want {
		t.Fatalf("TotalCycles = %d, want %d", res.TotalCycles, want)
	}
	if rt.recorded != 10 {
		t.Fatalf("recorded %d executions", rt.recorded)
	}
}

func TestEventDuringSetupApplies(t *testing.T) {
	is := isa.H264()
	tr := workload.NewBuilder("b").
		Phase(isa.HotSpotME, 1000). // upgrade completes during setup
		Burst(isa.SISAD, 5, 0).
		Build()
	rt := &eventRuntime{is: is, eventAt: 400, slow: 100, fast: 10}
	res, err := Run(tr, is, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1000 + 5*10)
	if res.TotalCycles != want {
		t.Fatalf("TotalCycles = %d, want %d", res.TotalCycles, want)
	}
}

func TestHistogramCollection(t *testing.T) {
	is := isa.H264()
	tr := workload.NewBuilder("b").
		Phase(isa.HotSpotME, 0).
		Burst(isa.SISAD, 100, 0).
		Build()
	rt := &eventRuntime{is: is, eventAt: 1 << 60, slow: 100, fast: 1}
	res, err := Run(tr, is, rt, Options{HistogramBucket: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Histogram == nil {
		t.Fatal("histogram not collected")
	}
	counts := res.Histogram.Counts(int(isa.SISAD))
	if len(counts) != 10 {
		t.Fatalf("buckets = %d, want 10", len(counts))
	}
	for i, c := range counts {
		if c != 10 {
			t.Fatalf("bucket %d = %d, want 10 (100-cycle executions, 1000-cycle buckets)", i, c)
		}
	}
}

func TestTimelineCollection(t *testing.T) {
	is := isa.H264()
	tr := workload.NewBuilder("b").
		Phase(isa.HotSpotME, 0).
		Burst(isa.SISAD, 10, 0).
		Build()
	rt := &eventRuntime{is: is, eventAt: 250, slow: 100, fast: 10}
	res, err := Run(tr, is, rt, Options{Timeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil {
		t.Fatal("timeline not collected")
	}
	if got := res.Timeline.LatencyAt(int(isa.SISAD), 0, -1); got != 100 {
		t.Fatalf("latency at 0 = %d", got)
	}
	if got := res.Timeline.LatencyAt(int(isa.SISAD), 300, -1); got != 10 {
		t.Fatalf("latency after event = %d", got)
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	if _, err := Run(tr, is, Software(is), Options{MaxCycles: 1000}); err == nil {
		t.Fatal("MaxCycles not enforced")
	}
}

func TestStallCyclesAccounting(t *testing.T) {
	is := isa.H264()
	tr := workload.NewBuilder("b").
		Phase(isa.HotSpotME, 0).
		Burst(isa.SISAD, 3, 0).
		Build()
	res, err := Run(tr, is, Software(is), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fastest := is.SI(isa.SISAD).Fastest().Latency
	want := 3 * int64(is.SI(isa.SISAD).SWLatency-fastest)
	if res.StallCycles != want {
		t.Fatalf("StallCycles = %d, want %d", res.StallCycles, want)
	}
}

func TestRunResetsRuntime(t *testing.T) {
	is := isa.H264()
	tr := smallTrace()
	rt := &eventRuntime{is: is, eventAt: 50, slow: 100, fast: 10}
	a, err := Run(tr, is, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, is, rt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatalf("re-run differs: %d vs %d (Reset broken)", a.TotalCycles, b.TotalCycles)
	}
}

func TestPhaseStats(t *testing.T) {
	is := isa.H264()
	tr := smallTrace()
	res, err := Run(tr, is, Software(is), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(res.Phases))
	}
	if res.Phases[0].Start != 0 || res.Phases[0].End != res.Phases[1].Start {
		t.Fatalf("phase boundaries not contiguous: %+v", res.Phases)
	}
	if res.Phases[1].End != res.TotalCycles {
		t.Fatalf("last phase ends at %d, total %d", res.Phases[1].End, res.TotalCycles)
	}
	var sum int64
	for _, p := range res.Phases {
		sum += p.Cycles()
	}
	if sum != res.TotalCycles {
		t.Fatalf("phase cycles sum %d != total %d", sum, res.TotalCycles)
	}
	if res.Phases[0].HotSpot != isa.HotSpotME || res.Phases[1].HotSpot != isa.HotSpotLF {
		t.Fatalf("phase hot spots wrong: %+v", res.Phases)
	}
}

func TestJournal(t *testing.T) {
	is := isa.H264()
	tr := smallTrace()
	var buf bytes.Buffer
	rt := &eventRuntime{is: is, eventAt: 500, slow: 100, fast: 10}
	if _, err := Run(tr, is, rt, Options{Journal: &buf}); err != nil {
		t.Fatal(err)
	}
	var enters, leaves, loads, lats int
	dec := json.NewDecoder(&buf)
	var last int64 = -1
	for dec.More() {
		var e JournalEvent
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Cycle < last {
			t.Fatalf("journal time went backwards: %d after %d", e.Cycle, last)
		}
		last = e.Cycle
		switch e.Event {
		case "enter":
			enters++
		case "leave":
			leaves++
		case "load":
			loads++
		case "latency":
			lats++
		default:
			t.Fatalf("unknown event %q", e.Event)
		}
	}
	if enters != 2 || leaves != 2 {
		t.Fatalf("enter/leave = %d/%d, want 2/2", enters, leaves)
	}
	if loads != 1 {
		t.Fatalf("loads = %d, want 1 (the scripted event)", loads)
	}
	if lats == 0 {
		t.Fatal("no latency events recorded")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJournalWriteErrorSurfaces(t *testing.T) {
	is := isa.H264()
	tr := smallTrace()
	if _, err := Run(tr, is, Software(is), Options{Journal: failingWriter{}}); err == nil {
		t.Fatal("journal write error swallowed")
	}
}

func TestJournalRoundTrip(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 2})
	var buf bytes.Buffer
	rt := &eventRuntime{is: is, eventAt: 500_000, slow: 100, fast: 10}
	res, err := Run(tr, is, rt, Options{Journal: &buf})
	if err != nil {
		t.Fatal(err)
	}
	events, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	summary, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(summary.Phases) != len(res.Phases) {
		t.Fatalf("journal reconstructs %d phases, sim ran %d", len(summary.Phases), len(res.Phases))
	}
	for i, p := range summary.Phases {
		if p.Start != res.Phases[i].Start || p.End != res.Phases[i].End {
			t.Fatalf("phase %d boundaries differ: journal [%d,%d], sim [%d,%d]",
				i, p.Start, p.End, res.Phases[i].Start, res.Phases[i].End)
		}
		if int(res.Phases[i].HotSpot) != p.HotSpot {
			t.Fatalf("phase %d hot spot differs", i)
		}
	}
	if summary.Loads != 1 {
		t.Fatalf("journal loads = %d, want 1", summary.Loads)
	}
}

func TestReadJournalRejectsGarbage(t *testing.T) {
	cases := []string{
		"{not json}\n",
		`{"t":5,"ev":"explode"}` + "\n",
		`{"t":10,"ev":"enter","hotspot":0}` + "\n" + `{"t":5,"ev":"leave","hotspot":0}` + "\n",
	}
	for i, c := range cases {
		if _, err := ReadJournal(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSummarizeRejectsMalformedSequences(t *testing.T) {
	cases := [][]JournalEvent{
		{{Event: "leave"}},
		{{Event: "enter"}, {Event: "enter"}},
		{{Event: "enter"}},
		{{Event: "enter", HotSpot: 1}, {Event: "leave", HotSpot: 2}},
	}
	for i, evs := range cases {
		if _, err := Summarize(evs); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
