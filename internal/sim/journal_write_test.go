package sim

import (
	"encoding/json"
	"testing"
)

// TestAppendJournalEventMatchesMarshal pins the hand-rolled encoder to
// encoding/json: every event shape the simulator emits must encode to
// exactly the bytes json.Marshal would produce.
func TestAppendJournalEventMatchesMarshal(t *testing.T) {
	events := []JournalEvent{
		{},
		{Cycle: 0, Event: "enter", HotSpot: 0},
		{Cycle: 123456789, Event: "enter", HotSpot: 2},
		{Cycle: 1, Event: "leave", HotSpot: 1},
		{Cycle: 42, Event: "load"},
		{Cycle: 99, Event: "latency", SI: 3, Latency: 128},
		{Cycle: 1 << 40, Event: "latency", SI: 0, Latency: 1},
		{Cycle: -7, Event: "load", HotSpot: -1, SI: -2, Latency: -3},
		{Cycle: 9223372036854775807, Event: "latency", SI: 2147483647, Latency: -2147483648},
	}
	var buf []byte
	for _, e := range events {
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf = appendJournalEvent(buf[:0], e)
		if string(buf) != string(want) {
			t.Errorf("appendJournalEvent(%+v) = %s, want %s", e, buf, want)
		}
	}
}
