// Equivalence test for the compiled-trace hot path: the optimised
// simulator (workload.Compile + dense per-SI accounting + hand-rolled
// journal encoder) must produce results byte-identical to the original
// per-event implementation. referenceRun below is a faithful copy of the
// pre-optimisation loop — maps for accounting, json.Marshal per journal
// event, unbuffered writes — kept here as the executable specification.
package sim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/molen"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/stats"
	"rispp/internal/workload"
)

// refResult mirrors the original sim.Result layout (exported maps).
type refResult struct {
	Runtime      string
	TotalCycles  int64
	Executions   map[isa.SIID]int64
	SWExecutions map[isa.SIID]int64
	HWExecutions map[isa.SIID]int64
	StallCycles  int64
	Phases       []sim.PhaseStat
	Histogram    *stats.Histogram
	Timeline     *stats.Timeline
}

// referenceRun is the pre-optimisation simulation loop, verbatim except
// for the package qualifiers: per-SI maps, a fresh Result per run, and one
// json.Marshal + Write per journal event.
func referenceRun(tr *workload.Trace, is *isa.ISA, rt sim.Runtime, opts sim.Options) (*refResult, error) {
	rt.Reset()
	res := &refResult{
		Runtime:      rt.Name(),
		Executions:   make(map[isa.SIID]int64),
		SWExecutions: make(map[isa.SIID]int64),
		HWExecutions: make(map[isa.SIID]int64),
	}
	if opts.HistogramBucket > 0 {
		res.Histogram = stats.NewHistogram(opts.HistogramBucket)
	}
	if opts.Timeline {
		res.Timeline = &stats.Timeline{}
	}
	var journalErr error
	journal := func(e sim.JournalEvent) {
		if opts.Journal == nil || journalErr != nil {
			return
		}
		b, err := json.Marshal(e)
		if err == nil {
			_, err = opts.Journal.Write(append(b, '\n'))
		}
		if err != nil {
			journalErr = fmt.Errorf("sim: journal: %w", err)
		}
	}

	now := int64(0)
	lastLat := make(map[isa.SIID]int)
	recordLats := func(at int64, spot []isa.SIID) {
		for _, si := range spot {
			lat := rt.Latency(si)
			if res.Timeline != nil {
				res.Timeline.Record(at, int(si), lat)
			}
			if opts.Journal != nil && lastLat[si] != lat {
				lastLat[si] = lat
				journal(sim.JournalEvent{Cycle: at, Event: "latency", SI: int(si), Latency: lat})
			}
		}
	}
	drain := func(limit int64, spot []isa.SIID) {
		for {
			at, ok := rt.NextEvent()
			if !ok || at > limit {
				return
			}
			rt.Advance(at)
			journal(sim.JournalEvent{Cycle: at, Event: "load"})
			recordLats(at, spot)
		}
	}

	res.Phases = make([]sim.PhaseStat, 0, len(tr.Phases))
	for pi := range tr.Phases {
		p := &tr.Phases[pi]
		phaseStart := now
		spot := make([]isa.SIID, 0, 8)
		for _, s := range is.HotSpotSIs(p.HotSpot) {
			spot = append(spot, s.ID)
		}
		rt.EnterHotSpot(p.HotSpot, now)
		journal(sim.JournalEvent{Cycle: now, Event: "enter", HotSpot: int(p.HotSpot)})
		recordLats(now, spot)
		now += p.Setup
		drain(now, spot)

		for _, b := range p.Bursts {
			remaining := int64(b.Count)
			for remaining > 0 {
				drain(now, spot)
				lat := rt.Latency(b.SI)
				per := int64(lat + b.Gap)
				n := remaining
				if next, ok := rt.NextEvent(); ok && next > now {
					if k := (next - now + per - 1) / per; k < n {
						n = k
					}
				}
				if res.Histogram != nil {
					res.Histogram.Add(int(b.SI), now, n, per)
				}
				res.Executions[b.SI] += n
				sw := lat >= is.SI(b.SI).SWLatency
				if sw {
					res.SWExecutions[b.SI] += n
				} else {
					res.HWExecutions[b.SI] += n
				}
				res.StallCycles += n * int64(lat-is.SI(b.SI).Fastest().Latency)
				now += n * per
				remaining -= n
				rt.Record(b.SI, n, now)
				if opts.MaxCycles > 0 && now > opts.MaxCycles {
					return nil, fmt.Errorf("sim: exceeded MaxCycles=%d at phase %d", opts.MaxCycles, pi)
				}
			}
		}
		drain(now, spot)
		rt.LeaveHotSpot(now)
		journal(sim.JournalEvent{Cycle: now, Event: "leave", HotSpot: int(p.HotSpot)})
		res.Phases = append(res.Phases, sim.PhaseStat{HotSpot: p.HotSpot, Start: phaseStart, End: now})
	}
	res.TotalCycles = now
	if journalErr != nil {
		return nil, journalErr
	}
	return res, nil
}

// TestCompiledTraceEquivalence runs the H.264 workload on every run-time
// system and requires the optimised path to match the reference
// implementation exactly: cycle counts, per-SI execution maps, phase
// boundaries, histogram buckets, timeline events and journal bytes.
func TestCompiledTraceEquivalence(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 2})

	systems := []string{"FSFR", "ASF", "SJF", "HEF", "Molen", "software"}
	for _, system := range systems {
		t.Run(system, func(t *testing.T) {
			newRT := func() sim.Runtime {
				switch system {
				case "software":
					return sim.Software(is)
				case "Molen":
					r := molen.New(molen.Config{ISA: is, NumACs: 10})
					r.SeedFromTrace(tr)
					return r
				default:
					s, err := sched.New(system)
					if err != nil {
						t.Fatal(err)
					}
					m := core.NewManager(core.Config{ISA: is, NumACs: 10, Scheduler: s})
					m.SeedFromTrace(tr)
					return m
				}
			}
			opts := sim.Options{HistogramBucket: 100_000, Timeline: true}

			var refJournal, gotJournal bytes.Buffer
			refOpts := opts
			refOpts.Journal = &refJournal
			want, err := referenceRun(tr, is, newRT(), refOpts)
			if err != nil {
				t.Fatal(err)
			}

			gotOpts := opts
			gotOpts.Journal = &gotJournal
			got, err := sim.Run(tr, is, newRT(), gotOpts)
			if err != nil {
				t.Fatal(err)
			}

			if got.Runtime != want.Runtime {
				t.Errorf("Runtime = %q, want %q", got.Runtime, want.Runtime)
			}
			if got.TotalCycles != want.TotalCycles {
				t.Errorf("TotalCycles = %d, want %d", got.TotalCycles, want.TotalCycles)
			}
			if got.StallCycles != want.StallCycles {
				t.Errorf("StallCycles = %d, want %d", got.StallCycles, want.StallCycles)
			}
			if !reflect.DeepEqual(got.Phases, want.Phases) {
				t.Errorf("Phases = %v, want %v", got.Phases, want.Phases)
			}
			if !reflect.DeepEqual(got.Executions(), want.Executions) {
				t.Errorf("Executions = %v, want %v", got.Executions(), want.Executions)
			}
			if !reflect.DeepEqual(got.SWExecutions(), want.SWExecutions) {
				t.Errorf("SWExecutions = %v, want %v", got.SWExecutions(), want.SWExecutions)
			}
			if !reflect.DeepEqual(got.HWExecutions(), want.HWExecutions) {
				t.Errorf("HWExecutions = %v, want %v", got.HWExecutions(), want.HWExecutions)
			}
			if g, w := got.Histogram.Buckets(), want.Histogram.Buckets(); g != w {
				t.Errorf("Histogram.Buckets() = %d, want %d", g, w)
			}
			for _, si := range want.Histogram.SIs() {
				if g, w := got.Histogram.Counts(si), want.Histogram.Counts(si); !reflect.DeepEqual(g, w) {
					t.Errorf("Histogram.Counts(%d) = %v, want %v", si, g, w)
				}
			}
			if !reflect.DeepEqual(got.Timeline.Events, want.Timeline.Events) {
				t.Errorf("Timeline events differ:\n got %v\nwant %v", got.Timeline.Events, want.Timeline.Events)
			}
			if !bytes.Equal(gotJournal.Bytes(), refJournal.Bytes()) {
				t.Errorf("journal bytes differ (%d vs %d bytes)", gotJournal.Len(), refJournal.Len())
				gl, wl := bytes.Split(gotJournal.Bytes(), []byte("\n")), bytes.Split(refJournal.Bytes(), []byte("\n"))
				for i := 0; i < len(gl) && i < len(wl); i++ {
					if !bytes.Equal(gl[i], wl[i]) {
						t.Errorf("first differing journal line %d:\n got %s\nwant %s", i, gl[i], wl[i])
						break
					}
				}
			}
		})
	}
}

// TestRunCompiledReuseEquivalence runs the same compiled trace twice into
// one reused Result and requires the second run to match a fresh one —
// i.e. reset() must fully clear all per-run state.
func TestRunCompiledReuseEquivalence(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	ct, err := workload.Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	rt := hefManager(is, ct)
	opts := sim.Options{HistogramBucket: 100_000, Timeline: true}

	fresh := new(sim.Result)
	if err := sim.RunCompiled(context.Background(), ct, rt, opts, fresh); err != nil {
		t.Fatal(err)
	}
	reused := new(sim.Result)
	for i := 0; i < 2; i++ {
		if err := sim.RunCompiled(context.Background(), ct, rt, opts, reused); err != nil {
			t.Fatal(err)
		}
	}

	if reused.TotalCycles != fresh.TotalCycles || reused.StallCycles != fresh.StallCycles {
		t.Errorf("reused run: cycles %d/%d, fresh %d/%d",
			reused.TotalCycles, reused.StallCycles, fresh.TotalCycles, fresh.StallCycles)
	}
	if !reflect.DeepEqual(reused.Executions(), fresh.Executions()) {
		t.Errorf("reused Executions = %v, want %v", reused.Executions(), fresh.Executions())
	}
	if !reflect.DeepEqual(reused.Phases, fresh.Phases) {
		t.Errorf("reused Phases = %v, want %v", reused.Phases, fresh.Phases)
	}
	for _, si := range fresh.Histogram.SIs() {
		if !reflect.DeepEqual(reused.Histogram.Counts(si), fresh.Histogram.Counts(si)) {
			t.Errorf("reused Histogram.Counts(%d) differs", si)
		}
	}
	if !reflect.DeepEqual(reused.Timeline.Events, fresh.Timeline.Events) {
		t.Errorf("reused Timeline differs")
	}
}
