// Persistent delta-resimulation trails: the final rung of a completed
// Trail serialized to disk, so the full-skip path (Trail.Serve) survives
// process restarts.
//
// Only the final rung is portable. Intermediate rungs carry an opaque
// runtime state arena (trailSnap.rtState) — deep scheduler/monitor/
// container state with no stable serialized form — but the final rung is
// different in kind: a run that full-skips from it never touches a
// runtime at all, it just restores the Result accumulator and replays the
// journal bytes. Those are plain data. An imported trail therefore serves
// exactly the budgets a full skip is legal for and declines everything
// else (ResumeCompiled finds no mid-run snapshot to restore), which keeps
// the one invariant of this subsystem intact: a wrong resume can never
// happen, only a missed optimization.
package sim

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rispp/internal/workload"
)

// TrailStateVersion is the format version of persisted trail states; bump
// it when the serialized fields or their meaning change, and old files
// become misses instead of wrong results.
const TrailStateVersion = 1

// TrailState is the portable form of a completed trail's final rung: the
// end-of-run Result accumulator plus the transfer-legality facts
// (demand/upOK) that decide which budgets may full-skip from it.
type TrailState struct {
	Version int    `json:"version"`
	Key     string `json:"key"` // caller's config identity; verified on load
	Name    string `json:"name"`
	Budget  int    `json:"budget"`
	Phases  int    `json:"phases"`
	NumSIs  int    `json:"sis"`
	Now     int64  `json:"now"`
	Demand  int    `json:"demand"`
	UpOK    bool   `json:"up_ok"`

	HasJournal bool   `json:"has_journal,omitempty"`
	Journal    []byte `json:"journal,omitempty"`

	Stall      int64       `json:"stall"`
	Execs      []int64     `json:"execs"`
	SWExecs    []int64     `json:"sw_execs"`
	HWExecs    []int64     `json:"hw_execs"`
	LastLat    []int       `json:"last_lat"`
	PhaseStats []PhaseStat `json:"phase_stats"`
}

// ExportState extracts the final-rung state of a complete trail, labeled
// with the caller's key. Returns false for incomplete trails.
func (t *Trail) ExportState(key string) (*TrailState, bool) {
	if !t.complete || len(t.snaps) == 0 {
		return nil, false
	}
	last := &t.snaps[len(t.snaps)-1]
	if last.phase != len(t.ct.Phases) {
		return nil, false // defensive: a complete trail always ends at the end
	}
	st := &TrailState{
		Version:    TrailStateVersion,
		Key:        key,
		Name:       t.name,
		Budget:     t.budget,
		Phases:     len(t.ct.Phases),
		NumSIs:     t.ct.NumSIs,
		Now:        last.now,
		Demand:     last.demand,
		UpOK:       last.upOK,
		HasJournal: t.hasJournal,
		Stall:      last.res.stall,
		Execs:      append([]int64(nil), last.res.execs...),
		SWExecs:    append([]int64(nil), last.res.swExecs...),
		HWExecs:    append([]int64(nil), last.res.hwExecs...),
		LastLat:    append([]int(nil), last.res.lastLat...),
		PhaseStats: append([]PhaseStat(nil), last.res.phases...),
	}
	if t.hasJournal {
		st.Journal = append([]byte(nil), t.jbuf...)
	}
	return st, true
}

// ImportTrail reconstructs a serve-only trail from a persisted state,
// bound to the caller's canonical compiled trace. The state must agree
// with the trace on phase count and SI count (and be internally
// consistent); anything else is a miss. The caller is responsible for
// matching Key to the configuration that produced the state — the
// structural checks here catch corruption and trace drift, not a wrong
// key discipline.
func ImportTrail(st *TrailState, ct *workload.Compiled) (*Trail, bool) {
	if st == nil || st.Version != TrailStateVersion {
		return nil, false
	}
	if st.Phases != len(ct.Phases) || st.NumSIs != ct.NumSIs {
		return nil, false
	}
	if len(st.Execs) != st.NumSIs || len(st.SWExecs) != st.NumSIs ||
		len(st.HWExecs) != st.NumSIs || len(st.LastLat) != st.NumSIs ||
		len(st.PhaseStats) != st.Phases {
		return nil, false
	}
	t := &Trail{
		name:       st.Name,
		budget:     st.Budget,
		ct:         ct,
		complete:   true,
		hasJournal: st.HasJournal,
		jbuf:       append([]byte(nil), st.Journal...),
	}
	t.snaps = []trailSnap{{
		phase:  st.Phases,
		now:    st.Now,
		demand: st.Demand,
		upOK:   st.UpOK,
		joff:   len(t.jbuf),
		// rtState stays nil: this rung serves full skips only.
		res: resultSnap{
			stall:   st.Stall,
			execs:   append([]int64(nil), st.Execs...),
			swExecs: append([]int64(nil), st.SWExecs...),
			hwExecs: append([]int64(nil), st.HWExecs...),
			lastLat: append([]int(nil), st.LastLat...),
			phases:  append([]PhaseStat(nil), st.PhaseStats...),
		},
	}}
	return t, true
}

// TrailStore persists trail states in a directory, one JSON file per
// (key, budget), named by the SHA-256 of the key plus the budget. Like the
// explore result cache it sits next to, the directory may be shared by
// concurrent workers (atomic writes, lost races on identical bytes
// tolerated) but must be exclusive to one base configuration — the key
// covers the run knobs, not the platform calibration.
type TrailStore struct {
	dir string
}

// OpenTrailStore opens (creating if needed) a trail store directory.
func OpenTrailStore(dir string) (*TrailStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sim: open trail store: %w", err)
	}
	return &TrailStore{dir: dir}, nil
}

// Dir returns the store directory.
func (s *TrailStore) Dir() string { return s.dir }

func (s *TrailStore) path(key string, budget int) string {
	h := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(h[:])+"-b"+strconv.Itoa(budget)+".trail.json")
}

// Put persists the trail's final rung under (key, its recorded budget).
// Incomplete trails are ignored.
func (s *TrailStore) Put(key string, t *Trail) error {
	st, ok := t.ExportState(key)
	if !ok {
		return nil
	}
	b, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("sim: trail store: %w", err) // plain data; cannot fail
	}
	b = append(b, '\n')
	dst := s.path(key, st.Budget)
	tmp, err := os.CreateTemp(s.dir, ".trail-*")
	if err != nil {
		return fmt.Errorf("sim: trail store: %w", err)
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: trail store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sim: trail store: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		// The simulator is deterministic: a concurrent writer of the same
		// (key, budget) holds identical bytes, so losing the rename race to
		// an equal entry is success.
		if cur, rerr := os.ReadFile(dst); rerr == nil && bytes.Equal(cur, b) {
			return nil
		}
		return fmt.Errorf("sim: trail store: %w", err)
	}
	return nil
}

// Get loads the trail persisted under (key, budget) and binds it to ct.
// Corrupt, foreign, version-skewed or trace-mismatched files are misses.
func (s *TrailStore) Get(key string, budget int, ct *workload.Compiled) (*Trail, bool) {
	b, err := os.ReadFile(s.path(key, budget))
	if err != nil {
		return nil, false
	}
	var st TrailState
	if json.Unmarshal(b, &st) != nil || st.Key != key || st.Budget != budget {
		return nil, false
	}
	return ImportTrail(&st, ct)
}

// Len counts the persisted trails.
func (s *TrailStore) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".trail.json") {
			n++
		}
	}
	return n
}
