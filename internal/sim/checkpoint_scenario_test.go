// Delta-resimulation under ISA-switching scenario workloads: trails
// recorded on a multi-app (merged-ISA) trace must transfer across budgets
// field-exact — journal bytes included — and must refuse any compiled
// trace that is not the very object they recorded.
package sim_test

import (
	"bytes"
	"context"
	"testing"

	"rispp/internal/scenario"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

// TestTrailScenarioCrossBudget is TestTrailCrossBudgetEquivalence over the
// scenario library's ISA-switch workloads: every shipped multiapp scenario
// (cross-app eviction pressure, merged Atom spaces) and one control-flow
// scenario, recorded at one budget and served/resumed at others, against
// fresh from-power-on references.
func TestTrailScenarioCrossBudget(t *testing.T) {
	names := []string{"video-crypto", "video-pip", "sdr-crypto", "early-exit-me"}
	budgets := []int{4, 8, 12}
	const recordAt = 8
	for _, name := range names {
		sc, ok := scenario.Find(name)
		if !ok {
			t.Fatalf("scenario %s missing", name)
		}
		is := sc.ISA()
		tr := sc.Trace(4, 1)
		ct, err := workload.Compile(tr, is)
		if err != nil {
			t.Fatal(err)
		}
		for _, system := range checkpointSystems {
			t.Run(name+"/"+system, func(t *testing.T) {
				trail := new(sim.Trail)
				rt := checkpointRuntime(t, system, is, tr, recordAt)
				var recJ bytes.Buffer
				if err := sim.RunCompiledTrail(context.Background(), ct, rt,
					sim.Options{Journal: &recJ}, new(sim.Result), trail); err != nil {
					t.Fatal(err)
				}
				if !trail.Complete() {
					t.Fatal("trail incomplete after successful run")
				}
				for _, budget := range budgets {
					var refJ bytes.Buffer
					ref := new(sim.Result)
					if err := sim.RunCompiled(context.Background(), ct,
						checkpointRuntime(t, system, is, tr, budget),
						sim.Options{Journal: &refJ}, ref); err != nil {
						t.Fatal(err)
					}

					var gotJ bytes.Buffer
					got := new(sim.Result)
					served, err := trail.Serve(ct, budget, sim.Options{Journal: &gotJ}, got)
					if err != nil {
						t.Fatal(err)
					}
					path := "serve"
					if !served {
						rec := new(sim.Trail)
						rt := checkpointRuntime(t, system, is, tr, budget)
						used, err := sim.ResumeCompiled(context.Background(), ct, rt,
							sim.Options{Journal: &gotJ}, got, trail, rec)
						if err != nil {
							t.Fatal(err)
						}
						path = "resume"
						if !used {
							if err := sim.RunCompiledTrail(context.Background(), ct, rt,
								sim.Options{Journal: &gotJ}, got, rec); err != nil {
								t.Fatal(err)
							}
							path = "record-fallback"
						}
						if !rec.Complete() {
							t.Fatalf("budget %d: re-recorded trail incomplete", budget)
						}
					}
					requireSameRun(t, path, got, ref, gotJ.Bytes(), refJ.Bytes())
					if budget == recordAt && !served {
						t.Errorf("budget %d: recorded budget was not a full skip", budget)
					}
				}
			})
		}
	}
}

// TestTrailRefusesForeignTrace pins the trace-identity guard: a trail only
// ever serves the exact *workload.Compiled it recorded. Even a re-compiled,
// content-identical trace is refused — identity is by pointer, which is
// what the Runner's compile memo hands out — because "same phase count" is
// not "same schedule" once workloads switch ISAs mid-trace, and a silently
// wrong resume must be impossible by construction.
func TestTrailRefusesForeignTrace(t *testing.T) {
	sc, _ := scenario.Find("video-crypto")
	is := sc.ISA()
	tr := sc.Trace(3, 1)
	ct, err := workload.Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	// Same trace, separate compilation: equal content, different identity.
	ct2, err := workload.Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct2.Phases) != len(ct.Phases) {
		t.Fatal("recompilation changed the phase count?")
	}

	trail := new(sim.Trail)
	rt := checkpointRuntime(t, "HEF", is, tr, 8)
	if err := sim.RunCompiledTrail(context.Background(), ct, rt, sim.Options{}, new(sim.Result), trail); err != nil {
		t.Fatal(err)
	}

	if served, _ := trail.Serve(ct2, 8, sim.Options{}, new(sim.Result)); served {
		t.Error("trail served a foreign compiled trace (same content, different object)")
	}
	if used, _ := sim.ResumeCompiled(context.Background(), ct2, rt, sim.Options{}, new(sim.Result), trail, nil); used {
		t.Error("trail resumed a foreign compiled trace (same content, different object)")
	}
	// The recorded object still serves.
	if served, err := trail.Serve(ct, 8, sim.Options{}, new(sim.Result)); err != nil || !served {
		t.Errorf("trail refused its own trace: served=%v err=%v", served, err)
	}
}
