// Package estimate implements the offline estimation tool of the RISPP
// toolchain ("Our whole platform consists of a toolchain including
// estimation and simulation tools", paper Section 1): it profiles a
// workload trace and predicts execution-time bounds for a given fabric
// size analytically, without running the cycle simulator.
//
// The estimator brackets the run time between an optimistic bound (every
// SI executes at its selected Molecule's latency from the start; the
// reconfiguration port is never on the critical path) and a pessimistic
// bound (no stepwise upgrades: every SI runs in software until its complete
// selected Molecule is loaded, with loads serialized — the Molen-like
// behaviour). A fixed-point ramp model distributes each hot spot's SI
// executions across its reconfiguration window.
package estimate

import (
	"fmt"

	"rispp/internal/isa"
	"rispp/internal/reconfig"
	"rispp/internal/selection"
	"rispp/internal/workload"
)

// Profile summarizes a trace the way the offline profiler of the toolchain
// would: per hot spot, the average SI execution counts per occurrence.
type Profile struct {
	Occurrences map[isa.HotSpotID]int
	PerSpot     map[isa.HotSpotID]map[isa.SIID]int64 // average per occurrence
	Gap         map[isa.SIID]int                     // average glue cycles
	Setup       map[isa.HotSpotID]int64              // average setup cycles
}

// ProfileTrace computes the profile of a workload trace.
func ProfileTrace(tr *workload.Trace) *Profile {
	p := &Profile{
		Occurrences: make(map[isa.HotSpotID]int),
		PerSpot:     make(map[isa.HotSpotID]map[isa.SIID]int64),
		Gap:         make(map[isa.SIID]int),
		Setup:       make(map[isa.HotSpotID]int64),
	}
	totalSetup := map[isa.HotSpotID]int64{}
	totals := map[isa.HotSpotID]map[isa.SIID]int64{}
	gapSum := map[isa.SIID]int64{}
	gapN := map[isa.SIID]int64{}
	for i := range tr.Phases {
		ph := &tr.Phases[i]
		p.Occurrences[ph.HotSpot]++
		totalSetup[ph.HotSpot] += ph.Setup
		if totals[ph.HotSpot] == nil {
			totals[ph.HotSpot] = make(map[isa.SIID]int64)
		}
		for _, b := range ph.Bursts {
			totals[ph.HotSpot][b.SI] += int64(b.Count)
			gapSum[b.SI] += int64(b.Gap) * int64(b.Count)
			gapN[b.SI] += int64(b.Count)
		}
	}
	for h, per := range totals {
		occ := int64(p.Occurrences[h])
		avg := make(map[isa.SIID]int64, len(per))
		for si, n := range per {
			avg[si] = n / occ
		}
		p.PerSpot[h] = avg
		p.Setup[h] = totalSetup[h] / occ
	}
	for si, sum := range gapSum {
		p.Gap[si] = int(sum / gapN[si])
	}
	return p
}

// Bounds carries the analytic execution-time estimates in cycles.
type Bounds struct {
	Optimistic  int64 // all selected Molecules available from the start
	Pessimistic int64 // software until fully composed (Molen-like), per entry
	Ramp        int64 // fixed-point ramp model of the upgrade window
}

// ForTrace estimates the execution time of the trace on a RISPP fabric
// with numACs containers, using the greedy Molecule selection on the
// profiled execution counts.
func ForTrace(is *isa.ISA, tr *workload.Trace, numACs int, timing reconfig.Timing) Bounds {
	prof := ProfileTrace(tr)
	var b Bounds
	for i := range tr.Phases {
		ph := &tr.Phases[i]
		pb := phaseBounds(is, prof, ph, numACs, timing)
		b.Optimistic += pb.Optimistic
		b.Pessimistic += pb.Pessimistic
		b.Ramp += pb.Ramp
	}
	return b
}

// phaseBounds estimates one hot-spot occurrence.
func phaseBounds(is *isa.ISA, prof *Profile, ph *workload.Phase, numACs int, timing reconfig.Timing) Bounds {
	// Selection exactly as the run-time system would do it, from the
	// profiled expectations.
	var cands []selection.Candidate
	for _, si := range is.HotSpotSIs(ph.HotSpot) {
		cands = append(cands, selection.Candidate{SI: si, Expected: prof.PerSpot[ph.HotSpot][si.ID]})
	}
	reqs := selection.Greedy(cands, numACs, is.Dim())
	lat := make(map[isa.SIID]int, len(is.SIs))
	for _, si := range is.HotSpotSIs(ph.HotSpot) {
		lat[si.ID] = si.SWLatency
	}
	for _, r := range reqs {
		lat[r.SI.ID] = r.Selected.Latency
	}

	// Reconfiguration window per SI: cumulative serialized load time in
	// request order, ignoring cross-SI Atom sharing (upper bound).
	window := make(map[isa.SIID]int64, len(reqs))
	var cum int64
	for _, r := range reqs {
		for _, u := range r.Selected.Atoms.Units() {
			cum += timing.LoadCycles(is.Atom(isa.AtomID(u)).BitstreamBytes)
		}
		window[r.SI.ID] = cum
	}

	counts := map[isa.SIID]int64{}
	for _, bu := range ph.Bursts {
		counts[bu.SI] += int64(bu.Count)
	}

	var opt int64 = ph.Setup
	for si, n := range counts {
		opt += n * int64(lat[si]+prof.Gap[si])
	}

	// Pessimistic / ramp: executions before the SI's window closes run in
	// software. The share running slow depends on the phase duration,
	// which depends on that share — iterate the fixed point.
	fixpoint := func(full bool) int64 {
		t := opt
		for iter := 0; iter < 32; iter++ {
			var next int64 = ph.Setup
			for si, n := range counts {
				w := window[si]
				if !full {
					// Ramp model: stepwise upgrades halve the effective
					// software window (the SI spends the window at
					// intermediate latencies rather than full software).
					w /= 2
				}
				slow := int64(0)
				if t > 0 && w > 0 {
					slow = n * w / t
					if slow > n {
						slow = n
					}
				}
				sw := is.SI(si).SWLatency
				next += slow*int64(sw+prof.Gap[si]) + (n-slow)*int64(lat[si]+prof.Gap[si])
			}
			if next == t {
				break
			}
			t = next
		}
		return t
	}
	return Bounds{Optimistic: opt, Pessimistic: fixpoint(true), Ramp: fixpoint(false)}
}

// SpeedupEstimate predicts the speedup over pure software execution using
// the ramp model — the number a designer would read off before committing
// to a fabric size.
func SpeedupEstimate(is *isa.ISA, tr *workload.Trace, numACs int, timing reconfig.Timing) float64 {
	b := ForTrace(is, tr, numACs, timing)
	sw := tr.SoftwareCycles(is)
	if b.Ramp == 0 {
		return 0
	}
	return float64(sw) / float64(b.Ramp)
}

func (b Bounds) String() string {
	return fmt.Sprintf("optimistic %dM / ramp %dM / pessimistic %dM cycles",
		b.Optimistic/1e6, b.Ramp/1e6, b.Pessimistic/1e6)
}
