package estimate

import (
	"strings"
	"testing"

	"rispp/internal/core"
	"rispp/internal/isa"
	"rispp/internal/reconfig"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

func TestProfileTrace(t *testing.T) {
	tr := workload.H264(workload.H264Config{Frames: 4})
	p := ProfileTrace(tr)
	if p.Occurrences[isa.HotSpotME] != 4 || p.Occurrences[isa.HotSpotEE] != 4 || p.Occurrences[isa.HotSpotLF] != 4 {
		t.Fatalf("occurrences = %v", p.Occurrences)
	}
	// ME averages match the Figure 2 calibration.
	me := p.PerSpot[isa.HotSpotME]
	if me[isa.SISAD]+me[isa.SISATD] != 31977 {
		t.Fatalf("ME average executions = %d, want 31977", me[isa.SISAD]+me[isa.SISATD])
	}
	if p.Gap[isa.SISAD] != 8 {
		t.Fatalf("profiled gap = %d, want 8", p.Gap[isa.SISAD])
	}
	if p.Setup[isa.HotSpotME] != 61000 {
		t.Fatalf("profiled setup = %d", p.Setup[isa.HotSpotME])
	}
}

func TestBoundsOrdering(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 5})
	for _, acs := range []int{5, 10, 16, 24} {
		b := ForTrace(is, tr, acs, reconfig.DefaultTiming())
		if !(b.Optimistic <= b.Ramp && b.Ramp <= b.Pessimistic) {
			t.Fatalf("ACs=%d: bounds out of order: %+v", acs, b)
		}
		if b.Optimistic <= 0 {
			t.Fatalf("ACs=%d: degenerate optimistic bound", acs)
		}
	}
}

// TestBoundsBracketSimulation validates the whole analytic model against
// the cycle simulator: the simulated RISPP/HEF execution falls between the
// optimistic bound and (with a small modelling margin) the pessimistic
// bound.
func TestBoundsBracketSimulation(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 10})
	for _, acs := range []int{6, 10, 16, 24} {
		b := ForTrace(is, tr, acs, reconfig.DefaultTiming())
		s, _ := sched.New("HEF")
		m := core.NewManager(core.Config{ISA: is, NumACs: acs, Scheduler: s})
		m.SeedFromTrace(tr)
		res, err := sim.Run(tr, is, m, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.TotalCycles) < 0.98*float64(b.Optimistic) {
			t.Errorf("ACs=%d: simulation %d below optimistic bound %d", acs, res.TotalCycles, b.Optimistic)
		}
		if float64(res.TotalCycles) > 1.10*float64(b.Pessimistic) {
			t.Errorf("ACs=%d: simulation %d above pessimistic bound %d", acs, res.TotalCycles, b.Pessimistic)
		}
	}
}

func TestSpeedupEstimates(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 3})
	tm := reconfig.DefaultTiming()
	// The ramp estimate is conservative (it assumes a full reload every
	// hot-spot entry) but must still predict a clear win.
	for _, acs := range []int{5, 24} {
		if s := SpeedupEstimate(is, tr, acs, tm); s < 1.5 {
			t.Errorf("ACs=%d: ramp speedup estimate %.2f, want > 1.5", acs, s)
		}
	}
	// The steady-state (optimistic) bound improves monotonically with the
	// fabric: bigger Molecules get selected.
	b5 := ForTrace(is, tr, 5, tm)
	b24 := ForTrace(is, tr, 24, tm)
	if b24.Optimistic >= b5.Optimistic {
		t.Fatalf("optimistic bound did not improve: 5 ACs %d, 24 ACs %d", b5.Optimistic, b24.Optimistic)
	}
}

func TestBoundsStringer(t *testing.T) {
	b := Bounds{Optimistic: 5_000_000, Ramp: 7_000_000, Pessimistic: 9_000_000}
	if s := b.String(); !strings.Contains(s, "optimistic 5M") {
		t.Fatalf("String = %q", s)
	}
}
