package search

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"rispp/internal/explore"
)

// Config parameterizes one search run.
type Config struct {
	// Strategy names the proposal strategy (see StrategyNames).
	Strategy string
	// Seed seeds the strategy; equal (Strategy, Seed, Budget, BatchSize,
	// spec) reproduce byte-identical journals and fronts.
	Seed int64
	// Budget caps the number of evaluated points (result-cache hits
	// included — an observation is an observation). Must be positive.
	Budget int
	// BatchSize caps the points proposed per round (0: 16). Batches run
	// through the engine's grouped RunSet path, so points of one batch
	// that differ only in scheduler share a single trace walk.
	BatchSize int
	// Stream, when non-nil, receives every evaluated record as JSONL in
	// visit order — the same bytes a grid sweep of exactly the visited
	// points would emit.
	Stream io.Writer
	// Journal, when non-nil, receives the replayable search journal (see
	// the journal* types): a start line, then propose/eval lines per
	// round, then the final front.
	Journal io.Writer
}

// DefaultBatchSize is the per-round proposal cap when Config.BatchSize is
// zero.
const DefaultBatchSize = 16

// Outcome is the result of a search run.
type Outcome struct {
	Strategy    string       `json:"strategy"`
	Seed        int64        `json:"seed"`
	Budget      int          `json:"budget"`
	SpacePoints int          `json:"space_points"`
	Rounds      int          `json:"rounds"`
	Proposed    int          `json:"proposed"`
	Evaluated   int          `json:"evaluated"`
	CacheHits   int          `json:"cache_hits"`
	Failed      int          `json:"failed"`
	Evals       []Eval       `json:"-"`
	Front       []FrontPoint `json:"front"`
}

// Format renders the outcome as text (CLI summary).
func (o *Outcome) Format() string {
	out := fmt.Sprintf("%s search: %d/%d points evaluated (%d proposed, %d cached, %d failed) over %d rounds, space %d\n",
		o.Strategy, o.Evaluated, o.Budget, o.Proposed, o.CacheHits, o.Failed, o.Rounds, o.SpacePoints)
	return out + FormatFront(o.Front)
}

// journal line types. Every line is one JSON object with a "type" tag;
// field order is fixed by the struct declarations, so journals are
// byte-stable.
type journalStart struct {
	Type        string       `json:"type"` // "start"
	Version     int          `json:"v"`
	Strategy    string       `json:"strategy"`
	Seed        int64        `json:"seed"`
	Budget      int          `json:"budget"`
	Batch       int          `json:"batch"`
	SpacePoints int          `json:"space_points"`
	Spec        explore.Spec `json:"spec"`
}

type journalPropose struct {
	Type   string          `json:"type"` // "propose"
	Round  int             `json:"round"`
	Points []explore.Point `json:"points"`
}

type journalEval struct {
	Type  string `json:"type"` // "eval"
	Round int    `json:"round"`
	Eval
}

type journalFront struct {
	Type   string       `json:"type"` // "front"
	Points []FrontPoint `json:"points"`
}

// journalVersion is bumped on any incompatible journal change.
const journalVersion = 1

// Run executes a budgeted adaptive search over the engine. The spec is
// expanded and normalized exactly once, into the search space; every batch
// the strategy proposes is submitted pre-normalized through
// Engine.ExecutePoints (grouped RunSet path, result cache, per-job panic
// recovery all apply). Every evaluated point is fed back to the strategy
// and offered to the incremental Pareto front.
//
// Determinism: with a deterministic engine (the simulator is pure), equal
// (spec, Config) produce byte-identical Stream and Journal output and an
// identical front, at any engine worker count, with the grouped path on or
// off, and with a cold or warm result cache.
//
// On context cancellation the partial outcome is returned with ctx's
// error; the journal still ends with the front over the completed prefix.
func Run(ctx context.Context, eng *explore.Engine, spec explore.Spec, cfg Config) (*Outcome, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("search: budget must be positive (got %d)", cfg.Budget)
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	sp, err := NewSpace(spec)
	if err != nil {
		return nil, err
	}
	strat, err := New(cfg.Strategy, sp, cfg.Seed)
	if err != nil {
		return nil, err
	}

	var jw *json.Encoder
	if cfg.Journal != nil {
		jw = json.NewEncoder(cfg.Journal)
		if err := jw.Encode(journalStart{
			Type: "start", Version: journalVersion, Strategy: strat.Name(),
			Seed: cfg.Seed, Budget: cfg.Budget, Batch: batch,
			SpacePoints: sp.Len(), Spec: spec,
		}); err != nil {
			return nil, fmt.Errorf("search: journal: %w", err)
		}
	}

	out := &Outcome{
		Strategy:    strat.Name(),
		Seed:        cfg.Seed,
		Budget:      cfg.Budget,
		SpacePoints: sp.Len(),
	}
	front := &Front{}
	var runErr error
	for out.Evaluated < cfg.Budget {
		n := batch
		if left := cfg.Budget - out.Evaluated; n > left {
			n = left
		}
		ps := strat.Propose(n)
		if len(ps) == 0 {
			break // converged or exhausted
		}
		out.Rounds++
		out.Proposed += len(ps)
		if jw != nil {
			if err := jw.Encode(journalPropose{Type: "propose", Round: out.Rounds, Points: ps}); err != nil {
				return out, fmt.Errorf("search: journal: %w", err)
			}
		}
		res, err := eng.ExecutePoints(ctx, ps, cfg.Stream)
		if res != nil {
			evals := make([]Eval, 0, len(res.Records))
			for _, rec := range res.Records {
				e := evalOf(rec)
				evals = append(evals, e)
				out.Evals = append(out.Evals, e)
				out.Evaluated++
				if e.Cached {
					out.CacheHits++
				}
				if !e.OK() {
					out.Failed++
				} else {
					front.Add(FrontPoint{Point: e.Point, Cycles: e.Cycles, Area: e.Area})
				}
				if jw != nil {
					if jerr := jw.Encode(journalEval{Type: "eval", Round: out.Rounds, Eval: e}); jerr != nil {
						return out, fmt.Errorf("search: journal: %w", jerr)
					}
				}
			}
			strat.Observe(evals)
		}
		if err != nil {
			runErr = err // context cancellation: keep the completed prefix
			break
		}
	}
	out.Front = front.Points()
	if jw != nil {
		if err := jw.Encode(journalFront{Type: "front", Points: out.Front}); err != nil {
			return out, fmt.Errorf("search: journal: %w", err)
		}
	}
	return out, runErr
}
