package search

import (
	"context"
	"testing"
)

// BenchmarkSearchDriver measures the search machinery itself — proposal
// generation, front maintenance, journal encoding — over an instant
// synthetic engine, so the number tracks strategy overhead per completed
// search rather than simulator speed. One op = one full 60-evaluation
// budget over the 875-point convergence space.
func BenchmarkSearchDriver(b *testing.B) {
	spec := convergenceSpec()
	for _, strat := range StrategyNames() {
		b.Run(strat, func(b *testing.B) {
			eng := fakeEngine(true, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := Run(context.Background(), eng, spec, Config{
					Strategy: strat, Seed: 7, Budget: 60,
				})
				if err != nil {
					b.Fatal(err)
				}
				if out.Evaluated == 0 {
					b.Fatal("no evaluations")
				}
			}
		})
	}
}
