// Package search drives adaptive multi-objective design-space search over
// the exploration engine of internal/explore: instead of enumerating a
// grid, a seeded Strategy proposes small batches of design points, a
// Driver evaluates them through the engine's grouped RunSet path under an
// evaluation budget, and an incremental cycles-vs-area Pareto front (area
// priced by internal/hwmodel) guides the next proposals.
//
// Everything is deterministic: strategies derive all randomness from one
// seed, batches are proposed and evaluated in canonical order, and the
// Driver writes a replayable JSONL journal — seed, spec, every proposed
// and observed point, and the final front — so any run reproduces
// byte-exactly from its parameters and any journal replays byte-exactly
// from its lines.
//
// Three strategies ship behind the one Strategy interface:
//
//   - random: a seeded uniform permutation of the space — the baseline
//     every guided strategy must match or dominate at equal budget.
//   - halving: successive halving over the coordinate lattice — evaluate a
//     coarse sublattice, keep the better half by Pareto rank, halve the
//     stride around the survivors, repeat until stride one. Modeled on the
//     rung-based pruning of design-space-exploration tools (ByoRISC).
//   - evolve: ISEGEN-style iterative improvement — a population walks the
//     lattice by single-axis mutation and axis-wise crossover of
//     Pareto-ranked parents, with seeded random restarts to escape local
//     optima.
package search

import (
	"fmt"
	"sort"

	"rispp/internal/explore"
	"rispp/internal/hwmodel"
)

// Eval is the observed outcome of one visited design point: the engine's
// measured metrics plus the hwmodel area estimate — the two objectives the
// search minimizes are Cycles and Area.
type Eval struct {
	Point       explore.Point `json:"point"`
	Cycles      int64         `json:"cycles"`
	StallCycles int64         `json:"stall_cycles"`
	Area        int64         `json:"area"`
	Err         string        `json:"err,omitempty"`

	// Cached marks engine result-cache hits. It is excluded from the
	// serialization so journals are byte-identical between cold and warm
	// caches.
	Cached bool `json:"-"`
}

// OK reports whether the point produced a usable measurement.
func (e Eval) OK() bool { return e.Err == "" }

// evalOf condenses an engine record into an Eval.
func evalOf(rec explore.Record) Eval {
	return Eval{
		Point:       rec.Point,
		Cycles:      rec.TotalCycles,
		StallCycles: rec.StallCycles,
		Area:        rec.Area,
		Err:         rec.Err,
		Cached:      rec.Cached,
	}
}

// FrontPoint is one member of a cycles-vs-area Pareto front.
type FrontPoint struct {
	Point  explore.Point `json:"point"`
	Cycles int64         `json:"cycles"`
	Area   int64         `json:"area"`
}

// Dominates reports whether a is at least as good as b in both objectives
// and strictly better in one (both minimized).
func Dominates(a, b FrontPoint) bool {
	return a.Cycles <= b.Cycles && a.Area <= b.Area &&
		(a.Cycles < b.Cycles || a.Area < b.Area)
}

// weaklyDominates reports a no worse than b in both objectives.
func weaklyDominates(a, b FrontPoint) bool {
	return a.Cycles <= b.Cycles && a.Area <= b.Area
}

// Front maintains an incremental Pareto front over {Cycles, Area}. The
// zero value is an empty front.
type Front struct {
	pts []FrontPoint
}

// Add offers a point to the front. It returns true when the point enters
// (it is not weakly dominated by a member); dominated members are evicted.
// Duplicate objective vectors keep the first-added point with the smaller
// canonical key, so the front is independent of insertion order.
func (f *Front) Add(p FrontPoint) bool {
	keep := f.pts[:0]
	enter := true
	for _, q := range f.pts {
		if enter && weaklyDominates(q, p) {
			if q.Cycles == p.Cycles && q.Area == p.Area && p.Point.Key() < q.Point.Key() {
				continue // same objectives, canonical-key tie-break: replace q
			}
			enter = false
		}
		if enter && Dominates(p, q) {
			continue // q evicted
		}
		keep = append(keep, q)
	}
	f.pts = keep
	if enter {
		f.pts = append(f.pts, p)
	}
	return enter
}

// Points returns the front sorted by ascending area, then cycles, then
// canonical key — the canonical rendering journals and responses use.
func (f *Front) Points() []FrontPoint {
	out := append([]FrontPoint(nil), f.pts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Area != out[j].Area {
			return out[i].Area < out[j].Area
		}
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles < out[j].Cycles
		}
		return out[i].Point.Key() < out[j].Point.Key()
	})
	return out
}

// Len returns the number of front members.
func (f *Front) Len() int { return len(f.pts) }

// hasVector reports whether some member has exactly these objectives — an
// Add of such a point can only be a canonical-key tie-break, never an
// improvement.
func (f *Front) hasVector(cycles, area int64) bool {
	for _, q := range f.pts {
		if q.Cycles == cycles && q.Area == area {
			return true
		}
	}
	return false
}

// Covers reports whether every member of g is weakly dominated by some
// member of f — "f matches or dominates g", the convergence criterion the
// guided strategies are held to against the random baseline.
func (f *Front) Covers(g *Front) bool {
	for _, q := range g.pts {
		ok := false
		for _, p := range f.pts {
			if weaklyDominates(p, q) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// frontOf builds a front from successful evals.
func frontOf(evals []Eval) *Front {
	f := &Front{}
	for _, e := range evals {
		if e.OK() {
			f.Add(FrontPoint{Point: e.Point, Cycles: e.Cycles, Area: e.Area})
		}
	}
	return f
}

// areaOf prices a point with the hwmodel estimator — used wherever an
// observation arrives without an area (e.g. a suggest request that reports
// only cycles).
func areaOf(p explore.Point) int64 {
	return hwmodel.PointArea(p.Scheduler, p.NumACs)
}

// paretoRank assigns each eval its nondominated-sorting rank: rank 0 is
// the Pareto front of the set, rank 1 the front after removing rank 0, and
// so on. Failed evals rank strictly behind every successful one. Returned
// ranks align with the input slice.
func paretoRank(evals []Eval) []int {
	const failedRank = 1 << 30
	rank := make([]int, len(evals))
	assigned := make([]bool, len(evals))
	remaining := 0
	for i, e := range evals {
		if !e.OK() {
			rank[i] = failedRank
			assigned[i] = true
			continue
		}
		remaining++
	}
	for r := 0; remaining > 0; r++ {
		var frontIdx []int
		for i, e := range evals {
			if assigned[i] {
				continue
			}
			dominated := false
			for j, o := range evals {
				if j == i || assigned[j] {
					continue
				}
				a := FrontPoint{Cycles: o.Cycles, Area: o.Area}
				b := FrontPoint{Cycles: e.Cycles, Area: e.Area}
				if Dominates(a, b) {
					dominated = true
					break
				}
			}
			if !dominated {
				frontIdx = append(frontIdx, i)
			}
		}
		if len(frontIdx) == 0 {
			// Degenerate (identical objective vectors dominate nothing):
			// everything left is one rank.
			for i := range evals {
				if !assigned[i] {
					rank[i] = r
					assigned[i] = true
					remaining--
				}
			}
			break
		}
		for _, i := range frontIdx {
			rank[i] = r
			assigned[i] = true
			remaining--
		}
	}
	return rank
}

// FormatFront renders a front as an aligned text table (CLI summary).
func FormatFront(pts []FrontPoint) string {
	out := fmt.Sprintf("Pareto front {cycles, area}: %d points\n", len(pts))
	for _, p := range pts {
		out += fmt.Sprintf("  %-10s acs=%-3d area=%-7d cycles=%d\n",
			p.Point.Scheduler, p.Point.NumACs, p.Area, p.Cycles)
	}
	return out
}
