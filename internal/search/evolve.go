package search

import (
	"math/rand"

	"rispp/internal/explore"
)

// step is one queued proposal: a space index plus the move that produced
// it (axis < 0 when it has no provenance — a seed, restart, or offspring).
type step struct {
	idx  int
	axis int // lattice axis moved to reach idx, or -1
	dir  int // +1 / -1 along axis
}

// evolve is an ISEGEN-style iterative-improvement strategy. Whenever an
// observation enters the incremental Pareto front, the search chases it:
// the move that produced it is continued first (line search — e.g. keep
// walking the AC axis down while each cheaper point still enters the
// front), then the rest of its ±1 single-axis neighborhood, all at the
// head of the proposal queue so improving chains spend budget before
// stale breadth does. This is the "move one Atom and re-evaluate" local
// improvement of ISEGEN's loop. When no improvement is in flight, an
// evolutionary generation backfills: Pareto-ranked parents drawn from
// everything observed produce single-axis mutations and axis-wise
// crossovers, topped up with seeded random restarts so the search cannot
// collapse into a local optimum.
type evolve struct {
	visitSet
	rng     *rand.Rand
	popSize int
	queue   []step // proposal queue; improvements are pushed at the head
	pending map[int]step
	pool    []int // every index proposed so far, in proposal order
	front   *Front
	restart []int // seeded permutation for random restarts
	next    int   // cursor into restart
}

// evolvePopulation is the default generation size; small enough that a
// 30-point smoke budget spans two generations.
const evolvePopulation = 16

func newEvolve(sp *Space, seed int64) *evolve {
	rng := rand.New(rand.NewSource(seed))
	e := &evolve{
		visitSet: newVisitSet(sp),
		rng:      rng,
		popSize:  evolvePopulation,
		pending:  make(map[int]step),
		front:    &Front{},
		restart:  rng.Perm(sp.Len()),
	}
	if e.popSize > sp.Len() {
		e.popSize = sp.Len()
	}
	// Generation zero: a seeded random sample.
	e.queue = e.fill(nil, e.popSize)
	return e
}

func (e *evolve) Name() string { return "evolve" }

// fill appends seeded random unvisited indices to q until it has n
// members (or the space is exhausted).
func (e *evolve) fill(q []step, n int) []step {
	member := make(map[int]bool, len(q))
	for _, s := range q {
		member[s.idx] = true
	}
	for len(q) < n && e.next < len(e.restart) {
		i := e.restart[e.next]
		e.next++
		if e.visited[i] || member[i] {
			continue
		}
		if _, p := e.pending[i]; p {
			continue
		}
		member[i] = true
		q = append(q, step{idx: i, axis: -1})
	}
	return q
}

// move returns the index one lattice step from i along (axis, dir), or -1
// when out of range, already visited, or in flight.
func (e *evolve) move(i, axis, dir int) int {
	c, ok := e.sp.coords(i)
	if !ok {
		return -1
	}
	c[axis] += dir
	if c[axis] < 0 || c[axis] >= e.sp.dims[axis] {
		return -1
	}
	j := e.sp.indexOf(c)
	if e.visited[j] {
		return -1
	}
	if _, p := e.pending[j]; p {
		return -1
	}
	return j
}

// chase builds the follow-up proposals for a point that just advanced the
// front: the continuation of the move that found it (line search — one
// evaluation per step while the line keeps improving), or, for a point
// without provenance, its whole ±1 neighborhood to discover a direction.
// Lateral moves of points that already have a direction are not enqueued:
// the generation backfill probes the front's neighborhoods through seeded
// mutation instead, so breadth is rank-guided rather than first-in
// first-out.
func (e *evolve) chase(i int, from step) []step {
	if from.axis >= 0 {
		if j := e.move(i, from.axis, from.dir); j >= 0 {
			return []step{{idx: j, axis: from.axis, dir: from.dir}}
		}
		// The line ran into the lattice edge (or visited ground): the
		// point is a terminus — branch into its whole neighborhood.
	}
	return e.neighborhood(i)
}

// neighborhood returns every reachable unvisited ±1 neighbor of i as
// momentum-carrying steps, in deterministic axis order.
func (e *evolve) neighborhood(i int) []step {
	var out []step
	for a := 0; a < numAxes; a++ {
		for _, d := range [2]int{-1, +1} {
			if j := e.move(i, a, d); j >= 0 {
				out = append(out, step{idx: j, axis: a, dir: d})
			}
		}
	}
	return out
}

// mutate returns a ±1 single-axis neighbor of i, or a no-provenance
// invalid step after a bounded number of seeded attempts.
func (e *evolve) mutate(i int) step {
	for try := 0; try < 8; try++ {
		a := e.rng.Intn(numAxes)
		if e.sp.dims[a] < 2 {
			continue
		}
		d := 1
		if e.rng.Intn(2) == 0 {
			d = -1
		}
		if j := e.move(i, a, d); j >= 0 {
			return step{idx: j, axis: a, dir: d}
		}
	}
	return step{idx: -1, axis: -1}
}

// crossover mixes the coordinates of two parents axis-wise (uniform,
// seeded) and returns the child index, or -1 if visited/degenerate.
func (e *evolve) crossover(i, j int) int {
	ci, ok1 := e.sp.coords(i)
	cj, ok2 := e.sp.coords(j)
	if !ok1 || !ok2 {
		return -1
	}
	var c [numAxes]int
	for a := 0; a < numAxes; a++ {
		if e.rng.Intn(2) == 0 {
			c[a] = ci[a]
		} else {
			c[a] = cj[a]
		}
	}
	k := e.sp.indexOf(c)
	if e.visited[k] {
		return -1
	}
	if _, p := e.pending[k]; p {
		return -1
	}
	return k
}

// nextGeneration breeds the backfill queue: seeded mutations and
// crossovers of the Pareto-ranked parents, then random restarts up to the
// population size.
func (e *evolve) nextGeneration() {
	member := make(map[int]bool)
	var q []step
	add := func(s step) {
		if s.idx >= 0 && !member[s.idx] {
			member[s.idx] = true
			q = append(q, s)
		}
	}
	// The front's neighborhoods first — one seeded mutation per member —
	// then mutations and crossovers of the Pareto-ranked better half of
	// everything observed, then seeded random restarts.
	for _, p := range e.frontIndices() {
		add(e.mutate(p))
	}
	parents := e.selectHalf(e.pool)
	if len(parents) > e.popSize/2 {
		parents = parents[:e.popSize/2]
	}
	for _, p := range parents {
		add(e.mutate(p))
	}
	for k := 0; k+1 < len(parents); k += 2 {
		add(step{idx: e.crossover(parents[k], parents[k+1]), axis: -1})
	}
	e.queue = e.fill(q, e.popSize)
}

func (e *evolve) Propose(max int) []explore.Point {
	var out []explore.Point
	for len(out) < max {
		if len(e.queue) == 0 {
			if len(e.pending) > 0 {
				break // improvements may still be in flight
			}
			e.nextGeneration()
			if len(e.queue) == 0 {
				break // space exhausted
			}
		}
		s := e.queue[0]
		e.queue = e.queue[1:]
		i := s.idx
		if e.visited[i] {
			continue
		}
		if _, p := e.pending[i]; p {
			continue
		}
		e.take(i)
		e.pending[i] = s
		e.pool = append(e.pool, i)
		out = append(out, e.sp.Points[i])
	}
	return out
}

func (e *evolve) Observe(evals []Eval) {
	for _, ev := range evals {
		i := e.sp.Index(ev.Point)
		if i < 0 {
			continue
		}
		from, wasPending := e.pending[i]
		if !wasPending {
			from = step{idx: i, axis: -1}
		}
		e.visited[i] = true
		e.evals[i] = ev
		delete(e.pending, i)
		if !ev.OK() {
			continue
		}
		tie := e.front.hasVector(ev.Cycles, ev.Area)
		if e.front.Add(FrontPoint{Point: ev.Point, Cycles: ev.Cycles, Area: ev.Area}) && !tie {
			// The point strictly advanced the front (a key tie-break is
			// not an improvement worth budget): chase it at the head of
			// the queue — the continuation of the move that found it,
			// or the whole ±1 neighborhood at a terminus or a fresh
			// no-provenance entry.
			e.queue = append(e.chase(i, from), e.queue...)
		} else if from.axis >= 0 {
			// A line just died here: its predecessor is a front elbow —
			// branch into the rest of that terminus's neighborhood.
			if c, ok := e.sp.coords(i); ok {
				c[from.axis] -= from.dir
				e.queue = append(e.neighborhood(e.sp.indexOf(c)), e.queue...)
			}
		}
	}
}
