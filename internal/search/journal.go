package search

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Replayed summarizes a verified journal.
type Replayed struct {
	Strategy    string       `json:"strategy"`
	Seed        int64        `json:"seed"`
	Budget      int          `json:"budget"`
	SpacePoints int          `json:"space_points"`
	Rounds      int          `json:"rounds"`
	Proposed    int          `json:"proposed"`
	Evaluated   int          `json:"evaluated"`
	Failed      int          `json:"failed"`
	Front       []FrontPoint `json:"front"`
}

// Format renders the replay summary as text (CLI output).
func (r *Replayed) Format() string {
	out := fmt.Sprintf("journal verified: %s search, seed %d, budget %d, %d rounds, %d proposed, %d evaluated (%d failed), space %d\n",
		r.Strategy, r.Seed, r.Budget, r.Rounds, r.Proposed, r.Evaluated, r.Failed, r.SpacePoints)
	return out + FormatFront(r.Front)
}

// Replay reads a search journal and verifies it end to end:
//
//   - the line sequence is start, (propose, eval*)*, front, with contiguous
//     round numbers;
//   - every evaluated point was proposed in its round, each exactly once;
//   - the recorded front is byte-for-byte the front recomputed from the
//     eval lines (same incremental Front, same canonical ordering).
//
// It returns the verified summary, or an error naming the first
// inconsistent line. Replay never re-runs the simulator — it checks that
// the journal is self-consistent and exactly reproducible, which is what
// the determinism guarantee promises.
func Replay(r io.Reader) (*Replayed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)

	var (
		out      *Replayed
		front    = &Front{}
		frontRaw []byte
		proposed = make(map[string]int) // point key -> round proposed in
		round    = 0
		line     = 0
		done     bool
	)
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if done {
			return nil, fmt.Errorf("search: journal line %d: content after front line", line)
		}
		var tag struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &tag); err != nil {
			return nil, fmt.Errorf("search: journal line %d: %w", line, err)
		}
		switch tag.Type {
		case "start":
			if out != nil {
				return nil, fmt.Errorf("search: journal line %d: duplicate start line", line)
			}
			var js journalStart
			if err := json.Unmarshal(raw, &js); err != nil {
				return nil, fmt.Errorf("search: journal line %d: %w", line, err)
			}
			if js.Version != journalVersion {
				return nil, fmt.Errorf("search: journal line %d: version %d (want %d)", line, js.Version, journalVersion)
			}
			out = &Replayed{
				Strategy: js.Strategy, Seed: js.Seed, Budget: js.Budget,
				SpacePoints: js.SpacePoints,
			}
		case "propose":
			if out == nil {
				return nil, fmt.Errorf("search: journal line %d: propose before start", line)
			}
			var jp journalPropose
			if err := json.Unmarshal(raw, &jp); err != nil {
				return nil, fmt.Errorf("search: journal line %d: %w", line, err)
			}
			if jp.Round != round+1 {
				return nil, fmt.Errorf("search: journal line %d: round %d after round %d", line, jp.Round, round)
			}
			round = jp.Round
			for _, p := range jp.Points {
				k := p.Key()
				if prev, dup := proposed[k]; dup {
					return nil, fmt.Errorf("search: journal line %d: point %s proposed twice (rounds %d and %d)", line, k, prev, jp.Round)
				}
				proposed[k] = jp.Round
			}
			out.Rounds = round
			out.Proposed += len(jp.Points)
		case "eval":
			if out == nil {
				return nil, fmt.Errorf("search: journal line %d: eval before start", line)
			}
			var je journalEval
			if err := json.Unmarshal(raw, &je); err != nil {
				return nil, fmt.Errorf("search: journal line %d: %w", line, err)
			}
			if je.Round != round {
				return nil, fmt.Errorf("search: journal line %d: eval for round %d inside round %d", line, je.Round, round)
			}
			k := je.Point.Key()
			if proposed[k] != round {
				return nil, fmt.Errorf("search: journal line %d: eval of unproposed point %s", line, k)
			}
			out.Evaluated++
			if !je.OK() {
				out.Failed++
			} else {
				front.Add(FrontPoint{Point: je.Point, Cycles: je.Cycles, Area: je.Area})
			}
		case "front":
			if out == nil {
				return nil, fmt.Errorf("search: journal line %d: front before start", line)
			}
			frontRaw = append([]byte(nil), raw...)
			done = true
		default:
			return nil, fmt.Errorf("search: journal line %d: unknown type %q", line, tag.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("search: journal: %w", err)
	}
	if out == nil {
		return nil, fmt.Errorf("search: journal: empty")
	}
	if !done {
		return nil, fmt.Errorf("search: journal: missing front line")
	}

	// Byte-exact front verification: re-encode the recomputed front the way
	// the driver did and compare to the recorded line.
	out.Front = front.Points()
	want, err := json.Marshal(journalFront{Type: "front", Points: out.Front})
	if err != nil {
		return nil, fmt.Errorf("search: journal: %w", err)
	}
	if !bytes.Equal(want, frontRaw) {
		return nil, fmt.Errorf("search: journal: recorded front does not match the front recomputed from the eval lines\n got: %s\nwant: %s", frontRaw, want)
	}
	return out, nil
}
