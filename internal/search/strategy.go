package search

import (
	"fmt"
	"math/rand"
	"sort"

	"rispp/internal/explore"
)

// Strategy proposes batches of design points and observes their outcomes.
// Implementations are deterministic given their seed: the same sequence of
// Propose/Observe calls yields the same proposals. They are not safe for
// concurrent use — the Driver serializes all calls.
type Strategy interface {
	// Name returns the registry name of the strategy.
	Name() string
	// Propose returns up to max not-yet-proposed candidate points, in a
	// deterministic order. An empty result means the strategy has
	// converged or exhausted the space.
	Propose(max int) []explore.Point
	// Observe delivers the outcomes of previously proposed points, in
	// proposal order. Unknown points (observed out-of-band, e.g. by a
	// suggest client) are absorbed into the strategy's state too.
	Observe([]Eval)
}

// StrategyNames lists the registered strategies in the order the CLI and
// the docs present them: the baseline first, then the guided strategies.
func StrategyNames() []string { return []string{"random", "halving", "evolve"} }

// New builds a named strategy over the space, seeded. The seed fully
// determines the strategy's behavior; distinct seeds give independent runs.
func New(name string, sp *Space, seed int64) (Strategy, error) {
	switch name {
	case "random":
		return newRandom(sp, seed), nil
	case "halving":
		return newHalving(sp, seed), nil
	case "evolve":
		return newEvolve(sp, seed), nil
	default:
		return nil, fmt.Errorf("search: unknown strategy %q (have %v)", name, StrategyNames())
	}
}

// visitSet is the bookkeeping every strategy shares: which space indices
// were proposed or observed, and the evals seen so far.
type visitSet struct {
	sp      *Space
	visited map[int]bool
	evals   map[int]Eval
}

func newVisitSet(sp *Space) visitSet {
	return visitSet{sp: sp, visited: make(map[int]bool), evals: make(map[int]Eval)}
}

// observe records evals, returning the indices of the newly observed
// points in input order (unknown points are ignored).
func (v *visitSet) observe(evals []Eval) []int {
	idx := make([]int, 0, len(evals))
	for _, e := range evals {
		i := v.sp.Index(e.Point)
		if i < 0 {
			continue
		}
		v.visited[i] = true
		v.evals[i] = e
		idx = append(idx, i)
	}
	return idx
}

// take marks index i proposed and returns its point.
func (v *visitSet) take(i int) explore.Point {
	v.visited[i] = true
	return v.sp.Points[i]
}

// randomStrategy proposes a seeded uniform permutation of the space: the
// unguided baseline. With budget == space size it degenerates to the full
// grid sweep in shuffled order.
type randomStrategy struct {
	visitSet
	order []int
	next  int
}

func newRandom(sp *Space, seed int64) *randomStrategy {
	rng := rand.New(rand.NewSource(seed))
	return &randomStrategy{visitSet: newVisitSet(sp), order: rng.Perm(sp.Len())}
}

func (r *randomStrategy) Name() string { return "random" }

func (r *randomStrategy) Propose(max int) []explore.Point {
	var out []explore.Point
	for len(out) < max && r.next < len(r.order) {
		i := r.order[r.next]
		r.next++
		if r.visited[i] {
			continue
		}
		out = append(out, r.take(i))
	}
	return out
}

func (r *randomStrategy) Observe(evals []Eval) { r.observe(evals) }

// selectHalf ranks the given indices by (Pareto rank, cycles, area, index)
// and returns the better ceil(n/2) — the survivor selection of both guided
// strategies. Indices without an eval (skipped points) are dropped.
type rankedIndex struct {
	idx  int
	rank int
	ev   Eval
}

func (v *visitSet) selectHalf(indices []int) []int {
	var evals []Eval
	var present []int
	for _, i := range indices {
		if e, ok := v.evals[i]; ok {
			evals = append(evals, e)
			present = append(present, i)
		}
	}
	if len(present) == 0 {
		return nil
	}
	ranks := paretoRank(evals)
	ranked := make([]rankedIndex, len(present))
	for k, i := range present {
		ranked[k] = rankedIndex{idx: i, rank: ranks[k], ev: evals[k]}
	}
	sort.Slice(ranked, func(a, b int) bool {
		ra, rb := ranked[a], ranked[b]
		if ra.rank != rb.rank {
			return ra.rank < rb.rank
		}
		if ra.ev.Cycles != rb.ev.Cycles {
			return ra.ev.Cycles < rb.ev.Cycles
		}
		if ra.ev.Area != rb.ev.Area {
			return ra.ev.Area < rb.ev.Area
		}
		return ra.idx < rb.idx
	})
	keep := (len(ranked) + 1) / 2
	out := make([]int, keep)
	for k := 0; k < keep; k++ {
		out[k] = ranked[k].idx
	}
	return out
}

// frontIndices returns the indices of the current global Pareto front among
// all observed evals, ascending — the elite set both guided strategies
// re-seed their next round from.
func (v *visitSet) frontIndices() []int {
	f := &Front{}
	members := make(map[string]int)
	// Deterministic iteration: walk indices in ascending order.
	idxs := make([]int, 0, len(v.evals))
	for i := range v.evals {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		e := v.evals[i]
		if !e.OK() {
			continue
		}
		fp := FrontPoint{Point: e.Point, Cycles: e.Cycles, Area: e.Area}
		if f.Add(fp) {
			members[e.Point.Key()] = i
		}
	}
	var out []int
	for _, fp := range f.Points() {
		if i, ok := members[fp.Point.Key()]; ok {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}
