package search

import (
	"math/rand"
	"sort"

	"rispp/internal/explore"
)

// halving is successive halving over the coordinate lattice. Rung 0
// evaluates the coarse sublattice whose coordinates are multiples of each
// axis's initial stride (2–3 positions per axis), so the whole space —
// including the extremes of every axis — is covered cheaply. After a rung
// is observed, the better half of its members by Pareto rank survives
// (plus the global front, elitist), every axis stride halves, and the next
// rung evaluates the unvisited stride-neighbors of the survivors: the
// search keeps halving the resolution around the emerging front until all
// strides reach one and no unvisited neighbor remains.
//
// The strategy is fully deterministic; the seed only shuffles nothing here
// (kept for interface symmetry), so equal seeds and unequal seeds alike
// reproduce the same trajectory on the same space.
type halving struct {
	visitSet
	rng     *rand.Rand // reserved; halving is deterministic without it
	strides [numAxes]int
	queue   []int // current-rung candidates not yet proposed
	pending map[int]bool
	rung    []int // members of the current rung, in proposal order
}

func newHalving(sp *Space, seed int64) *halving {
	h := &halving{
		visitSet: newVisitSet(sp),
		rng:      rand.New(rand.NewSource(seed)),
		pending:  make(map[int]bool),
	}
	for a := 0; a < numAxes; a++ {
		h.strides[a] = sp.axisStride(a)
	}
	h.queue = h.coarseLattice()
	return h
}

func (h *halving) Name() string { return "halving" }

// coarseLattice enumerates the sublattice of coordinates that are
// multiples of the current per-axis strides, in ascending index order.
func (h *halving) coarseLattice() []int {
	var out []int
	var c [numAxes]int
	var walk func(a int)
	walk = func(a int) {
		if a == numAxes {
			out = append(out, h.sp.indexOf(c))
			return
		}
		for v := 0; v < h.sp.dims[a]; v += h.strides[a] {
			c[a] = v
			walk(a + 1)
		}
	}
	walk(0)
	sort.Ints(out)
	return out
}

// neighbors returns the unvisited lattice points one current-stride step
// away from i along each axis (plus/minus), ascending and deduplicated.
func (h *halving) neighbors(i int) []int {
	c, ok := h.sp.coords(i)
	if !ok {
		return nil
	}
	var out []int
	for a := 0; a < numAxes; a++ {
		for _, d := range [2]int{-h.strides[a], +h.strides[a]} {
			n := c
			n[a] = c[a] + d
			if n[a] < 0 || n[a] >= h.sp.dims[a] {
				continue
			}
			j := h.sp.indexOf(n)
			if !h.visited[j] && !h.pending[j] {
				out = append(out, j)
			}
		}
	}
	return out
}

// halveStrides halves every axis stride (floor 1) and reports whether any
// stride was still above one.
func (h *halving) halveStrides() bool {
	moved := false
	for a := 0; a < numAxes; a++ {
		if h.strides[a] > 1 {
			h.strides[a] /= 2
			moved = true
		}
	}
	return moved
}

func (h *halving) atFinestStride() bool {
	for a := 0; a < numAxes; a++ {
		if h.strides[a] > 1 {
			return false
		}
	}
	return true
}

// advanceRung closes the observed rung and builds the next queue: keep the
// better half (plus the global front), halve the strides, propose the
// survivors' unvisited stride-neighbors. The queue keeps the survivors'
// quality order — the front's neighborhoods first, then the Pareto-ranked
// rest — so a budget that runs out mid-rung was spent around the front.
func (h *halving) advanceRung() {
	ordered := append(h.frontIndices(), h.selectHalf(h.rung)...)
	var survivors []int
	member := make(map[int]bool, len(ordered))
	for _, s := range ordered {
		if !member[s] {
			member[s] = true
			survivors = append(survivors, s)
		}
	}
	h.rung = nil
	for {
		wasCoarser := !h.atFinestStride()
		if wasCoarser {
			h.halveStrides()
		}
		seen := make(map[int]bool)
		var queue []int
		for _, s := range survivors {
			for _, n := range h.neighbors(s) {
				if !seen[n] {
					seen[n] = true
					queue = append(queue, n)
				}
			}
		}
		if len(queue) > 0 {
			h.queue = queue
			return
		}
		if !wasCoarser {
			// Finest stride and no unvisited neighbors: converged.
			h.queue = nil
			return
		}
	}
}

func (h *halving) Propose(max int) []explore.Point {
	var out []explore.Point
	for len(out) < max {
		if len(h.queue) == 0 {
			if len(h.pending) > 0 || len(h.rung) == 0 {
				// Wait for the rung's observations (or: nothing ever
				// proposed and the space has no candidates).
				break
			}
			h.advanceRung()
			if len(h.queue) == 0 {
				break
			}
		}
		i := h.queue[0]
		h.queue = h.queue[1:]
		if h.visited[i] {
			continue
		}
		h.take(i)
		h.pending[i] = true
		h.rung = append(h.rung, i)
		out = append(out, h.sp.Points[i])
	}
	return out
}

func (h *halving) Observe(evals []Eval) {
	for _, i := range h.observe(evals) {
		delete(h.pending, i)
	}
}
