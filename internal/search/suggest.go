package search

import (
	"fmt"

	"rispp/internal/explore"
)

// SuggestRequest asks for the next points a strategy would evaluate, given
// the observations made so far. It is the stateless API behind the serve
// layer's /v1/suggest: the client keeps the observations, the server keeps
// nothing — each request deterministically replays the strategy from its
// seed, feeds it the matching observations, and returns the first points
// the strategy wants that the client has not evaluated yet.
type SuggestRequest struct {
	Strategy string       `json:"strategy"`
	Seed     int64        `json:"seed"`
	Count    int          `json:"count"` // max points to return (0: DefaultBatchSize)
	Spec     explore.Spec `json:"spec"`
	Observed []Eval       `json:"observed,omitempty"`
}

// Suggestion is the reply to a SuggestRequest.
type Suggestion struct {
	Strategy    string          `json:"strategy"`
	Seed        int64           `json:"seed"`
	SpacePoints int             `json:"space_points"`
	Replayed    int             `json:"replayed"` // observations matched to the space and replayed
	Points      []explore.Point `json:"points"`   // next points to evaluate, in proposal order
	Front       []FrontPoint    `json:"front"`    // Pareto front over the replayed observations
	Exhausted   bool            `json:"exhausted"`
}

// Suggest deterministically replays a strategy against the client's
// observations and returns the next points to evaluate. Observed points
// are normalized before matching, so clients may send sparse points;
// observations outside the spec's space are ignored (they cannot steer a
// lattice the strategy does not know). Exhausted is set when the strategy
// has converged or proposed the entire space.
func Suggest(req SuggestRequest) (*Suggestion, error) {
	count := req.Count
	if count <= 0 {
		count = DefaultBatchSize
	}
	sp, err := NewSpace(req.Spec)
	if err != nil {
		return nil, err
	}
	strat, err := New(req.Strategy, sp, req.Seed)
	if err != nil {
		return nil, err
	}

	// Index the client's observations by space index (last write wins) and
	// build the front over all of them; observations sent without an area
	// are priced by the hwmodel estimator. Front membership is independent
	// of insertion order, so the reply is canonical.
	obs := make(map[int]Eval, len(req.Observed))
	front := &Front{}
	for _, e := range req.Observed {
		e.Point = e.Point.Normalized()
		i := sp.Index(e.Point)
		if i < 0 {
			continue
		}
		if e.Area == 0 {
			e.Area = areaOf(e.Point)
		}
		obs[i] = e
		if e.OK() {
			front.Add(FrontPoint{Point: e.Point, Cycles: e.Cycles, Area: e.Area})
		}
	}

	out := &Suggestion{
		Strategy:    strat.Name(),
		Seed:        req.Seed,
		SpacePoints: sp.Len(),
		Replayed:    len(obs),
	}
	// Replay: propose, feed back what the client already measured, collect
	// what it has not. The loop is bounded: every proposal is new (visited
	// bookkeeping), so at most Len() points are ever proposed.
	for len(out.Points) < count {
		ps := strat.Propose(count - len(out.Points))
		if len(ps) == 0 {
			out.Exhausted = true
			break
		}
		known := make([]Eval, 0, len(ps))
		for _, p := range ps {
			i := sp.Index(p)
			if i < 0 {
				// Cannot happen: strategies propose space members only.
				return nil, fmt.Errorf("search: strategy %s proposed a point outside its space: %s", strat.Name(), p.Key())
			}
			if e, ok := obs[i]; ok {
				known = append(known, e)
			} else {
				out.Points = append(out.Points, p)
			}
		}
		if len(known) > 0 {
			strat.Observe(known)
		}
	}
	out.Front = front.Points()
	return out, nil
}
