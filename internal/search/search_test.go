package search

import (
	"reflect"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/hwmodel"
)

func fp(sched string, acs int, cycles, area int64) FrontPoint {
	return FrontPoint{
		Point:  explore.Point{Scheduler: sched, NumACs: acs}.Normalized(),
		Cycles: cycles,
		Area:   area,
	}
}

func TestFrontAddAndEviction(t *testing.T) {
	f := &Front{}
	if !f.Add(fp("HEF", 10, 100, 50)) {
		t.Fatal("first point must enter")
	}
	if f.Add(fp("ASF", 10, 120, 60)) {
		t.Error("dominated point entered")
	}
	if !f.Add(fp("FSFR", 10, 90, 60)) {
		t.Error("trade-off point rejected")
	}
	// Dominates both current members: front collapses to it.
	if !f.Add(fp("SJF", 10, 80, 40)) {
		t.Error("dominating point rejected")
	}
	if f.Len() != 1 {
		t.Errorf("front has %d members after collapse, want 1", f.Len())
	}
}

func TestFrontOrderIndependenceAndTieBreak(t *testing.T) {
	pts := []FrontPoint{
		fp("HEF", 10, 100, 50),
		fp("ASF", 10, 100, 50), // equal objectives: smaller key must win
		fp("SJF", 10, 90, 70),
		fp("FSFR", 10, 120, 40),
	}
	var first []FrontPoint
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}} {
		f := &Front{}
		for _, i := range order {
			f.Add(pts[i])
		}
		got := f.Points()
		if first == nil {
			first = got
			continue
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("front depends on insertion order %v:\n got %v\nwant %v", order, got, first)
		}
	}
	// The tie must have kept exactly one of HEF/ASF: the smaller key.
	kASF := pts[1].Point.Key()
	kHEF := pts[0].Point.Key()
	want := kASF
	if kHEF < kASF {
		want = kHEF
	}
	found := false
	for _, p := range first {
		if p.Cycles == 100 && p.Area == 50 {
			found = true
			if p.Point.Key() != want {
				t.Errorf("tie kept %s, want %s", p.Point.Key(), want)
			}
		}
	}
	if !found {
		t.Error("tied objective vector missing from front")
	}
}

func TestFrontCovers(t *testing.T) {
	a, b := &Front{}, &Front{}
	a.Add(fp("HEF", 10, 100, 50))
	a.Add(fp("HEF", 12, 80, 70))
	b.Add(fp("ASF", 10, 110, 50))
	b.Add(fp("ASF", 12, 80, 70))
	if !a.Covers(b) {
		t.Error("a should cover b (every b member weakly dominated)")
	}
	if b.Covers(a) {
		t.Error("b must not cover a (a's {100,50} beats b's {110,50})")
	}
	empty := &Front{}
	if !a.Covers(empty) || !empty.Covers(empty) {
		t.Error("every front covers the empty front")
	}
}

func TestParetoRank(t *testing.T) {
	evals := []Eval{
		{Cycles: 100, Area: 50},             // rank 0
		{Cycles: 80, Area: 70},              // rank 0
		{Cycles: 110, Area: 60},             // rank 1 (behind {100,50})
		{Cycles: 120, Area: 80},             // rank 2
		{Cycles: 90, Area: 90, Err: "boom"}, // failed: behind everything
	}
	ranks := paretoRank(evals)
	want := []int{0, 0, 1, 2, 1 << 30}
	if !reflect.DeepEqual(ranks, want) {
		t.Errorf("paretoRank = %v, want %v", ranks, want)
	}

	// Degenerate: identical objective vectors are one rank.
	same := []Eval{{Cycles: 5, Area: 5}, {Cycles: 5, Area: 5}, {Cycles: 5, Area: 5}}
	ranks = paretoRank(same)
	if !reflect.DeepEqual(ranks, []int{0, 0, 0}) {
		t.Errorf("identical vectors rank %v, want all 0", ranks)
	}
}

func TestSpaceLatticeRoundTrip(t *testing.T) {
	spec := explore.Spec{
		Schedulers: []string{"HEF", "ASF", "software"},
		ACs:        []int{1, 2, 3, 4},
		Frames:     []int{1},
		Motion:     []float64{0, 0.5},
	}
	sp, err := NewSpace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != 3*4*2 {
		t.Fatalf("space has %d points, want 24", sp.Len())
	}
	for i := 0; i < sp.Len(); i++ {
		c, ok := sp.coords(i)
		if !ok {
			t.Fatalf("point %d has no coords", i)
		}
		if j := sp.indexOf(c); j != i {
			t.Fatalf("indexOf(coords(%d)) = %d", i, j)
		}
		if j := sp.Index(sp.Points[i]); j != i {
			t.Fatalf("Index(Points[%d]) = %d", i, j)
		}
	}
	// The lattice order must be Expand's row-major order.
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp.Points, pts) {
		t.Error("space points differ from Spec.Expand order")
	}
	// Unknown point.
	if sp.Index(explore.Point{Scheduler: "SJF", NumACs: 99}.Normalized()) != -1 {
		t.Error("unknown point should index to -1")
	}
}

func TestSpaceDoesNotMutateSpec(t *testing.T) {
	scheds := []string{"HEF", "HEF", "ASF"}
	acs := []int{3, 3, 5}
	spec := explore.Spec{Schedulers: scheds, ACs: acs, Frames: []int{1}}
	sp, err := NewSpace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != 2*2 {
		t.Errorf("deduplicated space has %d points, want 4", sp.Len())
	}
	if !reflect.DeepEqual(scheds, []string{"HEF", "HEF", "ASF"}) || !reflect.DeepEqual(acs, []int{3, 3, 5}) {
		t.Error("NewSpace mutated the caller's spec slices")
	}
}

func TestSpaceExplicitPointsFallback(t *testing.T) {
	spec := explore.Spec{Points: []explore.Point{
		{Scheduler: "HEF", NumACs: 4, Frames: 1},
		{Scheduler: "ASF", NumACs: 6, Frames: 1},
	}}
	sp, err := NewSpace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() != 2 || sp.gridLen != 2 {
		t.Fatalf("fallback lattice: len=%d grid=%d, want 2/2", sp.Len(), sp.gridLen)
	}
	if _, ok := sp.coords(1); !ok {
		t.Error("explicit points must form a 1-D lattice")
	}
}

func TestAxisStride(t *testing.T) {
	sp := &Space{dims: [numAxes]int{1, 2, 3, 4, 5, 8, 20, 64}}
	want := []int{1, 1, 2, 2, 4, 4, 16, 32}
	for a, w := range want {
		if got := sp.axisStride(a); got != w {
			t.Errorf("axisStride(dim=%d) = %d, want %d", sp.dims[a], got, w)
		}
	}
}

func TestEvalOfCarriesArea(t *testing.T) {
	p := explore.Point{Scheduler: "HEF", NumACs: 7}.Normalized()
	rec := explore.Record{Point: p, Area: hwmodel.PointArea("HEF", 7), Cached: true}
	rec.TotalCycles = 42
	e := evalOf(rec)
	if e.Area != hwmodel.PointArea("HEF", 7) || e.Cycles != 42 || !e.Cached {
		t.Errorf("evalOf dropped fields: %+v", e)
	}
	if areaOf(p) != e.Area {
		t.Errorf("areaOf disagrees with record area")
	}
}
