package search

import (
	"bytes"
	"context"
	"fmt"
	"regexp"
	"strings"
	"testing"

	"rispp/internal/explore"
)

// fakeCycles is the synthetic objective of the search tests: deterministic,
// strictly decreasing along the (short) AC axis, with two pure-penalty axes
// (motion and scene changes) that guided strategies can descend, so the
// interesting region is rare under uniform sampling but easy to exploit.
func fakeCycles(p explore.Point) (int64, error) {
	if p.NumACs <= 0 {
		return 0, fmt.Errorf("bad point")
	}
	pen := int64(p.Motion*400) + int64(p.SceneChange)*150
	if p.Scheduler == "software" {
		return 5000 + pen, nil
	}
	off := map[string]int64{"HEF": 0, "Molen": 50, "FSFR": 120, "ASF": 200, "SJF": 260}[p.Scheduler]
	work := int64(1900 - 30*(p.NumACs-2)) // acs 2..20: 1900 down to 1360
	return work + off + pen, nil
}

// fakeEngine builds an engine over fakeCycles. withSet additionally enables
// the grouped RunSet path; workers sets the pool size.
func fakeEngine(withSet bool, workers int) *explore.Engine {
	run := func(ctx context.Context, p explore.Point) (explore.Metrics, error) {
		c, err := fakeCycles(p)
		if err != nil {
			return explore.Metrics{}, err
		}
		return explore.Metrics{TotalCycles: c, StallCycles: c / 10}, nil
	}
	eng := &explore.Engine{Run: run, Workers: workers}
	if withSet {
		eng.RunSet = func(ctx context.Context, ps []explore.Point) ([]explore.Metrics, error) {
			out := make([]explore.Metrics, len(ps))
			for i, p := range ps {
				m, err := run(ctx, p)
				if err != nil {
					return nil, err
				}
				out[i] = m
			}
			return out, nil
		}
	}
	return eng
}

// convergenceSpec is the ≥500-point joint space of the convergence and
// determinism tests: 5 schedulers × 7 AC budgets × 5 motion levels × 5
// scene-change counts = 875 points.
func convergenceSpec() explore.Spec {
	// Scheduler axis ordered by capability, so axis locality is meaningful
	// (adjacent schedulers have comparable cost/benefit).
	return explore.Spec{
		Schedulers:   []string{"software", "Molen", "HEF", "FSFR", "ASF"},
		ACs:          []int{2, 5, 8, 11, 14, 17, 20},
		Frames:       []int{1},
		Motion:       []float64{0, 0.25, 0.5, 0.75, 1},
		SceneChanges: []int{0, 1, 2, 3, 4},
	}
}

func frontFromPoints(pts []FrontPoint) *Front {
	f := &Front{}
	for _, p := range pts {
		f.Add(p)
	}
	return f
}

func TestRunDeterminism(t *testing.T) {
	spec := convergenceSpec()
	for _, strat := range StrategyNames() {
		t.Run(strat, func(t *testing.T) {
			type variant struct {
				name string
				eng  *explore.Engine
			}
			variants := []variant{
				{"plain", fakeEngine(false, 1)},
				{"grouped", fakeEngine(true, 1)},
				{"parallel", fakeEngine(false, 8)},
				{"grouped-parallel", fakeEngine(true, 8)},
			}
			var wantJournal, wantStream []byte
			var wantFront []FrontPoint
			for _, v := range variants {
				var journal, stream bytes.Buffer
				out, err := Run(context.Background(), v.eng, spec, Config{
					Strategy: strat, Seed: 7, Budget: 60, BatchSize: 16,
					Stream: &stream, Journal: &journal,
				})
				if err != nil {
					t.Fatalf("%s: %v", v.name, err)
				}
				if out.Evaluated == 0 || out.Evaluated > 60 {
					t.Fatalf("%s: evaluated %d, want 1..60", v.name, out.Evaluated)
				}
				if wantJournal == nil {
					wantJournal, wantStream, wantFront = journal.Bytes(), stream.Bytes(), out.Front
					continue
				}
				if !bytes.Equal(journal.Bytes(), wantJournal) {
					t.Errorf("%s: journal bytes differ from plain run", v.name)
				}
				if !bytes.Equal(stream.Bytes(), wantStream) {
					t.Errorf("%s: stream bytes differ from plain run", v.name)
				}
				if FormatFront(out.Front) != FormatFront(wantFront) {
					t.Errorf("%s: front differs from plain run", v.name)
				}
			}

			// Warm cache over the same engine: journal must not change
			// (Eval.Cached is excluded from the serialization).
			eng := fakeEngine(true, 4)
			cache, err := explore.OpenCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			eng.Cache = cache
			var cold, warm bytes.Buffer
			cfg := Config{Strategy: strat, Seed: 7, Budget: 60, BatchSize: 16}
			cfg.Journal = &cold
			if _, err := Run(context.Background(), eng, spec, cfg); err != nil {
				t.Fatal(err)
			}
			cfg.Journal = &warm
			warmOut, err := Run(context.Background(), eng, spec, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if warmOut.CacheHits == 0 {
				t.Error("second run over a warm cache reported no cache hits")
			}
			if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
				t.Error("cold and warm journals differ")
			}
			if !bytes.Equal(cold.Bytes(), wantJournal) {
				t.Error("cached journal differs from cacheless journal")
			}
		})
	}
}

func TestRunJournalReplays(t *testing.T) {
	spec := convergenceSpec()
	for _, strat := range StrategyNames() {
		var journal bytes.Buffer
		out, err := Run(context.Background(), fakeEngine(true, 4), spec, Config{
			Strategy: strat, Seed: 3, Budget: 40, Journal: &journal,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		rep, err := Replay(bytes.NewReader(journal.Bytes()))
		if err != nil {
			t.Fatalf("%s: replay: %v", strat, err)
		}
		if rep.Evaluated != out.Evaluated || rep.Proposed != out.Proposed || rep.Rounds != out.Rounds {
			t.Errorf("%s: replay counts %d/%d/%d, run %d/%d/%d", strat,
				rep.Evaluated, rep.Proposed, rep.Rounds, out.Evaluated, out.Proposed, out.Rounds)
		}
		if FormatFront(rep.Front) != FormatFront(out.Front) {
			t.Errorf("%s: replayed front differs from run front", strat)
		}

		// Tampering with any eval line must be detected: cycles=1 makes the
		// tampered point a front member the recorded front cannot contain.
		cyc := regexp.MustCompile(`"cycles":\d+`)
		lines := bytes.Split(bytes.TrimSpace(journal.Bytes()), []byte("\n"))
		for i, ln := range lines {
			if bytes.Contains(ln, []byte(`"type":"eval"`)) && !bytes.Contains(ln, []byte(`"err"`)) {
				lines[i] = cyc.ReplaceAll(ln, []byte(`"cycles":1`))
				break
			}
		}
		if _, err := Replay(bytes.NewReader(bytes.Join(lines, []byte("\n")))); err == nil {
			t.Errorf("%s: tampered journal replayed clean", strat)
		} else if !strings.Contains(err.Error(), "front") {
			t.Errorf("%s: tampered journal failed for the wrong reason: %v", strat, err)
		}
	}
}

func TestRunBudgetAndUniqueProposals(t *testing.T) {
	spec := convergenceSpec()
	for _, strat := range StrategyNames() {
		out, err := Run(context.Background(), fakeEngine(false, 2), spec, Config{
			Strategy: strat, Seed: 11, Budget: 35, BatchSize: 10,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if out.Evaluated > 35 {
			t.Errorf("%s: evaluated %d over budget 35", strat, out.Evaluated)
		}
		seen := make(map[string]bool)
		for _, e := range out.Evals {
			k := e.Point.Key()
			if seen[k] {
				t.Errorf("%s: point %s evaluated twice", strat, k)
			}
			seen[k] = true
		}
	}
}

func TestRunExhaustsSmallSpace(t *testing.T) {
	spec := explore.Spec{
		Schedulers: []string{"HEF", "ASF"},
		ACs:        []int{2, 4, 6},
		Frames:     []int{1},
	}
	for _, strat := range StrategyNames() {
		out, err := Run(context.Background(), fakeEngine(false, 1), spec, Config{
			Strategy: strat, Seed: 1, Budget: 100, BatchSize: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if out.Evaluated != 6 {
			t.Errorf("%s: evaluated %d of a 6-point space under a 100 budget", strat, out.Evaluated)
		}
		// At full coverage, every strategy's front is the true front.
		full, err := Run(context.Background(), fakeEngine(false, 1), spec, Config{
			Strategy: "random", Seed: 99, Budget: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		if FormatFront(out.Front) != FormatFront(full.Front) {
			t.Errorf("%s: full-coverage front differs from true front", strat)
		}
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	eng := fakeEngine(false, 1)
	if _, err := Run(context.Background(), eng, convergenceSpec(), Config{Strategy: "random"}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Run(context.Background(), eng, convergenceSpec(), Config{Strategy: "nope", Budget: 5}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestRunFailedPointsStayOffFront(t *testing.T) {
	// Invalid specs fail at space construction.
	bad := explore.Spec{Schedulers: []string{"HEF"}, ACs: []int{-1, 2}, Frames: []int{1}}
	if _, err := NewSpace(bad); err == nil {
		t.Fatal("negative AC budget must fail space construction")
	}

	// Runtime failures are journaled as failed evals and never enter the
	// front or abort the search.
	eng := &explore.Engine{Run: func(ctx context.Context, p explore.Point) (explore.Metrics, error) {
		if p.Scheduler == "ASF" {
			return explore.Metrics{}, fmt.Errorf("ASF backend down")
		}
		c, _ := fakeCycles(p)
		return explore.Metrics{TotalCycles: c}, nil
	}}
	spec := explore.Spec{Schedulers: []string{"HEF", "ASF"}, ACs: []int{2, 4}, Frames: []int{1}}
	out, err := Run(context.Background(), eng, spec, Config{Strategy: "random", Seed: 1, Budget: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Failed != 2 {
		t.Errorf("failed = %d, want 2", out.Failed)
	}
	for _, p := range out.Front {
		if p.Point.Scheduler == "ASF" {
			t.Errorf("failed point on the front: %s", p.Point.Key())
		}
	}
}

// TestConvergence pins the acceptance criterion: on a ≥500-point space,
// halving and evolve each reach a front that matches or dominates the
// random baseline's front at the same budget, while evaluating at most 20%
// of the grid.
func TestConvergence(t *testing.T) {
	spec := convergenceSpec()
	sp, err := NewSpace(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Len() < 500 {
		t.Fatalf("convergence space has %d points, want >= 500", sp.Len())
	}
	budget := sp.Len() / 5 // 20%
	for _, seed := range []int64{1, 2, 3} {
		fronts := make(map[string]*Front)
		for _, strat := range StrategyNames() {
			out, err := Run(context.Background(), fakeEngine(true, 4), spec, Config{
				Strategy: strat, Seed: seed, Budget: budget,
			})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, strat, err)
			}
			if out.Evaluated > budget {
				t.Fatalf("seed %d %s: evaluated %d > budget %d", seed, strat, out.Evaluated, budget)
			}
			fronts[strat] = frontFromPoints(out.Front)
		}
		for _, guided := range []string{"halving", "evolve"} {
			if !fronts[guided].Covers(fronts["random"]) {
				t.Errorf("seed %d: %s front does not cover the random baseline front\n%s front:\n%s\nrandom front:\n%s",
					seed, guided, guided,
					FormatFront(fronts[guided].Points()), FormatFront(fronts["random"].Points()))
			}
		}
	}
}
