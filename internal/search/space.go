package search

import (
	"fmt"

	"rispp/internal/explore"
)

// numAxes is the number of grid dimensions of an explore.Spec, in Expand's
// nested-loop order: scheduler, ACs, frames, seeds, motion, scene change,
// forecast seeding, prefetch.
const numAxes = 8

// Space is the candidate pool of a search: the expanded, normalized,
// deduplicated points of a spec, plus the coordinate lattice the guided
// strategies move on. Points[:GridLen] are the grid in row-major order
// (innermost axis fastest, exactly Spec.Expand's order); any explicit
// spec.Points follow as lattice-less extras reachable only by random
// sampling. Building the Space normalizes every point exactly once — the
// driver and the strategies never re-normalize.
type Space struct {
	Points []explore.Point

	dims    [numAxes]int // axis sizes (grid part)
	gridLen int          // len of the lattice prefix of Points
	index   map[string]int
}

// NewSpace expands the spec into a search space. Axis values are
// deduplicated (preserving first occurrence, like Expand); specs without
// any grid dimension degrade to a 1-D lattice over their explicit points
// so every strategy still has a neighborhood structure.
func NewSpace(spec explore.Spec) (*Space, error) {
	gridded := len(spec.Schedulers) > 0 || len(spec.ACs) > 0 || len(spec.Frames) > 0 ||
		len(spec.Seeds) > 0 || len(spec.Motion) > 0 || len(spec.SceneChanges) > 0 ||
		len(spec.SeedForecasts) > 0 || len(spec.Prefetch) > 0
	s := &Space{}
	if gridded {
		// Deduplicate each axis so the lattice↔index mapping is bijective;
		// Expand on the deduplicated spec then yields exactly the lattice in
		// row-major order, followed by any new explicit points.
		spec.Schedulers = uniq(orDefault(spec.Schedulers, []string{"HEF"}))
		spec.ACs = uniq(orDefault(spec.ACs, []int{10}))
		spec.Frames = uniq(orDefault(spec.Frames, []int{140}))
		spec.Seeds = uniq(orDefault(spec.Seeds, []int64{0}))
		spec.Motion = uniq(orDefault(spec.Motion, []float64{0}))
		spec.SceneChanges = uniq(orDefault(spec.SceneChanges, []int{0}))
		spec.SeedForecasts = uniq(orDefault(spec.SeedForecasts, []bool{true}))
		spec.Prefetch = uniq(orDefault(spec.Prefetch, []bool{false}))
		s.dims = [numAxes]int{
			len(spec.Schedulers), len(spec.ACs), len(spec.Frames), len(spec.Seeds),
			len(spec.Motion), len(spec.SceneChanges), len(spec.SeedForecasts), len(spec.Prefetch),
		}
		s.gridLen = 1
		for _, d := range s.dims {
			s.gridLen *= d
		}
	}
	pts, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("search: spec expands to no points")
	}
	if gridded && len(pts) < s.gridLen {
		// Cannot happen with deduplicated axes; guard the invariant anyway.
		return nil, fmt.Errorf("search: grid of %d points expanded to %d", s.gridLen, len(pts))
	}
	if !gridded {
		s.dims = [numAxes]int{len(pts), 1, 1, 1, 1, 1, 1, 1}
		s.gridLen = len(pts)
	}
	s.Points = pts
	s.index = make(map[string]int, len(pts))
	for i, p := range pts {
		s.index[p.Key()] = i
	}
	return s, nil
}

// Len returns the number of candidate points.
func (s *Space) Len() int { return len(s.Points) }

// Index returns the index of a normalized point, or -1.
func (s *Space) Index(p explore.Point) int {
	if i, ok := s.index[p.Key()]; ok {
		return i
	}
	return -1
}

// coords returns the lattice coordinates of grid point i; ok is false for
// the lattice-less extras.
func (s *Space) coords(i int) (c [numAxes]int, ok bool) {
	if i < 0 || i >= s.gridLen {
		return c, false
	}
	for a := numAxes - 1; a >= 0; a-- {
		c[a] = i % s.dims[a]
		i /= s.dims[a]
	}
	return c, true
}

// indexOf is the inverse of coords.
func (s *Space) indexOf(c [numAxes]int) int {
	i := 0
	for a := 0; a < numAxes; a++ {
		i = i*s.dims[a] + c[a]
	}
	return i
}

// maxDim returns the size of the largest axis.
func (s *Space) maxDim() int {
	m := 1
	for _, d := range s.dims {
		if d > m {
			m = d
		}
	}
	return m
}

// axisStride returns the initial successive-halving stride of axis a: the
// largest power of two strictly below the axis size (minimum 1), so the
// first rung samples every axis at its extremes (plus at most one interior
// position) and later rungs halve toward the survivors — classic
// successive halving starts maximally coarse and spends the budget on
// depth around what works.
func (s *Space) axisStride(a int) int {
	st := 1
	for st*2 <= s.dims[a]-1 {
		st *= 2
	}
	return st
}

func orDefault[T any](v, def []T) []T {
	if len(v) == 0 {
		return def
	}
	return v
}

// uniq copies v keeping the first occurrence of each value (never mutates
// v — the slices belong to the caller's spec).
func uniq[T comparable](v []T) []T {
	seen := make(map[T]bool, len(v))
	out := make([]T, 0, len(v))
	for _, x := range v {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
