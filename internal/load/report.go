package load

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// sample is one completed (or failed) request as the generator saw it.
type sample struct {
	tenant string
	route  string
	code   int  // 0 when the request errored before a response
	err    bool // transport error (timeout, refused, ...)
	ms     float64
	steady bool // issued after the warmup window
}

// EndpointStats reduces one (tenant, route) or aggregate sample stream.
// Latency quantiles cover successful (2xx) steady-state requests only —
// sheds return in microseconds and would flatter the tail.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"` // 429
	Errors5x int64 `json:"errors_5xx"`
	Other    int64 `json:"other"` // non-2xx/429/5xx codes and transport errors

	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// TenantReport is one tenant's view of the run.
type TenantReport struct {
	Weight float64                   `json:"weight"`
	Total  EndpointStats             `json:"total"`
	Routes map[string]*EndpointStats `json:"routes"`
	// WeightedShare is the tenant's steady-state OK completions divided by
	// its weight; fairness compares these across tenants.
	WeightedShare float64 `json:"weighted_share"`
}

// ServerStats is the slice of the target's /metrics exposition the report
// embeds: the SLO series the tentpole added, reduced to scalars.
type ServerStats struct {
	// TenantSheds counts 429s by "tenant/reason" as the server saw them.
	TenantSheds map[string]int64 `json:"tenant_sheds,omitempty"`
	// TenantAdmits counts dispatched slots by "tenant/class".
	TenantAdmits map[string]int64 `json:"tenant_admits,omitempty"`
	// EndpointP50MS/P99MS are server-side latency quantiles per route,
	// interpolated from the rispp_endpoint_latency_seconds buckets.
	EndpointP50MS map[string]float64 `json:"endpoint_p50_ms,omitempty"`
	EndpointP99MS map[string]float64 `json:"endpoint_p99_ms,omitempty"`
	// QueueDepth is the scrape-time QoS queue depth per class.
	QueueDepth map[string]int64 `json:"queue_depth,omitempty"`
	// PoolHits/PoolMisses are the runtime-pool reuse counters.
	PoolHits   int64 `json:"pool_hits"`
	PoolMisses int64 `json:"pool_misses"`
}

// Report is the machine-readable result of one load run. cmd/risppload
// writes it as JSON; the CI soak job archives it.
type Report struct {
	Target      string        `json:"target"`
	Seed        int64         `json:"seed"`
	Duration    time.Duration `json:"duration_ns"`
	WallSeconds float64       `json:"wall_seconds"`

	Total   EndpointStats             `json:"total"`
	Routes  map[string]*EndpointStats `json:"routes"`
	Tenants map[string]*TenantReport  `json:"tenants"`

	// ShedRate is steady-state sheds over steady-state requests.
	ShedRate float64 `json:"shed_rate"`
	// Fairness is min/max of the tenants' weighted steady-state completion
	// shares (1 = perfectly weighted-fair, 0 = a tenant was starved).
	Fairness float64 `json:"fairness"`

	Server ServerStats `json:"server"`

	Violations []string `json:"violations"`
	Pass       bool     `json:"pass"`
}

// collector accumulates samples from all workers.
type collector struct {
	mu      sync.Mutex
	samples []sample
}

func newCollector() *collector { return &collector{} }

func (c *collector) record(s sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// report reduces the collected samples. Latency quantiles and the
// fairness/shed metrics use only steady-state samples; raw counts cover
// the whole run.
func (c *collector) report(p Profile, target string) *Report {
	c.mu.Lock()
	samples := c.samples
	c.mu.Unlock()

	rep := &Report{
		Target:   target,
		Seed:     p.Seed,
		Duration: p.Duration,
		Routes:   make(map[string]*EndpointStats),
		Tenants:  make(map[string]*TenantReport),
	}
	for _, t := range p.Tenants {
		rep.Tenants[t.Name] = &TenantReport{
			Weight: t.Weight,
			Routes: make(map[string]*EndpointStats),
		}
	}

	type lat struct{ all []float64 }
	latencies := make(map[*EndpointStats]*lat)
	touch := func(s *EndpointStats, sm sample) {
		s.Requests++
		switch {
		case sm.err || sm.code == 0:
			s.Other++
		case sm.code >= 200 && sm.code < 300:
			s.OK++
			if sm.steady {
				l := latencies[s]
				if l == nil {
					l = &lat{}
					latencies[s] = l
				}
				l.all = append(l.all, sm.ms)
			}
		case sm.code == 429:
			s.Shed++
		case sm.code >= 500:
			s.Errors5x++
		default:
			s.Other++
		}
	}

	var steadyTotal, steadyShed int64
	for _, sm := range samples {
		touch(&rep.Total, sm)
		rs := rep.Routes[sm.route]
		if rs == nil {
			rs = &EndpointStats{}
			rep.Routes[sm.route] = rs
		}
		touch(rs, sm)
		tr := rep.Tenants[sm.tenant]
		if tr == nil {
			tr = &TenantReport{Weight: 1, Routes: make(map[string]*EndpointStats)}
			rep.Tenants[sm.tenant] = tr
		}
		touch(&tr.Total, sm)
		ts := tr.Routes[sm.route]
		if ts == nil {
			ts = &EndpointStats{}
			tr.Routes[sm.route] = ts
		}
		touch(ts, sm)
		if sm.steady {
			steadyTotal++
			if sm.code == 429 {
				steadyShed++
			}
		}
	}
	for s, l := range latencies {
		fillQuantiles(s, l.all)
	}
	if steadyTotal > 0 {
		rep.ShedRate = float64(steadyShed) / float64(steadyTotal)
	}
	rep.Fairness = fairness(rep, samples)
	return rep
}

// fairness computes min/max of weighted steady-state OK completion shares
// across tenants with traffic. One (or zero) active tenants is trivially
// fair.
func fairness(rep *Report, samples []sample) float64 {
	steadyOK := make(map[string]float64)
	for _, sm := range samples {
		if sm.steady && !sm.err && sm.code >= 200 && sm.code < 300 {
			steadyOK[sm.tenant]++
		}
	}
	lo, hi := math.Inf(1), 0.0
	active := 0
	for name, tr := range rep.Tenants {
		if tr.Total.Requests == 0 {
			continue
		}
		active++
		share := steadyOK[name] / tr.Weight
		tr.WeightedShare = share
		if share < lo {
			lo = share
		}
		if share > hi {
			hi = share
		}
	}
	if active <= 1 {
		return 1
	}
	if hi == 0 {
		return 0
	}
	return lo / hi
}

// fillQuantiles sorts one latency population and fills the stats' quantile
// fields.
func fillQuantiles(s *EndpointStats, ms []float64) {
	if len(ms) == 0 {
		return
	}
	sort.Float64s(ms)
	var sum float64
	for _, v := range ms {
		sum += v
	}
	s.P50MS = quantile(ms, 0.50)
	s.P95MS = quantile(ms, 0.95)
	s.P99MS = quantile(ms, 0.99)
	s.MaxMS = ms[len(ms)-1]
	s.MeanMS = sum / float64(len(ms))
}

// quantile reads q ∈ [0,1] from an ascending-sorted population (nearest
// rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Assert checks a report against an SLO and returns the violations, one
// human-readable line each. It is a pure function so the CI gate's
// fail-the-build behavior is testable without running load.
func Assert(rep *Report, slo SLO) []string {
	var v []string
	if slo.MaxP99SimulateMS > 0 {
		if rs := rep.Routes["/v1/simulate"]; rs != nil && rs.P99MS > slo.MaxP99SimulateMS {
			v = append(v, fmt.Sprintf("p99 simulate latency %.1fms exceeds SLO %.1fms",
				rs.P99MS, slo.MaxP99SimulateMS))
		}
	}
	if slo.MaxShedRate > 0 && rep.ShedRate > slo.MaxShedRate {
		v = append(v, fmt.Sprintf("shed rate %.3f exceeds SLO %.3f", rep.ShedRate, slo.MaxShedRate))
	}
	if slo.AssertServerErrors && rep.Total.Errors5x > slo.MaxServerErrors {
		v = append(v, fmt.Sprintf("%d server errors (5xx) exceed SLO %d",
			rep.Total.Errors5x, slo.MaxServerErrors))
	}
	if slo.MinFairness > 0 && rep.Fairness < slo.MinFairness {
		v = append(v, fmt.Sprintf("fairness %.3f below SLO %.3f (weighted completion shares: %s)",
			rep.Fairness, slo.MinFairness, shareSummary(rep)))
	}
	return v
}

func shareSummary(rep *Report) string {
	names := make([]string, 0, len(rep.Tenants))
	for n := range rep.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%.1f", n, rep.Tenants[n].WeightedShare))
	}
	return strings.Join(parts, " ")
}

// parseServerStats extracts the QoS SLO series from a Prometheus text
// exposition (the subset internal/serve emits; it is not a general
// parser).
func parseServerStats(text string) ServerStats {
	st := ServerStats{
		TenantSheds:   make(map[string]int64),
		TenantAdmits:  make(map[string]int64),
		EndpointP50MS: make(map[string]float64),
		EndpointP99MS: make(map[string]float64),
		QueueDepth:    make(map[string]int64),
	}
	type hist struct {
		bounds []float64 // ascending; +Inf omitted
		counts []int64   // cumulative, 1:1 with bounds
		total  int64
	}
	hists := make(map[string]*hist)

	for _, line := range strings.Split(text, "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		name, labels, value, ok := parseLine(line)
		if !ok {
			continue
		}
		switch name {
		case "rispp_tenant_shed_total":
			st.TenantSheds[labels["tenant"]+"/"+labels["reason"]] = int64(value)
		case "rispp_tenant_admitted_total":
			st.TenantAdmits[labels["tenant"]+"/"+labels["class"]] = int64(value)
		case "rispp_qos_queue_depth":
			st.QueueDepth[labels["class"]] = int64(value)
		case "rispp_runtime_pool_total":
			if labels["outcome"] == "hit" {
				st.PoolHits = int64(value)
			} else {
				st.PoolMisses = int64(value)
			}
		case "rispp_endpoint_latency_seconds_bucket":
			route := labels["route"]
			h := hists[route]
			if h == nil {
				h = &hist{}
				hists[route] = h
			}
			if labels["le"] == "+Inf" {
				h.total = int64(value)
				continue
			}
			ub, err := strconv.ParseFloat(labels["le"], 64)
			if err != nil {
				continue
			}
			h.bounds = append(h.bounds, ub)
			h.counts = append(h.counts, int64(value))
		}
	}
	for route, h := range hists {
		st.EndpointP50MS[route] = histQuantile(h.bounds, h.counts, h.total, 0.50) * 1000
		st.EndpointP99MS[route] = histQuantile(h.bounds, h.counts, h.total, 0.99) * 1000
	}
	return st
}

// histQuantile reads quantile q from cumulative histogram buckets with
// linear interpolation inside the landing bucket (the usual
// histogram_quantile estimate). Returns the top bound when q lands in the
// +Inf bucket.
func histQuantile(bounds []float64, cum []int64, total int64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var prevCount int64
	prevBound := 0.0
	for i, ub := range bounds {
		if float64(cum[i]) >= rank {
			in := cum[i] - prevCount
			if in == 0 {
				return ub
			}
			frac := (rank - float64(prevCount)) / float64(in)
			return prevBound + (ub-prevBound)*frac
		}
		prevCount = cum[i]
		prevBound = ub
	}
	return bounds[len(bounds)-1]
}

// parseLine splits one exposition line: name{k="v",...} value.
func parseLine(line string) (name string, labels map[string]string, value float64, ok bool) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
	if err != nil {
		return "", nil, 0, false
	}
	head := line[:sp]
	labels = make(map[string]string)
	if br := strings.IndexByte(head, '{'); br >= 0 {
		name = head[:br]
		body := strings.TrimSuffix(head[br+1:], "}")
		for _, pair := range splitLabels(body) {
			eq := strings.IndexByte(pair, '=')
			if eq < 0 {
				continue
			}
			val, err := strconv.Unquote(pair[eq+1:])
			if err != nil {
				continue
			}
			labels[pair[:eq]] = val
		}
	} else {
		name = head
	}
	return name, labels, v, true
}

// splitLabels splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
