// Package load is the risppserve soak harness: a deterministic, seedable
// multi-tenant load generator with SLO assertions. It drives a
// configurable request mix (simulate/explore/suggest across both QoS
// priority classes) against a target server — spawning one in-process on a
// loopback port when no target is given — and reduces the observed
// latencies, shed decisions and per-tenant completion shares into a
// machine-readable Report. cmd/risppload is the CLI; the CI soak job is
// the primary consumer.
//
// Determinism: all request scheduling derives from Profile.Seed through
// per-worker PRNGs (worker k of tenant t always draws the same point and
// endpoint sequence), so two runs of the same profile issue the same
// requests in the same per-worker order. Wall-clock latencies naturally
// vary; the SLO thresholds are what make a run pass or fail.
package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rispp"
	"rispp/internal/explore"
	"rispp/internal/search"
	"rispp/internal/serve"
)

// Mix is the relative endpoint weighting of one tenant's traffic. Zero
// values drop the endpoint from the mix; an all-zero Mix means
// simulate-only.
type Mix struct {
	Simulate float64 `json:"simulate"`
	Explore  float64 `json:"explore"`
	Suggest  float64 `json:"suggest"`
}

// Tenant is one synthetic client population.
type Tenant struct {
	Name string `json:"name"`
	// Weight is the tenant's expected fair share, matching its server-side
	// WFQ weight; the fairness metric normalizes completions by it.
	Weight float64 `json:"weight"`
	// Workers is the closed-loop concurrency (outstanding requests).
	Workers int `json:"workers"`
	// RPS switches the tenant to open loop: each worker fires at a fixed
	// interval regardless of completions (Workers/RPS seconds apart).
	// 0 keeps the closed loop.
	RPS float64 `json:"rps,omitempty"`
	Mix Mix     `json:"mix"`
}

// Burst periodically multiplies open-loop arrival rates (and shortens
// closed-loop think time) to model arrival spikes.
type Burst struct {
	Every  time.Duration `json:"every,omitempty"`  // period; 0 disables bursts
	Length time.Duration `json:"length,omitempty"` // spike duration within each period
	Factor float64       `json:"factor,omitempty"` // rate multiplier during the spike
}

// SLO are the assertions a run must satisfy. Zero-valued fields are not
// asserted.
type SLO struct {
	// MaxP99SimulateMS bounds the client-observed p99 /v1/simulate latency
	// (successful requests, after warmup).
	MaxP99SimulateMS float64 `json:"max_p99_simulate_ms,omitempty"`
	// MaxShedRate bounds sheds (429) as a fraction of all requests after
	// warmup.
	MaxShedRate float64 `json:"max_shed_rate,omitempty"`
	// MaxServerErrors bounds 5xx responses over the whole run (set 0 with
	// AssertServerErrors for "zero 5xx").
	MaxServerErrors    int64 `json:"max_5xx"`
	AssertServerErrors bool  `json:"assert_5xx"`
	// MinFairness bounds the weighted completion-share ratio between the
	// worst- and best-served tenants (1 = perfectly weighted-fair).
	MinFairness float64 `json:"min_fairness,omitempty"`
}

// Profile is one load-test configuration.
type Profile struct {
	// Target is the base URL of a running server; empty spawns an
	// in-process server on 127.0.0.1:0 configured by Server.
	Target string `json:"target,omitempty"`
	// Server configures the spawned server (nil: soak defaults — two named
	// tenants gold:3 / bronze:1, interactive queue, pprof on).
	Server *serve.Config `json:"-"`

	Seed     int64         `json:"seed"`
	Duration time.Duration `json:"duration"`
	// Warmup excludes the ramp-up from latency/shed/fairness statistics
	// (0: Duration/5).
	Warmup  time.Duration `json:"warmup"`
	Tenants []Tenant      `json:"tenants"`
	Burst   Burst         `json:"burst"`

	// Point-pool knobs: the generator draws from Points distinct design
	// points over Schedulers × [1,MaxACs] at Frames frames each. A small
	// pool exercises the response cache; a large one the simulator.
	Points     int      `json:"points"`
	Frames     int      `json:"frames"`
	MaxACs     int      `json:"max_acs"`
	Schedulers []string `json:"schedulers"`

	SLO SLO `json:"slo"`

	// PprofDir, when set, saves CPU and heap profiles from the target's
	// /debug/pprof endpoints into this directory during the run.
	PprofDir string `json:"pprof_dir,omitempty"`
}

// Quick is the PR-scoped soak profile: ~15 s wall time, two tenants with
// 3:1 weights, mixed interactive and batch traffic, loose-but-real SLOs.
// Worker counts track the weights so each tenant's offered load matches
// its entitlement: weighted completion shares then align (fairness ≈ 1)
// both when the server is unsaturated and when WFQ is arbitrating, and a
// starved or monopolizing tenant shows up as fairness → 0.
func Quick(seed int64) Profile {
	return Profile{
		Seed:     seed,
		Duration: 15 * time.Second,
		Tenants: []Tenant{
			{Name: "gold", Weight: 3, Workers: 3, Mix: Mix{Simulate: 8, Explore: 1, Suggest: 1}},
			{Name: "bronze", Weight: 1, Workers: 1, Mix: Mix{Simulate: 8, Explore: 1, Suggest: 1}},
		},
		Burst: Burst{Every: 5 * time.Second, Length: time.Second, Factor: 3},
		SLO: SLO{
			MaxP99SimulateMS:   2000,
			MaxShedRate:        0.05,
			AssertServerErrors: true,
			MinFairness:        0.25,
		},
	}
}

// Long is the nightly soak profile: several minutes, more workers, a
// bigger point pool, tighter fairness.
func Long(seed int64) Profile {
	p := Quick(seed)
	p.Duration = 5 * time.Minute
	p.Points = 256
	p.Frames = 4
	for i := range p.Tenants {
		p.Tenants[i].Workers *= 2
	}
	p.SLO.MinFairness = 0.4
	return p
}

func (p Profile) withDefaults() Profile {
	if p.Duration <= 0 {
		p.Duration = 10 * time.Second
	}
	if p.Warmup <= 0 {
		p.Warmup = p.Duration / 5
	}
	if len(p.Tenants) == 0 {
		p.Tenants = []Tenant{{Name: "anonymous", Weight: 1, Workers: 2, Mix: Mix{Simulate: 1}}}
	}
	for i := range p.Tenants {
		if p.Tenants[i].Weight <= 0 {
			p.Tenants[i].Weight = 1
		}
		if p.Tenants[i].Workers <= 0 {
			p.Tenants[i].Workers = 1
		}
		if p.Tenants[i].Mix == (Mix{}) {
			p.Tenants[i].Mix = Mix{Simulate: 1}
		}
	}
	if p.Points <= 0 {
		p.Points = 64
	}
	if p.Frames <= 0 {
		p.Frames = 2
	}
	if p.MaxACs <= 0 {
		p.MaxACs = 20
	}
	if len(p.Schedulers) == 0 {
		p.Schedulers = []string{"HEF", "SJF", "Molen", "ASF", "software"}
	}
	if p.Burst.Factor <= 0 {
		p.Burst.Factor = 1
	}
	return p
}

// soakServerConfig is the server the harness spawns when the profile
// names no target: the QoS policy mirrors the Quick/Long tenant weights.
func soakServerConfig(p Profile) serve.Config {
	tenants := make(map[string]serve.TenantLimits, len(p.Tenants))
	for _, t := range p.Tenants {
		tenants[t.Name] = serve.TenantLimits{Weight: int(t.Weight), MaxQueue: 256}
	}
	return serve.Config{
		Addr: "127.0.0.1:0",
		QoS: serve.QoSConfig{
			Tenants:          tenants,
			InteractiveQueue: 64,
			BatchQueue:       1024,
		},
		EnablePprof: p.PprofDir != "",
	}
}

// Run executes the profile and reduces it to a Report. logf receives
// progress lines (nil discards them). The returned error covers harness
// failures (cannot spawn, cannot scrape); SLO violations are not errors —
// they are Report.Violations, and Report.Pass is false.
func Run(ctx context.Context, p Profile, logf func(string, ...any)) (*Report, error) {
	p = p.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}

	target := p.Target
	var shutdown func() error
	if target == "" {
		cfg := soakServerConfig(p)
		if p.Server != nil {
			cfg = *p.Server
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("load: spawn listener: %w", err)
		}
		srv := serve.New(cfg, rispp.Config{})
		srv.Logf = func(string, ...any) {} // keep harness output clean
		go srv.Serve(ln)                   //nolint:errcheck // ends via Shutdown
		target = "http://" + ln.Addr().String()
		shutdown = func() error {
			sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			return srv.Shutdown(sctx)
		}
		logf("load: spawned risppserve on %s", target)
	}

	gen := newGenerator(p)
	client := &http.Client{Timeout: 30 * time.Second}
	col := newCollector()

	runCtx, cancel := context.WithTimeout(ctx, p.Duration)
	defer cancel()
	start := time.Now()
	warmEnd := start.Add(p.Warmup)

	var pprofErr error
	var pprofWG sync.WaitGroup
	if p.PprofDir != "" {
		pprofWG.Add(1)
		go func() {
			defer pprofWG.Done()
			pprofErr = fetchPprof(runCtx, client, target, p.PprofDir, p.Duration)
		}()
	}

	var wg sync.WaitGroup
	for ti, t := range p.Tenants {
		for w := 0; w < t.Workers; w++ {
			wg.Add(1)
			go func(ti, w int, t Tenant) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(workerSeed(p.Seed, t.Name, w)))
				interval := time.Duration(0)
				if t.RPS > 0 {
					interval = time.Duration(float64(t.Workers) / t.RPS * float64(time.Second))
				}
				for runCtx.Err() == nil {
					req := gen.next(rng, t)
					issued := time.Now()
					code, err := req.do(runCtx, client, target, t.Name)
					if runCtx.Err() != nil && code == 0 {
						return // run ended mid-request; don't count the abort
					}
					col.record(sample{
						tenant: t.Name,
						route:  req.route,
						code:   code,
						err:    err != nil,
						ms:     float64(time.Since(issued)) / float64(time.Millisecond),
						steady: issued.After(warmEnd),
					})
					if interval > 0 {
						d := interval
						if inBurst(issued.Sub(start), p.Burst) {
							d = time.Duration(float64(d) / p.Burst.Factor)
						}
						select {
						case <-time.After(d):
						case <-runCtx.Done():
							return
						}
					}
				}
			}(ti, w, t)
		}
	}
	wg.Wait()
	pprofWG.Wait()

	rep := col.report(p, target)
	rep.WallSeconds = time.Since(start).Seconds()

	// Scrape the server's own SLO series into the report before shutdown.
	if text, err := fetchText(context.Background(), client, target+"/metrics"); err != nil {
		logf("load: metrics scrape failed: %v", err)
	} else {
		rep.Server = parseServerStats(text)
	}
	if shutdown != nil {
		if err := shutdown(); err != nil {
			return nil, fmt.Errorf("load: server shutdown: %w", err)
		}
	}
	if pprofErr != nil {
		logf("load: pprof capture: %v", pprofErr)
	}

	rep.Violations = Assert(rep, p.SLO)
	rep.Pass = len(rep.Violations) == 0
	return rep, nil
}

// inBurst reports whether elapsed time t falls inside a burst window.
func inBurst(t time.Duration, b Burst) bool {
	if b.Every <= 0 || b.Length <= 0 || b.Factor <= 1 {
		return false
	}
	return t%b.Every < b.Length
}

// workerSeed derives a stable per-worker PRNG seed from the profile seed.
func workerSeed(seed int64, tenant string, worker int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s/%d", tenant, worker)
	return seed ^ int64(h.Sum64())
}

// request is one generated request, ready to issue.
type request struct {
	route string
	body  []byte
}

func (r request) do(ctx context.Context, client *http.Client, target, tenant string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+r.route, bytes.NewReader(r.body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	// Drain so the connection is reused; the stats only need the code.
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // best-effort drain
	resp.Body.Close()              //nolint:errcheck
	return resp.StatusCode, nil
}

// generator turns PRNG draws into concrete requests over a fixed,
// seed-derived point pool.
type generator struct {
	points []explore.Point
	bodies [][]byte // pre-marshaled simulate bodies, 1:1 with points
}

func newGenerator(p Profile) *generator {
	rng := rand.New(rand.NewSource(p.Seed))
	g := &generator{}
	seen := make(map[string]bool)
	for len(g.points) < p.Points {
		pt := explore.Point{
			Scheduler:     p.Schedulers[rng.Intn(len(p.Schedulers))],
			NumACs:        1 + rng.Intn(p.MaxACs),
			Frames:        p.Frames,
			SeedForecasts: true,
		}
		if pt.Scheduler == "software" {
			pt.NumACs = 0
		}
		key := pt.Normalized().Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		g.points = append(g.points, pt)
		body, err := json.Marshal(serve.SimulateRequest{Point: pt})
		if err != nil {
			panic(err) // static struct; cannot fail
		}
		g.bodies = append(g.bodies, body)
	}
	return g
}

// next draws one request for tenant t from rng. The draw order is fixed
// per worker: endpoint first, then the endpoint-specific parameters.
func (g *generator) next(rng *rand.Rand, t Tenant) request {
	total := t.Mix.Simulate + t.Mix.Explore + t.Mix.Suggest
	x := rng.Float64() * total
	switch {
	case x < t.Mix.Simulate:
		i := rng.Intn(len(g.points))
		return request{route: "/v1/simulate", body: g.bodies[i]}
	case x < t.Mix.Simulate+t.Mix.Explore:
		// A small sweep: 3 consecutive pool points (batch class).
		i := rng.Intn(len(g.points))
		pts := make([]explore.Point, 0, 3)
		for k := 0; k < 3; k++ {
			pts = append(pts, g.points[(i+k)%len(g.points)])
		}
		body, err := json.Marshal(serve.ExploreRequest{Spec: explore.Spec{Points: pts}})
		if err != nil {
			panic(err)
		}
		return request{route: "/v1/explore", body: body}
	default:
		body, err := json.Marshal(search.SuggestRequest{
			Strategy: "random",
			Seed:     rng.Int63(),
			Count:    4,
			Spec: explore.Spec{
				Schedulers: []string{"HEF", "Molen", "software"},
				ACs:        []int{4, 6, 8, 10},
				Frames:     []int{g.pointsFrames()},
			},
		})
		if err != nil {
			panic(err)
		}
		return request{route: "/v1/suggest", body: body}
	}
}

func (g *generator) pointsFrames() int { return g.points[0].Frames }

// fetchText GETs a URL and returns its body as a string.
func fetchText(ctx context.Context, client *http.Client, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// fetchPprof saves a CPU profile spanning most of the run plus a heap
// snapshot into dir. The target must have pprof enabled.
func fetchPprof(ctx context.Context, client *http.Client, target, dir string, dur time.Duration) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	secs := int(dur.Seconds()) - 2 // leave room to finish before the run ends
	if secs < 1 {
		secs = 1
	}
	save := func(url, name string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		c := *client
		c.Timeout = dur + 15*time.Second // CPU profile blocks for secs
		resp, err := c.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if _, err := io.Copy(f, resp.Body); err != nil {
			f.Close() //nolint:errcheck
			return err
		}
		return f.Close()
	}
	if err := save(fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", target, secs), "cpu.pprof"); err != nil {
		return err
	}
	return save(target+"/debug/pprof/heap", "heap.pprof")
}
