package load

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"rispp"
	"rispp/internal/explore"
	"rispp/internal/fabric"
	"rispp/internal/serve"
)

// FleetProfile configures a distributed-sweep correctness run: K in-process
// risppserve workers behind one coordinator, a sweep sharded across them
// with one worker killed mid-stream, and the merged output held to byte
// parity with a single-process sweep of the same spec.
type FleetProfile struct {
	// Workers is the fleet size (3 if <= 0).
	Workers int `json:"workers"`
	// Spec is the sweep; empty selects a 24-point scheduler × budget grid at
	// 2 frames.
	Spec explore.Spec `json:"spec"`
	// KillWorker, when true (the default via RunFleet), hard-kills one
	// worker — connections dropped mid-stream, no drain — after
	// KillAfterLines merged records have arrived.
	KillWorker bool `json:"kill_worker"`
	// KillAfterLines counts merged records before the kill (1 if <= 0).
	KillAfterLines int `json:"kill_after_lines"`
	// CacheDir roots the per-node cache directories; empty uses a temp dir.
	CacheDir string `json:"cache_dir,omitempty"`
}

// FleetReport is the outcome of RunFleet.
type FleetReport struct {
	Points  int    `json:"points"`
	Workers int    `json:"workers"`
	Killed  string `json:"killed,omitempty"`
	// ColdLines / WarmLines count merged records of the two sweeps (both
	// must equal Points for a complete run).
	ColdLines int `json:"cold_lines"`
	WarmLines int `json:"warm_lines"`
	// ParityOK: both fleet streams are byte-identical to the single-process
	// stream.
	ParityOK bool `json:"parity_ok"`
	// ColdSimulated counts fleet-wide simulator runs of the first sweep;
	// WarmSimulated counts the second sweep's (must be 0 — every point is in
	// the shared cache tier).
	ColdSimulated int64 `json:"cold_simulated"`
	WarmSimulated int64 `json:"warm_simulated"`
	// ShardRetries / WorkerFailures are the coordinator's lifetime counters.
	ShardRetries   int64 `json:"shard_retries"`
	WorkerFailures int64 `json:"worker_failures"`

	Pass       bool     `json:"pass"`
	Violations []string `json:"violations,omitempty"`
}

func (p FleetProfile) withDefaults() FleetProfile {
	if p.Workers <= 0 {
		p.Workers = 3
	}
	if p.KillAfterLines <= 0 {
		p.KillAfterLines = 1
	}
	if specEmpty(p.Spec) {
		p.Spec = explore.Spec{
			Schedulers: []string{"HEF", "Molen", "SJF", "software"},
			ACs:        []int{2, 4, 6, 8, 10, 12},
			Frames:     []int{2},
		}
	}
	return p
}

// specEmpty reports whether the spec is entirely empty (an empty spec
// expands to no points).
func specEmpty(s explore.Spec) bool {
	pts, err := s.Expand()
	return err == nil && len(pts) == 0
}

// fleetNode is one spawned serve process stand-in: a handler behind a real
// loopback listener, plus the http.Server that can hard-kill its
// connections.
type fleetNode struct {
	id   string
	hs   *http.Server
	url  string
	dead bool
}

func (n *fleetNode) kill() {
	n.dead = true
	n.hs.Close() //nolint:errcheck // hard kill: listeners and live conns drop
}

// spawnNode starts a serve handler on a loopback port with an abrupt-kill
// handle.
func spawnNode(srv *serve.Server) (*fleetNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("load: fleet listener: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // ends via Close
	return &fleetNode{hs: hs, url: "http://" + ln.Addr().String()}, nil
}

// RunFleet executes the distributed-sweep correctness scenario and reduces
// it to a FleetReport: harness failures are errors, assertion failures are
// Violations with Pass=false. It is the teeth behind the CI fabric-smoke
// job.
func RunFleet(ctx context.Context, p FleetProfile, logf func(string, ...any)) (*FleetReport, error) {
	p = p.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	points, err := p.Spec.Expand()
	if err != nil {
		return nil, fmt.Errorf("load: fleet spec: %w", err)
	}
	rep := &FleetReport{Points: len(points), Workers: p.Workers}

	cacheRoot := p.CacheDir
	if cacheRoot == "" {
		dir, err := os.MkdirTemp("", "rispp-fleet-*")
		if err != nil {
			return nil, fmt.Errorf("load: fleet cache root: %w", err)
		}
		defer os.RemoveAll(dir) //nolint:errcheck // best-effort cleanup
		cacheRoot = dir
	}
	quiet := func(string, ...any) {}

	// Coordinator node: fleet registry plus the shared cache tier.
	coordCache, err := explore.OpenCache(cacheRoot + "/coordinator")
	if err != nil {
		return nil, fmt.Errorf("load: %w", err)
	}
	coord := fabric.NewCoordinator()
	coord.Logf = logf
	coordSrv := serve.New(serve.Config{}, rispp.Config{})
	coordSrv.Logf = quiet
	coordSrv.SetExploreCache(coordCache)
	coordSrv.SetCoordinator(coord)
	coordNode, err := spawnNode(coordSrv)
	if err != nil {
		return nil, err
	}
	defer coordNode.kill()

	// Worker nodes: tiered store through the coordinator's cache.
	var nodes []*fleetNode
	for i := 0; i < p.Workers; i++ {
		local, err := explore.OpenCache(fmt.Sprintf("%s/w%d", cacheRoot, i+1))
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		ws := serve.New(serve.Config{}, rispp.Config{})
		ws.Logf = quiet
		ws.SetExploreStore(&fabric.Tiered{Local: local, Peer: fabric.NewPeer(coordNode.url)}, local)
		node, err := spawnNode(ws)
		if err != nil {
			return nil, err
		}
		node.id = fmt.Sprintf("w%d", i+1)
		defer node.kill()
		nodes = append(nodes, node)
		if err := coord.Register(node.id, node.url); err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
	}

	// Single-process ground truth.
	refSrv := serve.New(serve.Config{}, rispp.Config{})
	refSrv.Logf = quiet
	refNode, err := spawnNode(refSrv)
	if err != nil {
		return nil, err
	}
	defer refNode.kill()
	want, _, err := fleetSweep(ctx, refNode.url, p.Spec, nil)
	if err != nil {
		return nil, fmt.Errorf("load: reference sweep: %w", err)
	}

	// Cold fleet sweep, killing one worker mid-stream. The victim is the
	// owner of the last point in canonical order: its shard cannot be fully
	// merged when the first line arrives, so the kill always lands while the
	// fleet still owes it work.
	var victim *fleetNode
	if p.KillWorker {
		ids := make([]string, len(nodes))
		for i, n := range nodes {
			ids[i] = n.id
		}
		owner := fabric.Owner(points[len(points)-1].Hash64(), ids)
		for _, n := range nodes {
			if n.id == owner {
				victim = n
			}
		}
		rep.Killed = victim.id
	}
	cold, coldLines, err := fleetSweep(ctx, coordNode.url, p.Spec, func(line int) {
		if victim != nil && line == p.KillAfterLines && !victim.dead {
			logf("load: killing worker %s after %d merged lines", victim.id, line)
			victim.kill()
		}
	})
	if err != nil {
		return nil, fmt.Errorf("load: cold fleet sweep: %w", err)
	}
	rep.ColdLines = coldLines
	rep.ColdSimulated = fleetSimulated(ctx, nodes)

	// Warm fleet sweep over the survivors: the shared cache tier must answer
	// every point.
	warm, warmLines, err := fleetSweep(ctx, coordNode.url, p.Spec, nil)
	if err != nil {
		return nil, fmt.Errorf("load: warm fleet sweep: %w", err)
	}
	rep.WarmLines = warmLines
	rep.WarmSimulated = fleetSimulated(ctx, nodes) - rep.ColdSimulated
	rep.ShardRetries, rep.WorkerFailures = coord.Stats()

	rep.ParityOK = bytes.Equal(cold, want) && bytes.Equal(warm, want)
	if !rep.ParityOK {
		if !bytes.Equal(cold, want) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("cold fleet stream differs from single-process stream (%d vs %d bytes)", len(cold), len(want)))
		}
		if !bytes.Equal(warm, want) {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("warm fleet stream differs from single-process stream (%d vs %d bytes)", len(warm), len(want)))
		}
	}
	if coldLines != len(points) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("cold sweep incomplete: %d of %d records", coldLines, len(points)))
	}
	if warmLines != len(points) {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("warm sweep incomplete: %d of %d records", warmLines, len(points)))
	}
	if rep.WarmSimulated != 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("warm sweep re-simulated %d points fleet-wide, want 0", rep.WarmSimulated))
	}
	if p.KillWorker && rep.WorkerFailures == 0 {
		rep.Violations = append(rep.Violations, "worker kill was not observed by the coordinator")
	}
	rep.Pass = len(rep.Violations) == 0
	return rep, nil
}

// fleetSweep posts the spec to target's /v1/explore and returns the raw
// JSONL stream plus its record count. onLine, when non-nil, runs after
// every received record with the 1-based count — the kill hook.
func fleetSweep(ctx context.Context, target string, spec explore.Spec, onLine func(int)) ([]byte, int, error) {
	body, err := marshalSpec(spec)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+"/v1/explore", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("explore status %d", resp.StatusCode)
	}
	var out bytes.Buffer
	rd := bufio.NewReader(resp.Body)
	lines := 0
	for {
		line, err := rd.ReadBytes('\n')
		out.Write(line)
		if len(line) > 0 && line[len(line)-1] == '\n' {
			lines++
			if onLine != nil {
				onLine(lines)
			}
		}
		if err != nil {
			break
		}
	}
	return out.Bytes(), lines, nil
}

func marshalSpec(spec explore.Spec) ([]byte, error) {
	body, err := json.Marshal(serve.ExploreRequest{Spec: spec})
	if err != nil {
		return nil, fmt.Errorf("load: marshal spec: %w", err)
	}
	return body, nil
}

// fleetSimulated sums rispp_explore_simulated_total across the live nodes.
// Dead nodes contribute nothing — they are not running sweeps either.
func fleetSimulated(ctx context.Context, nodes []*fleetNode) int64 {
	client := &http.Client{Timeout: 5 * time.Second}
	var total int64
	for _, n := range nodes {
		if n.dead {
			continue
		}
		text, err := fetchText(ctx, client, n.url+"/metrics")
		if err != nil {
			continue
		}
		for _, line := range strings.Split(text, "\n") {
			if name, _, v, ok := parseLine(line); ok && name == "rispp_explore_simulated_total" {
				total += int64(v)
			}
		}
	}
	return total
}
