package load

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestAssertInjectedBugsFailTheRun is the CI-gate contract: a report
// showing a quota bug (runaway sheds), a fairness bug (one tenant starved)
// or server errors must produce violations — which cmd/risppload turns
// into a nonzero exit — while a healthy report passes the same SLO.
func TestAssertInjectedBugsFailTheRun(t *testing.T) {
	slo := SLO{
		MaxP99SimulateMS:   2000,
		MaxShedRate:        0.05,
		AssertServerErrors: true,
		MinFairness:        0.25,
	}
	healthy := func() *Report {
		return &Report{
			Routes: map[string]*EndpointStats{
				"/v1/simulate": {Requests: 1000, OK: 990, P99MS: 120},
			},
			Tenants: map[string]*TenantReport{
				"gold":   {Weight: 3, WeightedShare: 100, Total: EndpointStats{Requests: 600}},
				"bronze": {Weight: 1, WeightedShare: 95, Total: EndpointStats{Requests: 200}},
			},
			Total:    EndpointStats{Requests: 1200, OK: 1150, Shed: 50},
			ShedRate: 0.04,
			Fairness: 0.95,
		}
	}

	if v := Assert(healthy(), slo); len(v) != 0 {
		t.Fatalf("healthy report should pass, got violations %v", v)
	}

	cases := []struct {
		name   string
		mutate func(*Report)
		want   string // substring of the expected violation
	}{
		{
			// A broken quota (e.g. refill never happens) sheds far beyond
			// the SLO rate.
			name:   "quota bug: runaway sheds",
			mutate: func(r *Report) { r.ShedRate = 0.40 },
			want:   "shed rate",
		},
		{
			// A broken scheduler starves the low-weight tenant: its
			// weighted share collapses relative to the other tenant's.
			name: "fairness bug: bronze starved",
			mutate: func(r *Report) {
				r.Fairness = 0.02
				r.Tenants["bronze"].WeightedShare = 2
			},
			want: "fairness",
		},
		{
			name:   "server errors",
			mutate: func(r *Report) { r.Total.Errors5x = 3 },
			want:   "5xx",
		},
		{
			name: "tail latency blowout",
			mutate: func(r *Report) {
				r.Routes["/v1/simulate"].P99MS = 9000
			},
			want: "p99",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := healthy()
			tc.mutate(rep)
			v := Assert(rep, slo)
			if len(v) == 0 {
				t.Fatalf("injected bug produced no violation")
			}
			found := false
			for _, line := range v {
				if strings.Contains(line, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("violations %v missing %q", v, tc.want)
			}
		})
	}
}

func TestQuantile(t *testing.T) {
	cases := []struct {
		pop  []float64
		q    float64
		want float64
	}{
		{nil, 0.99, 0},
		{[]float64{5}, 0.5, 5},
		{[]float64{1, 2, 3, 4}, 0.5, 2},
		{[]float64{1, 2, 3, 4}, 0.99, 4},
		{[]float64{1, 2, 3, 4}, 0.25, 1},
	}
	for _, tc := range cases {
		if got := quantile(tc.pop, tc.q); got != tc.want {
			t.Errorf("quantile(%v, %g) = %g, want %g", tc.pop, tc.q, got, tc.want)
		}
	}
}

func TestHistQuantile(t *testing.T) {
	// 100 observations: 50 ≤ 1ms, 90 ≤ 5ms, 100 ≤ 25ms.
	bounds := []float64{0.001, 0.005, 0.025}
	cum := []int64{50, 90, 100}
	p50 := histQuantile(bounds, cum, 100, 0.50)
	if p50 <= 0 || p50 > 0.001 {
		t.Errorf("p50 = %g, want within (0, 0.001]", p50)
	}
	p99 := histQuantile(bounds, cum, 100, 0.99)
	if p99 <= 0.005 || p99 > 0.025 {
		t.Errorf("p99 = %g, want within (0.005, 0.025]", p99)
	}
	if got := histQuantile(nil, nil, 0, 0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
}

func TestParseServerStats(t *testing.T) {
	text := `# HELP rispp_tenant_shed_total Requests rejected.
# TYPE rispp_tenant_shed_total counter
rispp_tenant_shed_total{tenant="bronze",reason="rate"} 7
rispp_tenant_shed_total{tenant="gold",reason="queue"} 2
rispp_tenant_admitted_total{tenant="gold",class="interactive"} 41
rispp_qos_queue_depth{class="batch"} 3
rispp_runtime_pool_total{outcome="hit"} 90
rispp_runtime_pool_total{outcome="miss"} 10
rispp_endpoint_latency_seconds_bucket{route="/v1/simulate",le="0.001"} 50
rispp_endpoint_latency_seconds_bucket{route="/v1/simulate",le="0.005"} 90
rispp_endpoint_latency_seconds_bucket{route="/v1/simulate",le="+Inf"} 100
rispp_endpoint_latency_seconds_count{route="/v1/simulate"} 100
`
	st := parseServerStats(text)
	if st.TenantSheds["bronze/rate"] != 7 || st.TenantSheds["gold/queue"] != 2 {
		t.Errorf("sheds = %v", st.TenantSheds)
	}
	if st.TenantAdmits["gold/interactive"] != 41 {
		t.Errorf("admits = %v", st.TenantAdmits)
	}
	if st.QueueDepth["batch"] != 3 {
		t.Errorf("queue depth = %v", st.QueueDepth)
	}
	if st.PoolHits != 90 || st.PoolMisses != 10 {
		t.Errorf("pool = %d/%d", st.PoolHits, st.PoolMisses)
	}
	p50 := st.EndpointP50MS["/v1/simulate"]
	if p50 <= 0 || p50 > 1 {
		t.Errorf("server p50 = %gms, want within (0, 1]", p50)
	}
}

// TestGeneratorDeterminism: same seed → same request sequence per worker.
func TestGeneratorDeterminism(t *testing.T) {
	p := Quick(42).withDefaults()
	draw := func() []string {
		g := newGenerator(p)
		rngT := p.Tenants[0]
		var seq []string
		rng := newTestRNG(workerSeed(p.Seed, rngT.Name, 0))
		for i := 0; i < 50; i++ {
			r := g.next(rng, rngT)
			seq = append(seq, r.route+"|"+string(r.body))
		}
		return seq
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs between identically seeded runs:\n%s\n%s", i, a[i], b[i])
		}
	}
	// Different seeds must differ somewhere (sanity that the seed matters).
	p2 := p
	p2.Seed = 43
	g2 := newGenerator(p2)
	rng2 := newTestRNG(workerSeed(p2.Seed, p2.Tenants[0].Name, 0))
	same := true
	for i := 0; i < 50; i++ {
		r := g2.next(rng2, p2.Tenants[0])
		if a[i] != r.route+"|"+string(r.body) {
			same = false
			break
		}
	}
	if same {
		t.Error("seed 42 and 43 produced identical request sequences")
	}
}

func TestFairnessEdgeCases(t *testing.T) {
	// Single active tenant is trivially fair.
	rep := &Report{Tenants: map[string]*TenantReport{
		"solo": {Weight: 1, Total: EndpointStats{Requests: 10}},
		"idle": {Weight: 1},
	}}
	if f := fairness(rep, []sample{{tenant: "solo", code: 200, steady: true}}); f != 1 {
		t.Errorf("single-tenant fairness = %g, want 1", f)
	}
	// A fully starved tenant drives fairness to 0.
	rep2 := &Report{Tenants: map[string]*TenantReport{
		"gold":   {Weight: 1, Total: EndpointStats{Requests: 10}},
		"bronze": {Weight: 1, Total: EndpointStats{Requests: 10}},
	}}
	f := fairness(rep2, []sample{
		{tenant: "gold", code: 200, steady: true},
		{tenant: "bronze", code: 429, steady: true},
	})
	if f != 0 {
		t.Errorf("starved-tenant fairness = %g, want 0", f)
	}
	if math.IsNaN(f) {
		t.Error("fairness is NaN")
	}
}

// TestRunEndToEnd drives a short two-tenant profile against an in-process
// server and checks the report is internally consistent and meets the
// loose CI SLOs.
func TestRunEndToEnd(t *testing.T) {
	p := Quick(7)
	p.Duration = 1500 * time.Millisecond
	p.Warmup = 300 * time.Millisecond
	p.Points = 8
	p.Frames = 1
	for i := range p.Tenants {
		p.Tenants[i].Workers = 2
	}
	rep, err := Run(context.Background(), p, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if rep.Total.Errors5x != 0 {
		t.Errorf("%d server errors during soak", rep.Total.Errors5x)
	}
	for _, tenant := range []string{"gold", "bronze"} {
		tr := rep.Tenants[tenant]
		if tr == nil || tr.Total.Requests == 0 {
			t.Errorf("tenant %s issued no requests", tenant)
		}
	}
	if rs := rep.Routes["/v1/simulate"]; rs == nil || rs.OK == 0 {
		t.Error("no successful simulate requests")
	}
	// The scraped server stats must reflect the same traffic the client
	// saw (the acceptance criterion: /metrics series consumed by the
	// report).
	if len(rep.Server.TenantAdmits) == 0 {
		t.Error("report carries no server-side admit series")
	}
	if rep.Server.EndpointP99MS["/v1/simulate"] <= 0 {
		t.Error("report carries no server-side simulate latency quantile")
	}
	if !rep.Pass {
		t.Errorf("short soak failed SLOs: %v", rep.Violations)
	}
}
