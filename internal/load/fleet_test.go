package load

import (
	"context"
	"testing"
	"time"

	"rispp/internal/explore"
)

// TestRunFleet is satellite coverage for the fabric-smoke scenario: a
// 3-worker fleet with one worker killed mid-sweep must still produce a
// complete, byte-identical stream and answer the warm re-run entirely from
// the shared cache tier.
func TestRunFleet(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := RunFleet(ctx, FleetProfile{
		Workers:    3,
		KillWorker: true,
		Spec: explore.Spec{
			Schedulers: []string{"HEF", "Molen", "software"},
			ACs:        []int{2, 6, 10},
			Frames:     []int{2},
		},
		CacheDir: t.TempDir(),
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("fleet run failed: %v", rep.Violations)
	}
	if rep.Killed == "" || rep.WorkerFailures == 0 {
		t.Errorf("kill not exercised: killed=%q failures=%d", rep.Killed, rep.WorkerFailures)
	}
	if rep.ColdSimulated == 0 {
		t.Error("cold sweep reported zero simulations")
	}
	if rep.WarmSimulated != 0 {
		t.Errorf("warm sweep re-simulated %d points", rep.WarmSimulated)
	}
	if rep.ColdLines != rep.Points || rep.WarmLines != rep.Points {
		t.Errorf("incomplete streams: cold=%d warm=%d points=%d", rep.ColdLines, rep.WarmLines, rep.Points)
	}
}

// TestRunFleetNoKill: the quiet path (no induced failure) must also pass
// and observe zero worker failures.
func TestRunFleetNoKill(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := RunFleet(ctx, FleetProfile{
		Workers: 2,
		Spec: explore.Spec{
			Schedulers: []string{"HEF", "SJF"},
			ACs:        []int{4, 8},
			Frames:     []int{2},
		},
		CacheDir: t.TempDir(),
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Fatalf("fleet run failed: %v", rep.Violations)
	}
	if rep.WorkerFailures != 0 {
		t.Errorf("no kill requested but %d worker failures recorded", rep.WorkerFailures)
	}
}
