package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"rispp"
	"rispp/internal/explore"
	"rispp/internal/fabric"
	"rispp/internal/isa"
	"rispp/internal/sim"
)

// Server is the simulation service. Create one with New, expose it via
// Handler (tests, custom listeners) or ListenAndServe, and stop it with
// Shutdown — which drains in-flight simulations before returning.
type Server struct {
	cfg    Config
	isa    *isa.ISA
	runner *rispp.Runner
	qos    *qsched
	cost   *costModel
	cache  *respCache
	met    *metrics
	mux    *http.ServeMux
	logMu  sync.Mutex // serializes AccessLog writes

	// exploreStore optionally backs /v1/explore with a result store:
	// the engine's content-addressed disk cache (SetExploreCache) or a
	// fleet worker's peer-backed tiered store (SetExploreStore). Nil when
	// no cache is configured — never a typed-nil interface.
	exploreStore explore.Store
	// peerCache serves the cache-peer protocol (/v1/cache/{hash}): the raw
	// disk tier other fabric nodes read and fill.
	peerCache *explore.Cache

	// coord, when non-nil, turns this node into a fleet coordinator:
	// /v1/explore sweeps and async jobs shard across its registered
	// workers, and /v1/workers manages the registry.
	coord *fabric.Coordinator
	// jobs is the async sweep store behind /v1/jobs; jobsCtx parents every
	// job's sweep so Shutdown can stop them, and jobsWG is the drain
	// barrier for their background goroutines.
	jobs       *fabric.JobStore
	jobsCtx    context.Context
	jobsCancel context.CancelFunc
	jobsWG     sync.WaitGroup

	// runPoint is the simulation entry point; tests replace it to model
	// slow or failing runs deterministically.
	runPoint func(ctx context.Context, p explore.Point, collect sim.Options, res *sim.Result) error

	closing  atomic.Bool
	inflight sync.WaitGroup // in-flight HTTP requests (drain barrier)
	httpSrv  *http.Server

	// Logf receives operational log lines (startup, shutdown, panics);
	// nil selects log.Printf.
	Logf func(format string, args ...any)
}

// New builds a Server over the paper-default rispp.Config. The base config
// customizes the platform under simulation (ISA, workload, bus model);
// request knobs override its Scheduler/NumACs/workload-knob fields per
// point, exactly as in rispp.Explorer.
func New(cfg Config, base rispp.Config) *Server {
	cfg = cfg.withDefaults()
	runner := rispp.NewRunner(base)
	is := base.ISA
	if is == nil {
		is = isa.H264()
	}
	s := &Server{
		cfg:    cfg,
		isa:    is,
		runner: runner,
		cache:  newRespCache(cfg.CacheEntries),
		met:    newMetrics(),
		mux:    http.NewServeMux(),
	}
	s.qos = newQsched(cfg.Workers, cfg.QoS, s.met)
	s.cost = newCostModel()
	s.runPoint = runner.RunPoint
	s.met.poolStats = runner.RuntimePoolStats
	s.met.queueDepths = s.qos.queueDepths
	s.met.costClasses = s.cost.snapshot
	s.jobs = fabric.NewJobStore(cfg.MaxJobs)
	s.jobsCtx, s.jobsCancel = context.WithCancel(context.Background())
	s.met.jobStats = s.jobs.Counts
	s.mux.HandleFunc("/v1/simulate", s.wrap("/v1/simulate", s.handleSimulate))
	s.mux.HandleFunc("/v1/explore", s.wrap("/v1/explore", s.handleExplore))
	s.mux.HandleFunc("/v1/suggest", s.wrap("/v1/suggest", s.handleSuggest))
	s.mux.HandleFunc("/v1/scenarios", s.wrap("/v1/scenarios", s.handleScenarios))
	s.mux.HandleFunc("/v1/healthz", s.wrap("/v1/healthz", s.handleHealthz))
	s.mux.HandleFunc("/v1/jobs", s.wrap("/v1/jobs", s.handleJobs))
	s.mux.HandleFunc("/v1/jobs/", s.wrap("/v1/jobs/", s.handleJob))
	s.mux.HandleFunc("/v1/cache/", s.wrap("/v1/cache/", s.handleCache))
	s.mux.HandleFunc("/v1/workers", s.wrap("/v1/workers", s.handleWorkers))
	s.mux.Handle("/metrics", s.met)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "no route %s; see /v1/simulate, /v1/explore, /v1/jobs, /v1/suggest, /v1/scenarios, /v1/workers, /v1/healthz, /metrics", r.URL.Path)
	})
	return s
}

// UpdateQoS hot-swaps the multi-tenant policy (quotas, weights, tokens,
// queue depths). In-flight and queued work is unaffected; new admissions
// see the new limits immediately. cmd/risppserve calls this on SIGHUP.
func (s *Server) UpdateQoS(q QoSConfig) {
	s.qos.setConfig(q)
	s.logf("serve: QoS limits updated (%d named tenants)", len(q.Tenants))
}

// qosCfg reads the live QoS policy (which UpdateQoS may have replaced).
func (s *Server) qosCfg() QoSConfig { return s.qos.config() }

// SetExploreCache backs /v1/explore sweeps with a content-addressed disk
// cache (see explore.Cache): re-posted specs only simulate new points. The
// same cache serves the cache-peer endpoints (/v1/cache/{hash}) to other
// fabric nodes. Must be called before the server starts handling requests.
func (s *Server) SetExploreCache(c *explore.Cache) {
	if c == nil {
		return
	}
	s.exploreStore = c
	s.peerCache = c
}

// SetExploreStore backs /v1/explore sweeps with an arbitrary result store —
// a fleet worker installs a fabric.Tiered here so every lookup consults the
// coordinator's cache too. raw, when non-nil, is the disk tier served to
// cache peers (typically the Tiered store's local tier). Must be called
// before the server starts handling requests.
func (s *Server) SetExploreStore(st explore.Store, raw *explore.Cache) {
	if st != nil {
		s.exploreStore = st
	}
	if raw != nil {
		s.peerCache = raw
	}
}

// SetCoordinator turns this node into the fleet coordinator: /v1/explore
// and /v1/jobs sweeps shard across the coordinator's registered workers
// (falling back to local execution while the fleet is empty), and
// /v1/workers manages the registry. Must be called before the server
// starts handling requests.
func (s *Server) SetCoordinator(c *fabric.Coordinator) {
	s.coord = c
	if c != nil {
		if c.Logf == nil {
			c.Logf = s.logf
		}
		s.met.fabricStats = func() (int64, int64, int, int) {
			retries, failures := c.Stats()
			ws := c.Workers()
			live := 0
			for _, w := range ws {
				if w.Alive {
					live++
				}
			}
			return retries, failures, live, len(ws)
		}
	}
}

// Coordinator returns the fleet coordinator, or nil on a plain node.
func (s *Server) Coordinator() *fabric.Coordinator { return s.coord }

// Handler returns the root handler — the full service including metrics,
// drain behavior and panic recovery — for tests and custom servers.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the Prometheus exposition as a string (CLI convenience).
func (s *Server) Metrics() string {
	var b []byte
	w := &byteWriter{&b}
	s.met.write(w)
	return string(b)
}

type byteWriter struct{ b *[]byte }

func (w *byteWriter) Write(p []byte) (int, error) { *w.b = append(*w.b, p...); return len(p), nil }

// statusRecorder captures the status code a handler wrote.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Flush forwards http.Flusher so chunked JSONL streaming works through the
// recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// tenantCtxKey carries the identified tenant through the request context
// to the QoS admission points inside the handlers.
type tenantCtxKey struct{}

// tenantFrom recovers the tenant wrap() identified ("anonymous" when the
// request bypassed wrap, e.g. direct handler tests).
func tenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantCtxKey{}).(string); ok {
		return t
	}
	return "anonymous"
}

// wrap is the per-route middleware: tenant identification, drain gate,
// in-flight accounting, panic-to-500 recovery, request metrics and the
// structured access log.
func (s *Server) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tenant := s.tenantOf(r.Header)
		r = r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tenant))
		rec := &statusRecorder{ResponseWriter: w}
		s.inflight.Add(1)
		defer func() {
			if p := recover(); p != nil {
				s.met.panics.Add(1)
				s.logf("serve: panic in %s: %v", route, p)
				if rec.code == 0 {
					writeError(rec, http.StatusInternalServerError, "internal error")
				}
			}
			d := time.Since(start)
			s.met.request(route, rec.code, d)
			s.logAccess(route, tenant, rec, d)
			s.inflight.Done()
		}()
		// The health endpoint stays up while draining (it reports the
		// drain); everything else sheds immediately.
		if s.closing.Load() && route != "/v1/healthz" {
			writeError(rec, http.StatusServiceUnavailable, "server draining")
			return
		}
		h(rec, r)
	}
}

// accessRecord is one structured request-log line.
type accessRecord struct {
	Time   string  `json:"t"`
	Route  string  `json:"route"`
	Tenant string  `json:"tenant"`
	Class  string  `json:"class"`
	Code   int     `json:"code"`
	Millis float64 `json:"ms"`
	Cache  string  `json:"cache,omitempty"`
}

// logAccess emits one JSON line per completed request when an access log
// is configured.
func (s *Server) logAccess(route, tenant string, rec *statusRecorder, d time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	line, err := json.Marshal(accessRecord{
		Time:   time.Now().UTC().Format(time.RFC3339Nano),
		Route:  route,
		Tenant: tenant,
		Class:  className(routeClass(route)),
		Code:   rec.code,
		Millis: float64(d) / float64(time.Millisecond),
		Cache:  rec.Header().Get("X-Cache"),
	})
	if err != nil {
		return // plain scalars; cannot fail
	}
	line = append(line, '\n')
	s.logMu.Lock()
	s.cfg.AccessLog.Write(line) //nolint:errcheck // logging is best-effort
	s.logMu.Unlock()
}

// routeClass maps a route to its QoS priority class: the interactive
// endpoint is /v1/simulate; sweeps and search proposals are batch.
func routeClass(route string) int {
	if route == "/v1/simulate" || route == "/v1/healthz" {
		return classInteractive
	}
	return classBatch
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// ListenAndServe serves on cfg.Addr until Shutdown (which returns
// http.ErrServerClosed here) or a listener error.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return s.Serve(ln)
}

// Serve serves on an existing listener.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.httpSrv = srv
	s.logf("serve: listening on %s (%d simulation slots)", ln.Addr(), s.cfg.Workers)
	return srv.Serve(ln)
}

// Shutdown drains the server: new requests are answered 503 immediately,
// async jobs are canceled (they are resumable by re-posting, not worth
// holding the drain for), in-flight requests (and their simulations) run
// to completion, then the HTTP listener closes. The context bounds the
// drain; on expiry the remaining requests are abandoned and ctx's error
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closing.Store(true)
	s.jobsCancel()
	s.jobs.CancelAll()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		s.jobsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		if s.httpSrv != nil {
			s.httpSrv.Close() //nolint:errcheck // already returning ctx error
		}
		return ctx.Err()
	}
	if s.httpSrv != nil {
		return s.httpSrv.Shutdown(ctx)
	}
	return nil
}
