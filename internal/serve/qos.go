package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"rispp/internal/explore"
)

// This file is the multi-tenant QoS layer: who a request belongs to
// (tenant identification), whether it may run at all (admission control:
// per-tenant concurrency quotas and a cost-rate token bucket), and when it
// runs (start-time fair queueing over the simulation-slot pool with two
// priority classes). The scarce resource being arbitrated is exactly the
// paper's: a fixed pool of "fabric" slots time-shared by competing
// demands — the serving layer applies the same discipline fleet-wide that
// the run-time system applies per-cycle.

// Request priority classes. Interactive requests (/v1/simulate) are
// latency-sensitive and always dispatch before batch work; batch requests
// (/v1/explore jobs, /v1/suggest) are throughput work that queues.
const (
	classInteractive = 0
	classBatch       = 1
	numClasses       = 2
)

func className(class int) string {
	if class == classInteractive {
		return "interactive"
	}
	return "batch"
}

// TenantLimits are one tenant's QoS knobs. The zero value means
// "unlimited, weight 1" — the open default that keeps single-tenant
// deployments behaving exactly like the pre-QoS server.
type TenantLimits struct {
	// Weight is the WFQ share (default 1). A weight-3 tenant gets 3x the
	// slot time of a weight-1 tenant when both have queued demand.
	Weight int `json:"weight,omitempty"`
	// MaxInFlight caps slots held concurrently (0 = unlimited).
	MaxInFlight int `json:"max_inflight,omitempty"`
	// MaxQueue caps waiting requests per class (0 = server default).
	MaxQueue int `json:"max_queue,omitempty"`
	// CostPerSec refills the admission token bucket, in cost units
	// (predicted simulation microseconds) per second; 0 = unlimited.
	CostPerSec float64 `json:"cost_per_sec,omitempty"`
	// Burst is the bucket capacity (0 = 2 seconds of refill).
	Burst float64 `json:"burst,omitempty"`
}

func (l TenantLimits) weight() float64 {
	if l.Weight <= 0 {
		return 1
	}
	return float64(l.Weight)
}

func (l TenantLimits) burst() float64 {
	if l.Burst > 0 {
		return l.Burst
	}
	return 2 * l.CostPerSec
}

// QoSConfig is the multi-tenant policy: named tenant limits, the default
// for unknown tenants, bearer-token identities, and the pool-sharing
// knobs. The zero value reproduces the pre-QoS behavior (one anonymous
// tenant, immediate shed on saturation, no quotas).
type QoSConfig struct {
	// Tenants maps tenant name → limits.
	Tenants map[string]TenantLimits `json:"tenants,omitempty"`
	// Default applies to tenants not in Tenants.
	Default TenantLimits `json:"default,omitempty"`
	// Tokens maps "Authorization: Bearer <token>" values to tenant names.
	// Requests may also self-identify with the X-Tenant header.
	Tokens map[string]string `json:"tokens,omitempty"`
	// InteractiveQueue is the default per-tenant queue depth for
	// interactive requests when no slot is free; 0 sheds immediately
	// (the pre-QoS 429 behavior).
	InteractiveQueue int `json:"interactive_queue,omitempty"`
	// BatchQueue is the default per-tenant queue depth for batch jobs
	// (0 = 4096).
	BatchQueue int `json:"batch_queue,omitempty"`
	// InteractiveReserve keeps this many slots unavailable to batch work
	// so an interactive request never waits behind a pool full of sweep
	// jobs (0 = no reservation).
	InteractiveReserve int `json:"interactive_reserve,omitempty"`
}

// limitsFor resolves the effective limits of a tenant.
func (q QoSConfig) limitsFor(name string) TenantLimits {
	if l, ok := q.Tenants[name]; ok {
		return l
	}
	return q.Default
}

// tenantOf identifies the requesting tenant: an explicit X-Tenant header
// wins, then a configured bearer token, then the anonymous default. Names
// are sanitized (length-capped, label-safe charset) because they become
// metric label values.
func (s *Server) tenantOf(h interface{ Get(string) string }) string {
	if t := h.Get("X-Tenant"); t != "" {
		return sanitizeTenant(t)
	}
	if ah := h.Get("Authorization"); strings.HasPrefix(ah, "Bearer ") {
		if name, ok := s.qosCfg().Tokens[strings.TrimPrefix(ah, "Bearer ")]; ok {
			return sanitizeTenant(name)
		}
	}
	return "anonymous"
}

func sanitizeTenant(t string) string {
	if len(t) > 32 {
		t = t[:32]
	}
	b := []byte(t)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// shedError is an admission/scheduling rejection; handlers map it to 429
// with the embedded Retry-After hint.
type shedError struct {
	reason     string // "saturated" | "queue" | "quota" | "rate"
	retryAfter time.Duration
	detail     string
}

func (e *shedError) Error() string { return "serve: shed (" + e.reason + "): " + e.detail }

// costClass buckets a design point into the cost class its admission
// price is learned under. The dominant cost driver is the workload size
// (simulated cycles scale with Frames) and the run-time system; the class
// string is derived from the point's canonical Key() fields so equal
// points always share a class.
func costClass(p explore.Point) string {
	p = p.Normalized()
	// Frames bucket: powers-of-two-ish decades keep the class count small
	// while separating 1-frame smoke points from full 140-frame runs.
	b := 1
	for b < p.Frames && b < 1<<20 {
		b <<= 1
	}
	return p.Scheduler + "/f" + strconv.Itoa(b)
}

// costModel learns per-class simulation cost (in microseconds) from
// measured runs. Predictions drive both the WFQ service amount and the
// token-bucket admission charge; until a class has been observed the
// prior is proportional to the frame count.
type costModel struct {
	mu      sync.Mutex
	classes map[string]float64 // class → EWMA cost, µs
}

func newCostModel() *costModel { return &costModel{classes: make(map[string]float64)} }

const costEWMAAlpha = 0.2

// predict returns the admission cost of a point in µs (≥ 1).
func (c *costModel) predict(p explore.Point) float64 {
	class := costClass(p)
	c.mu.Lock()
	v, ok := c.classes[class]
	c.mu.Unlock()
	if ok {
		return v
	}
	// Prior: ~0.4µs per frame of compiled-trace walk, floored at 1µs.
	p = p.Normalized()
	prior := 0.4 * float64(p.Frames)
	if prior < 1 {
		prior = 1
	}
	return prior
}

// observe folds a measured run into the class EWMA.
func (c *costModel) observe(p explore.Point, d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	if us < 1 {
		us = 1
	}
	class := costClass(p)
	c.mu.Lock()
	if v, ok := c.classes[class]; ok {
		c.classes[class] = v + costEWMAAlpha*(us-v)
	} else {
		c.classes[class] = us
	}
	c.mu.Unlock()
}

// snapshot returns the learned classes in map form (metrics export).
func (c *costModel) snapshot() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.classes))
	for k, v := range c.classes {
		out[k] = v
	}
	return out
}

// waiter is one queued acquisition. ready is closed exactly once when the
// scheduler dispatches the waiter (slot charged to its tenant).
type waiter struct {
	tenant *tenantState
	class  int
	cost   float64
	vstart float64
	ready  chan struct{}
	// state transitions under qsched.mu: waiting → dispatched | canceled.
	state int
}

const (
	waiting = iota
	dispatched
	canceled
)

// tenantState is the scheduler's per-tenant book-keeping.
type tenantState struct {
	name     string
	lim      TenantLimits
	inflight int
	vfinish  float64 // WFQ virtual finish time of the last admitted request
	bucket   float64 // admission tokens (cost units)
	bucketAt time.Time
	queues   [numClasses][]*waiter
}

// qsched arbitrates the simulation-slot pool: a start-time fair queueing
// (SFQ) scheduler with strict priority between the two classes, per-tenant
// concurrency quotas and bounded per-tenant queues. All state is under one
// mutex; dispatch work per release is O(active tenants).
type qsched struct {
	mu        sync.Mutex
	slots     int
	used      int
	batchUsed int
	cfg       QoSConfig
	vtime     float64 // global virtual time (vstart of last dispatch)
	tenants   map[string]*tenantState
	met       *metrics // per-tenant shed/admit counters; may be nil in unit tests
	now       func() time.Time
}

func newQsched(slots int, cfg QoSConfig, met *metrics) *qsched {
	return &qsched{
		slots:   slots,
		cfg:     cfg,
		tenants: make(map[string]*tenantState),
		met:     met,
		now:     time.Now,
	}
}

// maxTenantStates caps the tenant table so an attacker cycling X-Tenant
// values cannot grow server memory or metric cardinality without bound;
// past the cap all new names share one overflow tenant (default limits).
const maxTenantStates = 64

func (q *qsched) tenantLocked(name string) *tenantState {
	if ts, ok := q.tenants[name]; ok {
		return ts
	}
	if len(q.tenants) >= maxTenantStates {
		name = "_overflow"
		if ts, ok := q.tenants[name]; ok {
			return ts
		}
	}
	ts := &tenantState{name: name, lim: q.cfg.limitsFor(name), bucketAt: q.now()}
	ts.bucket = ts.lim.burst()
	q.tenants[name] = ts
	return ts
}

// setConfig hot-swaps the QoS policy: limits of existing tenants are
// re-resolved, queued work keeps its position, in-flight work is
// unaffected. Shrinking a quota never cancels running requests — it only
// gates new admissions.
func (q *qsched) setConfig(cfg QoSConfig) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.cfg = cfg
	for name, ts := range q.tenants {
		old := ts.lim
		ts.lim = cfg.limitsFor(name)
		if ts.lim.burst() != old.burst() && ts.bucket > ts.lim.burst() {
			ts.bucket = ts.lim.burst()
		}
	}
	q.dispatchLocked()
}

func (q *qsched) config() QoSConfig {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.cfg
}

// refillLocked advances a tenant's token bucket to now.
func (ts *tenantState) refillLocked(now time.Time) {
	if ts.lim.CostPerSec <= 0 {
		return
	}
	dt := now.Sub(ts.bucketAt).Seconds()
	if dt > 0 {
		ts.bucket += dt * ts.lim.CostPerSec
		if max := ts.lim.burst(); ts.bucket > max {
			ts.bucket = max
		}
	}
	ts.bucketAt = now
}

// admit charges cost units against the tenant's rate bucket. It is the
// admission-control half of QoS: callers charge once per unit of accepted
// work (one simulate run, one whole sweep) before scheduling it. A nil
// error means the charge was taken.
func (q *qsched) admit(tenant string, cost float64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	ts := q.tenantLocked(tenant)
	if ts.lim.CostPerSec <= 0 {
		return nil
	}
	ts.refillLocked(q.now())
	if ts.bucket >= cost {
		ts.bucket -= cost
		return nil
	}
	deficit := cost - ts.bucket
	retry := time.Duration(deficit / ts.lim.CostPerSec * float64(time.Second))
	if retry < time.Second {
		retry = time.Second
	}
	q.shedLocked(ts.name, "rate")
	return &shedError{reason: "rate", retryAfter: retry,
		detail: fmt.Sprintf("tenant %s over cost budget (%.0f units short)", ts.name, deficit)}
}

func (q *qsched) shedLocked(tenant, reason string) {
	if q.met != nil {
		q.met.tenantShed(tenant, reason)
	}
}

// queueCap resolves the waiting-line depth for a tenant and class.
func (q *qsched) queueCapLocked(ts *tenantState, class int) int {
	if ts.lim.MaxQueue > 0 {
		return ts.lim.MaxQueue
	}
	if class == classInteractive {
		return q.cfg.InteractiveQueue
	}
	if q.cfg.BatchQueue > 0 {
		return q.cfg.BatchQueue
	}
	return 4096
}

// eligibleLocked reports whether the tenant's head-of-line waiter in class
// could be dispatched right now (quota headroom; the caller has already
// established pool headroom for the class).
func (ts *tenantState) eligibleLocked() bool {
	return ts.lim.MaxInFlight <= 0 || ts.inflight < ts.lim.MaxInFlight
}

// headLocked returns the first non-canceled waiter of a class queue,
// compacting canceled entries.
func (ts *tenantState) headLocked(class int) *waiter {
	queue := ts.queues[class]
	for len(queue) > 0 && queue[0].state == canceled {
		queue = queue[1:]
	}
	ts.queues[class] = queue
	if len(queue) == 0 {
		return nil
	}
	return queue[0]
}

// dispatchLocked promotes waiters while slots are free: every interactive
// waiter beats every batch waiter (strict priority); within a class, the
// tenant with the smallest virtual start time wins (start-time fairness —
// weighted, starvation-free because vstart is assigned at enqueue time and
// only grows). Batch dispatch additionally respects the interactive slot
// reservation.
func (q *qsched) dispatchLocked() {
	for q.used < q.slots {
		var best *waiter
		for class := 0; class < numClasses; class++ {
			if class == classBatch && q.batchUsed >= q.slots-q.cfg.InteractiveReserve {
				break
			}
			for _, ts := range q.tenants {
				w := ts.headLocked(class)
				if w == nil || !ts.eligibleLocked() {
					continue
				}
				if best == nil || w.vstart < best.vstart ||
					(w.vstart == best.vstart && w.tenant.name < best.tenant.name) {
					best = w
				}
			}
			if best != nil {
				break // strict priority: never look at batch while interactive waits
			}
		}
		if best == nil {
			return
		}
		ts := best.tenant
		ts.queues[best.class] = ts.queues[best.class][1:]
		best.state = dispatched
		q.grantLocked(best)
		close(best.ready)
	}
}

// grantLocked charges a dispatch to the books.
func (q *qsched) grantLocked(w *waiter) {
	q.used++
	if w.class == classBatch {
		q.batchUsed++
	}
	w.tenant.inflight++
	if w.vstart > q.vtime {
		q.vtime = w.vstart
	}
	if q.met != nil {
		q.met.tenantAdmit(w.tenant.name, w.class)
	}
}

// acquire obtains one simulation slot for tenant/class work of the given
// predicted cost. It dispatches immediately when the scheduler would pick
// this request anyway; otherwise it queues (bounded per tenant) and blocks
// until dispatched or ctx is done. Interactive requests with a zero queue
// depth shed immediately — the pre-QoS behavior.
func (q *qsched) acquire(ctx context.Context, tenant string, class int, cost float64) (*waiter, error) {
	q.mu.Lock()
	ts := q.tenantLocked(tenant)
	w := &waiter{
		tenant: ts,
		class:  class,
		cost:   cost,
		ready:  make(chan struct{}),
	}
	// SFQ virtual start: after everything this tenant already admitted,
	// but never before the global virtual clock (an idle tenant does not
	// bank credit from the past).
	w.vstart = ts.vfinish
	if q.vtime > w.vstart {
		w.vstart = q.vtime
	}
	ts.vfinish = w.vstart + cost/ts.lim.weight()

	ts.queues[class] = append(ts.queues[class], w)
	q.dispatchLocked()
	if w.state == dispatched {
		q.mu.Unlock()
		return w, nil
	}
	// Not dispatchable now: enforce the waiting-line bound. The new
	// arrival is by construction the deepest entry in its tenant queue.
	depth := 0
	for _, o := range ts.queues[class] {
		if o.state == waiting {
			depth++
		}
	}
	if cap := q.queueCapLocked(ts, class); depth > cap {
		w.state = canceled
		ts.vfinish -= cost / ts.lim.weight() // un-book the service it never got
		reason := "queue"
		detail := fmt.Sprintf("tenant %s %s queue full (%d waiting)", tenant, className(class), depth-1)
		if cap == 0 {
			if ts.lim.MaxInFlight > 0 && ts.inflight >= ts.lim.MaxInFlight {
				reason, detail = "quota", fmt.Sprintf("tenant %s at max in-flight %d", tenant, ts.lim.MaxInFlight)
			} else {
				reason, detail = "saturated", fmt.Sprintf("all %d simulation slots busy", q.slots)
			}
		}
		q.shedLocked(tenant, reason)
		q.mu.Unlock()
		return nil, &shedError{reason: reason, retryAfter: time.Second, detail: detail}
	}
	q.mu.Unlock()

	select {
	case <-w.ready:
		return w, nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.state == dispatched {
			// Lost the race: the slot is ours; release it and fail.
			q.mu.Unlock()
			q.release(w)
			return nil, ctx.Err()
		}
		w.state = canceled
		q.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns a slot and lets the scheduler hand it to the best
// waiter.
func (q *qsched) release(w *waiter) {
	q.mu.Lock()
	q.used--
	if w.class == classBatch {
		q.batchUsed--
	}
	w.tenant.inflight--
	q.dispatchLocked()
	q.mu.Unlock()
}

// queueDepths reports the current waiting count per class (metrics).
func (q *qsched) queueDepths() [numClasses]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	var d [numClasses]int
	for _, ts := range q.tenants {
		for class := 0; class < numClasses; class++ {
			for _, w := range ts.queues[class] {
				if w.state == waiting {
					d[class]++
				}
			}
		}
	}
	return d
}
