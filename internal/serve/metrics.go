package serve

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds (seconds) of the request-duration
// histogram. One-frame simulations land in the sub-millisecond buckets,
// full 140-frame paper runs in the tens-of-milliseconds range, and large
// exploration sweeps at the top.
var latencyBuckets = [numLatencyBuckets]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

const numLatencyBuckets = 8

// metricRoutes are the routes that get their own latency histogram
// (rispp_endpoint_latency_seconds); anything else folds into "other".
// Fixed-index lookup keeps the hot path allocation-free.
var metricRoutes = [...]string{"/v1/simulate", "/v1/explore", "/v1/suggest", "/v1/healthz", "other"}

const numMetricRoutes = len(metricRoutes)

func routeIndex(route string) int {
	for i, r := range metricRoutes {
		if r == route {
			return i
		}
	}
	return numMetricRoutes - 1
}

// routeHist is one endpoint's latency histogram plus count/sum.
type routeHist struct {
	count  atomic.Int64
	sumNS  atomic.Int64
	bucket [numLatencyBuckets]atomic.Int64
}

func (h *routeHist) observe(d time.Duration) {
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.bucket[i].Add(1)
			break
		}
	}
}

// metrics is the server's instrumentation: a handful of counters, one
// latency histogram and an in-flight gauge, exposed in Prometheus text
// exposition format with nothing but the standard library. All methods are
// safe for concurrent use.
type metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // "route\x00code" → count

	inflight   atomic.Int64 // simulations currently holding a limiter slot
	cacheHits  atomic.Int64 // /v1/simulate response-cache hits
	cacheMiss  atomic.Int64 // /v1/simulate response-cache misses
	engineHits atomic.Int64 // /v1/explore records answered by the result cache
	engineSim  atomic.Int64 // /v1/explore records actually simulated here
	panics     atomic.Int64 // recovered handler panics

	latCount  atomic.Int64
	latSumNS  atomic.Int64
	latBucket [numLatencyBuckets]atomic.Int64 // rendered cumulatively

	// Per-endpoint latency histograms (SLO series: p50/p99 per route are
	// derived from the buckets by the scraper/risppload).
	routeLat [numMetricRoutes]routeHist

	// Multi-tenant QoS series (under mu): shed counts by tenant and
	// reason, dispatched work by tenant and class.
	sheds  map[string]int64 // "tenant\x00reason" → count
	admits map[string]int64 // "tenant\x00class" → count

	// queueDepths, when non-nil, reads the scheduler's waiting counts at
	// scrape time; costClasses reads the learned cost model.
	queueDepths func() [numClasses]int
	costClasses func() map[string]float64

	// Adaptive-search instrumentation (/v1/suggest). suggests counts
	// requests per strategy (under mu); the atomics track the points
	// proposed in total and the front size of the most recent reply.
	suggests      map[string]int64
	suggestPoints atomic.Int64
	frontSize     atomic.Int64

	// poolStats, when non-nil, reads the runner's runtime-pool hit/miss
	// counters at scrape time (the pool lives in rispp.Runner, not here).
	poolStats func() (hits, misses int64)

	// fabricStats, when non-nil (coordinator nodes), reads the sweep
	// fabric's counters at scrape time; jobStats reads the async job store.
	fabricStats func() (shardRetries, workerFailures int64, live, total int)
	jobStats    func() (running, retained int)
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]int64),
		suggests: make(map[string]int64),
		sheds:    make(map[string]int64),
		admits:   make(map[string]int64),
	}
}

// tenantShed records one rejected request (429) by tenant and reason.
func (m *metrics) tenantShed(tenant, reason string) {
	m.mu.Lock()
	m.sheds[tenant+"\x00"+reason]++
	m.mu.Unlock()
}

// tenantAdmit records one dispatched slot acquisition by tenant and class.
func (m *metrics) tenantAdmit(tenant string, class int) {
	m.mu.Lock()
	m.admits[tenant+"\x00"+className(class)]++
	m.mu.Unlock()
}

// suggest records one answered /v1/suggest request.
func (m *metrics) suggest(strategy string, points, front int) {
	m.mu.Lock()
	m.suggests[strategy]++
	m.mu.Unlock()
	m.suggestPoints.Add(int64(points))
	m.frontSize.Store(int64(front))
}

// request records one completed request: its route, status code and wall
// time (aggregate histogram kept for continuity, per-route histogram for
// the SLO series).
func (m *metrics) request(route string, code int, d time.Duration) {
	m.mu.Lock()
	m.requests[route+"\x00"+strconv.Itoa(code)]++
	m.mu.Unlock()
	m.latCount.Add(1)
	m.latSumNS.Add(int64(d))
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			m.latBucket[i].Add(1)
			break
		}
	}
	m.routeLat[routeIndex(route)].observe(d)
}

// write renders the Prometheus text exposition. Series are emitted in a
// deterministic order so scrapes (and tests) are stable.
func (m *metrics) write(w io.Writer) {
	m.mu.Lock()
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	counts := make([]int64, len(keys))
	for i, k := range keys {
		counts[i] = m.requests[k]
	}
	m.mu.Unlock()

	fmt.Fprintf(w, "# HELP rispp_requests_total Completed HTTP requests by route and status code.\n")
	fmt.Fprintf(w, "# TYPE rispp_requests_total counter\n")
	for i, k := range keys {
		route, code, _ := cutByte(k)
		fmt.Fprintf(w, "rispp_requests_total{route=%q,code=%q} %d\n", route, code, counts[i])
	}

	fmt.Fprintf(w, "# HELP rispp_request_duration_seconds Request wall time.\n")
	fmt.Fprintf(w, "# TYPE rispp_request_duration_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += m.latBucket[i].Load()
		fmt.Fprintf(w, "rispp_request_duration_seconds_bucket{le=%q} %d\n", formatBound(ub), cum)
	}
	count := m.latCount.Load()
	fmt.Fprintf(w, "rispp_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", count)
	fmt.Fprintf(w, "rispp_request_duration_seconds_sum %g\n", float64(m.latSumNS.Load())/1e9)
	fmt.Fprintf(w, "rispp_request_duration_seconds_count %d\n", count)

	fmt.Fprintf(w, "# HELP rispp_endpoint_latency_seconds Request wall time by route (SLO series).\n")
	fmt.Fprintf(w, "# TYPE rispp_endpoint_latency_seconds histogram\n")
	for ri, route := range metricRoutes {
		h := &m.routeLat[ri]
		n := h.count.Load()
		if n == 0 {
			continue
		}
		var c int64
		for i, ub := range latencyBuckets {
			c += h.bucket[i].Load()
			fmt.Fprintf(w, "rispp_endpoint_latency_seconds_bucket{route=%q,le=%q} %d\n", route, formatBound(ub), c)
		}
		fmt.Fprintf(w, "rispp_endpoint_latency_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, n)
		fmt.Fprintf(w, "rispp_endpoint_latency_seconds_sum{route=%q} %g\n", route, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "rispp_endpoint_latency_seconds_count{route=%q} %d\n", route, n)
	}

	m.mu.Lock()
	shedKeys := sortedKeys(m.sheds)
	shedCounts := make([]int64, len(shedKeys))
	for i, k := range shedKeys {
		shedCounts[i] = m.sheds[k]
	}
	admitKeys := sortedKeys(m.admits)
	admitCounts := make([]int64, len(admitKeys))
	for i, k := range admitKeys {
		admitCounts[i] = m.admits[k]
	}
	m.mu.Unlock()
	fmt.Fprintf(w, "# HELP rispp_tenant_shed_total Requests rejected (429) by tenant and reason.\n")
	fmt.Fprintf(w, "# TYPE rispp_tenant_shed_total counter\n")
	for i, k := range shedKeys {
		tenant, reason, _ := cutByte(k)
		fmt.Fprintf(w, "rispp_tenant_shed_total{tenant=%q,reason=%q} %d\n", tenant, reason, shedCounts[i])
	}
	fmt.Fprintf(w, "# HELP rispp_tenant_admitted_total Slot acquisitions dispatched by tenant and priority class.\n")
	fmt.Fprintf(w, "# TYPE rispp_tenant_admitted_total counter\n")
	for i, k := range admitKeys {
		tenant, class, _ := cutByte(k)
		fmt.Fprintf(w, "rispp_tenant_admitted_total{tenant=%q,class=%q} %d\n", tenant, class, admitCounts[i])
	}

	if m.queueDepths != nil {
		d := m.queueDepths()
		fmt.Fprintf(w, "# HELP rispp_qos_queue_depth Requests waiting for a simulation slot by priority class.\n")
		fmt.Fprintf(w, "# TYPE rispp_qos_queue_depth gauge\n")
		for class := 0; class < numClasses; class++ {
			fmt.Fprintf(w, "rispp_qos_queue_depth{class=%q} %d\n", className(class), d[class])
		}
	}
	if m.costClasses != nil {
		classes := m.costClasses()
		names := make([]string, 0, len(classes))
		for k := range classes {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "# HELP rispp_cost_class_us Learned per-class simulation cost (EWMA, microseconds).\n")
		fmt.Fprintf(w, "# TYPE rispp_cost_class_us gauge\n")
		for _, k := range names {
			fmt.Fprintf(w, "rispp_cost_class_us{class=%q} %g\n", k, classes[k])
		}
	}

	fmt.Fprintf(w, "# HELP rispp_inflight_simulations Simulations currently holding a limiter slot.\n")
	fmt.Fprintf(w, "# TYPE rispp_inflight_simulations gauge\n")
	fmt.Fprintf(w, "rispp_inflight_simulations %d\n", m.inflight.Load())

	fmt.Fprintf(w, "# HELP rispp_simulate_cache_total /v1/simulate response-cache lookups by outcome.\n")
	fmt.Fprintf(w, "# TYPE rispp_simulate_cache_total counter\n")
	fmt.Fprintf(w, "rispp_simulate_cache_total{outcome=\"hit\"} %d\n", m.cacheHits.Load())
	fmt.Fprintf(w, "rispp_simulate_cache_total{outcome=\"miss\"} %d\n", m.cacheMiss.Load())

	fmt.Fprintf(w, "# HELP rispp_explore_cache_hits_total /v1/explore records answered from the result cache.\n")
	fmt.Fprintf(w, "# TYPE rispp_explore_cache_hits_total counter\n")
	fmt.Fprintf(w, "rispp_explore_cache_hits_total %d\n", m.engineHits.Load())

	fmt.Fprintf(w, "# HELP rispp_explore_simulated_total /v1/explore records simulated on this node (cache misses that ran).\n")
	fmt.Fprintf(w, "# TYPE rispp_explore_simulated_total counter\n")
	fmt.Fprintf(w, "rispp_explore_simulated_total %d\n", m.engineSim.Load())

	if m.fabricStats != nil {
		retries, failures, live, total := m.fabricStats()
		fmt.Fprintf(w, "# HELP rispp_fabric_shard_retries_total Sweep points re-dispatched after a worker shard failed.\n")
		fmt.Fprintf(w, "# TYPE rispp_fabric_shard_retries_total counter\n")
		fmt.Fprintf(w, "rispp_fabric_shard_retries_total %d\n", retries)
		fmt.Fprintf(w, "# HELP rispp_fabric_worker_failures_total Workers declared dead by the coordinator.\n")
		fmt.Fprintf(w, "# TYPE rispp_fabric_worker_failures_total counter\n")
		fmt.Fprintf(w, "rispp_fabric_worker_failures_total %d\n", failures)
		fmt.Fprintf(w, "# HELP rispp_fabric_workers Registered fleet workers by liveness.\n")
		fmt.Fprintf(w, "# TYPE rispp_fabric_workers gauge\n")
		fmt.Fprintf(w, "rispp_fabric_workers{state=\"live\"} %d\n", live)
		fmt.Fprintf(w, "rispp_fabric_workers{state=\"dead\"} %d\n", total-live)
	}
	if m.jobStats != nil {
		running, retained := m.jobStats()
		fmt.Fprintf(w, "# HELP rispp_jobs Async sweep jobs in the store by state.\n")
		fmt.Fprintf(w, "# TYPE rispp_jobs gauge\n")
		fmt.Fprintf(w, "rispp_jobs{state=\"running\"} %d\n", running)
		fmt.Fprintf(w, "rispp_jobs{state=\"terminal\"} %d\n", retained-running)
	}

	m.mu.Lock()
	strats := make([]string, 0, len(m.suggests))
	for k := range m.suggests {
		strats = append(strats, k)
	}
	sort.Strings(strats)
	suggestCounts := make([]int64, len(strats))
	for i, k := range strats {
		suggestCounts[i] = m.suggests[k]
	}
	m.mu.Unlock()
	fmt.Fprintf(w, "# HELP rispp_search_suggest_total Answered /v1/suggest requests by strategy.\n")
	fmt.Fprintf(w, "# TYPE rispp_search_suggest_total counter\n")
	for i, k := range strats {
		fmt.Fprintf(w, "rispp_search_suggest_total{strategy=%q} %d\n", k, suggestCounts[i])
	}
	fmt.Fprintf(w, "# HELP rispp_search_suggested_points_total Design points proposed by /v1/suggest.\n")
	fmt.Fprintf(w, "# TYPE rispp_search_suggested_points_total counter\n")
	fmt.Fprintf(w, "rispp_search_suggested_points_total %d\n", m.suggestPoints.Load())
	fmt.Fprintf(w, "# HELP rispp_search_front_size Pareto-front size of the most recent /v1/suggest reply.\n")
	fmt.Fprintf(w, "# TYPE rispp_search_front_size gauge\n")
	fmt.Fprintf(w, "rispp_search_front_size %d\n", m.frontSize.Load())

	if m.poolStats != nil {
		hits, misses := m.poolStats()
		fmt.Fprintf(w, "# HELP rispp_runtime_pool_total Runtime-pool requests by outcome (hit = reused arena, miss = fresh build).\n")
		fmt.Fprintf(w, "# TYPE rispp_runtime_pool_total counter\n")
		fmt.Fprintf(w, "rispp_runtime_pool_total{outcome=\"hit\"} %d\n", hits)
		fmt.Fprintf(w, "rispp_runtime_pool_total{outcome=\"miss\"} %d\n", misses)
	}

	fmt.Fprintf(w, "# HELP rispp_panics_total Recovered handler panics.\n")
	fmt.Fprintf(w, "# TYPE rispp_panics_total counter\n")
	fmt.Fprintf(w, "rispp_panics_total %d\n", m.panics.Load())
}

func (m *metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.write(w)
}

// sortedKeys snapshots a counter map's keys in stable order (callers hold
// mu).
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cutByte(k string) (route, code string, ok bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == 0 {
			return k[:i], k[i+1:], true
		}
	}
	return k, "", false
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal form, no exponent for these magnitudes.
func formatBound(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}
