package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"rispp/internal/explore"
	"rispp/internal/isa"
	"rispp/internal/scenario"
	"rispp/internal/sched"
	"rispp/internal/search"
	"rispp/internal/sim"
)

// CollectSpec selects the measurement artifacts of a simulate request.
type CollectSpec struct {
	// HistogramBucket, when > 0, collects per-SI execution histograms with
	// this bucket width in cycles (the paper uses 100000).
	HistogramBucket int64 `json:"histogram_bucket,omitempty"`
	// Timeline records SI latency steps (Figure 8 lines).
	Timeline bool `json:"timeline,omitempty"`
}

func (c CollectSpec) options() sim.Options {
	return sim.Options{HistogramBucket: c.HistogramBucket, Timeline: c.Timeline}
}

// cacheKey extends a canonical point key so that runs collecting different
// artifacts never share a response body.
func (c CollectSpec) cacheKey(pointKey string) string {
	return pointKey + "|h" + strconv.FormatInt(c.HistogramBucket, 10) + ",t" + strconv.FormatBool(c.Timeline)
}

// SimulateRequest is the body of POST /v1/simulate: the design-point knobs
// of explore.Point flattened at the top level, plus collection options and
// an optional deadline.
type SimulateRequest struct {
	explore.Point
	Collect CollectSpec `json:"collect,omitempty"`
	// TimeoutMS bounds the simulation wall time; 0 selects the server
	// default. The request fails with 504 when the deadline expires.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SIStat is the per-SI accounting of a simulate response, one entry per
// executed SI in ascending SI-id order.
type SIStat struct {
	SI           int    `json:"si"`
	Name         string `json:"name"`
	Executions   int64  `json:"execs"`
	SWExecutions int64  `json:"sw_execs"`
	HWExecutions int64  `json:"hw_execs"`
}

// SIHistogram is one SI's execution histogram (when requested).
type SIHistogram struct {
	SI     int     `json:"si"`
	Name   string  `json:"name"`
	Counts []int64 `json:"counts"`
}

// TimelineStep is one SI latency step (when a timeline is requested).
type TimelineStep struct {
	SI      int   `json:"si"`
	Cycle   int64 `json:"t"`
	Latency int   `json:"lat"`
}

// SimulateResponse is the body of a successful POST /v1/simulate. It is a
// pure function of the normalized request, so responses are cacheable and
// byte-stable across runs and server instances.
type SimulateResponse struct {
	// Point is the normalized design point that was simulated (defaults
	// filled in), so clients see the canonical form of what they asked for.
	Point   explore.Point `json:"point"`
	Runtime string        `json:"runtime"`

	TotalCycles  int64 `json:"cycles"`
	StallCycles  int64 `json:"stall_cycles"`
	SWExecutions int64 `json:"sw_execs"`
	HWExecutions int64 `json:"hw_execs"`
	Phases       int   `json:"phases"`

	SIs []SIStat `json:"sis"`

	// HistogramBucket and Histograms are present when the request collected
	// histograms; Timeline when it collected latency steps.
	HistogramBucket int64          `json:"histogram_bucket,omitempty"`
	Histograms      []SIHistogram  `json:"histograms,omitempty"`
	Timeline        []TimelineStep `json:"timeline,omitempty"`
}

// ExploreRequest is the body of POST /v1/explore: a sweep spec — the JSON
// form of explore.Spec, flat, so a risppexplore -spec file posts verbatim —
// plus an optional deadline. The response streams one explore.Record per
// line, in job order, byte-identical to risppexplore's JSONL output for
// the same spec.
type ExploreRequest struct {
	explore.Spec
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// apiError is the JSON error body of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(apiError{Error: fmt.Sprintf(format, args...)}) //nolint:errcheck // headers sent; nothing left to do
}

// decodeJSON reads a request body strictly: size-capped, unknown fields
// rejected, trailing garbage rejected.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after JSON body")
	}
	return nil
}

// validatePoint applies the serving layer's checks on top of the canonical
// ones of explore.Spec.Expand: scheduler must name a known run-time system,
// a scenario must name a shipped scenario, and the workload must stay
// within the configured size cap.
func (s *Server) validatePoint(p explore.Point) error {
	switch p.Scheduler {
	case "Molen", "molen", "software":
	default:
		if _, err := sched.New(p.Scheduler); err != nil {
			return fmt.Errorf("unknown scheduler %q", p.Scheduler)
		}
	}
	if p.Scenario != "" {
		if _, ok := scenario.Find(p.Scenario); !ok {
			return fmt.Errorf("unknown scenario %q (known: %s)", p.Scenario, strings.Join(scenario.Names(), ", "))
		}
	}
	if p.Frames > s.cfg.MaxFrames {
		return fmt.Errorf("frames %d exceeds server limit %d", p.Frames, s.cfg.MaxFrames)
	}
	if p.NumACs > maxACs {
		return fmt.Errorf("acs %d exceeds server limit %d", p.NumACs, maxACs)
	}
	return nil
}

// isaFor returns the instruction set a point's run executes under: the
// named scenario's (possibly merged multi-app) ISA, or the server's base
// ISA. Call only after validatePoint.
func (s *Server) isaFor(p explore.Point) *isa.ISA {
	if p.Scenario != "" {
		if sc, ok := scenario.Find(p.Scenario); ok {
			return sc.ISA()
		}
	}
	return s.isa
}

// maxACs caps the Atom-Container budget a request may ask for; the paper
// evaluates 5..24 and the selection cost grows with the budget.
const maxACs = 128

// timeout clamps a requested deadline to the server's bounds.
func (s *Server) timeout(ms int64) time.Duration {
	d := time.Duration(ms) * time.Millisecond
	if d <= 0 || d > s.cfg.MaxTimeout {
		if d > s.cfg.MaxTimeout {
			return s.cfg.MaxTimeout
		}
		return s.cfg.DefaultTimeout
	}
	return d
}

// handleSimulate answers POST /v1/simulate.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req SimulateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "negative timeout_ms")
		return
	}
	// Expand a single-point spec: this normalizes the point to its
	// canonical form and applies the engine's own validation.
	jobs, err := explore.Spec{Points: []explore.Point{req.Point}}.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid point: %v", err)
		return
	}
	p := jobs[0]
	if err := s.validatePoint(p); err != nil {
		writeError(w, http.StatusBadRequest, "invalid point: %v", err)
		return
	}

	tenant := tenantFrom(r.Context())
	key := req.Collect.cacheKey(p.Key())
	body, hit, err := s.cache.do(r.Context(), key, func() ([]byte, error) {
		return s.simulate(r.Context(), tenant, p, req.Collect, s.timeout(req.TimeoutMS))
	})
	if hit {
		s.met.cacheHits.Add(1)
	} else {
		s.met.cacheMiss.Add(1)
	}
	if err != nil {
		s.writeSimulateError(w, r, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", cacheHeader(hit))
	h.Set("X-Point-Hash", p.Hash())
	w.Write(body) //nolint:errcheck // client disconnects are not actionable
}

func cacheHeader(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func (s *Server) writeSimulateError(w http.ResponseWriter, r *http.Request, err error) {
	var shed *shedError
	switch {
	case errors.As(err, &shed):
		retry := shed.retryAfter
		if s.cfg.RetryAfter > retry {
			retry = s.cfg.RetryAfter
		}
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		writeError(w, http.StatusTooManyRequests, "%s", shed.detail)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "simulation deadline exceeded: %v", err)
	case r.Context().Err() != nil:
		// The client went away; the status is never seen, but finish the
		// exchange coherently.
		writeError(w, http.StatusServiceUnavailable, "client canceled: %v", err)
	default:
		writeError(w, http.StatusInternalServerError, "simulation failed: %v", err)
	}
}

// simulate runs one admission-controlled simulation and renders the
// response body. It is the single-flight leader's path: concurrent
// identical requests wait on its outcome instead of taking slots; the
// leader's tenant pays the QoS cost (followers and cache hits are free —
// a cached response consumes no fabric time). The deadline covers queue
// wait plus simulation, so a queued request that can't start in time
// surfaces as 504 rather than waiting forever.
func (s *Server) simulate(ctx context.Context, tenant string, p explore.Point, collect CollectSpec, d time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()

	cost := s.cost.predict(p)
	if err := s.qos.admit(tenant, cost); err != nil {
		return nil, err
	}
	slot, err := s.qos.acquire(ctx, tenant, classInteractive, cost)
	if err != nil {
		return nil, err
	}
	defer s.qos.release(slot)
	s.met.inflight.Add(1)
	defer s.met.inflight.Add(-1)

	res := s.runner.GetResult()
	defer s.runner.PutResult(res)
	start := time.Now()
	if err := s.runPoint(ctx, p, collect.options(), res); err != nil {
		return nil, err
	}
	s.cost.observe(p, time.Since(start))
	return s.renderSimulate(p, res)
}

// renderSimulate converts a Result into the deterministic response body.
// Data is copied out of res (which returns to the pool) — slices in the
// response never alias pooled buffers.
func (s *Server) renderSimulate(p explore.Point, res *sim.Result) ([]byte, error) {
	is := s.isaFor(p)
	resp := SimulateResponse{
		Point:        p,
		Runtime:      res.Runtime,
		TotalCycles:  res.TotalCycles,
		StallCycles:  res.StallCycles,
		SWExecutions: res.TotalSWExecutions(),
		HWExecutions: res.TotalHWExecutions(),
		Phases:       len(res.Phases),
	}
	executed := res.ExecutedSIs()
	resp.SIs = make([]SIStat, 0, len(executed))
	for _, si := range executed {
		resp.SIs = append(resp.SIs, SIStat{
			SI:           int(si),
			Name:         is.SI(si).Name,
			Executions:   res.ExecutionsOf(si),
			SWExecutions: res.SWExecutionsOf(si),
			HWExecutions: res.HWExecutionsOf(si),
		})
	}
	if res.Histogram != nil {
		resp.HistogramBucket = res.Histogram.BucketCycles
		for _, si := range executed {
			counts := res.Histogram.Counts(int(si))
			resp.Histograms = append(resp.Histograms, SIHistogram{
				SI:     int(si),
				Name:   is.SI(si).Name,
				Counts: append([]int64(nil), counts...),
			})
		}
	}
	if res.Timeline != nil {
		for _, ev := range res.Timeline.Events {
			resp.Timeline = append(resp.Timeline, TimelineStep{SI: ev.SI, Cycle: ev.Cycle, Latency: ev.Latency})
		}
	}
	return json.Marshal(&resp)
}

// handleExplore answers POST /v1/explore with a JSONL record stream.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req ExploreRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "negative timeout_ms")
		return
	}
	jobs, err := req.Spec.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	if len(jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty sweep: spec expands to no points")
		return
	}
	if len(jobs) > s.cfg.MaxPoints {
		writeError(w, http.StatusBadRequest, "sweep of %d points exceeds server limit %d", len(jobs), s.cfg.MaxPoints)
		return
	}
	for _, p := range jobs {
		if err := s.validatePoint(p); err != nil {
			writeError(w, http.StatusBadRequest, "invalid point %s: %v", p.Key(), err)
			return
		}
	}

	// Sweep-level admission: the whole spec is charged against the
	// tenant's cost budget up front (predicted from the learned cost
	// classes), so a tenant cannot sidestep rate limits by splitting load
	// across huge batch sweeps. Per-point charges are not taken again.
	tenant := tenantFrom(r.Context())
	var sweepCost float64
	for _, p := range jobs {
		sweepCost += s.cost.predict(p)
	}
	if err := s.qos.admit(tenant, sweepCost); err != nil {
		s.writeSimulateError(w, r, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()

	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Points", strconv.Itoa(len(jobs)))
	// From the first streamed byte on, errors can no longer change the
	// status code; per-record errors travel in the records themselves and
	// a deadline truncates the stream (clients compare against X-Points).
	if handled, _ := s.sweepFleet(ctx, jobs, func(line []byte) error {
		if _, err := w.Write(line); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}, nil); handled {
		return
	}
	eng := s.exploreEngine(tenant, func(rec explore.Record) {
		if flusher != nil {
			flusher.Flush()
		}
	})
	eng.ExecutePoints(ctx, jobs, w) //nolint:errcheck // see above: reported in-band
}

// exploreEngine builds the local sweep engine charging the tenant's batch
// class; onRecord, when non-nil, runs after the built-in cache accounting
// for every streamed record.
func (s *Server) exploreEngine(tenant string, onRecord func(explore.Record)) *explore.Engine {
	return &explore.Engine{
		Workers: s.cfg.ExploreWorkers,
		Cache:   s.exploreStore,
		OnRecord: func(rec explore.Record) {
			switch {
			case rec.Cached:
				s.met.engineHits.Add(1)
			case rec.OK():
				s.met.engineSim.Add(1)
			}
			if onRecord != nil {
				onRecord(rec)
			}
		},
		// Exploration jobs queue for slots at batch priority rather than
		// shedding: the spec was admitted as a whole, and job order (not
		// latency) is the contract. The WFQ scheduler arbitrates slot by
		// slot between this sweep, other tenants' sweeps, and interactive
		// traffic (which always wins a free slot).
		Run: func(ctx context.Context, p explore.Point) (explore.Metrics, error) {
			slot, err := s.qos.acquire(ctx, tenant, classBatch, s.cost.predict(p))
			if err != nil {
				return explore.Metrics{}, err
			}
			defer s.qos.release(slot)
			s.met.inflight.Add(1)
			defer s.met.inflight.Add(-1)
			res := s.runner.GetResult()
			defer s.runner.PutResult(res)
			start := time.Now()
			if err := s.runPoint(ctx, p, sim.Options{}, res); err != nil {
				return explore.Metrics{}, err
			}
			s.cost.observe(p, time.Since(start))
			return explore.Metrics{
				TotalCycles:  res.TotalCycles,
				StallCycles:  res.StallCycles,
				SWExecutions: res.TotalSWExecutions(),
				HWExecutions: res.TotalHWExecutions(),
			}, nil
		},
	}
}

// handleSuggest answers POST /v1/suggest: the adaptive-search side of the
// service. The request carries a strategy name, a seed, a spec, and the
// evaluations the client has already made; the reply is the next batch of
// design points the strategy wants evaluated plus the Pareto front over
// the observations. The server holds no search state — each request is a
// deterministic replay (internal/search.Suggest), so any replica answers
// identically and the client drives the eval loop at its own pace
// (typically through /v1/simulate or /v1/explore).
func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req search.SuggestRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Count < 0 {
		writeError(w, http.StatusBadRequest, "negative count")
		return
	}
	if req.Count > s.cfg.MaxPoints {
		writeError(w, http.StatusBadRequest, "count %d exceeds server limit %d", req.Count, s.cfg.MaxPoints)
		return
	}
	jobs, err := req.Spec.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	if len(jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty space: spec expands to no points")
		return
	}
	if len(jobs) > s.cfg.MaxPoints {
		writeError(w, http.StatusBadRequest, "space of %d points exceeds server limit %d", len(jobs), s.cfg.MaxPoints)
		return
	}
	for _, p := range jobs {
		if err := s.validatePoint(p); err != nil {
			writeError(w, http.StatusBadRequest, "invalid point %s: %v", p.Key(), err)
			return
		}
	}
	if len(req.Observed) > len(jobs) {
		writeError(w, http.StatusBadRequest, "%d observations for a space of %d points", len(req.Observed), len(jobs))
		return
	}

	// Suggest is planning work, not simulation, but it rides the batch
	// class: a strategy replay over a big space is CPU-bound and must not
	// crowd out interactive traffic. The cost charge scales with the
	// replayed history.
	tenant := tenantFrom(r.Context())
	cost := 1 + float64(len(req.Observed))
	if err := s.qos.admit(tenant, cost); err != nil {
		s.writeSimulateError(w, r, err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	slot, err := s.qos.acquire(ctx, tenant, classBatch, cost)
	if err != nil {
		s.writeSimulateError(w, r, err)
		return
	}
	defer s.qos.release(slot)

	sug, err := search.Suggest(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.met.suggest(sug.Strategy, len(sug.Points), len(sug.Front))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sug) //nolint:errcheck // headers sent; nothing left to do
}

// ScenarioInfo is one entry of the GET /v1/scenarios listing.
type ScenarioInfo struct {
	Name        string `json:"name"`
	Kind        string `json:"kind"`
	Description string `json:"description,omitempty"`
	// Digest is the SHA-256 content address of the scenario spec; clients
	// caching on scenario names can assert it to detect a (forbidden)
	// in-place redefinition.
	Digest   string `json:"digest"`
	Atoms    int    `json:"atoms"`
	SIs      int    `json:"sis"`
	HotSpots int    `json:"hot_spots"`
}

// handleScenarios answers GET /v1/scenarios: the shipped scenario library,
// sorted by name — the valid values of Point.Scenario.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	names := scenario.Names()
	out := make([]ScenarioInfo, 0, len(names))
	for _, n := range names {
		sc, _ := scenario.Find(n)
		is := sc.ISA()
		out = append(out, ScenarioInfo{
			Name:        n,
			Kind:        sc.Kind(),
			Description: sc.Description(),
			Digest:      sc.Digest(),
			Atoms:       is.Dim(),
			SIs:         len(is.SIs),
			HotSpots:    len(is.HotSpots),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck // headers sent; nothing left to do
}

// handleHealthz answers GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	status, code := "ok", http.StatusOK
	if s.closing.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct { //nolint:errcheck // headers sent; nothing left to do
		Status   string `json:"status"`
		InFlight int64  `json:"inflight"`
		Workers  int    `json:"workers"`
	}{status, s.met.inflight.Load(), s.cfg.Workers})
}
