package serve

// Serving-layer tests of the distributed sweep fabric: coordinator-backed
// /v1/explore (byte parity with a single process, worker loss), the async
// job API, the cache-peer endpoints and the fleet registry.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rispp/internal/explore"
	"rispp/internal/fabric"
)

var fleetSpec = ExploreRequest{Spec: explore.Spec{
	Schedulers: []string{"HEF", "Molen", "software"},
	ACs:        []int{4, 10},
	Frames:     []int{2},
}}

// newFleet starts n worker servers and one coordinator server wired to
// them, all in-process. Returned handlers speak full serve semantics.
func newFleet(t *testing.T, n int) (coord *Server, workers []*httptest.Server) {
	t.Helper()
	c := fabric.NewCoordinator()
	c.Logf = t.Logf
	for i := 0; i < n; i++ {
		ws := httptest.NewServer(newTestServer(t, Config{}).Handler())
		t.Cleanup(ws.Close)
		workers = append(workers, ws)
		if err := c.Register(fmt.Sprintf("w%d", i+1), ws.URL); err != nil {
			t.Fatal(err)
		}
	}
	coord = newTestServer(t, Config{})
	coord.SetCoordinator(c)
	return coord, workers
}

func exploreBytes(t *testing.T, h http.Handler, req ExploreRequest) []byte {
	t.Helper()
	w := postJSON(t, h, "/v1/explore", req)
	if w.Code != http.StatusOK {
		t.Fatalf("explore status %d: %s", w.Code, w.Body.String())
	}
	return w.Body.Bytes()
}

// TestFleetExploreByteParity is the tentpole acceptance: /v1/explore
// sharded across three in-process workers must stream byte-identical
// results to the single-process endpoint.
func TestFleetExploreByteParity(t *testing.T) {
	single := newTestServer(t, Config{})
	want := exploreBytes(t, single.Handler(), fleetSpec)

	coord, _ := newFleet(t, 3)
	got := exploreBytes(t, coord.Handler(), fleetSpec)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet stream (%d bytes) differs from single-process stream (%d bytes)", len(got), len(want))
	}

	// The fleet did the simulating; the coordinator's own engine ran nothing.
	if n := coord.met.engineSim.Load(); n != 0 {
		t.Errorf("coordinator simulated %d points itself", n)
	}
	metrics := coord.Metrics()
	if !strings.Contains(metrics, `rispp_fabric_workers{state="live"} 3`) {
		t.Errorf("metrics missing live worker gauge:\n%s", metrics)
	}
}

// TestFleetExploreSurvivesDeadWorker registers one unreachable worker among
// live ones: its shard must re-hash to the survivors with byte parity kept.
func TestFleetExploreSurvivesDeadWorker(t *testing.T) {
	single := newTestServer(t, Config{})
	want := exploreBytes(t, single.Handler(), fleetSpec)

	coord, workers := newFleet(t, 3)
	workers[1].Close() // dies before the sweep: connection refused mid-fleet

	got := exploreBytes(t, coord.Handler(), fleetSpec)
	if !bytes.Equal(got, want) {
		t.Fatal("fleet stream with a dead worker differs from single-process stream")
	}
	_, failures := coord.Coordinator().Stats()
	if failures != 1 {
		t.Errorf("worker failures = %d, want 1", failures)
	}
	if !strings.Contains(coord.Metrics(), `rispp_fabric_workers{state="dead"} 1`) {
		t.Error("metrics missing dead worker gauge")
	}
}

// TestFleetExploreFallsBackLocally: a coordinator with an empty (or fully
// dead) fleet must execute the sweep itself rather than fail it.
func TestFleetExploreFallsBackLocally(t *testing.T) {
	single := newTestServer(t, Config{})
	want := exploreBytes(t, single.Handler(), fleetSpec)

	coord := newTestServer(t, Config{})
	coord.SetCoordinator(fabric.NewCoordinator())
	got := exploreBytes(t, coord.Handler(), fleetSpec)
	if !bytes.Equal(got, want) {
		t.Fatal("local fallback stream differs from single-process stream")
	}
	if n := coord.met.engineSim.Load(); n == 0 {
		t.Error("fallback did not run the local engine")
	}
}

func waitJobDone(t *testing.T, h http.Handler, id string) fabric.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			t.Fatalf("job status %d: %s", w.Code, w.Body.String())
		}
		var st fabric.JobStatus
		if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func streamJobBytes(t *testing.T, h http.Handler, id string, offset int) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/jobs/%s/stream?offset=%d", id, offset), nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("stream status %d: %s", w.Code, w.Body.String())
	}
	return w.Body.Bytes()
}

// TestJobsAPI drives the async sweep lifecycle on a single node: create,
// poll, stream, resume from an offset — the stream must equal the
// synchronous /v1/explore bytes.
func TestJobsAPI(t *testing.T) {
	s := newTestServer(t, Config{})
	want := exploreBytes(t, s.Handler(), fleetSpec)

	w := postJSON(t, s.Handler(), "/v1/jobs", fleetSpec)
	if w.Code != http.StatusAccepted {
		t.Fatalf("create job status %d: %s", w.Code, w.Body.String())
	}
	var created fabric.JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if loc := w.Header().Get("Location"); loc != "/v1/jobs/"+created.ID {
		t.Errorf("Location = %q", loc)
	}

	st := waitJobDone(t, s.Handler(), created.ID)
	if st.State != fabric.JobDone || st.Done != st.Total {
		t.Fatalf("job finished as %+v", st)
	}
	if got := streamJobBytes(t, s.Handler(), created.ID, 0); !bytes.Equal(got, want) {
		t.Fatal("job stream differs from synchronous /v1/explore stream")
	}

	// Resuming mid-stream yields exactly the remaining lines.
	lines := bytes.SplitAfter(want, []byte("\n"))
	resumeAt := 2
	rest := bytes.Join(lines[resumeAt:], nil)
	if got := streamJobBytes(t, s.Handler(), created.ID, resumeAt); !bytes.Equal(got, rest) {
		t.Fatal("resumed stream differs from the remaining lines")
	}

	// The job shows up in the listing.
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs", nil)
	lw := httptest.NewRecorder()
	s.Handler().ServeHTTP(lw, req)
	var list []fabric.JobStatus
	if err := json.Unmarshal(lw.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != created.ID {
		t.Fatalf("job list: %+v", list)
	}
}

// TestFleetJobSharded runs the async API through a coordinator: shard
// progress must be reported and the stream must match the single process.
func TestFleetJobSharded(t *testing.T) {
	single := newTestServer(t, Config{})
	want := exploreBytes(t, single.Handler(), fleetSpec)

	coord, _ := newFleet(t, 3)
	w := postJSON(t, coord.Handler(), "/v1/jobs", fleetSpec)
	if w.Code != http.StatusAccepted {
		t.Fatalf("create job status %d: %s", w.Code, w.Body.String())
	}
	var created fabric.JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	st := waitJobDone(t, coord.Handler(), created.ID)
	if st.State != fabric.JobDone {
		t.Fatalf("job finished as %s: %s", st.State, st.Error)
	}
	if len(st.Shards) == 0 {
		t.Error("fleet job reports no shard progress")
	}
	shardDone := 0
	for _, sp := range st.Shards {
		shardDone += sp.Done
	}
	if shardDone != st.Total {
		t.Errorf("shard done total %d, want %d", shardDone, st.Total)
	}
	if got := streamJobBytes(t, coord.Handler(), created.ID, 0); !bytes.Equal(got, want) {
		t.Fatal("fleet job stream differs from single-process stream")
	}
}

func TestJobCancel(t *testing.T) {
	s := newTestServer(t, Config{})
	// A long sweep: enough frames that cancellation lands mid-run.
	req := ExploreRequest{Spec: explore.Spec{
		Schedulers: []string{"HEF", "Molen", "SJF", "ASF"}, ACs: []int{5, 10, 15}, Frames: []int{140},
	}}
	w := postJSON(t, s.Handler(), "/v1/jobs", req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("create job status %d: %s", w.Code, w.Body.String())
	}
	var created fabric.JobStatus
	if err := json.Unmarshal(w.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	dreq := httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+created.ID, nil)
	dw := httptest.NewRecorder()
	s.Handler().ServeHTTP(dw, dreq)
	if dw.Code != http.StatusOK {
		t.Fatalf("cancel status %d", dw.Code)
	}
	st := waitJobDone(t, s.Handler(), created.ID)
	if st.State != fabric.JobCanceled && st.State != fabric.JobDone {
		t.Fatalf("canceled job finished as %s (%s)", st.State, st.Error)
	}
}

func TestJobsValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxPoints: 4})
	cases := []struct {
		name string
		body any
		code int
	}{
		{"empty spec", ExploreRequest{}, http.StatusBadRequest},
		{"bad scheduler", ExploreRequest{Spec: explore.Spec{Schedulers: []string{"nope"}}}, http.StatusBadRequest},
		{"too many points", ExploreRequest{Spec: explore.Spec{ACs: []int{1, 2, 3, 4, 5}}}, http.StatusBadRequest},
		{"negative timeout", ExploreRequest{Spec: explore.Spec{ACs: []int{5}}, TimeoutMS: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if w := postJSON(t, s.Handler(), "/v1/jobs", tc.body); w.Code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, w.Code, tc.code, w.Body.String())
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/jobs/missing", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown job: status %d", w.Code)
	}
}

func TestCacheEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	cache, err := explore.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s.SetExploreCache(cache)

	p := explore.Point{Scheduler: "HEF", NumACs: 8, Frames: 3}.Normalized()
	m := explore.Metrics{TotalCycles: 42, StallCycles: 1, SWExecutions: 2, HWExecutions: 3}
	entry := explore.EncodeEntry(p, m)

	do := func(method, path string, body []byte) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, bytes.NewReader(body))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w
	}

	// Path traversal is stopped twice: the mux cleans dotted paths, and the
	// handler rejects anything that is not 64 lowercase hex digits.
	if w := do(http.MethodGet, "/v1/cache/not-a-hash", nil); w.Code != http.StatusBadRequest {
		t.Errorf("malformed hash: status %d", w.Code)
	}
	if w := do(http.MethodGet, "/v1/cache/"+strings.ToUpper(p.Hash()), nil); w.Code != http.StatusBadRequest {
		t.Errorf("uppercase hash: status %d", w.Code)
	}
	if w := do(http.MethodGet, "/v1/cache/"+p.Hash(), nil); w.Code != http.StatusNotFound {
		t.Errorf("missing entry: status %d", w.Code)
	}
	if w := do(http.MethodPut, "/v1/cache/"+p.Hash(), []byte(`{"key":"forged","metrics":{}}`)); w.Code != http.StatusBadRequest {
		t.Errorf("forged entry accepted: status %d", w.Code)
	}
	if w := do(http.MethodPut, "/v1/cache/"+p.Hash(), entry); w.Code != http.StatusNoContent {
		t.Errorf("valid put: status %d: %s", w.Code, w.Body.String())
	}
	if w := do(http.MethodGet, "/v1/cache/"+p.Hash(), nil); w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), entry) {
		t.Errorf("get after put: status %d, %d bytes", w.Code, w.Body.Len())
	}
	if got, ok := cache.Get(p); !ok || got != m {
		t.Errorf("disk tier after peer put: %+v ok=%v", got, ok)
	}

	bare := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/cache/"+p.Hash(), nil)
	w := httptest.NewRecorder()
	bare.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("cache-less node: status %d", w.Code)
	}
}

func TestWorkersEndpoint(t *testing.T) {
	coord := newTestServer(t, Config{})
	coord.SetCoordinator(fabric.NewCoordinator())

	if w := postJSON(t, coord.Handler(), "/v1/workers", workerRegistration{ID: "w1", URL: "http://h1:1"}); w.Code != http.StatusNoContent {
		t.Fatalf("register: status %d: %s", w.Code, w.Body.String())
	}
	if w := postJSON(t, coord.Handler(), "/v1/workers", workerRegistration{}); w.Code != http.StatusBadRequest {
		t.Errorf("empty registration: status %d", w.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/workers", nil)
	w := httptest.NewRecorder()
	coord.Handler().ServeHTTP(w, req)
	var ws []fabric.Worker
	if err := json.Unmarshal(w.Body.Bytes(), &ws); err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 || ws[0].ID != "w1" || !ws[0].Alive {
		t.Fatalf("registry: %+v", ws)
	}

	req = httptest.NewRequest(http.MethodDelete, "/v1/workers?id=w1", nil)
	w = httptest.NewRecorder()
	coord.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusNoContent {
		t.Errorf("remove: status %d", w.Code)
	}
	if n := coord.Coordinator().LiveWorkers(); n != 0 {
		t.Errorf("live workers after remove = %d", n)
	}

	plain := newTestServer(t, Config{})
	req = httptest.NewRequest(http.MethodGet, "/v1/workers", nil)
	w = httptest.NewRecorder()
	plain.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("non-coordinator /v1/workers: status %d", w.Code)
	}
}

// TestFleetSharedCacheZeroResim: with every worker writing through to the
// coordinator's cache, re-running a sweep must simulate zero points
// fleet-wide — the shared-cache acceptance of the fabric.
func TestFleetSharedCacheZeroResim(t *testing.T) {
	coordCache, err := explore.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := fabric.NewCoordinator()
	c.Logf = t.Logf
	coord := newTestServer(t, Config{})
	coord.SetExploreCache(coordCache)
	coord.SetCoordinator(c)
	coordURL := httptest.NewServer(coord.Handler())
	t.Cleanup(coordURL.Close)

	var workerServers []*Server
	for i := 0; i < 3; i++ {
		ws := newTestServer(t, Config{})
		local, err := explore.OpenCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		ws.SetExploreStore(&fabric.Tiered{Local: local, Peer: fabric.NewPeer(coordURL.URL)}, local)
		hs := httptest.NewServer(ws.Handler())
		t.Cleanup(hs.Close)
		if err := c.Register(fmt.Sprintf("w%d", i+1), hs.URL); err != nil {
			t.Fatal(err)
		}
		workerServers = append(workerServers, ws)
	}

	simulated := func() (n int64) {
		for _, ws := range workerServers {
			n += ws.met.engineSim.Load()
		}
		return n
	}

	cold := exploreBytes(t, coord.Handler(), fleetSpec)
	coldSim := simulated()
	if coldSim == 0 {
		t.Fatal("cold sweep simulated nothing")
	}

	warm := exploreBytes(t, coord.Handler(), fleetSpec)
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm fleet stream differs from cold fleet stream")
	}
	if again := simulated(); again != coldSim {
		t.Errorf("warm sweep re-simulated %d points fleet-wide, want 0", again-coldSim)
	}
}
