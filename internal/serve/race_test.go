// Race stress of the runtime pool: concurrent /v1/simulate requests and
// explore.Engine sweeps — batched through the single-pass RunSet path —
// hammer one shared rispp.Runner, checking every concurrent measurement
// against a sequential baseline. Run under -race (the CI race job does).
package serve

import (
	"context"
	"net/http"
	"sync"
	"testing"

	"rispp"
	"rispp/internal/explore"
	"rispp/internal/sim"
)

func TestSimulateAndEngineSweepShareRunnerRaceFree(t *testing.T) {
	pts := []explore.Point{
		{Scheduler: "HEF", NumACs: 5, Frames: 1, SeedForecasts: true},
		{Scheduler: "HEF", NumACs: 10, Frames: 1, SeedForecasts: true},
		{Scheduler: "FSFR", NumACs: 5, Frames: 1, SeedForecasts: true},
		{Scheduler: "Molen", NumACs: 5, Frames: 1, SeedForecasts: true},
		{Scheduler: "software", NumACs: 0, Frames: 1, SeedForecasts: true},
	}
	spec := explore.Spec{Points: pts}

	// Sequential baseline through an independent Runner.
	want := make(map[string]int64, len(pts))
	seq := rispp.NewRunner(rispp.Config{})
	for _, p := range pts {
		res := new(sim.Result)
		if err := seq.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatal(err)
		}
		want[p.Normalized().Key()] = res.TotalCycles
	}

	// CacheEntries < 0 disables the response cache, so every request takes
	// a runtime from the shared pool instead of short-circuiting; delta-
	// resimulation is off for the same reason (trail serves skip the pool).
	s := New(Config{Workers: 8, CacheEntries: -1}, rispp.Config{DisableDelta: true})
	h := s.Handler()
	const rounds = 6

	var wg sync.WaitGroup
	// Half the load: /v1/simulate requests through the HTTP stack.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for off := range pts {
					p := pts[(g+off)%len(pts)]
					w := postJSON(t, h, "/v1/simulate", SimulateRequest{Point: p})
					if w.Code != http.StatusOK {
						t.Errorf("goroutine %d: simulate %s: status %d: %s", g, p.Key(), w.Code, w.Body.String())
						return
					}
					resp := decodeSimulate(t, w)
					if cycles := want[resp.Point.Key()]; resp.TotalCycles != cycles {
						t.Errorf("goroutine %d: simulate %s: got %d cycles, want %d",
							g, resp.Point.Key(), resp.TotalCycles, cycles)
						return
					}
				}
			}
		}(g)
	}
	// The other half: engine sweeps on the server's own Runner, through the
	// batched single-pass path (scheduler groups share one trace walk).
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng := &explore.Engine{Workers: 2, Run: s.runner.EngineRun(), RunSet: s.runner.EngineRunSet()}
			for round := 0; round < rounds; round++ {
				res, err := eng.Execute(context.Background(), spec, nil)
				if err != nil {
					t.Errorf("goroutine %d: sweep: %v", g, err)
					return
				}
				for _, rec := range res.Records {
					if !rec.OK() {
						t.Errorf("goroutine %d: sweep point %s: %s", g, rec.Point.Key(), rec.Err)
						return
					}
					if cycles := want[rec.Point.Key()]; rec.TotalCycles != cycles {
						t.Errorf("goroutine %d: sweep point %s: got %d cycles, want %d",
							g, rec.Point.Key(), rec.TotalCycles, cycles)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	hits, misses := s.runner.RuntimePoolStats()
	if hits == 0 || misses == 0 {
		t.Errorf("stress did not exercise the pool: hits=%d misses=%d", hits, misses)
	}
}
