package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rispp"
	"rispp/internal/explore"
	"rispp/internal/scenario"
)

// TestSimulateScenario: a scenario point served over HTTP matches the
// direct library run under the scenario's ISA, and the per-SI table uses
// the scenario's SI names (not the base H.264 ISA's).
func TestSimulateScenario(t *testing.T) {
	s := newTestServer(t, Config{})
	sc, ok := scenario.Find("video-crypto")
	if !ok {
		t.Fatal("video-crypto missing from library")
	}
	w := postJSON(t, s.Handler(), "/v1/simulate", SimulateRequest{
		Point: explore.Point{Scheduler: "HEF", NumACs: 8, Frames: 3, Seed: 1,
			SeedForecasts: true, Scenario: "video-crypto"},
	})
	got := decodeSimulate(t, w)

	want, err := rispp.Run(rispp.Config{
		ISA:           sc.ISA(),
		Workload:      sc.Trace(3, 1),
		Scheduler:     "HEF",
		NumACs:        8,
		SeedForecasts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalCycles != want.TotalCycles || got.StallCycles != want.StallCycles {
		t.Errorf("served %d/%d cycles, direct run %d/%d",
			got.TotalCycles, got.StallCycles, want.TotalCycles, want.StallCycles)
	}
	if got.Point.Scenario != "video-crypto" {
		t.Errorf("normalized point lost the scenario: %+v", got.Point)
	}
	names := map[string]bool{}
	for _, st := range got.SIs {
		names[st.Name] = true
	}
	// The merged ISA carries the crypto app's SIs; the base H.264 ISA
	// could never produce this name.
	if !names["AES round"] {
		t.Errorf("per-SI table lacks the crypto app's SIs: %v", names)
	}
}

func TestSimulateScenarioValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/v1/simulate", SimulateRequest{
		Point: explore.Point{Scenario: "no-such-scenario"},
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("unknown scenario: status %d, body %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "unknown scenario") {
		t.Errorf("error body %s does not name the problem", w.Body.String())
	}

	w = postJSON(t, s.Handler(), "/v1/simulate", SimulateRequest{
		Point: explore.Point{Scenario: "video-crypto", Motion: 0.4},
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("scenario+motion: status %d, body %s", w.Code, w.Body.String())
	}
}

// TestSimulateScenarioCached: equal scenario points coalesce onto one cache
// entry; different scenarios do not share entries.
func TestSimulateScenarioCached(t *testing.T) {
	s := newTestServer(t, Config{})
	req := SimulateRequest{Point: explore.Point{Scheduler: "HEF", NumACs: 6,
		Frames: 2, SeedForecasts: true, Scenario: "early-exit-me"}}
	first := decodeSimulate(t, postJSON(t, s.Handler(), "/v1/simulate", req))
	w := postJSON(t, s.Handler(), "/v1/simulate", req)
	second := decodeSimulate(t, w)
	if w.Header().Get("X-Cache") != "hit" {
		t.Errorf("repeat scenario request not served from cache (X-Cache=%q)", w.Header().Get("X-Cache"))
	}
	if first.TotalCycles != second.TotalCycles {
		t.Errorf("cached response diverged: %d vs %d cycles", first.TotalCycles, second.TotalCycles)
	}

	other := req
	other.Point.Scenario = "branchy-modes"
	w = postJSON(t, s.Handler(), "/v1/simulate", other)
	third := decodeSimulate(t, w)
	if w.Header().Get("X-Cache") == "hit" {
		t.Error("different scenario served from the other scenario's cache entry")
	}
	if third.TotalCycles == first.TotalCycles {
		t.Error("distinct scenarios produced identical cycle counts (suspicious key collision)")
	}
}

func TestExploreScenarioSweep(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/v1/explore", ExploreRequest{
		Spec: explore.Spec{
			Schedulers: []string{"HEF", "software"},
			ACs:        []int{6},
			Frames:     []int{2},
			Scenarios:  []string{"video-crypto", "video-pip"},
		},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var recs []explore.Record
	dec := json.NewDecoder(strings.NewReader(w.Body.String()))
	for dec.More() {
		var rec explore.Record
		if err := dec.Decode(&rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		if rec.Err != "" {
			t.Errorf("point %s failed: %s", rec.Point.Key(), rec.Err)
		}
		seen[rec.Point.Scenario] = true
	}
	if !seen["video-crypto"] || !seen["video-pip"] {
		t.Errorf("sweep did not cover both scenarios: %v", seen)
	}
}

func TestScenariosEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/scenarios", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var infos []ScenarioInfo
	if err := json.Unmarshal(w.Body.Bytes(), &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(scenario.Names()) {
		t.Fatalf("listed %d scenarios, library has %d", len(infos), len(scenario.Names()))
	}
	for _, info := range infos {
		sc, ok := scenario.Find(info.Name)
		if !ok {
			t.Errorf("endpoint lists unknown scenario %q", info.Name)
			continue
		}
		if info.Digest != sc.Digest() {
			t.Errorf("%s: endpoint digest %s, library %s", info.Name, info.Digest, sc.Digest())
		}
		if info.Atoms == 0 || info.SIs == 0 || info.HotSpots == 0 {
			t.Errorf("%s: empty ISA summary %+v", info.Name, info)
		}
	}

	post := httptest.NewRequest(http.MethodPost, "/v1/scenarios", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, post)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/scenarios: status %d, want 405", w.Code)
	}
}

// TestSimulateScenarioHistograms: artifact collection under a scenario ISA
// names the scenario's SIs in the histogram table.
func TestSimulateScenarioHistograms(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/v1/simulate", SimulateRequest{
		Point: explore.Point{Scheduler: "HEF", NumACs: 6, Frames: 2,
			SeedForecasts: true, Scenario: "sdr-crypto"},
		Collect: CollectSpec{HistogramBucket: 50_000},
	})
	got := decodeSimulate(t, w)
	if len(got.Histograms) == 0 {
		t.Fatal("no histograms collected")
	}
	sc, _ := scenario.Find("sdr-crypto")
	for _, h := range got.Histograms {
		if h.SI < 0 || h.SI >= len(sc.ISA().SIs) {
			t.Errorf("histogram references SI %d outside the scenario ISA", h.SI)
			continue
		}
		if want := sc.ISA().SIs[h.SI].Name; h.Name != want {
			t.Errorf("histogram SI %d named %q, scenario ISA says %q", h.SI, h.Name, want)
		}
	}
}
