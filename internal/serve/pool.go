package serve

import (
	"container/list"
	"context"
	"sync"
)

// The simulation-slot pool itself is arbitrated by the QoS scheduler in
// qos.go (weighted fair queueing, priority classes, per-tenant quotas);
// this file keeps the response cache.

// respCache is an LRU of rendered /v1/simulate response bodies keyed by the
// canonical design-point key (plus collect options), with single-flight
// request coalescing: concurrent identical requests run one simulation and
// share its bytes. The simulator is deterministic, so a cached body is
// indistinguishable from a fresh run — this is what makes the cache sound.
type respCache struct {
	mu      sync.Mutex
	cap     int // <= 0: coalesce only, store nothing
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	flight  map[string]*flightCall
}

type cacheEntry struct {
	key  string
	body []byte
}

type flightCall struct {
	done chan struct{} // closed when the leader finished
	body []byte        // valid if err == nil
	err  error
}

func newRespCache(capacity int) *respCache {
	return &respCache{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		flight:  make(map[string]*flightCall),
	}
}

// do returns the response body for key, computing it with fn at most once
// across concurrent callers. hit reports whether the body came from the
// cache or a coalesced leader rather than this caller's own fn run. A
// leader's error is not shared: followers retry (and typically surface the
// same condition themselves, e.g. saturation). Only successful bodies are
// stored.
func (c *respCache) do(ctx context.Context, key string, fn func() ([]byte, error)) (body []byte, hit bool, err error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			body = el.Value.(*cacheEntry).body
			c.mu.Unlock()
			return body, true, nil
		}
		if call, ok := c.flight[key]; ok {
			c.mu.Unlock()
			select {
			case <-call.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if call.err == nil {
				return call.body, true, nil
			}
			continue // leader failed; retry as leader
		}
		call := &flightCall{done: make(chan struct{})}
		c.flight[key] = call
		c.mu.Unlock()

		call.body, call.err = fn()
		c.mu.Lock()
		delete(c.flight, key)
		if call.err == nil && c.cap > 0 {
			c.entries[key] = c.order.PushFront(&cacheEntry{key: key, body: call.body})
			for c.order.Len() > c.cap {
				last := c.order.Back()
				c.order.Remove(last)
				delete(c.entries, last.Value.(*cacheEntry).key)
			}
		}
		c.mu.Unlock()
		close(call.done)
		return call.body, false, call.err
	}
}

// len reports the number of stored bodies (test helper).
func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
