package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"rispp/internal/explore"
	"rispp/internal/fabric"
)

// sweepFleet runs the jobs through the fleet coordinator, emitting record
// lines in canonical order. handled is false when this node has no
// coordinator or an empty fleet — the caller then executes locally. A
// mid-sweep fleet collapse (ErrNoWorkers) truncates the stream exactly
// like a deadline would; the error reports it.
func (s *Server) sweepFleet(ctx context.Context, jobs []explore.Point, emit func([]byte) error, progress func(string, int, int)) (handled bool, err error) {
	if s.coord == nil || s.coord.LiveWorkers() == 0 {
		return false, nil
	}
	err = s.coord.Sweep(ctx, jobs, fabric.SweepOptions{Emit: emit, Progress: progress})
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		s.logf("serve: fleet sweep: %v", err)
	}
	return true, err
}

// handleJobs answers POST /v1/jobs (create an async sweep job) and GET
// /v1/jobs (list retained jobs). A job is a /v1/explore sweep detached
// from its HTTP request: validation, admission and execution (fleet or
// local) are identical, but the record stream accumulates in the job store
// where any number of clients can follow and resume it.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.jobs.List())
		return
	case http.MethodPost:
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
		return
	}
	var req ExploreRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "negative timeout_ms")
		return
	}
	jobs, err := req.Spec.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	if len(jobs) == 0 {
		writeError(w, http.StatusBadRequest, "empty sweep: spec expands to no points")
		return
	}
	if len(jobs) > s.cfg.MaxPoints {
		writeError(w, http.StatusBadRequest, "sweep of %d points exceeds server limit %d", len(jobs), s.cfg.MaxPoints)
		return
	}
	for _, p := range jobs {
		if err := s.validatePoint(p); err != nil {
			writeError(w, http.StatusBadRequest, "invalid point %s: %v", p.Key(), err)
			return
		}
	}
	tenant := tenantFrom(r.Context())
	var sweepCost float64
	for _, p := range jobs {
		sweepCost += s.cost.predict(p)
	}
	if err := s.qos.admit(tenant, sweepCost); err != nil {
		s.writeSimulateError(w, r, err)
		return
	}

	// The job's sweep is parented to the server, not the request: the
	// client may disconnect immediately and stream the records later.
	jctx, cancel := context.WithTimeout(s.jobsCtx, s.timeout(req.TimeoutMS))
	job, err := s.jobs.Create(len(jobs), cancel)
	if err != nil {
		cancel()
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.jobsWG.Add(1)
	go func() {
		defer s.jobsWG.Done()
		defer cancel()
		job.Finish(s.runJobSweep(jctx, job, jobs, tenant))
	}()

	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	writeJSON(w, http.StatusAccepted, job.Status())
}

// runJobSweep executes one async job's sweep — through the fleet when this
// node coordinates one, locally otherwise — appending every record line to
// the job in canonical order.
func (s *Server) runJobSweep(ctx context.Context, job *fabric.Job, jobs []explore.Point, tenant string) error {
	if handled, err := s.sweepFleet(ctx, jobs, func(line []byte) error {
		job.Append(append([]byte(nil), line...))
		return nil
	}, job.Shard); handled {
		return err
	}
	eng := s.exploreEngine(tenant, nil)
	lw := &lineWriter{emit: func(line []byte) { job.Append(line) }}
	_, err := eng.ExecutePoints(ctx, jobs, lw)
	return err
}

// lineWriter splits a byte stream into newline-terminated lines, emitting
// each complete line as its own buffer. It makes the job store independent
// of the write granularity of the engine's JSON encoder.
type lineWriter struct {
	emit func(line []byte)
	buf  []byte
}

func (lw *lineWriter) Write(p []byte) (int, error) {
	lw.buf = append(lw.buf, p...)
	for {
		i := bytes.IndexByte(lw.buf, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := append([]byte(nil), lw.buf[:i+1]...)
		lw.buf = lw.buf[i+1:]
		lw.emit(line)
	}
}

// handleJob answers GET/DELETE /v1/jobs/{id} and GET /v1/jobs/{id}/stream.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, hasSub := strings.Cut(rest, "/")
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch {
	case !hasSub && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, job.Status())
	case !hasSub && r.Method == http.MethodDelete:
		job.Cancel()
		writeJSON(w, http.StatusOK, job.Status())
	case hasSub && sub == "stream" && r.Method == http.MethodGet:
		s.streamJob(w, r, job)
	case hasSub && sub != "stream":
		writeError(w, http.StatusNotFound, "no job route %q", r.URL.Path)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}

// streamJob answers GET /v1/jobs/{id}/stream?offset=N: the job's record
// lines from record offset N on, streamed live until the job is terminal
// and fully delivered. A disconnected client resumes by asking for the
// offset it had reached — the lines are retained in the store, so nothing
// re-simulates.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, job *fabric.Job) {
	offset := 0
	if q := r.URL.Query().Get("offset"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad offset %q", q)
			return
		}
		offset = n
	}
	st := job.Status()
	h := w.Header()
	h.Set("Content-Type", "application/x-ndjson")
	h.Set("X-Points", strconv.Itoa(st.Total))
	h.Set("X-Offset", strconv.Itoa(offset))
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // commit the headers before the first record lands
	}
	i := offset
	for {
		lines, state, changed := job.LinesFrom(i)
		for _, line := range lines {
			if _, err := w.Write(line); err != nil {
				return
			}
			i++
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		if len(lines) == 0 {
			if state.Terminal() {
				return
			}
			select {
			case <-changed:
			case <-r.Context().Done():
				return
			}
		}
	}
}

// handleCache answers the cache-peer protocol: GET/PUT /v1/cache/{hash},
// the raw content-addressed entries of the explore result cache. Bodies
// are validated against the content address on PUT, so a peer can fill the
// cache but never poison it.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	hash := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
	if !explore.ValidHash(hash) {
		writeError(w, http.StatusBadRequest, "malformed content address")
		return
	}
	if s.peerCache == nil {
		writeError(w, http.StatusNotFound, "no result cache configured on this node")
		return
	}
	switch r.Method {
	case http.MethodGet:
		b, ok := s.peerCache.GetRaw(hash)
		if !ok {
			writeError(w, http.StatusNotFound, "no entry %s", hash)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b) //nolint:errcheck // client disconnects are not actionable
	case http.MethodPut:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "read body: %v", err)
			return
		}
		if !explore.ValidEntryForHash(hash, body) {
			writeError(w, http.StatusBadRequest, "entry does not match content address")
			return
		}
		if err := s.peerCache.PutRaw(hash, body); err != nil {
			writeError(w, http.StatusInternalServerError, "store entry: %v", err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, PUT")
		writeError(w, http.StatusMethodNotAllowed, "use GET or PUT")
	}
}

// workerRegistration is the body of POST /v1/workers.
type workerRegistration struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// handleWorkers manages the fleet registry of a coordinator node: POST
// registers (or revives) a worker, GET lists the registry, DELETE ?id=
// removes one.
func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeError(w, http.StatusNotFound, "this node is not a fleet coordinator")
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.coord.Workers())
	case http.MethodPost:
		var reg workerRegistration
		if err := s.decodeJSON(w, r, &reg); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if err := s.coord.Register(reg.ID, reg.URL); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		s.logf("serve: fleet worker %s registered at %s", reg.ID, reg.URL)
		w.WriteHeader(http.StatusNoContent)
	case http.MethodDelete:
		id := r.URL.Query().Get("id")
		if id == "" {
			writeError(w, http.StatusBadRequest, "missing id")
			return
		}
		s.coord.Remove(id)
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, POST, DELETE")
		writeError(w, http.StatusMethodNotAllowed, "use GET, POST or DELETE")
	}
}

// writeJSON renders a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // headers sent; nothing left to do
}
