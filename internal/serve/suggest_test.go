package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rispp/internal/explore"
	"rispp/internal/search"
)

func suggestSpec() explore.Spec {
	return explore.Spec{
		Schedulers: []string{"HEF", "Molen", "software"},
		ACs:        []int{4, 6, 8, 10},
		Frames:     []int{2},
	}
}

func decodeSuggest(t *testing.T, w *httptest.ResponseRecorder) search.Suggestion {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var sug search.Suggestion
	if err := json.Unmarshal(w.Body.Bytes(), &sug); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return sug
}

// TestSuggestDrivesSimulate runs the intended client loop: ask /v1/suggest
// for points, measure them through /v1/simulate, feed the observations
// back, and repeat. The front must grow out of the client's own
// measurements and proposals must never repeat.
func TestSuggestDrivesSimulate(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	var observed []search.Eval
	seen := make(map[string]bool)
	for round := 0; round < 3; round++ {
		w := postJSON(t, h, "/v1/suggest", search.SuggestRequest{
			Strategy: "evolve", Seed: 5, Count: 4,
			Spec: suggestSpec(), Observed: observed,
		})
		sug := decodeSuggest(t, w)
		if sug.Strategy != "evolve" || sug.SpacePoints != 12 {
			t.Fatalf("round %d: suggestion header %+v", round, sug)
		}
		if sug.Replayed != len(observed) {
			t.Fatalf("round %d: replayed %d of %d observations", round, sug.Replayed, len(observed))
		}
		if len(sug.Points) == 0 && !sug.Exhausted {
			t.Fatalf("round %d: no points and not exhausted", round)
		}
		for _, p := range sug.Points {
			if seen[p.Key()] {
				t.Fatalf("round %d: point %s proposed twice", round, p.Key())
			}
			seen[p.Key()] = true
			res := decodeSimulate(t, postJSON(t, h, "/v1/simulate", SimulateRequest{Point: p}))
			observed = append(observed, search.Eval{Point: p, Cycles: res.TotalCycles, StallCycles: res.StallCycles})
		}
	}
	// The final front must be non-empty and consistent with the
	// observations (every member observed, none dominated by another).
	w := postJSON(t, h, "/v1/suggest", search.SuggestRequest{
		Strategy: "evolve", Seed: 5, Count: 1, Spec: suggestSpec(), Observed: observed,
	})
	sug := decodeSuggest(t, w)
	if len(sug.Front) == 0 {
		t.Fatal("front empty after 8 observations")
	}
	for _, fp := range sug.Front {
		found := false
		for _, e := range observed {
			if e.Point.Key() == fp.Point.Key() {
				found = true
			}
		}
		if !found {
			t.Errorf("front member %s was never observed", fp.Point.Key())
		}
	}

	// Identical request → byte-identical reply (stateless determinism).
	w2 := postJSON(t, h, "/v1/suggest", search.SuggestRequest{
		Strategy: "evolve", Seed: 5, Count: 1, Spec: suggestSpec(), Observed: observed,
	})
	if w.Body.String() != w2.Body.String() {
		t.Error("identical suggest requests answered differently")
	}

	// The search metrics must be on /metrics.
	mw := httptest.NewRecorder()
	h.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := mw.Body.String()
	for _, want := range []string{
		`rispp_search_suggest_total{strategy="evolve"}`,
		"rispp_search_suggested_points_total",
		"rispp_search_front_size",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

func TestSuggestValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxPoints: 16})
	h := s.Handler()
	cases := []struct {
		name string
		req  search.SuggestRequest
	}{
		{"unknown strategy", search.SuggestRequest{Strategy: "annealing", Spec: suggestSpec()}},
		{"empty spec", search.SuggestRequest{Strategy: "random"}},
		{"negative count", search.SuggestRequest{Strategy: "random", Count: -1, Spec: suggestSpec()}},
		{"space too large", search.SuggestRequest{Strategy: "random", Spec: explore.Spec{
			Schedulers: []string{"HEF"}, ACs: []int{1, 2, 3, 4, 5}, Frames: []int{1, 2}, Seeds: []int64{1, 2},
		}}},
		{"unknown scheduler", search.SuggestRequest{Strategy: "random", Spec: explore.Spec{
			Schedulers: []string{"quantum"}, ACs: []int{4},
		}}},
		{"too many observations", search.SuggestRequest{Strategy: "random", Spec: suggestSpec(),
			Observed: make([]search.Eval, 13)}},
	}
	for _, tc := range cases {
		if w := postJSON(t, h, "/v1/suggest", tc.req); w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
		}
	}
	// GET is rejected.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/suggest", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/suggest: status %d, want 405", w.Code)
	}
}
