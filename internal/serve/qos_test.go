package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rispp/internal/explore"
)

// qosHarness drives the scheduler directly (no HTTP, no clocks): held
// slots keep the pool busy, enqueue parks acquisitions in the queue, and
// drain releases slots one at a time recording exactly which tenant's
// waiter each freed slot goes to.
type qosHarness struct {
	t      *testing.T
	q      *qsched
	got    chan *waiter // receives each dispatched waiter, tagged by tenant
	held   []*waiter
	queued map[string]int // tenant\x00class → enqueues so far (registration barrier)
}

func newQosHarness(t *testing.T, slots int, cfg QoSConfig) *qosHarness {
	return &qosHarness{t: t, q: newQsched(slots, cfg, nil), got: make(chan *waiter, 256), queued: make(map[string]int)}
}

func (h *qosHarness) hold(n int) {
	h.t.Helper()
	for i := 0; i < n; i++ {
		w, err := h.q.acquire(context.Background(), "holder", classInteractive, 1)
		if err != nil {
			h.t.Fatalf("hold slot %d: %v", i, err)
		}
		h.held = append(h.held, w)
	}
}

// enqueue starts an acquire in the background and blocks until that
// specific waiter is registered in its tenant queue (so the virtual start
// times of successive enqueues are assigned in call order, making the
// expected WFQ schedule exact).
func (h *qosHarness) enqueue(tenant string, class int, cost float64) {
	h.t.Helper()
	key := tenant + "\x00" + className(class)
	h.queued[key]++
	want := h.queued[key]
	go func() {
		w, err := h.q.acquire(context.Background(), tenant, class, cost)
		if err != nil {
			h.t.Errorf("acquire %s: %v", tenant, err)
			return
		}
		h.got <- w
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		h.q.mu.Lock()
		n := 0
		if ts, ok := h.q.tenants[tenant]; ok {
			for _, w := range ts.queues[class] {
				if w.state == waiting {
					n++
				}
			}
		}
		h.q.mu.Unlock()
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("waiter %d for %s never queued (have %d)", want, tenant, n)
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// drain releases one held slot per queued waiter and returns the tenant
// dispatch order. Each dispatched waiter's slot is held until its own
// release turn, so exactly one waiter runs per free slot.
func (h *qosHarness) drain(n int) []string {
	h.t.Helper()
	var order []string
	for i := 0; i < n; i++ {
		if len(h.held) == 0 {
			h.t.Fatal("no held slot to release")
		}
		h.q.release(h.held[0])
		h.held = h.held[1:]
		select {
		case w := <-h.got:
			order = append(order, w.tenant.name)
			h.held = append(h.held, w)
		case <-time.After(5 * time.Second):
			h.t.Fatalf("no waiter dispatched after release (order so far %v)", order)
		}
	}
	return order
}

// TestWFQWeightedOrder: with one slot and saturated demand from a
// weight-1 and a weight-3 tenant, dispatches follow virtual start times —
// the heavy tenant gets ~3 of every 4 slots.
func TestWFQWeightedOrder(t *testing.T) {
	h := newQosHarness(t, 1, QoSConfig{
		Tenants: map[string]TenantLimits{
			"light": {Weight: 1, MaxQueue: 64},
			"heavy": {Weight: 3, MaxQueue: 64},
		},
		InteractiveQueue: 64,
	})
	h.hold(1)
	for i := 0; i < 4; i++ {
		h.enqueue("light", classInteractive, 12)
	}
	for i := 0; i < 12; i++ {
		h.enqueue("heavy", classInteractive, 12)
	}
	order := h.drain(16)

	heavy := 0
	for _, name := range order[:8] {
		if name == "heavy" {
			heavy++
		}
	}
	// In any SFQ-fair first half, heavy holds a 3:1 share (±1 for the
	// tie-break at equal virtual start).
	if heavy < 5 || heavy > 7 {
		t.Errorf("first 8 dispatches gave heavy %d slots, want ~6 (order %v)", heavy, order)
	}
	if heavy == 8 {
		t.Errorf("light tenant starved in first half: %v", order)
	}
}

// TestWFQStarvationFreedom: a flood from one tenant cannot starve another;
// a late arrival with no banked service leaps to the front, and every
// request eventually dispatches.
func TestWFQStarvationFreedom(t *testing.T) {
	h := newQosHarness(t, 1, QoSConfig{InteractiveQueue: 256})
	h.hold(1)
	for i := 0; i < 30; i++ {
		h.enqueue("flooder", classInteractive, 10)
	}
	for i := 0; i < 2; i++ {
		h.enqueue("victim", classInteractive, 10)
	}
	order := h.drain(32) // completing at all is the starvation-freedom half

	firstVictim := -1
	for i, name := range order {
		if name == "victim" {
			firstVictim = i
			break
		}
	}
	if firstVictim < 0 {
		t.Fatalf("victim never dispatched: %v", order)
	}
	// The victim's first request enters at the global virtual clock — far
	// below the flooder's banked virtual finish — so it must not sit
	// behind the whole backlog.
	if firstVictim > 3 {
		t.Errorf("victim's first dispatch at position %d, want near the front (order %v)", firstVictim, order)
	}
}

// TestPriorityPreemption: when both classes wait, every interactive
// request dispatches before any batch request, even batch requests that
// arrived earlier.
func TestPriorityPreemption(t *testing.T) {
	h := newQosHarness(t, 1, QoSConfig{InteractiveQueue: 64, BatchQueue: 64})
	h.hold(1)
	for i := 0; i < 3; i++ {
		h.enqueue("batcher", classBatch, 10)
	}
	for i := 0; i < 3; i++ {
		h.enqueue("clicker", classInteractive, 10)
	}
	order := h.drain(6)
	want := []string{"clicker", "clicker", "clicker", "batcher", "batcher", "batcher"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (interactive must preempt batch)", order, want)
		}
	}
}

// TestInteractiveReserve: batch work may not occupy the reserved slots, so
// an interactive request always finds one free.
func TestInteractiveReserve(t *testing.T) {
	cfg := QoSConfig{InteractiveReserve: 1, BatchQueue: 64}
	q := newQsched(2, cfg, nil)

	// First batch job takes the one unreserved slot...
	w1, err := q.acquire(context.Background(), "batcher", classBatch, 1)
	if err != nil {
		t.Fatal(err)
	}
	// ...the second must queue even though a raw slot is free.
	second := make(chan *waiter, 1)
	go func() {
		w, err := q.acquire(context.Background(), "batcher", classBatch, 1)
		if err != nil {
			t.Errorf("queued batch acquire: %v", err)
			return
		}
		second <- w
	}()
	select {
	case <-second:
		t.Fatal("batch job occupied the interactive reserve")
	case <-time.After(20 * time.Millisecond):
	}
	// An interactive request takes the reserved slot immediately.
	wi, err := q.acquire(context.Background(), "clicker", classInteractive, 1)
	if err != nil {
		t.Fatalf("interactive request blocked by batch saturation: %v", err)
	}
	q.release(wi)
	q.release(w1)
	select {
	case w := <-second:
		q.release(w)
	case <-time.After(5 * time.Second):
		t.Fatal("queued batch job never dispatched after release")
	}
}

// TestQueueCancellation: a queued waiter whose context expires leaves the
// queue and does not consume a slot when one frees up later.
func TestQueueCancellation(t *testing.T) {
	q := newQsched(1, QoSConfig{InteractiveQueue: 8}, nil)
	held, err := q.acquire(context.Background(), "holder", classInteractive, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := q.acquire(ctx, "impatient", classInteractive, 1)
		errc <- err
	}()
	// Wait for it to queue, then abandon.
	for {
		if d := q.queueDepths(); d[classInteractive] == 1 {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("abandoned acquire: %v, want context.Canceled", err)
	}
	q.release(held)
	// The freed slot must be immediately acquirable: the canceled waiter
	// did not take it.
	w, err := q.acquire(context.Background(), "next", classInteractive, 1)
	if err != nil {
		t.Fatalf("slot leaked to canceled waiter: %v", err)
	}
	q.release(w)
}

// TestQuotaExhaustion429: a tenant at its in-flight quota sheds with 429
// and a Retry-After header while another tenant still gets slots —
// through the real HTTP stack.
func TestQuotaExhaustion429(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 4,
		QoS: QoSConfig{
			Tenants: map[string]TenantLimits{"capped": {MaxInFlight: 1}},
		},
	})
	b := newBlockingRun(s)
	h := s.Handler()

	post := func(tenant, scheduler string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
			strings.NewReader(`{"scheduler":"`+scheduler+`","frames":1}`))
		req.Header.Set("X-Tenant", tenant)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() { firstDone <- post("capped", "HEF") }()
	b.waitStarted(t)

	// Second distinct point from the capped tenant: quota shed.
	w := post("capped", "ASF")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("capped tenant second request: status %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("429 Retry-After %q, want integer >= 1", w.Header().Get("Retry-After"))
	}

	// A different tenant is unaffected: slots are free.
	other := make(chan *httptest.ResponseRecorder, 1)
	go func() { other <- post("roomy", "SJF") }()
	b.waitStarted(t)

	close(b.release)
	if w := <-firstDone; w.Code != http.StatusOK {
		t.Fatalf("capped tenant first request: status %d (body %s)", w.Code, w.Body.String())
	}
	if w := <-other; w.Code != http.StatusOK {
		t.Fatalf("other tenant: status %d (body %s)", w.Code, w.Body.String())
	}

	// The shed is attributed to the right tenant in /metrics.
	m := s.Metrics()
	if !strings.Contains(m, `rispp_tenant_shed_total{tenant="capped",reason="quota"} 1`) {
		t.Errorf("metrics missing capped-tenant quota shed:\n%s", m)
	}
}

// TestRateQuota429: cost-rate admission control sheds with a Retry-After
// derived from the token deficit.
func TestRateQuota429(t *testing.T) {
	s := newTestServer(t, Config{
		Workers: 4,
		QoS: QoSConfig{
			Tenants: map[string]TenantLimits{
				// The burst covers one cheap run; refill is so slow the
				// second request must shed.
				"metered": {CostPerSec: 0.1, Burst: 1.5},
			},
		},
	})
	h := s.Handler()
	post := func(scheduler string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
			strings.NewReader(`{"scheduler":"`+scheduler+`","frames":1}`))
		req.Header.Set("X-Tenant", "metered")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}
	if w := post("HEF"); w.Code != http.StatusOK {
		t.Fatalf("first metered request: status %d (body %s)", w.Code, w.Body.String())
	}
	w := post("ASF")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second metered request: status %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	if ra, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("rate shed Retry-After %q, want >= 1s", w.Header().Get("Retry-After"))
	}
	if !strings.Contains(s.Metrics(), `rispp_tenant_shed_total{tenant="metered",reason="rate"} 1`) {
		t.Errorf("metrics missing rate shed:\n%s", s.Metrics())
	}
}

// TestTenantIdentification: X-Tenant wins, bearer tokens map through the
// config, unknown callers fold to "anonymous", and hostile names are
// sanitized before becoming metric labels.
func TestTenantIdentification(t *testing.T) {
	s := newTestServer(t, Config{
		QoS: QoSConfig{Tokens: map[string]string{"s3cret": "alice"}},
	})
	cases := []struct {
		name   string
		header map[string]string
		want   string
	}{
		{"x-tenant", map[string]string{"X-Tenant": "bob"}, "bob"},
		{"token", map[string]string{"Authorization": "Bearer s3cret"}, "alice"},
		{"unknown token", map[string]string{"Authorization": "Bearer nope"}, "anonymous"},
		{"none", nil, "anonymous"},
		{"hostile label", map[string]string{"X-Tenant": `evil"} {inject`}, "evil____inject"},
		{"x-tenant beats token", map[string]string{"X-Tenant": "bob", "Authorization": "Bearer s3cret"}, "bob"},
	}
	for _, tc := range cases {
		h := http.Header{}
		for k, v := range tc.header {
			h.Set(k, v)
		}
		if got := s.tenantOf(h); got != tc.want {
			t.Errorf("%s: tenant %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestHotReloadLimits: UpdateQoS changes take effect for the next
// admission without restarting or disturbing in-flight work.
func TestHotReloadLimits(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	b := newBlockingRun(s)
	h := s.Handler()
	post := func(scheduler string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
			strings.NewReader(`{"scheduler":"`+scheduler+`","frames":1}`))
		req.Header.Set("X-Tenant", "t1")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	// Unlimited at first: a request runs and parks.
	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- post("HEF") }()
	b.waitStarted(t)

	// Tighten to MaxInFlight 1 while that request is still running.
	s.UpdateQoS(QoSConfig{Tenants: map[string]TenantLimits{"t1": {MaxInFlight: 1}}})
	if w := post("ASF"); w.Code != http.StatusTooManyRequests {
		t.Fatalf("after reload: status %d, want 429 (body %s)", w.Code, w.Body.String())
	}

	// Loosen again: the same request now runs.
	s.UpdateQoS(QoSConfig{})
	second := make(chan *httptest.ResponseRecorder, 1)
	go func() { second <- post("ASF") }()
	b.waitStarted(t)

	close(b.release)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("first: status %d", w.Code)
	}
	if w := <-second; w.Code != http.StatusOK {
		t.Fatalf("second after loosening: status %d", w.Code)
	}
}

// TestCostModelLearns: measured runs move the class EWMA toward the
// observed cost, and distinct cost classes stay separated.
func TestCostModelLearns(t *testing.T) {
	c := newCostModel()
	p := explore.Point{Scheduler: "HEF", Frames: 140}
	if prior := c.predict(p); prior <= 0 {
		t.Fatalf("prior cost %g, want > 0", prior)
	}
	for i := 0; i < 50; i++ {
		c.observe(p, 500*time.Microsecond)
	}
	got := c.predict(p)
	if got < 400 || got > 600 {
		t.Errorf("after observing 500µs runs, predict = %gµs, want ~500", got)
	}
	q := explore.Point{Scheduler: "software", Frames: 1}
	if c.predict(q) == got {
		t.Errorf("cost classes not separated: %q vs %q", costClass(p), costClass(q))
	}
}

// TestQoSMetricsExposition: the new SLO series render with the expected
// names and labels after traffic.
func TestQoSMetricsExposition(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
		strings.NewReader(`{"scheduler":"software","frames":1}`))
	req.Header.Set("X-Tenant", "alice")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("simulate: status %d", w.Code)
	}
	m := s.Metrics()
	for _, series := range []string{
		`rispp_endpoint_latency_seconds_count{route="/v1/simulate"} 1`,
		`rispp_tenant_admitted_total{tenant="alice",class="interactive"} 1`,
		`rispp_qos_queue_depth{class="interactive"} 0`,
		`rispp_qos_queue_depth{class="batch"} 0`,
		`rispp_cost_class_us{class="software/f1"}`,
	} {
		if !strings.Contains(m, series) {
			t.Errorf("metrics missing %q:\n%s", series, m)
		}
	}
}

// TestAccessLog: each request emits one structured JSON line with tenant,
// route, class and status.
func TestAccessLog(t *testing.T) {
	var buf syncBuffer
	s := newTestServer(t, Config{AccessLog: &buf})
	h := s.Handler()
	req := httptest.NewRequest(http.MethodPost, "/v1/simulate",
		strings.NewReader(`{"scheduler":"software","frames":1}`))
	req.Header.Set("X-Tenant", "alice")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	line := buf.String()
	for _, frag := range []string{`"route":"/v1/simulate"`, `"tenant":"alice"`, `"class":"interactive"`, `"code":200`, `"cache":"miss"`} {
		if !strings.Contains(line, frag) {
			t.Errorf("access log missing %s: %s", frag, line)
		}
	}
}

// TestQueuedInteractiveRunsAfterRelease: with a queue configured, an
// interactive request waits for a slot instead of shedding, then runs.
func TestQueuedInteractiveRunsAfterRelease(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, QoS: QoSConfig{InteractiveQueue: 8}})
	b := newBlockingRun(s)
	h := s.Handler()

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		first <- postJSON(t, h, "/v1/simulate", SimulateRequest{Point: explore.Point{Scheduler: "HEF", Frames: 1}})
	}()
	b.waitStarted(t)

	second := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		second <- postJSON(t, h, "/v1/simulate", SimulateRequest{Point: explore.Point{Scheduler: "ASF", Frames: 1}})
	}()
	// The second request queues rather than shedding; let it sit briefly.
	select {
	case w := <-second:
		t.Fatalf("queued request returned early: status %d (body %s)", w.Code, w.Body.String())
	case <-time.After(50 * time.Millisecond):
	}
	close(b.release)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("first: status %d", w.Code)
	}
	if w := <-second; w.Code != http.StatusOK {
		t.Fatalf("queued second: status %d (body %s)", w.Code, w.Body.String())
	}
}

// syncBuffer is a mutex-guarded buffer for concurrent log writes.
type syncBuffer struct {
	mu sync.Mutex
	b  []byte
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b = append(s.b, p...)
	return len(p), nil
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return string(s.b)
}
