package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"rispp"
)

// BenchmarkServeSimulate measures the in-process /v1/simulate handler hot
// path on a cached hit: tenant identification, QoS admission bookkeeping,
// cache lookup and response write — everything except the simulation
// itself. This is the per-request overhead the QoS layer adds, and the
// bench-regression gate holds its allocs/op flat.
func BenchmarkServeSimulate(b *testing.B) {
	s := New(Config{Workers: 1}, rispp.Config{})
	h := s.Handler()
	body := []byte(`{"scheduler":"HEF","acs":5,"frames":1,"seed_forecasts":true}`)

	// Warm the response cache so the steady state is a pure hit.
	warm := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
	warm.Header.Set("X-Tenant", "bench")
	wrec := httptest.NewRecorder()
	h.ServeHTTP(wrec, warm)
	if wrec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", wrec.Code, wrec.Body.String())
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
		req.Header.Set("X-Tenant", "bench")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}
