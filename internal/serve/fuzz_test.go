package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"rispp"
	"rispp/internal/serve"
	"rispp/internal/workload"
)

// FuzzServeSimulate throws arbitrary bytes at the strict JSON decoder and
// validation stack behind POST /v1/simulate. The server's panic recovery
// converts handler panics into 500s, so the oracle here is simple: no
// request body may ever produce a 5xx, and every 200 must carry a
// structurally sane SimulateResponse. The workload is pinned to a 2x2-MB
// single-frame trace so accepted requests simulate in microseconds
// regardless of what the frames knob asks for.
func FuzzServeSimulate(f *testing.F) {
	base := rispp.Config{Workload: workload.H264(workload.H264Config{Frames: 1, WidthMB: 2, HeightMB: 2})}
	srv := serve.New(serve.Config{}, base)
	srv.Logf = func(string, ...any) {} // keep fuzzing output clean of panic logs
	h := srv.Handler()

	f.Add([]byte(`{"scheduler":"HEF","acs":5}`))
	f.Add([]byte(`{"scheduler":"software"}`))
	f.Add([]byte(`{"scheduler":"Molen","acs":128,"frames":140,"seed_forecasts":true}`))
	f.Add([]byte(`{"scheduler":"HEF","acs":5,"collect":{"histogram_bucket":100000,"timeline":true}}`))
	f.Add([]byte(`{"scheduler":"HEF","timeout_ms":-1}`))
	f.Add([]byte(`{"scheduler":"HEF"} trailing`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"scheduler":"nope"}`))
	f.Add([]byte(`{"acs":-1}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{"scheduler":"HEF","motion":1e308,"scene_change":-2147483648}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		if rec.Code >= 500 {
			t.Fatalf("body %q produced status %d: %s", body, rec.Code, rec.Body.String())
		}
		if rec.Code == http.StatusOK {
			var resp serve.SimulateResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("200 response does not parse: %v", err)
			}
			if resp.TotalCycles <= 0 {
				t.Fatalf("accepted point simulated to %d cycles", resp.TotalCycles)
			}
			if resp.SWExecutions < 0 || resp.HWExecutions < 0 {
				t.Fatalf("negative execution counts: sw=%d hw=%d", resp.SWExecutions, resp.HWExecutions)
			}
		} else {
			var apiErr struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &apiErr); err != nil || apiErr.Error == "" {
				t.Fatalf("status %d without a JSON error body: %q", rec.Code, rec.Body.String())
			}
		}
	})
}
