// Package serve is the HTTP serving layer of the RISPP evaluation
// platform: a long-lived simulation-as-a-service daemon over the compiled
// hot path of internal/sim and the design-space exploration engine of
// internal/explore.
//
//	POST /v1/simulate   one design point → full JSON result
//	POST /v1/explore    a sweep spec → JSONL record stream (risppexplore bytes)
//	POST /v1/jobs       a sweep spec → async job id (resumable record stream)
//	GET  /v1/jobs/{id}  job progress; /stream?offset=N resumes the records
//	POST /v1/suggest    adaptive-search proposals: next points + Pareto front
//	GET  /v1/cache/{h}  cache-peer protocol: fleet-shared result entries
//	POST /v1/workers    fleet registry (coordinator nodes)
//	GET  /v1/healthz    liveness + drain state
//	GET  /metrics       Prometheus text exposition (stdlib only)
//
// A node becomes a sweep-fabric coordinator via Server.SetCoordinator:
// /v1/explore and /v1/jobs then shard across the registered workers (see
// internal/fabric), byte-identical to local execution.
//
// Requests are validated up front, deduplicated by the exploration
// engine's canonical point key, and executed on a bounded simulation
// limiter that reuses pooled sim.Results and memoized compiled traces
// (rispp.Runner), so steady-state request handling stays near zero
// allocations. Production behavior is first-class: per-request deadlines
// propagate into the simulator's event loop, saturation answers 429 with
// Retry-After, shutdown drains in-flight runs, and a per-request panic
// becomes a 500 instead of killing the daemon.
package serve

import (
	"io"
	"runtime"
	"time"
)

// Config tunes the server. The zero value serves paper defaults on
// :8264 with GOMAXPROCS concurrent simulations.
type Config struct {
	// Addr is the listen address (":8264" if empty).
	Addr string
	// Workers bounds concurrently running simulations across all requests;
	// <= 0 selects runtime.GOMAXPROCS(0). /v1/simulate answers 429 when no
	// slot is free; /v1/explore jobs queue for slots instead.
	Workers int
	// ExploreWorkers bounds the per-request exploration pool; <= 0 selects
	// Workers. Each exploration job still takes a limiter slot to run.
	ExploreWorkers int
	// DefaultTimeout is the simulation deadline applied when a request
	// names none (0: MaxTimeout).
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request deadline (0: 2 minutes).
	MaxTimeout time.Duration
	// MaxBodyBytes caps request bodies (0: 1 MiB).
	MaxBodyBytes int64
	// MaxFrames caps the workload size a request may ask for (0: 10000).
	MaxFrames int
	// MaxPoints caps the expanded job count of one /v1/explore spec
	// (0: 4096).
	MaxPoints int
	// CacheEntries sizes the in-memory response cache for /v1/simulate,
	// keyed by canonical point key + collect options (0: 4096; < 0
	// disables caching).
	CacheEntries int
	// RetryAfter is the Retry-After hint answered on saturation
	// (0: 1 second).
	RetryAfter time.Duration
	// QoS is the multi-tenant policy: tenant identification, quotas,
	// weighted fair queueing and priority classes over the simulation-slot
	// pool. The zero value keeps the pre-QoS single-tenant behavior
	// (immediate shed on saturation, no quotas). Limits can be hot-swapped
	// at run time with Server.UpdateQoS.
	QoS QoSConfig
	// MaxJobs caps the async sweep jobs retained by /v1/jobs; terminal
	// jobs beyond the cap are evicted oldest-first, and job creation fails
	// once the store is full of running jobs (0: 64).
	MaxJobs int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (CPU, heap,
	// goroutine, ... profiles). Off by default: profiling endpoints leak
	// internals and cost CPU, so production fleets opt in explicitly.
	EnablePprof bool
	// AccessLog, when non-nil, receives one JSON line per completed
	// request (route, tenant, class, status, duration, cache outcome).
	// Writes are serialized by the server.
	AccessLog io.Writer
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8264"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.ExploreWorkers <= 0 || c.ExploreWorkers > c.Workers {
		c.ExploreWorkers = c.Workers
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.DefaultTimeout <= 0 || c.DefaultTimeout > c.MaxTimeout {
		c.DefaultTimeout = c.MaxTimeout
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxFrames == 0 {
		c.MaxFrames = 10000
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = 4096
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	return c
}
