package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rispp"
	"rispp/internal/explore"
	"rispp/internal/isa"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s := New(cfg, rispp.Config{})
	s.Logf = t.Logf
	return s
}

// postJSON is goroutine-safe (several tests post from helpers), so it
// panics rather than calling t.Fatal on the can't-happen marshal error.
func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeSimulate(t *testing.T, w *httptest.ResponseRecorder) SimulateResponse {
	t.Helper()
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp SimulateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp
}

// TestSimulateMatchesRun is the acceptance gate: the service must answer
// the paper's H.264 workload with exactly the numbers rispp.Run (and
// therefore risppsim) produces for the same scheduler/AC configuration.
func TestSimulateMatchesRun(t *testing.T) {
	frames := 140
	if testing.Short() {
		frames = 5
	}
	s := newTestServer(t, Config{})
	for _, scheduler := range []string{"HEF", "Molen", "software"} {
		w := postJSON(t, s.Handler(), "/v1/simulate", SimulateRequest{
			Point: explore.Point{Scheduler: scheduler, NumACs: 10, Frames: frames, SeedForecasts: true},
		})
		got := decodeSimulate(t, w)

		want, err := rispp.Run(rispp.Config{Scheduler: scheduler, NumACs: 10, SeedForecasts: true,
			Workload: nil, ISA: nil, Collect: sim.Options{}})
		if frames != 140 {
			want, err = rispp.Run(rispp.Config{Scheduler: scheduler, NumACs: 10, SeedForecasts: true,
				Workload: workloadFrames(frames)})
		}
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalCycles != want.TotalCycles {
			t.Errorf("%s: served cycles %d, direct run %d", scheduler, got.TotalCycles, want.TotalCycles)
		}
		if got.StallCycles != want.StallCycles {
			t.Errorf("%s: served stall %d, direct run %d", scheduler, got.StallCycles, want.StallCycles)
		}
		if got.SWExecutions != want.TotalSWExecutions() || got.HWExecutions != want.TotalHWExecutions() {
			t.Errorf("%s: served sw/hw %d/%d, direct run %d/%d", scheduler,
				got.SWExecutions, got.HWExecutions, want.TotalSWExecutions(), want.TotalHWExecutions())
		}
		if got.Runtime != want.Runtime {
			t.Errorf("%s: served runtime %q, direct run %q", scheduler, got.Runtime, want.Runtime)
		}
		if len(got.SIs) == 0 {
			t.Errorf("%s: no per-SI stats", scheduler)
		}
		for _, si := range got.SIs {
			if n := want.ExecutionsOf(isaSIID(si.SI)); n != si.Executions {
				t.Errorf("%s: SI %d executions %d, want %d", scheduler, si.SI, si.Executions, n)
			}
		}
	}
}

func TestSimulateCollectArtifacts(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/v1/simulate", SimulateRequest{
		Point:   explore.Point{Scheduler: "HEF", NumACs: 10, Frames: 1, SeedForecasts: true},
		Collect: CollectSpec{HistogramBucket: 100_000, Timeline: true},
	})
	resp := decodeSimulate(t, w)
	if resp.HistogramBucket != 100_000 || len(resp.Histograms) == 0 {
		t.Errorf("missing histograms: bucket %d, %d series", resp.HistogramBucket, len(resp.Histograms))
	}
	if len(resp.Timeline) == 0 {
		t.Error("missing timeline steps")
	}
}

func TestSimulateValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxFrames: 500})
	h := s.Handler()
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{"scheduler":`},
		{"unknown field", `{"scheduler":"HEF","warp_factor":9}`},
		{"unknown scheduler", `{"scheduler":"LRU"}`},
		{"negative acs", `{"scheduler":"HEF","acs":-1}`},
		{"motion out of range", `{"scheduler":"HEF","motion":1.5}`},
		{"frames over limit", `{"scheduler":"HEF","frames":501}`},
		{"acs over limit", `{"scheduler":"HEF","acs":1000}`},
		{"negative timeout", `{"scheduler":"HEF","timeout_ms":-1}`},
		{"trailing garbage", `{"scheduler":"HEF"} {"again":true}`},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/simulate", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
		}
		var e apiError
		if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not a JSON error", tc.name, w.Body.String())
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/simulate", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", w.Code)
	}
}

// TestSimulateDeadline exercises the real deadline path: a 2000-frame run
// takes far longer than 1 ms, so the context expires inside the simulator's
// event loop and surfaces as 504.
func TestSimulateDeadline(t *testing.T) {
	s := newTestServer(t, Config{})
	w := postJSON(t, s.Handler(), "/v1/simulate", SimulateRequest{
		Point:     explore.Point{Scheduler: "HEF", NumACs: 10, Frames: 2000, SeedForecasts: true},
		TimeoutMS: 1,
	})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", w.Code, w.Body.String())
	}
}

// blockingRun replaces Server.runPoint with a run that parks until released
// (or the context expires), so saturation and drain become deterministic.
type blockingRun struct {
	started chan struct{} // one tick per run that began
	release chan struct{} // close to let all runs finish
}

func newBlockingRun(s *Server) *blockingRun {
	b := &blockingRun{started: make(chan struct{}, 64), release: make(chan struct{})}
	s.runPoint = func(ctx context.Context, p explore.Point, collect sim.Options, res *sim.Result) error {
		b.started <- struct{}{}
		select {
		case <-b.release:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("sim: canceled: %w", ctx.Err())
		}
	}
	return b
}

func (b *blockingRun) waitStarted(t *testing.T) {
	t.Helper()
	select {
	case <-b.started:
	case <-time.After(5 * time.Second):
		t.Fatal("simulation never started")
	}
}

func TestSimulateSaturation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	b := newBlockingRun(s)
	h := s.Handler()

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		firstDone <- postJSON(t, h, "/v1/simulate", SimulateRequest{
			Point: explore.Point{Scheduler: "HEF", Frames: 1},
		})
	}()
	b.waitStarted(t)

	// A different point (same pool) must shed with 429 + Retry-After.
	w := postJSON(t, h, "/v1/simulate", SimulateRequest{
		Point: explore.Point{Scheduler: "ASF", Frames: 1},
	})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(b.release)
	if w := <-firstDone; w.Code != http.StatusOK {
		t.Fatalf("first request: status %d after release (body %s)", w.Code, w.Body.String())
	}
}

// TestSimulateCoalesce: concurrent identical requests share one simulation
// instead of each taking a slot (single-flight on the canonical point key).
func TestSimulateCoalesce(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	b := newBlockingRun(s)
	h := s.Handler()

	point := SimulateRequest{Point: explore.Point{Scheduler: "HEF", Frames: 1}}
	results := make(chan *httptest.ResponseRecorder, 2)
	go func() { results <- postJSON(t, h, "/v1/simulate", point) }()
	b.waitStarted(t)
	go func() { results <- postJSON(t, h, "/v1/simulate", point) }()

	// The second identical request must NOT need a second slot (none is
	// free) — it waits on the leader. Give it a moment to either coalesce
	// or (wrongly) shed.
	time.Sleep(50 * time.Millisecond)
	close(b.release)
	sawHit := false
	for i := 0; i < 2; i++ {
		w := <-results
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d (body %s)", i, w.Code, w.Body.String())
		}
		if w.Header().Get("X-Cache") == "hit" {
			sawHit = true
		}
	}
	if !sawHit {
		t.Error("no request reported X-Cache: hit; coalescing/caching broken")
	}
	select {
	case <-b.started:
		t.Error("identical concurrent request started a second simulation")
	default:
	}
}

func TestSimulateCacheHit(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	req := SimulateRequest{Point: explore.Point{Scheduler: "HEF", NumACs: 10, Frames: 1, SeedForecasts: true}}

	w1 := postJSON(t, h, "/v1/simulate", req)
	w2 := postJSON(t, h, "/v1/simulate", req)
	if w1.Code != http.StatusOK || w2.Code != http.StatusOK {
		t.Fatalf("status %d / %d", w1.Code, w2.Code)
	}
	if got := w1.Header().Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache %q, want miss", got)
	}
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Errorf("second request X-Cache %q, want hit", got)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Error("cached body differs from computed body")
	}
	if s.cache.len() != 1 {
		t.Errorf("cache holds %d entries, want 1", s.cache.len())
	}
	if s.Metrics() == "" || !strings.Contains(s.Metrics(), `rispp_simulate_cache_total{outcome="hit"} 1`) {
		t.Errorf("metrics missing cache hit:\n%s", s.Metrics())
	}
}

// TestGracefulDrain: Shutdown lets the in-flight simulation finish while
// new requests shed with 503, then returns.
func TestGracefulDrain(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	b := newBlockingRun(s)
	h := s.Handler()

	firstDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		firstDone <- postJSON(t, h, "/v1/simulate", SimulateRequest{
			Point: explore.Point{Scheduler: "HEF", Frames: 1},
		})
	}()
	b.waitStarted(t)

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Wait for the drain gate to flip, then verify load shedding.
	deadline := time.Now().Add(5 * time.Second)
	for !s.closing.Load() {
		if time.Now().After(deadline) {
			t.Fatal("Shutdown never set the drain gate")
		}
		time.Sleep(time.Millisecond)
	}
	w := postJSON(t, h, "/v1/simulate", SimulateRequest{Point: explore.Point{Scheduler: "ASF", Frames: 1}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status %d, want 503", w.Code)
	}
	wh := httptest.NewRecorder()
	h.ServeHTTP(wh, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if wh.Code != http.StatusServiceUnavailable || !strings.Contains(wh.Body.String(), "draining") {
		t.Errorf("healthz during drain: status %d body %s, want 503 draining", wh.Code, wh.Body.String())
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v while a request was in flight", err)
	default:
	}

	close(b.release)
	if w := <-firstDone; w.Code != http.StatusOK {
		t.Fatalf("draining request: status %d, want 200 (body %s)", w.Code, w.Body.String())
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return after drain")
	}
}

func TestShutdownDeadline(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	b := newBlockingRun(s)
	h := s.Handler()
	go postJSON(t, h, "/v1/simulate", SimulateRequest{Point: explore.Point{Scheduler: "HEF", Frames: 1}})
	b.waitStarted(t)
	defer close(b.release)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
}

func TestPanicRecovery(t *testing.T) {
	s := newTestServer(t, Config{})
	s.runPoint = func(ctx context.Context, p explore.Point, collect sim.Options, res *sim.Result) error {
		panic("boom")
	}
	w := postJSON(t, s.Handler(), "/v1/simulate", SimulateRequest{Point: explore.Point{Scheduler: "HEF", Frames: 1}})
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %s)", w.Code, w.Body.String())
	}
	if !strings.Contains(s.Metrics(), "rispp_panics_total 1") {
		t.Errorf("metrics missing panic count:\n%s", s.Metrics())
	}
	// The server survives: the next (different) request succeeds.
	s.runPoint = s.runner.RunPoint
	w = postJSON(t, s.Handler(), "/v1/simulate", SimulateRequest{Point: explore.Point{Scheduler: "ASF", Frames: 1}})
	if w.Code != http.StatusOK {
		t.Fatalf("after panic: status %d, want 200", w.Code)
	}
}

// TestConcurrentSimulate fires parallel mixed requests; under -race this is
// the serving layer's data-race gate. Every response must equal the
// deterministic direct run.
func TestConcurrentSimulate(t *testing.T) {
	s := newTestServer(t, Config{Workers: 4})
	h := s.Handler()
	points := []explore.Point{
		{Scheduler: "HEF", NumACs: 10, Frames: 1, SeedForecasts: true},
		{Scheduler: "ASF", NumACs: 8, Frames: 1, SeedForecasts: true},
		{Scheduler: "Molen", NumACs: 10, Frames: 1, SeedForecasts: true},
		{Scheduler: "software", Frames: 1},
	}
	want := make(map[string]int64)
	for _, p := range points {
		res, err := rispp.Run(rispp.Config{Scheduler: p.Scheduler, NumACs: p.NumACs,
			SeedForecasts: p.SeedForecasts, Workload: workloadFrames(1)})
		if err != nil {
			t.Fatal(err)
		}
		want[p.Scheduler] = res.TotalCycles
	}

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 16; i++ {
		p := points[i%len(points)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := postJSON(t, h, "/v1/simulate", SimulateRequest{Point: p})
			if w.Code == http.StatusTooManyRequests {
				return // legitimate shedding under load
			}
			if w.Code != http.StatusOK {
				errs <- fmt.Sprintf("%s: status %d (body %s)", p.Scheduler, w.Code, w.Body.String())
				return
			}
			var resp SimulateResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				errs <- fmt.Sprintf("%s: decode: %v", p.Scheduler, err)
				return
			}
			if resp.TotalCycles != want[p.Scheduler] {
				errs <- fmt.Sprintf("%s: cycles %d, want %d", p.Scheduler, resp.TotalCycles, want[p.Scheduler])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestExploreStream: the HTTP stream must be byte-identical to the
// exploration engine's JSONL output for the same spec (which risppexplore
// prints), and arrive as application/x-ndjson.
func TestExploreStream(t *testing.T) {
	spec := explore.Spec{
		Schedulers: []string{"software", "Molen"},
		ACs:        []int{4, 6},
		Frames:     []int{1},
	}

	var direct bytes.Buffer
	if _, err := rispp.Explorer(rispp.Config{}, 2, nil).Execute(context.Background(), spec, &direct); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(ExploreRequest{Spec: spec})
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	if got := resp.Header.Get("X-Points"); got != "4" {
		t.Errorf("X-Points %q, want 4", got)
	}
	streamed, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, direct.Bytes()) {
		t.Errorf("served stream differs from engine output:\nserved: %s\ndirect: %s", streamed, direct.Bytes())
	}
}

func TestExploreValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxPoints: 3})
	h := s.Handler()
	cases := []struct {
		name string
		body string
	}{
		{"bad json", `{"spec":`},
		{"empty spec", `{"spec":{}}`},
		{"bad scheduler", `{"spec":{"schedulers":["LRU"],"acs":[4]}}`},
		{"too many points", `{"spec":{"schedulers":["HEF"],"acs":[1,2,3,4],"frames":[1]}}`},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodPost, "/v1/explore", strings.NewReader(tc.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
		}
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"status":"ok"`) {
		t.Errorf("healthz: status %d body %s", w.Code, w.Body.String())
	}

	postJSON(t, h, "/v1/simulate", SimulateRequest{Point: explore.Point{Scheduler: "software", Frames: 1}})

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", w.Code)
	}
	for _, series := range []string{
		`rispp_requests_total{route="/v1/simulate",code="200"} 1`,
		`rispp_requests_total{route="/v1/healthz",code="200"} 1`,
		"rispp_request_duration_seconds_count 2",
		"rispp_inflight_simulations 0",
		"rispp_panics_total 0",
	} {
		if !strings.Contains(w.Body.String(), series) {
			t.Errorf("metrics missing %q:\n%s", series, w.Body.String())
		}
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown route: status %d, want 404", w.Code)
	}
}

func TestRespCacheLRU(t *testing.T) {
	c := newRespCache(2)
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		k := k
		if _, hit, err := c.do(ctx, k, func() ([]byte, error) { return []byte(k), nil }); hit || err != nil {
			t.Fatalf("%s: hit=%v err=%v on first compute", k, hit, err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("cache len %d, want 2 after eviction", c.len())
	}
	// "a" was evicted (least recent), "b" and "c" remain.
	calls := 0
	if _, hit, _ := c.do(ctx, "b", func() ([]byte, error) { calls++; return []byte("b"), nil }); !hit {
		t.Error("b evicted too early")
	}
	if _, hit, _ := c.do(ctx, "a", func() ([]byte, error) { calls++; return []byte("a"), nil }); hit {
		t.Error("a survived eviction")
	}
	if calls != 1 {
		t.Errorf("%d recomputes, want 1", calls)
	}
}

func TestRespCacheLeaderFailureNotShared(t *testing.T) {
	c := newRespCache(4)
	ctx := context.Background()
	if _, _, err := c.do(ctx, "k", func() ([]byte, error) { return nil, fmt.Errorf("transient") }); err == nil {
		t.Fatal("leader error lost")
	}
	body, hit, err := c.do(ctx, "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(body) != "ok" {
		t.Fatalf("retry after failure: body=%q hit=%v err=%v", body, hit, err)
	}
}

// workloadFrames builds the n-frame paper workload — the same trace the
// server materializes from explore.Point knobs via rispp.Runner.
func workloadFrames(n int) *workload.Trace {
	return workload.H264(workload.H264Config{Frames: n})
}

func isaSIID(i int) isa.SIID { return isa.SIID(i) }
