// Race stress of the QoS layer: two tenants with different weights and
// quotas push interactive /v1/simulate traffic and batch /v1/explore
// sweeps through one server (one shared rispp.Runner, one WFQ scheduler)
// concurrently with a hot limits reload. Run under -race (the CI race job
// does). Correctness oracle: every 200 carries the deterministic direct-
// run cycle count, every shed is a well-formed 429, and the scheduler's
// books balance afterwards (no leaked slots, empty queues).
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rispp"
	"rispp/internal/explore"
	"rispp/internal/sim"
)

func TestTwoTenantTrafficRaceFree(t *testing.T) {
	pts := []explore.Point{
		{Scheduler: "HEF", NumACs: 5, Frames: 1, SeedForecasts: true},
		{Scheduler: "HEF", NumACs: 10, Frames: 1, SeedForecasts: true},
		{Scheduler: "SJF", NumACs: 5, Frames: 1, SeedForecasts: true},
		{Scheduler: "Molen", NumACs: 5, Frames: 1, SeedForecasts: true},
		{Scheduler: "software", NumACs: 0, Frames: 1, SeedForecasts: true},
	}
	want := make(map[string]int64, len(pts))
	seq := rispp.NewRunner(rispp.Config{})
	for _, p := range pts {
		res := new(sim.Result)
		if err := seq.RunPoint(context.Background(), p, sim.Options{}, res); err != nil {
			t.Fatal(err)
		}
		want[p.Normalized().Key()] = res.TotalCycles
	}

	var logBuf syncBuffer
	s := New(Config{
		Workers:      4,
		CacheEntries: -1, // every request goes through QoS + the runner
		AccessLog:    &logBuf,
		QoS: QoSConfig{
			Tenants: map[string]TenantLimits{
				"gold":   {Weight: 3, MaxQueue: 128},
				"bronze": {Weight: 1, MaxInFlight: 3, MaxQueue: 128},
			},
			InteractiveQueue: 128,
			BatchQueue:       128,
		},
	}, rispp.Config{DisableDelta: true})
	s.Logf = t.Logf
	h := s.Handler()

	spec := explore.Spec{Points: pts}
	specBody, err := json.Marshal(ExploreRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 5
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		tenant := "gold"
		if g%2 == 1 {
			tenant = "bronze"
		}
		// Interactive stream.
		wg.Add(1)
		go func(g int, tenant string) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for off := range pts {
					p := pts[(g+off)%len(pts)]
					body, err := json.Marshal(SimulateRequest{Point: p})
					if err != nil {
						panic(err)
					}
					req := httptest.NewRequest(http.MethodPost, "/v1/simulate", bytes.NewReader(body))
					req.Header.Set("X-Tenant", tenant)
					w := httptest.NewRecorder()
					h.ServeHTTP(w, req)
					switch w.Code {
					case http.StatusOK:
						var resp SimulateResponse
						if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
							t.Errorf("%s: decode: %v", tenant, err)
							return
						}
						if resp.TotalCycles != want[resp.Point.Key()] {
							t.Errorf("%s: %s: cycles %d, want %d", tenant, resp.Point.Key(),
								resp.TotalCycles, want[resp.Point.Key()])
							return
						}
					case http.StatusTooManyRequests:
						if w.Header().Get("Retry-After") == "" {
							t.Errorf("%s: 429 without Retry-After", tenant)
							return
						}
					default:
						t.Errorf("%s: status %d (body %s)", tenant, w.Code, w.Body.String())
						return
					}
				}
			}
		}(g, tenant)
		// Batch stream: whole sweeps at batch priority.
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/explore", bytes.NewReader(specBody))
				req.Header.Set("X-Tenant", tenant)
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					t.Errorf("%s: sweep status %d (body %s)", tenant, w.Code, w.Body.String())
					return
				}
				for _, line := range strings.Split(strings.TrimSpace(w.Body.String()), "\n") {
					var rec explore.Record
					if err := json.Unmarshal([]byte(line), &rec); err != nil {
						t.Errorf("%s: sweep record: %v", tenant, err)
						return
					}
					if rec.Err != "" {
						t.Errorf("%s: sweep point %s: %s", tenant, rec.Point.Key(), rec.Err)
						return
					}
					if rec.TotalCycles != want[rec.Point.Key()] {
						t.Errorf("%s: sweep %s: cycles %d, want %d", tenant, rec.Point.Key(),
							rec.TotalCycles, want[rec.Point.Key()])
						return
					}
				}
			}
		}(tenant)
	}
	// Concurrent hot reloads must not disturb either traffic stream.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			s.UpdateQoS(QoSConfig{
				Tenants: map[string]TenantLimits{
					"gold":   {Weight: 3 + i%2, MaxQueue: 128},
					"bronze": {Weight: 1, MaxInFlight: 3 + i%3, MaxQueue: 128},
				},
				InteractiveQueue: 128,
				BatchQueue:       128,
			})
		}
	}()
	wg.Wait()

	// The books must balance: no slot leaked, no waiter stranded.
	s.qos.mu.Lock()
	used, batchUsed := s.qos.used, s.qos.batchUsed
	s.qos.mu.Unlock()
	if used != 0 || batchUsed != 0 {
		t.Errorf("slots leaked after drain: used=%d batchUsed=%d", used, batchUsed)
	}
	if d := s.qos.queueDepths(); d[classInteractive] != 0 || d[classBatch] != 0 {
		t.Errorf("waiters stranded: %v", d)
	}
	// Both tenants were admitted and logged.
	m := s.Metrics()
	for _, series := range []string{
		`rispp_tenant_admitted_total{tenant="gold",class="interactive"}`,
		`rispp_tenant_admitted_total{tenant="bronze",class="batch"}`,
	} {
		if !strings.Contains(m, series) {
			t.Errorf("metrics missing %q after stress:\n%s", series, m)
		}
	}
	if !strings.Contains(logBuf.String(), `"tenant":"gold"`) || !strings.Contains(logBuf.String(), `"tenant":"bronze"`) {
		t.Error("access log missing tenant lines")
	}
}
