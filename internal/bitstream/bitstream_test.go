package bitstream

import (
	"testing"
	"testing/quick"

	"rispp/internal/isa"
	"rispp/internal/reconfig"
)

func TestGenerateParseRoundTrip(t *testing.T) {
	is := isa.H264()
	for _, a := range is.Atoms {
		img := Generate(a, 42)
		if len(img) != a.BitstreamBytes {
			t.Fatalf("atom %q: image %d bytes, want %d", a.Name, len(img), a.BitstreamBytes)
		}
		h, err := Parse(img)
		if err != nil {
			t.Fatalf("atom %q: %v", a.Name, err)
		}
		if h.Atom != a.ID {
			t.Errorf("atom %q: header atom %d", a.Name, h.Atom)
		}
		if h.Rows != CLBRows {
			t.Errorf("atom %q: rows = %d, want %d (paper's FPGA constraint)", a.Name, h.Rows, CLBRows)
		}
		if h.PayloadLen != a.BitstreamBytes-headerLen-crcLen {
			t.Errorf("atom %q: payload %d", a.Name, h.PayloadLen)
		}
		if h.Frames != h.PayloadLen/FrameBytes {
			t.Errorf("atom %q: frames %d", a.Name, h.Frames)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := isa.H264().Atoms[0]
	x := Generate(a, 7)
	y := Generate(a, 7)
	if string(x) != string(y) {
		t.Fatal("generation not deterministic")
	}
	z := Generate(a, 8)
	if string(x) == string(z) {
		t.Fatal("seed ignored")
	}
}

func TestParseRejectsCorruption(t *testing.T) {
	a := isa.H264().Atoms[0]
	base := Generate(a, 1)

	cases := []struct {
		name   string
		mutate func(Image) Image
	}{
		{"truncated", func(img Image) Image { return img[:10] }},
		{"bad magic", func(img Image) Image { img[0] = 'X'; return img }},
		{"bad version", func(img Image) Image { img[4] = 99; return img }},
		{"length mismatch", func(img Image) Image { return append(img, 0) }},
		{"payload bit flip", func(img Image) Image { img[headerLen+100] ^= 0x01; return img }},
		{"crc tampered", func(img Image) Image { img[len(img)-1] ^= 0xFF; return img }},
	}
	for _, c := range cases {
		img := append(Image(nil), base...)
		if _, err := Parse(c.mutate(img)); err == nil {
			t.Errorf("%s: Parse accepted a corrupt image", c.name)
		}
	}
}

func TestEveryPayloadBitFlipIsDetected(t *testing.T) {
	// CRC-16 detects all single-bit errors; inject one at every byte
	// position of a small sampled stride.
	a := isa.AtomType{ID: 3, Name: "t", BitstreamBytes: 256}
	base := Generate(a, 5)
	for pos := 0; pos < len(base)-crcLen; pos += 7 {
		for bit := 0; bit < 8; bit++ {
			img := append(Image(nil), base...)
			img[pos] ^= 1 << bit
			if _, err := Parse(img); err == nil {
				t.Fatalf("bit flip at byte %d bit %d undetected", pos, bit)
			}
		}
	}
}

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/CCITT-FALSE("123456789") = 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %04x, want 29b1", got)
	}
	if CRC16(nil) != 0xFFFF {
		t.Fatal("CRC16(empty) != initial value")
	}
}

func TestCRC16LinearityProperty(t *testing.T) {
	// Appending the big-endian CRC to the message and re-checksumming
	// yields 0 for this CRC variant.
	err := quick.Check(func(data []byte) bool {
		crc := CRC16(data)
		full := append(append([]byte(nil), data...), byte(crc>>8), byte(crc))
		return CRC16(full) == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepository(t *testing.T) {
	is := isa.H264()
	r, err := NewRepository(is, 99)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, a := range is.Atoms {
		img := r.Image(a.ID)
		if len(img) != a.BitstreamBytes {
			t.Errorf("atom %q image size %d", a.Name, len(img))
		}
		total += a.BitstreamBytes
	}
	if r.TotalBytes() != total {
		t.Fatalf("TotalBytes = %d, want %d", r.TotalBytes(), total)
	}
}

func TestRepositoryTimingMatchesISACalibration(t *testing.T) {
	// The reconfiguration latency derived from the actual image bytes must
	// equal the latency the rest of the system computes from the ISA data.
	is := isa.H264()
	r, err := NewRepository(is, 1)
	if err != nil {
		t.Fatal(err)
	}
	tm := reconfig.DefaultTiming()
	for _, a := range is.Atoms {
		fromImage := r.LoadCycles(a.ID, tm)
		fromISA := tm.LoadCycles(a.BitstreamBytes)
		if fromImage != fromISA {
			t.Errorf("atom %q: image timing %d != ISA timing %d", a.Name, fromImage, fromISA)
		}
	}
}

func TestGenerateTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tiny bitstream did not panic")
		}
	}()
	Generate(isa.AtomType{Name: "x", BitstreamBytes: 4}, 0)
}
