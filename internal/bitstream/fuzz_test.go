package bitstream

import (
	"testing"

	"rispp/internal/isa"
)

// FuzzParse hardens the bitstream parser against arbitrary byte soup: it
// must never panic, and anything it accepts must be self-consistent.
func FuzzParse(f *testing.F) {
	for _, a := range isa.H264().Atoms[:3] {
		f.Add([]byte(Generate(a, 1)))
	}
	f.Add([]byte("RBIT"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := Parse(data)
		if err != nil {
			return
		}
		if h.PayloadLen != len(data)-headerLen-crcLen {
			t.Fatalf("accepted image with inconsistent payload length %d (total %d)", h.PayloadLen, len(data))
		}
		if h.Frames != h.PayloadLen/FrameBytes {
			t.Fatalf("accepted image with inconsistent frame count")
		}
	})
}
