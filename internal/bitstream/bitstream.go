// Package bitstream models the partial-reconfiguration bitstreams of the
// RISPP prototype. The paper's Atoms are implemented as module-based
// partial bitstreams (Xilinx XAPP290 flow) spanning four CLB rows on the
// xc2v3000, averaging 60,488 bytes and loading through the SelectMap/ICAP
// port in on average 874.03 µs.
//
// Since the real bitstreams are device-specific binaries, this package
// generates synthetic images with the same sizes and a realistic on-disk
// structure — header, configuration frames, CRC — plus the repository the
// Run-Time Manager fetches them from. The reconfiguration *timing* derives
// from the true byte sizes, so every latency in the repo is anchored to
// these images.
package bitstream

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"rispp/internal/isa"
	"rispp/internal/reconfig"
)

// Magic identifies a RISPP partial bitstream image.
const Magic = "RBIT"

// Version of the image format.
const Version = 1

// CLBRows is the height of every Atom module; the paper notes the
// FPGA-specific constraint of using four CLB rows.
const CLBRows = 4

// FrameBytes is the size of one synthetic configuration frame (the
// Virtex-II frame of the xc2v3000 is 824 bytes).
const FrameBytes = 824

// headerLen is the fixed image header size; crcLen the trailing checksum.
const (
	headerLen = 16
	crcLen    = 2
)

// Header describes a parsed bitstream image.
type Header struct {
	Atom       isa.AtomID
	Rows       int
	Frames     int // full configuration frames in the payload
	PayloadLen int // payload bytes (tail frame may be partial)
}

// Image is one partial bitstream: header, frame payload, CRC-16 trailer.
type Image []byte

// Generate builds the synthetic partial bitstream of an Atom. The total
// image length equals the Atom's BitstreamBytes exactly, so reconfiguration
// timing computed from the image matches the ISA's calibration. Generation
// is deterministic in (atom.ID, seed).
func Generate(atom isa.AtomType, seed int64) Image {
	total := atom.BitstreamBytes
	if total < headerLen+crcLen {
		panic(fmt.Sprintf("bitstream: atom %q bitstream too small (%d bytes)", atom.Name, total))
	}
	payload := total - headerLen - crcLen
	img := make(Image, total)
	copy(img, Magic)
	img[4] = Version
	img[5] = byte(atom.ID)
	img[6] = CLBRows
	img[7] = 0 // reserved
	binary.BigEndian.PutUint32(img[8:12], uint32(payload))
	binary.BigEndian.PutUint32(img[12:16], uint32(payload/FrameBytes))

	rng := rand.New(rand.NewSource(seed ^ int64(atom.ID)<<32))
	body := img[headerLen : headerLen+payload]
	rng.Read(body)

	crc := CRC16(img[:headerLen+payload])
	binary.BigEndian.PutUint16(img[headerLen+payload:], crc)
	return img
}

// Parse validates an image (magic, version, lengths, CRC) and returns its
// header.
func Parse(img Image) (Header, error) {
	var h Header
	if len(img) < headerLen+crcLen {
		return h, fmt.Errorf("bitstream: image truncated (%d bytes)", len(img))
	}
	if string(img[:4]) != Magic {
		return h, fmt.Errorf("bitstream: bad magic %q", img[:4])
	}
	if img[4] != Version {
		return h, fmt.Errorf("bitstream: unsupported version %d", img[4])
	}
	payload := int(binary.BigEndian.Uint32(img[8:12]))
	if len(img) != headerLen+payload+crcLen {
		return h, fmt.Errorf("bitstream: length %d does not match header payload %d", len(img), payload)
	}
	want := binary.BigEndian.Uint16(img[headerLen+payload:])
	if got := CRC16(img[:headerLen+payload]); got != want {
		return h, fmt.Errorf("bitstream: CRC mismatch: computed %04x, stored %04x", got, want)
	}
	h.Atom = isa.AtomID(img[5])
	h.Rows = int(img[6])
	h.PayloadLen = payload
	h.Frames = int(binary.BigEndian.Uint32(img[12:16]))
	return h, nil
}

// CRC16 computes the CRC-16/CCITT-FALSE checksum used by the image trailer.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// Repository holds the partial bitstream of every Atom type of an ISA —
// the in-memory bitstream store of the Run-Time Manager.
type Repository struct {
	is     *isa.ISA
	images []Image
}

// NewRepository generates and validates the bitstreams of all Atom types.
func NewRepository(is *isa.ISA, seed int64) (*Repository, error) {
	r := &Repository{is: is, images: make([]Image, len(is.Atoms))}
	for i, a := range is.Atoms {
		img := Generate(a, seed)
		h, err := Parse(img)
		if err != nil {
			return nil, fmt.Errorf("bitstream: atom %q: %w", a.Name, err)
		}
		if h.Atom != a.ID {
			return nil, fmt.Errorf("bitstream: atom %q: header names atom %d", a.Name, h.Atom)
		}
		r.images[i] = img
	}
	return r, nil
}

// Image returns the bitstream of an Atom type.
func (r *Repository) Image(atom isa.AtomID) Image { return r.images[atom] }

// LoadCycles returns the reconfiguration time of an Atom derived from its
// actual image size — by construction identical to the ISA-based timing
// used everywhere else (asserted by tests).
func (r *Repository) LoadCycles(atom isa.AtomID, t reconfig.Timing) reconfig.Cycle {
	return t.LoadCycles(len(r.images[atom]))
}

// TotalBytes returns the memory footprint of the repository — the paper's
// platform stores all partial bitstreams in memory for fast reloading.
func (r *Repository) TotalBytes() int {
	n := 0
	for _, img := range r.images {
		n += len(img)
	}
	return n
}
