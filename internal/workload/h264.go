package workload

import (
	"math/rand"

	"rispp/internal/isa"
)

// H264Config parameterizes the H.264 encoder workload of the paper's
// evaluation: a CIF video sequence (352x288 → 22x18 macroblocks) of 140
// frames, encoded with the Motion Estimation → Encoding Engine → Loop
// Filter hot-spot rotation of Figure 1.
type H264Config struct {
	Frames   int // default 140
	WidthMB  int // default 22 (CIF)
	HeightMB int // default 18 (CIF)
	Seed     int64

	// MotionVariability scales per-frame variation of the motion-dependent
	// SI counts (SATD refinements, MC partitions). 0 reproduces the
	// paper-calibrated deterministic sequence; 0.3 models a lively scene.
	MotionVariability float64

	// SceneChangeFrame, when > 0, raises the motion level by 30% from that
	// frame on — the "non-predictable application behaviour" the run-time
	// system must adapt to.
	SceneChangeFrame int
}

func (c *H264Config) setDefaults() {
	if c.Frames == 0 {
		c.Frames = 140
	}
	if c.WidthMB == 0 {
		c.WidthMB = 22
	}
	if c.HeightMB == 0 {
		c.HeightMB = 18
	}
}

// Calibration of the per-macroblock SI execution pattern. With the default
// CIF geometry (396 macroblocks) and zero variability this yields exactly
// 31,977 SI executions in each Motion Estimation hot spot (25,641 SAD +
// 6,336 SATD, Figure 2) and a pure-software execution time of ≈7,403M
// cycles for 140 frames (paper Section 5).
const (
	sadPerMBHigh  = 65 // 3 of 4 macroblocks
	sadPerMBLow   = 64 // every 4th macroblock
	satdPerMB     = 16
	dctPerMB      = 24 // 16 forward + 8 inverse 4x4 blocks
	ht4PerMB      = 2
	ht2PerMB      = 1
	mcPerMB       = 6
	iPredHDCPerMB = 2
	iPredVDCPerMB = 2
	lfPerMB       = 16

	siGap      = 8      // base-processor glue cycles per SI execution
	phaseSetup = 61_000 // frame-level control cycles per hot-spot entry
)

// H264 generates the encoder trace. Phases appear per frame in the order
// ME, EE, LF.
func H264(cfg H264Config) *Trace {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	mbs := cfg.WidthMB * cfg.HeightMB
	t := &Trace{Name: "h264-cif"}
	t.Phases = make([]Phase, 0, cfg.Frames*3)

	for f := 0; f < cfg.Frames; f++ {
		motion := 1.0
		if cfg.MotionVariability > 0 {
			motion += cfg.MotionVariability * (rng.Float64()*2 - 1)
		}
		if cfg.SceneChangeFrame > 0 && f >= cfg.SceneChangeFrame {
			motion *= 1.3
		}
		scale := func(base int) int {
			n := int(float64(base)*motion + 0.5)
			if n < 1 {
				n = 1
			}
			return n
		}

		me := Phase{HotSpot: isa.HotSpotME, Setup: phaseSetup}
		me.Bursts = make([]Burst, 0, 2*mbs)
		for mb := 0; mb < mbs; mb++ {
			sad := sadPerMBHigh
			if mb%4 == 3 {
				sad = sadPerMBLow
			}
			me.Bursts = append(me.Bursts,
				Burst{SI: isa.SISAD, Count: sad, Gap: siGap},
				Burst{SI: isa.SISATD, Count: scale(satdPerMB), Gap: siGap},
			)
		}

		ee := Phase{HotSpot: isa.HotSpotEE, Setup: phaseSetup}
		ee.Bursts = make([]Burst, 0, 6*mbs)
		for mb := 0; mb < mbs; mb++ {
			ee.Bursts = append(ee.Bursts,
				Burst{SI: isa.SIMC, Count: scale(mcPerMB), Gap: siGap},
				Burst{SI: isa.SIIPredHDC, Count: iPredHDCPerMB, Gap: siGap},
				Burst{SI: isa.SIIPredVDC, Count: iPredVDCPerMB, Gap: siGap},
				Burst{SI: isa.SIDCT, Count: dctPerMB, Gap: siGap},
				Burst{SI: isa.SIHT4x4, Count: ht4PerMB, Gap: siGap},
				Burst{SI: isa.SIHT2x2, Count: ht2PerMB, Gap: siGap},
			)
		}

		lf := Phase{HotSpot: isa.HotSpotLF, Setup: phaseSetup}
		lf.Bursts = make([]Burst, 0, mbs)
		for mb := 0; mb < mbs; mb++ {
			lf.Bursts = append(lf.Bursts, Burst{SI: isa.SILFBS4, Count: lfPerMB, Gap: siGap})
		}

		t.Phases = append(t.Phases, me, ee, lf)
	}
	return t
}

// Standard picture geometries in macroblocks.
var (
	// QCIF is 176x144 pixels (99 macroblocks).
	QCIF = [2]int{11, 9}
	// CIF is 352x288 pixels (396 macroblocks) — the paper's format.
	CIF = [2]int{22, 18}
	// FourCIF is 704x576 pixels (1584 macroblocks).
	FourCIF = [2]int{44, 36}
)

// WithGeometry returns a config for a named geometry.
func (c H264Config) WithGeometry(g [2]int) H264Config {
	c.WidthMB, c.HeightMB = g[0], g[1]
	return c
}
