package workload

import (
	"testing"

	"rispp/internal/isa"
)

// TestCompileH264 checks the lowering of the paper's benchmark trace:
// phase structure preserved, per-burst SI metadata pre-resolved, and the
// flat burst array exactly covering the source bursts.
func TestCompileH264(t *testing.T) {
	is := isa.H264()
	tr := H264(H264Config{Frames: 1})
	ct, err := Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Trace != tr {
		t.Errorf("Compiled.Trace = %p, want the source trace %p", ct.Trace, tr)
	}
	if ct.NumSIs != len(is.SIs) {
		t.Errorf("NumSIs = %d, want %d", ct.NumSIs, len(is.SIs))
	}
	if len(ct.Phases) != len(tr.Phases) {
		t.Fatalf("compiled %d phases, want %d", len(ct.Phases), len(tr.Phases))
	}
	var total int64
	for i := range ct.Phases {
		cp, p := &ct.Phases[i], &tr.Phases[i]
		if cp.HotSpot != p.HotSpot || cp.Setup != p.Setup {
			t.Errorf("phase %d: hot spot/setup %d/%d, want %d/%d",
				i, cp.HotSpot, cp.Setup, p.HotSpot, p.Setup)
		}
		if len(cp.Bursts) != len(p.Bursts) {
			t.Fatalf("phase %d: %d bursts, want %d", i, len(cp.Bursts), len(p.Bursts))
		}
		for j, cb := range cp.Bursts {
			b := p.Bursts[j]
			si := is.SI(b.SI)
			if cb.SI != b.SI || cb.Count != int64(b.Count) || cb.Gap != int64(b.Gap) {
				t.Errorf("phase %d burst %d: %+v does not match source %+v", i, j, cb, b)
			}
			if cb.SWLatency != si.SWLatency {
				t.Errorf("phase %d burst %d: SWLatency = %d, want %d", i, j, cb.SWLatency, si.SWLatency)
			}
			if cb.FastestLatency != si.Fastest().Latency {
				t.Errorf("phase %d burst %d: FastestLatency = %d, want %d",
					i, j, cb.FastestLatency, si.Fastest().Latency)
			}
			total += cb.Count
		}
	}
	if total != tr.TotalExecutions() {
		t.Errorf("compiled executions = %d, want %d", total, tr.TotalExecutions())
	}
}

// TestCompileSharesSpotSlices verifies that phases of the same hot spot
// share one Spot slice instead of allocating one per phase.
func TestCompileSharesSpotSlices(t *testing.T) {
	is := isa.H264()
	tr := H264(H264Config{Frames: 2})
	ct, err := Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[isa.HotSpotID][]isa.SIID)
	for i := range ct.Phases {
		p := &ct.Phases[i]
		if len(p.Spot) == 0 {
			t.Fatalf("phase %d: empty Spot", i)
		}
		if prev, ok := first[p.HotSpot]; ok {
			if &prev[0] != &p.Spot[0] {
				t.Errorf("phase %d: hot spot %d Spot slice not shared", i, p.HotSpot)
			}
		} else {
			first[p.HotSpot] = p.Spot
		}
	}
}

// TestCompileValidates checks that Compile rejects traces that fail
// Trace.Validate instead of lowering garbage.
func TestCompileValidates(t *testing.T) {
	is := isa.H264()
	bad := &Trace{Name: "bad", Phases: []Phase{
		{HotSpot: 0, Bursts: []Burst{{SI: isa.SIID(len(is.SIs)), Count: 1}}},
	}}
	if _, err := Compile(bad, is); err == nil {
		t.Error("Compile accepted a trace referencing an unknown SI")
	}
}
