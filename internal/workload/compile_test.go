package workload

import (
	"strings"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/molecule"
)

// TestCompileH264 checks the lowering of the paper's benchmark trace:
// phase structure preserved, per-burst SI metadata pre-resolved, and the
// flat burst array exactly covering the source bursts.
func TestCompileH264(t *testing.T) {
	is := isa.H264()
	tr := H264(H264Config{Frames: 1})
	ct, err := Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Trace != tr {
		t.Errorf("Compiled.Trace = %p, want the source trace %p", ct.Trace, tr)
	}
	if ct.NumSIs != len(is.SIs) {
		t.Errorf("NumSIs = %d, want %d", ct.NumSIs, len(is.SIs))
	}
	if len(ct.Phases) != len(tr.Phases) {
		t.Fatalf("compiled %d phases, want %d", len(ct.Phases), len(tr.Phases))
	}
	var total int64
	for i := range ct.Phases {
		cp, p := &ct.Phases[i], &tr.Phases[i]
		if cp.HotSpot != p.HotSpot || cp.Setup != p.Setup {
			t.Errorf("phase %d: hot spot/setup %d/%d, want %d/%d",
				i, cp.HotSpot, cp.Setup, p.HotSpot, p.Setup)
		}
		if len(cp.Bursts) != len(p.Bursts) {
			t.Fatalf("phase %d: %d bursts, want %d", i, len(cp.Bursts), len(p.Bursts))
		}
		for j, cb := range cp.Bursts {
			b := p.Bursts[j]
			si := is.SI(b.SI)
			if cb.SI != b.SI || cb.Count != int64(b.Count) || cb.Gap != int64(b.Gap) {
				t.Errorf("phase %d burst %d: %+v does not match source %+v", i, j, cb, b)
			}
			if cb.SWLatency != si.SWLatency {
				t.Errorf("phase %d burst %d: SWLatency = %d, want %d", i, j, cb.SWLatency, si.SWLatency)
			}
			if cb.FastestLatency != si.Fastest().Latency {
				t.Errorf("phase %d burst %d: FastestLatency = %d, want %d",
					i, j, cb.FastestLatency, si.Fastest().Latency)
			}
			total += cb.Count
		}
	}
	if total != tr.TotalExecutions() {
		t.Errorf("compiled executions = %d, want %d", total, tr.TotalExecutions())
	}
}

// TestCompileSharesSpotSlices verifies that phases of the same hot spot
// share one Spot slice instead of allocating one per phase.
func TestCompileSharesSpotSlices(t *testing.T) {
	is := isa.H264()
	tr := H264(H264Config{Frames: 2})
	ct, err := Compile(tr, is)
	if err != nil {
		t.Fatal(err)
	}
	first := make(map[isa.HotSpotID][]isa.SIID)
	for i := range ct.Phases {
		p := &ct.Phases[i]
		if len(p.Spot) == 0 {
			t.Fatalf("phase %d: empty Spot", i)
		}
		if prev, ok := first[p.HotSpot]; ok {
			if &prev[0] != &p.Spot[0] {
				t.Errorf("phase %d: hot spot %d Spot slice not shared", i, p.HotSpot)
			}
		} else {
			first[p.HotSpot] = p.Spot
		}
	}
}

// TestCompileValidates checks that Compile rejects traces that fail
// Trace.Validate instead of lowering garbage.
func TestCompileValidates(t *testing.T) {
	is := isa.H264()
	bad := &Trace{Name: "bad", Phases: []Phase{
		{HotSpot: 0, Bursts: []Burst{{SI: isa.SIID(len(is.SIs)), Count: 1}}},
	}}
	if _, err := Compile(bad, is); err == nil {
		t.Error("Compile accepted a trace referencing an unknown SI")
	}
}

// tinyISA builds a minimal two-SI ISA that corrupt can then damage; the
// shapes mirror internal/oracle's validation tests so Compile and the
// oracle reject the same malformed inputs.
func tinyISA(corrupt func(*isa.ISA)) *isa.ISA {
	is := &isa.ISA{
		Name: "tiny",
		Atoms: []isa.AtomType{
			{ID: 0, Name: "A", BitstreamBytes: 4_000, Slices: 1, LUTs: 1, FFs: 1},
			{ID: 1, Name: "B", BitstreamBytes: 4_000, Slices: 1, LUTs: 1, FFs: 1},
		},
		SIs: []isa.SI{
			{ID: 0, Name: "S0", HotSpot: 0, SWLatency: 50,
				Molecules: []isa.Molecule{{SI: 0, Atoms: molecule.Of(1, 0), Latency: 5}}},
			{ID: 1, Name: "S1", HotSpot: 0, SWLatency: 50,
				Molecules: []isa.Molecule{{SI: 1, Atoms: molecule.Of(0, 1), Latency: 5}}},
		},
		HotSpots: []isa.HotSpot{{ID: 0, Name: "H0", SIs: []isa.SIID{0, 1}}},
	}
	if corrupt != nil {
		corrupt(is)
	}
	return is
}

// TestCompileEdgeCases drives Compile through degenerate-but-valid traces
// and malformed ISAs: valid inputs lower cleanly, malformed ones come back
// as errors — never as panics out of the pre-resolution of SI metadata.
func TestCompileEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		is      *isa.ISA
		tr      *Trace
		wantErr string // empty: must compile
	}{
		{"empty trace", tinyISA(nil), &Trace{Name: "empty"}, ""},
		{"single-burst hot spot", tinyISA(nil), &Trace{Name: "one", Phases: []Phase{
			{HotSpot: 0, Setup: 7, Bursts: []Burst{{SI: 0, Count: 3, Gap: 2}}},
		}}, ""},
		{"SI with no hardware Molecule", tinyISA(func(is *isa.ISA) { is.SIs[1].Molecules = nil }),
			&Trace{Phases: []Phase{{HotSpot: 0, Bursts: []Burst{{SI: 0, Count: 1}}}}},
			"no hardware Molecule"},
		{"duplicate SI ids", tinyISA(func(is *isa.ISA) { is.SIs[1].ID = 0 }),
			&Trace{Phases: []Phase{{HotSpot: 0, Bursts: []Burst{{SI: 0, Count: 1}}}}},
			"misnumbered"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ct, err := Compile(c.tr, c.is)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("Compile failed: %v", err)
				}
				if len(ct.Phases) != len(c.tr.Phases) {
					t.Fatalf("compiled %d phases, want %d", len(ct.Phases), len(c.tr.Phases))
				}
				var total int64
				for _, p := range ct.Phases {
					for _, b := range p.Bursts {
						total += b.Count
					}
				}
				if want := c.tr.TotalExecutions(); total != want {
					t.Fatalf("compiled executions = %d, want %d", total, want)
				}
				return
			}
			if err == nil {
				t.Fatalf("Compile accepted the input, want error mentioning %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
