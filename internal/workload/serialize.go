package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"rispp/internal/isa"
)

// WriteJSON serializes the trace. The format is the plain structure of the
// Trace type — stable, diff-friendly, and readable by external tooling.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("workload: encode trace: %w", err)
	}
	return nil
}

// ReadJSON deserializes a trace and validates it against the ISA.
func ReadJSON(r io.Reader, is *isa.ISA) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decode trace: %w", err)
	}
	if err := t.Validate(is); err != nil {
		return nil, err
	}
	return &t, nil
}
