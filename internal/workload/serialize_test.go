package workload

import (
	"bytes"
	"strings"
	"testing"

	"rispp/internal/isa"
)

func TestJSONRoundTrip(t *testing.T) {
	is := isa.H264()
	orig := H264(H264Config{Frames: 2, MotionVariability: 0.2, Seed: 3})
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf, is)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.Phases) != len(orig.Phases) {
		t.Fatalf("round trip lost structure: %q/%d vs %q/%d",
			got.Name, len(got.Phases), orig.Name, len(orig.Phases))
	}
	if got.TotalExecutions() != orig.TotalExecutions() {
		t.Fatal("round trip changed execution counts")
	}
	if got.SoftwareCycles(is) != orig.SoftwareCycles(is) {
		t.Fatal("round trip changed cycle accounting")
	}
}

func TestReadJSONValidates(t *testing.T) {
	is := isa.H264()
	bad := `{"Name":"x","Phases":[{"HotSpot":0,"Setup":0,"Bursts":[{"SI":99,"Count":1,"Gap":0}]}]}`
	if _, err := ReadJSON(strings.NewReader(bad), is); err == nil {
		t.Fatal("invalid trace accepted")
	}
	if _, err := ReadJSON(strings.NewReader("{nope"), is); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{"Surprise":1}`), is); err == nil {
		t.Fatal("unknown fields accepted")
	}
}
