// Package workload models the application driving a RISPP processor as a
// trace of hot-spot phases, each consisting of bursts of Special
// Instruction executions interleaved with base-processor glue cycles.
//
// The package ships a calibrated generator for the paper's benchmark — an
// H.264 video encoder processing a CIF sequence (see H264Config) — and a
// generic builder for custom scenarios.
package workload

import (
	"fmt"

	"rispp/internal/isa"
)

// Burst is a run of identical SI executions: Count executions of SI, each
// followed by Gap base-processor cycles of glue code (address generation,
// loop control, …) that no accelerator removes.
type Burst struct {
	SI    isa.SIID
	Count int
	Gap   int
}

// Phase is one execution of a hot spot: the processor enters the hot spot,
// spends Setup base cycles (control code before the kernel loops), then
// executes the bursts in order.
type Phase struct {
	HotSpot isa.HotSpotID
	Setup   int64
	Bursts  []Burst
}

// Executions returns the total SI executions of the phase.
func (p *Phase) Executions() int64 {
	var n int64
	for _, b := range p.Bursts {
		n += int64(b.Count)
	}
	return n
}

// Trace is a complete application run: the phases in execution order.
type Trace struct {
	Name   string
	Phases []Phase
}

// Executions returns the total number of SI executions per SI.
func (t *Trace) Executions() map[isa.SIID]int64 {
	out := make(map[isa.SIID]int64)
	for i := range t.Phases {
		for _, b := range t.Phases[i].Bursts {
			out[b.SI] += int64(b.Count)
		}
	}
	return out
}

// TotalExecutions returns the total number of SI executions in the trace.
func (t *Trace) TotalExecutions() int64 {
	var n int64
	for i := range t.Phases {
		for _, b := range t.Phases[i].Bursts {
			n += int64(b.Count)
		}
	}
	return n
}

// SoftwareCycles returns the cycles the trace takes on the plain base
// processor (zero Atom Containers): every SI executes via its trap
// implementation.
func (t *Trace) SoftwareCycles(is *isa.ISA) int64 {
	var c int64
	for i := range t.Phases {
		p := &t.Phases[i]
		c += p.Setup
		for _, b := range p.Bursts {
			c += int64(b.Count) * int64(is.SI(b.SI).SWLatency+b.Gap)
		}
	}
	return c
}

// Validate checks the trace against an ISA: every referenced SI exists and
// belongs to the phase's hot spot, and all counts are sane.
func (t *Trace) Validate(is *isa.ISA) error {
	for i := range t.Phases {
		p := &t.Phases[i]
		if p.Setup < 0 {
			return fmt.Errorf("workload: phase %d has negative setup", i)
		}
		for j, b := range p.Bursts {
			if int(b.SI) < 0 || int(b.SI) >= len(is.SIs) {
				return fmt.Errorf("workload: phase %d burst %d references unknown SI %d", i, j, b.SI)
			}
			if is.SI(b.SI).HotSpot != p.HotSpot {
				return fmt.Errorf("workload: phase %d burst %d: SI %q does not belong to hot spot %d",
					i, j, is.SI(b.SI).Name, p.HotSpot)
			}
			if b.Count < 0 || b.Gap < 0 {
				return fmt.Errorf("workload: phase %d burst %d has negative count/gap", i, j)
			}
		}
	}
	return nil
}

// Builder assembles traces for custom scenarios.
type Builder struct {
	trace Trace
}

// NewBuilder starts a named trace.
func NewBuilder(name string) *Builder {
	return &Builder{trace: Trace{Name: name}}
}

// Phase opens a new hot-spot phase and returns the builder for chaining.
func (b *Builder) Phase(h isa.HotSpotID, setup int64) *Builder {
	b.trace.Phases = append(b.trace.Phases, Phase{HotSpot: h, Setup: setup})
	return b
}

// Burst appends an SI burst to the current phase; it panics when no phase
// is open.
func (b *Builder) Burst(si isa.SIID, count, gap int) *Builder {
	if len(b.trace.Phases) == 0 {
		panic("workload: Burst before Phase")
	}
	p := &b.trace.Phases[len(b.trace.Phases)-1]
	p.Bursts = append(p.Bursts, Burst{SI: si, Count: count, Gap: gap})
	return b
}

// Build returns the assembled trace.
func (b *Builder) Build() *Trace {
	t := b.trace
	return &t
}
