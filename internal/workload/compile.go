package workload

import (
	"fmt"

	"rispp/internal/isa"
)

// CompiledBurst is one burst of a compiled trace with the SI metadata the
// simulator's inner loop needs pre-resolved, so executing it costs no map
// lookups, no ISA indirection and no interface calls beyond the Runtime
// itself.
type CompiledBurst struct {
	SI    isa.SIID
	Count int64
	Gap   int64
	// SWLatency is is.SI(SI).SWLatency: the trap latency that separates
	// software from hardware executions.
	SWLatency int
	// FastestLatency is is.SI(SI).Fastest().Latency: the floor against
	// which stall cycles are accounted.
	FastestLatency int
}

// CompiledPhase is one hot-spot phase of a compiled trace.
type CompiledPhase struct {
	HotSpot isa.HotSpotID
	Setup   int64
	// Bursts is a view into the trace-wide flat burst array.
	Bursts []CompiledBurst
	// Spot lists the SIs of the phase's hot spot; phases of the same hot
	// spot share one slice.
	Spot []isa.SIID
}

// Compiled is a trace lowered into flat arrays for the simulator hot path:
// all bursts live in one contiguous backing array, per-burst SI metadata is
// pre-resolved, and the hot-spot SI sets are computed once per hot spot
// instead of once per phase. A Compiled trace is immutable and safe for
// concurrent simulation runs.
type Compiled struct {
	// Trace is the source trace (for its name and phase structure).
	Trace *Trace
	// NumSIs is len(is.SIs) of the ISA the trace was compiled against; it
	// sizes the simulator's dense per-SI accounting.
	NumSIs int
	Phases []CompiledPhase
}

// Compile validates the trace against the ISA and lowers it into the flat
// representation the simulator executes. Compile once and reuse the result
// across runs: the compiled form is read-only.
func Compile(tr *Trace, is *isa.ISA) (*Compiled, error) {
	// Trace.Validate only checks burst references; the compiled form also
	// bakes in per-SI metadata (Fastest()), so malformed ISAs must be
	// rejected here with errors rather than surfacing as index panics in
	// the hot path. The checks mirror internal/oracle's input validation.
	for i := range is.SIs {
		s := &is.SIs[i]
		if int(s.ID) != i {
			return nil, fmt.Errorf("workload: SI %q has id %d at index %d (duplicate or misnumbered ids)", s.Name, s.ID, i)
		}
		if len(s.Molecules) == 0 {
			return nil, fmt.Errorf("workload: SI %q has no hardware Molecule", s.Name)
		}
	}
	if err := tr.Validate(is); err != nil {
		return nil, err
	}
	total := 0
	for i := range tr.Phases {
		total += len(tr.Phases[i].Bursts)
	}
	flat := make([]CompiledBurst, 0, total)
	spots := make(map[isa.HotSpotID][]isa.SIID)
	ct := &Compiled{
		Trace:  tr,
		NumSIs: len(is.SIs),
		Phases: make([]CompiledPhase, 0, len(tr.Phases)),
	}
	for i := range tr.Phases {
		p := &tr.Phases[i]
		spot, ok := spots[p.HotSpot]
		if !ok {
			sis := is.HotSpotSIs(p.HotSpot)
			spot = make([]isa.SIID, 0, len(sis))
			for _, s := range sis {
				spot = append(spot, s.ID)
			}
			spots[p.HotSpot] = spot
		}
		start := len(flat)
		for _, b := range p.Bursts {
			si := is.SI(b.SI)
			flat = append(flat, CompiledBurst{
				SI:             b.SI,
				Count:          int64(b.Count),
				Gap:            int64(b.Gap),
				SWLatency:      si.SWLatency,
				FastestLatency: si.Fastest().Latency,
			})
		}
		ct.Phases = append(ct.Phases, CompiledPhase{
			HotSpot: p.HotSpot,
			Setup:   p.Setup,
			Bursts:  flat[start:len(flat):len(flat)],
			Spot:    spot,
		})
	}
	return ct, nil
}
