package workload

import (
	"strings"
	"testing"

	"rispp/internal/isa"
)

// FuzzReadJSON hardens the trace deserializer: arbitrary input must never
// panic, and anything accepted must validate against the ISA.
func FuzzReadJSON(f *testing.F) {
	var good strings.Builder
	if err := H264(H264Config{Frames: 1, WidthMB: 2, HeightMB: 2}).WriteJSON(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.String())
	f.Add(`{"Name":"x","Phases":[]}`)
	f.Add(`{`)
	f.Add(`{"Name":"x","Phases":[{"HotSpot":0,"Setup":-1}]}`)
	is := isa.H264()
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadJSON(strings.NewReader(data), is)
		if err != nil {
			return
		}
		if err := tr.Validate(is); err != nil {
			t.Fatalf("ReadJSON accepted a trace that fails validation: %v", err)
		}
		// Accepted traces must run on the closed-form software model
		// without panicking.
		_ = tr.SoftwareCycles(is)
	})
}
