package workload

import (
	"testing"

	"rispp/internal/isa"
)

func TestH264Defaults(t *testing.T) {
	tr := H264(H264Config{})
	if got := len(tr.Phases); got != 140*3 {
		t.Fatalf("phases = %d, want 420 (ME, EE, LF per frame)", got)
	}
	order := []isa.HotSpotID{isa.HotSpotME, isa.HotSpotEE, isa.HotSpotLF}
	for i := range tr.Phases {
		if tr.Phases[i].HotSpot != order[i%3] {
			t.Fatalf("phase %d hot spot = %d, want %d", i, tr.Phases[i].HotSpot, order[i%3])
		}
	}
	if err := tr.Validate(isa.H264()); err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
}

// TestMEHotSpotExecutions checks the Figure 2 calibration: 31,977 SI
// executions per Motion Estimation hot spot.
func TestMEHotSpotExecutions(t *testing.T) {
	tr := H264(H264Config{Frames: 1})
	me := &tr.Phases[0]
	if got := me.Executions(); got != 31977 {
		t.Fatalf("ME hot spot executions = %d, want 31977", got)
	}
}

// TestSoftwareCyclesCalibration checks the Section 5 calibration: encoding
// 140 frames on the plain base processor (0 Atom Containers) takes ≈7,403M
// cycles.
func TestSoftwareCyclesCalibration(t *testing.T) {
	is := isa.H264()
	tr := H264(H264Config{})
	got := tr.SoftwareCycles(is)
	const want = 7_403_000_000
	if diff := float64(got-want) / float64(want); diff > 0.005 || diff < -0.005 {
		t.Fatalf("software cycles = %d, want %d ± 0.5%% (off by %.2f%%)", got, want, diff*100)
	}
}

func TestDeterministicWithoutVariability(t *testing.T) {
	a := H264(H264Config{Frames: 3})
	b := H264(H264Config{Frames: 3, Seed: 99})
	if a.TotalExecutions() != b.TotalExecutions() {
		t.Fatal("zero-variability trace depends on seed")
	}
}

func TestSeedChangesVariableTrace(t *testing.T) {
	a := H264(H264Config{Frames: 5, MotionVariability: 0.3, Seed: 1})
	b := H264(H264Config{Frames: 5, MotionVariability: 0.3, Seed: 2})
	if a.TotalExecutions() == b.TotalExecutions() {
		t.Fatal("variability did not vary with seed")
	}
	c := H264(H264Config{Frames: 5, MotionVariability: 0.3, Seed: 1})
	if a.TotalExecutions() != c.TotalExecutions() {
		t.Fatal("same seed produced different traces")
	}
}

func TestSceneChangeRaisesMotionSIs(t *testing.T) {
	calm := H264(H264Config{Frames: 10})
	lively := H264(H264Config{Frames: 10, SceneChangeFrame: 5})
	if lively.Executions()[isa.SISATD] <= calm.Executions()[isa.SISATD] {
		t.Fatal("scene change did not raise SATD executions")
	}
	if lively.Executions()[isa.SISAD] != calm.Executions()[isa.SISAD] {
		t.Fatal("scene change altered the deterministic SAD search pattern")
	}
}

func TestExecutionsPerSI(t *testing.T) {
	tr := H264(H264Config{Frames: 1})
	ex := tr.Executions()
	mbs := 22 * 18
	want := map[isa.SIID]int64{
		isa.SISATD:     int64(16 * mbs),
		isa.SIDCT:      int64(24 * mbs),
		isa.SIHT4x4:    int64(2 * mbs),
		isa.SIHT2x2:    int64(1 * mbs),
		isa.SIMC:       int64(6 * mbs),
		isa.SIIPredHDC: int64(2 * mbs),
		isa.SIIPredVDC: int64(2 * mbs),
		isa.SILFBS4:    int64(16 * mbs),
	}
	for si, n := range want {
		if ex[si] != n {
			t.Errorf("SI %d executions = %d, want %d", si, ex[si], n)
		}
	}
	// SAD: 3/4 of macroblocks at 65, 1/4 at 64.
	wantSAD := int64(mbs/4*64 + (mbs-mbs/4)*65)
	if ex[isa.SISAD] != wantSAD {
		t.Errorf("SAD executions = %d, want %d", ex[isa.SISAD], wantSAD)
	}
}

func TestBuilder(t *testing.T) {
	tr := NewBuilder("custom").
		Phase(isa.HotSpotME, 100).
		Burst(isa.SISAD, 10, 5).
		Burst(isa.SISATD, 4, 5).
		Phase(isa.HotSpotLF, 50).
		Burst(isa.SILFBS4, 8, 2).
		Build()
	if err := tr.Validate(isa.H264()); err != nil {
		t.Fatalf("built trace invalid: %v", err)
	}
	if tr.TotalExecutions() != 22 {
		t.Fatalf("TotalExecutions = %d, want 22", tr.TotalExecutions())
	}
	if tr.Phases[0].Executions() != 14 {
		t.Fatalf("phase 0 executions = %d", tr.Phases[0].Executions())
	}
}

func TestBuilderBurstWithoutPhasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Burst before Phase did not panic")
		}
	}()
	NewBuilder("x").Burst(isa.SISAD, 1, 1)
}

func TestValidateRejectsBadTraces(t *testing.T) {
	is := isa.H264()
	bad := NewBuilder("bad").Phase(isa.HotSpotME, 0).Burst(isa.SILFBS4, 1, 0).Build()
	if bad.Validate(is) == nil {
		t.Error("Validate missed SI in wrong hot spot")
	}
	bad2 := &Trace{Phases: []Phase{{HotSpot: isa.HotSpotME, Bursts: []Burst{{SI: 99, Count: 1}}}}}
	if bad2.Validate(is) == nil {
		t.Error("Validate missed unknown SI")
	}
	bad3 := &Trace{Phases: []Phase{{HotSpot: isa.HotSpotME, Setup: -1}}}
	if bad3.Validate(is) == nil {
		t.Error("Validate missed negative setup")
	}
	bad4 := NewBuilder("bad4").Phase(isa.HotSpotME, 0).Burst(isa.SISAD, -1, 0).Build()
	if bad4.Validate(is) == nil {
		t.Error("Validate missed negative count")
	}
}

func TestSoftwareCyclesSmall(t *testing.T) {
	is := isa.H264()
	tr := NewBuilder("t").Phase(isa.HotSpotME, 100).Burst(isa.SISAD, 2, 10).Build()
	want := int64(100 + 2*(is.SI(isa.SISAD).SWLatency+10))
	if got := tr.SoftwareCycles(is); got != want {
		t.Fatalf("SoftwareCycles = %d, want %d", got, want)
	}
}

func TestGeometryPresets(t *testing.T) {
	for _, tc := range []struct {
		g   [2]int
		mbs int
	}{
		{QCIF, 99},
		{CIF, 396},
		{FourCIF, 1584},
	} {
		cfg := H264Config{Frames: 1}.WithGeometry(tc.g)
		tr := H264(cfg)
		// ME phase has 2 bursts per macroblock.
		if got := len(tr.Phases[0].Bursts) / 2; got != tc.mbs {
			t.Errorf("geometry %v: %d macroblocks, want %d", tc.g, got, tc.mbs)
		}
	}
	// Default equals CIF.
	a := H264(H264Config{Frames: 1})
	b := H264(H264Config{Frames: 1}.WithGeometry(CIF))
	if a.TotalExecutions() != b.TotalExecutions() {
		t.Error("default geometry differs from CIF preset")
	}
}
