// Package plot renders the repository's experiment data as standalone SVG
// figures (standard library only). cmd/risppbench uses it to emit the
// paper's plots — Figure 7's scheduler curves, Figure 2/8's execution-rate
// histograms — as files a browser can open directly.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Options style a chart.
type Options struct {
	Title  string
	XLabel string
	YLabel string
	Width  int  // default 720
	Height int  // default 440
	LogY   bool // logarithmic y axis (Figure 8's latency lines)
}

func (o *Options) setDefaults() {
	if o.Width == 0 {
		o.Width = 720
	}
	if o.Height == 0 {
		o.Height = 440
	}
}

// palette holds distinguishable series colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	marginL = 64
	marginR = 16
	marginT = 36
	marginB = 48
)

// Line renders a multi-series line chart.
func Line(series []Series, o Options) string {
	o.setDefaults()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			y := s.Y[i]
			if o.LogY && y <= 0 {
				y = 1
			}
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) { // no data
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	if minX == maxX {
		maxX = minX + 1
	}

	ty := func(y float64) float64 {
		if o.LogY {
			if y <= 0 {
				y = 1
			}
			return math.Log10(y)
		}
		return y
	}
	lo, hi := ty(minY), ty(maxY)
	plotW := float64(o.Width - marginL - marginR)
	plotH := float64(o.Height - marginT - marginB)
	px := func(x float64) float64 { return float64(marginL) + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return float64(marginT) + (1-(ty(y)-lo)/(hi-lo))*plotH }

	var b strings.Builder
	header(&b, o)
	axes(&b, o, minX, maxX, minY, maxY, px, py)

	for i, s := range series {
		color := palette[i%len(palette)]
		var pts []string
		for j := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[j]), py(s.Y[j])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="2" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		// Legend entry.
		lx := marginL + 12
		lyy := marginT + 16 + 18*i
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="3" fill="%s"/>`+"\n", lx, lyy-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", lx+18, lyy, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// Bars renders grouped bar series over shared integer x buckets (the
// "executions per 100K cycles" histograms).
func Bars(series []Series, o Options) string {
	o.setDefaults()
	buckets := 0
	maxY := 0.0
	for _, s := range series {
		if len(s.Y) > buckets {
			buckets = len(s.Y)
		}
		for _, y := range s.Y {
			maxY = math.Max(maxY, y)
		}
	}
	if buckets == 0 {
		buckets = 1
	}
	if maxY == 0 {
		maxY = 1
	}
	plotW := float64(o.Width - marginL - marginR)
	plotH := float64(o.Height - marginT - marginB)
	group := plotW / float64(buckets)
	barW := group / float64(len(series)+1)

	var b strings.Builder
	header(&b, o)
	axes(&b, o, 0, float64(buckets), 0, maxY,
		func(x float64) float64 { return float64(marginL) + x/float64(buckets)*plotW },
		func(y float64) float64 { return float64(marginT) + (1-y/maxY)*plotH })
	for i, s := range series {
		color := palette[i%len(palette)]
		for j, y := range s.Y {
			h := y / maxY * plotH
			x := float64(marginL) + float64(j)*group + float64(i)*barW
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, float64(marginT)+plotH-h, barW, h, color)
		}
		lx := marginL + 12
		lyy := marginT + 16 + 18*i
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="8" fill="%s"/>`+"\n", lx, lyy-8, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", lx+18, lyy, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func header(b *strings.Builder, o Options) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n",
		o.Width, o.Height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", o.Width, o.Height)
	fmt.Fprintf(b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n",
		marginL, esc(o.Title))
}

func axes(b *strings.Builder, o Options, minX, maxX, minY, maxY float64,
	px, py func(float64) float64) {
	x0, y0 := float64(marginL), float64(o.Height-marginB)
	x1, y1 := float64(o.Width-marginR), float64(marginT)
	fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="black"/>`+"\n", x0, y0, x1, y0)
	fmt.Fprintf(b, `<line x1="%.0f" y1="%.0f" x2="%.0f" y2="%.0f" stroke="black"/>`+"\n", x0, y0, x0, y1)
	// Min/max tick labels keep the implementation compact but readable.
	fmt.Fprintf(b, `<text x="%.0f" y="%.0f" font-size="11">%s</text>`+"\n", x0, y0+16, fmtTick(minX))
	fmt.Fprintf(b, `<text x="%.0f" y="%.0f" font-size="11" text-anchor="end">%s</text>`+"\n", x1, y0+16, fmtTick(maxX))
	fmt.Fprintf(b, `<text x="%.0f" y="%.0f" font-size="11" text-anchor="end">%s</text>`+"\n", x0-6, y0, fmtTick(minY))
	fmt.Fprintf(b, `<text x="%.0f" y="%.0f" font-size="11" text-anchor="end">%s</text>`+"\n", x0-6, y1+10, fmtTick(maxY))
	fmt.Fprintf(b, `<text x="%.0f" y="%.0f" font-size="12" text-anchor="middle">%s</text>`+"\n",
		(x0+x1)/2, float64(o.Height)-10, esc(o.XLabel))
	fmt.Fprintf(b, `<text x="14" y="%.0f" font-size="12" transform="rotate(-90 14 %.0f)" text-anchor="middle">%s</text>`+"\n",
		(y0+y1)/2, (y0+y1)/2, esc(o.YLabel))
}

func fmtTick(v float64) string {
	switch {
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.0fM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
