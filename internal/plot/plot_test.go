package plot

import (
	"encoding/xml"
	"strconv"
	"strings"
	"testing"
)

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed XML: %v\n%s", err, svg)
		}
	}
}

func demoSeries() []Series {
	return []Series{
		{Name: "HEF", X: []float64{5, 10, 24}, Y: []float64{791, 395, 353}},
		{Name: "FSFR", X: []float64{5, 10, 24}, Y: []float64{795, 460, 458}},
	}
}

func TestLineChart(t *testing.T) {
	svg := Line(demoSeries(), Options{Title: "Figure 7", XLabel: "#ACs", YLabel: "Mcycles"})
	wellFormed(t, svg)
	for _, want := range []string{"<svg", "polyline", "HEF", "FSFR", "Figure 7", "#ACs", "Mcycles"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestLineChartLogY(t *testing.T) {
	s := []Series{{Name: "lat", X: []float64{0, 1, 2}, Y: []float64{1620, 72, 8}}}
	svg := Line(s, Options{Title: "latency", LogY: true})
	wellFormed(t, svg)
	// On a log axis the visual distance 1620→72 must be smaller than on a
	// linear one relative to 72→8; just assert well-formedness plus points.
	if !strings.Contains(svg, "polyline") {
		t.Fatal("no polyline")
	}
}

func TestLineChartEmpty(t *testing.T) {
	wellFormed(t, Line(nil, Options{Title: "empty"}))
	wellFormed(t, Line([]Series{{Name: "x"}}, Options{}))
}

func TestBarsChart(t *testing.T) {
	s := []Series{
		{Name: "SAD", Y: []float64{10, 200, 2400, 2300}},
		{Name: "SATD", Y: []float64{5, 60, 580, 590}},
	}
	svg := Bars(s, Options{Title: "Figure 2", XLabel: "100K-cycle bucket", YLabel: "executions"})
	wellFormed(t, svg)
	// 8 data bars + 2 legend swatches + 1 background.
	if got := strings.Count(svg, "<rect"); got != 11 {
		t.Errorf("rects = %d, want 11", got)
	}
}

func TestBarsEmpty(t *testing.T) {
	wellFormed(t, Bars(nil, Options{}))
}

func TestEscaping(t *testing.T) {
	svg := Line(demoSeries(), Options{Title: "a < b & c"})
	wellFormed(t, svg)
	if strings.Contains(svg, "a < b & c") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a &lt; b &amp; c") {
		t.Fatal("escaped title missing")
	}
}

func TestYAxisOrientation(t *testing.T) {
	// Larger y values must map to smaller pixel y (towards the top).
	s := []Series{{Name: "v", X: []float64{0, 1}, Y: []float64{0, 100}}}
	svg := Line(s, Options{Width: 200, Height: 200})
	wellFormed(t, svg)
	// Extract the polyline points attribute: "x0,y0 x1,y1".
	i := strings.Index(svg, `points="`)
	if i < 0 {
		t.Fatal("no points")
	}
	rest := svg[i+len(`points="`):]
	pts := strings.Fields(rest[:strings.Index(rest, `"`)])
	if len(pts) != 2 {
		t.Fatalf("points = %v", pts)
	}
	parseY := func(pt string) float64 {
		parts := strings.Split(pt, ",")
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if !(parseY(pts[1]) < parseY(pts[0])) {
		t.Fatalf("y=100 (%s) not above y=0 (%s)", pts[1], pts[0])
	}
}
