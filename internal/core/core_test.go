package core

import (
	"testing"

	"rispp/internal/bitstream"
	"rispp/internal/isa"
	"rispp/internal/molecule"
	"rispp/internal/reconfig"
	"rispp/internal/sched"
	"rispp/internal/sim"
	"rispp/internal/workload"
)

func newHEF(t *testing.T, is *isa.ISA, acs int) *Manager {
	t.Helper()
	s, err := sched.New("HEF")
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(Config{ISA: is, NumACs: acs, Scheduler: s})
}

func TestNewManagerValidation(t *testing.T) {
	s, _ := sched.New("HEF")
	cases := []Config{
		{NumACs: 4, Scheduler: s},    // no ISA
		{ISA: isa.H264(), NumACs: 4}, // no scheduler
		{ISA: isa.H264(), NumACs: -1, Scheduler: s},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewManager did not panic", i)
				}
			}()
			NewManager(cfg)
		}()
	}
}

func TestManagerName(t *testing.T) {
	m := newHEF(t, isa.H264(), 8)
	if m.Name() != "RISPP/HEF" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestHotSpotEntrySchedulesAtoms(t *testing.T) {
	is := isa.H264()
	m := newHEF(t, is, 8)
	m.Seed(isa.SISAD, 26000)
	m.Seed(isa.SISATD, 6000)
	m.EnterHotSpot(isa.HotSpotME, 0)
	if len(m.Requests) == 0 {
		t.Fatal("no Molecules selected")
	}
	if _, ok := m.NextEvent(); !ok {
		t.Fatal("no Atom loads scheduled")
	}
	if m.Latency(isa.SISAD) != is.SI(isa.SISAD).SWLatency {
		t.Fatal("SAD accelerated before any Atom loaded")
	}
}

func TestAtomLoadUpgradesLatency(t *testing.T) {
	is := isa.H264()
	m := newHEF(t, is, 8)
	m.Seed(isa.SISAD, 26000)
	m.EnterHotSpot(isa.HotSpotME, 0)
	before := m.Latency(isa.SISAD)
	at, ok := m.NextEvent()
	if !ok {
		t.Fatal("nothing scheduled")
	}
	m.Advance(at)
	after := m.Latency(isa.SISAD)
	if after >= before {
		t.Fatalf("latency did not improve: %d -> %d", before, after)
	}
	if m.AtomLoads() != 1 {
		t.Fatalf("AtomLoads = %d", m.AtomLoads())
	}
}

func TestSeededForecastsDriveFirstSelection(t *testing.T) {
	is := isa.H264()
	unseeded := newHEF(t, is, 8)
	unseeded.EnterHotSpot(isa.HotSpotME, 0)
	if len(unseeded.Requests) != 0 {
		t.Fatalf("cold manager selected %v without forecasts", unseeded.Requests)
	}

	tr := workload.H264(workload.H264Config{Frames: 1})
	seeded := newHEF(t, is, 8)
	seeded.SeedFromTrace(tr)
	seeded.EnterHotSpot(isa.HotSpotME, 0)
	if len(seeded.Requests) == 0 {
		t.Fatal("seeded manager selected nothing")
	}
}

func TestColdManagerLearnsAcrossFrames(t *testing.T) {
	// Without seeds the first ME runs in software; the monitor measures it
	// and the second ME gets hardware.
	is := isa.H264()
	m := newHEF(t, is, 8)
	tr := workload.H264(workload.H264Config{Frames: 2})
	res, err := sim.Run(tr, is, m, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HWExecutionsOf(isa.SISAD) == 0 {
		t.Fatal("manager never learned to accelerate SAD")
	}
	if res.SWExecutionsOf(isa.SISAD) == 0 {
		t.Fatal("first cold frame should have run SAD in software")
	}
}

func TestFullRunNeverExceedsCapacity(t *testing.T) {
	is := isa.H264()
	for _, acs := range []int{1, 3, 6, 12, 24} {
		m := newHEF(t, is, acs)
		tr := workload.H264(workload.H264Config{Frames: 3})
		m.SeedFromTrace(tr)
		if _, err := sim.Run(tr, is, m, sim.Options{}); err != nil {
			t.Fatalf("ACs=%d: %v", acs, err)
		}
		if got := m.Loaded().Determinant(); got > acs {
			t.Fatalf("ACs=%d: %d Atoms loaded", acs, got)
		}
	}
}

func TestZeroACsRunsInSoftware(t *testing.T) {
	is := isa.H264()
	m := newHEF(t, is, 0)
	tr := workload.H264(workload.H264Config{Frames: 1})
	m.SeedFromTrace(tr)
	res, err := sim.Run(tr, is, m, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != tr.SoftwareCycles(is) {
		t.Fatalf("0 ACs = %d cycles, want pure software %d", res.TotalCycles, tr.SoftwareCycles(is))
	}
	if len(res.HWExecutions()) != 0 {
		t.Fatal("hardware executions with zero containers")
	}
}

func TestMoreACsNeverHurt(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 5})
	prev := int64(1 << 62)
	for _, acs := range []int{0, 4, 8, 16, 32} {
		m := newHEF(t, is, acs)
		m.SeedFromTrace(tr)
		res, err := sim.Run(tr, is, m, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Allow 3% tolerance: more ACs can trigger longer reconfiguration
		// phases before paying off within so few frames.
		if float64(res.TotalCycles) > 1.03*float64(prev) {
			t.Fatalf("ACs=%d: %d cycles, noticeably worse than smaller fabric (%d)", acs, res.TotalCycles, prev)
		}
		if res.TotalCycles < prev {
			prev = res.TotalCycles
		}
	}
}

func TestUpgradesAreMonotoneWithinHotSpot(t *testing.T) {
	// Within one hot spot execution, an SI's latency must never increase:
	// Atoms needed by the current selection are protected from eviction, so
	// upgrades only go downward until the hot spot is left. Simulate single
	// phases in isolation (across phases latencies may legitimately rise
	// when another hot spot evicts shared Atoms).
	is := isa.H264()
	full := workload.H264(workload.H264Config{Frames: 1})
	for pi := range full.Phases {
		m := newHEF(t, is, 10)
		m.SeedFromTrace(full)
		one := &workload.Trace{Name: "phase", Phases: full.Phases[pi : pi+1]}
		res, err := sim.Run(one, is, m, sim.Options{Timeline: true})
		if err != nil {
			t.Fatal(err)
		}
		last := map[int]int{}
		for _, e := range res.Timeline.Events {
			if prev, ok := last[e.SI]; ok && e.Latency > prev {
				t.Fatalf("phase %d: SI %d latency rose %d -> %d at cycle %d",
					pi, e.SI, prev, e.Latency, e.Cycle)
			}
			last[e.SI] = e.Latency
		}
	}
}

func TestEvictionPoliciesAllComplete(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 2})
	for _, pol := range []reconfig.EvictionPolicy{reconfig.EvictLRU, reconfig.EvictFIFO, reconfig.EvictRandom} {
		s, _ := sched.New("HEF")
		m := NewManager(Config{ISA: is, NumACs: 10, Scheduler: s, Eviction: pol, Seed: 42})
		m.SeedFromTrace(tr)
		if _, err := sim.Run(tr, is, m, sim.Options{}); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

func TestExhaustiveSelectionOnMEHotSpot(t *testing.T) {
	is := isa.H264()
	s, _ := sched.New("HEF")
	m := NewManager(Config{ISA: is, NumACs: 6, Scheduler: s, ExhaustiveSelection: true})
	tr := workload.H264(workload.H264Config{Frames: 1})
	m.SeedFromTrace(tr)
	// Run only the ME phase: exhaustive selection over 2 SIs is cheap.
	me := &workload.Trace{Name: "me", Phases: tr.Phases[:1]}
	if _, err := sim.Run(me, is, m, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if len(m.Requests) == 0 {
		t.Fatal("exhaustive selection chose nothing")
	}
}

func TestResetRestoresSeeds(t *testing.T) {
	is := isa.H264()
	m := newHEF(t, is, 8)
	m.Seed(isa.SISAD, 1234)
	m.Reset()
	if got := m.Monitor().Expected(isa.HotSpotME, isa.SISAD); got != 1234 {
		t.Fatalf("seed lost on Reset: %d", got)
	}
	if m.AtomLoads() != 0 || m.Evictions() != 0 {
		t.Fatal("counters not reset")
	}
	if !m.Loaded().Equal(molecule.New(is.Dim())) {
		t.Fatal("containers not cleared on Reset")
	}
}

func TestRequestsFitSup(t *testing.T) {
	is := isa.H264()
	m := newHEF(t, is, 9)
	tr := workload.H264(workload.H264Config{Frames: 1})
	m.SeedFromTrace(tr)
	m.EnterHotSpot(isa.HotSpotEE, 0)
	sup := molecule.New(is.Dim())
	for _, r := range m.Requests {
		sup = sup.Sup(r.Selected.Atoms)
	}
	if sup.Determinant() > 9 {
		t.Fatalf("selection NA = %d > 9 ACs", sup.Determinant())
	}
}

func TestBitstreamRepositoryTimingIdentical(t *testing.T) {
	// Driving the port from the generated bitstream images must reproduce
	// the ISA-calibrated run exactly (image sizes equal the nominal sizes).
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 2})
	repo, err := bitstream.NewRepository(is, 5)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := sched.New("HEF")
	plain := NewManager(Config{ISA: is, NumACs: 10, Scheduler: s1})
	plain.SeedFromTrace(tr)
	s2, _ := sched.New("HEF")
	withRepo := NewManager(Config{ISA: is, NumACs: 10, Scheduler: s2, Bitstreams: repo})
	withRepo.SeedFromTrace(tr)

	a, err := sim.Run(tr, is, plain, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(tr, is, withRepo, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatalf("bitstream-driven run differs: %d vs %d", a.TotalCycles, b.TotalCycles)
	}
}

func TestMonitorLearnsHotSpotRotation(t *testing.T) {
	is := isa.H264()
	m := newHEF(t, is, 8)
	tr := workload.H264(workload.H264Config{Frames: 3})
	m.SeedFromTrace(tr)
	if _, err := sim.Run(tr, is, m, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	next, ok := m.Monitor().PredictNext(isa.HotSpotME)
	if !ok || next != isa.HotSpotEE {
		t.Fatalf("PredictNext(ME) = %v, %v; want EE", next, ok)
	}
	next, ok = m.Monitor().PredictNext(isa.HotSpotLF)
	if !ok || next != isa.HotSpotME {
		t.Fatalf("PredictNext(LF) = %v, %v; want ME", next, ok)
	}
}

func TestPrefetchingHelpsWithSlack(t *testing.T) {
	// Prefetching needs two things: an idle reconfiguration port (hot spots
	// outlasting their reload windows — 4CIF frames are 4x longer than CIF)
	// and slack containers beyond the current selection (a 40-AC fabric).
	// At the paper's CIF/5–24-AC operating points the port never idles, so
	// prefetching is a no-op there (see TestPrefetchingNeverHurts).
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 4, WidthMB: 44, HeightMB: 36})

	run := func(prefetch bool) (*sim.Result, *Manager) {
		s, _ := sched.New("HEF")
		m := NewManager(Config{ISA: is, NumACs: 40, Scheduler: s, Prefetch: prefetch})
		m.SeedFromTrace(tr)
		res, err := sim.Run(tr, is, m, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res, m
	}

	plain, _ := run(false)
	pre, mgr := run(true)
	if mgr.Prefetches == 0 {
		t.Fatal("prefetching never triggered despite idle port and slack capacity")
	}
	if pre.TotalCycles > plain.TotalCycles {
		t.Fatalf("prefetching hurt: %d vs %d cycles", pre.TotalCycles, plain.TotalCycles)
	}
}

func TestPrefetchingNeverHurts(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 5})
	for _, acs := range []int{6, 10, 14, 24} {
		run := func(prefetch bool) int64 {
			s, _ := sched.New("HEF")
			m := NewManager(Config{ISA: is, NumACs: acs, Scheduler: s, Prefetch: prefetch})
			m.SeedFromTrace(tr)
			res, err := sim.Run(tr, is, m, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			return res.TotalCycles
		}
		plain, pre := run(false), run(true)
		if pre > plain {
			t.Errorf("ACs=%d: prefetching hurt: %d vs %d", acs, pre, plain)
		}
	}
}

func TestSetBudgetConstrainsSelection(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	m := newHEF(t, is, 20)
	m.SeedFromTrace(tr)

	m.EnterHotSpot(isa.HotSpotEE, 0)
	fullNA := molecule.New(is.Dim())
	for _, r := range m.Requests {
		fullNA = fullNA.Sup(r.Selected.Atoms)
	}

	m.SetBudget(6)
	if m.Budget() != 6 {
		t.Fatalf("Budget = %d", m.Budget())
	}
	m.EnterHotSpot(isa.HotSpotEE, 1_000_000)
	small := molecule.New(is.Dim())
	for _, r := range m.Requests {
		small = small.Sup(r.Selected.Atoms)
	}
	if small.Determinant() > 6 {
		t.Fatalf("constrained selection NA = %d > 6", small.Determinant())
	}
	if small.Determinant() >= fullNA.Determinant() {
		t.Fatalf("budget did not shrink the selection: %d vs %d",
			small.Determinant(), fullNA.Determinant())
	}

	// Clamping.
	m.SetBudget(-3)
	if m.Budget() != 0 {
		t.Fatal("negative budget not clamped")
	}
	m.SetBudget(99)
	if m.Budget() != 20 {
		t.Fatal("oversized budget not clamped to NumACs")
	}
	// Reset restores.
	m.Reset()
	if m.Budget() != 20 {
		t.Fatal("Reset did not restore the budget")
	}
}

func TestConstrainedRunStillValid(t *testing.T) {
	// Shrink the budget mid-run (thermal throttling at frame 2): the
	// system must keep working, just slower.
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 4})
	m := newHEF(t, is, 16)
	m.SeedFromTrace(tr)

	throttled := &budgetSchedule{Manager: m, at: 6, budget: 5}
	res, err := sim.Run(tr, is, throttled, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	m2 := newHEF(t, is, 16)
	m2.SeedFromTrace(tr)
	full, err := sim.Run(tr, is, m2, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= full.TotalCycles {
		t.Fatalf("throttled run (%d) not slower than full fabric (%d)", res.TotalCycles, full.TotalCycles)
	}
}

// budgetSchedule throttles the manager's budget from the n-th hot-spot
// entry on.
type budgetSchedule struct {
	*Manager
	entries int
	at      int
	budget  int
}

func (b *budgetSchedule) EnterHotSpot(h isa.HotSpotID, now int64) {
	b.entries++
	if b.entries == b.at {
		b.SetBudget(b.budget)
	}
	b.Manager.EnterHotSpot(h, now)
}

func TestPrefetchWithoutPredictionIsNoop(t *testing.T) {
	// A manager that has only ever seen one hot spot has no successor to
	// predict; the prefetch path must stay quiet.
	is := isa.H264()
	s, _ := sched.New("HEF")
	m := NewManager(Config{ISA: is, NumACs: 30, Scheduler: s, Prefetch: true})
	full := workload.H264(workload.H264Config{Frames: 1})
	me := &workload.Trace{Name: "me", Phases: full.Phases[:1]}
	m.SeedFromTrace(full)
	if _, err := sim.Run(me, is, m, sim.Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Prefetches != 0 {
		t.Fatalf("prefetched %d times without a learned rotation", m.Prefetches)
	}
}

func TestZeroBudgetFallsBackToSoftware(t *testing.T) {
	is := isa.H264()
	tr := workload.H264(workload.H264Config{Frames: 1})
	m := newHEF(t, is, 12)
	m.SeedFromTrace(tr)
	// sim.Run resets the runtime (restoring the budget), so throttle at the
	// first hot-spot entry instead.
	zero := &budgetSchedule{Manager: m, at: 1, budget: 0}
	res, err := sim.Run(tr, is, zero, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != tr.SoftwareCycles(is) {
		t.Fatalf("zero budget ran %d cycles, want software %d", res.TotalCycles, tr.SoftwareCycles(is))
	}
}
