// Package core implements the RISPP Run-Time Manager (paper Section 3.1):
// the component that (I) controls SI execution — dispatching to composed
// Molecules in the Atom Containers or trapping to the base instruction set —
// (II) observes SI execution frequencies through the online monitor, and
// (III) determines the Atom re-loading decisions by running the Molecule
// selection and the Special Instruction Scheduler at every hot-spot entry.
//
// Manager implements sim.Runtime and is the system the paper's proposed HEF
// scheduler (and the FSFR/ASF/SJF reference strategies) plugs into.
package core

import (
	"fmt"

	"rispp/internal/bitstream"
	"rispp/internal/isa"
	"rispp/internal/molecule"
	"rispp/internal/monitor"
	"rispp/internal/reconfig"
	"rispp/internal/sched"
	"rispp/internal/selection"
	"rispp/internal/workload"
)

// Config assembles a RISPP run-time system.
type Config struct {
	ISA       *isa.ISA
	NumACs    int             // number of Atom Containers
	Scheduler sched.Scheduler // SI Scheduler (required)

	Timing       reconfig.Timing         // zero value → reconfig.DefaultTiming()
	Eviction     reconfig.EvictionPolicy // Atom Container eviction policy
	MonitorShift uint                    // forecast smoothing α = 2^-shift
	Seed         int64                   // randomized eviction seed

	// Bitstreams, when set, makes the reconfiguration port read the
	// partial-bitstream sizes from the generated images instead of the
	// ISA's nominal byte counts (they agree by construction; this wires the
	// bitstream repository into the load path end to end).
	Bitstreams *bitstream.Repository

	// ExhaustiveSelection switches the greedy Molecule selection for the
	// exponential reference selection (ablation; small SI sets only).
	ExhaustiveSelection bool

	// Prefetch enables reconfiguration prefetching (an extension beyond the
	// paper): once the current hot spot's selection is fully composed and
	// the port idles, Atoms for the predicted next hot spot start loading.
	// The hot-spot rotation is learned online by the monitor.
	Prefetch bool
}

// Manager is the RISPP Run-Time Manager. It is not safe for concurrent use;
// run independent simulations with independent Managers.
type Manager struct {
	cfg  Config
	name string // "RISPP/<scheduler>", precomputed so Name is alloc-free
	mon  *monitor.Monitor

	array  *reconfig.Array
	port   *reconfig.Port
	needed molecule.Vector // sup of the current selection, protected from eviction

	seeds map[isa.SIID]int64 // initial forecasts, reapplied on Reset

	// Reusable arenas: the per-hot-spot selection/scheduling pipeline runs
	// entirely in this storage, so steady-state operation (and Reset, which
	// keeps it all) performs no allocations.
	selScratch   *selection.Scratch
	schedScratch *sched.Scratch
	cands        []selection.Candidate
	spotSIs      map[isa.HotSpotID][]*isa.SI // per-Manager cache of ISA.HotSpotSIs

	lastSpot   isa.HotSpotID
	started    bool
	prefetched bool
	now        int64 // latest simulation time the Manager has observed
	budget     int   // current container budget (≤ NumACs); see SetBudget

	// Per-SI caches over the Atom Container state, invalidated by bumping
	// gen whenever the array mutates (install, reset, restore). The
	// simulator polls Latency and Record per burst but the array only
	// changes per completed reconfiguration, so the cache collapses the
	// dominant Molecule re-scan of the run loop.
	gen      uint64
	latGen   []uint64  // per SI: gen the cache entry was computed at
	lat      []int32   // per SI: current latency
	touchIdx [][]int32 // per SI: slots Record must stamp for LRU recency

	// Budget-sensitivity accounting for delta-resimulation (see
	// BudgetSensitivity): the container demand of the run so far and
	// whether any budget-dependent filter fired.
	selDemand     int
	selRejected   bool
	budgetTouched bool // SetBudget was called since Reset → no transfer claims

	// Selections counts hot-spot entries that selected at least one
	// Molecule; Requests records the most recent selection.
	Selections int
	Requests   []sched.Request
	// Prefetches counts prefetch schedules issued for upcoming hot spots.
	Prefetches int
	// StaleLoads counts completed reconfigurations that were discarded
	// because a hot-spot switch superseded their schedule and the new
	// selection had already claimed every Atom Container.
	StaleLoads int
}

// NewManager builds a Run-Time Manager from the config. It panics on an
// incomplete config — construction is program setup, not a recoverable path.
func NewManager(cfg Config) *Manager {
	if cfg.ISA == nil {
		panic("core: Config.ISA is required")
	}
	if cfg.Scheduler == nil {
		panic("core: Config.Scheduler is required")
	}
	if cfg.NumACs < 0 {
		panic("core: negative NumACs")
	}
	if cfg.Timing == (reconfig.Timing{}) {
		cfg.Timing = reconfig.DefaultTiming()
	}
	m := &Manager{cfg: cfg, name: "RISPP/" + cfg.Scheduler.Name(), seeds: make(map[isa.SIID]int64)}
	m.Reset()
	return m
}

// Name identifies the runtime as RISPP with its scheduler, e.g.
// "RISPP/HEF".
func (m *Manager) Name() string { return m.name }

// Seed installs an initial execution-count forecast for an SI (e.g. from a
// design-time profiling run). Seeds survive Reset.
func (m *Manager) Seed(si isa.SIID, expected int64) {
	m.seeds[si] = expected
	m.mon.Seed(si, expected)
}

// SeedFromTrace seeds the forecasts from the first occurrence of every hot
// spot in the trace — the offline estimation flow of the paper's toolchain.
func (m *Manager) SeedFromTrace(tr *workload.Trace) {
	seen := make(map[isa.HotSpotID]bool)
	for i := range tr.Phases {
		p := &tr.Phases[i]
		if seen[p.HotSpot] {
			continue
		}
		seen[p.HotSpot] = true
		per := make(map[isa.SIID]int64)
		for _, b := range p.Bursts {
			per[b.SI] += int64(b.Count)
		}
		for si, n := range per {
			m.Seed(si, n)
		}
	}
}

// Reset returns the system to its power-on state: empty Atom Containers,
// idle reconfiguration port, forecasts reset to the seeds. All backing
// storage (monitor tables, container array, port queue, selection and
// scheduling arenas) is kept and recycled, so Reset followed by a run
// allocates nothing in the steady state.
func (m *Manager) Reset() {
	is := m.cfg.ISA
	if m.mon == nil {
		m.mon = monitor.New(is, m.cfg.MonitorShift)
		m.array = reconfig.NewArray(m.cfg.NumACs, is.Dim(), m.cfg.Eviction, m.cfg.Seed)
		m.port = reconfig.NewPort(is, m.cfg.Timing)
		if repo := m.cfg.Bitstreams; repo != nil {
			m.port.SetSizeSource(func(a isa.AtomID) int { return len(repo.Image(a)) })
		}
		m.needed = molecule.New(is.Dim())
		m.selScratch = selection.NewScratch()
		m.schedScratch = sched.NewScratch()
		m.spotSIs = make(map[isa.HotSpotID][]*isa.SI)
		m.latGen = make([]uint64, len(is.SIs))
		m.lat = make([]int32, len(is.SIs))
		m.touchIdx = make([][]int32, len(is.SIs))
	} else {
		m.mon.Reset()
		m.array.Reset(m.cfg.Seed)
		m.port.Reset()
		m.needed.Zero()
	}
	for si, n := range m.seeds {
		m.mon.Seed(si, n)
	}
	m.started = false
	m.prefetched = false
	m.budget = m.cfg.NumACs
	m.gen++ // invalidate the per-SI latency/touch caches
	m.selDemand = 0
	m.selRejected = false
	m.budgetTouched = false
	m.Selections = 0
	m.Requests = m.Requests[:0]
	m.Prefetches = 0
	m.StaleLoads = 0
}

// hotSpotSIs returns the SIs of hot spot h, cached per Manager: the ISA is
// immutable but shared across goroutines, so the cache lives here. The
// cache survives Reset — it is derived purely from the ISA.
func (m *Manager) hotSpotSIs(h isa.HotSpotID) []*isa.SI {
	sis, ok := m.spotSIs[h]
	if !ok {
		sis = m.cfg.ISA.HotSpotSIs(h)
		m.spotSIs[h] = sis
	}
	return sis
}

// SetBudget constrains how many Atom Containers the Molecule selection may
// use from the next hot-spot entry on — the run-time system's response to
// varying constraints (thermal throttling, a co-scheduled accelerator
// claiming fabric area). The physical containers stay; only the selection
// budget shrinks, so already loaded Atoms keep working until displaced.
// Values are clamped to [0, NumACs]; Reset restores the full fabric.
func (m *Manager) SetBudget(n int) {
	if n < 0 {
		n = 0
	}
	if n > m.cfg.NumACs {
		n = m.cfg.NumACs
	}
	m.budget = n
	m.budgetTouched = true
}

// Budget returns the current selection budget.
func (m *Manager) Budget() int { return m.budget }

// EnterHotSpot forecasts the upcoming hot spot, selects Molecules, runs the
// SI Scheduler and (re)programs the reconfiguration port.
func (m *Manager) EnterHotSpot(h isa.HotSpotID, now int64) {
	is := m.cfg.ISA
	if m.started {
		m.mon.RecordTransition(m.lastSpot, h)
	}
	m.lastSpot = h
	m.started = true
	m.prefetched = false
	m.now = now
	cands := m.cands[:0]
	for _, si := range m.hotSpotSIs(h) {
		cands = append(cands, selection.Candidate{SI: si, Expected: m.mon.Expected(h, si.ID)})
	}
	m.cands = cands
	m.mon.EnterHotSpot(h)

	var reqs []sched.Request
	if m.cfg.ExhaustiveSelection {
		var err error
		reqs, err = selection.Exhaustive(cands, m.budget, is.Dim(), 0)
		if err != nil {
			panic(fmt.Sprintf("core: exhaustive selection: %v", err))
		}
	} else {
		reqs = selection.GreedyInto(cands, m.budget, is.Dim(), m.selScratch)
		if m.selScratch.Rejected {
			m.selRejected = true
		}
		if m.selScratch.Demand > m.selDemand {
			m.selDemand = m.selScratch.Demand
		}
	}
	m.Requests = reqs
	if len(reqs) > 0 {
		m.Selections++
	}
	selection.SupInto(reqs, m.needed)
	seq := sched.ScheduleInto(m.cfg.Scheduler, m.schedScratch, reqs, m.array.Loaded())
	m.port.Schedule(now, seq)
}

// LeaveHotSpot finalizes the monitor's counters for the hot spot.
func (m *Manager) LeaveHotSpot(now int64) { m.mon.LeaveHotSpot() }

// refreshSI recomputes the cached latency and touch-slot list of si against
// the current container state. One Molecule scan serves both: the fastest
// available Molecule determines the latency, and its Atom slots are the
// ones Record must stamp for LRU recency.
func (m *Manager) refreshSI(si isa.SIID) {
	loaded := m.array.Loaded()
	s := m.cfg.ISA.SI(si)
	if mol, ok := s.FastestAvailable(loaded); ok {
		m.lat[si] = int32(mol.Latency)
		m.touchIdx[si] = m.array.AppendTouchSlots(m.touchIdx[si][:0], mol.Atoms)
	} else {
		m.lat[si] = int32(s.SWLatency)
		m.touchIdx[si] = m.touchIdx[si][:0]
	}
	m.latGen[si] = m.gen
}

// Latency returns the per-execution latency of si: the fastest Molecule
// composed from the currently loaded Atoms, or the trap latency. Served
// from the per-SI cache; the Molecule scan reruns only after the container
// array actually changed.
func (m *Manager) Latency(si isa.SIID) int {
	if m.latGen[si] != m.gen {
		m.refreshSI(si)
	}
	return int(m.lat[si])
}

// Record reports executions to the monitor and refreshes Atom recency. The
// slots to stamp come from the same cache as Latency, so a burst of
// executions between reconfigurations costs one array scan total instead
// of one per call.
func (m *Manager) Record(si isa.SIID, n int64, now int64) {
	m.now = now
	m.mon.Record(si, n)
	if m.latGen[si] != m.gen {
		m.refreshSI(si)
	}
	m.array.TouchSlots(m.touchIdx[si], now)
}

// NextEvent returns the completion time of the Atom currently loading.
// With prefetching enabled, an idle port is immediately reprogrammed with
// Atom loads for the predicted next hot spot.
func (m *Manager) NextEvent() (int64, bool) {
	if m.cfg.Prefetch && m.started && !m.prefetched && !m.port.Busy() {
		m.schedulePrefetch(m.now)
	}
	return m.port.NextCompletion()
}

// Advance installs the Atom that finished loading at time t. The port
// cannot abort an in-flight bitstream, so a hot-spot switch can complete an
// Atom that the new selection has no room for: every container already
// claimed by the new sup. Such a stale Atom is discarded rather than
// evicting a protected one — it is provably redundant, because if the
// selection still lacked instances of its type, at least one container
// would be evictable (|sup| ≤ #ACs). With prefetching enabled, the moment
// the current hot spot's loads drain, the predicted next hot spot's Atoms
// are scheduled to keep the port busy.
func (m *Manager) Advance(t int64) {
	atom, at := m.port.Complete()
	m.now = at
	if m.array.CanInstall(m.needed) {
		m.array.Install(atom, m.needed, at)
		m.gen++ // container contents changed; latency/touch caches are stale
	} else {
		m.StaleLoads++
	}
	if m.cfg.Prefetch && !m.prefetched && !m.port.Busy() {
		m.schedulePrefetch(at)
	}
}

// schedulePrefetch selects Molecules for the predicted next hot spot that
// fit alongside the current hot spot's protected Atoms and programs the
// idle port with their loading sequence. One prefetch round per hot spot.
func (m *Manager) schedulePrefetch(now int64) {
	m.prefetched = true
	next, ok := m.mon.PredictNext(m.lastSpot)
	if !ok || next == m.lastSpot {
		return
	}
	is := m.cfg.ISA
	// The prefetch path allocates (it is an off-by-default extension beyond
	// the paper); the arenas above stay dedicated to the hot path.
	var cands []selection.Candidate
	for _, si := range m.hotSpotSIs(next) {
		cands = append(cands, selection.Candidate{SI: si, Expected: m.mon.Expected(next, si.ID)})
	}
	reqs := selection.Greedy(cands, m.budget, is.Dim())
	// Keep only Molecules whose joint requirement with the current
	// (protected) Atoms still fits the containers.
	kept := reqs[:0]
	sup := m.needed.Clone()
	for _, r := range reqs {
		joint := sup.Sup(r.Selected.Atoms)
		if joint.Determinant() > m.cfg.NumACs {
			continue
		}
		sup = joint
		kept = append(kept, r)
	}
	if len(kept) == 0 {
		return
	}
	seq := m.cfg.Scheduler.Schedule(kept, m.array.Loaded())
	if len(seq) == 0 {
		return
	}
	m.port.Schedule(now, seq)
	m.Prefetches++
}

// --- delta-resimulation checkpointing (sim.Checkpointable) ---------------

// State is an opaque checkpoint of a Manager at a phase boundary, produced
// by SaveState and consumed by RestoreState. States transfer between
// Managers whose configs agree on everything except NumACs (the delta axis);
// the budget-transfer legality is the caller's job via BudgetSensitivity.
type State struct {
	mon    monitor.State
	array  reconfig.ArrayState
	port   reconfig.PortState
	needed molecule.Vector

	lastSpot   isa.HotSpotID
	started    bool
	prefetched bool
	now        int64

	selections  int
	prefetches  int
	staleLoads  int
	selDemand   int
	selRejected bool
}

// ContainerBudget returns the physical container count checkpoint transfers
// are measured against.
func (m *Manager) ContainerBudget() int { return m.cfg.NumACs }

// NewState allocates an empty checkpoint arena for SaveState.
func (m *Manager) NewState() any { return new(State) }

// SaveState deep-copies the Manager's complete mutable state into dst (a
// *State from NewState). Must be called at a phase boundary — after
// LeaveHotSpot, before the next EnterHotSpot. The arenas inside dst are
// reused across saves.
func (m *Manager) SaveState(dst any) {
	s := dst.(*State)
	m.mon.SaveInto(&s.mon)
	m.array.SaveInto(&s.array)
	m.port.SaveInto(&s.port)
	if cap(s.needed) < len(m.needed) {
		s.needed = m.needed.Clone()
	} else {
		s.needed = s.needed[:len(m.needed)]
		s.needed.CopyFrom(m.needed)
	}
	s.lastSpot = m.lastSpot
	s.started = m.started
	s.prefetched = m.prefetched
	s.now = m.now
	s.selections = m.Selections
	s.prefetches = m.Prefetches
	s.staleLoads = m.StaleLoads
	s.selDemand = m.selDemand
	s.selRejected = m.selRejected
}

// RestoreState overwrites the Manager's state with a saved one, replacing
// the Reset a fresh run would perform. The selection budget returns to the
// full fabric (SetBudget does not survive a restore) and Requests is
// cleared — both are rebuilt by the next EnterHotSpot. Only the runtime
// pool owner may restore a Manager; see ARCHITECTURE.md on checkpoint
// ownership.
func (m *Manager) RestoreState(src any) {
	s := src.(*State)
	m.mon.RestoreFrom(&s.mon)
	m.array.RestoreFrom(&s.array, m.cfg.Seed)
	m.port.RestoreFrom(&s.port)
	m.needed.CopyFrom(s.needed)
	m.lastSpot = s.lastSpot
	m.started = s.started
	m.prefetched = s.prefetched
	m.now = s.now
	m.budget = m.cfg.NumACs
	m.budgetTouched = false
	m.gen++ // container contents replaced; caches are stale
	m.Selections = s.selections
	m.Requests = m.Requests[:0]
	m.Prefetches = s.prefetches
	m.StaleLoads = s.staleLoads
	m.selDemand = s.selDemand
	m.selRejected = s.selRejected
}

// BudgetSensitivity reports how the run so far depended on the container
// budget. demand is the largest container count any decision actually
// required: the joint sup of every Molecule selection and the peak array
// occupancy. A prefix replayed on any budget ≥ demand commits the identical
// decision sequence (greedy argmax stability: the budget filter only
// removed losing candidates). upOK additionally reports that no
// budget-dependent filter fired at all — no selection rejection, no
// eviction, no stale load — so the prefix is also valid on larger budgets.
// Exhaustive selection and prefetching make decisions that resist this
// analysis; they and SetBudget report maximal sensitivity (demand = NumACs,
// upOK = false), disabling transfers without affecting correctness.
func (m *Manager) BudgetSensitivity() (demand int, upOK bool) {
	if m.cfg.ExhaustiveSelection || m.cfg.Prefetch || m.budgetTouched {
		return m.cfg.NumACs, false
	}
	demand = m.selDemand
	if p := m.array.PeakOccupancy(); p > demand {
		demand = p
	}
	upOK = !m.selRejected && m.array.Evictions == 0 && m.StaleLoads == 0
	return demand, upOK
}

// Loaded exposes the current Atom availability (for inspection/tests).
func (m *Manager) Loaded() molecule.Vector { return m.array.Loaded().Clone() }

// Monitor exposes the online monitor (for inspection/tests).
func (m *Manager) Monitor() *monitor.Monitor { return m.mon }

// AtomLoads returns the number of completed Atom reconfigurations.
func (m *Manager) AtomLoads() int { return m.port.Loads }

// Evictions returns the number of Atoms displaced from the containers.
func (m *Manager) Evictions() int { return m.array.Evictions }
