package core

import (
	"testing"

	"rispp/internal/isa"
	"rispp/internal/molecule"
	"rispp/internal/sched"
)

// staleISA builds the smallest dynamic instruction set on which a superseded
// load schedule can complete an Atom the current selection has no room for:
// hot spot 0 wants Atoms {A, B}, hot spot 1 wants the slow-loading Atom {C}.
func staleISA() *isa.ISA {
	is := &isa.ISA{
		Name: "stale",
		Atoms: []isa.AtomType{
			{ID: 0, Name: "A", BitstreamBytes: 4_000, Slices: 10, LUTs: 10, FFs: 10},
			{ID: 1, Name: "B", BitstreamBytes: 4_000, Slices: 10, LUTs: 10, FFs: 10},
			{ID: 2, Name: "C", BitstreamBytes: 2_000_000, Slices: 10, LUTs: 10, FFs: 10},
		},
		SIs: []isa.SI{
			{ID: 0, Name: "SI_AB", HotSpot: 0, SWLatency: 100,
				Molecules: []isa.Molecule{{SI: 0, Atoms: molecule.Of(1, 1, 0), Latency: 10}}},
			{ID: 1, Name: "SI_C", HotSpot: 1, SWLatency: 100,
				Molecules: []isa.Molecule{{SI: 1, Atoms: molecule.Of(0, 0, 1), Latency: 10}}},
		},
		HotSpots: []isa.HotSpot{
			{ID: 0, Name: "HS0", SIs: []isa.SIID{0}},
			{ID: 1, Name: "HS1", SIs: []isa.SIID{1}},
		},
	}
	if err := is.Validate(); err != nil {
		panic(err)
	}
	return is
}

// TestAdvanceDiscardsStaleLoad reproduces a crash the oracle's generated
// corpus uncovered: the reconfiguration port cannot abort an in-flight
// bitstream, so a hot-spot switch can complete an Atom after the new
// selection has claimed every container, leaving Install with no evictable
// victim. The Manager must discard such a stale load, not panic.
//
// Sequence on a 2-container fabric: hot spot 0 loads A and B (array full),
// hot spot 1 schedules the slow Atom C, and the application returns to hot
// spot 0 — whose selection protects both A and B — before C's bitstream
// finishes.
func TestAdvanceDiscardsStaleLoad(t *testing.T) {
	is := staleISA()
	s, err := sched.New("HEF")
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{ISA: is, NumACs: 2, Scheduler: s})
	m.Seed(0, 1_000)
	m.Seed(1, 1_000)

	m.EnterHotSpot(0, 0)
	var now int64
	for {
		at, ok := m.NextEvent()
		if !ok {
			break
		}
		m.Advance(at)
		now = at
	}
	if !m.Loaded().Equal(molecule.Of(1, 1, 0)) {
		t.Fatalf("after hot spot 0 loads: loaded = %v, want (1, 1, 0)", m.Loaded())
	}
	m.Record(0, 1_000, now) // keep the forecast alive for the re-entry
	m.LeaveHotSpot(now)

	m.EnterHotSpot(1, now)
	if at, ok := m.NextEvent(); !ok || at <= now {
		t.Fatalf("hot spot 1 did not start loading C: at=%d ok=%v", at, ok)
	}
	m.Record(1, 1_000, now+1)
	m.LeaveHotSpot(now + 1)

	// Back to hot spot 0 while C is still in flight. Its selection needs
	// (1, 1, 0) — both containers — so the completing C has nowhere to go.
	m.EnterHotSpot(0, now+2)
	at, ok := m.NextEvent()
	if !ok {
		t.Fatal("in-flight C load was lost on reschedule")
	}
	m.Advance(at) // used to panic: "no evictable Atom Container"

	if m.StaleLoads != 1 {
		t.Fatalf("StaleLoads = %d, want 1", m.StaleLoads)
	}
	if !m.Loaded().Equal(molecule.Of(1, 1, 0)) {
		t.Fatalf("stale load disturbed the array: loaded = %v, want (1, 1, 0)", m.Loaded())
	}
	if _, ok := m.NextEvent(); ok {
		t.Fatal("port still busy after the stale load drained")
	}
	if m.Evictions() != 0 {
		t.Fatalf("stale load evicted a protected Atom: %d evictions", m.Evictions())
	}
}
