package selection

import (
	"math/rand"
	"testing"

	"rispp/internal/isa/isatest"
)

// TestGreedyPropertiesOnRandomISAs: on random Molecule libraries the greedy
// selection always respects the container budget, only selects for SIs with
// positive forecasts, and never selects a Molecule slower than software.
func TestGreedyPropertiesOnRandomISAs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < 300; i++ {
		dim := 2 + rng.Intn(5)
		is := isatest.RandomISA(rng, dim, 1+rng.Intn(5))
		var cands []Candidate
		for j := range is.SIs {
			cands = append(cands, Candidate{SI: &is.SIs[j], Expected: int64(rng.Intn(2000))})
		}
		budget := rng.Intn(dim * 8)
		reqs := Greedy(cands, budget, dim)
		if na := Sup(reqs, dim).Determinant(); na > budget {
			t.Fatalf("iteration %d: NA = %d > budget %d", i, na, budget)
		}
		for _, r := range reqs {
			if r.Expected <= 0 {
				t.Fatalf("iteration %d: selected SI %s with zero forecast", i, r.SI.Name)
			}
			if r.Selected.Latency >= r.SI.SWLatency {
				t.Fatalf("iteration %d: selected Molecule slower than software", i)
			}
		}
	}
}

// TestGreedyNearExhaustiveOnRandomISAs bounds the greedy selection's gap
// against the exponential optimum on small random instances.
func TestGreedyNearExhaustiveOnRandomISAs(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	worst := 1.0
	for i := 0; i < 100; i++ {
		dim := 2 + rng.Intn(3)
		is := isatest.RandomISA(rng, dim, 1+rng.Intn(3))
		var cands []Candidate
		for j := range is.SIs {
			cands = append(cands, Candidate{SI: &is.SIs[j], Expected: int64(1 + rng.Intn(2000))})
		}
		budget := 1 + rng.Intn(dim*4)
		g := Gain(Greedy(cands, budget, dim))
		e, err := Exhaustive(cands, budget, dim, 0)
		if err != nil {
			t.Fatal(err)
		}
		opt := Gain(e)
		if g > opt {
			t.Fatalf("iteration %d: greedy gain %d exceeds optimal %d", i, g, opt)
		}
		if opt > 0 {
			ratio := float64(g) / float64(opt)
			if ratio < worst {
				worst = ratio
			}
			if ratio < 0.6 {
				t.Fatalf("iteration %d: greedy achieves only %.0f%% of optimal gain", i, 100*ratio)
			}
		}
	}
	t.Logf("worst greedy/optimal gain ratio over 100 random instances: %.3f", worst)
}
