package selection

import (
	"testing"

	"rispp/internal/isa"
	"rispp/internal/molecule"
	"rispp/internal/sched"
)

func meCandidates(is *isa.ISA) []Candidate {
	return []Candidate{
		{SI: is.SI(isa.SISAD), Expected: 26000},
		{SI: is.SI(isa.SISATD), Expected: 6000},
	}
}

func eeCandidates(is *isa.ISA) []Candidate {
	var cands []Candidate
	for _, si := range is.HotSpotSIs(isa.HotSpotEE) {
		cands = append(cands, Candidate{SI: si, Expected: int64(500 * (int(si.ID) + 1))})
	}
	return cands
}

func TestGreedyRespectsContainerBudget(t *testing.T) {
	is := isa.H264()
	for _, numACs := range []int{0, 1, 2, 3, 5, 7, 10, 15, 20, 24, 40} {
		for _, cands := range [][]Candidate{meCandidates(is), eeCandidates(is)} {
			reqs := Greedy(cands, numACs, is.Dim())
			if na := Sup(reqs, is.Dim()).Determinant(); na > numACs {
				t.Errorf("ACs=%d: NA=%d exceeds budget", numACs, na)
			}
		}
	}
}

func TestGreedyZeroACsSelectsNothing(t *testing.T) {
	is := isa.H264()
	if reqs := Greedy(meCandidates(is), 0, is.Dim()); len(reqs) != 0 {
		t.Fatalf("0 ACs selected %v", reqs)
	}
}

func TestGreedyZeroExpectedSelectsNothing(t *testing.T) {
	is := isa.H264()
	cands := []Candidate{{SI: is.SI(isa.SISAD), Expected: 0}}
	if reqs := Greedy(cands, 24, is.Dim()); len(reqs) != 0 {
		t.Fatalf("zero forecast selected %v", reqs)
	}
}

func TestGreedySelectionGrowsWithACs(t *testing.T) {
	// More Atom Containers must never lead to a worse (higher total
	// latency·expected) selection — this monotonicity is what drives the
	// paper's Figure 7 behaviour of bigger Molecules at higher AC counts.
	is := isa.H264()
	cands := meCandidates(is)
	prevGain := int64(-1)
	prevNA := -1
	for numACs := 1; numACs <= 30; numACs++ {
		reqs := Greedy(cands, numACs, is.Dim())
		gain := Gain(reqs)
		if gain < prevGain {
			t.Errorf("ACs=%d: gain %d dropped below %d", numACs, gain, prevGain)
		}
		na := Sup(reqs, is.Dim()).Determinant()
		if na < prevNA && gain == prevGain {
			// Allowed: same gain with fewer Atoms is fine. Nothing to check.
			_ = na
		}
		prevGain = gain
		prevNA = na
	}
}

func TestGreedySaturates(t *testing.T) {
	// Once every SI runs its fastest Molecule, adding ACs changes nothing.
	is := isa.H264()
	cands := meCandidates(is)
	full := Greedy(cands, 100, is.Dim())
	for _, r := range full {
		if r.Selected.Latency != r.SI.Fastest().Latency {
			t.Errorf("SI %q not at fastest Molecule with 100 ACs", r.SI.Name)
		}
	}
}

func TestGreedyPrefersHotSI(t *testing.T) {
	// With a tiny budget, the Molecule goes to the SI with the larger
	// expected gain.
	is := isa.H264()
	cands := meCandidates(is) // SAD has 26k expected, SATD 6k
	reqs := Greedy(cands, 1, is.Dim())
	if len(reqs) != 1 || reqs[0].SI.ID != isa.SISAD {
		t.Fatalf("1 AC selection = %+v, want SAD only", reqs)
	}
}

func TestGreedyExploitsSharedAtoms(t *testing.T) {
	// SATD and (I)DCT share the Transform Atom: selecting both must cost
	// fewer containers than the sum of their individual needs.
	is := isa.H264()
	satd := []Candidate{{SI: is.SI(isa.SISATD), Expected: 5000}}
	dct := []Candidate{{SI: is.SI(isa.SIDCT), Expected: 5000}}
	both := []Candidate{satd[0], dct[0]}

	na := func(reqs []sched.Request) int { return Sup(reqs, is.Dim()).Determinant() }
	budget := 12
	naSATD := na(Greedy(satd, budget, is.Dim()))
	naDCT := na(Greedy(dct, budget, is.Dim()))
	naBoth := na(Greedy(both, budget, is.Dim()))
	if naBoth >= naSATD+naDCT {
		t.Errorf("no Atom sharing: NA(both)=%d, NA(SATD)=%d + NA(DCT)=%d", naBoth, naSATD, naDCT)
	}
}

func TestExhaustiveMatchesOrBeatsGreedy(t *testing.T) {
	is := isa.H264()
	for _, numACs := range []int{2, 4, 6, 8, 10} {
		cands := meCandidates(is)
		g := Greedy(cands, numACs, is.Dim())
		e, err := Exhaustive(cands, numACs, is.Dim(), 0)
		if err != nil {
			t.Fatalf("ACs=%d: %v", numACs, err)
		}
		if na := Sup(e, is.Dim()).Determinant(); na > numACs {
			t.Errorf("ACs=%d: exhaustive NA=%d over budget", numACs, na)
		}
		if Gain(e) < Gain(g) {
			t.Errorf("ACs=%d: exhaustive gain %d < greedy %d", numACs, Gain(e), Gain(g))
		}
		// Greedy should be near the optimum on this small instance.
		if float64(Gain(g)) < 0.9*float64(Gain(e)) {
			t.Errorf("ACs=%d: greedy gain %d below 90%% of optimal %d", numACs, Gain(g), Gain(e))
		}
	}
}

func TestExhaustiveComboLimit(t *testing.T) {
	is := isa.H264()
	if _, err := Exhaustive(eeCandidates(is), 10, is.Dim(), 10); err == nil {
		t.Fatal("combo limit not enforced")
	}
}

func TestGainAndSupHelpers(t *testing.T) {
	is := isa.H264()
	si := is.SI(isa.SISAD)
	reqs := []sched.Request{{SI: si, Selected: si.Fastest(), Expected: 10}}
	wantGain := int64(10) * int64(si.SWLatency-si.Fastest().Latency)
	if got := Gain(reqs); got != wantGain {
		t.Fatalf("Gain = %d, want %d", got, wantGain)
	}
	if got := Sup(reqs, is.Dim()); !got.Equal(si.Fastest().Atoms) {
		t.Fatalf("Sup = %v", got)
	}
	if got := Sup(nil, 3); !got.Equal(molecule.New(3)) {
		t.Fatalf("Sup(nil) = %v", got)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	is := isa.H264()
	a := Greedy(eeCandidates(is), 14, is.Dim())
	b := Greedy(eeCandidates(is), 14, is.Dim())
	if len(a) != len(b) {
		t.Fatal("nondeterministic selection size")
	}
	for i := range a {
		if a[i].SI.ID != b[i].SI.ID || !a[i].Selected.Atoms.Equal(b[i].Selected.Atoms) {
			t.Fatal("nondeterministic selection")
		}
	}
}
