// Package selection implements the Molecule selection step of the RISPP
// Run-Time Manager (task III in paper Section 3.1): before a hot spot
// executes, one Molecule per Special Instruction is chosen such that all
// selected Molecules together fit into the available Atom Containers,
// i.e. NA = |sup(M)| ≤ #ACs.
//
// The paper treats the selection details as out of scope ("The details of
// the selection are beyond the scope of this paper") but depends on it; this
// package provides a greedy profit/cost selection — the natural choice given
// the shared-Atom cost structure — plus an exhaustive reference selection
// for small instances.
package selection

import (
	"fmt"

	"rispp/internal/isa"
	"rispp/internal/molecule"
	"rispp/internal/sched"
)

// Candidate is one SI of the upcoming hot spot together with its forecast
// execution count.
type Candidate struct {
	SI       *isa.SI
	Expected int64
}

// Scratch is the reusable arena of the greedy selection: every slice
// GreedyInto needs, grown on demand and recycled across calls. Not safe for
// concurrent use.
type Scratch struct {
	chosen []*isa.Molecule
	curLat []int
	sup    molecule.Vector
	reqs   []sched.Request

	// Rejected reports whether the last GreedyInto call skipped at least one
	// upgrade because it would have exceeded numACs. When false, the same
	// call on any budget ≥ Demand commits the identical sequence of
	// upgrades: removing the budget filter cannot change any greedy argmax
	// (a losing candidate stays losing), so the winners are unchanged.
	Rejected bool
	// Demand is the container count the last selection actually used (the
	// determinant of the final joint sup); budgets ≥ Demand admit every
	// committed upgrade.
	Demand int
}

// NewScratch returns an empty Scratch; it sizes itself on first use.
func NewScratch() *Scratch { return &Scratch{} }

// Greedy selects Molecules by repeatedly committing the upgrade with the
// best profit = expected · latency-improvement per additionally required
// Atom (Atoms shared with already committed Molecules are free), while the
// joint sup fits into numACs containers. SIs whose smallest Molecule does
// not fit (or whose forecast is zero) remain in software and yield no
// request.
func Greedy(cands []Candidate, numACs, dim int) []sched.Request {
	return GreedyInto(cands, numACs, dim, NewScratch())
}

// GreedyInto is Greedy with a caller-owned Scratch: allocation-free in the
// steady state. The returned requests alias the Scratch and are only valid
// until its next use.
func GreedyInto(cands []Candidate, numACs, dim int, sc *Scratch) []sched.Request {
	if cap(sc.chosen) < len(cands) {
		sc.chosen = make([]*isa.Molecule, len(cands))
		sc.curLat = make([]int, len(cands))
	} else {
		sc.chosen = sc.chosen[:len(cands)]
		sc.curLat = sc.curLat[:len(cands)]
		for i := range sc.chosen {
			sc.chosen[i] = nil
		}
	}
	chosen, curLat := sc.chosen, sc.curLat // nil chosen = software
	for i, c := range cands {
		curLat[i] = c.SI.SWLatency
	}
	if cap(sc.sup) < dim {
		sc.sup = molecule.New(dim)
	} else {
		sc.sup = sc.sup[:dim]
		sc.sup.Zero()
	}
	sup := sc.sup
	supDet := 0
	sc.Rejected = false

	for {
		bestI, bestJ := -1, -1
		bestFree := false
		var bestNum, bestDen int64 // profit gain/cost as a fraction
		for i, c := range cands {
			if c.Expected <= 0 {
				continue
			}
			for j := range c.SI.Molecules {
				m := &c.SI.Molecules[j]
				if m.Latency >= curLat[i] {
					continue
				}
				newSupDet := sup.SupDet(m.Atoms)
				if newSupDet > numACs {
					sc.Rejected = true
					continue
				}
				gain := c.Expected * int64(curLat[i]-m.Latency)
				cost := int64(newSupDet - supDet)
				free := cost == 0 // upgrade entirely through shared Atoms
				better := false
				switch {
				case bestI < 0:
					better = true
				case free != bestFree:
					better = free // infinite profit dominates
				case free:
					better = gain > bestNum
				default:
					// gain/cost > bestNum/bestDen, division-free.
					better = gain*bestDen > bestNum*cost
				}
				if better {
					bestI, bestJ, bestFree = i, j, free
					bestNum, bestDen = gain, cost
				}
			}
		}
		if bestI < 0 {
			break
		}
		chosen[bestI] = &cands[bestI].SI.Molecules[bestJ]
		curLat[bestI] = chosen[bestI].Latency
		sup.SupInPlace(chosen[bestI].Atoms)
		supDet = sup.Determinant()
	}

	sc.Demand = supDet
	reqs := sc.reqs[:0]
	for i, c := range cands {
		if chosen[i] != nil {
			reqs = append(reqs, sched.Request{SI: c.SI, Selected: *chosen[i], Expected: c.Expected})
		}
	}
	sc.reqs = reqs
	return reqs
}

// Exhaustive enumerates every combination of one Molecule (or software) per
// SI and returns the combination maximizing the total expected gain under
// the container constraint. It is exponential in the number of SIs and
// exists as the reference for evaluating Greedy; maxCombos bounds the
// search (0 means DefaultMaxCombos).
func Exhaustive(cands []Candidate, numACs, dim, maxCombos int) ([]sched.Request, error) {
	if maxCombos == 0 {
		maxCombos = DefaultMaxCombos
	}
	combos := 1
	for _, c := range cands {
		combos *= len(c.SI.Molecules) + 1
		if combos > maxCombos {
			return nil, fmt.Errorf("selection: %d combinations exceed limit %d", combos, maxCombos)
		}
	}

	choice := make([]int, len(cands)) // -1 = software
	best := make([]int, len(cands))
	var bestGain int64 = -1

	var walk func(i int, sup molecule.Vector, gain int64)
	walk = func(i int, sup molecule.Vector, gain int64) {
		if i == len(cands) {
			if gain > bestGain {
				bestGain = gain
				copy(best, choice)
			}
			return
		}
		choice[i] = -1
		walk(i+1, sup, gain)
		if cands[i].Expected <= 0 {
			return
		}
		for j := range cands[i].SI.Molecules {
			m := &cands[i].SI.Molecules[j]
			newSup := sup.Sup(m.Atoms)
			if newSup.Determinant() > numACs {
				continue
			}
			choice[i] = j
			g := cands[i].Expected * int64(cands[i].SI.SWLatency-m.Latency)
			walk(i+1, newSup, gain+g)
		}
	}
	walk(0, molecule.New(dim), 0)

	var reqs []sched.Request
	for i, j := range best {
		if j >= 0 {
			reqs = append(reqs, sched.Request{SI: cands[i].SI, Selected: cands[i].SI.Molecules[j], Expected: cands[i].Expected})
		}
	}
	return reqs, nil
}

// DefaultMaxCombos bounds the exhaustive selection search.
const DefaultMaxCombos = 1 << 22

// Gain computes the total expected cycle savings of a selection relative to
// pure software execution.
func Gain(reqs []sched.Request) int64 {
	var g int64
	for _, r := range reqs {
		g += r.Expected * int64(r.SI.SWLatency-r.Selected.Latency)
	}
	return g
}

// Sup returns the joint Meta-Molecule of a selection; its determinant is
// the NA of the paper (must be ≤ #ACs).
func Sup(reqs []sched.Request, dim int) molecule.Vector {
	s := molecule.New(dim)
	SupInto(reqs, s)
	return s
}

// SupInto computes the joint Meta-Molecule of a selection into dst
// (overwritten), allocation-free.
func SupInto(reqs []sched.Request, dst molecule.Vector) {
	dst.Zero()
	for _, r := range reqs {
		dst.SupInPlace(r.Selected.Atoms)
	}
}
