package datapath

import (
	"math/rand"
	"testing"
)

func TestQuantZeroBlock(t *testing.T) {
	var z Block4
	if Quant(z, 20) != z || Dequant(z, 20) != z {
		t.Fatal("zero block not preserved")
	}
	if RoundTrip4x4(z, 30) != z {
		t.Fatal("zero residual not reconstructed as zero")
	}
}

func TestQuantSignSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		w := randBlock4(rng, 2000)
		var neg Block4
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				neg[r][c] = -w[r][c]
			}
		}
		qp := rng.Intn(52)
		zw := Quant(w, qp)
		zn := Quant(neg, qp)
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				if zw[r][c] != -zn[r][c] {
					t.Fatalf("quantization not sign-symmetric at qp %d", qp)
				}
			}
		}
	}
}

// TestRoundTripErrorBounded: the reconstruction error of the complete
// transform/quant chain is bounded by the quantizer step size, which grows
// with QP (roughly doubling every 6 QP steps).
func TestRoundTripErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, qp := range []int{0, 6, 12, 20, 30} {
		// Step size ≈ 0.625 · 2^(qp/6); the transform chain spreads error
		// over the block — allow 2 steps of slack per sample.
		bound := 2 + (5*(1<<(qp/6)))/4
		for i := 0; i < 200; i++ {
			x := randBlock4(rng, 256)
			y := RoundTrip4x4(x, qp)
			for r := 0; r < 4; r++ {
				for c := 0; c < 4; c++ {
					if Abs(y[r][c]-x[r][c]) > bound {
						t.Fatalf("qp %d: sample error %d exceeds bound %d (x=%d, y=%d)",
							qp, Abs(y[r][c]-x[r][c]), bound, x[r][c], y[r][c])
					}
				}
			}
		}
	}
}

// TestDistortionGrowsWithQP: coarser quantization must on average distort
// more — the monotonicity every rate controller depends on.
func TestDistortionGrowsWithQP(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sse := func(qp int) int64 {
		var total int64
		for i := 0; i < 300; i++ {
			x := randBlock4(rng, 200)
			y := RoundTrip4x4(x, qp)
			for r := 0; r < 4; r++ {
				for c := 0; c < 4; c++ {
					d := int64(y[r][c] - x[r][c])
					total += d * d
				}
			}
		}
		return total
	}
	low, mid, high := sse(4), sse(20), sse(36)
	if !(low < mid && mid < high) {
		t.Fatalf("distortion not monotone in QP: %d, %d, %d", low, mid, high)
	}
}

func TestCoeffClass(t *testing.T) {
	if coeffClass(0, 0) != 0 || coeffClass(2, 2) != 0 {
		t.Fatal("even/even positions must be class 0")
	}
	if coeffClass(1, 1) != 1 || coeffClass(3, 1) != 1 {
		t.Fatal("odd/odd positions must be class 1")
	}
	if coeffClass(0, 1) != 2 || coeffClass(3, 2) != 2 {
		t.Fatal("mixed positions must be class 2")
	}
}

// TestQuantDequantGainNearUnity: for every QP, MF·V ≈ 2^(qbits−shift)·scale
// such that the end-to-end gain of quant→dequant is close to 1 relative to
// the transform normalization; empirically the DC of a flat block must
// reconstruct to within one step.
func TestQuantDequantGainNearUnity(t *testing.T) {
	for qp := 0; qp < 52; qp++ {
		var x Block4
		for r := range x {
			for c := range x[r] {
				x[r][c] = 100
			}
		}
		y := RoundTrip4x4(x, qp)
		bound := 1 + (5*(1<<(qp/6)))/8
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				if Abs(y[r][c]-100) > bound {
					t.Fatalf("qp %d: flat block reconstructed to %d (bound %d)", qp, y[r][c], bound)
				}
			}
		}
	}
}
