// Package datapath provides functional reference implementations of the
// H.264 kernels the RISPP Special Instructions accelerate, together with
// the Atom-level decompositions of Figure 3 (BytePack → PointFilter →
// Clip3 for Motion Compensation, butterfly stages for the transforms, …).
//
// The rest of the repository simulates timing only; this package pins down
// the *functionality* and verifies the paper's central structural claim:
// an SI "may be executed utilizing different combinations of these data
// paths (but still maintain its functionality)" — the Atom-composed
// implementations compute bit-identical results to the straightforward
// reference code (and hence to the base-processor trap routines).
//
// The arithmetic follows ITU-T H.264 (2005): the 4x4 integer core
// transform, the 4x4/2x2 Hadamard transforms, the 6-tap half-pel filter
// (1, −5, 20, 20, −5, 1), DC intra prediction, and the boundary-strength-4
// deblocking filter.
package datapath

// Clip3 clamps x into [lo, hi] — the Clip3 Atom of Figure 3.
func Clip3(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Clip255 clamps to the 8-bit pixel range.
func Clip255(x int) int { return Clip3(x, 0, 255) }

// Abs returns |x|.
func Abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Block4 is a 4x4 sample block (row-major).
type Block4 [4][4]int

// Block2 is a 2x2 sample block.
type Block2 [2][2]int

// --- SAD ------------------------------------------------------------------

// SAD16 is the reference sum of absolute differences over 16 samples — the
// work one SAD SI execution performs.
func SAD16(a, b *[16]int) int {
	s := 0
	for i := 0; i < 16; i++ {
		s += Abs(a[i] - b[i])
	}
	return s
}

// SAD16Tree computes the same SAD the way the SAD16 Atom does: absolute
// differences feed a balanced adder tree (4-2-1 reduction).
func SAD16Tree(a, b *[16]int) int {
	var d [16]int
	for i := range d {
		d[i] = Abs(a[i] - b[i])
	}
	// Three reduction levels of the adder tree.
	var l1 [8]int
	for i := range l1 {
		l1[i] = d[2*i] + d[2*i+1]
	}
	var l2 [4]int
	for i := range l2 {
		l2[i] = l1[2*i] + l1[2*i+1]
	}
	return (l2[0] + l2[1]) + (l2[2] + l2[3])
}

// --- Hadamard / SATD --------------------------------------------------------

// Hadamard4 applies the 4-point Hadamard butterfly to a vector — one pass
// of the Transform Atom.
func Hadamard4(v [4]int) [4]int {
	a := v[0] + v[2]
	b := v[0] - v[2]
	c := v[1] + v[3]
	d := v[1] - v[3]
	return [4]int{a + c, b + d, b - d, a - c}
}

// Hadamard4x4 transforms a block with the 2-D Hadamard transform
// (rows then columns), the core of SATD.
func Hadamard4x4(x Block4) Block4 {
	var t, y Block4
	for r := 0; r < 4; r++ {
		t[r] = Hadamard4(x[r])
	}
	for c := 0; c < 4; c++ {
		col := Hadamard4([4]int{t[0][c], t[1][c], t[2][c], t[3][c]})
		for r := 0; r < 4; r++ {
			y[r][c] = col[r]
		}
	}
	return y
}

// SATD4x4 is the reference sum of absolute transformed differences of two
// 4x4 blocks: Σ|Hadamard(a−b)| / 2.
func SATD4x4(a, b Block4) int {
	var d Block4
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			d[r][c] = a[r][c] - b[r][c]
		}
	}
	t := Hadamard4x4(d)
	s := 0
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s += Abs(t[r][c])
		}
	}
	return s / 2
}

// --- 4x4 integer core transform ---------------------------------------------

// Forward4x4 applies the H.264 forward core transform Y = C·X·Cᵀ with
// C = [[1,1,1,1],[2,1,−1,−2],[1,−1,−1,1],[1,−2,2,−1]].
func Forward4x4(x Block4) Block4 {
	rowPass := func(v [4]int) [4]int {
		s0 := v[0] + v[3]
		s1 := v[1] + v[2]
		s2 := v[1] - v[2]
		s3 := v[0] - v[3]
		return [4]int{s0 + s1, 2*s3 + s2, s0 - s1, s3 - 2*s2}
	}
	var t, y Block4
	for r := 0; r < 4; r++ {
		t[r] = rowPass(x[r])
	}
	for c := 0; c < 4; c++ {
		col := rowPass([4]int{t[0][c], t[1][c], t[2][c], t[3][c]})
		for r := 0; r < 4; r++ {
			y[r][c] = col[r]
		}
	}
	return y
}

// Inverse4x4 applies the H.264 inverse core transform (the decoder
// butterflies of subclause 8.5.10 with their >>1 stages) and the final
// (x+32)>>6 rounding. Note that exact reconstruction of Forward4x4 output
// additionally requires the codec's dequantization scaling (the row norms
// of C are 4 and 10), which belongs to the quantizer and is out of scope
// here; the tests validate the butterflies against an exact-arithmetic
// reference of the inverse-transform matrix.
func Inverse4x4(y Block4) Block4 {
	rowPass := func(v [4]int) [4]int {
		e0 := v[0] + v[2]
		e1 := v[0] - v[2]
		e2 := (v[1] >> 1) - v[3]
		e3 := v[1] + (v[3] >> 1)
		return [4]int{e0 + e3, e1 + e2, e1 - e2, e0 - e3}
	}
	var t, x Block4
	for c := 0; c < 4; c++ {
		col := rowPass([4]int{y[0][c], y[1][c], y[2][c], y[3][c]})
		for r := 0; r < 4; r++ {
			t[r][c] = col[r]
		}
	}
	for r := 0; r < 4; r++ {
		row := rowPass(t[r])
		for c := 0; c < 4; c++ {
			x[r][c] = (row[c] + 32) >> 6
		}
	}
	return x
}

// --- 2x2 Hadamard (chroma DC) -----------------------------------------------

// HT2x2 transforms the 2x2 chroma DC block: Y = H·X·H with H = [[1,1],[1,−1]].
func HT2x2(x Block2) Block2 {
	a := x[0][0] + x[0][1]
	b := x[0][0] - x[0][1]
	c := x[1][0] + x[1][1]
	d := x[1][0] - x[1][1]
	return Block2{{a + c, b + d}, {a - c, b - d}}
}

// --- Motion compensation (Figure 3) ------------------------------------------

// PointFilter is the 6-tap half-pel filter Atom of Figure 3:
// (1, −5, 20, 20, −5, 1) over a sample window, before rounding.
func PointFilter(w [6]int) int {
	return w[0] - 5*w[1] + 20*w[2] + 20*w[3] - 5*w[4] + w[5]
}

// HalfPel rounds and clips a PointFilter output to a pixel — the Clip3
// stage behind the PointFilter in the MC SI.
func HalfPel(w [6]int) int {
	return Clip255((PointFilter(w) + 16) >> 5)
}

// MCRowReference interpolates the half-pel samples of a pixel row the
// straightforward way (the trap routine): for each output sample, gather
// the 6-tap window and filter it.
func MCRowReference(row []int) []int {
	n := len(row) - 5
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = Clip255((row[i] - 5*row[i+1] + 20*row[i+2] + 20*row[i+3] - 5*row[i+4] + row[i+5] + 16) >> 5)
	}
	return out
}

// MCRowAtoms computes the same row through the Figure 3 Atom chain:
// BytePack gathers the windows, PointFilter computes the taps, Clip3
// rounds and clamps.
func MCRowAtoms(row []int) []int {
	n := len(row) - 5
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		w := BytePack(row, i) // operand gathering Atom
		out[i] = Clip255((PointFilter(w) + 16) >> 5)
	}
	return out
}

// BytePack is the operand-gathering Atom of Figure 3: it packs the 6-sample
// window starting at offset i.
func BytePack(row []int, i int) [6]int {
	var w [6]int
	copy(w[:], row[i:i+6])
	return w
}

// --- Intra prediction ---------------------------------------------------------

// PredHDC computes the horizontal DC prediction of a 4-row block: the DC of
// the left neighbours, replicated.
func PredHDC(left [4]int) int {
	return (left[0] + left[1] + left[2] + left[3] + 2) >> 2
}

// PredVDC computes the vertical DC prediction from the top neighbours.
func PredVDC(top [4]int) int {
	return (top[0] + top[1] + top[2] + top[3] + 2) >> 2
}

// --- Deblocking (boundary strength 4) -----------------------------------------

// LFCond evaluates the strong-filter condition of the BS4 deblocking filter
// (the LFCond Atom): the edge is filtered when the gradients are below the
// α/β thresholds.
func LFCond(p0, q0, p1, q1, alpha, beta int) bool {
	return Abs(p0-q0) < alpha && Abs(p1-p0) < beta && Abs(q1-q0) < beta
}

// DeblockBS4 applies the H.264 strong (boundary strength 4) luma filter to
// one edge: p3..p0 on one side, q0..q3 on the other. It returns the three
// filtered samples of each side. The luma strong filter is used when the
// additional threshold |p0−q0| < (α>>2)+2 holds; callers gate on LFCond
// first.
func DeblockBS4(p [4]int, q [4]int) (pf [3]int, qf [3]int) {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	q0, q1, q2, q3 := q[0], q[1], q[2], q[3]
	pf[0] = (p2 + 2*p1 + 2*p0 + 2*q0 + q1 + 4) >> 3
	pf[1] = (p2 + p1 + p0 + q0 + 2) >> 2
	pf[2] = (2*p3 + 3*p2 + p1 + p0 + q0 + 4) >> 3
	qf[0] = (q2 + 2*q1 + 2*q0 + 2*p0 + p1 + 4) >> 3
	qf[1] = (q2 + q1 + q0 + p0 + 2) >> 2
	qf[2] = (2*q3 + 3*q2 + q1 + q0 + p0 + 4) >> 3
	return pf, qf
}
