package datapath

// H.264 quantization of 4x4 transform coefficients (subclauses 8.5.9 /
// 8.5.10 of the standard): the forward multiplier tables MF and the
// dequantization scale tables V, per QP class. Together with Forward4x4 /
// Inverse4x4 this completes the (I)DCT Special Instruction's arithmetic
// and makes a real encode→decode round trip possible (see internal/video's
// encoder loop).
//
// Coefficient positions fall into three classes:
//
//	class 0: (i,j) with both indices even   — e.g. the DC position
//	class 1: both indices odd
//	class 2: the rest
//
// The tables below are indexed [qp%6][class].

var quantMF = [6][3]int{
	{13107, 5243, 8066},
	{11916, 4660, 7490},
	{10082, 4194, 6554},
	{9362, 3647, 5825},
	{8192, 3355, 5243},
	{7282, 2893, 4559},
}

var dequantV = [6][3]int{
	{10, 16, 13},
	{11, 18, 14},
	{13, 20, 16},
	{14, 23, 18},
	{16, 25, 20},
	{18, 29, 23},
}

// coeffClass returns the quantization class of coefficient position (i, j).
func coeffClass(i, j int) int {
	switch {
	case i%2 == 0 && j%2 == 0:
		return 0
	case i%2 == 1 && j%2 == 1:
		return 1
	default:
		return 2
	}
}

// Quant quantizes a block of Forward4x4 coefficients at the given QP
// (0..51): Z = sign(W) · ((|W|·MF + f) >> qbits) with the intra rounding
// offset f = 2^qbits/3.
func Quant(w Block4, qp int) Block4 {
	qbits := 15 + qp/6
	f := (1 << qbits) / 3
	mf := quantMF[qp%6]
	var z Block4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			c := w[i][j]
			neg := c < 0
			if neg {
				c = -c
			}
			q := (c*mf[coeffClass(i, j)] + f) >> qbits
			if neg {
				q = -q
			}
			z[i][j] = q
		}
	}
	return z
}

// Dequant rescales quantized levels for the inverse transform:
// W' = Z · V · 2^(qp/6). Feeding the result to Inverse4x4 (with its final
// (x+32)>>6) reconstructs the residual up to the quantization error.
func Dequant(z Block4, qp int) Block4 {
	v := dequantV[qp%6]
	shift := qp / 6
	var w Block4
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			w[i][j] = z[i][j] * v[coeffClass(i, j)] << shift
		}
	}
	return w
}

// RoundTrip4x4 runs a residual block through the full coding chain —
// forward transform, quantization, dequantization, inverse transform — and
// returns the reconstructed residual. This is what one "(I)DCT" SI pair
// computes per 4x4 block in the Encoding Engine hot spot.
func RoundTrip4x4(residual Block4, qp int) Block4 {
	return Inverse4x4(Dequant(Quant(Forward4x4(residual), qp), qp))
}
