package datapath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock4(r *rand.Rand, span int) Block4 {
	var b Block4
	for i := range b {
		for j := range b[i] {
			b[i][j] = r.Intn(2*span) - span
		}
	}
	return b
}

func TestClip3(t *testing.T) {
	cases := []struct{ x, lo, hi, want int }{
		{5, 0, 255, 5},
		{-3, 0, 255, 0},
		{300, 0, 255, 255},
		{7, 7, 7, 7},
	}
	for _, c := range cases {
		if got := Clip3(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clip3(%d,%d,%d) = %d, want %d", c.x, c.lo, c.hi, got, c.want)
		}
	}
	if Clip255(-1) != 0 || Clip255(256) != 255 || Clip255(100) != 100 {
		t.Error("Clip255 broken")
	}
}

func TestAbs(t *testing.T) {
	if Abs(-5) != 5 || Abs(5) != 5 || Abs(0) != 0 {
		t.Fatal("Abs broken")
	}
}

// TestSADTreeEqualsReference verifies the Atom decomposition of the SAD SI:
// the adder-tree formulation is bit-identical to the reference loop.
func TestSADTreeEqualsReference(t *testing.T) {
	err := quick.Check(func(a, b [16]uint8) bool {
		var x, y [16]int
		for i := range a {
			x[i], y[i] = int(a[i]), int(b[i])
		}
		return SAD16(&x, &y) == SAD16Tree(&x, &y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSADKnown(t *testing.T) {
	a := [16]int{10, 20, 30, 40, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	b := [16]int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	if got := SAD16(&a, &b); got != 100 {
		t.Fatalf("SAD = %d, want 100", got)
	}
}

// TestHadamardButterflyEqualsMatrix: the Transform Atom's butterfly pass
// equals the Hadamard matrix product.
func TestHadamardButterflyEqualsMatrix(t *testing.T) {
	h := [4][4]int{
		{1, 1, 1, 1},
		{1, 1, -1, -1},
		{1, -1, -1, 1},
		{1, -1, 1, -1},
	}
	err := quick.Check(func(v0, v1, v2, v3 int16) bool {
		v := [4]int{int(v0), int(v1), int(v2), int(v3)}
		got := Hadamard4(v)
		for r := 0; r < 4; r++ {
			want := 0
			for c := 0; c < 4; c++ {
				want += h[r][c] * v[c]
			}
			if got[r] != want {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHadamard4x4SelfInverse(t *testing.T) {
	// H·H = 4·I, so transforming twice scales by 16.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		x := randBlock4(rng, 200)
		y := Hadamard4x4(Hadamard4x4(x))
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				if y[r][c] != 16*x[r][c] {
					t.Fatalf("H(H(x)) != 16x at (%d,%d)", r, c)
				}
			}
		}
	}
}

func TestSATDProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		a := randBlock4(rng, 255)
		b := randBlock4(rng, 255)
		if got := SATD4x4(a, a); got != 0 {
			t.Fatalf("SATD(a,a) = %d", got)
		}
		ab := SATD4x4(a, b)
		ba := SATD4x4(b, a)
		if ab != ba {
			t.Fatalf("SATD not symmetric: %d vs %d", ab, ba)
		}
		if ab < 0 {
			t.Fatal("negative SATD")
		}
	}
	// Known value: single differing sample d gives Σ|H d| = 16|d|, /2 = 8|d|.
	var a, b Block4
	a[0][0] = 3
	if got := SATD4x4(a, b); got != 24 {
		t.Fatalf("SATD single sample = %d, want 24", got)
	}
}

// TestForward4x4EqualsMatrix checks the butterfly implementation against
// the C·X·Cᵀ matrix product.
func TestForward4x4EqualsMatrix(t *testing.T) {
	cm := [4][4]int{
		{1, 1, 1, 1},
		{2, 1, -1, -2},
		{1, -1, -1, 1},
		{1, -2, 2, -1},
	}
	mul := func(a, b [4][4]int) [4][4]int {
		var y [4][4]int
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				for k := 0; k < 4; k++ {
					y[r][c] += a[r][k] * b[k][c]
				}
			}
		}
		return y
	}
	transpose := func(a [4][4]int) [4][4]int {
		var y [4][4]int
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				y[r][c] = a[c][r]
			}
		}
		return y
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x := randBlock4(rng, 255)
		want := Block4(mul(mul(cm, [4][4]int(x)), transpose(cm)))
		if got := Forward4x4(x); got != want {
			t.Fatalf("Forward4x4 != C·X·Cᵀ:\n%v\n%v", got, want)
		}
	}
}

func TestForward4x4DCOnly(t *testing.T) {
	var x Block4
	for r := range x {
		for c := range x[r] {
			x[r][c] = 7
		}
	}
	y := Forward4x4(x)
	if y[0][0] != 16*7 {
		t.Fatalf("DC coefficient = %d, want 112", y[0][0])
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if (r != 0 || c != 0) && y[r][c] != 0 {
				t.Fatalf("AC coefficient (%d,%d) = %d for a flat block", r, c, y[r][c])
			}
		}
	}
}

// TestInverse4x4EqualsExactReference validates the integer butterflies
// against exact rational arithmetic.
func TestInverse4x4EqualsExactReference(t *testing.T) {
	// The integer butterflies truncate at their >>1 stages; multiples of 4
	// keep both passes exact, so the plain matrix reference applies.
	ci := [4][4]float64{
		{1, 1, 1, 0.5},
		{1, 0.5, -1, -1},
		{1, -0.5, -1, 1},
		{1, -1, 1, -0.5},
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		var y Block4
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				v := rng.Intn(512) - 256
				y[r][c] = v * 4 // both >>1 butterfly stages stay exact
			}
		}
		// Reference: x = Ciᵀ? — the decoder applies the butterfly R per
		// dimension; R(v) = ci·v (rows of ci), columns first, then rows.
		var tf [4][4]float64
		for c := 0; c < 4; c++ {
			for r := 0; r < 4; r++ {
				s := 0.0
				for k := 0; k < 4; k++ {
					s += ci[r][k] * float64(y[k][c])
				}
				tf[r][c] = s
			}
		}
		var want Block4
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				s := 0.0
				for k := 0; k < 4; k++ {
					s += ci[c][k] * tf[r][k]
				}
				w := int(s)
				want[r][c] = (w + 32) >> 6
			}
		}
		if got := Inverse4x4(y); got != want {
			t.Fatalf("Inverse4x4 mismatch:\ny=%v\ngot=%v\nwant=%v", y, got, want)
		}
	}
}

func TestInverse4x4DCOnly(t *testing.T) {
	var y Block4
	y[0][0] = 640
	x := Inverse4x4(y)
	want := (640 + 32) >> 6
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if x[r][c] != want {
				t.Fatalf("DC-only inverse not constant: %v", x)
			}
		}
	}
}

func TestHT2x2(t *testing.T) {
	x := Block2{{1, 2}, {3, 4}}
	y := HT2x2(x)
	want := Block2{{10, -2}, {-4, 0}}
	if y != want {
		t.Fatalf("HT2x2 = %v, want %v", y, want)
	}
	// Self-inverse up to factor 4: H·H = 2I per dimension.
	z := HT2x2(y)
	for r := 0; r < 2; r++ {
		for c := 0; c < 2; c++ {
			if z[r][c] != 4*x[r][c] {
				t.Fatalf("HT2x2 twice != 4x: %v", z)
			}
		}
	}
}

// TestMCAtomChainEqualsReference is the Figure 3 equivalence: the
// BytePack → PointFilter → Clip3 Atom chain computes the same half-pel
// samples as the straightforward trap routine.
func TestMCAtomChainEqualsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		n := 6 + rng.Intn(30)
		row := make([]int, n)
		for j := range row {
			row[j] = rng.Intn(256)
		}
		ref := MCRowReference(row)
		atoms := MCRowAtoms(row)
		if len(ref) != len(atoms) {
			t.Fatal("length mismatch")
		}
		for j := range ref {
			if ref[j] != atoms[j] {
				t.Fatalf("MC sample %d: reference %d, atoms %d", j, ref[j], atoms[j])
			}
		}
	}
	if MCRowReference([]int{1, 2, 3}) != nil {
		t.Fatal("short row should yield nil")
	}
	if MCRowAtoms([]int{1, 2, 3}) != nil {
		t.Fatal("short row should yield nil")
	}
}

func TestPointFilterKnown(t *testing.T) {
	// Flat window: taps sum to 32 → value*32; (…+16)>>5 returns the value.
	w := [6]int{9, 9, 9, 9, 9, 9}
	if got := PointFilter(w); got != 9*32 {
		t.Fatalf("PointFilter flat = %d, want %d", got, 9*32)
	}
	if got := HalfPel(w); got != 9 {
		t.Fatalf("HalfPel flat = %d, want 9", got)
	}
}

func TestPredDC(t *testing.T) {
	if got := PredHDC([4]int{10, 20, 30, 40}); got != (100+2)>>2 {
		t.Fatalf("PredHDC = %d", got)
	}
	if got := PredVDC([4]int{1, 1, 1, 1}); got != 1 {
		t.Fatalf("PredVDC = %d", got)
	}
}

func TestLFCond(t *testing.T) {
	if !LFCond(100, 101, 100, 102, 10, 5) {
		t.Fatal("smooth edge should be filtered")
	}
	if LFCond(0, 255, 0, 255, 10, 5) {
		t.Fatal("real edge must not be filtered")
	}
}

func TestDeblockBS4FlatEdge(t *testing.T) {
	// A perfectly flat edge must stay flat after strong filtering.
	p := [4]int{80, 80, 80, 80}
	q := [4]int{80, 80, 80, 80}
	pf, qf := DeblockBS4(p, q)
	for i := 0; i < 3; i++ {
		if pf[i] != 80 || qf[i] != 80 {
			t.Fatalf("flat edge changed: %v %v", pf, qf)
		}
	}
}

func TestDeblockBS4SmoothsStep(t *testing.T) {
	// A step edge must be smoothed monotonically towards the midpoint.
	p := [4]int{60, 60, 60, 60}
	q := [4]int{100, 100, 100, 100}
	pf, qf := DeblockBS4(p, q)
	if !(pf[0] > 60 && pf[0] < 100) || !(qf[0] < 100 && qf[0] > 60) {
		t.Fatalf("step edge not smoothed: %v %v", pf, qf)
	}
	// Known spec arithmetic: p0' = (p2+2p1+2p0+2q0+q1+4)>>3.
	want := (60 + 2*60 + 2*60 + 2*100 + 100 + 4) >> 3
	if pf[0] != want {
		t.Fatalf("p0' = %d, want %d", pf[0], want)
	}
}

func TestBytePackWindow(t *testing.T) {
	row := []int{1, 2, 3, 4, 5, 6, 7, 8}
	w := BytePack(row, 2)
	if w != [6]int{3, 4, 5, 6, 7, 8} {
		t.Fatalf("BytePack = %v", w)
	}
}
