package reconfig

import (
	"math"
	"testing"

	"rispp/internal/isa"
	"rispp/internal/molecule"
)

func TestLoadCyclesCalibration(t *testing.T) {
	// The paper: avg bitstream 60,488 bytes loads in avg 874.03 µs.
	tm := DefaultTiming()
	is := isa.H264()
	var total Cycle
	for _, a := range is.Atoms {
		total += tm.LoadCycles(a.BitstreamBytes)
	}
	avgUs := tm.Microseconds(total) / float64(len(is.Atoms))
	if math.Abs(avgUs-874.03) > 1.0 {
		t.Fatalf("avg Atom reconfiguration = %.2f µs, want 874.03 ± 1", avgUs)
	}
}

func TestLoadCyclesRounding(t *testing.T) {
	tm := Timing{ClockHz: 100, BandwidthBps: 3}
	// 1 byte at 3 B/s = 0.333 s = 33.3 cycles → 33.
	if got := tm.LoadCycles(1); got != 33 {
		t.Fatalf("LoadCycles(1) = %d, want 33", got)
	}
	// 3 bytes = 1 s = 100 cycles exactly.
	if got := tm.LoadCycles(3); got != 100 {
		t.Fatalf("LoadCycles(3) = %d, want 100", got)
	}
}

func TestLoadCyclesPanicsUninitialized(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LoadCycles on zero Timing did not panic")
		}
	}()
	var tm Timing
	tm.LoadCycles(100)
}

func TestArrayInstallAndFree(t *testing.T) {
	a := NewArray(3, 4, EvictLRU, 1)
	if a.Size() != 3 || a.Free() != 3 {
		t.Fatalf("fresh array: size=%d free=%d", a.Size(), a.Free())
	}
	needed := molecule.New(4)
	a.Install(2, needed, 10)
	a.Install(2, needed, 20)
	if !a.Loaded().Equal(molecule.Of(0, 0, 2, 0)) {
		t.Fatalf("loaded = %v", a.Loaded())
	}
	if a.Free() != 1 {
		t.Fatalf("free = %d, want 1", a.Free())
	}
}

func TestArrayEvictsLRU(t *testing.T) {
	a := NewArray(2, 3, EvictLRU, 1)
	needed := molecule.New(3)
	a.Install(0, needed, 1)
	a.Install(1, needed, 2)
	// Touch Atom 0 so Atom 1 becomes LRU.
	a.Touch(molecule.Of(1, 0, 0), 5)
	a.Install(2, needed, 10)
	if !a.Loaded().Equal(molecule.Of(1, 0, 1)) {
		t.Fatalf("loaded after LRU eviction = %v, want (1, 0, 1)", a.Loaded())
	}
	if a.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", a.Evictions)
	}
}

func TestArrayEvictsFIFO(t *testing.T) {
	a := NewArray(2, 3, EvictFIFO, 1)
	needed := molecule.New(3)
	a.Install(0, needed, 1)
	a.Install(1, needed, 2)
	// Touching does not matter for FIFO: Atom 0 was loaded first.
	a.Touch(molecule.Of(1, 0, 0), 5)
	a.Install(2, needed, 10)
	if !a.Loaded().Equal(molecule.Of(0, 1, 1)) {
		t.Fatalf("loaded after FIFO eviction = %v, want (0, 1, 1)", a.Loaded())
	}
}

func TestArrayEvictionProtectsNeeded(t *testing.T) {
	a := NewArray(2, 3, EvictLRU, 1)
	a.Install(0, molecule.New(3), 1)
	a.Install(1, molecule.New(3), 2)
	// Atom 0 is needed, so Atom 1 must be the victim even though Atom 0 is
	// least recently used.
	needed := molecule.Of(1, 0, 1)
	a.Install(2, needed, 10)
	if !a.Loaded().Equal(molecule.Of(1, 0, 1)) {
		t.Fatalf("loaded = %v, want (1, 0, 1)", a.Loaded())
	}
}

func TestArrayEvictRandomStaysEvictable(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a := NewArray(2, 3, EvictRandom, seed)
		a.Install(0, molecule.New(3), 1)
		a.Install(1, molecule.New(3), 2)
		needed := molecule.Of(1, 0, 1)
		a.Install(2, needed, 10)
		if a.Loaded()[0] != 1 {
			t.Fatalf("seed %d: random eviction removed a needed Atom", seed)
		}
	}
}

func TestArrayCanInstall(t *testing.T) {
	a := NewArray(2, 2, EvictLRU, 1)
	if !a.CanInstall(molecule.Of(1, 1)) {
		t.Fatal("empty array not installable")
	}
	a.Install(0, molecule.New(2), 1)
	a.Install(1, molecule.New(2), 2)
	if !a.CanInstall(molecule.Of(1, 0)) {
		t.Fatal("full array with a spare Atom not installable")
	}
	if a.CanInstall(molecule.Of(1, 1)) {
		t.Fatal("fully protected array reported installable")
	}
}

func TestArrayPanicsWhenOvercommitted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Install with all Atoms needed did not panic")
		}
	}()
	a := NewArray(1, 2, EvictLRU, 1)
	a.Install(0, molecule.New(2), 1)
	a.Install(1, molecule.Of(1, 1), 2) // both types needed, nothing evictable
}

func TestPortSerializesLoads(t *testing.T) {
	is := isa.H264()
	tm := Timing{ClockHz: 1000, BandwidthBps: 1000} // 1 cycle per byte
	p := NewPort(is, tm)
	p.Schedule(0, []isa.AtomID{isa.AtomSAD16, isa.AtomQSub})

	at1, ok := p.NextCompletion()
	if !ok {
		t.Fatal("port idle after Schedule")
	}
	want1 := Cycle(is.Atom(isa.AtomSAD16).BitstreamBytes)
	if at1 != want1 {
		t.Fatalf("first completion at %d, want %d", at1, want1)
	}
	atom, at := p.Complete()
	if atom != isa.AtomSAD16 || at != want1 {
		t.Fatalf("Complete = (%v, %d)", atom, at)
	}

	at2, ok := p.NextCompletion()
	if !ok {
		t.Fatal("port idle before second load")
	}
	want2 := want1 + Cycle(is.Atom(isa.AtomQSub).BitstreamBytes)
	if at2 != want2 {
		t.Fatalf("second completion at %d, want %d (serialized)", at2, want2)
	}
	p.Complete()
	if _, ok := p.NextCompletion(); ok {
		t.Fatal("port busy after draining queue")
	}
	if p.Loads != 2 {
		t.Fatalf("Loads = %d, want 2", p.Loads)
	}
}

func TestPortRescheduleKeepsInflight(t *testing.T) {
	is := isa.H264()
	tm := Timing{ClockHz: 1000, BandwidthBps: 1000}
	p := NewPort(is, tm)
	p.Schedule(0, []isa.AtomID{isa.AtomSAD16, isa.AtomQSub, isa.AtomSAV})
	first, _ := p.NextCompletion() // starts SAD16

	// A hot-spot switch reschedules before the first load completes: the
	// in-flight SAD16 still finishes, the rest is replaced.
	p.Schedule(100, []isa.AtomID{isa.AtomClip3})
	at, ok := p.NextCompletion()
	if !ok || at != first {
		t.Fatalf("in-flight load lost on reschedule: at=%d ok=%v want %d", at, ok, first)
	}
	atom, _ := p.Complete()
	if atom != isa.AtomSAD16 {
		t.Fatalf("in-flight atom = %v, want SAD16", atom)
	}
	atom2, at2 := nextLoad(t, p)
	if atom2 != isa.AtomClip3 {
		t.Fatalf("after reschedule got %v, want Clip3", atom2)
	}
	if at2 <= first {
		t.Fatalf("rescheduled load completed at %d, not after %d", at2, first)
	}
}

func TestPortScheduleWhileIdleStartsAtNow(t *testing.T) {
	is := isa.H264()
	tm := Timing{ClockHz: 1000, BandwidthBps: 1000}
	p := NewPort(is, tm)
	p.Schedule(500, []isa.AtomID{isa.AtomRepack})
	at, ok := p.NextCompletion()
	want := Cycle(500 + is.Atom(isa.AtomRepack).BitstreamBytes)
	if !ok || at != want {
		t.Fatalf("completion at %d, want %d", at, want)
	}
}

func TestPortCompleteOnIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Complete on idle port did not panic")
		}
	}()
	NewPort(isa.H264(), DefaultTiming()).Complete()
}

func TestPortBusyCycles(t *testing.T) {
	is := isa.H264()
	tm := Timing{ClockHz: 1000, BandwidthBps: 1000}
	p := NewPort(is, tm)
	p.Schedule(0, []isa.AtomID{isa.AtomSAD16})
	p.NextCompletion()
	p.Complete()
	if p.BusyCycles != Cycle(is.Atom(isa.AtomSAD16).BitstreamBytes) {
		t.Fatalf("BusyCycles = %d", p.BusyCycles)
	}
}

func TestEvictionPolicyString(t *testing.T) {
	if EvictLRU.String() != "LRU" || EvictFIFO.String() != "FIFO" || EvictRandom.String() != "random" {
		t.Fatal("EvictionPolicy.String broken")
	}
	if EvictionPolicy(9).String() != "EvictionPolicy(9)" {
		t.Fatal("unknown policy String broken")
	}
}

func nextLoad(t *testing.T, p *Port) (isa.AtomID, Cycle) {
	t.Helper()
	if _, ok := p.NextCompletion(); !ok {
		t.Fatal("port unexpectedly idle")
	}
	return p.Complete()
}
